// Package lxr is the public API of the LXR reproduction: a managed-heap
// runtime simulator hosting the LXR garbage collector (Zhao, Blackburn &
// McKinley, "Low-Latency, High-Throughput Garbage Collection", PLDI
// 2022) together with the baseline collectors the paper evaluates
// against (G1, Shenandoah, ZGC, Serial, Parallel, SemiSpace, Immix).
//
// # Quick start
//
//	rt := lxr.NewRuntime(lxr.RuntimeConfig{HeapBytes: 64 << 20})
//	defer rt.Shutdown()
//	m := rt.RegisterMutator(8)          // 8 root slots
//	obj := m.Alloc(0, 2, 16)            // typeID 0, 2 ref slots, 16 payload bytes
//	m.Roots[0] = obj                    // keep it alive
//	m.Store(obj, 0, m.Alloc(0, 0, 8))   // barrier-instrumented pointer store
//	child := m.Load(obj, 0)             // barrier-instrumented pointer load
//	_ = child
//	m.Deregister()
//
// Mutator discipline: any reference held across a Safepoint (every Alloc
// is one) must live in the mutator's Roots slice, exactly as JIT-compiled
// code keeps references visible to stack scanning.
//
// See DESIGN.md for architecture and EXPERIMENTS.md for the paper's
// tables and figures and how to regenerate them (cmd/lxr-bench).
package lxr

import (
	"lxr/internal/baselines"
	"lxr/internal/core"
	"lxr/internal/obj"
	"lxr/internal/vm"
)

// Ref is a reference to a heap object.
type Ref = obj.Ref

// Mutator is an application thread attached to the runtime. See
// vm.Mutator for the full API (Alloc, Load, Store, payload access,
// Safepoint, Blocked, RequestGC).
type Mutator = vm.Mutator

// Stats exposes pause records, counters and busy-time accounting.
type Stats = vm.Stats

// Pause is one stop-the-world pause record.
type Pause = vm.Pause

// CollectorKind selects the garbage collector for a Runtime.
type CollectorKind string

// Available collectors.
const (
	CollectorLXR        CollectorKind = "LXR"
	CollectorG1         CollectorKind = "G1"
	CollectorShenandoah CollectorKind = "Shenandoah"
	CollectorZGC        CollectorKind = "ZGC"
	CollectorSerial     CollectorKind = "Serial"
	CollectorParallel   CollectorKind = "Parallel"
	CollectorSemiSpace  CollectorKind = "SemiSpace"
	CollectorImmix      CollectorKind = "Immix"
)

// RuntimeConfig configures a Runtime.
type RuntimeConfig struct {
	// Collector selects the GC algorithm (default LXR).
	Collector CollectorKind
	// HeapBytes is the heap budget (default 64 MB).
	HeapBytes int
	// GCThreads sizes the parallel collection pool (default 4).
	GCThreads int
	// GlobalRoots sizes the global root array (default 16).
	GlobalRoots int
	// LXR, when Collector is LXR, overrides the full LXR configuration
	// (ablations, triggers, evacuation knobs). HeapBytes/GCThreads
	// above still apply when the corresponding fields are zero.
	LXR *core.Config
}

// Runtime is a simulated managed runtime with a garbage-collected heap.
type Runtime struct {
	*vm.VM
}

// NewRuntime creates a runtime with the configured collector.
// It panics if the collector cannot run at the given heap size
// (use NewRuntimeChecked to detect that case).
func NewRuntime(cfg RuntimeConfig) *Runtime {
	rt, err := NewRuntimeChecked(cfg)
	if err != nil {
		panic(err)
	}
	return rt
}

// NewRuntimeChecked is NewRuntime returning an error when the collector
// cannot operate at the requested heap size (ZGC's minimum heap).
func NewRuntimeChecked(cfg RuntimeConfig) (*Runtime, error) {
	if cfg.Collector == "" {
		cfg.Collector = CollectorLXR
	}
	if cfg.HeapBytes == 0 {
		cfg.HeapBytes = 64 << 20
	}
	if cfg.GCThreads == 0 {
		cfg.GCThreads = 4
	}
	if cfg.GlobalRoots == 0 {
		cfg.GlobalRoots = 16
	}
	var plan vm.Plan
	switch cfg.Collector {
	case CollectorLXR:
		c := core.Config{}
		if cfg.LXR != nil {
			c = *cfg.LXR
		}
		if c.HeapBytes == 0 {
			c.HeapBytes = cfg.HeapBytes
		}
		if c.GCThreads == 0 {
			c.GCThreads = cfg.GCThreads
		}
		plan = core.New(c)
	case CollectorG1:
		plan = baselines.NewG1(cfg.HeapBytes, cfg.GCThreads)
	case CollectorShenandoah:
		plan = baselines.NewShenandoah(cfg.HeapBytes, cfg.GCThreads)
	case CollectorZGC:
		z := baselines.NewZGC(cfg.HeapBytes, cfg.GCThreads)
		if z == nil {
			return nil, errZGCMinHeap
		}
		plan = z
	case CollectorSerial:
		plan = baselines.NewSerial(cfg.HeapBytes)
	case CollectorParallel:
		plan = baselines.NewParallel(cfg.HeapBytes, cfg.GCThreads)
	case CollectorSemiSpace:
		plan = baselines.NewSemiSpace("SemiSpace", cfg.HeapBytes, cfg.GCThreads)
	case CollectorImmix:
		plan = baselines.NewImmix(cfg.HeapBytes, cfg.GCThreads, false)
	default:
		return nil, errUnknownCollector(cfg.Collector)
	}
	return &Runtime{VM: vm.New(plan, cfg.GlobalRoots)}, nil
}

type errUnknownCollector string

func (e errUnknownCollector) Error() string { return "lxr: unknown collector " + string(e) }

type errString string

func (e errString) Error() string { return string(e) }

var errZGCMinHeap = errString("lxr: ZGC requires a larger minimum heap")

// LXRConfig re-exports the full LXR configuration type.
type LXRConfig = core.Config
