module lxr

go 1.24
