// Package remset implements LXR's RC remembered sets (§3.3.2): per
// evacuation-set records of the locations of incoming references, each
// tagged with the reuse counter of the source line so that stale entries
// (whose containing line has been reclaimed and reallocated since the
// entry was created) can be discarded at evacuation time.
package remset

import (
	"sync"

	"lxr/internal/mem"
	"lxr/internal/meta"
)

// Entry records one incoming reference: the address of the slot holding
// it and the reuse count of the slot's line when the entry was created.
type Entry struct {
	Slot mem.Address
	Tag  uint32
}

// Set is one remembered set. LXR uses either a single whole-heap set or
// one per 4 MB region (§3.3.2); the Table below handles the mapping.
type Set struct {
	mu      sync.Mutex
	entries []Entry
}

func (s *Set) add(e Entry) {
	s.mu.Lock()
	s.entries = append(s.entries, e)
	s.mu.Unlock()
}

// Take removes and returns all entries.
func (s *Set) Take() []Entry {
	s.mu.Lock()
	e := s.entries
	s.entries = nil
	s.mu.Unlock()
	return e
}

// Len returns the entry count.
func (s *Set) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Table maps evacuation-set regions to their remembered sets. With
// RegionBlocks == 0 a single whole-heap set is used (the paper's default
// configuration).
type Table struct {
	reuse        *meta.LineCounters
	RegionBlocks int
	whole        Set
	regions      map[int]*Set // region index -> set
	mu           sync.Mutex
}

// NewTable creates a remembered-set table. reuse supplies per-line reuse
// counters; regionBlocks selects regional sets (0 = single set).
func NewTable(reuse *meta.LineCounters, regionBlocks int) *Table {
	return &Table{reuse: reuse, RegionBlocks: regionBlocks, regions: make(map[int]*Set)}
}

// Record notes that slot holds a reference into the evacuation set whose
// target block is targetBlock. The entry is tagged with the current
// reuse count of the slot's line.
func (t *Table) Record(slot mem.Address, targetBlock int) {
	e := Entry{Slot: slot, Tag: t.reuse.GetAddr(slot)}
	t.setFor(targetBlock).add(e)
}

func (t *Table) setFor(block int) *Set {
	if t.RegionBlocks == 0 {
		return &t.whole
	}
	r := block / t.RegionBlocks
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.regions[r]
	if !ok {
		s = &Set{}
		t.regions[r] = s
	}
	return s
}

// TakeAll removes and returns every entry across all sets.
func (t *Table) TakeAll() []Entry {
	out := t.whole.Take()
	t.mu.Lock()
	regions := make([]*Set, 0, len(t.regions))
	for _, s := range t.regions {
		regions = append(regions, s)
	}
	t.regions = make(map[int]*Set)
	t.mu.Unlock()
	for _, s := range regions {
		out = append(out, s.Take()...)
	}
	return out
}

// Valid reports whether an entry is still trustworthy: the slot's line
// must not have been reused since the entry was created. Stale entries
// could point at non-pointer data, so they are discarded (§3.3.2).
func (t *Table) Valid(e Entry) bool {
	return t.reuse.GetAddr(e.Slot) == e.Tag
}

// Len returns the total number of entries across all sets.
func (t *Table) Len() int {
	n := t.whole.Len()
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range t.regions {
		n += s.Len()
	}
	return n
}
