package remset_test

import (
	"testing"

	"lxr/internal/mem"
	"lxr/internal/meta"
	"lxr/internal/remset"
)

func setup() (*meta.LineCounters, *remset.Table) {
	a := mem.NewArena(4 << 20)
	lc := meta.NewLineCounters(a)
	return lc, remset.NewTable(lc, 0)
}

func TestRecordTake(t *testing.T) {
	_, rs := setup()
	slot := mem.BlockStart(1).Plus(24)
	rs.Record(slot, 5)
	rs.Record(slot.Plus(8), 5)
	if rs.Len() != 2 {
		t.Fatalf("len %d", rs.Len())
	}
	es := rs.TakeAll()
	if len(es) != 2 || es[0].Slot != slot {
		t.Fatalf("entries %v", es)
	}
	if rs.Len() != 0 {
		t.Fatal("TakeAll did not clear")
	}
}

func TestReuseCounterInvalidation(t *testing.T) {
	lc, rs := setup()
	slot := mem.BlockStart(1).Plus(40)
	rs.Record(slot, 3)
	e := rs.TakeAll()[0]
	if !rs.Valid(e) {
		t.Fatal("fresh entry must be valid")
	}
	lc.Bump(slot.Line()) // the line was reclaimed and reused
	if rs.Valid(e) {
		t.Fatal("entry must be invalid after line reuse")
	}
}

func TestRegionalSets(t *testing.T) {
	a := mem.NewArena(16 << 20)
	lc := meta.NewLineCounters(a)
	rs := remset.NewTable(lc, 128)    // 4 MB regions
	rs.Record(mem.BlockStart(1), 1)   // region 0
	rs.Record(mem.BlockStart(2), 200) // region 1
	if rs.Len() != 2 {
		t.Fatalf("len %d", rs.Len())
	}
	if got := len(rs.TakeAll()); got != 2 {
		t.Fatalf("TakeAll %d", got)
	}
}
