//go:build !race

package mem

// zeroPrivate clears n words starting at word index w with plain stores.
// The range loop over a subslice compiles to a runtime memclr — roughly
// an order of magnitude faster than the word-atomic store loop — which
// is why allocator-private block zeroing routes here. See
// Arena.ZeroPrivate for the privacy contract that makes this sound.
func (a *Arena) zeroPrivate(w, n int) {
	s := a.words[w : w+n]
	for i := range s {
		s[i] = 0
	}
}
