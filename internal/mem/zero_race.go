//go:build race

package mem

import "sync/atomic"

// zeroPrivate under the race detector: the defensive stale-reference
// probes ZeroPrivate's contract permits are value-benign but are still
// data races by the memory model, so race-instrumented builds use
// word-atomic stores — the suite stays detector-clean by construction
// while normal builds get the bulk memclr (zero_norace.go).
func (a *Arena) zeroPrivate(w, n int) {
	for end := w + n; w < end; w++ {
		atomic.StoreUint64(&a.words[w], 0)
	}
}
