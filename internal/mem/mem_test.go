package mem_test

import (
	"testing"
	"testing/quick"

	"lxr/internal/mem"
)

func TestGeometryConstants(t *testing.T) {
	if mem.BlockSize != 32<<10 {
		t.Fatalf("block size %d", mem.BlockSize)
	}
	if mem.LineSize != 256 {
		t.Fatalf("line size %d", mem.LineSize)
	}
	if mem.LinesPerBlock != 128 {
		t.Fatalf("lines/block %d", mem.LinesPerBlock)
	}
	if mem.GranulesPerBlock != 2048 {
		t.Fatalf("granules/block %d", mem.GranulesPerBlock)
	}
	if mem.GranulesPerLine != 16 {
		t.Fatalf("granules/line %d", mem.GranulesPerLine)
	}
}

func TestArenaReservesBlockZero(t *testing.T) {
	a := mem.NewArena(1 << 20)
	if a.FirstUsableBlock() != 1 {
		t.Fatal("block 0 must be reserved")
	}
	if a.Contains(0) {
		t.Fatal("nil address must not be Contained")
	}
	if !a.Contains(mem.BlockStart(1)) {
		t.Fatal("first usable block must be Contained")
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	a := mem.NewArena(1 << 20)
	addr := mem.BlockStart(1)
	a.Store(addr, 0xdeadbeefcafe)
	if got := a.Load(addr); got != 0xdeadbeefcafe {
		t.Fatalf("got %x", got)
	}
	if !a.CAS(addr, 0xdeadbeefcafe, 7) {
		t.Fatal("CAS should succeed")
	}
	if a.CAS(addr, 0xdeadbeefcafe, 9) {
		t.Fatal("CAS should fail")
	}
	if got := a.Load(addr); got != 7 {
		t.Fatalf("got %d", got)
	}
}

func TestZeroAndCopy(t *testing.T) {
	a := mem.NewArena(1 << 20)
	src := mem.BlockStart(1)
	dst := mem.BlockStart(2)
	for i := 0; i < 8; i++ {
		a.Store(src.Plus(i*8), uint64(i+1))
	}
	a.Copy(dst, src, 64)
	for i := 0; i < 8; i++ {
		if got := a.Load(dst.Plus(i * 8)); got != uint64(i+1) {
			t.Fatalf("copy word %d = %d", i, got)
		}
	}
	a.Zero(src, 64)
	for i := 0; i < 8; i++ {
		if a.Load(src.Plus(i*8)) != 0 {
			t.Fatal("zero failed")
		}
	}
	if a.Checksum(dst, 64) != 1+2+3+4+5+6+7+8 {
		t.Fatal("checksum mismatch")
	}
}

func TestAddressArithmeticProperties(t *testing.T) {
	// Block/line/granule indices must nest consistently.
	f := func(raw uint32) bool {
		a := mem.Address(raw)
		if a.Line()/mem.LinesPerBlock != a.Block() {
			return false
		}
		if a.Granule()/mem.GranulesPerBlock != a.Block() {
			return false
		}
		if a.Granule()/mem.GranulesPerLine != a.Line() {
			return false
		}
		if a.LineInBlock() != a.Line()-a.Block()*mem.LinesPerBlock {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAlignUp(t *testing.T) {
	f := func(raw uint32, shift uint8) bool {
		align := 1 << (shift % 12)
		a := mem.Address(raw).AlignUp(align)
		return a%mem.Address(align) == 0 && a >= mem.Address(raw) && a < mem.Address(raw)+mem.Address(align)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBlockLineStarts(t *testing.T) {
	for i := 0; i < 100; i++ {
		if mem.BlockStart(i).Block() != i {
			t.Fatalf("BlockStart(%d) inconsistent", i)
		}
		if mem.LineStart(i).Line() != i {
			t.Fatalf("LineStart(%d) inconsistent", i)
		}
		if mem.GranuleStart(i).Granule() != i {
			t.Fatalf("GranuleStart(%d) inconsistent", i)
		}
	}
}
