// Package mem provides the simulated heap memory substrate: a contiguous
// word-addressed arena carved into Immix-sized blocks and lines.
//
// All garbage-collected "objects" in this repository live inside an Arena
// and are referred to by an Address, a byte offset from the arena base.
// Address 0 is reserved as the nil reference: block 0 of every arena is
// never handed to an allocator.
//
// The arena is backed by a []uint64 so that reference slots, object
// headers, and forwarding words can be accessed with the atomic operations
// required by concurrent collectors (SATB barriers, concurrent evacuation).
package mem

import (
	"fmt"
	"sync/atomic"
)

// Heap geometry. These mirror the constants used by Immix and LXR
// (Blackburn & McKinley 2008; Zhao, Blackburn & McKinley 2022): 32 KB
// blocks composed of 256 B lines, with a 16 B allocation granule.
const (
	// WordLog is log2 of the machine word size in bytes.
	WordLog = 3
	// WordSize is the machine word size in bytes.
	WordSize = 1 << WordLog

	// BlockSizeLog is log2 of the Immix block size.
	BlockSizeLog = 15
	// BlockSize is the Immix block size in bytes (32 KB).
	BlockSize = 1 << BlockSizeLog

	// LineSizeLog is log2 of the Immix line size.
	LineSizeLog = 8
	// LineSize is the Immix line size in bytes (256 B).
	LineSize = 1 << LineSizeLog

	// LinesPerBlock is the number of lines in a block (128).
	LinesPerBlock = BlockSize / LineSize

	// GranuleLog is log2 of the allocation granule.
	GranuleLog = 4
	// Granule is the allocation granule in bytes: the minimum object
	// size and alignment. The reference-count table keeps one 2-bit
	// count per granule.
	Granule = 1 << GranuleLog

	// GranulesPerLine is the number of RC granules per line (16).
	GranulesPerLine = LineSize / Granule
	// GranulesPerBlock is the number of RC granules per block (2048).
	GranulesPerBlock = BlockSize / Granule

	// WordsPerBlock is the number of 8-byte words in a block.
	WordsPerBlock = BlockSize / WordSize
	// WordsPerLine is the number of 8-byte words in a line.
	WordsPerLine = LineSize / WordSize
)

// Address is a byte offset into an Arena. The zero Address is the nil
// reference.
type Address uint64

// Nil is the null reference.
const Nil Address = 0

// IsNil reports whether a is the nil reference.
func (a Address) IsNil() bool { return a == 0 }

// Block returns the index of the block containing a.
func (a Address) Block() int { return int(a >> BlockSizeLog) }

// Line returns the global line index (across the whole arena) of the line
// containing a.
func (a Address) Line() int { return int(a >> LineSizeLog) }

// LineInBlock returns the index within its block of the line containing a.
func (a Address) LineInBlock() int { return int(a>>LineSizeLog) & (LinesPerBlock - 1) }

// Granule returns the global granule index of the granule containing a.
func (a Address) Granule() int { return int(a >> GranuleLog) }

// Word returns the global word index of the word containing a.
func (a Address) Word() int { return int(a >> WordLog) }

// BlockOffset returns the byte offset of a within its block.
func (a Address) BlockOffset() int { return int(a & (BlockSize - 1)) }

// Plus returns the address advanced by n bytes.
func (a Address) Plus(n int) Address { return a + Address(n) }

// AlignUp rounds a up to the given power-of-two alignment.
func (a Address) AlignUp(align int) Address {
	return (a + Address(align) - 1) &^ (Address(align) - 1)
}

// BlockStart returns the address of the first byte of block idx.
func BlockStart(idx int) Address { return Address(idx) << BlockSizeLog }

// LineStart returns the address of the first byte of global line idx.
func LineStart(idx int) Address { return Address(idx) << LineSizeLog }

// GranuleStart returns the address of the first byte of global granule idx.
func GranuleStart(idx int) Address { return Address(idx) << GranuleLog }

// Arena is a contiguous simulated heap. It is safe for concurrent use:
// word accesses use sync/atomic so that mutator threads and collector
// threads may race on reference slots exactly the way a real runtime does.
type Arena struct {
	words  []uint64
	size   Address // size in bytes
	blocks int
}

// NewArena creates an arena with at least size bytes of usable heap.
// The size is rounded up to a whole number of blocks, plus one extra
// reserved block so that Address 0 is never a valid object address.
func NewArena(size int) *Arena {
	if size <= 0 {
		panic(fmt.Sprintf("mem: invalid arena size %d", size))
	}
	blocks := (size + BlockSize - 1) / BlockSize
	blocks++ // reserve block 0 for the nil address
	return &Arena{
		words:  make([]uint64, blocks*WordsPerBlock),
		size:   Address(blocks) << BlockSizeLog,
		blocks: blocks,
	}
}

// Size returns the arena size in bytes, including the reserved block.
func (a *Arena) Size() int { return int(a.size) }

// Blocks returns the total number of blocks, including reserved block 0.
func (a *Arena) Blocks() int { return a.blocks }

// UsableBlocks returns the number of blocks available to allocators.
func (a *Arena) UsableBlocks() int { return a.blocks - 1 }

// FirstUsableBlock returns the index of the first block allocators may use.
func (a *Arena) FirstUsableBlock() int { return 1 }

// Contains reports whether addr lies within the arena (and is non-nil).
func (a *Arena) Contains(addr Address) bool {
	return addr > 0 && addr < a.size
}

// Load reads the word at addr. addr must be word aligned.
func (a *Arena) Load(addr Address) uint64 {
	return atomic.LoadUint64(&a.words[addr>>WordLog])
}

// Store writes the word at addr. addr must be word aligned.
func (a *Arena) Store(addr Address, v uint64) {
	atomic.StoreUint64(&a.words[addr>>WordLog], v)
}

// CAS performs a compare-and-swap on the word at addr.
func (a *Arena) CAS(addr Address, old, new uint64) bool {
	return atomic.CompareAndSwapUint64(&a.words[addr>>WordLog], old, new)
}

// LoadRef reads a reference slot at addr.
func (a *Arena) LoadRef(addr Address) Address {
	return Address(a.Load(addr))
}

// StoreRef writes a reference slot at addr.
func (a *Arena) StoreRef(addr Address, v Address) {
	a.Store(addr, uint64(v))
}

// Zero clears n bytes starting at addr. addr and n must be word aligned.
// This is the bulk-zeroing path used when blocks or line spans are handed
// to allocators. Each word is cleared atomically: a span can be zeroed
// by an evacuation worker's allocator while another worker atomically
// probes a plausible-but-stale reference that happens to land inside it
// (forwarding-word loads on values read through stale dirty/remset
// slots), and mixing plain and atomic access to the same word is a data
// race even when the probed value is discarded.
func (a *Arena) Zero(addr Address, n int) {
	w := int(addr >> WordLog)
	for end := w + n/WordSize; w < end; w++ {
		atomic.StoreUint64(&a.words[w], 0)
	}
}

// ZeroRange clears the bytes in [start, end).
func (a *Arena) ZeroRange(start, end Address) {
	a.Zero(start, int(end-start))
}

// ZeroPrivate clears the bytes in [start, end) with plain (non-atomic)
// stores, compiling to a bulk memclr. It is for ranges that are private
// to the caller — freshly acquired clean blocks a thread-local allocator
// has reserved but not yet published any object in. The only concurrent
// accesses that can land in such a range are defensive probes of stale
// references into the block's previous life (forwarding-word loads
// reached through plausibleRef on old dirty/remset/decrement values);
// every such probe's result is re-validated by the prober (saneRef,
// RC-zero and state checks that tolerate any torn value), so the races
// are value-benign — but they are still races by the memory model, so
// race-instrumented builds fall back to word-atomic stores (see
// zero_race.go) and stay detector-clean by construction. Shared ranges
// — recycled line spans inside published blocks — must keep using the
// word-atomic ZeroRange.
func (a *Arena) ZeroPrivate(start, end Address) {
	if start >= end {
		return
	}
	a.zeroPrivate(int(start>>WordLog), int(end-start)/WordSize)
}

// Copy copies n bytes from src to dst. Both must be word aligned. It is
// used for object evacuation, where both sides can be touched
// concurrently by other collector workers through word-atomic accesses:
// a parallel evacuation may update a dirty/remset slot in place while
// the object containing the slot is being copied, and forwarding-word
// probes of plausible-but-stale references can land inside a freshly
// allocated destination. The copy protocol converges either way (the
// new copy's slots are rescanned and every value resolves through its
// forwarding word), but the accesses themselves must be word-atomic —
// a plain memmove against concurrent atomics is a data race.
func (a *Arena) Copy(dst, src Address, n int) {
	dw := int(dst >> WordLog)
	sw := int(src >> WordLog)
	for i := 0; i < n/WordSize; i++ {
		atomic.StoreUint64(&a.words[dw+i], atomic.LoadUint64(&a.words[sw+i]))
	}
}

// Checksum computes a simple additive checksum over [start, start+n).
// It exists so that tests and workloads can "use" payload data, forcing
// real memory traffic through caches the way benchmark kernels do.
func (a *Arena) Checksum(start Address, n int) uint64 {
	w := int(start >> WordLog)
	var sum uint64
	for _, v := range a.words[w : w+n/WordSize] {
		sum += v
	}
	return sum
}
