package trace

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// span records a deterministic span s at offset off from the epoch.
func span(t *Tracer, shard int, name NameID, off, dur time.Duration, arg uint64) {
	t.Span(shard, name, t.Epoch().Add(off), dur, arg, 0)
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	tr.Span(ShardGC, NameFlush, time.Now(), time.Millisecond, 1, 2)
	tr.Phase(NameDecs, time.Now())
	tr.PhaseArg(NameSweep, time.Now(), 7)
	tr.Instant(ShardPolicy, NameBarrierSlow, 1, 2)
	if got := tr.Intern("pause:rc"); got != nameNone {
		t.Errorf("nil Intern = %d, want %d", got, nameNone)
	}
	if tr.TriggerHook() != nil {
		t.Error("nil TriggerHook should return nil")
	}
	if tr.Drain() != nil {
		t.Error("nil Drain should return nil")
	}
	if tr.Flight() {
		t.Error("nil Flight should be false")
	}
}

func TestShardCapRoundsToPowerOfTwo(t *testing.T) {
	tr := New(Config{ShardCap: 100})
	if got := len(tr.shards[0].slot); got != 128 {
		t.Errorf("ShardCap 100 -> ring size %d, want 128", got)
	}
	tr = New(Config{})
	if got := len(tr.shards[0].slot); got != DefaultShardCap {
		t.Errorf("default ring size %d, want %d", got, DefaultShardCap)
	}
}

// TestRingWraparound checks the overwrite-oldest contract: after W > cap
// single-threaded writes, the ring retains exactly the last cap events in
// record order and reports loss of exactly W - cap.
func TestRingWraparound(t *testing.T) {
	const cap = 16
	for _, writes := range []int{0, 1, cap - 1, cap, cap + 1, 3 * cap, 10*cap + 5} {
		tr := New(Config{ShardCap: cap, Flight: true})
		for i := 0; i < writes; i++ {
			span(tr, ShardGC, NameFlush, time.Duration(i)*time.Microsecond, time.Microsecond, uint64(i))
		}
		d := tr.Drain()[ShardGC]

		wantLost := 0
		if writes > cap {
			wantLost = writes - cap
		}
		if int(d.Lost) != wantLost {
			t.Errorf("writes=%d: lost=%d, want %d", writes, d.Lost, wantLost)
		}
		wantKept := writes - wantLost
		if len(d.Events) != wantKept {
			t.Fatalf("writes=%d: kept %d events, want %d", writes, len(d.Events), wantKept)
		}
		for i, ev := range d.Events {
			if want := uint64(wantLost + i); ev.Arg != want {
				t.Fatalf("writes=%d: event %d has arg %d, want %d (oldest surviving = first lost+1)",
					writes, i, ev.Arg, want)
			}
		}
		if !tr.Flight() {
			t.Error("Flight() lost the flight flag")
		}
	}
}

// TestDrainIsRepeatable checks that Drain is a snapshot, not a consume:
// two quiescent drains see the same events.
func TestDrainIsRepeatable(t *testing.T) {
	tr := New(Config{ShardCap: 8})
	for i := 0; i < 20; i++ {
		span(tr, ShardConc, NameQuantum, time.Duration(i)*time.Microsecond, time.Microsecond, uint64(i))
	}
	a := tr.Drain()[ShardConc]
	b := tr.Drain()[ShardConc]
	if a.Lost != b.Lost || len(a.Events) != len(b.Events) {
		t.Fatalf("drains disagree: lost %d/%d, events %d/%d", a.Lost, b.Lost, len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs across drains", i)
		}
	}
}

// TestConcurrentRecordPerShardOrder is the concurrent-record property
// test: R goroutines each own one shard and write a per-writer sequence
// number. After quiescence every shard must retain its trailing window in
// order with loss exactly writes - capacity, regardless of cross-shard
// interleaving. Run under -race this also proves the record path clean
// against itself.
func TestConcurrentRecordPerShardOrder(t *testing.T) {
	const (
		cap    = 64
		writes = 50 * cap
	)
	tr := New(Config{ShardCap: cap})
	var wg sync.WaitGroup
	for s := 0; s < NumShards; s++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			for i := 0; i < writes; i++ {
				tr.Instant(shard, NameAllocPublish, uint64(i), uint64(shard))
			}
		}(s)
	}
	wg.Wait()

	for _, d := range tr.Drain() {
		if int(d.Lost) != writes-cap {
			t.Errorf("shard %d: lost=%d, want %d", d.Shard, d.Lost, writes-cap)
		}
		if len(d.Events) != cap {
			t.Fatalf("shard %d: kept %d events, want %d", d.Shard, len(d.Events), cap)
		}
		for i, ev := range d.Events {
			if want := uint64(writes - cap + i); ev.Arg != want {
				t.Fatalf("shard %d: event %d has seq %d, want %d (per-shard order broken)",
					d.Shard, i, ev.Arg, want)
			}
			if ev.Arg2 != uint64(d.Shard) {
				t.Fatalf("shard %d: event %d carries shard tag %d (cross-shard bleed)", d.Shard, i, ev.Arg2)
			}
		}
	}
}

// TestConcurrentSharedShard hammers one shard from many writers and
// drains concurrently. The mid-flight drains only need to not crash, not
// tear, and stay in ticket order; the final quiescent drain must account
// exactly.
func TestConcurrentSharedShard(t *testing.T) {
	const (
		cap     = 32
		writers = 8
		each    = 20 * cap
	)
	tr := New(Config{ShardCap: cap})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent reader: torn slots must be dropped, not returned
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			d := tr.Drain()[ShardGC]
			if len(d.Events) > cap {
				t.Errorf("mid-flight drain returned %d events, cap %d", len(d.Events), cap)
				return
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				tr.Instant(ShardGC, NameBarrierSlow, uint64(i), 0)
			}
		}()
	}
	// The reader only exits on stop; release it once every writer's
	// ticket has been claimed, then wait for full quiescence before the
	// exact-accounting drain.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		h := tr.shards[ShardGC].head.Load()
		if h == uint64(writers*each) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done

	d := tr.Drain()[ShardGC]
	total := writers * each
	if int(d.Lost) != total-cap {
		t.Errorf("lost=%d, want %d", d.Lost, total-cap)
	}
	if len(d.Events) != cap {
		t.Errorf("kept %d events, want %d", len(d.Events), cap)
	}
}

// TestInternStableAndConcurrent checks interning: builtins resolve to
// their fixed IDs, refined names are stable across calls, and concurrent
// first-sight interning of the same name converges on one ID.
func TestInternStableAndConcurrent(t *testing.T) {
	tr := New(Config{ShardCap: 8})
	if got := tr.Intern("rendezvous"); got != NameRendezvous {
		t.Errorf("Intern(rendezvous) = %d, want builtin %d", got, NameRendezvous)
	}
	id := tr.Intern("pause:rc+mark")
	if id < numBuiltin {
		t.Errorf("refined name landed on builtin ID %d", id)
	}
	if again := tr.Intern("pause:rc+mark"); again != id {
		t.Errorf("re-Intern gave %d, want %d", again, id)
	}
	if got := tr.nameOf(id); got != "pause:rc+mark" {
		t.Errorf("nameOf(%d) = %q", id, got)
	}

	const workers = 8
	ids := make([]NameID, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ids[w] = tr.Intern(fmt.Sprintf("trigger:kind-%d", i%4))
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if ids[w] != ids[0] {
			t.Fatalf("concurrent Intern diverged: %d vs %d", ids[w], ids[0])
		}
	}
}

// TestTriggerHook checks the policy-shard trigger instants carry the
// refined kind name and both float payloads.
func TestTriggerHook(t *testing.T) {
	tr := New(Config{ShardCap: 8})
	hook := tr.TriggerHook()
	if hook == nil {
		t.Fatal("TriggerHook returned nil on live tracer")
	}
	hook("ihop", 0.61, 0.45)
	d := tr.Drain()[ShardPolicy]
	if len(d.Events) != 1 {
		t.Fatalf("policy shard has %d events, want 1", len(d.Events))
	}
	ev := d.Events[0]
	if got := tr.nameOf(ev.Name); got != "trigger:ihop" {
		t.Errorf("trigger name %q, want trigger:ihop", got)
	}
	if ev.Kind != KindInstant {
		t.Errorf("trigger kind %d, want instant", ev.Kind)
	}
}

func TestMutShardLanes(t *testing.T) {
	for id := uint64(0); id < 3*MutShards; id++ {
		s := MutShard(id)
		if s < 3 || s >= NumShards {
			t.Fatalf("MutShard(%d) = %d, outside mutator lanes [3,%d)", id, s, NumShards)
		}
		if s != MutShard(id+MutShards) {
			t.Fatalf("MutShard not periodic at id %d", id)
		}
	}
}
