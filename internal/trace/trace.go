// Package trace is the GC event tracer: a sharded, fixed-capacity,
// overwrite-oldest flight recorder for structured runtime events
// (pauses, rendezvous, collector phases, concurrent quanta, worker
// loans, pacing triggers, sampled barrier activity) with a Chrome
// trace-event JSON exporter that opens directly in Perfetto.
//
// The design goals mirror internal/telemetry: the record path is
// 0-alloc, lock-free and constant-memory, so tracing can stay on for
// arbitrarily long runs; and a *Tracer that is nil records nothing, so
// every instrumentation site costs exactly one predictable branch when
// tracing is off (the fastbench family gates this).
//
// # Ring protocol
//
// Each shard is a power-of-two ring of cache-line-sized slots guarded
// by per-slot sequence numbers (a seqlock specialised for an
// overwrite-oldest ring). A writer claims a global ticket t with one
// atomic add, then publishes into slot t&mask:
//
//	want = 0 if t < cap else 2*(t-cap+1)   // previous lap fully published
//	spin until slot.seq == want            // only contended when lapped mid-write
//	slot.seq = 2*(t+1) - 1                 // odd: write in progress
//	slot.{t,dur,arg,arg2,meta} = event
//	slot.seq = 2*(t+1)                     // even: published
//
// Readers validate seq == 2*(t+1) before and after copying and discard
// torn slots, so draining is safe at any time; at quiescence every
// retained slot validates and the loss is exactly max(0, tickets−cap).
// Slot fields are individually atomic, which keeps concurrent
// drain-while-recording clean under the race detector; the stores cost
// nothing that matters on paths that already took a pause or a loan.
package trace

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// NameID is an interned event name. Built-in names have fixed IDs
// (usable from any package without a lookup); refined names discovered
// at run time — pause kinds, trigger kinds — are interned with
// Tracer.Intern.
type NameID uint16

// Built-in event names. The order must match builtinNames.
const (
	nameNone NameID = iota

	// Spans and instants on the rendezvous/concurrent side.
	NameRendezvous   // stop-request → world-stopped (dur = TTSP)
	NameQuantum      // one concurrent-controller work quantum
	NameLoan         // worker loan: lend → reclaim
	NameInterrupt    // loan interrupted (instant)
	NameBarrierSlow  // sampled write-barrier slow path (instant)
	NameAllocPublish // allocation-counter publish grain (instant)

	// LXR pause-pipeline phases.
	NameFlush      // per-mutator buffer flush
	NameDecs       // pending-decrement finish
	NameSATBSeed   // SATB seed + in-pause drain
	NameIncrements // modbuf increment drain
	NameResolve    // tracer pending-resolve
	NameRootDecs   // root decrement diff + resolve
	NameReclaim    // reclaimable release
	NameSweep      // young/large sweep
	NameSATBFinal  // SATB finalize
	NamePacer      // pacer epoch observation + cycle start
	NameDecSubmit  // decrement submission / in-pause processing

	// Baseline collector phases (G1, Shenandoah/ZGC, SemiSpace, Immix).
	NameFinalMark    // final mark: drain captures, finish tracer
	NameRoots        // root gather / scan
	NameEvac         // evacuation copy
	NameAudit        // post-evacuation audit
	NameFree         // region/space release
	NameMarkStart    // concurrent mark trigger
	NameInitMark     // Shen init-mark pause body
	NameConcMark     // Shen concurrent mark
	NameUpdateRefs   // Shen concurrent update-refs
	NameFinalUpdate  // Shen final-update pause body
	NameFlip         // semispace half flip
	NameCopy         // semispace copy closure
	NameClear        // Immix mark/line clear
	NameMark         // Immix STW mark
	NameSweepRebuild // Immix sweep-classify rebuild

	numBuiltin
)

var builtinNames = [numBuiltin]string{
	nameNone:         "",
	NameRendezvous:   "rendezvous",
	NameQuantum:      "quantum",
	NameLoan:         "loan",
	NameInterrupt:    "interrupt",
	NameBarrierSlow:  "barrier-slow",
	NameAllocPublish: "alloc-publish",
	NameFlush:        "flush",
	NameDecs:         "decs",
	NameSATBSeed:     "satb-seed",
	NameIncrements:   "increments",
	NameResolve:      "resolve",
	NameRootDecs:     "root-decs",
	NameReclaim:      "reclaim",
	NameSweep:        "sweep",
	NameSATBFinal:    "satb-final",
	NamePacer:        "pacer",
	NameDecSubmit:    "dec-submit",
	NameFinalMark:    "final-mark",
	NameRoots:        "roots",
	NameEvac:         "evac",
	NameAudit:        "audit",
	NameFree:         "free",
	NameMarkStart:    "mark-start",
	NameInitMark:     "init-mark",
	NameConcMark:     "conc-mark",
	NameUpdateRefs:   "update-refs",
	NameFinalUpdate:  "final-update",
	NameFlip:         "flip",
	NameCopy:         "copy",
	NameClear:        "clear",
	NameMark:         "mark",
	NameSweepRebuild: "sweep-rebuild",
}

// Event kinds.
const (
	KindSpan    = 1 // T..T+Dur
	KindInstant = 2 // point event at T, Dur = 0
)

// Shard layout. The STW path (rendezvous, pause, phase spans) is
// serialized under the VM's stop lock, so it owns one shard and its
// spans nest cleanly; the concurrent controller owns another (its
// quanta can *contain* pauses — Shenandoah runs whole cycles per
// quantum — so it must be a separate timeline); pacing triggers fire
// from both mutator polls and pauses and get their own; sampled
// mutator instants spread over MutShards lanes by mutator ID.
const (
	ShardGC     = 0
	ShardConc   = 1
	ShardPolicy = 2
	// MutShards is how many lanes carry sampled mutator instants.
	MutShards = 8
	// NumShards is the total shard count.
	NumShards = 3 + MutShards
)

// MutShard maps a mutator ID to its instant lane.
func MutShard(id uint64) int { return 3 + int(id%MutShards) }

// shardLabel names each shard's exported timeline.
func shardLabel(s int) string {
	switch s {
	case ShardGC:
		return "gc"
	case ShardConc:
		return "conctrl"
	case ShardPolicy:
		return "policy"
	}
	return "mut" + string(rune('0'+(s-3)))
}

// Event is one decoded trace event.
type Event struct {
	T    int64 // start, ns since Tracer.Epoch
	Dur  int64 // span duration in ns (0 for instants)
	Arg  uint64
	Arg2 uint64
	Name NameID
	Kind uint8 // KindSpan or KindInstant
}

// slot is one ring entry: a seqlock-guarded event sized to a cache
// line so neighbouring publishes never false-share.
type slot struct {
	seq  atomic.Uint64
	t    atomic.Int64
	dur  atomic.Int64
	arg  atomic.Uint64
	arg2 atomic.Uint64
	meta atomic.Uint64 // NameID | Kind<<16
}

// ring is one shard's fixed-capacity overwrite-oldest event buffer.
type ring struct {
	head atomic.Uint64 // next ticket
	_    [7]uint64     // keep the hot ticket off the slots' lines
	mask uint64
	slot []slot
}

func newRing(capPow2 int) *ring {
	return &ring{mask: uint64(capPow2 - 1), slot: make([]slot, capPow2)}
}

// record claims a ticket and publishes ev. Lock-free except when a
// writer has been lapped mid-publish (requires capacity concurrent
// in-flight writes on one shard — vanishingly rare at real sizes).
func (r *ring) record(ev Event) {
	t := r.head.Add(1) - 1
	s := &r.slot[t&r.mask]
	var want uint64
	if n := uint64(len(r.slot)); t >= n {
		want = 2 * (t - n + 1)
	}
	for s.seq.Load() != want {
		// Lapped mid-write: yield until the straggler publishes.
		runtime.Gosched()
	}
	s.seq.Store(2*(t+1) - 1)
	s.t.Store(ev.T)
	s.dur.Store(ev.Dur)
	s.arg.Store(ev.Arg)
	s.arg2.Store(ev.Arg2)
	s.meta.Store(uint64(ev.Name) | uint64(ev.Kind)<<16)
	s.seq.Store(2 * (t + 1))
}

// drain copies out the retained events in ticket (record) order,
// discarding slots torn by concurrent writers. lost counts overwritten
// events; at quiescence it is exactly max(0, writes − capacity).
func (r *ring) drain() (events []Event, lost uint64) {
	h := r.head.Load()
	n := uint64(len(r.slot))
	start := uint64(0)
	if h > n {
		start = h - n
		lost = start
	}
	events = make([]Event, 0, h-start)
	for t := start; t < h; t++ {
		s := &r.slot[t&r.mask]
		want := 2 * (t + 1)
		if s.seq.Load() != want {
			continue
		}
		ev := Event{T: s.t.Load(), Dur: s.dur.Load(), Arg: s.arg.Load(), Arg2: s.arg2.Load()}
		m := s.meta.Load()
		ev.Name, ev.Kind = NameID(m&0xffff), uint8(m>>16)
		if s.seq.Load() != want {
			continue
		}
		events = append(events, ev)
	}
	return events, lost
}

// Config sizes a Tracer.
type Config struct {
	// ShardCap is the per-shard ring capacity in events, rounded up to
	// a power of two. 0 selects DefaultShardCap.
	ShardCap int
	// Flight marks the tracer as a flight recorder: rings are sized to
	// the trailing window the caller wants dumped on drift/failure
	// rather than the whole run. The ring machinery is identical; the
	// flag only changes how consumers label the output.
	Flight bool
}

// DefaultShardCap is the full-run per-shard ring capacity: 16Ki events
// x 64B slots = 1 MiB per shard, 11 MiB per tracer.
const DefaultShardCap = 1 << 14

// Tracer records structured GC events into per-shard rings. A nil
// *Tracer is valid and records nothing — instrumentation sites pay one
// nil check when tracing is off.
type Tracer struct {
	epoch  time.Time
	flight bool

	shards [NumShards]*ring

	mu    sync.RWMutex
	names []string          // NameID -> name
	ids   map[string]NameID // name -> NameID
}

// New creates a Tracer whose timestamps are relative to now.
func New(cfg Config) *Tracer {
	capPow2 := cfg.ShardCap
	if capPow2 <= 0 {
		capPow2 = DefaultShardCap
	}
	p := 1
	for p < capPow2 {
		p <<= 1
	}
	t := &Tracer{
		epoch:  time.Now(),
		flight: cfg.Flight,
		names:  append([]string(nil), builtinNames[:]...),
		ids:    make(map[string]NameID, numBuiltin),
	}
	for id, s := range builtinNames {
		if s != "" {
			t.ids[s] = NameID(id)
		}
	}
	for i := range t.shards {
		t.shards[i] = newRing(p)
	}
	return t
}

// Epoch is the wall-clock origin of event timestamps.
func (t *Tracer) Epoch() time.Time { return t.epoch }

// Flight reports whether the tracer was configured as a flight
// recorder.
func (t *Tracer) Flight() bool { return t != nil && t.flight }

// Intern resolves a name to its ID, registering it on first use.
// Intern takes only a leaf read-lock (write-lock on first sight of a
// name), so it is safe from trigger paths that must never wait on
// collector locks; hot paths should still cache the result.
func (t *Tracer) Intern(name string) NameID {
	if t == nil {
		return nameNone
	}
	t.mu.RLock()
	id, ok := t.ids[name]
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.ids[name]; ok {
		return id
	}
	id = NameID(len(t.names))
	t.names = append(t.names, name)
	t.ids[name] = id
	return id
}

// nameOf decodes an interned ID (empty for unknown).
func (t *Tracer) nameOf(id NameID) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if int(id) < len(t.names) {
		return t.names[id]
	}
	return ""
}

// Span records a completed span on a shard. start/dur come from the
// caller so refined names (the pause kind is only known once the pause
// body has run) can be attached when the span closes; the exporter
// re-expands each record into a begin/end pair.
func (t *Tracer) Span(shard int, name NameID, start time.Time, dur time.Duration, arg, arg2 uint64) {
	if t == nil {
		return
	}
	t.shards[shard].record(Event{
		T: start.Sub(t.epoch).Nanoseconds(), Dur: dur.Nanoseconds(),
		Arg: arg, Arg2: arg2, Name: name, Kind: KindSpan,
	})
}

// Phase records a completed collector phase on the GC shard, ending
// now. Phase spans are recorded inside a pause body, so they nest
// inside the enclosing pause span by construction.
func (t *Tracer) Phase(name NameID, start time.Time) {
	if t == nil {
		return
	}
	t.Span(ShardGC, name, start, time.Since(start), 0, 0)
}

// PhaseArg is Phase with a payload (items processed, bytes, ...).
func (t *Tracer) PhaseArg(name NameID, start time.Time, arg uint64) {
	if t == nil {
		return
	}
	t.Span(ShardGC, name, start, time.Since(start), arg, 0)
}

// Instant records a point event happening now.
func (t *Tracer) Instant(shard int, name NameID, arg, arg2 uint64) {
	if t == nil {
		return
	}
	t.shards[shard].record(Event{
		T:   time.Since(t.epoch).Nanoseconds(),
		Arg: arg, Arg2: arg2, Name: name, Kind: KindInstant,
	})
}

// TriggerHook returns a wait-free pacing-trigger observer that records
// "trigger:<kind>" instants on the policy shard, with the signal and
// threshold float bits as payload (policy.SetTriggerHook installs it).
// Returns nil on a nil tracer.
func (t *Tracer) TriggerHook() func(kind string, signal, threshold float64) {
	if t == nil {
		return nil
	}
	return func(kind string, signal, threshold float64) {
		t.Instant(ShardPolicy, t.Intern("trigger:"+kind),
			math.Float64bits(signal), math.Float64bits(threshold))
	}
}

// ShardDump is one shard's drained timeline.
type ShardDump struct {
	Shard  int
	Label  string
	Lost   uint64 // events overwritten (exact at quiescence)
	Events []Event
}

// Drain snapshots every shard's retained events in record order. Safe
// while writers are still recording (torn slots are discarded); exact
// once the run has quiesced.
func (t *Tracer) Drain() []ShardDump {
	if t == nil {
		return nil
	}
	out := make([]ShardDump, NumShards)
	for i, r := range t.shards {
		ev, lost := r.drain()
		out[i] = ShardDump{Shard: i, Label: shardLabel(i), Lost: lost, Events: ev}
	}
	return out
}
