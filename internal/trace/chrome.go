package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// chromeEvent is one entry of the Chrome trace-event format (the JSON
// Perfetto's legacy importer reads): B/E span pairs, "i" instants and
// "M" metadata, timestamps in microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the object-form container: the event array plus
// metadata consumers can ignore (Perfetto does) but the flight-dump
// cross-referencing workflow needs — the tracer epoch in absolute
// unix ns, per-shard loss counts, and the dump reason.
type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// endpoint is one sortable timeline entry: a span begin, a span end,
// or an instant.
type endpoint struct {
	ns   int64 // event time
	ph   byte  // 'B', 'E' or 'i'
	dur  int64 // span duration (tie-breaking)
	name string
	arg  uint64
	arg2 uint64
}

// WriteChrome drains the tracer and writes the full timeline as Chrome
// trace-event JSON. extra is merged into otherData (dump reason, drift
// window index, run label). Safe to call while writers are still
// recording — torn slots are dropped — but loss accounting is only
// exact at quiescence.
func (t *Tracer) WriteChrome(w io.Writer, extra map[string]any) error {
	if t == nil {
		return fmt.Errorf("trace: nil tracer")
	}
	dumps := t.Drain()
	out := chromeTrace{
		DisplayTimeUnit: "ms",
		OtherData: map[string]any{
			"epoch_unix_ns": t.epoch.UnixNano(),
		},
	}
	lost := map[string]uint64{}
	for _, d := range dumps {
		if d.Lost > 0 {
			lost[d.Label] = d.Lost
		}
	}
	if len(lost) > 0 {
		out.OtherData["lost_events"] = lost
	}
	for k, v := range extra {
		out.OtherData[k] = v
	}
	for _, d := range dumps {
		if len(d.Events) == 0 {
			continue
		}
		tid := d.Shard + 1
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tid,
			Args: map[string]any{"name": d.Label},
		})
		eps := make([]endpoint, 0, 2*len(d.Events))
		for _, ev := range d.Events {
			name := t.nameOf(ev.Name)
			switch ev.Kind {
			case KindSpan:
				eps = append(eps,
					endpoint{ns: ev.T, ph: 'B', dur: ev.Dur, name: name, arg: ev.Arg, arg2: ev.Arg2},
					endpoint{ns: ev.T + ev.Dur, ph: 'E', dur: ev.Dur, name: name})
			case KindInstant:
				eps = append(eps, endpoint{ns: ev.T, ph: 'i', name: name, arg: ev.Arg, arg2: ev.Arg2})
			}
		}
		// A valid B/E stream needs, at equal timestamps: ends before
		// begins (a sibling span closing exactly where the next opens),
		// inner (shorter) spans ending before their enclosing span, and
		// enclosing (longer) spans beginning before their children.
		sort.SliceStable(eps, func(i, j int) bool {
			a, b := eps[i], eps[j]
			if a.ns != b.ns {
				return a.ns < b.ns
			}
			if a.ph != b.ph {
				return phaseOrder(a.ph) < phaseOrder(b.ph)
			}
			if a.ph == 'E' {
				return a.dur < b.dur
			}
			return a.dur > b.dur
		})
		for _, ep := range eps {
			ce := chromeEvent{
				Name: ep.name, Ph: string(ep.ph),
				TS: float64(ep.ns) / 1e3, PID: 1, TID: tid,
			}
			if ep.ph == 'i' {
				ce.S = "t"
			}
			if ep.ph != 'E' {
				ce.Args = eventArgs(ep.name, ep.arg, ep.arg2)
			}
			out.TraceEvents = append(out.TraceEvents, ce)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

func phaseOrder(ph byte) int {
	switch ph {
	case 'E':
		return 0
	case 'i':
		return 1
	}
	return 2 // 'B'
}

// eventArgs renders an event's payload words with per-name semantics.
func eventArgs(name string, arg, arg2 uint64) map[string]any {
	switch {
	case strings.HasPrefix(name, "pause:"):
		return map[string]any{"ttsp_us": float64(arg) / 1e3}
	case strings.HasPrefix(name, "trigger:"):
		return map[string]any{
			"signal":    math.Float64frombits(arg),
			"threshold": math.Float64frombits(arg2),
		}
	case name == "loan":
		return map[string]any{"workers": arg, "items": arg2}
	case name == "quantum":
		return map[string]any{"width": arg}
	case name == "rendezvous":
		if arg == 0 {
			return nil
		}
		return map[string]any{"mutators": arg}
	case name == "barrier-slow":
		return map[string]any{"slow_ops": arg}
	case name == "alloc-publish":
		return map[string]any{"bytes": arg}
	}
	if arg == 0 && arg2 == 0 {
		return nil
	}
	m := map[string]any{"a0": arg}
	if arg2 != 0 {
		m["a1"] = arg2
	}
	return m
}

// ValidateChrome checks that r holds well-formed Chrome trace-event
// JSON: it parses, contains at least one event, every B has a matching
// same-name E on its tid with stack discipline, and per-tid timestamps
// are monotone non-decreasing. The exporter golden test and the
// lxr-trace -validate CI step share this.
func ValidateChrome(r io.Reader) error {
	var tr struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			PID  int     `json:"pid"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&tr); err != nil {
		return fmt.Errorf("trace: parse: %w", err)
	}
	if len(tr.TraceEvents) == 0 {
		return fmt.Errorf("trace: no events")
	}
	type key struct{ pid, tid int }
	stacks := map[key][]string{}
	lastTS := map[key]float64{}
	for i, ev := range tr.TraceEvents {
		k := key{ev.PID, ev.TID}
		if ev.Ph == "M" {
			continue
		}
		if last, ok := lastTS[k]; ok && ev.TS < last {
			return fmt.Errorf("trace: event %d (%s %q): ts %.3f < previous %.3f on tid %d",
				i, ev.Ph, ev.Name, ev.TS, last, ev.TID)
		}
		lastTS[k] = ev.TS
		switch ev.Ph {
		case "B":
			stacks[k] = append(stacks[k], ev.Name)
		case "E":
			st := stacks[k]
			if len(st) == 0 {
				return fmt.Errorf("trace: event %d: E %q with empty stack on tid %d", i, ev.Name, ev.TID)
			}
			if top := st[len(st)-1]; top != ev.Name {
				return fmt.Errorf("trace: event %d: E %q closes B %q on tid %d", i, ev.Name, top, ev.TID)
			}
			stacks[k] = st[:len(st)-1]
		case "i", "I":
			// instants carry no stack state
		default:
			return fmt.Errorf("trace: event %d: unknown ph %q", i, ev.Ph)
		}
	}
	for k, st := range stacks {
		if len(st) > 0 {
			return fmt.Errorf("trace: tid %d: %d unclosed span(s), first %q", k.tid, len(st), st[0])
		}
	}
	return nil
}
