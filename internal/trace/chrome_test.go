package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// decodedTrace mirrors the exporter output for assertions.
type decodedTrace struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		S    string         `json:"s"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData"`
}

// goldenTracer builds a deterministic timeline resembling one LXR epoch:
// a rendezvous span abutting a pause span with three nested phases on the
// GC shard, a quantum containing a loan on the conctrl shard, a trigger
// instant on the policy shard and a sampled instant on a mutator lane.
func goldenTracer(t *testing.T) *Tracer {
	t.Helper()
	tr := New(Config{ShardCap: 64})
	us := func(n int64) time.Duration { return time.Duration(n) * time.Microsecond }
	pauseRC := tr.Intern("pause:rc")

	// GC shard: rendezvous [100,110), pause [110,200) with nested
	// flush [115,125), increments [130,170) containing sweep [140,160).
	span(tr, ShardGC, NameRendezvous, us(100), us(10), 3)
	tr.Span(ShardGC, pauseRC, tr.Epoch().Add(us(110)), us(90), 10000, 0)
	span(tr, ShardGC, NameFlush, us(115), us(10), 12)
	span(tr, ShardGC, NameIncrements, us(130), us(40), 4096)
	span(tr, ShardGC, NameSweep, us(140), us(20), 7)

	// Conctrl shard: quantum [50,300) containing loan [60,90).
	tr.Span(ShardConc, NameQuantum, tr.Epoch().Add(us(50)), us(250), 2, 0)
	tr.Span(ShardConc, NameLoan, tr.Epoch().Add(us(60)), us(30), 2, 512)

	// Policy + mutator instants (recorded "now", i.e. at positive ts).
	tr.TriggerHook()("epoch", 1.5, 1.0)
	tr.Instant(MutShard(4), NameBarrierSlow, 64, 0)
	return tr
}

// TestWriteChromeGolden is the exporter golden test: the output is
// well-formed per ValidateChrome (every B matched by a same-name E in
// stack discipline, per-tid timestamps monotone), spans land as B/E
// pairs, nesting and sibling order are correct at shared timestamps, and
// metadata/args survive the round trip.
func TestWriteChromeGolden(t *testing.T) {
	tr := goldenTracer(t)
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf, map[string]any{"label": "golden", "reason": "end"}); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}

	if err := ValidateChrome(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("exporter output fails its own validator: %v", err)
	}

	var got decodedTrace
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if got.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit %q, want ms", got.DisplayTimeUnit)
	}
	if _, ok := got.OtherData["epoch_unix_ns"]; !ok {
		t.Error("otherData missing epoch_unix_ns")
	}
	if got.OtherData["label"] != "golden" || got.OtherData["reason"] != "end" {
		t.Errorf("extra metadata not merged: %v", got.OtherData)
	}
	if _, ok := got.OtherData["lost_events"]; ok {
		t.Error("lost_events present on a run with no overwrites")
	}

	// B/E balance per (tid, name); thread metadata for every used shard.
	begins, ends := map[string]int{}, map[string]int{}
	threads := map[int]string{}
	gcOrder := []string{}
	var gcTID int
	for _, ev := range got.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name != "thread_name" {
				t.Errorf("unexpected metadata event %q", ev.Name)
			}
			threads[ev.TID] = ev.Args["name"].(string)
		case "B":
			begins[ev.Name]++
		case "E":
			ends[ev.Name]++
		case "i":
			if ev.S != "t" {
				t.Errorf("instant %q has scope %q, want t", ev.Name, ev.S)
			}
		}
	}
	for name, n := range begins {
		if ends[name] != n {
			t.Errorf("%q: %d begins, %d ends", name, n, ends[name])
		}
	}
	wantThreads := map[string]bool{"gc": true, "conctrl": true, "policy": true, "mut4": true}
	for tid, label := range threads {
		if wantThreads[label] {
			delete(wantThreads, label)
			if label == "gc" {
				gcTID = tid
			}
		}
	}
	for label := range wantThreads {
		t.Errorf("no thread_name metadata for shard %q", label)
	}

	// GC-shard endpoint order: the rendezvous must close exactly where
	// the pause opens (E before B at equal ts), and the enclosing pause
	// must open before its first nested phase.
	for _, ev := range got.TraceEvents {
		if ev.TID == gcTID && ev.Ph != "M" {
			gcOrder = append(gcOrder, ev.Ph+" "+ev.Name)
		}
	}
	wantOrder := []string{
		"B rendezvous", "E rendezvous",
		"B pause:rc", "B flush", "E flush",
		"B increments", "B sweep", "E sweep", "E increments",
		"E pause:rc",
	}
	if len(gcOrder) != len(wantOrder) {
		t.Fatalf("gc shard has %d endpoints, want %d: %v", len(gcOrder), len(wantOrder), gcOrder)
	}
	for i := range wantOrder {
		if gcOrder[i] != wantOrder[i] {
			t.Fatalf("gc endpoint %d = %q, want %q (full: %v)", i, gcOrder[i], wantOrder[i], gcOrder)
		}
	}

	// Per-name arg rendering.
	for _, ev := range got.TraceEvents {
		switch {
		case ev.Ph == "B" && ev.Name == "pause:rc":
			if ttsp := ev.Args["ttsp_us"].(float64); ttsp != 10 {
				t.Errorf("pause ttsp_us = %v, want 10", ttsp)
			}
		case ev.Ph == "B" && ev.Name == "loan":
			if ev.Args["workers"].(float64) != 2 || ev.Args["items"].(float64) != 512 {
				t.Errorf("loan args = %v", ev.Args)
			}
		case ev.Ph == "i" && ev.Name == "trigger:epoch":
			if ev.Args["signal"].(float64) != 1.5 || ev.Args["threshold"].(float64) != 1.0 {
				t.Errorf("trigger args = %v", ev.Args)
			}
		}
	}
}

// TestWriteChromeLostEvents checks that an overwritten shard surfaces its
// loss count in otherData.
func TestWriteChromeLostEvents(t *testing.T) {
	tr := New(Config{ShardCap: 8, Flight: true})
	for i := 0; i < 20; i++ {
		span(tr, ShardGC, NameFlush, time.Duration(i)*time.Microsecond, time.Microsecond, uint64(i))
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf, nil); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	if err := ValidateChrome(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("validate: %v", err)
	}
	var got decodedTrace
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	lost, ok := got.OtherData["lost_events"].(map[string]any)
	if !ok {
		t.Fatalf("lost_events missing or mistyped: %v", got.OtherData)
	}
	if lost["gc"].(float64) != 12 {
		t.Errorf("gc loss = %v, want 12", lost["gc"])
	}
}

func TestWriteChromeNilTracer(t *testing.T) {
	var tr *Tracer
	if err := tr.WriteChrome(&bytes.Buffer{}, nil); err == nil {
		t.Error("nil tracer WriteChrome should error")
	}
}

// TestValidateChromeRejects feeds the validator each class of malformed
// trace it exists to catch.
func TestValidateChromeRejects(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"garbage", "not json", "parse"},
		{"empty", `{"traceEvents":[]}`, "no events"},
		{"unclosed B", `{"traceEvents":[
			{"name":"a","ph":"B","ts":1,"pid":1,"tid":1}]}`, "unclosed"},
		{"E on empty stack", `{"traceEvents":[
			{"name":"a","ph":"E","ts":1,"pid":1,"tid":1}]}`, "empty stack"},
		{"crossed spans", `{"traceEvents":[
			{"name":"a","ph":"B","ts":1,"pid":1,"tid":1},
			{"name":"b","ph":"B","ts":2,"pid":1,"tid":1},
			{"name":"a","ph":"E","ts":3,"pid":1,"tid":1},
			{"name":"b","ph":"E","ts":4,"pid":1,"tid":1}]}`, "closes"},
		{"time reversal", `{"traceEvents":[
			{"name":"a","ph":"B","ts":5,"pid":1,"tid":1},
			{"name":"a","ph":"E","ts":4,"pid":1,"tid":1}]}`, "previous"},
		{"unknown ph", `{"traceEvents":[
			{"name":"a","ph":"X","ts":1,"pid":1,"tid":1}]}`, "unknown ph"},
	}
	for _, c := range cases {
		err := ValidateChrome(strings.NewReader(c.in))
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantErr)
		}
	}
}

// TestValidateChromeAcceptsSeparateTIDs checks the stack discipline is
// per-(pid,tid): overlapping spans on different tids are legal (the
// conctrl quantum overlaps GC pauses by design).
func TestValidateChromeAcceptsSeparateTIDs(t *testing.T) {
	in := `{"traceEvents":[
		{"name":"quantum","ph":"B","ts":1,"pid":1,"tid":2},
		{"name":"pause","ph":"B","ts":2,"pid":1,"tid":1},
		{"name":"pause","ph":"E","ts":3,"pid":1,"tid":1},
		{"name":"quantum","ph":"E","ts":4,"pid":1,"tid":2}]}`
	if err := ValidateChrome(strings.NewReader(in)); err != nil {
		t.Errorf("cross-tid overlap rejected: %v", err)
	}
}
