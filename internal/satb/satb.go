// Package satb implements a snapshot-at-the-beginning concurrent tracing
// engine (Yuasa 1990) reused by LXR's backup cycle trace and by the
// G1-like and Shenandoah-like baselines' concurrent marking.
//
// The tracer is owned by a single concurrent collector thread, which
// processes work in bounded steps so it can interleave with
// higher-priority work (LXR processes lazy decrements first, §3.2.1) and
// yield at stop-the-world pauses. Seeds arrive from pauses via a
// thread-safe inbox. For stop-the-world ablations the same closure can
// be drained in parallel with a worker pool.
package satb

import (
	"sync/atomic"

	"lxr/internal/gcwork"
	"lxr/internal/mem"
	"lxr/internal/meta"
	"lxr/internal/obj"
)

// Tracer performs an SATB trace over the heap.
type Tracer struct {
	OM    obj.Model
	Marks *meta.BitTable // one bit per granule

	// Filter, when non-nil, is consulted before marking: returning
	// false skips the reference (LXR's mature-only optimisation skips
	// objects with a zero reference count, §3.2.2).
	Filter func(ref obj.Ref) bool
	// OnMark is invoked once per newly marked object (live accounting).
	OnMark func(ref obj.Ref)
	// OnEdge is invoked for every reference edge scanned, before the
	// target is pushed (LXR bootstraps remembered sets here, §3.3.2).
	OnEdge func(slot mem.Address, val obj.Ref)

	inbox gcwork.SharedAddrQueue
	stack []mem.Address

	active bool
	marked int64
}

// Begin starts a new trace epoch. Mark bits must already be clear.
func (t *Tracer) Begin() {
	t.active = true
	t.marked = 0
}

// Active reports whether a trace epoch is underway.
func (t *Tracer) Active() bool { return t.active }

// Marked returns the number of objects marked so far this epoch.
func (t *Tracer) Marked() int64 { return t.marked }

// Seed enqueues snapshot references (roots captured at the trace-start
// pause, or overwritten values captured by the write barrier). Safe to
// call from pauses while the tracer thread is quiescent, or from the
// tracer thread itself.
func (t *Tracer) Seed(refs []obj.Ref) {
	if len(refs) == 0 {
		return
	}
	t.inbox.Append(refs)
}

// SeedOne enqueues a single snapshot reference.
func (t *Tracer) SeedOne(ref obj.Ref) { t.inbox.Push(ref) }

// Pending reports whether any queued work remains.
func (t *Tracer) Pending() bool { return len(t.stack) > 0 || t.inbox.Len() > 0 }

// Step processes up to budget queue items on the owner thread. It
// returns true when the trace has no work left (the queue may refill if
// new seeds arrive from a later pause, so completion is decided by the
// collector, not the tracer). The inbox is consumed one segment at a
// time — never flattened — so a bounded step touches only the memory it
// is about to trace.
func (t *Tracer) Step(budget int) bool {
	for budget > 0 {
		if len(t.stack) == 0 {
			t.stack = t.inbox.PopSeg()
			if len(t.stack) == 0 {
				return true
			}
		}
		n := len(t.stack)
		ref := obj.Ref(t.stack[n-1])
		t.stack = t.stack[:n-1]
		t.visit(ref, func(a mem.Address) { t.stack = append(t.stack, a) })
		budget--
	}
	return !t.Pending()
}

// StepParallel advances the trace on workers borrowed from the pool:
// the pending stack and every queued inbox segment are lent to up to
// `workers` parked pool workers, which drain the closure in parallel
// between pauses. It returns true when the trace has no work left.
//
// Must be called on the tracer's owner thread (it moves the owner
// stack into the loan). All hooks must be thread-safe, as for
// DrainParallel. onLoan, when non-nil, receives the loan immediately
// after it starts so the caller can register it for interruption by a
// pause; when the loan is interrupted, every unprocessed reference is
// returned to the inbox, so no trace work is ever lost.
func (t *Tracer) StepParallel(pool *gcwork.Pool, workers int, onLoan func(*gcwork.Loan)) bool {
	segs := t.inbox.TakeSegs()
	if len(t.stack) > 0 {
		segs = append(segs, t.stack)
		t.stack = nil
	}
	if len(segs) == 0 {
		return true
	}
	var marked atomic.Int64
	loan := pool.Lend(workers, segs, nil, func(w *gcwork.Worker, a mem.Address) {
		if t.visitParallel(obj.Ref(a), w) {
			marked.Add(1)
		}
	}, nil)
	if onLoan != nil {
		onLoan(loan)
	}
	for _, rem := range loan.Reclaim() {
		t.inbox.Append(rem)
	}
	t.marked += marked.Load()
	return !t.Pending()
}

// MarkAndScan marks ref and scans its children into the trace. LXR's
// interruption invariant uses it when reference counting finds a dead,
// unmarked mature object mid-trace: the object is marked and scanned
// before its memory can be reclaimed (§3.2.2). Must run on the tracer's
// owner thread (LXR's single concurrent thread runs both duties).
func (t *Tracer) MarkAndScan(ref obj.Ref) {
	t.visit(ref, func(a mem.Address) { t.stack = append(t.stack, a) })
}

// visit marks ref (subject to Filter) and feeds its reference slots to
// push.
func (t *Tracer) visit(ref obj.Ref, push func(mem.Address)) {
	if ref.IsNil() {
		return
	}
	if t.Filter != nil && !t.Filter(ref) {
		return
	}
	if !t.Marks.TrySet(ref) {
		return
	}
	t.marked++
	if t.OnMark != nil {
		t.OnMark(ref)
	}
	t.OM.EachSlot(ref, func(_ int, slot mem.Address, v obj.Ref) {
		if v.IsNil() {
			return
		}
		if t.OnEdge != nil {
			t.OnEdge(slot, v)
		}
		push(v)
	})
}

// DrainParallel completes the closure using a worker pool inside a
// pause. All hooks must be thread-safe. Used by the -SATB ablation
// (tracing in the pause, Table 7) and by baselines' final-mark pauses.
// The marked counter is not updated on this path; callers needing live
// accounting should count in OnMark.
func (t *Tracer) DrainParallel(pool *gcwork.Pool) {
	segs := t.inbox.TakeSegs()
	if len(t.stack) > 0 {
		segs = append(segs, t.stack)
	}
	t.stack = nil
	pool.DrainSegs(segs, nil, func(w *gcwork.Worker, a mem.Address) {
		t.visitParallel(obj.Ref(a), w)
	}, nil)
}

// visitParallel is the thread-safe variant of visit used by
// DrainParallel and StepParallel. It reports whether ref was newly
// marked by this call.
func (t *Tracer) visitParallel(ref obj.Ref, w *gcwork.Worker) bool {
	if ref.IsNil() {
		return false
	}
	if t.Filter != nil && !t.Filter(ref) {
		return false
	}
	if !t.Marks.TrySet(ref) {
		return false
	}
	if t.OnMark != nil {
		t.OnMark(ref)
	}
	t.OM.EachSlot(ref, func(_ int, slot mem.Address, v obj.Ref) {
		if v.IsNil() {
			return
		}
		if t.OnEdge != nil {
			t.OnEdge(slot, v)
		}
		w.Push(v)
	})
	return true
}

// ResolvePending rewrites every queued trace address through resolve.
// Collectors that move objects at pauses while a trace is in flight
// (G1's young evacuations during concurrent marking) use it to fix
// stale mark-stack and inbox entries before the moved-from space can be
// reused — the forwarding words are still intact during the pause.
// Must run while the tracer's owner thread is quiescent.
func (t *Tracer) ResolvePending(resolve func(ref obj.Ref) obj.Ref) {
	for i, a := range t.stack {
		t.stack[i] = mem.Address(resolve(obj.Ref(a)))
	}
	for _, s := range t.inbox.TakeSegs() {
		for i, a := range s {
			s[i] = mem.Address(resolve(obj.Ref(a)))
		}
		t.inbox.Append(s)
	}
}

// Finish ends the trace epoch. The caller is responsible for clearing
// mark bits after reclamation (LXR clears them only after the SATB epoch
// finishes, §3.2.2).
func (t *Tracer) Finish() {
	t.active = false
	t.stack = nil
	t.inbox.Take()
}
