package satb_test

import (
	"testing"

	"lxr/internal/gcwork"
	"lxr/internal/mem"
	"lxr/internal/meta"
	"lxr/internal/obj"
	"lxr/internal/satb"
)

// buildGraph creates a small object graph: root -> a -> b, c unreachable.
func buildGraph() (obj.Model, obj.Ref, obj.Ref, obj.Ref, obj.Ref) {
	om := obj.Model{A: mem.NewArena(4 << 20)}
	mk := func(addr mem.Address, refs int) obj.Ref {
		om.WriteHeader(addr, obj.Layout{NumRefs: refs, Size: obj.SizeFor(refs, 0)})
		return addr
	}
	root := mk(mem.BlockStart(1), 2)
	a := mk(mem.BlockStart(1).Plus(64), 1)
	b := mk(mem.BlockStart(1).Plus(128), 0)
	c := mk(mem.BlockStart(1).Plus(192), 0)
	om.StoreSlot(root, 0, a)
	om.StoreSlot(a, 0, b)
	return om, root, a, b, c
}

func TestStepTracesClosure(t *testing.T) {
	om, root, a, b, c := buildGraph()
	tr := &satb.Tracer{OM: om, Marks: meta.NewBitTable(om.A, mem.GranuleLog)}
	tr.Begin()
	tr.Seed([]obj.Ref{root})
	if !tr.Active() {
		t.Fatal("not active after Begin")
	}
	for !tr.Step(4) {
	}
	for _, r := range []obj.Ref{root, a, b} {
		if !tr.Marks.Get(r) {
			t.Fatalf("reachable %x unmarked", r)
		}
	}
	if tr.Marks.Get(c) {
		t.Fatal("unreachable object marked")
	}
	if tr.Marked() != 3 {
		t.Fatalf("marked %d", tr.Marked())
	}
}

func TestFilterSkips(t *testing.T) {
	om, root, a, _, _ := buildGraph()
	tr := &satb.Tracer{
		OM:     om,
		Marks:  meta.NewBitTable(om.A, mem.GranuleLog),
		Filter: func(r obj.Ref) bool { return r != a },
	}
	tr.Begin()
	tr.Seed([]obj.Ref{root})
	for !tr.Step(4) {
	}
	if tr.Marks.Get(a) {
		t.Fatal("filtered object marked")
	}
}

func TestOnEdgeSeesEveryEdge(t *testing.T) {
	om, root, _, _, _ := buildGraph()
	edges := 0
	tr := &satb.Tracer{
		OM:     om,
		Marks:  meta.NewBitTable(om.A, mem.GranuleLog),
		OnEdge: func(slot mem.Address, v obj.Ref) { edges++ },
	}
	tr.Begin()
	tr.Seed([]obj.Ref{root})
	for !tr.Step(4) {
	}
	if edges != 2 { // root->a, a->b
		t.Fatalf("edges %d", edges)
	}
}

func TestDrainParallelEquivalent(t *testing.T) {
	om, root, a, b, _ := buildGraph()
	tr := &satb.Tracer{OM: om, Marks: meta.NewBitTable(om.A, mem.GranuleLog)}
	tr.Begin()
	tr.Seed([]obj.Ref{root})
	tr.DrainParallel(gcwork.NewPool(4))
	for _, r := range []obj.Ref{root, a, b} {
		if !tr.Marks.Get(r) {
			t.Fatalf("reachable %x unmarked", r)
		}
	}
	if tr.Pending() {
		t.Fatal("work left after drain")
	}
}

func TestMarkAndScanFeedsChildren(t *testing.T) {
	om, root, a, _, _ := buildGraph()
	tr := &satb.Tracer{OM: om, Marks: meta.NewBitTable(om.A, mem.GranuleLog)}
	tr.Begin()
	tr.MarkAndScan(root)
	if !tr.Marks.Get(root) {
		t.Fatal("MarkAndScan did not mark")
	}
	if !tr.Pending() {
		t.Fatal("children not queued")
	}
	for !tr.Step(4) {
	}
	if !tr.Marks.Get(a) {
		t.Fatal("child not traced")
	}
}

func TestFinishClearsState(t *testing.T) {
	om, root, _, _, _ := buildGraph()
	tr := &satb.Tracer{OM: om, Marks: meta.NewBitTable(om.A, mem.GranuleLog)}
	tr.Begin()
	tr.Seed([]obj.Ref{root})
	tr.Finish()
	if tr.Active() || tr.Pending() {
		t.Fatal("Finish left state")
	}
}
