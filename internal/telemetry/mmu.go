package telemetry

import (
	"sort"
	"time"
)

// Interval is one stop-the-world pause on the run's timeline, with
// Start relative to the start of the run.
type Interval struct {
	Start time.Duration
	Dur   time.Duration
}

// MMUPoint is one point of a minimum-mutator-utilization curve.
type MMUPoint struct {
	Window      time.Duration `json:"-"`
	WindowMS    float64       `json:"window_ms"`
	Utilization float64       `json:"utilization"`
}

// DefaultMMUWindows is the standard window grid for MMU curves.
var DefaultMMUWindows = []time.Duration{
	1 * time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
	10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond,
	1 * time.Second,
}

// MMU computes the minimum mutator utilization curve from a pause
// timeline (Cheng & Blelloch): for each window size w, the minimum over
// all length-w windows within [0, total] of the fraction of the window
// the mutators were running. Pauses are clamped into [0, total] and may
// be passed in any order; windows larger than the run report the whole-
// run utilization. The worst window either starts at a pause start or
// ends at a pause end, so only those candidates are evaluated — exact,
// and O(pauses · windows · log pauses).
func MMU(pauses []Interval, total time.Duration, windows []time.Duration) []MMUPoint {
	if len(windows) == 0 {
		windows = DefaultMMUWindows
	}
	out := make([]MMUPoint, 0, len(windows))
	if total <= 0 {
		for _, w := range windows {
			out = append(out, MMUPoint{Window: w, WindowMS: ms(w), Utilization: 1})
		}
		return out
	}

	// Clamp, drop empty, sort by start. Pauses are serialized by the
	// VM's collection lock so they never overlap.
	ps := make([]Interval, 0, len(pauses))
	for _, p := range pauses {
		if p.Start < 0 {
			p.Dur += p.Start
			p.Start = 0
		}
		if p.Start+p.Dur > total {
			p.Dur = total - p.Start
		}
		if p.Dur > 0 {
			ps = append(ps, p)
		}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].Start < ps[j].Start })

	// prefix[i] = total pause time of ps[:i].
	prefix := make([]time.Duration, len(ps)+1)
	for i, p := range ps {
		prefix[i+1] = prefix[i] + p.Dur
	}
	allPause := prefix[len(ps)]

	// stwIn returns the pause time inside [a, b].
	stwIn := func(a, b time.Duration) time.Duration {
		// First pause ending after a.
		lo := sort.Search(len(ps), func(i int) bool { return ps[i].Start+ps[i].Dur > a })
		// First pause starting at or after b.
		hi := sort.Search(len(ps), func(i int) bool { return ps[i].Start >= b })
		if lo >= hi {
			return 0
		}
		t := prefix[hi] - prefix[lo]
		// Trim the partial overlaps at the edges.
		if p := ps[lo]; p.Start < a {
			t -= a - p.Start
		}
		if p := ps[hi-1]; p.Start+p.Dur > b {
			t -= p.Start + p.Dur - b
		}
		return t
	}

	for _, w := range windows {
		if w >= total {
			out = append(out, MMUPoint{Window: w, WindowMS: ms(w),
				Utilization: 1 - float64(allPause)/float64(total)})
			continue
		}
		var worst time.Duration
		for _, p := range ps {
			// Window ending at the pause end (shifted right to fit).
			end := p.Start + p.Dur
			if end < w {
				end = w
			}
			if got := stwIn(end-w, end); got > worst {
				worst = got
			}
			// Window starting at the pause start (shifted left to fit).
			start := p.Start
			if start+w > total {
				start = total - w
			}
			if got := stwIn(start, start+w); got > worst {
				worst = got
			}
		}
		if worst > w {
			worst = w
		}
		out = append(out, MMUPoint{Window: w, WindowMS: ms(w),
			Utilization: 1 - float64(worst)/float64(w)})
	}
	return out
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
