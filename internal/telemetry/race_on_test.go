//go:build race

package telemetry_test

// raceEnabled lets the alloc-count test skip under the race detector,
// whose instrumentation makes testing.AllocsPerRun unreliable.
const raceEnabled = true
