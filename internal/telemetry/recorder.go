package telemetry

import (
	"math"
	"sync/atomic"
)

// shardPad pads each shard's hot header to a cache line so concurrent
// recorders on adjacent shards never false-share.
const shardPad = 64

// shard is one writer lane of a Recorder. The counts slice is written
// with atomic adds; the header fields keep the shard's exact aggregate
// state. Each shard's counts are a separate allocation, so two shards'
// buckets never share a cache line either.
type shard struct {
	counts []int64 // atomic

	total atomic.Int64
	sum   atomic.Int64
	max   atomic.Int64
	min   atomic.Int64

	_ [shardPad]byte
}

// Recorder is a sharded concurrent histogram: per-worker/per-mutator
// writer lanes with an allocation-free Record hot path, and a lock-free
// Snapshot that merges the lanes into a queryable Histogram.
//
// Writers never block and never allocate: Record is bucket arithmetic
// plus one atomic add per field it touches. Snapshot reads the shards
// with atomic loads while recording continues; because every field is
// monotone under concurrent Record (counts and sums only grow, max only
// rises, min only falls), a snapshot is always the exact merge of some
// prefix of each lane's samples — samples racing with the snapshot land
// wholly in the next one.
type Recorder struct {
	l      layout
	shards []shard
}

// NewRecorder creates a recorder with the given geometry and shard
// count (writer lanes). Callers route each writer to its own shard via
// the shard argument of Record; shard indices are reduced modulo the
// lane count, so any stable per-thread index is safe.
func NewRecorder(cfg Config, shards int) *Recorder {
	if shards < 1 {
		shards = 1
	}
	l := newLayout(cfg)
	r := &Recorder{l: l, shards: make([]shard, shards)}
	for i := range r.shards {
		r.shards[i].counts = make([]int64, l.countsLen)
		r.shards[i].min.Store(math.MaxInt64)
	}
	return r
}

// Config returns the normalised configuration.
func (r *Recorder) Config() Config { return r.l.cfg }

// Shards returns the number of writer lanes.
func (r *Recorder) Shards() int { return len(r.shards) }

// Record adds one sample on the given writer lane. It performs no
// allocation and acquires no lock: the metered request path calls this
// once per request without perturbing the heap under test.
func (r *Recorder) Record(shardIdx int, v int64) {
	s := &r.shards[uint(shardIdx)%uint(len(r.shards))]
	v = r.l.clamp(v)
	atomic.AddInt64(&s.counts[r.l.indexOf(v)], 1)
	s.total.Add(1)
	s.sum.Add(v)
	for {
		old := s.max.Load()
		if v <= old || s.max.CompareAndSwap(old, v) {
			break
		}
	}
	for {
		old := s.min.Load()
		if v >= old || s.min.CompareAndSwap(old, v) {
			break
		}
	}
}

// Snapshot merges all lanes into a new Histogram without stopping
// writers. Bucket counts are authoritative: the snapshot's Count is the
// sum of the bucket loads, so percentile queries are always internally
// consistent. A sample racing with the snapshot may contribute its
// bucket increment but not yet its sum/min/max header update; min and
// max are therefore widened by the observed buckets' bounds, and Sum
// may trail Count by the in-flight samples. Once writers quiesce (the
// harness snapshots after the run completes), the merge is exact.
func (r *Recorder) Snapshot() *Histogram {
	h := NewHistogram(r.l.cfg)
	for i := range r.shards {
		s := &r.shards[i]
		min, max := s.min.Load(), s.max.Load()
		sum := s.sum.Load()
		var total int64
		for j := range s.counts {
			c := atomic.LoadInt64(&s.counts[j])
			if c == 0 {
				continue
			}
			h.counts[j] += c
			total += c
			// A bucket lying wholly outside [min, max] proves a racing
			// sample published its bucket before its header update;
			// widen to the bucket bound. Buckets straddling the header
			// values leave them untouched, so a quiescent snapshot
			// keeps the exact extremes.
			lo, hi := r.l.boundsOf(int32(j))
			if hi < min {
				min = hi
			}
			if lo > max {
				max = lo
			}
		}
		if total == 0 {
			continue
		}
		h.total += total
		h.sum += sum
		if max > h.max {
			h.max = max
		}
		if min < h.min {
			h.min = min
		}
	}
	if h.max > r.l.cfg.MaxValue {
		h.max = r.l.cfg.MaxValue
	}
	return h
}
