// Package telemetry provides constant-memory, allocation-free latency
// and pause metering for the evaluation harness: HdrHistogram-style
// log-linear bucketed histograms, cache-line-padded sharded recorders
// whose hot-path Record never allocates, lock-free snapshots with exact
// merge, histogram arithmetic for interval reporting, and MMU (minimum
// mutator utilization) curves computed from the pause timeline.
//
// The paper's headline claim is metered tail latency (Table 1, Fig. 5),
// which demands recording one sample per request without perturbing the
// heap under test. A slice of float64s — the previous implementation —
// grows with request count and is sorted inside the measured process;
// a bucketed histogram is O(buckets) memory regardless of sample count
// and answers percentile queries by a single cumulative walk.
package telemetry

import (
	"fmt"
	"math"
	"math/bits"
)

// Config fixes a histogram's value range and precision. Two histograms
// are layout-compatible (mergeable, subtractable) iff their Configs are
// equal after normalisation.
type Config struct {
	// MinValue is the lowest value resolved at full relative precision
	// (≥ 1). Values in [0, MinValue) are still recorded — they land in
	// the bottom buckets at absolute resolution ≤ MinValue·2^(1-Precision)
	// — so zero samples (e.g. an idle worker's per-pause item count)
	// are counted, merely with coarser relative error.
	MinValue int64
	// MaxValue is the highest trackable value. Larger samples saturate:
	// they are counted in the top bucket (the exact observed maximum is
	// tracked separately).
	MaxValue int64
	// Precision is the number of sub-bucket resolution bits per octave:
	// each power-of-two range is split into 2^Precision sub-buckets, so
	// any reported quantile q̂ satisfies q ≤ q̂ ≤ q·(1 + 2^(1-Precision))
	// for the true sample q. Precision 8 bounds relative error by 1/128
	// (< 0.8%). Clamped to [2, 14]; 0 selects 8.
	Precision uint32
}

func (c Config) normalize() Config {
	if c.MinValue < 1 {
		c.MinValue = 1
	}
	if c.Precision == 0 {
		c.Precision = 8
	}
	if c.Precision < 2 {
		c.Precision = 2
	}
	if c.Precision > 14 {
		c.Precision = 14
	}
	min := c.MinValue * (1 << c.Precision)
	if c.MaxValue < 2*min {
		c.MaxValue = 2 * min
	}
	return c
}

// ErrorBound returns the documented relative error bound of quantile
// queries at this precision: 2^(1-Precision).
func (c Config) ErrorBound() float64 {
	n := c.normalize()
	return math.Pow(2, 1-float64(n.Precision))
}

// layout is the resolved bucket geometry shared by Histogram and
// Recorder shards.
type layout struct {
	cfg                Config
	unitMagnitude      uint32 // floor(log2(MinValue))
	subBucketCount     int32  // 1 << Precision
	subBucketHalfCount int32
	subBucketMask      int64
	bucketCount        int32 // octave buckets beyond the first
	countsLen          int32
}

func newLayout(cfg Config) layout {
	cfg = cfg.normalize()
	l := layout{cfg: cfg}
	// Unit resolution is MinValue >> (Precision-1), not MinValue: the
	// sub-buckets of the bottom octaves then resolve values at and just
	// above MinValue to the same relative error as everywhere else
	// (plain HDR layouts only discern ~MinValue granularity there).
	um := int(bits.Len64(uint64(cfg.MinValue))-1) - int(cfg.Precision-1)
	if um < 0 {
		um = 0
	}
	l.unitMagnitude = uint32(um)
	l.subBucketCount = 1 << cfg.Precision
	l.subBucketHalfCount = l.subBucketCount / 2
	l.subBucketMask = int64(l.subBucketCount-1) << l.unitMagnitude
	smallestUntrackable := int64(l.subBucketCount) << l.unitMagnitude
	n := int32(1)
	for smallestUntrackable <= cfg.MaxValue {
		if smallestUntrackable > math.MaxInt64/2 {
			n++
			break
		}
		smallestUntrackable <<= 1
		n++
	}
	l.bucketCount = n
	l.countsLen = (n + 1) * l.subBucketHalfCount
	return l
}

// clamp saturates a sample into the trackable range.
func (l *layout) clamp(v int64) int64 {
	if v < 0 {
		return 0
	}
	if v > l.cfg.MaxValue {
		return l.cfg.MaxValue
	}
	return v
}

// indexOf maps a clamped value to its bucket index. Pure arithmetic —
// no bounds beyond the layout's own, no allocation.
func (l *layout) indexOf(v int64) int32 {
	pow2 := int32(64 - bits.LeadingZeros64(uint64(v|l.subBucketMask)))
	bucketIdx := pow2 - int32(l.unitMagnitude) - int32(l.cfg.Precision)
	subBucketIdx := int32(v >> (uint32(bucketIdx) + l.unitMagnitude))
	idx := (bucketIdx+1)*l.subBucketHalfCount + subBucketIdx - l.subBucketHalfCount
	if idx >= l.countsLen { // MaxValue rounding at the top octave
		idx = l.countsLen - 1
	}
	return idx
}

// boundsOf returns the value range [lo, hi] covered by bucket idx.
func (l *layout) boundsOf(idx int32) (lo, hi int64) {
	bucketIdx := idx/l.subBucketHalfCount - 1
	subBucketIdx := idx%l.subBucketHalfCount + l.subBucketHalfCount
	if bucketIdx < 0 {
		subBucketIdx -= l.subBucketHalfCount
		bucketIdx = 0
	}
	shift := uint32(bucketIdx) + l.unitMagnitude
	lo = int64(subBucketIdx) << shift
	hi = lo + (int64(1) << shift) - 1
	return lo, hi
}

// Histogram is a single-writer log-linear histogram. For concurrent
// recording use Recorder; Histogram is the snapshot/merge/query type.
type Histogram struct {
	l      layout
	counts []int64
	total  int64
	sum    int64 // sum of clamped samples (exact mean of what was counted)
	min    int64 // exact observed minimum (clamped), valid when total > 0
	max    int64 // exact observed maximum (clamped), valid when total > 0
}

// NewHistogram creates an empty histogram with the given Config.
func NewHistogram(cfg Config) *Histogram {
	l := newLayout(cfg)
	return &Histogram{l: l, counts: make([]int64, l.countsLen), min: math.MaxInt64}
}

// Config returns the normalised configuration.
func (h *Histogram) Config() Config { return h.l.cfg }

// Record adds one sample.
func (h *Histogram) Record(v int64) { h.RecordN(v, 1) }

// RecordN adds n identical samples.
func (h *Histogram) RecordN(v int64, n int64) {
	if n <= 0 {
		return
	}
	v = h.l.clamp(v)
	h.counts[h.l.indexOf(v)] += n
	h.total += n
	h.sum += v * n
	if v > h.max {
		h.max = v
	}
	if v < h.min {
		h.min = v
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return h.total }

// Sum returns the sum of all recorded (clamped) samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Mean returns the arithmetic mean of recorded samples (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Max returns the exact maximum recorded sample (0 when empty). Samples
// above Config.MaxValue saturate, so Max never exceeds it.
func (h *Histogram) Max() int64 {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Min returns the exact minimum recorded sample (0 when empty).
func (h *Histogram) Min() int64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Percentile returns the p-th percentile (0-100) using the same
// nearest-rank convention as stats.Percentile on a sorted slice: the
// sample with (1-based) rank ceil(p/100 · count). The returned value is
// the upper bound of that sample's bucket — within the documented
// relative error of the true sample — except at the extremes, where the
// exactly tracked minimum/maximum are returned. Returns 0 when empty.
func (h *Histogram) Percentile(p float64) int64 {
	if h.total == 0 {
		return 0
	}
	rank := int64(math.Ceil(p / 100 * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	if rank >= h.total {
		return h.max
	}
	var cum int64
	for i := int32(0); i < h.l.countsLen; i++ {
		cum += h.counts[i]
		if cum >= rank {
			_, hi := h.l.boundsOf(i)
			if hi < h.min {
				hi = h.min // rank 1 in the min's bucket
			}
			if hi > h.max {
				hi = h.max
			}
			return hi
		}
	}
	return h.max
}

// compatible reports layout compatibility for arithmetic.
func (h *Histogram) compatible(o *Histogram) bool { return h.l.cfg == o.l.cfg }

// Add merges o into h (exact: counts, totals and sums add; min/max take
// the extremes). Panics if the configs differ.
func (h *Histogram) Add(o *Histogram) {
	if !h.compatible(o) {
		panic(fmt.Sprintf("telemetry: merging incompatible histograms (%+v vs %+v)", h.l.cfg, o.l.cfg))
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	h.sum += o.sum
	if o.total > 0 {
		if o.max > h.max {
			h.max = o.max
		}
		if o.min < h.min {
			h.min = o.min
		}
	}
}

// Subtract removes o from h — the interval-reporting primitive: the
// histogram of an interval is cumulative-at-end minus cumulative-at-
// start. Counts, totals and sums subtract exactly; min/max cannot be
// recovered exactly from bucket data, so they are re-derived from the
// surviving buckets (bucket-resolution accurate). Panics if the configs
// differ or if any bucket would go negative (o is not a sub-histogram).
func (h *Histogram) Subtract(o *Histogram) {
	if !h.compatible(o) {
		panic(fmt.Sprintf("telemetry: subtracting incompatible histograms (%+v vs %+v)", h.l.cfg, o.l.cfg))
	}
	for i, c := range o.counts {
		if h.counts[i] < c {
			panic("telemetry: Subtract would make a bucket count negative")
		}
	}
	for i, c := range o.counts {
		h.counts[i] -= c
	}
	h.total -= o.total
	h.sum -= o.sum
	h.min, h.max = math.MaxInt64, 0
	for i := int32(0); i < h.l.countsLen; i++ {
		if h.counts[i] == 0 {
			continue
		}
		lo, hi := h.l.boundsOf(i)
		if lo < h.min {
			h.min = lo
		}
		if hi > h.max {
			h.max = hi
		}
	}
	if h.max > h.l.cfg.MaxValue {
		h.max = h.l.cfg.MaxValue
	}
}

// Clone returns an independent copy.
func (h *Histogram) Clone() *Histogram {
	c := *h
	c.counts = append([]int64(nil), h.counts...)
	return &c
}

// Buckets calls f for every non-empty bucket in ascending value order
// with the bucket's value range and count.
func (h *Histogram) Buckets(f func(lo, hi, count int64)) {
	for i := int32(0); i < h.l.countsLen; i++ {
		if c := h.counts[i]; c != 0 {
			lo, hi := h.l.boundsOf(i)
			f(lo, hi, c)
		}
	}
}

// --- export ------------------------------------------------------------------

// Bucket is one non-empty bucket of an exported histogram.
type Bucket struct {
	Lo    int64 `json:"lo"`
	Hi    int64 `json:"hi"`
	Count int64 `json:"count"`
}

// Export is a machine-readable dump of a histogram: the config plus the
// sparse non-empty buckets. cmd/lxr-bench -hist writes these so CI can
// archive full distributions, not just summary percentiles.
type Export struct {
	MinValue  int64    `json:"min_value"`
	MaxValue  int64    `json:"max_value"`
	Precision uint32   `json:"precision"`
	Count     int64    `json:"count"`
	Sum       int64    `json:"sum"`
	Min       int64    `json:"min"`
	Max       int64    `json:"max"`
	Buckets   []Bucket `json:"buckets"`
}

// Export dumps the histogram.
func (h *Histogram) Export() Export {
	e := Export{
		MinValue:  h.l.cfg.MinValue,
		MaxValue:  h.l.cfg.MaxValue,
		Precision: h.l.cfg.Precision,
		Count:     h.total,
		Sum:       h.sum,
		Min:       h.Min(),
		Max:       h.Max(),
	}
	h.Buckets(func(lo, hi, count int64) {
		e.Buckets = append(e.Buckets, Bucket{Lo: lo, Hi: hi, Count: count})
	})
	return e
}

// --- standard configs --------------------------------------------------------

// LatencyConfig is the standard request-latency histogram geometry:
// nanosecond samples, 1µs full resolution, 5-minute ceiling, <0.8%
// relative quantile error. ~3 KB of buckets per shard.
func LatencyConfig() Config {
	return Config{MinValue: 1000, MaxValue: 5 * 60 * 1e9, Precision: 8}
}

// PauseConfig is the standard GC-pause histogram geometry: nanosecond
// samples at full resolution from 1µs up to a 60 s ceiling.
func PauseConfig() Config {
	return Config{MinValue: 1000, MaxValue: 60 * 1e9, Precision: 8}
}

// WorkConfig is the standard geometry for work-item counts (per-pause
// per-worker items): unit resolution, 2^32 ceiling, 1/64 error.
func WorkConfig() Config {
	return Config{MinValue: 1, MaxValue: 1 << 32, Precision: 7}
}
