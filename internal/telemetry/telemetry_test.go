package telemetry_test

import (
	"math"
	"sync"
	"testing"
	"time"

	"lxr/internal/stats"
	"lxr/internal/telemetry"
)

// rng is a deterministic xorshift* generator so the 1e6-sample fixtures
// are reproducible.
type rng uint64

func (r *rng) next() uint64 {
	x := uint64(*r)
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*r = rng(x)
	return x * 0x2545f4914f6cdd1d
}

// sample draws from a latency-shaped distribution: a log-uniform body
// between 100µs and 10ms with a heavy tail to ~2s (mimicking metered
// request latency under GC interference).
func (r *rng) sample() int64 {
	u := float64(r.next()%1e9) / 1e9
	v := 100e3 * math.Exp(u*math.Log(100)) // 100µs .. 10ms
	if r.next()%1000 < 5 {                 // 0.5% tail
		v *= 20 + float64(r.next()%200)
	}
	return int64(v)
}

// TestPercentileMatchesSort is the acceptance fixture: on 1e6 samples,
// histogram percentiles must match sort-based stats.Percentile within
// the documented bucket error bound, and exactly at p=100.
func TestPercentileMatchesSort(t *testing.T) {
	cfg := telemetry.LatencyConfig()
	h := telemetry.NewHistogram(cfg)
	r := rng(42)
	const n = 1_000_000
	xs := make([]float64, n)
	for i := range xs {
		v := r.sample()
		xs[i] = float64(v)
		h.Record(v)
	}
	if h.Count() != n {
		t.Fatalf("count %d != %d", h.Count(), n)
	}
	bound := cfg.ErrorBound()
	for _, p := range []float64{0, 10, 50, 90, 99, 99.9, 99.99} {
		want := stats.Percentile(xs, p)
		got := float64(h.Percentile(p))
		if rel := math.Abs(got-want) / want; rel > bound {
			t.Errorf("p%v: hist %v vs sort %v, rel err %.5f > bound %.5f", p, got, want, rel, bound)
		}
		if got < want {
			t.Errorf("p%v: hist %v below true sample %v (must be an upper bound)", p, got, want)
		}
	}
	if got, want := float64(h.Percentile(100)), stats.Percentile(xs, 100); got != want {
		t.Errorf("p100 must be exact: hist %v vs sort %v", got, want)
	}
	if mean := h.Mean(); math.Abs(mean-stats.Mean(xs))/stats.Mean(xs) > 1e-9 {
		t.Errorf("mean %v vs %v", mean, stats.Mean(xs))
	}
}

// TestMergeEquivalence: a sharded Recorder snapshot must be exactly the
// histogram of the union of all lanes' samples.
func TestMergeEquivalence(t *testing.T) {
	cfg := telemetry.LatencyConfig()
	rec := telemetry.NewRecorder(cfg, 8)
	ref := telemetry.NewHistogram(cfg)
	r := rng(7)
	for i := 0; i < 200_000; i++ {
		v := r.sample()
		rec.Record(i, v) // round-robin over lanes, including modulo wrap
		ref.Record(v)
	}
	snap := rec.Snapshot()
	if snap.Count() != ref.Count() || snap.Sum() != ref.Sum() ||
		snap.Min() != ref.Min() || snap.Max() != ref.Max() {
		t.Fatalf("aggregate mismatch: snap(%d,%d,%d,%d) ref(%d,%d,%d,%d)",
			snap.Count(), snap.Sum(), snap.Min(), snap.Max(),
			ref.Count(), ref.Sum(), ref.Min(), ref.Max())
	}
	for _, p := range []float64{0, 50, 90, 99, 99.9, 100} {
		if snap.Percentile(p) != ref.Percentile(p) {
			t.Errorf("p%v: snapshot %d != reference %d", p, snap.Percentile(p), ref.Percentile(p))
		}
	}
}

// TestAddSubtractRoundTrip: (A+B)-B == A bucket-for-bucket — the
// interval-reporting identity.
func TestAddSubtractRoundTrip(t *testing.T) {
	cfg := telemetry.PauseConfig()
	a := telemetry.NewHistogram(cfg)
	b := telemetry.NewHistogram(cfg)
	r := rng(99)
	for i := 0; i < 50_000; i++ {
		a.Record(r.sample())
		b.Record(r.sample() / 3)
	}
	c := a.Clone()
	c.Add(b)
	if c.Count() != a.Count()+b.Count() || c.Sum() != a.Sum()+b.Sum() {
		t.Fatalf("add: count/sum not additive")
	}
	c.Subtract(b)
	ea, ec := a.Export(), c.Export()
	if ec.Count != ea.Count || ec.Sum != ea.Sum || len(ec.Buckets) != len(ea.Buckets) {
		t.Fatalf("round trip: %+v vs %+v", ec, ea)
	}
	for i := range ea.Buckets {
		if ea.Buckets[i] != ec.Buckets[i] {
			t.Fatalf("bucket %d: %+v vs %+v", i, ec.Buckets[i], ea.Buckets[i])
		}
	}
	for _, p := range []float64{50, 99, 99.9} {
		if c.Percentile(p) != a.Percentile(p) {
			t.Errorf("p%v differs after round trip: %d vs %d", p, c.Percentile(p), a.Percentile(p))
		}
	}
}

// TestRecorderConcurrent hammers one recorder from many goroutines with
// snapshots racing the writers (run under -race in CI), then verifies
// the quiescent snapshot is exact.
func TestRecorderConcurrent(t *testing.T) {
	cfg := telemetry.LatencyConfig()
	rec := telemetry.NewRecorder(cfg, 4) // fewer lanes than writers: contended adds
	const writers, per = 8, 20_000
	var wg sync.WaitGroup
	var wantSum int64
	sums := make([]int64, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng(w + 1)
			for i := 0; i < per; i++ {
				v := r.sample()
				sums[w] += v
				rec.Record(w, v)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { // racing reader
		defer close(done)
		for i := 0; i < 100; i++ {
			s := rec.Snapshot()
			if s.Count() > writers*per {
				t.Errorf("snapshot over-counts: %d", s.Count())
				return
			}
			s.Percentile(99)
		}
	}()
	wg.Wait()
	<-done
	for _, s := range sums {
		wantSum += s
	}
	snap := rec.Snapshot()
	if snap.Count() != writers*per {
		t.Fatalf("lost samples: %d != %d", snap.Count(), writers*per)
	}
	if snap.Sum() != wantSum {
		t.Fatalf("sum mismatch: %d != %d", snap.Sum(), wantSum)
	}
}

// TestZeroAndSaturation: zeros are recordable (idle-worker samples) and
// oversized samples saturate at MaxValue.
func TestZeroAndSaturation(t *testing.T) {
	cfg := telemetry.WorkConfig()
	h := telemetry.NewHistogram(cfg)
	h.Record(0)
	h.Record(1 << 60) // above MaxValue
	if h.Count() != 2 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Min() != 0 {
		t.Errorf("min %d, want 0", h.Min())
	}
	if h.Max() != cfg.MaxValue {
		t.Errorf("max %d, want saturation at %d", h.Max(), cfg.MaxValue)
	}
	if h.Percentile(100) != cfg.MaxValue {
		t.Errorf("p100 %d", h.Percentile(100))
	}
	if p := h.Percentile(50); p != 0 {
		t.Errorf("p50 %d, want 0", p)
	}
}

// TestExportInvariants: bucket counts sum to Count and bucket ranges
// ascend without overlap.
func TestExportInvariants(t *testing.T) {
	h := telemetry.NewHistogram(telemetry.LatencyConfig())
	r := rng(5)
	for i := 0; i < 10_000; i++ {
		h.Record(r.sample())
	}
	e := h.Export()
	var sum int64
	lastHi := int64(-1)
	for _, b := range e.Buckets {
		if b.Lo <= lastHi {
			t.Fatalf("bucket ranges overlap: lo %d after hi %d", b.Lo, lastHi)
		}
		if b.Hi < b.Lo || b.Count <= 0 {
			t.Fatalf("bad bucket %+v", b)
		}
		lastHi = b.Hi
		sum += b.Count
	}
	if sum != e.Count {
		t.Fatalf("bucket counts %d != count %d", sum, e.Count)
	}
}

// TestBucketContainment: every recorded value must fall inside the
// bucket range Export reports for it.
func TestBucketContainment(t *testing.T) {
	cfg := telemetry.Config{MinValue: 1000, MaxValue: 1e9, Precision: 6}
	for _, v := range []int64{0, 1, 999, 1000, 1001, 4096, 65537, 1e6, 987654321, 1e9} {
		h := telemetry.NewHistogram(cfg)
		h.Record(v)
		e := h.Export()
		if len(e.Buckets) != 1 {
			t.Fatalf("v=%d: %d buckets", v, len(e.Buckets))
		}
		b := e.Buckets[0]
		if v < b.Lo || v > b.Hi {
			t.Errorf("v=%d outside its bucket [%d,%d]", v, b.Lo, b.Hi)
		}
		if v >= cfg.MinValue && v <= cfg.MaxValue {
			width := float64(b.Hi - b.Lo + 1)
			if rel := width / float64(v); rel > 2*cfg.ErrorBound() {
				t.Errorf("v=%d: bucket width %v too coarse (rel %.4f)", v, width, rel)
			}
		}
	}
}

func TestMMU(t *testing.T) {
	msec := func(f float64) time.Duration { return time.Duration(f * float64(time.Millisecond)) }
	approx := func(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

	// No pauses: full utilization everywhere.
	for _, pt := range telemetry.MMU(nil, msec(100), nil) {
		if pt.Utilization != 1 {
			t.Fatalf("no pauses: util %v at %v", pt.Utilization, pt.Window)
		}
	}

	// One 10ms pause at t=10 in a 100ms run.
	one := []telemetry.Interval{{Start: msec(10), Dur: msec(10)}}
	pts := telemetry.MMU(one, msec(100), []time.Duration{msec(10), msec(20), msec(200)})
	if !approx(pts[0].Utilization, 0) {
		t.Errorf("w=10ms: want 0, got %v", pts[0].Utilization)
	}
	if !approx(pts[1].Utilization, 0.5) {
		t.Errorf("w=20ms: want 0.5, got %v", pts[1].Utilization)
	}
	if !approx(pts[2].Utilization, 0.9) { // window > run: whole-run utilization
		t.Errorf("w=200ms: want 0.9, got %v", pts[2].Utilization)
	}

	// Two 5ms pauses at t=10 and t=18: the 13ms window [10,23] holds
	// both entirely — 10ms of STW.
	two := []telemetry.Interval{{Start: msec(10), Dur: msec(5)}, {Start: msec(18), Dur: msec(5)}}
	pts = telemetry.MMU(two, msec(100), []time.Duration{msec(13)})
	if want := 1 - 10.0/13.0; !approx(pts[0].Utilization, want) {
		t.Errorf("w=13ms: want %v, got %v", want, pts[0].Utilization)
	}

	// Pause at the very start, window clamped into the run.
	edge := []telemetry.Interval{{Start: 0, Dur: msec(4)}}
	pts = telemetry.MMU(edge, msec(100), []time.Duration{msec(8)})
	if !approx(pts[0].Utilization, 0.5) {
		t.Errorf("edge: want 0.5, got %v", pts[0].Utilization)
	}
}

// TestRecordNoAlloc is the hard acceptance gate: the hot-path Record
// must be 0 allocs/op (BenchmarkRecord -benchmem verifies the same in
// the CI bench job).
func TestRecordNoAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is unreliable under the race detector")
	}
	rec := telemetry.NewRecorder(telemetry.LatencyConfig(), 4)
	r := rng(11)
	i := 0
	if n := testing.AllocsPerRun(2000, func() {
		rec.Record(i, r.sample())
		i++
	}); n != 0 {
		t.Fatalf("Record allocates: %.2f allocs/op", n)
	}
	h := telemetry.NewHistogram(telemetry.LatencyConfig())
	if n := testing.AllocsPerRun(2000, func() {
		h.Record(r.sample())
		_ = h.Count()
	}); n != 0 {
		t.Fatalf("Histogram.Record allocates: %.2f allocs/op", n)
	}
}

// BenchmarkRecord measures the hot-path cost and — via -benchmem —
// proves Record is allocation-free.
func BenchmarkRecord(b *testing.B) {
	rec := telemetry.NewRecorder(telemetry.LatencyConfig(), 8)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		r := rng(12345)
		i := 0
		for pb.Next() {
			rec.Record(i, r.sample())
			i++
		}
	})
}

// BenchmarkSnapshot measures merge cost at the standard geometry.
func BenchmarkSnapshot(b *testing.B) {
	rec := telemetry.NewRecorder(telemetry.LatencyConfig(), 8)
	r := rng(3)
	for i := 0; i < 100_000; i++ {
		rec.Record(i, r.sample())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Snapshot()
	}
}
