package trigger_test

import (
	"testing"

	"lxr/internal/trigger"
)

func TestDecayPredictorBiasHigh(t *testing.T) {
	p := trigger.NewDecayPredictor(0.1, true)
	p.Observe(0.5) // above prediction: react fast (3/4 weight)
	if got := p.Predict(); got < 0.39 || got > 0.41 {
		t.Fatalf("fast-direction update got %v", got)
	}
	p.Observe(0.0) // below: forget slowly (1/4 weight)
	if got := p.Predict(); got < 0.29 || got > 0.31 {
		t.Fatalf("slow-direction update got %v", got)
	}
}

func TestDecayPredictorBiasLow(t *testing.T) {
	p := trigger.NewDecayPredictor(1.0, false)
	p.Observe(0.0) // below prediction is the conservative direction
	if got := p.Predict(); got > 0.26 {
		t.Fatalf("low-bias should react fast downward, got %v", got)
	}
}

func TestRCTriggerSurvival(t *testing.T) {
	tr := trigger.NewRCTrigger(1 << 20) // 1 MB survivor budget
	tr.Survival.Observe(1.0)            // drive prediction high
	if !tr.ShouldCollect(8<<20, 0) {
		t.Fatal("8MB allocated at ~high survival must trigger")
	}
	if tr.ShouldCollect(1<<10, 0) {
		t.Fatal("1KB allocated must not trigger")
	}
}

func TestRCTriggerIncrementThreshold(t *testing.T) {
	tr := trigger.NewRCTrigger(1 << 30)
	tr.IncrementThreshold = 100
	if !tr.ShouldCollect(0, 150) {
		t.Fatal("increment threshold must trigger")
	}
	tr.IncrementThreshold = 0
	if tr.ShouldCollect(0, 1<<40) {
		t.Fatal("disabled increment threshold must not trigger")
	}
}

func TestObserveSurvivalClamps(t *testing.T) {
	tr := trigger.NewRCTrigger(1 << 20)
	tr.ObserveSurvival(100, 500) // >100% clamps to 1
	if tr.Survival.Predict() > 1 {
		t.Fatal("survival rate must clamp at 1")
	}
	tr.ObserveSurvival(0, 0) // ignored
}

func TestSATBTriggerCleanBlocks(t *testing.T) {
	tr := trigger.NewSATBTrigger(1000, 16, 0.05)
	if !tr.ShouldStartTrace(2, 500) {
		t.Fatal("clean-block shortfall must trigger")
	}
	if tr.ShouldStartTrace(100, 10) {
		t.Fatal("plenty of clean blocks, low wastage: no trigger")
	}
}

func TestSATBTriggerWastage(t *testing.T) {
	tr := trigger.NewSATBTrigger(1000, 1, 0.05)
	tr.ObserveLiveBlocks(100) // predicted live ~100 blocks
	// Occupancy 400: predicted wastage 300 >= 5% of 1000.
	if !tr.ShouldStartTrace(100, 400) {
		t.Fatal("wastage must trigger")
	}
	if tr.PredictedWastage(5) != 0 {
		t.Fatal("wastage must floor at zero")
	}
}
