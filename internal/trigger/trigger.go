// Package trigger implements LXR's collection-trigger heuristics
// (§3.2.1, §3.2.2): a conservatively biased exponential-decay predictor,
// the survival-rate RC trigger, and the SATB triggers (clean-block
// shortfall and predicted heap wastage).
package trigger

import "sync"

// DecayPredictor is the paper's 1:3 / 3:1 conservatively biased
// exponential decay predictor. When an observation exceeds the current
// prediction, the new prediction weights the observation 3/4 : 1/4
// (reacting quickly in the conservative direction); otherwise the
// weights reverse (forgetting slowly).
type DecayPredictor struct {
	mu     sync.Mutex
	value  float64
	primed bool
	// BiasHigh selects the conservative direction: true biases toward
	// high observations (survival rates), false toward low ones.
	BiasHigh bool
}

// NewDecayPredictor creates a predictor with an initial value.
func NewDecayPredictor(initial float64, biasHigh bool) *DecayPredictor {
	return &DecayPredictor{value: initial, primed: true, BiasHigh: biasHigh}
}

// Observe folds a new observation into the prediction.
func (p *DecayPredictor) Observe(x float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.primed {
		p.value = x
		p.primed = true
		return
	}
	conservative := x > p.value
	if !p.BiasHigh {
		conservative = x < p.value
	}
	if conservative {
		p.value = 0.75*x + 0.25*p.value
	} else {
		p.value = 0.25*x + 0.75*p.value
	}
}

// Predict returns the current prediction.
func (p *DecayPredictor) Predict() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.value
}

// RCTrigger decides when to take an RC pause (§3.2.1). LXR triggers a
// pause when the heap is full (handled by allocation failure), when the
// expected surviving volume of the newly allocated objects reaches the
// survival threshold, or when the count of logged fields reaches the
// increment threshold (disabled by default, as in the paper's default
// configuration).
type RCTrigger struct {
	// SurvivalThresholdBytes bounds predicted survivor volume per epoch
	// (the paper's default is 128 MB on multi-GB heaps; the harness
	// scales it with heap size).
	SurvivalThresholdBytes int64
	// IncrementThreshold bounds logged fields per epoch; 0 disables.
	IncrementThreshold int64
	// Survival predicts the young survival rate in [0,1].
	Survival *DecayPredictor
}

// NewRCTrigger creates an RC trigger with the given survival threshold.
func NewRCTrigger(survivalThreshold int64) *RCTrigger {
	return &RCTrigger{
		SurvivalThresholdBytes: survivalThreshold,
		Survival:               NewDecayPredictor(0.15, true),
	}
}

// ShouldCollect reports whether an RC pause is due given the bytes
// allocated and fields logged since the last epoch.
func (t *RCTrigger) ShouldCollect(bytesAllocated, incrementsLogged int64) bool {
	if t.IncrementThreshold > 0 && incrementsLogged >= t.IncrementThreshold {
		return true
	}
	expected := float64(bytesAllocated) * t.Survival.Predict()
	return expected >= float64(t.SurvivalThresholdBytes)
}

// ObserveSurvival records the epoch's measured young survival rate.
func (t *RCTrigger) ObserveSurvival(allocated, survived int64) {
	if allocated <= 0 {
		return
	}
	r := float64(survived) / float64(allocated)
	if r > 1 {
		r = 1
	}
	t.Survival.Observe(r)
}

// SATBTrigger decides when an RC pause should also start a concurrent
// SATB trace (§3.2.2). LXR starts a trace when an RC epoch yields fewer
// clean blocks than a prescribed threshold, or when predicted wastage
// (uncollected dead mature objects plus fragmentation) exceeds a
// percentage of the heap.
type SATBTrigger struct {
	// CleanBlockThreshold is the minimum clean blocks an RC epoch must
	// yield to avoid triggering a trace.
	CleanBlockThreshold int
	// WastageFraction is the predicted-wastage trigger (default 5%).
	WastageFraction float64
	// HeapBlocks is the heap budget in blocks.
	HeapBlocks int
	// LiveBlocks predicts the post-SATB live block count, driven by
	// observations after each completed trace.
	LiveBlocks *DecayPredictor
}

// NewSATBTrigger creates an SATB trigger.
func NewSATBTrigger(heapBlocks int, cleanThreshold int, wastage float64) *SATBTrigger {
	if wastage == 0 {
		wastage = 0.05
	}
	return &SATBTrigger{
		CleanBlockThreshold: cleanThreshold,
		WastageFraction:     wastage,
		HeapBlocks:          heapBlocks,
		LiveBlocks:          NewDecayPredictor(0, false),
	}
}

// ObserveLiveBlocks records the live block count measured after a
// completed SATB trace.
func (t *SATBTrigger) ObserveLiveBlocks(liveBlocks int) {
	t.LiveBlocks.Observe(float64(liveBlocks))
}

// PredictedWastage estimates wasted blocks: current occupancy minus the
// predicted post-trace live blocks.
func (t *SATBTrigger) PredictedWastage(blocksInUse int) float64 {
	w := float64(blocksInUse) - t.LiveBlocks.Predict()
	if w < 0 {
		return 0
	}
	return w
}

// ShouldStartTrace reports whether the current pause should seed an SATB
// trace, given the clean blocks this epoch yielded and current occupancy.
func (t *SATBTrigger) ShouldStartTrace(cleanBlocksYielded, blocksInUse int) bool {
	if cleanBlocksYielded < t.CleanBlockThreshold {
		return true
	}
	return t.PredictedWastage(blocksInUse) >= t.WastageFraction*float64(t.HeapBlocks)
}
