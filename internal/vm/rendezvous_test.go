package vm

// High-mutator-count rendezvous tests: these exercise the sharded
// running-token protocol directly (they live inside package vm so they
// can assert on shard state), with a stub plan so no collector logic
// runs. The five-collector integration properties live in the external
// parroots_test.go.

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lxr/internal/mem"
	"lxr/internal/obj"
)

// stubPlan is a minimal no-op Plan: enough to register mutators and run
// stop-the-world pauses without any collector machinery.
type stubPlan struct {
	arena *mem.Arena
	v     *VM
}

func newStubPlan() *stubPlan { return &stubPlan{arena: mem.NewArena(1 << 20)} }

func (p *stubPlan) Name() string             { return "stub" }
func (p *stubPlan) Arena() *mem.Arena        { return p.arena }
func (p *stubPlan) Boot(v *VM)               { p.v = v }
func (p *stubPlan) BindMutator(m *Mutator)   {}
func (p *stubPlan) UnbindMutator(m *Mutator) {}
func (p *stubPlan) Alloc(m *Mutator, l obj.Layout) obj.Ref {
	panic("stubPlan: Alloc not supported")
}
func (p *stubPlan) WriteRef(m *Mutator, src obj.Ref, i int, val obj.Ref) {
	panic("stubPlan: WriteRef not supported")
}
func (p *stubPlan) ReadRef(m *Mutator, src obj.Ref, i int) obj.Ref {
	panic("stubPlan: ReadRef not supported")
}
func (p *stubPlan) PollSafepoint(m *Mutator) {}
func (p *stubPlan) CollectNow(cause string)  {}
func (p *stubPlan) Shutdown()                {}

// runningTokens sums the running-token counts across all shards. Only
// meaningful under a stopped world (or a quiescent VM).
func runningTokens(v *VM) int {
	n := 0
	for i := range v.shards {
		sh := &v.shards[i]
		sh.mu.Lock()
		n += sh.running
		sh.mu.Unlock()
	}
	return n
}

// TestRendezvousStorm runs a 512-mutator register/park/deregister storm
// against a concurrent stream of stop-the-world pauses and asserts
// exact running-token conservation: every pause body observes zero
// tokens across all shards, every mutator finishes (no lost wakeups),
// and at quiescence the token count and registered set are empty.
func TestRendezvousStorm(t *testing.T) {
	const (
		nMuts   = 512
		nPauses = 40
	)
	v := New(newStubPlan(), 4)

	var (
		wg        sync.WaitGroup
		stopPause atomic.Bool
		pauses    atomic.Int32
	)

	// Stopper: stop-the-world in a tight loop while the storm runs.
	pauseDone := make(chan struct{})
	go func() {
		defer close(pauseDone)
		for i := 0; i < nPauses; i++ {
			v.RunCollection(nil, func() {
				v.StopTheWorld("storm", func() {
					if got := runningTokens(v); got != 0 {
						t.Errorf("pause %d: %d running tokens during pause body", i, got)
					}
					// The registered set must be consistent: every
					// shard list entry agrees on its own placement.
					v.EachMutator(func(m *Mutator) {
						if m.shard.muts[m.shardIdx] != m {
							t.Errorf("pause %d: mutator %d shard placement corrupt", i, m.ID)
						}
					})
					pauses.Add(1)
				})
			})
			if stopPause.Load() {
				return
			}
		}
	}()

	for g := 0; g < nMuts; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			m := v.RegisterMutator(2)
			for it := 0; it < 50; it++ {
				switch rng.Intn(3) {
				case 0:
					m.Safepoint()
				case 1:
					m.PollPark()
				case 2:
					m.BlockedSleep(time.Duration(rng.Intn(50)) * time.Microsecond)
				}
			}
			m.Deregister()
		}(g)
	}

	wg.Wait()
	stopPause.Store(true)
	// One final pause so the stopper never blocks forever waiting on a
	// token, then wait for it.
	<-pauseDone

	if got := runningTokens(v); got != 0 {
		t.Fatalf("quiescent token count = %d, want 0", got)
	}
	if got := v.MutatorCount(); got != 0 {
		t.Fatalf("quiescent MutatorCount = %d, want 0", got)
	}
	if pauses.Load() == 0 {
		t.Fatal("stopper never completed a pause")
	}
}

// TestStormSurvivesConcurrentStops runs registration churn against
// back-to-back stop-the-worlds and asserts no mutator is lost: the
// total park time recorded by the shards equals the sum over mutators,
// and all goroutines terminate.
func TestStormSurvivesConcurrentStops(t *testing.T) {
	const nMuts = 256
	v := New(newStubPlan(), 0)

	var wg sync.WaitGroup
	for g := 0; g < nMuts; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < 4; r++ {
				m := v.RegisterMutator(1)
				for it := 0; it < 20; it++ {
					m.PollPark()
				}
				m.Deregister()
			}
		}(g)
	}
	stop := make(chan struct{})
	var pauseWG sync.WaitGroup
	pauseWG.Add(1)
	go func() {
		defer pauseWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			v.RunCollection(nil, func() {
				v.StopTheWorld("churn", func() {
					if got := runningTokens(v); got != 0 {
						t.Errorf("%d running tokens during pause body", got)
					}
				})
			})
		}
	}()
	wg.Wait()
	close(stop)
	pauseWG.Wait()
	if got := v.MutatorCount(); got != 0 {
		t.Fatalf("MutatorCount = %d after storm, want 0", got)
	}
}

// TestPausePanicRestartsShardedWorld parks mutators across many shards,
// panics inside the pause body, and asserts the world restarts: every
// parked mutator resumes and deregisters. This is the sharded-parking
// regression for the restart-on-panic guarantee (the defer must
// broadcast every shard's start condvar, not just one).
func TestPausePanicRestartsShardedWorld(t *testing.T) {
	const nMuts = 128 // > MutatorShards so every shard holds parked mutators
	v := New(newStubPlan(), 0)

	var wg sync.WaitGroup
	started := make(chan struct{}, nMuts)
	for g := 0; g < nMuts; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := v.RegisterMutator(1)
			started <- struct{}{}
			deadline := time.Now().Add(10 * time.Second)
			for time.Now().Before(deadline) {
				m.PollPark()
				if v.GCEpoch() > 0 {
					break
				}
			}
			m.Deregister()
		}()
	}
	for g := 0; g < nMuts; g++ {
		<-started
	}

	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Fatal("pause body panic did not propagate")
			}
		}()
		v.RunCollection(nil, func() {
			v.StopTheWorld("boom", func() { panic("pause boom") })
		})
	}()
	// RunCollection's epoch bump is skipped when f panics past it, so
	// bump it here to release the spinners.
	v.gcEpoch.Add(1)

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("mutators still parked after pause-body panic: world not restarted")
	}
	if got := runningTokens(v); got != 0 {
		t.Fatalf("token count = %d after restart, want 0", got)
	}
}

// TestConcSignalsMatchesWalkAtQuiescence asserts the sharded O(shards)
// busy aggregate is bit-for-bit equal to the serial per-mutator walk at
// a shared instant, including after parks and deregistrations.
func TestConcSignalsMatchesWalkAtQuiescence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		v := New(newStubPlan(), 0)
		n := 1 + rng.Intn(97)
		done := make(chan struct{})
		for i := 0; i < n; i++ {
			sleep := time.Duration(rng.Intn(200)) * time.Microsecond
			go func() {
				m := v.RegisterMutator(1)
				m.BlockedSleep(sleep)
				done <- struct{}{}
				// Park on the channel until the main goroutine has
				// compared, then leave.
				m.Blocked(func() { <-v.shutdownCh() })
				m.Deregister()
			}()
		}
		for i := 0; i < n; i++ {
			<-done
		}

		// All registrations and parks are recorded; nothing in flight
		// except the final Blocked parks, which are recorded on resume —
		// the walk and the aggregate both see parkedNs as of now.
		now := time.Now()
		nowNs := now.Sub(v.sigEpoch).Nanoseconds()
		walk, walkN := v.concSignalsWalk(now)
		agg, aggN := v.busyAt(nowNs)
		if walkN != aggN || walkN != n {
			t.Fatalf("trial %d: mutator counts walk=%d agg=%d want %d", trial, walkN, aggN, n)
		}
		if walk != agg {
			t.Fatalf("trial %d: busy mismatch walk=%dns agg=%dns (diff %d)", trial, walk, agg, walk-agg)
		}
		v.releaseShutdownCh()
	}
}

// TestConcSignalsMonotoneUnderChurn samples ConcSignals busy time while
// mutators register, run briefly and deregister, asserting every
// windowed delta is non-negative: registration and retirement may never
// make cumulative busy time go backwards.
func TestConcSignalsMonotoneUnderChurn(t *testing.T) {
	v := New(newStubPlan(), 0)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				m := v.RegisterMutator(1)
				for i := 0; i < 10; i++ {
					m.PollPark()
				}
				m.Deregister()
			}
		}(g)
	}

	prev := time.Duration(-1)
	for i := 0; i < 2000; i++ {
		busy, _, _, _ := v.ConcSignals()
		if busy < prev {
			t.Fatalf("sample %d: busy went backwards %v -> %v", i, prev, busy)
		}
		prev = busy
	}
	close(stop)
	wg.Wait()
}

// shutdownCh / releaseShutdownCh give tests a broadcast channel that
// Blocked mutators can wait on without the VM knowing about it.
var (
	testBlockMu sync.Mutex
	testBlockCh = map[*VM]chan struct{}{}
)

func (v *VM) shutdownCh() chan struct{} {
	testBlockMu.Lock()
	defer testBlockMu.Unlock()
	ch, ok := testBlockCh[v]
	if !ok {
		ch = make(chan struct{})
		testBlockCh[v] = ch
	}
	return ch
}

func (v *VM) releaseShutdownCh() {
	testBlockMu.Lock()
	ch := testBlockCh[v]
	delete(testBlockCh, v)
	testBlockMu.Unlock()
	if ch != nil {
		close(ch)
	}
}
