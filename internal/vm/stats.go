package vm

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Pause records one stop-the-world pause.
type Pause struct {
	Kind  string // e.g. "rc", "rc+satb", "young", "full"
	Start time.Time
	Dur   time.Duration
	// TTSP is the time-to-safepoint: how long the rendezvous took
	// before collection work began.
	TTSP time.Duration
}

// Stats accumulates runtime statistics for one VM run.
type Stats struct {
	mu     sync.Mutex
	pauses []Pause

	gcWorkNs      atomic.Int64 // total collector work (STW + concurrent), all threads
	concurrentNs  atomic.Int64 // concurrent-thread portion of gcWorkNs
	mutatorBusyNs atomic.Int64 // mutator busy time (excludes parked time)

	counters sync.Map // string -> *atomic.Int64
}

// NewStats creates an empty Stats.
func NewStats() *Stats { return &Stats{} }

// RecordPause appends a pause record.
func (s *Stats) RecordPause(kind string, start time.Time, dur, ttsp time.Duration) {
	s.mu.Lock()
	s.pauses = append(s.pauses, Pause{Kind: kind, Start: start, Dur: dur, TTSP: ttsp})
	s.mu.Unlock()
}

// Pauses returns a copy of all recorded pauses.
func (s *Stats) Pauses() []Pause {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Pause, len(s.pauses))
	copy(out, s.pauses)
	return out
}

// PauseCount returns the number of pauses recorded so far.
func (s *Stats) PauseCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pauses)
}

// TotalPause returns the summed duration of all pauses.
func (s *Stats) TotalPause() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	var t time.Duration
	for _, p := range s.pauses {
		t += p.Dur
	}
	return t
}

// PausePercentiles returns the given pause-duration percentiles (0-100).
func (s *Stats) PausePercentiles(ps ...float64) []time.Duration {
	s.mu.Lock()
	durs := make([]time.Duration, len(s.pauses))
	for i, p := range s.pauses {
		durs[i] = p.Dur
	}
	s.mu.Unlock()
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	out := make([]time.Duration, len(ps))
	for i, pct := range ps {
		if len(durs) == 0 {
			continue
		}
		idx := int(float64(len(durs)-1) * pct / 100)
		out[i] = durs[idx]
	}
	return out
}

// AddGCWork accounts collector work time (across however many threads
// performed it). This feeds the "total cycles" LBO metric (Fig. 7b).
func (s *Stats) AddGCWork(d time.Duration) { s.gcWorkNs.Add(int64(d)) }

// AddConcurrentWork accounts concurrent collector-thread work. It is
// included in GCWork as well as reported separately.
func (s *Stats) AddConcurrentWork(d time.Duration) {
	s.concurrentNs.Add(int64(d))
	s.gcWorkNs.Add(int64(d))
}

// AddMutatorBusy accounts mutator busy time.
func (s *Stats) AddMutatorBusy(d time.Duration) { s.mutatorBusyNs.Add(int64(d)) }

// GCWork returns total collector work time.
func (s *Stats) GCWork() time.Duration { return time.Duration(s.gcWorkNs.Load()) }

// ConcurrentWork returns concurrent collector-thread work time.
func (s *Stats) ConcurrentWork() time.Duration { return time.Duration(s.concurrentNs.Load()) }

// MutatorBusy returns accumulated mutator busy time.
func (s *Stats) MutatorBusy() time.Duration { return time.Duration(s.mutatorBusyNs.Load()) }

// Add increments a named counter (barrier slow paths, objects reclaimed
// by each mechanism, SATB traces started, ...).
func (s *Stats) Add(name string, delta int64) {
	c, _ := s.counters.LoadOrStore(name, new(atomic.Int64))
	c.(*atomic.Int64).Add(delta)
}

// Counter returns the value of a named counter.
func (s *Stats) Counter(name string) int64 {
	if c, ok := s.counters.Load(name); ok {
		return c.(*atomic.Int64).Load()
	}
	return 0
}

// Counters returns a snapshot of all named counters.
func (s *Stats) Counters() map[string]int64 {
	out := map[string]int64{}
	s.counters.Range(func(k, v any) bool {
		out[k.(string)] = v.(*atomic.Int64).Load()
		return true
	})
	return out
}
