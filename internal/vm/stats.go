package vm

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lxr/internal/telemetry"
)

// Pause records one stop-the-world pause.
type Pause struct {
	// Kind names the pause type, e.g. "rc", "rc+satb", "young", "full".
	Kind string
	// Start is when collection work began (after the rendezvous).
	Start time.Time
	// Dur is how long the world stayed stopped.
	Dur time.Duration
	// TTSP is the time-to-safepoint: how long the rendezvous took
	// before collection work began.
	TTSP time.Duration
}

// CounterShards is how many independently updated cells back each named
// counter. Writers pick a cell by worker ID (Stats.AddAt), so parallel
// pause workers, loaned between-pause workers and the coordinator never
// contend on — or false-share — one cache line. Totals are merged at
// read time by summing the cells, which preserves the exact semantics
// of the previous single-cell implementation. Sized to cover the
// coordinator plus every worker of the largest GC pool a real host
// would configure (worker IDs beyond CounterShards-1 wrap and merely
// share cells — totals stay exact, only the no-contention property
// degrades).
const CounterShards = 64

// counterCells is the sharded backing store of one named counter: one
// cache-line-padded atomic cell per shard.
type counterCells struct {
	cells [CounterShards]paddedCell
}

// paddedCell pads each atomic counter out to its own cache line so
// per-worker increments on adjacent shards do not false-share.
type paddedCell struct {
	v atomic.Int64
	_ [7]uint64
}

func (c *counterCells) sum() int64 {
	var t int64
	for i := range c.cells {
		t += c.cells[i].v.Load()
	}
	return t
}

// Stats accumulates runtime statistics for one VM run: pause records,
// collector/mutator time accounting, and named event counters.
//
// The named counters are sharded per GC worker (see CounterShards): the
// hot paths that increment them — decrement application, promotion,
// defensive filtering — run on parallel pause workers and on workers
// loaned to the concurrent phases, all of which would otherwise rendez-
// vous on a single atomic cell. Writers with a stable worker ID use
// AddAt; everything else (coordinator code, tests) uses Add, which is
// shard 0. Readers (Counter, Counters) merge the shards.
type Stats struct {
	mu        sync.Mutex
	pauses    []Pause
	pauseHist map[string]*telemetry.Histogram // phase kind -> pause durations (ns)

	gcWorkNs      atomic.Int64 // total collector work (STW + concurrent), all threads
	concurrentNs  atomic.Int64 // concurrent-thread portion of gcWorkNs
	mutatorBusyNs atomic.Int64 // mutator busy time (excludes parked time)
	pauseNs       atomic.Int64 // summed pause durations (lock-free TotalPause)

	counters sync.Map // string -> *counterCells
	hists    sync.Map // string -> *telemetry.Recorder
}

// NewStats creates an empty Stats.
func NewStats() *Stats { return &Stats{} }

// RecordPause appends a pause record and attributes its duration to the
// phase kind's pause histogram ("young", "mixed", "rc+mark", ...), so
// tail pause percentiles stay queryable per phase at O(buckets) memory
// however long the run.
func (s *Stats) RecordPause(kind string, start time.Time, dur, ttsp time.Duration) {
	s.mu.Lock()
	s.pauses = append(s.pauses, Pause{Kind: kind, Start: start, Dur: dur, TTSP: ttsp})
	if s.pauseHist == nil {
		s.pauseHist = map[string]*telemetry.Histogram{}
	}
	h := s.pauseHist[kind]
	if h == nil {
		h = telemetry.NewHistogram(telemetry.PauseConfig())
		s.pauseHist[kind] = h
	}
	h.Record(int64(dur))
	s.mu.Unlock()
	s.pauseNs.Add(int64(dur))
}

// PauseHistograms returns an independent copy of the per-phase pause
// histograms, keyed by pause kind.
func (s *Stats) PauseHistograms() map[string]*telemetry.Histogram {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]*telemetry.Histogram, len(s.pauseHist))
	for k, h := range s.pauseHist {
		out[k] = h.Clone()
	}
	return out
}

// Pauses returns a copy of all recorded pauses.
func (s *Stats) Pauses() []Pause {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Pause, len(s.pauses))
	copy(out, s.pauses)
	return out
}

// PauseCount returns the number of pauses recorded so far.
func (s *Stats) PauseCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pauses)
}

// TotalPause returns the summed duration of all pauses. It is a single
// atomic load, so high-frequency samplers (the adaptive loan governor's
// windowed utilization estimator) can call it without contending on the
// pause records.
func (s *Stats) TotalPause() time.Duration {
	return time.Duration(s.pauseNs.Load())
}

// PausePercentiles returns the given pause-duration percentiles (0-100).
func (s *Stats) PausePercentiles(ps ...float64) []time.Duration {
	s.mu.Lock()
	durs := make([]time.Duration, len(s.pauses))
	for i, p := range s.pauses {
		durs[i] = p.Dur
	}
	s.mu.Unlock()
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	out := make([]time.Duration, len(ps))
	for i, pct := range ps {
		if len(durs) == 0 {
			continue
		}
		idx := int(float64(len(durs)-1) * pct / 100)
		out[i] = durs[idx]
	}
	return out
}

// AddGCWork accounts collector work time (across however many threads
// performed it). This feeds the "total cycles" LBO metric (Fig. 7b).
func (s *Stats) AddGCWork(d time.Duration) { s.gcWorkNs.Add(int64(d)) }

// AddConcurrentWork accounts concurrent collector-thread work. It is
// included in GCWork as well as reported separately.
func (s *Stats) AddConcurrentWork(d time.Duration) {
	s.concurrentNs.Add(int64(d))
	s.gcWorkNs.Add(int64(d))
}

// AddMutatorBusy accounts mutator busy time.
func (s *Stats) AddMutatorBusy(d time.Duration) { s.mutatorBusyNs.Add(int64(d)) }

// GCWork returns total collector work time.
func (s *Stats) GCWork() time.Duration { return time.Duration(s.gcWorkNs.Load()) }

// ConcurrentWork returns concurrent collector-thread work time.
func (s *Stats) ConcurrentWork() time.Duration { return time.Duration(s.concurrentNs.Load()) }

// MutatorBusy returns accumulated mutator busy time.
func (s *Stats) MutatorBusy() time.Duration { return time.Duration(s.mutatorBusyNs.Load()) }

// cellsFor resolves (creating on first use) the sharded cells of a
// named counter. The fast path is one lock-free sync.Map read.
func (s *Stats) cellsFor(name string) *counterCells {
	if c, ok := s.counters.Load(name); ok {
		return c.(*counterCells)
	}
	c, _ := s.counters.LoadOrStore(name, new(counterCells))
	return c.(*counterCells)
}

// Add increments a named counter (barrier slow paths, objects reclaimed
// by each mechanism, SATB traces started, ...) on shard 0. Code running
// on a GC worker with a stable ID should prefer AddAt.
func (s *Stats) Add(name string, delta int64) {
	s.cellsFor(name).cells[0].v.Add(delta)
}

// AddAt increments a named counter on the given shard. Callers pass a
// stable per-thread index — GC worker ID + 1, with 0 reserved for the
// coordinator and other unsharded threads — so concurrent writers land
// on distinct cache lines. Any shard value is accepted (it is reduced
// modulo CounterShards); totals are unaffected by the shard choice.
func (s *Stats) AddAt(shard int, name string, delta int64) {
	s.cellsFor(name).cells[uint(shard)%CounterShards].v.Add(delta)
}

// Counter returns the value of a named counter: the sum over all of its
// shards, exactly equal to the sum of all Add/AddAt deltas.
func (s *Stats) Counter(name string) int64 {
	if c, ok := s.counters.Load(name); ok {
		return c.(*counterCells).sum()
	}
	return 0
}

// Counters returns a snapshot of all named counters, each merged across
// its shards.
func (s *Stats) Counters() map[string]int64 {
	out := map[string]int64{}
	s.counters.Range(func(k, v any) bool {
		out[k.(string)] = v.(*counterCells).sum()
		return true
	})
	return out
}

// CounterHandle is a pre-resolved reference to one named counter. Hot
// paths that increment the same counter once per object — decrement
// application, promotion — resolve the handle once and skip the name
// lookup on every event.
type CounterHandle struct {
	c *counterCells
}

// Handle resolves a named counter to a CounterHandle, creating the
// counter if needed.
func (s *Stats) Handle(name string) CounterHandle {
	return CounterHandle{c: s.cellsFor(name)}
}

// Add increments the counter on shard 0.
func (h CounterHandle) Add(delta int64) { h.c.cells[0].v.Add(delta) }

// AddAt increments the counter on the given shard (reduced modulo
// CounterShards); see Stats.AddAt for the shard convention.
func (h CounterHandle) AddAt(shard int, delta int64) {
	h.c.cells[uint(shard)%CounterShards].v.Add(delta)
}

// --- named histograms ---------------------------------------------------------

// HistWorkerPauseItems is the name prefix of the per-pause per-worker
// work-item distributions: each pause records every worker's item count
// for that pause into "gcwork.pause_items.<phase kind>", so imbalance
// is localised to a phase rather than smeared over the run (the
// lifetime worker_pause_items counters cannot tell a skewed mark pause
// from a skewed young pause).
const HistWorkerPauseItems = "gcwork.pause_items."

// HistShards is how many writer lanes back each named histogram —
// enough for the coordinator plus the GC worker counts real configs
// use; higher shard indices wrap (distributions stay exact, only the
// no-contention property degrades).
const HistShards = 16

// recorderFor resolves (creating on first use) a named distribution
// recorder. The fast path is one lock-free sync.Map read.
func (s *Stats) recorderFor(name string) *telemetry.Recorder {
	if r, ok := s.hists.Load(name); ok {
		return r.(*telemetry.Recorder)
	}
	r, _ := s.hists.LoadOrStore(name, telemetry.NewRecorder(telemetry.WorkConfig(), HistShards))
	return r.(*telemetry.Recorder)
}

// RecordHist records one sample into a named distribution (per-pause
// worker item counts, batch sizes, ...) on shard 0. Code running on a
// GC worker with a stable ID should prefer RecordHistAt.
func (s *Stats) RecordHist(name string, v int64) {
	s.recorderFor(name).Record(0, v)
}

// RecordHistAt records one sample on the given shard — same convention
// as AddAt (worker ID + 1; 0 for the coordinator). Alloc-free after the
// recorder's first use.
func (s *Stats) RecordHistAt(shard int, name string, v int64) {
	s.recorderFor(name).Record(shard, v)
}

// Histogram returns a merged snapshot of a named distribution, or nil
// if nothing was recorded under that name.
func (s *Stats) Histogram(name string) *telemetry.Histogram {
	if r, ok := s.hists.Load(name); ok {
		return r.(*telemetry.Recorder).Snapshot()
	}
	return nil
}

// Histograms returns merged snapshots of every named distribution.
func (s *Stats) Histograms() map[string]*telemetry.Histogram {
	out := map[string]*telemetry.Histogram{}
	s.hists.Range(func(k, v any) bool {
		out[k.(string)] = v.(*telemetry.Recorder).Snapshot()
		return true
	})
	return out
}
