package vm_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lxr/internal/baselines"
	"lxr/internal/vm"
)

// legacyCounters is the pre-sharding reference implementation (one
// atomic cell per name behind a sync.Map), kept test-side so the
// sharded implementation can be checked for — and benchmarked against —
// exact total equivalence.
type legacyCounters struct {
	m sync.Map // string -> *atomic.Int64
}

func (l *legacyCounters) Add(name string, delta int64) {
	c, _ := l.m.LoadOrStore(name, new(atomic.Int64))
	c.(*atomic.Int64).Add(delta)
}

func (l *legacyCounters) Counter(name string) int64 {
	if c, ok := l.m.Load(name); ok {
		return c.(*atomic.Int64).Load()
	}
	return 0
}

// TestShardedCountersMatchLegacyTotals replays one deterministic
// operation stream — spread across goroutines with distinct shard IDs,
// as pause workers and loaned workers are — into both the sharded Stats
// and the legacy single-cell implementation, and requires identical
// totals for every counter. This is the merge-correctness guarantee:
// shard choice can never change what Counter/Counters report.
func TestShardedCountersMatchLegacyTotals(t *testing.T) {
	s := vm.NewStats()
	legacy := &legacyCounters{}
	names := []string{"decs", "incs", "dead", "skip", "promoted"}
	const workers = 8
	const opsPerWorker = 20000

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := uint64(w)*0x9E3779B97F4A7C15 + 1
			for i := 0; i < opsPerWorker; i++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				name := names[rng%uint64(len(names))]
				delta := int64(rng%7) - 2 // mixed signs, deterministic per worker
				s.AddAt(w+1, name, delta)
				legacy.Add(name, delta)
			}
		}(w)
	}
	wg.Wait()
	// Coordinator traffic on shard 0, plus a handle-based hot path.
	h := s.Handle("decs")
	for i := 0; i < 1000; i++ {
		s.Add("incs", 3)
		legacy.Add("incs", 3)
		h.AddAt(i%vm.CounterShards, 2)
		legacy.Add("decs", 2)
	}

	for _, name := range names {
		if got, want := s.Counter(name), legacy.Counter(name); got != want {
			t.Errorf("counter %q: sharded %d != legacy %d", name, got, want)
		}
	}
	all := s.Counters()
	for _, name := range names {
		if all[name] != legacy.Counter(name) {
			t.Errorf("Counters()[%q] = %d, want %d", name, all[name], legacy.Counter(name))
		}
	}
}

// TestCounterShardReduction: out-of-range shard indices must reduce
// into the fixed shard set without losing counts.
func TestCounterShardReduction(t *testing.T) {
	s := vm.NewStats()
	for shard := -3; shard < 3*vm.CounterShards; shard++ {
		s.AddAt(shard, "x", 1)
	}
	if got := s.Counter("x"); got != int64(3*vm.CounterShards+3) {
		t.Fatalf("counter = %d, want %d", got, 3*vm.CounterShards+3)
	}
}

// BenchmarkCounterAdd compares the legacy single-cell counter against
// the sharded implementation under parallel writers — the contention
// profile of parallel pause workers and loaned between-pause workers
// all bumping lxr.decrements. "handle" additionally skips the per-event
// name lookup, as the LXR hot paths do.
func BenchmarkCounterAdd(b *testing.B) {
	b.Run("legacy", func(b *testing.B) {
		l := &legacyCounters{}
		var id atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			id.Add(1)
			for pb.Next() {
				l.Add("ctr", 1)
			}
		})
	})
	b.Run("sharded", func(b *testing.B) {
		s := vm.NewStats()
		var id atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			shard := int(id.Add(1))
			for pb.Next() {
				s.AddAt(shard, "ctr", 1)
			}
		})
	})
	b.Run("handle", func(b *testing.B) {
		s := vm.NewStats()
		h := s.Handle("ctr")
		var id atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			shard := int(id.Add(1))
			for pb.Next() {
				h.AddAt(shard, 1)
			}
		})
	})
}

// ExampleStats_AddAt documents the shard convention.
func ExampleStats_AddAt() {
	s := vm.NewStats()
	s.AddAt(0, "lxr.decrements", 2) // coordinator
	s.AddAt(1, "lxr.decrements", 3) // worker 0
	s.AddAt(2, "lxr.decrements", 5) // worker 1
	fmt.Println(s.Counter("lxr.decrements"))
	// Output: 10
}

// TestPauseHistogramsPerKind: RecordPause must attribute each pause to
// its phase kind's histogram, with the histogram totals matching the
// pause records exactly.
func TestPauseHistogramsPerKind(t *testing.T) {
	s := vm.NewStats()
	now := time.Now()
	durs := map[string][]time.Duration{
		"young":   {1 * time.Millisecond, 3 * time.Millisecond, 9 * time.Millisecond},
		"mixed":   {20 * time.Millisecond},
		"rc+mark": {2 * time.Millisecond, 2 * time.Millisecond},
	}
	total := 0
	for kind, ds := range durs {
		for _, d := range ds {
			s.RecordPause(kind, now, d, 0)
			total++
		}
	}
	hs := s.PauseHistograms()
	if len(hs) != len(durs) {
		t.Fatalf("got %d kinds, want %d", len(hs), len(durs))
	}
	sum := int64(0)
	for kind, ds := range durs {
		h := hs[kind]
		if h == nil {
			t.Fatalf("no histogram for %q", kind)
		}
		if h.Count() != int64(len(ds)) {
			t.Errorf("%q: count %d, want %d", kind, h.Count(), len(ds))
		}
		var want int64
		for _, d := range ds {
			want += int64(d)
		}
		if h.Sum() != want {
			t.Errorf("%q: sum %d, want %d", kind, h.Sum(), want)
		}
		sum += h.Count()
	}
	if sum != int64(s.PauseCount()) {
		t.Errorf("histogram counts %d != pause records %d", sum, s.PauseCount())
	}
	if got := hs["mixed"].Max(); got != int64(20*time.Millisecond) {
		t.Errorf("mixed max %d", got)
	}
	// Clone independence: mutating the snapshot must not leak back.
	hs["young"].Record(1)
	if s.PauseHistograms()["young"].Count() != 3 {
		t.Error("PauseHistograms returned a live reference")
	}
}

// TestNamedHistogramRegistry: RecordHistAt samples merge across shards
// exactly, mirroring the counter registry's convention.
func TestNamedHistogramRegistry(t *testing.T) {
	s := vm.NewStats()
	if s.Histogram("nope") != nil {
		t.Fatal("unrecorded name should be nil")
	}
	var want int64
	for w := 0; w < 3*vm.HistShards; w++ { // include modulo wrap
		s.RecordHistAt(w, "gcwork.pause_items.young", int64(w))
		want += int64(w)
	}
	s.RecordHist("gcwork.pause_items.young", 7)
	want += 7
	h := s.Histogram("gcwork.pause_items.young")
	if h.Count() != int64(3*vm.HistShards+1) || h.Sum() != want {
		t.Fatalf("count %d sum %d, want %d/%d", h.Count(), h.Sum(), 3*vm.HistShards+1, want)
	}
	all := s.Histograms()
	if len(all) != 1 || all["gcwork.pause_items.young"].Count() != h.Count() {
		t.Fatalf("Histograms() mismatch: %v", all)
	}
}

// TestStopTheWorldTagged: the refined kind returned by the pause body
// must win over the provisional kind.
func TestStopTheWorldTagged(t *testing.T) {
	v := vm.New(baselines.NewSerial(16<<20), 4)
	defer v.Shutdown()
	v.StopTheWorldTagged("young", func() string { return "mixed" })
	v.StopTheWorldTagged("young", func() string { return "" })
	pauses := v.Stats.Pauses()
	// The Serial plan may have paused during boot; look at the last two.
	k1, k2 := pauses[len(pauses)-2].Kind, pauses[len(pauses)-1].Kind
	if k1 != "mixed" || k2 != "young" {
		t.Fatalf("kinds %q, %q; want mixed, young", k1, k2)
	}
	hs := v.Stats.PauseHistograms()
	if hs["mixed"] == nil || hs["mixed"].Count() != 1 {
		t.Fatal("refined kind not attributed to its histogram")
	}
}

// TestStopTheWorldPanicRestartsWorld: a panic inside a pause (contained
// worker panics are re-raised there) must not leave the world stopped —
// sibling mutators must be able to continue after the panic propagates.
func TestStopTheWorldPanicRestartsWorld(t *testing.T) {
	v := vm.New(baselines.NewSerial(16<<20), 4)
	defer v.Shutdown()
	m := v.RegisterMutator(2)
	defer m.Deregister()

	var recovered any
	m.Blocked(func() {
		func() {
			defer func() { recovered = recover() }()
			v.StopTheWorld("test", func() { panic("pause boom") })
		}()
	})
	if recovered != "pause boom" {
		t.Fatalf("recovered %v", recovered)
	}
	// The world must be running again: a safepoint must not park.
	done := make(chan struct{})
	go func() {
		m.Safepoint()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("world left stopped after a pause panic")
	}
}
