package vm_test

import (
	"sync/atomic"
	"testing"
	"time"

	"lxr/internal/baselines"
	"lxr/internal/obj"
	"lxr/internal/vm"
)

func newVM(t *testing.T) *vm.VM {
	t.Helper()
	v := vm.New(baselines.NewSemiSpace("SS", 16<<20, 2), 4)
	t.Cleanup(v.Shutdown)
	return v
}

func TestRegisterDeregister(t *testing.T) {
	v := newVM(t)
	m := v.RegisterMutator(4)
	if v.MutatorCount() != 1 {
		t.Fatal("count after register")
	}
	m.Deregister()
	if v.MutatorCount() != 0 {
		t.Fatal("count after deregister")
	}
}

func TestStopTheWorldWaitsForMutators(t *testing.T) {
	v := newVM(t)
	var inPause, sawStopped atomic.Bool
	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		m := v.RegisterMutator(1)
		defer m.Deregister()
		close(started)
		for i := 0; i < 100000; i++ {
			if inPause.Load() {
				sawStopped.Store(true) // would mean we ran during STW
			}
			m.Safepoint()
		}
	}()
	<-started
	v.RunCollection(nil, func() {
		v.StopTheWorld("test", func() {
			inPause.Store(true)
			time.Sleep(2 * time.Millisecond)
			inPause.Store(false)
		})
	})
	<-done
	if sawStopped.Load() {
		t.Fatal("mutator observed itself running during a pause")
	}
	if v.Stats.PauseCount() == 0 {
		t.Fatal("pause not recorded")
	}
}

func TestBlockedSectionsAllowSTW(t *testing.T) {
	v := newVM(t)
	release := make(chan struct{})
	entered := make(chan struct{})
	go func() {
		m := v.RegisterMutator(1)
		defer m.Deregister()
		m.Blocked(func() {
			close(entered)
			<-release
		})
	}()
	<-entered
	// The mutator is blocked; a pause must proceed without it.
	doneSTW := make(chan struct{})
	go v.RunCollection(nil, func() {
		v.StopTheWorld("test", func() {})
		close(doneSTW)
	})
	select {
	case <-doneSTW:
	case <-time.After(5 * time.Second):
		t.Fatal("STW deadlocked on a blocked mutator")
	}
	close(release)
}

func TestCollectIfEpochDedups(t *testing.T) {
	v := newVM(t)
	e := v.GCEpoch()
	ran := 0
	v.CollectIfEpoch(nil, e, func() { ran++ })
	v.CollectIfEpoch(nil, e, func() { ran++ }) // stale epoch: skipped
	if ran != 1 {
		t.Fatalf("ran %d times", ran)
	}
	if v.GCEpoch() != e+2 {
		t.Fatalf("epoch %d", v.GCEpoch())
	}
}

func TestSnapshotAndFixRoots(t *testing.T) {
	v := newVM(t)
	m := v.RegisterMutator(3)
	defer m.Deregister()
	m.Roots[0] = 0x1000
	v.Globals[1] = 0x2000
	v.RunCollection(m, func() {
		v.StopTheWorld("test", func() {
			roots := v.SnapshotRoots(nil)
			if len(roots) != 2 {
				t.Errorf("snapshot %v", roots)
			}
			v.FixRoots(func(r obj.Ref) obj.Ref { return r + 16 })
		})
	})
	if m.Roots[0] != 0x1010 || v.Globals[1] != 0x2010 {
		t.Fatalf("FixRoots: %x %x", m.Roots[0], v.Globals[1])
	}
}
