package vm

import (
	"lxr/internal/gcwork"
	"lxr/internal/obj"
)

// Parallel root scanning. The serial SnapshotRoots/FixRoots/EachMutator
// walks are O(mutators) inside every pause; at a thousand mutators they
// dominate pause time. These variants fan the walk out over a gcwork
// pool, partitioned by rendezvous shard (plus one extra partition for
// the global root slots), so each mutator — and each root slot — is
// visited by exactly one worker. They share the serial walks' contract:
// the world must be stopped. Below parRootThreshold mutators the serial
// walk wins (no dispatch cost), so each variant falls back to it.

// parRootThreshold is the mutator count below which the parallel root
// walks degrade to their serial forms. Worker dispatch costs a few
// microseconds; with a handful of mutators the serial walk is already
// cheaper than waking the pool.
const parRootThreshold = 64

// globalsPart is the extra ParallelFor partition index (after the
// MutatorShards mutator partitions) that owns the global root slots.
const globalsPart = MutatorShards

// EachMutatorParallel invokes f for every registered mutator, fanning
// out over the pool's workers with one partition per rendezvous shard.
// f must be safe to call concurrently for distinct mutators. World must
// be stopped.
func (v *VM) EachMutatorParallel(pool *gcwork.Pool, f func(m *Mutator)) {
	if pool == nil || v.MutatorCount() < parRootThreshold {
		v.EachMutator(f)
		return
	}
	pool.ParallelFor(MutatorShards, func(_, start, end int) {
		for s := start; s < end; s++ {
			for _, m := range v.shards[s].muts {
				f(m)
			}
		}
	})
}

// EachMutatorShardParallel is EachMutatorParallel with the rendezvous
// shard index passed through: each shard is visited by exactly one
// worker, so callers can accumulate into MutatorShards-many partial
// results without any locking and merge them serially afterwards
// (the flush step of the RC pause does exactly this). f must be safe
// to call concurrently for distinct shards. World must be stopped.
func (v *VM) EachMutatorShardParallel(pool *gcwork.Pool, f func(shard int, m *Mutator)) {
	if pool == nil || v.MutatorCount() < parRootThreshold {
		for s := range v.shards {
			for _, m := range v.shards[s].muts {
				f(s, m)
			}
		}
		return
	}
	pool.ParallelFor(MutatorShards, func(_, start, end int) {
		for s := start; s < end; s++ {
			for _, m := range v.shards[s].muts {
				f(s, m)
			}
		}
	})
}

// SnapshotRootsParallel appends every root (all mutator shadow stacks
// plus the global root slots) to dst, scanning shards in parallel.
// Workers write disjoint per-partition slices which are concatenated
// serially, so the result is a permutation-by-shard of the serial
// snapshot with identical multiset. World must be stopped.
func (v *VM) SnapshotRootsParallel(pool *gcwork.Pool, dst []obj.Ref) []obj.Ref {
	if pool == nil || v.MutatorCount() < parRootThreshold {
		return v.SnapshotRoots(dst)
	}
	var outs [MutatorShards + 1][]obj.Ref
	pool.ParallelFor(MutatorShards+1, func(_, start, end int) {
		for s := start; s < end; s++ {
			var out []obj.Ref
			if s == globalsPart {
				for _, r := range v.Globals {
					if !r.IsNil() {
						out = append(out, r)
					}
				}
			} else {
				for _, m := range v.shards[s].muts {
					for _, r := range m.Roots {
						if !r.IsNil() {
							out = append(out, r)
						}
					}
				}
			}
			outs[s] = out
		}
	})
	for _, out := range outs {
		dst = append(dst, out...)
	}
	return dst
}

// FixRootsParallel rewrites every non-nil root slot through f, scanning
// shards in parallel. Partitions are disjoint (each mutator belongs to
// exactly one shard; globals have their own partition), so every slot
// is rewritten exactly once. f must be safe to call concurrently.
// World must be stopped.
func (v *VM) FixRootsParallel(pool *gcwork.Pool, f func(obj.Ref) obj.Ref) {
	if pool == nil || v.MutatorCount() < parRootThreshold {
		v.FixRoots(f)
		return
	}
	pool.ParallelFor(MutatorShards+1, func(_, start, end int) {
		for s := start; s < end; s++ {
			if s == globalsPart {
				for i, r := range v.Globals {
					if !r.IsNil() {
						v.Globals[i] = f(r)
					}
				}
				continue
			}
			for _, m := range v.shards[s].muts {
				for j, r := range m.Roots {
					if !r.IsNil() {
						m.Roots[j] = f(r)
					}
				}
			}
		}
	})
}

// RootSlots appends a pointer to every non-nil root slot (mutator
// shadow stacks and globals) to dst, scanning shards in parallel when
// the mutator count warrants it. Evacuating collectors collect these so
// increment/evacuation processing can redirect each slot when its
// referent moves; centralising the gather here replaces the per-plan
// EachMutator loops. World must be stopped.
func (v *VM) RootSlots(pool *gcwork.Pool, dst []*obj.Ref) []*obj.Ref {
	gatherGlobals := func(dst []*obj.Ref) []*obj.Ref {
		for i := range v.Globals {
			if !v.Globals[i].IsNil() {
				dst = append(dst, &v.Globals[i])
			}
		}
		return dst
	}
	if pool == nil || v.MutatorCount() < parRootThreshold {
		for i := range v.shards {
			for _, m := range v.shards[i].muts {
				for j := range m.Roots {
					if !m.Roots[j].IsNil() {
						dst = append(dst, &m.Roots[j])
					}
				}
			}
		}
		return gatherGlobals(dst)
	}
	var outs [MutatorShards + 1][]*obj.Ref
	pool.ParallelFor(MutatorShards+1, func(_, start, end int) {
		for s := start; s < end; s++ {
			var out []*obj.Ref
			if s == globalsPart {
				out = gatherGlobals(out)
			} else {
				for _, m := range v.shards[s].muts {
					for j := range m.Roots {
						if !m.Roots[j].IsNil() {
							out = append(out, &m.Roots[j])
						}
					}
				}
			}
			outs[s] = out
		}
	})
	for _, out := range outs {
		dst = append(dst, out...)
	}
	return dst
}
