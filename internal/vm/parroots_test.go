package vm_test

// Property test for the parallel root-scan APIs across all five
// collectors: the parallel snapshot visits exactly the serial multiset,
// the parallel rewrite applies to every non-nil slot exactly once, and
// the parallel slot gather returns exactly the serial pointer set —
// with randomized mutator and root counts on both sides of the
// serial-fallback threshold.

import (
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"

	"lxr/internal/baselines"
	"lxr/internal/core"
	"lxr/internal/gcwork"
	"lxr/internal/obj"
	"lxr/internal/vm"
)

const parHeap = 32 << 20

func fiveCollectors() []struct {
	name string
	mk   func() vm.Plan
} {
	return []struct {
		name string
		mk   func() vm.Plan
	}{
		{"LXR", func() vm.Plan { return core.New(core.Config{HeapBytes: parHeap, GCThreads: 2}) }},
		{"G1", func() vm.Plan { return baselines.NewG1(parHeap, 2) }},
		{"Shenandoah", func() vm.Plan { return baselines.NewShenandoah(parHeap, 2) }},
		{"SemiSpace", func() vm.Plan { return baselines.NewSemiSpace("SemiSpace", parHeap, 2) }},
		{"Immix", func() vm.Plan { return baselines.NewImmix(parHeap, 2, false) }},
	}
}

func sortedRefs(rs []obj.Ref) []obj.Ref {
	out := append([]obj.Ref(nil), rs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestParallelRootScanMatchesSerial(t *testing.T) {
	pool := gcwork.NewPool(4)
	defer pool.Stop()

	for _, c := range fiveCollectors() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(c.name)) * 1337))
			for trial := 0; trial < 4; trial++ {
				// Half the trials sit below the serial-fallback
				// threshold, half well above it, so both paths run.
				nMut := 2 + rng.Intn(40)
				if trial%2 == 1 {
					nMut = 70 + rng.Intn(120)
				}
				v := vm.New(c.mk(), 1+rng.Intn(8))

				// Register mutators with randomized root counts and
				// fill slots with unique non-nil values (some left nil
				// to exercise filtering). The slot values only flow
				// through root scans, never through the heap, so they
				// need not be real objects.
				next := obj.Ref(16)
				var want []obj.Ref
				muts := make([]*vm.Mutator, nMut)
				for i := range muts {
					muts[i] = v.RegisterMutator(rng.Intn(9))
					for j := range muts[i].Roots {
						if rng.Intn(4) == 0 {
							continue
						}
						muts[i].Roots[j] = next
						want = append(want, next)
						next += 16
					}
				}
				for j := range v.Globals {
					if rng.Intn(4) != 0 {
						v.Globals[j] = next
						want = append(want, next)
						next += 16
					}
				}

				// Snapshot: parallel multiset == serial multiset.
				serial := v.SnapshotRoots(nil)
				par := v.SnapshotRootsParallel(pool, nil)
				ss, ps := sortedRefs(serial), sortedRefs(par)
				if len(ss) != len(want) {
					t.Fatalf("trial %d: serial snapshot %d roots, want %d", trial, len(ss), len(want))
				}
				if len(ps) != len(ss) {
					t.Fatalf("trial %d: parallel snapshot %d roots, serial %d", trial, len(ps), len(ss))
				}
				for k := range ss {
					if ss[k] != ps[k] {
						t.Fatalf("trial %d: snapshot multiset mismatch at %d: serial %v parallel %v", trial, k, ss[k], ps[k])
					}
				}

				// Slot gather: parallel pointer set == serial pointer set.
				serialSlots := map[*obj.Ref]bool{}
				v.EachMutator(func(m *vm.Mutator) {
					for j := range m.Roots {
						if !m.Roots[j].IsNil() {
							serialSlots[&m.Roots[j]] = true
						}
					}
				})
				for j := range v.Globals {
					if !v.Globals[j].IsNil() {
						serialSlots[&v.Globals[j]] = true
					}
				}
				slots := v.RootSlots(pool, nil)
				if len(slots) != len(serialSlots) {
					t.Fatalf("trial %d: RootSlots returned %d slots, want %d", trial, len(slots), len(serialSlots))
				}
				for _, s := range slots {
					if !serialSlots[s] {
						t.Fatalf("trial %d: RootSlots returned slot %p not in serial set", trial, s)
					}
					delete(serialSlots, s) // also catches duplicates
				}

				// Rewrite: every non-nil slot advanced exactly once.
				// A slot visited twice would land at +32.
				var calls atomic.Int64
				v.FixRootsParallel(pool, func(r obj.Ref) obj.Ref {
					calls.Add(1)
					return r + 16
				})
				if got := calls.Load(); got != int64(len(want)) {
					t.Fatalf("trial %d: rewrite callback ran %d times, want %d", trial, got, len(want))
				}
				after := sortedRefs(v.SnapshotRoots(nil))
				for k := range after {
					if after[k] != ss[k]+16 {
						t.Fatalf("trial %d: slot %d rewritten to %v, want %v (exactly-once violated)", trial, k, after[k], ss[k]+16)
					}
				}

				// EachMutatorParallel visits every mutator exactly once.
				var seen atomic.Int64
				v.EachMutatorParallel(pool, func(m *vm.Mutator) { seen.Add(1) })
				if got := seen.Load(); got != int64(nMut) {
					t.Fatalf("trial %d: EachMutatorParallel visited %d mutators, want %d", trial, got, nMut)
				}

				// Clear roots before unbinding so no plan treats the
				// synthetic values as live objects during teardown.
				for _, m := range muts {
					for j := range m.Roots {
						m.Roots[j] = obj.Ref(0)
					}
				}
				for j := range v.Globals {
					v.Globals[j] = obj.Ref(0)
				}
				for _, m := range muts {
					m.Deregister()
				}
				v.Shutdown()
			}
		})
	}
}
