// Package vm implements the simulated managed runtime that hosts the
// collectors: mutator threads with shadow-stack roots, a safepoint and
// stop-the-world rendezvous protocol, collection scheduling, and
// pause/latency accounting.
//
// The paper implements LXR inside MMTk on OpenJDK; this package plays
// the role of the JVM + MMTk glue. Every allocation, reference load and
// reference store performed by application code goes through a Plan,
// which is where collectors hang their barriers — the same mediation
// MMTk performs via compiler-injected barrier code.
package vm

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lxr/internal/mem"
	"lxr/internal/obj"
	"lxr/internal/trace"
)

// The simulated runtime models a multicore machine (the paper evaluates
// on 16-32 hardware threads). On boxes with very few CPUs Go would give
// the concurrent collector thread no cycles between pauses, so the VM
// raises GOMAXPROCS to a small floor; combined with the periodic
// processor yield in Safepoint this lets concurrent collection overlap
// with mutators the way it does on real hardware.
func init() {
	if runtime.GOMAXPROCS(0) < 8 {
		runtime.GOMAXPROCS(8)
	}
}

// Plan is the collector interface — the equivalent of an MMTk plan.
type Plan interface {
	// Name identifies the collector ("LXR", "G1", ...).
	Name() string
	// Arena exposes the heap the plan constructed.
	Arena() *mem.Arena
	// Boot finishes initialisation once the VM exists.
	Boot(v *VM)
	// (CollectNow below is self-contained: safe from any non-mutator
	// goroutine, or from a mutator inside Blocked.)
	// BindMutator installs per-mutator state (thread-local allocators,
	// barrier buffers) on m.PlanState.
	BindMutator(m *Mutator)
	// UnbindMutator flushes and releases per-mutator state.
	UnbindMutator(m *Mutator)
	// Alloc allocates an object, triggering collections as needed.
	Alloc(m *Mutator, l obj.Layout) obj.Ref
	// WriteRef performs a reference store src.slots[i] = val with the
	// plan's write barrier.
	WriteRef(m *Mutator, src obj.Ref, i int, val obj.Ref)
	// ReadRef performs a reference load of src.slots[i] with the plan's
	// read barrier (if any).
	ReadRef(m *Mutator, src obj.Ref, i int) obj.Ref
	// PollSafepoint runs plan work at mutator safepoints (trigger
	// checks). It must be cheap.
	PollSafepoint(m *Mutator)
	// CollectNow performs a synchronous collection for the given cause.
	// The caller must not hold the VM running-token (use
	// VM.RequestCollection from mutator context).
	CollectNow(cause string)
	// Shutdown stops concurrent collector threads.
	Shutdown()
}

// MutatorShards is the number of rendezvous shards mutators are
// striped across (striped the same way Stats stripes its counters).
// Everything per-mutator on a stop-the-world or sampling path — the
// running-token rendezvous, park wakeups, the registered-mutator set,
// and the cumulative busy/park accounting — is per-shard, so no single
// mutex or condvar ever serialises a thousand mutators.
const MutatorShards = 32

// mutShard is one stripe of the rendezvous state. A mutator is pinned
// to a shard at registration (by ID) and only ever touches its own
// shard's lock, so token traffic from N mutators spreads over
// MutatorShards uncontended locks, and a world restart wakes each
// shard's parked mutators on that shard's condvar instead of thundering
// the whole fleet through one.
type mutShard struct {
	mu      sync.Mutex
	start   *sync.Cond // mutators wait here while the world is stopped
	stop    *sync.Cond // the stopper waits here for running to drain
	running int        // mutators in this shard holding the running token
	muts    []*Mutator // registered mutators (swap-remove, see shardIdx)

	// Cumulative signal aggregates, guarded by mu (register/deregister
	// hold it for the mutator list anyway; parks add one uncontended
	// shard-lock acquisition): regSumNs / parkSumNs sum each live
	// mutator's registration offset (from VM.sigEpoch) and recorded
	// parked time, and doneBusyNs accumulates the final busy time of
	// mutators that deregistered. ConcSignals derives the shard's total
	// busy time from these three sums plus len(muts) — see ConcSignals.
	// Updating them under mu makes registration, retirement and park
	// recording atomic with respect to sampling, so sampled busy time
	// never glitches across register/deregister churn.
	regSumNs   int64
	parkSumNs  int64
	doneBusyNs int64

	// live mirrors len(muts) so MutatorCount stays lock-free.
	live atomic.Int64

	_ [48]byte // pad to a cache-line multiple: shard state must not false-share
}

// VM coordinates mutators and the collector.
type VM struct {
	Plan    Plan
	OM      obj.Model
	Stats   *Stats
	Globals []obj.Ref // global root slots (application-managed)

	phase  atomic.Int32 // non-zero: STW requested/active (lock-free fast-path fence)
	stopMu sync.Mutex   // serialises stoppers (StopTheWorldTagged)
	nextID atomic.Int64
	shards [MutatorShards]mutShard

	// sigEpoch is the time base for the sharded busy accounting:
	// registration times are stored in the shard aggregates as offsets
	// from it, so live busy time is derived from per-shard sums.
	sigEpoch time.Time

	gcLock  sync.Mutex // serialises collections
	gcEpoch atomic.Uint64

	// tracer, when non-nil, receives rendezvous and pause spans on the
	// GC timeline shard. Attach with SetTracer before mutators start.
	tracer *trace.Tracer

	shutdown atomic.Bool
}

// SetTracer attaches a GC event tracer (nil detaches). Call before the
// first mutator registers — the field is read without synchronisation
// on pause paths.
func (v *VM) SetTracer(t *trace.Tracer) { v.tracer = t }

// Tracer returns the attached event tracer (nil when tracing is off).
func (v *VM) Tracer() *trace.Tracer { return v.tracer }

// New creates a VM around a plan and boots it.
func New(p Plan, globalRoots int) *VM {
	v := &VM{
		Plan:     p,
		OM:       obj.Model{A: p.Arena()},
		Stats:    NewStats(),
		Globals:  make([]obj.Ref, globalRoots),
		sigEpoch: time.Now(),
	}
	for i := range v.shards {
		sh := &v.shards[i]
		sh.start = sync.NewCond(&sh.mu)
		sh.stop = sync.NewCond(&sh.mu)
	}
	p.Boot(v)
	return v
}

// Shutdown stops the plan's concurrent threads. All mutators must have
// been deregistered.
func (v *VM) Shutdown() {
	v.shutdown.Store(true)
	v.Plan.Shutdown()
}

// GCEpoch returns the number of completed collections.
func (v *VM) GCEpoch() uint64 { return v.gcEpoch.Load() }

// --- running-token protocol --------------------------------------------------
//
// Every mutator holds a per-shard running token while it may touch the
// heap. A stopper publishes the pause with a single atomic phase store
// (the fence mutators check lock-free in PollPark), then drains each
// shard in turn: under the shard lock, it waits until that shard's
// token count reaches zero. Because token acquisition re-checks the
// phase under the shard lock, a zero count can never grow again while
// the phase is set, so the per-shard waits compose into a global
// rendezvous without any global lock. Wakeups are sharded in both
// directions: the last token-holder of a shard signals only that
// shard's stopper condvar, and the restart broadcast wakes each shard's
// parked mutators on their own condvar — no thundering herd through a
// single cond no matter how many mutators are parked.

func (m *Mutator) acquireRunning() {
	sh := m.shard
	sh.mu.Lock()
	for m.VM.phase.Load() != 0 {
		sh.start.Wait()
	}
	sh.running++
	sh.mu.Unlock()
}

func (m *Mutator) releaseRunning() {
	sh := m.shard
	sh.mu.Lock()
	sh.running--
	if sh.running == 0 && m.VM.phase.Load() != 0 {
		sh.stop.Signal()
	}
	sh.mu.Unlock()
}

// StopTheWorld brings all mutators to safepoints, runs f, and releases
// them, recording the pause under the given kind. Only collection code
// may call it, and only from within a RunCollection critical section (or
// a context that guarantees no concurrent StopTheWorld).
//
// The world is restarted even if f panics (contained worker panics are
// re-raised inside pause phases), so the panic propagates to a caller
// that can record the failure instead of leaving every other mutator
// parked forever.
func (v *VM) StopTheWorld(kind string, f func()) time.Duration {
	return v.StopTheWorldTagged(kind, func() string { f(); return "" })
}

// StopTheWorldTagged is StopTheWorld for pauses whose phase is only
// known once the work has run: f returns the refined pause kind the
// pause is attributed to ("" keeps kind). Collectors whose pauses
// dynamically absorb extra phases — LXR pauses that finish a lazy
// decrement batch or complete the SATB trace, G1 young pauses that turn
// mixed — use it so the per-phase pause histograms and reports separate
// those populations.
func (v *VM) StopTheWorldTagged(kind string, f func() string) time.Duration {
	reqStart := time.Now()
	v.stopMu.Lock()
	v.phase.Store(1)
	for i := range v.shards {
		sh := &v.shards[i]
		sh.mu.Lock()
		for sh.running > 0 {
			sh.stop.Wait()
		}
		sh.mu.Unlock()
	}

	defer func() {
		v.phase.Store(0)
		for i := range v.shards {
			sh := &v.shards[i]
			sh.mu.Lock()
			sh.start.Broadcast()
			sh.mu.Unlock()
		}
		v.stopMu.Unlock()
	}()

	start := time.Now()
	if tr := v.tracer; tr != nil {
		// The rendezvous span covers stop-request → world-stopped, so a
		// TTSP outlier is attributable to the pause that paid it.
		tr.Span(trace.ShardGC, trace.NameRendezvous, reqStart, start.Sub(reqStart),
			uint64(v.MutatorCount()), 0)
	}
	if refined := f(); refined != "" {
		kind = refined
	}
	dur := time.Since(start)

	v.Stats.RecordPause(kind, start, dur, start.Sub(reqStart))
	if tr := v.tracer; tr != nil {
		// Recorded after f so the span carries the refined kind; phase
		// spans recorded inside f nest within it by construction.
		tr.Span(trace.ShardGC, tr.Intern("pause:"+kind), start, dur,
			uint64(start.Sub(reqStart)), 0)
	}
	return dur
}

// RunCollection serialises a collection request. When m is non-nil the
// mutator's running token is released for the duration (so the STW
// rendezvous does not wait on the requester). f typically calls
// Plan.CollectNow logic which uses StopTheWorld internally.
func (v *VM) RunCollection(m *Mutator, f func()) {
	if m != nil {
		m.releaseRunning()
		defer m.acquireRunning()
	}
	v.gcLock.Lock()
	defer v.gcLock.Unlock()
	f()
	v.gcEpoch.Add(1)
}

// Collect performs a synchronous collection from a non-mutator
// goroutine (e.g. the harness between workload phases). CollectNow
// implementations are self-contained: they serialise against other
// collections themselves.
func (v *VM) Collect() { v.Plan.CollectNow("explicit") }

// CollectIfEpoch runs f (a collection) only if no collection completed
// since the caller observed epoch e. It returns true if f ran. Failing
// allocators use it so a burst of concurrent failures produces a single
// collection.
func (v *VM) CollectIfEpoch(m *Mutator, e uint64, f func()) bool {
	ran := false
	v.RunCollection(m, func() {
		if v.gcEpoch.Load() == e {
			f()
			ran = true
		}
	})
	return ran
}

// --- mutators ----------------------------------------------------------------

// Mutator is an application thread. All of its heap accesses go through
// the VM's plan. Roots is the thread's shadow stack: any object
// reachable from it is live.
type Mutator struct {
	ID int
	VM *VM

	// Roots is the shadow stack. The mutator may read and write it
	// freely; collectors scan it only while the world is stopped.
	Roots []obj.Ref

	// PlanState holds the plan's per-mutator state.
	PlanState any

	// BarrierWatch is a plan-owned cache for a hot write-barrier
	// predicate ("does this store need extra bookkeeping beyond the
	// fast path"). Keeping it as a plain field on the mutator lets the
	// barrier consult it without the PlanState type assertion. Plans
	// refresh it inside stop-the-world pauses only.
	BarrierWatch bool

	// Rendezvous placement: the shard this mutator is pinned to, and
	// its index in the shard's mutator list (maintained by swap-remove
	// under the shard lock).
	shard    *mutShard
	shardIdx int

	// busy-time accounting for the LBO cycles metric
	registered time.Time
	parkedNs   atomic.Int64

	rngState uint64
	polls    uint32
}

// RegisterMutator creates and registers a mutator thread context with a
// shadow stack of rootSlots slots. The calling goroutine holds the
// running token until Deregister, Safepoint-park, or a Blocked section.
func (v *VM) RegisterMutator(rootSlots int) *Mutator {
	id := int(v.nextID.Add(1))
	m := &Mutator{
		ID:       id,
		VM:       v,
		Roots:    make([]obj.Ref, rootSlots),
		shard:    &v.shards[id%MutatorShards],
		rngState: uint64(id)*0x9e3779b97f4a7c15 + 1,
	}
	m.acquireRunning()
	m.registered = time.Now()
	sh := m.shard
	sh.mu.Lock()
	m.shardIdx = len(sh.muts)
	sh.muts = append(sh.muts, m)
	sh.regSumNs += m.registered.Sub(v.sigEpoch).Nanoseconds()
	sh.live.Store(int64(len(sh.muts)))
	sh.mu.Unlock()
	v.Plan.BindMutator(m)
	return m
}

// Deregister removes the mutator; its roots are no longer scanned.
// The calling goroutine holds the running token throughout, so no
// stop-the-world (and hence no root scan) can overlap the removal.
func (m *Mutator) Deregister() {
	m.VM.Plan.UnbindMutator(m)
	sh := m.shard
	sh.mu.Lock()
	// Capture the final busy time inside the critical section: a sample
	// taken just before it sees the live mutator's (strictly smaller)
	// running busy, one taken after sees the banked value, so sampled
	// busy time is monotone across the retirement.
	busy := time.Since(m.registered) - time.Duration(m.parkedNs.Load())
	last := len(sh.muts) - 1
	sh.muts[m.shardIdx] = sh.muts[last]
	sh.muts[m.shardIdx].shardIdx = m.shardIdx
	sh.muts[last] = nil
	sh.muts = sh.muts[:last]
	// Retire the mutator's aggregates and bank its final busy time in
	// the same critical section, so a ConcSignals sample sees either
	// the live mutator or its banked retirement — never neither.
	sh.regSumNs -= m.registered.Sub(m.VM.sigEpoch).Nanoseconds()
	sh.parkSumNs -= m.parkedNs.Load()
	sh.doneBusyNs += int64(busy)
	sh.live.Store(int64(len(sh.muts)))
	sh.mu.Unlock()
	m.VM.Stats.AddMutatorBusy(busy)
	m.releaseRunning()
}

// Safepoint is the GC poll. Mutators must call it frequently (Alloc
// calls it implicitly). If a stop-the-world is pending the mutator
// parks here until the collection finishes.
func (m *Mutator) Safepoint() {
	m.VM.Plan.PollSafepoint(m)
	m.PollPark()
}

// PollPark performs Safepoint's park-and-yield duties without the plan
// poll. Plans whose Alloc inlines its own trigger check call it
// directly so the poll is not dispatched twice per allocation. The
// fast path is one atomic load of the phase fence — no lock, no shard.
func (m *Mutator) PollPark() {
	if m.VM.phase.Load() != 0 {
		t0 := time.Now()
		m.releaseRunning()
		m.acquireRunning()
		m.recordPark(time.Since(t0))
		return
	}
	// Periodically yield the processor so concurrent collector threads
	// make progress even when the host has fewer CPUs than the machine
	// being modeled.
	m.polls++
	if m.polls&0x3ff == 0 {
		runtime.Gosched()
	}
}

// recordPark accounts a completed park on the mutator and on its
// shard's cumulative aggregate (the ConcSignals input). The shard lock
// keeps the aggregate consistent with the per-mutator counter for
// samplers; it is the mutator's own shard, so the acquisition is
// uncontended in steady state.
func (m *Mutator) recordPark(d time.Duration) {
	sh := m.shard
	sh.mu.Lock()
	sh.parkSumNs += int64(d)
	sh.mu.Unlock()
	m.parkedNs.Add(int64(d))
}

// Blocked executes f with the mutator's running token released, so that
// stop-the-world can proceed while the mutator waits on channels, locks
// or I/O. f must not touch the heap.
func (m *Mutator) Blocked(f func()) {
	t0 := time.Now()
	m.releaseRunning()
	f()
	m.acquireRunning()
	m.recordPark(time.Since(t0))
}

// BlockedSleep sleeps with the running token released — equivalent to
// Blocked(func() { time.Sleep(d) }) but without the closure, so the
// open-loop request pacer allocates nothing per request.
func (m *Mutator) BlockedSleep(d time.Duration) {
	t0 := time.Now()
	m.releaseRunning()
	time.Sleep(d)
	m.acquireRunning()
	m.recordPark(time.Since(t0))
}

// Alloc allocates an object with the given number of reference slots and
// payload bytes, returning its reference.
func (m *Mutator) Alloc(typeID uint8, numRefs, payloadBytes int) obj.Ref {
	l := obj.Layout{
		NumRefs: numRefs,
		Size:    obj.SizeFor(numRefs, payloadBytes),
		TypeID:  typeID,
	}
	l.Large = l.Size > obj.LargeThreshold
	return m.VM.Plan.Alloc(m, l)
}

// Store writes reference slot i of obj src through the write barrier.
func (m *Mutator) Store(src obj.Ref, i int, val obj.Ref) {
	m.VM.Plan.WriteRef(m, src, i, val)
}

// Load reads reference slot i of obj src through the read barrier.
func (m *Mutator) Load(src obj.Ref, i int) obj.Ref {
	return m.VM.Plan.ReadRef(m, src, i)
}

// WritePayload stores a non-reference word into the object's payload.
// Payload accesses resolve forwarding (concurrent evacuating collectors
// may have moved the object) but need no other barrier.
func (m *Mutator) WritePayload(src obj.Ref, word int, v uint64) {
	src = m.VM.OM.Resolve(src)
	m.VM.OM.A.Store(m.VM.OM.PayloadAddr(src)+mem.Address(word)*mem.WordSize, v)
}

// ReadPayload loads a non-reference word from the object's payload.
func (m *Mutator) ReadPayload(src obj.Ref, word int) uint64 {
	src = m.VM.OM.Resolve(src)
	return m.VM.OM.A.Load(m.VM.OM.PayloadAddr(src) + mem.Address(word)*mem.WordSize)
}

// PayloadWords returns the payload size in words.
func (m *Mutator) PayloadWords(src obj.Ref) int {
	return m.VM.OM.PayloadBytes(m.VM.OM.Resolve(src)) / mem.WordSize
}

// NumRefs returns the reference-slot count of an object.
func (m *Mutator) NumRefs(src obj.Ref) int {
	return m.VM.OM.NumRefs(m.VM.OM.Resolve(src))
}

// RequestGC performs a synchronous collection from mutator context.
// The mutator's running token is released for the duration so the
// stop-the-world rendezvous does not wait on the requester.
func (m *Mutator) RequestGC() {
	m.Blocked(func() { m.VM.Plan.CollectNow("explicit") })
}

// Rand returns a fast thread-local pseudo-random uint64 (xorshift*).
// Workloads use it so that no locking or allocation sneaks into the
// mutator hot path.
func (m *Mutator) Rand() uint64 {
	x := m.rngState
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	m.rngState = x
	return x * 0x2545f4914f6cdd1d
}

// --- root scanning -----------------------------------------------------------

// SnapshotRoots appends every root (all mutator shadow stacks plus the
// global root slots) to dst. It must only be called while the world is
// stopped. SnapshotRootsParallel fans the scan out over a worker pool.
func (v *VM) SnapshotRoots(dst []obj.Ref) []obj.Ref {
	for i := range v.shards {
		for _, m := range v.shards[i].muts {
			for _, r := range m.Roots {
				if !r.IsNil() {
					dst = append(dst, r)
				}
			}
		}
	}
	for _, r := range v.Globals {
		if !r.IsNil() {
			dst = append(dst, r)
		}
	}
	return dst
}

// EachMutator invokes f for every registered mutator. Must only be
// called while the world is stopped (or before mutators start).
// EachMutatorParallel fans the walk out over a worker pool.
func (v *VM) EachMutator(f func(m *Mutator)) {
	for i := range v.shards {
		for _, m := range v.shards[i].muts {
			f(m)
		}
	}
}

// FixRoots rewrites every root slot through f (used by copying
// collectors to redirect references to evacuated objects). World must be
// stopped. FixRootsParallel fans the rewrite out over a worker pool.
func (v *VM) FixRoots(f func(obj.Ref) obj.Ref) {
	for i := range v.shards {
		for _, m := range v.shards[i].muts {
			for j, r := range m.Roots {
				if !r.IsNil() {
					m.Roots[j] = f(r)
				}
			}
		}
	}
	for i, r := range v.Globals {
		if !r.IsNil() {
			v.Globals[i] = f(r)
		}
	}
}

// ConcSignals supplies the cumulative feedback inputs every windowed
// estimator differences (conctrl.Signals): total mutator busy time —
// live mutators' elapsed-minus-parked time plus the banked busy time of
// mutators that already deregistered — total collector work, total
// stop-the-world time, and the live mutator count. Two consumers
// sample it: the conctrl controller (the adaptive loan-width governor
// and its WindowSink export to the pacing policies) every few
// milliseconds, and — under adaptive pacing only — each collector's
// pause coordinator once per epoch (policy.EpochStats).
//
// The busy term is O(MutatorShards), not O(mutators): each shard
// maintains cumulative registration/park/retired-busy sums, and a
// shard's live busy time is len(muts)*now − regSum − parkSum — exactly
// the per-mutator sum Σ(now−registered−parked), reassociated (Time
// subtraction is exact int64 monotonic-clock arithmetic, so the
// reassociation is bit-for-bit, not approximate). Each shard's sums
// are read under its lock, and registration, retirement and park
// recording update them atomically with respect to sampling, so busy
// time is monotone across register/deregister churn; only a park in
// flight at the sample instant is (as before the sharding) counted as
// busy until it completes — windowed consumers clamp the resulting
// small negative deltas.
func (v *VM) ConcSignals() (mutBusy, gcWork, pause time.Duration, mutators int) {
	var busy int64
	var count int
	for i := range v.shards {
		sh := &v.shards[i]
		sh.mu.Lock()
		// The instant is read inside the lock so it postdates every
		// registration the shard sums include: each shard term is then
		// individually monotone across samples, and no registration can
		// land between the clock read and the sums and contribute a
		// negative sliver. Shards are therefore sampled at slightly
		// staggered instants; the consumers difference cumulative
		// windows, for which the stagger is harmless.
		nowNs := time.Since(v.sigEpoch).Nanoseconds()
		busy += int64(len(sh.muts))*nowNs - sh.regSumNs - sh.parkSumNs + sh.doneBusyNs
		count += len(sh.muts)
		sh.mu.Unlock()
	}
	return time.Duration(busy), v.Stats.GCWork(), v.Stats.TotalPause(), count
}

// busyAt computes total mutator busy time (live plus retired) at the
// single instant nowNs (an offset from sigEpoch) from the shard
// aggregates. It is the fixed-instant form of ConcSignals' busy term,
// used by the walk-equivalence tests.
func (v *VM) busyAt(nowNs int64) (busyNs int64, mutators int) {
	for i := range v.shards {
		sh := &v.shards[i]
		sh.mu.Lock()
		busyNs += int64(len(sh.muts))*nowNs - sh.regSumNs - sh.parkSumNs + sh.doneBusyNs
		mutators += len(sh.muts)
		sh.mu.Unlock()
	}
	return busyNs, mutators
}

// concSignalsWalk is the serial per-mutator reference the sharded
// aggregates replace: it walks every registered mutator under the shard
// locks and sums elapsed-minus-parked at the given instant (plus the
// banked busy of retired mutators, which has no walkable form). Kept as
// the oracle for the equivalence tests.
func (v *VM) concSignalsWalk(now time.Time) (mutBusyNs int64, mutators int) {
	for i := range v.shards {
		sh := &v.shards[i]
		sh.mu.Lock()
		for _, m := range sh.muts {
			mutBusyNs += now.Sub(m.registered).Nanoseconds() - m.parkedNs.Load()
			mutators++
		}
		mutBusyNs += sh.doneBusyNs
		sh.mu.Unlock()
	}
	return mutBusyNs, mutators
}

// MutatorCount returns the number of registered mutators. Approximate if
// called while the world is running.
func (v *VM) MutatorCount() int {
	var n int64
	for i := range v.shards {
		n += v.shards[i].live.Load()
	}
	return int(n)
}
