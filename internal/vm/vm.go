// Package vm implements the simulated managed runtime that hosts the
// collectors: mutator threads with shadow-stack roots, a safepoint and
// stop-the-world rendezvous protocol, collection scheduling, and
// pause/latency accounting.
//
// The paper implements LXR inside MMTk on OpenJDK; this package plays
// the role of the JVM + MMTk glue. Every allocation, reference load and
// reference store performed by application code goes through a Plan,
// which is where collectors hang their barriers — the same mediation
// MMTk performs via compiler-injected barrier code.
package vm

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lxr/internal/mem"
	"lxr/internal/obj"
)

// The simulated runtime models a multicore machine (the paper evaluates
// on 16-32 hardware threads). On boxes with very few CPUs Go would give
// the concurrent collector thread no cycles between pauses, so the VM
// raises GOMAXPROCS to a small floor; combined with the periodic
// processor yield in Safepoint this lets concurrent collection overlap
// with mutators the way it does on real hardware.
func init() {
	if runtime.GOMAXPROCS(0) < 8 {
		runtime.GOMAXPROCS(8)
	}
}

// Plan is the collector interface — the equivalent of an MMTk plan.
type Plan interface {
	// Name identifies the collector ("LXR", "G1", ...).
	Name() string
	// Arena exposes the heap the plan constructed.
	Arena() *mem.Arena
	// Boot finishes initialisation once the VM exists.
	Boot(v *VM)
	// (CollectNow below is self-contained: safe from any non-mutator
	// goroutine, or from a mutator inside Blocked.)
	// BindMutator installs per-mutator state (thread-local allocators,
	// barrier buffers) on m.PlanState.
	BindMutator(m *Mutator)
	// UnbindMutator flushes and releases per-mutator state.
	UnbindMutator(m *Mutator)
	// Alloc allocates an object, triggering collections as needed.
	Alloc(m *Mutator, l obj.Layout) obj.Ref
	// WriteRef performs a reference store src.slots[i] = val with the
	// plan's write barrier.
	WriteRef(m *Mutator, src obj.Ref, i int, val obj.Ref)
	// ReadRef performs a reference load of src.slots[i] with the plan's
	// read barrier (if any).
	ReadRef(m *Mutator, src obj.Ref, i int) obj.Ref
	// PollSafepoint runs plan work at mutator safepoints (trigger
	// checks). It must be cheap.
	PollSafepoint(m *Mutator)
	// CollectNow performs a synchronous collection for the given cause.
	// The caller must not hold the VM running-token (use
	// VM.RequestCollection from mutator context).
	CollectNow(cause string)
	// Shutdown stops concurrent collector threads.
	Shutdown()
}

// VM coordinates mutators and the collector.
type VM struct {
	Plan    Plan
	OM      obj.Model
	Stats   *Stats
	Globals []obj.Ref // global root slots (application-managed)

	mu      sync.Mutex
	cond    *sync.Cond
	phase   atomic.Int32 // non-zero: STW requested/active
	running int          // mutators currently holding the running token
	nextID  int
	muts    map[*Mutator]bool

	gcLock  sync.Mutex // serialises collections
	gcEpoch atomic.Uint64

	shutdown atomic.Bool
}

// New creates a VM around a plan and boots it.
func New(p Plan, globalRoots int) *VM {
	v := &VM{
		Plan:    p,
		OM:      obj.Model{A: p.Arena()},
		Stats:   NewStats(),
		Globals: make([]obj.Ref, globalRoots),
		muts:    make(map[*Mutator]bool),
	}
	v.cond = sync.NewCond(&v.mu)
	p.Boot(v)
	return v
}

// Shutdown stops the plan's concurrent threads. All mutators must have
// been deregistered.
func (v *VM) Shutdown() {
	v.shutdown.Store(true)
	v.Plan.Shutdown()
}

// GCEpoch returns the number of completed collections.
func (v *VM) GCEpoch() uint64 { return v.gcEpoch.Load() }

// --- running-token protocol --------------------------------------------------

func (v *VM) acquireRunning() {
	v.mu.Lock()
	for v.phase.Load() != 0 {
		v.cond.Wait()
	}
	v.running++
	v.mu.Unlock()
}

func (v *VM) releaseRunning() {
	v.mu.Lock()
	v.running--
	if v.running == 0 {
		v.cond.Broadcast()
	}
	v.mu.Unlock()
}

// StopTheWorld brings all mutators to safepoints, runs f, and releases
// them, recording the pause under the given kind. Only collection code
// may call it, and only from within a RunCollection critical section (or
// a context that guarantees no concurrent StopTheWorld).
//
// The world is restarted even if f panics (contained worker panics are
// re-raised inside pause phases), so the panic propagates to a caller
// that can record the failure instead of leaving every other mutator
// parked forever.
func (v *VM) StopTheWorld(kind string, f func()) time.Duration {
	return v.StopTheWorldTagged(kind, func() string { f(); return "" })
}

// StopTheWorldTagged is StopTheWorld for pauses whose phase is only
// known once the work has run: f returns the refined pause kind the
// pause is attributed to ("" keeps kind). Collectors whose pauses
// dynamically absorb extra phases — LXR pauses that finish a lazy
// decrement batch or complete the SATB trace, G1 young pauses that turn
// mixed — use it so the per-phase pause histograms and reports separate
// those populations.
func (v *VM) StopTheWorldTagged(kind string, f func() string) time.Duration {
	reqStart := time.Now()
	v.mu.Lock()
	v.phase.Store(1)
	for v.running > 0 {
		v.cond.Wait()
	}
	v.mu.Unlock()

	defer func() {
		v.mu.Lock()
		v.phase.Store(0)
		v.cond.Broadcast()
		v.mu.Unlock()
	}()

	start := time.Now()
	if refined := f(); refined != "" {
		kind = refined
	}
	dur := time.Since(start)

	v.Stats.RecordPause(kind, start, dur, start.Sub(reqStart))
	return dur
}

// RunCollection serialises a collection request. When m is non-nil the
// mutator's running token is released for the duration (so the STW
// rendezvous does not wait on the requester). f typically calls
// Plan.CollectNow logic which uses StopTheWorld internally.
func (v *VM) RunCollection(m *Mutator, f func()) {
	if m != nil {
		v.releaseRunning()
		defer v.acquireRunning()
	}
	v.gcLock.Lock()
	defer v.gcLock.Unlock()
	f()
	v.gcEpoch.Add(1)
}

// Collect performs a synchronous collection from a non-mutator
// goroutine (e.g. the harness between workload phases). CollectNow
// implementations are self-contained: they serialise against other
// collections themselves.
func (v *VM) Collect() { v.Plan.CollectNow("explicit") }

// CollectIfEpoch runs f (a collection) only if no collection completed
// since the caller observed epoch e. It returns true if f ran. Failing
// allocators use it so a burst of concurrent failures produces a single
// collection.
func (v *VM) CollectIfEpoch(m *Mutator, e uint64, f func()) bool {
	ran := false
	v.RunCollection(m, func() {
		if v.gcEpoch.Load() == e {
			f()
			ran = true
		}
	})
	return ran
}

// --- mutators ----------------------------------------------------------------

// Mutator is an application thread. All of its heap accesses go through
// the VM's plan. Roots is the thread's shadow stack: any object
// reachable from it is live.
type Mutator struct {
	ID int
	VM *VM

	// Roots is the shadow stack. The mutator may read and write it
	// freely; collectors scan it only while the world is stopped.
	Roots []obj.Ref

	// PlanState holds the plan's per-mutator state.
	PlanState any

	// BarrierWatch is a plan-owned cache for a hot write-barrier
	// predicate ("does this store need extra bookkeeping beyond the
	// fast path"). Keeping it as a plain field on the mutator lets the
	// barrier consult it without the PlanState type assertion. Plans
	// refresh it inside stop-the-world pauses only.
	BarrierWatch bool

	// busy-time accounting for the LBO cycles metric
	registered time.Time
	parkedNs   atomic.Int64

	rngState uint64
	polls    uint32
}

// RegisterMutator creates and registers a mutator thread context with a
// shadow stack of rootSlots slots. The calling goroutine holds the
// running token until Deregister, Safepoint-park, or a Blocked section.
func (v *VM) RegisterMutator(rootSlots int) *Mutator {
	v.acquireRunning()
	v.mu.Lock()
	v.nextID++
	m := &Mutator{
		ID:         v.nextID,
		VM:         v,
		Roots:      make([]obj.Ref, rootSlots),
		registered: time.Now(),
		rngState:   uint64(v.nextID)*0x9e3779b97f4a7c15 + 1,
	}
	v.muts[m] = true
	v.mu.Unlock()
	v.Plan.BindMutator(m)
	return m
}

// Deregister removes the mutator; its roots are no longer scanned.
func (m *Mutator) Deregister() {
	m.VM.Plan.UnbindMutator(m)
	m.VM.mu.Lock()
	delete(m.VM.muts, m)
	m.VM.mu.Unlock()
	m.VM.Stats.AddMutatorBusy(time.Since(m.registered) - time.Duration(m.parkedNs.Load()))
	m.VM.releaseRunning()
}

// Safepoint is the GC poll. Mutators must call it frequently (Alloc
// calls it implicitly). If a stop-the-world is pending the mutator
// parks here until the collection finishes.
func (m *Mutator) Safepoint() {
	m.VM.Plan.PollSafepoint(m)
	m.PollPark()
}

// PollPark performs Safepoint's park-and-yield duties without the plan
// poll. Plans whose Alloc inlines its own trigger check call it
// directly so the poll is not dispatched twice per allocation.
func (m *Mutator) PollPark() {
	if m.VM.phase.Load() != 0 {
		t0 := time.Now()
		m.VM.releaseRunning()
		m.VM.acquireRunning()
		m.parkedNs.Add(int64(time.Since(t0)))
		return
	}
	// Periodically yield the processor so concurrent collector threads
	// make progress even when the host has fewer CPUs than the machine
	// being modeled.
	m.polls++
	if m.polls&0x3ff == 0 {
		runtime.Gosched()
	}
}

// Blocked executes f with the mutator's running token released, so that
// stop-the-world can proceed while the mutator waits on channels, locks
// or I/O. f must not touch the heap.
func (m *Mutator) Blocked(f func()) {
	t0 := time.Now()
	m.VM.releaseRunning()
	f()
	m.VM.acquireRunning()
	m.parkedNs.Add(int64(time.Since(t0)))
}

// BlockedSleep sleeps with the running token released — equivalent to
// Blocked(func() { time.Sleep(d) }) but without the closure, so the
// open-loop request pacer allocates nothing per request.
func (m *Mutator) BlockedSleep(d time.Duration) {
	t0 := time.Now()
	m.VM.releaseRunning()
	time.Sleep(d)
	m.VM.acquireRunning()
	m.parkedNs.Add(int64(time.Since(t0)))
}

// Alloc allocates an object with the given number of reference slots and
// payload bytes, returning its reference.
func (m *Mutator) Alloc(typeID uint8, numRefs, payloadBytes int) obj.Ref {
	l := obj.Layout{
		NumRefs: numRefs,
		Size:    obj.SizeFor(numRefs, payloadBytes),
		TypeID:  typeID,
	}
	l.Large = l.Size > obj.LargeThreshold
	return m.VM.Plan.Alloc(m, l)
}

// Store writes reference slot i of obj src through the write barrier.
func (m *Mutator) Store(src obj.Ref, i int, val obj.Ref) {
	m.VM.Plan.WriteRef(m, src, i, val)
}

// Load reads reference slot i of obj src through the read barrier.
func (m *Mutator) Load(src obj.Ref, i int) obj.Ref {
	return m.VM.Plan.ReadRef(m, src, i)
}

// WritePayload stores a non-reference word into the object's payload.
// Payload accesses resolve forwarding (concurrent evacuating collectors
// may have moved the object) but need no other barrier.
func (m *Mutator) WritePayload(src obj.Ref, word int, v uint64) {
	src = m.VM.OM.Resolve(src)
	m.VM.OM.A.Store(m.VM.OM.PayloadAddr(src)+mem.Address(word)*mem.WordSize, v)
}

// ReadPayload loads a non-reference word from the object's payload.
func (m *Mutator) ReadPayload(src obj.Ref, word int) uint64 {
	src = m.VM.OM.Resolve(src)
	return m.VM.OM.A.Load(m.VM.OM.PayloadAddr(src) + mem.Address(word)*mem.WordSize)
}

// PayloadWords returns the payload size in words.
func (m *Mutator) PayloadWords(src obj.Ref) int {
	return m.VM.OM.PayloadBytes(m.VM.OM.Resolve(src)) / mem.WordSize
}

// NumRefs returns the reference-slot count of an object.
func (m *Mutator) NumRefs(src obj.Ref) int {
	return m.VM.OM.NumRefs(m.VM.OM.Resolve(src))
}

// RequestGC performs a synchronous collection from mutator context.
// The mutator's running token is released for the duration so the
// stop-the-world rendezvous does not wait on the requester.
func (m *Mutator) RequestGC() {
	m.Blocked(func() { m.VM.Plan.CollectNow("explicit") })
}

// Rand returns a fast thread-local pseudo-random uint64 (xorshift*).
// Workloads use it so that no locking or allocation sneaks into the
// mutator hot path.
func (m *Mutator) Rand() uint64 {
	x := m.rngState
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	m.rngState = x
	return x * 0x2545f4914f6cdd1d
}

// --- root scanning -----------------------------------------------------------

// SnapshotRoots appends every root (all mutator shadow stacks plus the
// global root slots) to dst. It must only be called while the world is
// stopped.
func (v *VM) SnapshotRoots(dst []obj.Ref) []obj.Ref {
	for m := range v.muts {
		for _, r := range m.Roots {
			if !r.IsNil() {
				dst = append(dst, r)
			}
		}
	}
	for _, r := range v.Globals {
		if !r.IsNil() {
			dst = append(dst, r)
		}
	}
	return dst
}

// EachMutator invokes f for every registered mutator. Must only be
// called while the world is stopped (or before mutators start).
func (v *VM) EachMutator(f func(m *Mutator)) {
	for m := range v.muts {
		f(m)
	}
}

// FixRoots rewrites every root slot through f (used by copying
// collectors to redirect references to evacuated objects). World must be
// stopped.
func (v *VM) FixRoots(f func(obj.Ref) obj.Ref) {
	for m := range v.muts {
		for i, r := range m.Roots {
			if !r.IsNil() {
				m.Roots[i] = f(r)
			}
		}
	}
	for i, r := range v.Globals {
		if !r.IsNil() {
			v.Globals[i] = f(r)
		}
	}
}

// ConcSignals supplies the cumulative feedback inputs every windowed
// estimator differences (conctrl.Signals): total mutator busy time —
// live mutators' elapsed-minus-parked time plus the busy time of
// mutators that already deregistered — total collector work, total
// stop-the-world time, and the live mutator count. Two consumers
// sample it: the conctrl controller (the adaptive loan-width governor
// and its WindowSink export to the pacing policies) every few
// milliseconds, and — under adaptive pacing only — each collector's
// pause coordinator once per epoch (policy.EpochStats). Everything but
// the short per-mutator walk is an
// atomic load, so both are cheap. The live-busy estimate counts a
// currently parked mutator as busy until its park is recorded;
// windowed consumers clamp the resulting small negative deltas.
func (v *VM) ConcSignals() (mutBusy, gcWork, pause time.Duration, mutators int) {
	now := time.Now()
	v.mu.Lock()
	for m := range v.muts {
		mutBusy += now.Sub(m.registered) - time.Duration(m.parkedNs.Load())
	}
	mutators = len(v.muts)
	v.mu.Unlock()
	mutBusy += v.Stats.MutatorBusy()
	return mutBusy, v.Stats.GCWork(), v.Stats.TotalPause(), mutators
}

// MutatorCount returns the number of registered mutators. Approximate if
// called while the world is running.
func (v *VM) MutatorCount() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.muts)
}
