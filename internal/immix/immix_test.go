package immix_test

import (
	"sync"
	"testing"

	"lxr/internal/immix"
	"lxr/internal/mem"
)

func table(t *testing.T, heapMB int) *immix.BlockTable {
	t.Helper()
	return immix.NewBlockTable(immix.Config{HeapBytes: heapMB << 20})
}

func TestAcquireReleaseRoundTrip(t *testing.T) {
	bt := table(t, 4)
	free0 := bt.FreeBlocks()
	idx, ok := bt.AcquireClean()
	if !ok {
		t.Fatal("acquire failed")
	}
	if bt.State(idx) != immix.StateReserved {
		t.Fatal("acquired block not reserved")
	}
	if bt.FreeBlocks() != free0-1 || bt.InUseBlocks() != 1 {
		t.Fatal("counters wrong after acquire")
	}
	bt.Retire(idx)
	if bt.State(idx) != immix.StateFull {
		t.Fatal("retire failed")
	}
	bt.ReleaseFree(idx)
	if bt.State(idx) != immix.StateFree || bt.FreeBlocks() != free0 || bt.InUseBlocks() != 0 {
		t.Fatal("release failed")
	}
}

func TestRecycledListValidatesState(t *testing.T) {
	bt := table(t, 4)
	idx, _ := bt.AcquireClean()
	bt.Retire(idx)
	bt.ReleaseRecycled(idx)
	// Corrupt: free it behind the list's back (simulates a sweep racing
	// an old listing); the stale entry must be discarded on pop.
	bt.SetState(idx, immix.StateFree)
	if got, ok := bt.AcquireRecycled(); ok && got == idx {
		t.Fatal("stale recycled entry handed out")
	}
}

func TestBudgetEnforced(t *testing.T) {
	bt := table(t, 1) // 32 blocks
	n := 0
	for {
		if _, ok := bt.AcquireClean(); !ok {
			break
		}
		n++
	}
	if n != bt.BudgetBlocks() {
		t.Fatalf("acquired %d blocks, budget %d", n, bt.BudgetBlocks())
	}
}

func TestParallelAcquireUnique(t *testing.T) {
	bt := table(t, 8)
	var mu sync.Mutex
	seen := map[int]bool{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				idx, ok := bt.AcquireClean()
				if !ok {
					return
				}
				mu.Lock()
				if seen[idx] {
					mu.Unlock()
					panic("block handed out twice")
				}
				seen[idx] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != bt.BudgetBlocks() {
		t.Fatalf("unique blocks %d != budget %d", len(seen), bt.BudgetBlocks())
	}
}

func TestFlags(t *testing.T) {
	bt := table(t, 2)
	idx, _ := bt.AcquireClean()
	bt.SetFlag(idx, immix.FlagYoung|immix.FlagDirty)
	if !bt.HasFlag(idx, immix.FlagYoung) || !bt.HasFlag(idx, immix.FlagDirty) {
		t.Fatal("flags not set")
	}
	bt.ClearFlag(idx, immix.FlagYoung)
	if bt.HasFlag(idx, immix.FlagYoung) || !bt.HasFlag(idx, immix.FlagDirty) {
		t.Fatal("selective clear failed")
	}
	bt.SetKind(idx, 3)
	if bt.Kind(idx) != 3 {
		t.Fatal("kind lost")
	}
	if bt.State(idx) != immix.StateReserved {
		t.Fatal("state disturbed by flags")
	}
}

func TestDirtyTrackingDedups(t *testing.T) {
	bt := table(t, 2)
	idx, _ := bt.AcquireClean()
	bt.NoteDirty(idx)
	bt.NoteDirty(idx)
	d := bt.TakeDirty()
	if len(d) != 1 || d[0] != idx {
		t.Fatalf("dirty list %v", d)
	}
	if len(bt.TakeDirty()) != 0 {
		t.Fatal("TakeDirty did not clear")
	}
}

// --- allocator -----------------------------------------------------------------

type allLinesFree struct{}

func (allLinesFree) LineFree(int) bool { return true }

func TestBumpAllocatorBasics(t *testing.T) {
	bt := table(t, 2)
	al := immix.Allocator{BT: bt}
	a, ok := al.Alloc(64)
	if !ok {
		t.Fatal("alloc failed")
	}
	b, _ := al.Alloc(64)
	if b != a+64 {
		t.Fatalf("not bump allocated: %x then %x", a, b)
	}
	if al.Allocated != 128 {
		t.Fatal("accounting wrong")
	}
	al.Flush()
	if bt.State(a.Block()) != immix.StateFull {
		t.Fatal("flush must retire the block")
	}
}

func TestAllocatorZeroesMemory(t *testing.T) {
	bt := table(t, 2)
	al := immix.Allocator{BT: bt}
	a, _ := al.Alloc(128)
	bt.Arena.Store(a, 0xff)
	al.Flush()
	bt.ReleaseFree(a.Block())
	al2 := immix.Allocator{BT: bt}
	for {
		b, ok := al2.Alloc(128)
		if !ok {
			t.Fatal("heap exhausted before reuse")
		}
		if b == a {
			if bt.Arena.Load(b) != 0 {
				t.Fatal("reused memory not zeroed")
			}
			return
		}
	}
}

func TestRecycledLineSkipRule(t *testing.T) {
	bt := table(t, 2)
	// Build a line map: lines 0-2 used, 3-7 free, rest used.
	used := map[int]bool{}
	idx, _ := bt.AcquireClean()
	base := idx * mem.LinesPerBlock
	for l := 0; l < mem.LinesPerBlock; l++ {
		used[base+l] = !(l >= 3 && l <= 7)
	}
	bt.Retire(idx)
	bt.ReleaseRecycled(idx)

	lm := mapLines{used}
	al := immix.Allocator{BT: bt, Lines: lm, UseRecycled: true}
	a, ok := al.Alloc(64)
	if !ok {
		t.Fatal("alloc failed")
	}
	// The first free line (3) follows a used line and must be skipped
	// (conservative straddle rule): allocation starts at line 4.
	if got := a.LineInBlock(); got != 4 {
		t.Fatalf("allocation started at line %d, want 4", got)
	}
}

type mapLines struct{ used map[int]bool }

func (m mapLines) LineFree(idx int) bool { return !m.used[idx] }

func TestOverflowAllocationZeroes(t *testing.T) {
	bt := table(t, 2)
	used := map[int]bool{}
	idx, _ := bt.AcquireClean()
	base := idx * mem.LinesPerBlock
	// Two free lines at 10-11 (span of 256B after skip); everything
	// else used, forcing a medium object to overflow.
	for l := 0; l < mem.LinesPerBlock; l++ {
		used[base+l] = !(l == 10 || l == 11)
	}
	bt.Retire(idx)
	bt.ReleaseRecycled(idx)

	var spans [][2]mem.Address
	al := immix.Allocator{BT: bt, Lines: mapLines{used}, UseRecycled: true,
		OnSpan: func(s, e mem.Address, r bool) { spans = append(spans, [2]mem.Address{s, e}) }}
	small, ok := al.Alloc(64) // lands in the recycled span
	if !ok || small.Block() != idx {
		t.Fatalf("small alloc misplaced: %x ok=%v", small, ok)
	}
	med, ok := al.Alloc(1024) // does not fit the span: overflow block
	if !ok {
		t.Fatal("medium alloc failed")
	}
	if med.Block() == idx {
		t.Fatal("medium object should have gone to an overflow block")
	}
	if bt.Arena.Load(med) != 0 {
		t.Fatal("overflow memory not zeroed")
	}
	if len(spans) < 2 {
		t.Fatal("overflow span must be reported via OnSpan")
	}
}

// --- large object space -----------------------------------------------------

func TestLOSAllocFree(t *testing.T) {
	bt := table(t, 4)
	los := bt.LOS()
	a, ok := los.Alloc(40 << 10) // 2 blocks
	if !ok {
		t.Fatal("los alloc failed")
	}
	if los.BlocksInUse() != 2 {
		t.Fatalf("blocks in use %d", los.BlocksInUse())
	}
	if !los.Contains(a) {
		t.Fatal("Contains false for live object")
	}
	if los.Count() != 1 {
		t.Fatal("count wrong")
	}
	los.Free(a)
	if los.BlocksInUse() != 0 || los.Count() != 0 {
		t.Fatal("free failed")
	}
}

func TestLOSCoalescesRuns(t *testing.T) {
	bt := table(t, 4)
	los := bt.LOS()
	a, _ := los.Alloc(40 << 10)
	b, _ := los.Alloc(40 << 10)
	c, _ := los.Alloc(40 << 10)
	los.Free(b)
	los.Free(a) // coalesce with b's run
	los.Free(c) // coalesce on the other side
	// After coalescing a large allocation spanning all three must fit.
	if _, ok := los.Alloc(3 * 40 << 10); !ok {
		t.Fatal("runs did not coalesce")
	}
}

func TestLOSRespectsBudget(t *testing.T) {
	bt := table(t, 1) // 32-block budget
	los := bt.LOS()
	total := 0
	for {
		if _, ok := los.Alloc(64 << 10); !ok {
			break
		}
		total += 2
	}
	if total > bt.BudgetBlocks() {
		t.Fatalf("LOS exceeded budget: %d blocks", total)
	}
}

func TestRebuildFromSweep(t *testing.T) {
	bt := table(t, 1)
	var held []int
	for i := 0; i < 6; i++ {
		idx, _ := bt.AcquireClean()
		bt.Retire(idx)
		held = append(held, idx)
	}
	bt.RebuildFromSweep(func(idx int) immix.BlockClass {
		switch {
		case idx == held[0]:
			return immix.ClassFree
		case idx == held[1]:
			return immix.ClassPartial
		case idx <= held[5] && idx >= held[0]:
			return immix.ClassFull
		default:
			return immix.ClassFree
		}
	})
	if bt.State(held[0]) != immix.StateFree {
		t.Fatal("rebuild free failed")
	}
	if bt.State(held[1]) != immix.StateRecycled {
		t.Fatal("rebuild partial failed")
	}
	if bt.State(held[2]) != immix.StateFull {
		t.Fatal("rebuild full failed")
	}
	if got, ok := bt.AcquireRecycled(); !ok || got != held[1] {
		t.Fatal("rebuilt recycled list broken")
	}
}
