package immix_test

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"lxr/internal/immix"
	"lxr/internal/mem"
)

// mutexDirtyRef is the reference implementation the sharded lock-free
// tracker replaced: a mutex-guarded dedup set with exact set semantics.
type mutexDirtyRef struct {
	mu  sync.Mutex
	set map[int]bool
}

func (r *mutexDirtyRef) note(idx int) {
	r.mu.Lock()
	if r.set == nil {
		r.set = map[int]bool{}
	}
	r.set[idx] = true
	r.mu.Unlock()
}

func (r *mutexDirtyRef) take() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]int, 0, len(r.set))
	for idx := range r.set {
		out = append(out, idx)
	}
	r.set = nil
	return out
}

func sortedCopy(s []int) []int {
	out := append([]int(nil), s...)
	sort.Ints(out)
	return out
}

// TestDirtyTrackingMatchesMutexReference interleaves NoteDirty and
// TakeDirty single-threaded against the mutex reference: every take
// must return exactly the reference's set — no lost blocks, no
// duplicates, dedup across repeated notes, and re-noting after a take
// must queue the block again.
func TestDirtyTrackingMatchesMutexReference(t *testing.T) {
	bt := immix.NewBlockTable(immix.Config{HeapBytes: 256 * mem.BlockSize})
	ref := &mutexDirtyRef{}
	rng := rand.New(rand.NewSource(42))
	n := bt.Blocks()
	for step := 0; step < 20000; step++ {
		if rng.Intn(50) == 0 {
			got := sortedCopy(bt.TakeDirty())
			want := sortedCopy(ref.take())
			if len(got) != len(want) {
				t.Fatalf("step %d: take returned %d blocks, reference %d\ngot  %v\nwant %v",
					step, len(got), len(want), got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("step %d: take mismatch at %d: got %v want %v", step, i, got, want)
				}
			}
			continue
		}
		idx := 1 + rng.Intn(n)
		bt.NoteDirty(idx)
		ref.note(idx)
	}
	got, want := sortedCopy(bt.TakeDirty()), sortedCopy(ref.take())
	if len(got) != len(want) {
		t.Fatalf("final take: %d blocks vs reference %d", len(got), len(want))
	}
	if len(bt.TakeDirty()) != 0 {
		t.Fatal("second take after drain returned blocks")
	}
}

// TestDirtyTrackingConcurrentChurn hammers NoteDirty from 32 goroutines
// while 4 takers drain concurrently, then checks the linearizable set
// properties that survive arbitrary interleaving: no take contains a
// duplicate, every noted block is eventually returned at least once,
// and no block is returned more times than it was noted. Run under
// -race in CI, this also pins the tracker's happens-before edges.
func TestDirtyTrackingConcurrentChurn(t *testing.T) {
	const (
		noters        = 32
		takers        = 4
		notesPerNoter = 4000
	)
	bt := immix.NewBlockTable(immix.Config{HeapBytes: 512 * mem.BlockSize})
	n := bt.Blocks()
	noted := make([]atomic.Int64, n+1)
	taken := make([]atomic.Int64, n+1)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < takers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				for _, idx := range bt.TakeDirty() {
					taken[idx].Add(1)
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}
	var nwg sync.WaitGroup
	for g := 0; g < noters; g++ {
		nwg.Add(1)
		go func(seed int64) {
			defer nwg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < notesPerNoter; i++ {
				idx := 1 + rng.Intn(n)
				noted[idx].Add(1)
				bt.NoteDirty(idx)
			}
		}(int64(g))
	}
	nwg.Wait()
	close(stop)
	wg.Wait()
	// Final drain: every note has completed, so one take captures the
	// entire residue.
	final := bt.TakeDirty()
	seen := map[int]bool{}
	for _, idx := range final {
		if seen[idx] {
			t.Fatalf("final take returned block %d twice", idx)
		}
		seen[idx] = true
		taken[idx].Add(1)
	}
	for idx := 1; idx <= n; idx++ {
		nN, nT := noted[idx].Load(), taken[idx].Load()
		if nN > 0 && nT == 0 {
			t.Fatalf("block %d noted %d times but never taken", idx, nN)
		}
		if nT > nN {
			t.Fatalf("block %d taken %d times but only noted %d times", idx, nT, nN)
		}
	}
	if len(bt.TakeDirty()) != 0 {
		t.Fatal("tracker not empty after full drain")
	}
}

// TestDirtyTrackingSurvivesRelease pins the freelist-aliasing hazard:
// releasing a block to the free list (which rewrites the freelist's
// next links) while it is still marked dirty must not corrupt either
// structure, and the next take must still return the block.
func TestDirtyTrackingSurvivesRelease(t *testing.T) {
	bt := immix.NewBlockTable(immix.Config{HeapBytes: 64 * mem.BlockSize})
	var blocks []int
	for i := 0; i < 8; i++ {
		idx, ok := bt.AcquireClean()
		if !ok {
			t.Fatal("acquire failed")
		}
		bt.NoteDirty(idx)
		blocks = append(blocks, idx)
	}
	// Release every queued block: each push rewrites the freelist link
	// of a block whose dirty bit is still set.
	for _, idx := range blocks {
		bt.ReleaseFree(idx)
	}
	got := sortedCopy(bt.TakeDirty())
	want := sortedCopy(blocks)
	if len(got) != len(want) {
		t.Fatalf("take after release: got %v want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("take after release: got %v want %v", got, want)
		}
	}
	// The free list must still hand every block back exactly once.
	seen := map[int]bool{}
	for {
		idx, ok := bt.AcquireClean()
		if !ok {
			break
		}
		if seen[idx] {
			t.Fatalf("free list returned block %d twice", idx)
		}
		seen[idx] = true
	}
	if len(seen) != bt.Blocks() {
		t.Fatalf("free list yielded %d blocks, want %d", len(seen), bt.Blocks())
	}
}
