package immix

import (
	"math/rand"
	"testing"

	"lxr/internal/mem"
)

// boolLines backs a LineMap with a plain bool slice (true = free). It
// deliberately does NOT implement LineBitsSource, so LoadLineBits also
// exercises its per-line fallback.
type boolLines []bool

func (b boolLines) LineFree(idx int) bool { return b[idx] }

// refSpans is the per-line reference scan the word-at-a-time nextSpan
// replaced: the exact loop of the pre-optimisation nextSpanInBlock,
// returning the full span sequence.
func refSpans(free []bool) [][2]int {
	var spans [][2]int
	l := 0
	for l < mem.LinesPerBlock {
		for l < mem.LinesPerBlock && !free[l] {
			l++
		}
		if l >= mem.LinesPerBlock {
			break
		}
		if l > 0 {
			l++
			if l >= mem.LinesPerBlock || !free[l] {
				continue
			}
		}
		start := l
		for l < mem.LinesPerBlock && free[l] {
			l++
		}
		spans = append(spans, [2]int{start, l})
	}
	return spans
}

func bitSpans(free []bool) [][2]int {
	var bm [mem.LinesPerBlock / 32]uint32
	LoadLineBits(boolLines(free), 0, &bm)
	var spans [][2]int
	scan := 0
	for {
		start, end, ok := nextSpan(&bm, scan)
		if !ok {
			return spans
		}
		spans = append(spans, [2]int{start, end})
		scan = end
	}
}

// TestNextSpanMatchesReference checks the word-at-a-time scan yields
// exactly the span sequence of the per-line reference scan over random
// occupancy patterns, plus the structured edge cases.
func TestNextSpanMatchesReference(t *testing.T) {
	check := func(name string, free []bool) {
		ref, got := refSpans(free), bitSpans(free)
		if len(ref) != len(got) {
			t.Fatalf("%s: %d spans, want %d (got %v want %v)", name, len(got), len(ref), got, ref)
		}
		for i := range ref {
			if ref[i] != got[i] {
				t.Fatalf("%s: span %d = %v, want %v", name, i, got[i], ref[i])
			}
		}
	}

	all := func(v bool) []bool {
		f := make([]bool, mem.LinesPerBlock)
		for i := range f {
			f[i] = v
		}
		return f
	}
	check("all-free", all(true))
	check("all-used", all(false))
	for _, hole := range []int{0, 1, 31, 32, 33, 63, 64, 126, 127} {
		f := all(true)
		f[hole] = false
		check("one-used", f)
		g := all(false)
		g[hole] = true
		check("one-free", g)
	}
	// Alternating lines: the conservative rule consumes every span.
	alt := all(false)
	for i := 0; i < mem.LinesPerBlock; i += 2 {
		alt[i] = true
	}
	check("alternating", alt)

	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		f := make([]bool, mem.LinesPerBlock)
		density := r.Intn(100)
		for i := range f {
			f[i] = r.Intn(100) < density
		}
		check("random", f)
	}

	// ScanSpans agrees with the reference totals too.
	for trial := 0; trial < 200; trial++ {
		f := make([]bool, mem.LinesPerBlock)
		for i := range f {
			f[i] = r.Intn(2) == 0
		}
		ref := refSpans(f)
		wantLines := 0
		for _, s := range ref {
			wantLines += s[1] - s[0]
		}
		spans, lines := ScanSpans(boolLines(f), 0)
		if spans != len(ref) || lines != wantLines {
			t.Fatalf("ScanSpans = (%d, %d), want (%d, %d)", spans, lines, len(ref), wantLines)
		}
	}
}
