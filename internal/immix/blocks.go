// Package immix implements the Immix hierarchical heap structure shared
// by LXR and the baseline collectors: a table of 32 KB blocks divided
// into 256 B lines, lock-free global free/recycled block lists, a bounded
// clean-block buffer (§3.5), thread-local bump-pointer allocators with
// line recycling and dynamic overflow (§3.1), and a large object space.
package immix

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"lxr/internal/mem"
)

// Block states (low nibble of the per-block state word).
const (
	StateUntracked uint32 = iota // block 0 / outside any space
	StateFree                    // on the free list or clean buffer
	StateReserved                // held by a thread-local allocator
	StateFull                    // retired, contains objects
	StateRecycled                // partially free, on the recycled list
	StateLargeHead               // first block of a large object
	StateLargeBody               // continuation block of a large object
)

// Block flags (upper bits of the state word).
const (
	// FlagDefrag marks a block selected into an evacuation set.
	FlagDefrag uint32 = 1 << 8
	// FlagYoung marks a block that was completely clean when handed to
	// an allocator in the current RC epoch; every object in it is young,
	// making it a target for all-young evacuation (§3.3.2).
	FlagYoung uint32 = 1 << 9
	// FlagDirty marks a block allocated into since the last collection;
	// these are the blocks the RC pause sweeps.
	FlagDirty uint32 = 1 << 10
	// FlagEvacuating marks blocks whose objects are being copied out by
	// a concurrent collector (Shenandoah/ZGC collection sets).
	FlagEvacuating uint32 = 1 << 11

	stateMask = 0xf
	flagsMask = ^uint32(stateMask)
)

// KindShift positions the 8-bit space/kind tag baselines use (e.g. G1
// region kind, semispace half).
const KindShift = 16

// BlockTable tracks the state of every block in an arena plus the global
// free and recycled lists. All operations on the lists are lock-free
// (Treiber stacks with an ABA tag), matching the paper's lock-free block
// allocators (§3.5).
type BlockTable struct {
	Arena *mem.Arena

	state []uint32 // per-block state word
	next  []uint32 // freelist links (block index, 0 = end)
	live  []int32  // per-block live-byte scratch for liveness analyses

	freeHead atomic.Uint64 // packed (tag<<32 | idx)
	recyHead atomic.Uint64

	freeCount atomic.Int32 // blocks on the free list + clean buffer
	recyCount atomic.Int32
	inUse     atomic.Int32 // blocks held by allocators, full, or large

	// cleanBuf is the bounded lock-free clean-block buffer from §3.5
	// ("a 4 MB lock-free global block allocation buffer"): a small array
	// of slots that front the free list to reduce contention at very
	// high allocation rates. Slot value 0 means empty.
	cleanBuf []atomic.Uint32

	// budgetBlocks is the collector's heap budget in blocks; the arena
	// may be larger (it also holds the large object range).
	budgetBlocks int

	mainBlocks int // blocks [1, mainBlocks] belong to the main space

	// Dirty-block tracking: which blocks received allocation since the
	// last collection, maintained lock-free so NoteDirty on the
	// allocation slow path never serializes a thousand mutators behind
	// one mutex. One bit per block; each 32-bit word is an independent
	// shard (CAS to set, Swap to drain), so noters of far-apart blocks
	// never touch the same cache line.
	dirtyBits []uint32

	defragSet []int // current evacuation-set blocks

	// Trace, when set, receives block lifecycle events (debugging).
	Trace func(idx int, event string)

	los *LargeSpace
}

// Config controls heap construction.
type Config struct {
	// HeapBytes is the collector's heap budget (the "heap size" of the
	// paper's experiments). Main-space blocks plus large-object blocks
	// in use never exceed it.
	HeapBytes int
	// LOSBytes is the capacity reserved in the arena for the large
	// object range. It defaults to HeapBytes (budget still shared).
	LOSBytes int
	// CleanBufferSlots sizes the lock-free clean-block buffer.
	// Defaults to 32 entries, the paper's default (§5.4).
	CleanBufferSlots int
}

// NewBlockTable builds an arena and its block table.
func NewBlockTable(cfg Config) *BlockTable {
	if cfg.HeapBytes < 4*mem.BlockSize {
		cfg.HeapBytes = 4 * mem.BlockSize
	}
	if cfg.LOSBytes == 0 {
		cfg.LOSBytes = cfg.HeapBytes
	}
	if cfg.CleanBufferSlots == 0 {
		cfg.CleanBufferSlots = 32
	}
	mainBytes := (cfg.HeapBytes + mem.BlockSize - 1) / mem.BlockSize * mem.BlockSize
	arena := mem.NewArena(mainBytes + cfg.LOSBytes)
	n := arena.Blocks()
	bt := &BlockTable{
		Arena:        arena,
		state:        make([]uint32, n),
		next:         make([]uint32, n),
		live:         make([]int32, n),
		cleanBuf:     make([]atomic.Uint32, cfg.CleanBufferSlots),
		budgetBlocks: cfg.HeapBytes / mem.BlockSize,
		mainBlocks:   mainBytes / mem.BlockSize,
		dirtyBits:    make([]uint32, (n+31)/32),
	}
	// Blocks run [1, mainBlocks] for the main space; the rest is LOS.
	for i := bt.mainBlocks; i >= 1; i-- {
		bt.state[i] = StateFree
		bt.pushList(&bt.freeHead, i)
	}
	bt.freeCount.Store(int32(bt.mainBlocks))
	bt.los = newLargeSpace(bt, bt.mainBlocks+1, n-1)
	return bt
}

// LOS returns the large object space.
func (bt *BlockTable) LOS() *LargeSpace { return bt.los }

// Blocks returns the number of main-space blocks.
func (bt *BlockTable) Blocks() int { return bt.mainBlocks }

// BudgetBlocks returns the heap budget in blocks.
func (bt *BlockTable) BudgetBlocks() int { return bt.budgetBlocks }

// HeapBytes returns the heap budget in bytes.
func (bt *BlockTable) HeapBytes() int { return bt.budgetBlocks * mem.BlockSize }

// --- state word accessors --------------------------------------------------

// State returns the state nibble of block idx.
func (bt *BlockTable) State(idx int) uint32 {
	return atomic.LoadUint32(&bt.state[idx]) & stateMask
}

// Word returns the whole state word of block idx.
func (bt *BlockTable) Word(idx int) uint32 { return atomic.LoadUint32(&bt.state[idx]) }

// SetState replaces the state nibble of block idx, preserving flags.
func (bt *BlockTable) SetState(idx int, s uint32) {
	for {
		old := atomic.LoadUint32(&bt.state[idx])
		if atomic.CompareAndSwapUint32(&bt.state[idx], old, old&flagsMask|s) {
			return
		}
	}
}

// SetFlag sets flag bits on block idx.
func (bt *BlockTable) SetFlag(idx int, f uint32) {
	for {
		old := atomic.LoadUint32(&bt.state[idx])
		if old&f == f || atomic.CompareAndSwapUint32(&bt.state[idx], old, old|f) {
			return
		}
	}
}

// ClearFlag clears flag bits on block idx.
func (bt *BlockTable) ClearFlag(idx int, f uint32) {
	for {
		old := atomic.LoadUint32(&bt.state[idx])
		if old&f == 0 || atomic.CompareAndSwapUint32(&bt.state[idx], old, old&^f) {
			return
		}
	}
}

// HasFlag reports whether block idx has all bits of f set.
func (bt *BlockTable) HasFlag(idx int, f uint32) bool {
	return atomic.LoadUint32(&bt.state[idx])&f == f
}

// SetKind stores an 8-bit space/kind tag for block idx.
func (bt *BlockTable) SetKind(idx int, kind uint8) {
	for {
		old := atomic.LoadUint32(&bt.state[idx])
		new := old&^uint32(0xff<<KindShift) | uint32(kind)<<KindShift
		if atomic.CompareAndSwapUint32(&bt.state[idx], old, new) {
			return
		}
	}
}

// Kind returns the 8-bit space/kind tag of block idx.
func (bt *BlockTable) Kind(idx int) uint8 {
	return uint8(atomic.LoadUint32(&bt.state[idx]) >> KindShift)
}

// SetLive stores a live-byte figure for block idx.
func (bt *BlockTable) SetLive(idx int, bytes int32) { atomic.StoreInt32(&bt.live[idx], bytes) }

// AddLive accumulates live bytes for block idx and returns the new total.
func (bt *BlockTable) AddLive(idx int, bytes int32) int32 {
	return atomic.AddInt32(&bt.live[idx], bytes)
}

// Live returns the live-byte figure of block idx.
func (bt *BlockTable) Live(idx int) int32 { return atomic.LoadInt32(&bt.live[idx]) }

// ClearLiveAll zeroes the live-byte scratch for all blocks.
func (bt *BlockTable) ClearLiveAll() {
	bt.ClearLiveRange(0, len(bt.live))
}

// ClearLiveRange zeroes the live-byte scratch for blocks [lo, hi), so
// pause code can split the full clear across gcwork.ParallelFor workers
// (partition over [0, Arena.Blocks())) instead of walking every block's
// live word serially at each cycle start.
func (bt *BlockTable) ClearLiveRange(lo, hi int) {
	ls := bt.live[lo:hi:hi]
	for i := range ls {
		atomic.StoreInt32(&ls[i], 0)
	}
}

// --- lock-free lists --------------------------------------------------------

func (bt *BlockTable) pushList(head *atomic.Uint64, idx int) {
	for {
		old := head.Load()
		bt.next[idx] = uint32(old) // current head index
		new := (old>>32+1)<<32 | uint64(uint32(idx))
		if head.CompareAndSwap(old, new) {
			return
		}
	}
}

func (bt *BlockTable) popList(head *atomic.Uint64) (int, bool) {
	for {
		old := head.Load()
		idx := uint32(old)
		if idx == 0 {
			return 0, false
		}
		next := atomic.LoadUint32(&bt.next[idx])
		new := (old>>32+1)<<32 | uint64(next)
		if head.CompareAndSwap(old, new) {
			return int(idx), true
		}
	}
}

// FreeBlocks returns the number of clean blocks available.
func (bt *BlockTable) FreeBlocks() int { return int(bt.freeCount.Load()) }

// RecycledBlocks returns the number of partially free blocks available.
func (bt *BlockTable) RecycledBlocks() int { return int(bt.recyCount.Load()) }

// InUseBlocks returns main-space blocks currently holding objects or
// reserved by allocators.
func (bt *BlockTable) InUseBlocks() int { return int(bt.inUse.Load()) }

// BudgetRemaining returns how many more blocks the heap budget allows,
// counting both main-space blocks in use and large-object blocks.
func (bt *BlockTable) BudgetRemaining() int {
	used := int(bt.inUse.Load()) + bt.los.BlocksInUse()
	return bt.budgetBlocks - used
}

// AcquireClean hands out a completely free block, trying the clean
// buffer first, then the free list. Returns false when the heap budget
// or the free list is exhausted.
func (bt *BlockTable) AcquireClean() (int, bool) {
	if bt.BudgetRemaining() <= 0 {
		return 0, false
	}
	return bt.acquireCleanAny()
}

// AcquireCleanNoBudget hands out a free block ignoring the heap budget
// (bounded by the arena's physical main-space size). Evacuation uses it
// as a to-space reserve: a collection must not fail for lack of copy
// space while physically free blocks exist — the space drains right
// back when the evacuated blocks are freed at the end of the pause.
func (bt *BlockTable) AcquireCleanNoBudget() (int, bool) {
	return bt.acquireCleanAny()
}

func (bt *BlockTable) acquireCleanAny() (int, bool) {
	// Fast path: the bounded clean buffer.
	for i := range bt.cleanBuf {
		if idx := bt.cleanBuf[i].Load(); idx != 0 {
			if bt.cleanBuf[i].CompareAndSwap(idx, 0) {
				bt.claim(int(idx), StateReserved)
				bt.freeCount.Add(-1)
				if bt.Trace != nil {
					bt.Trace(int(idx), "acquire-clean-buf")
				}
				return int(idx), true
			}
		}
	}
	idx, ok := bt.popList(&bt.freeHead)
	if !ok {
		return 0, false
	}
	bt.claim(idx, StateReserved)
	bt.freeCount.Add(-1)
	if bt.Trace != nil {
		bt.Trace(idx, "acquire-clean")
	}
	return idx, true
}

// AcquireRecycled hands out a partially free block from the recycled
// list. Recycled blocks are already counted against the heap budget
// (they hold live objects), so reusing their free lines is always
// allowed — this is what lets Immix absorb allocation without consuming
// clean blocks.
func (bt *BlockTable) AcquireRecycled() (int, bool) {
	for {
		idx, ok := bt.popList(&bt.recyHead)
		if !ok {
			return 0, false
		}
		bt.recyCount.Add(-1)
		// Validate: a block may have changed state since being listed.
		if bt.State(idx) == StateRecycled {
			bt.SetState(idx, StateReserved)
			if bt.Trace != nil {
				bt.Trace(idx, "acquire-recycled")
			}
			return idx, true
		}
	}
}

func (bt *BlockTable) claim(idx int, s uint32) {
	bt.SetState(idx, s)
	bt.inUse.Add(1)
}

// ReleaseFree returns a block to the clean pool (buffer first, then the
// free list). The caller must have removed all objects from it.
func (bt *BlockTable) ReleaseFree(idx int) {
	if bt.Trace != nil {
		bt.Trace(idx, "release-free")
	}
	bt.ClearFlag(idx, FlagYoung|FlagDirty|FlagDefrag|FlagEvacuating)
	bt.SetState(idx, StateFree)
	bt.inUse.Add(-1)
	bt.freeCount.Add(1)
	for i := range bt.cleanBuf {
		if bt.cleanBuf[i].Load() == 0 && bt.cleanBuf[i].CompareAndSwap(0, uint32(idx)) {
			return
		}
	}
	bt.pushList(&bt.freeHead, idx)
}

// ReleaseRecycled puts a partially free block on the recycled list. The
// block still holds live objects and remains counted as in use.
func (bt *BlockTable) ReleaseRecycled(idx int) {
	if bt.Trace != nil {
		bt.Trace(idx, "release-recycled")
	}
	bt.ClearFlag(idx, FlagYoung|FlagDirty)
	bt.SetState(idx, StateRecycled)
	bt.recyCount.Add(1)
	bt.pushList(&bt.recyHead, idx)
}

// Retire marks a block full (still counted in use).
func (bt *BlockTable) Retire(idx int) {
	if bt.Trace != nil {
		bt.Trace(idx, "retire")
	}
	bt.SetState(idx, StateFull)
}

// --- dirty block tracking ----------------------------------------------------

// NoteDirty records that a block received new allocation since the last
// collection, so the next RC pause must sweep it. It is lock-free: a
// load of the block's dirty bit dedups with no write at all (the common
// case, since a block is noted once per span but allocated into many
// times), and only the first noter per epoch CASes the bit in. Each
// 32-bit bitmap word is an independent shard — contention is bounded to
// the handful of mutators racing to first-note one of the same 32
// neighbouring blocks, never a global point.
func (bt *BlockTable) NoteDirty(idx int) {
	bt.SetFlag(idx, FlagDirty)
	w, m := idx/32, uint32(1)<<(idx%32)
	for {
		old := atomic.LoadUint32(&bt.dirtyBits[w])
		if old&m != 0 {
			return // already queued for the next sweep
		}
		if atomic.CompareAndSwapUint32(&bt.dirtyBits[w], old, old|m) {
			return
		}
	}
}

// TakeDirty returns and clears the set of dirty blocks by swap-draining
// the bitmap one word at a time. Each Swap is the linearization point
// for its 32 blocks: every NoteDirty that completed before the Swap is
// captured by this take, a note that lands after it is deferred whole
// to the next pause, and no bit is ever observed by two takers. The
// leading plain load skips empty words without taking the cache line
// exclusive, so a take over a mostly-clean heap is a read-only scan.
//
// The result comes out sorted ascending for free — bits are emitted in
// word-then-bit order — which the sweep's classify pass wants anyway:
// it reads each block's RC-table words, so ascending order walks the
// table sequentially instead of striding across it.
func (bt *BlockTable) TakeDirty() []int {
	var out []int
	for w := range bt.dirtyBits {
		if atomic.LoadUint32(&bt.dirtyBits[w]) == 0 {
			continue
		}
		set := atomic.SwapUint32(&bt.dirtyBits[w], 0)
		for set != 0 {
			out = append(out, w*32+bits.TrailingZeros32(set))
			set &= set - 1
		}
	}
	return out
}

// BlockClass is the sweep classification used by RebuildFromSweep.
type BlockClass int

const (
	// ClassFree marks a block with no live data.
	ClassFree BlockClass = iota
	// ClassPartial marks a block with some free lines.
	ClassPartial
	// ClassFull marks a fully live block.
	ClassFull
)

// RebuildFromSweep rebuilds the free and recycled lists from scratch
// after a full stop-the-world sweep: classify is invoked for every
// main-space block and returns its post-collection class. Must be
// called with the world stopped and all allocators flushed.
func (bt *BlockTable) RebuildFromSweep(classify func(idx int) BlockClass) {
	// Drain the lists and the clean buffer.
	for {
		if _, ok := bt.popList(&bt.freeHead); !ok {
			break
		}
	}
	for {
		if _, ok := bt.popList(&bt.recyHead); !ok {
			break
		}
	}
	for i := range bt.cleanBuf {
		bt.cleanBuf[i].Store(0)
	}
	free, recy, inUse := 0, 0, 0
	for i := 1; i <= bt.mainBlocks; i++ {
		bt.ClearFlag(i, FlagYoung|FlagDirty|FlagDefrag|FlagEvacuating)
		switch classify(i) {
		case ClassFree:
			bt.SetState(i, StateFree)
			bt.pushList(&bt.freeHead, i)
			free++
		case ClassPartial:
			bt.SetState(i, StateRecycled)
			bt.pushList(&bt.recyHead, i)
			recy++
			inUse++
		default:
			bt.SetState(i, StateFull)
			inUse++
		}
	}
	bt.freeCount.Store(int32(free))
	bt.recyCount.Store(int32(recy))
	bt.inUse.Store(int32(inUse))
	bt.TakeDirty() // world is stopped: discard exactly the queued set
}

// AllBlocks invokes f for every main-space block index.
func (bt *BlockTable) AllBlocks(f func(idx int)) {
	for i := 1; i <= bt.mainBlocks; i++ {
		f(i)
	}
}

// String summarises occupancy for debugging.
func (bt *BlockTable) String() string {
	return fmt.Sprintf("blocks{free=%d recycled=%d inUse=%d los=%d budget=%d}",
		bt.FreeBlocks(), bt.RecycledBlocks(), bt.InUseBlocks(), bt.los.BlocksInUse(), bt.budgetBlocks)
}
