package immix

import (
	"lxr/internal/mem"
)

// ScanSpans walks the free-line spans of the block whose first global
// line is firstLine, applying the allocator's conservative recycling
// rule (skip the first free line after a used line), and returns the
// number of spans and bumpable free lines a recycled-block allocator
// would obtain. It snapshots the block's free-line bitmap once and
// walks it with the same word-at-a-time nextSpan the allocator uses —
// it is the entry point of the line-scan microbenchmark
// (internal/fastbench) and the property test against the per-line
// reference scan.
func ScanSpans(lines LineMap, firstLine int) (spans, freeLines int) {
	var bm [mem.LinesPerBlock / 32]uint32
	LoadLineBits(lines, firstLine, &bm)
	scan := 0
	for {
		start, end, ok := nextSpan(&bm, scan)
		if !ok {
			return spans, freeLines
		}
		spans++
		freeLines += end - start
		scan = end
	}
}
