package immix

import (
	"sync"
	"sync/atomic"

	"lxr/internal/mem"
)

// LargeSpace manages objects larger than half a block (16 KB) in a
// dedicated block range at the top of the arena, per §3.1 ("objects
// larger than half a block in size are delegated to a large object
// allocator"). Allocation is first-fit over free runs under a mutex;
// the hot path of the system is the bump allocator, so contention here
// is negligible, as it is in MMTk's LOS.
type LargeSpace struct {
	bt    *BlockTable
	first int // first LOS block index
	last  int // last LOS block index

	// OnAlloc, when set, is invoked with the address range of every
	// fresh allocation so plans can reset side metadata (field-log
	// states, mark bits) left behind by a previous occupant.
	OnAlloc func(start, end mem.Address)

	mu      sync.Mutex
	runs    []run               // free runs, kept sorted by start
	objects map[mem.Address]int // object start -> blocks occupied

	// inUse counts blocks occupied by live large objects. Written only
	// under mu, but read lock-free: occupancy feeds pacing triggers
	// evaluated on GC safepoint paths and on the conctrl controller
	// goroutine (with the controller lock held), which must stay
	// non-blocking.
	inUse atomic.Int32
}

type run struct{ start, n int }

func newLargeSpace(bt *BlockTable, first, last int) *LargeSpace {
	ls := &LargeSpace{bt: bt, first: first, last: last, objects: make(map[mem.Address]int)}
	if last >= first {
		ls.runs = []run{{first, last - first + 1}}
	}
	return ls
}

// BlocksInUse returns the number of LOS blocks holding live objects.
// Lock-free: safe from trigger-check paths that must not block.
func (ls *LargeSpace) BlocksInUse() int {
	return int(ls.inUse.Load())
}

// Alloc reserves enough contiguous blocks for size bytes and returns the
// address of the first byte. It fails when either the LOS range or the
// heap budget is exhausted.
func (ls *LargeSpace) Alloc(size int) (mem.Address, bool) {
	blocks := (size + mem.BlockSize - 1) / mem.BlockSize
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if ls.bt.budgetBlocks-int(ls.bt.inUse.Load())-int(ls.inUse.Load()) < blocks {
		return mem.Nil, false
	}
	for i, r := range ls.runs {
		if r.n >= blocks {
			start := r.start
			if r.n == blocks {
				ls.runs = append(ls.runs[:i], ls.runs[i+1:]...)
			} else {
				ls.runs[i] = run{r.start + blocks, r.n - blocks}
			}
			ls.inUse.Add(int32(blocks))
			addr := mem.BlockStart(start)
			ls.objects[addr] = blocks
			ls.bt.SetState(start, StateLargeHead)
			for b := start + 1; b < start+blocks; b++ {
				ls.bt.SetState(b, StateLargeBody)
			}
			ls.bt.Arena.Zero(addr, blocks*mem.BlockSize)
			if ls.OnAlloc != nil {
				ls.OnAlloc(addr, addr+mem.Address(blocks*mem.BlockSize))
			}
			return addr, true
		}
	}
	return mem.Nil, false
}

// Free releases the blocks of the large object starting at addr.
func (ls *LargeSpace) Free(addr mem.Address) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	blocks, ok := ls.objects[addr]
	if !ok {
		return
	}
	delete(ls.objects, addr)
	start := addr.Block()
	for b := start; b < start+blocks; b++ {
		ls.bt.SetState(b, StateFree)
	}
	ls.inUse.Add(-int32(blocks))
	ls.insertRun(run{start, blocks})
}

// Contains reports whether addr lies in the LOS block range.
func (ls *LargeSpace) Contains(addr mem.Address) bool {
	b := addr.Block()
	return b >= ls.first && b <= ls.last
}

// Each invokes f for the start address of every live large object.
// The snapshot is taken under the lock; f runs outside it.
func (ls *LargeSpace) Each(f func(addr mem.Address)) {
	ls.mu.Lock()
	addrs := make([]mem.Address, 0, len(ls.objects))
	for a := range ls.objects {
		addrs = append(addrs, a)
	}
	ls.mu.Unlock()
	for _, a := range addrs {
		f(a)
	}
}

// Count returns the number of live large objects.
func (ls *LargeSpace) Count() int {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return len(ls.objects)
}

// insertRun adds a free run, coalescing with neighbours.
func (ls *LargeSpace) insertRun(r run) {
	// Find insertion point (runs sorted by start).
	i := 0
	for i < len(ls.runs) && ls.runs[i].start < r.start {
		i++
	}
	ls.runs = append(ls.runs, run{})
	copy(ls.runs[i+1:], ls.runs[i:])
	ls.runs[i] = r
	// Coalesce with next.
	if i+1 < len(ls.runs) && ls.runs[i].start+ls.runs[i].n == ls.runs[i+1].start {
		ls.runs[i].n += ls.runs[i+1].n
		ls.runs = append(ls.runs[:i+1], ls.runs[i+2:]...)
	}
	// Coalesce with previous.
	if i > 0 && ls.runs[i-1].start+ls.runs[i-1].n == ls.runs[i].start {
		ls.runs[i-1].n += ls.runs[i].n
		ls.runs = append(ls.runs[:i], ls.runs[i+1:]...)
	}
}
