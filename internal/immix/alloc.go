package immix

import (
	"math/bits"

	"lxr/internal/mem"
)

// LineMap answers whether a line is available for reuse. LXR backs this
// with the reference-count table (a line is free when its sixteen 2-bit
// counts are all zero, one uint32 load); tracing Immix backs it with
// line mark bits.
type LineMap interface {
	LineFree(globalLine int) bool
}

// LineBitsSource is an optional LineMap extension that fills a whole
// block's free-line bitmap (bit set = line free) in one call, letting
// the allocator scan for spans word-at-a-time instead of one interface
// call per line.
type LineBitsSource interface {
	FreeLineBits(firstLine int, bm *[mem.LinesPerBlock / 32]uint32)
}

// LoadLineBits snapshots the free-line bitmap of the block whose first
// global line is firstLine, via FreeLineBits when the map supports it
// and a per-line fallback otherwise.
func LoadLineBits(lines LineMap, firstLine int, bm *[mem.LinesPerBlock / 32]uint32) {
	if src, ok := lines.(LineBitsSource); ok {
		src.FreeLineBits(firstLine, bm)
		return
	}
	for i := range bm {
		var w uint32
		for b := 0; b < 32; b++ {
			if lines.LineFree(firstLine + i*32 + b) {
				w |= 1 << uint(b)
			}
		}
		bm[i] = w
	}
}

// Allocator is a thread-local Immix bump-pointer allocator. It allocates
// into a reserved block, recycles free line spans in partially free
// blocks (skipping the conservatively-unavailable first free line after
// a used line, §3.1), sends medium objects that do not fit the current
// span to a dynamic-overflow block, and zeroes memory immediately before
// handing it out.
type Allocator struct {
	BT    *BlockTable
	Lines LineMap // nil disables line recycling (strictly-copying plans)

	// UseRecycled makes the allocator prefer partially free blocks, the
	// Immix/LXR policy that maximises clean blocks for large allocation.
	UseRecycled bool
	// Kind tags acquired blocks (G1 region kind, semispace half, ...).
	Kind uint8
	// NoBudget lets the allocator exceed the heap budget (the physical
	// arena still bounds it); evacuation copy reserves use it so a
	// collection never fails while free blocks physically exist.
	NoBudget bool
	// OnSpan, when set, is invoked for every address span handed to the
	// bump pointer. LXR uses it to bump per-line reuse counters.
	OnSpan func(start, end mem.Address, recycled bool)

	cursor mem.Address
	limit  mem.Address
	block  int
	scan   int // next line in block to consider for recycling
	// lineBits caches the free-line bitmap of the current recycled
	// block, snapshotted at acquisition. The allocator holds the block
	// Reserved while it bumps through it, and lines only transition
	// used->free concurrently, so a stale snapshot can only under-report
	// free lines — conservative, never unsafe.
	lineBits [mem.LinesPerBlock / 32]uint32

	oCursor mem.Address // overflow block for medium objects
	oLimit  mem.Address
	oBlock  int

	// spare is one pre-acquired clean block (0 = none): a per-mutator
	// block cache refilled from the §3.5 clean buffer, so the steady
	// state touches the global buffer once per two blocks instead of
	// once per block. Spares are plain Reserved blocks — no kind, no
	// dirty note, no zeroing until handed out — and Flush returns them,
	// so block accounting is exact at every pause.
	spare int

	// Statistics.
	Allocated      int64 // bytes allocated through this allocator
	SinceEpoch     int64 // bytes since last harvest (trigger accounting)
	BlocksClean    int64
	BlocksRecycled int64
}

// Alloc reserves size bytes (16-byte aligned, caller guarantees) and
// returns the zeroed start address. ok=false means the heap budget is
// exhausted and a collection is required.
func (al *Allocator) Alloc(size int) (mem.Address, bool) {
	if a := al.cursor; a+mem.Address(size) <= al.limit {
		al.cursor += mem.Address(size)
		al.Allocated += int64(size)
		al.SinceEpoch += int64(size)
		return a, true
	}
	return al.allocSlow(size)
}

func (al *Allocator) allocSlow(size int) (mem.Address, bool) {
	// Dynamic overflow: medium objects that do not fit the remaining
	// span go to the overflow block so the span's lines are not wasted.
	if size > mem.LineSize && al.limit-al.cursor > 0 {
		if a, ok := al.allocOverflow(size); ok {
			return a, true
		}
		return mem.Nil, false
	}
	for {
		if al.nextSpanInBlock() {
			if a := al.cursor; a+mem.Address(size) <= al.limit {
				al.cursor += mem.Address(size)
				al.Allocated += int64(size)
				al.SinceEpoch += int64(size)
				return a, true
			}
			continue // span too small for this object; try the next
		}
		if !al.acquireBlock() {
			return mem.Nil, false
		}
		if a := al.cursor; a+mem.Address(size) <= al.limit {
			al.cursor += mem.Address(size)
			al.Allocated += int64(size)
			al.SinceEpoch += int64(size)
			return a, true
		}
	}
}

func (al *Allocator) allocOverflow(size int) (mem.Address, bool) {
	if a := al.oCursor; a+mem.Address(size) <= al.oLimit {
		al.oCursor += mem.Address(size)
		al.Allocated += int64(size)
		al.SinceEpoch += int64(size)
		return a, true
	}
	idx, ok := al.acquireClean()
	if !ok {
		return mem.Nil, false
	}
	al.retireOverflow()
	al.prepareClean(idx)
	al.BT.SetFlag(idx, FlagYoung) // clean overflow blocks hold only young objects
	al.oBlock = idx
	al.oCursor = mem.BlockStart(idx)
	al.oLimit = al.oCursor + mem.BlockSize
	// Zero and clear metadata exactly like a bump span: stale contents
	// here would masquerade as live references. The block is freshly
	// acquired clean, hence still allocator-private: bulk memclr.
	al.BT.Arena.ZeroPrivate(al.oCursor, al.oLimit)
	if al.OnSpan != nil {
		al.OnSpan(al.oCursor, al.oLimit, false)
	}
	a := al.oCursor
	al.oCursor += mem.Address(size)
	al.Allocated += int64(size)
	al.SinceEpoch += int64(size)
	return a, true
}

// nextSpanInBlock advances the bump span to the next run of free lines
// in the current (recycled) block, scanning the cached free-line bitmap
// word-at-a-time. Following Immix, the first free line after a used
// line is treated as unavailable so that objects straddling into it are
// never clobbered.
func (al *Allocator) nextSpanInBlock() bool {
	if al.block == 0 || al.Lines == nil {
		return false
	}
	start, end, ok := nextSpan(&al.lineBits, al.scan)
	if !ok {
		al.scan = mem.LinesPerBlock
		return false
	}
	al.scan = end
	base := al.block * mem.LinesPerBlock
	al.setSpan(mem.LineStart(base+start), mem.LineStart(base+end), true)
	return true
}

// lineBitSet reports whether line l of the bitmap is free.
func lineBitSet(bm *[mem.LinesPerBlock / 32]uint32, l int) bool {
	return bm[l>>5]&(1<<uint(l&31)) != 0
}

// nextFreeLine returns the index of the first free line >= l, or
// LinesPerBlock. Each iteration consumes the remainder of a 32-line
// word with one TrailingZeros32 instead of up to 32 interface calls.
func nextFreeLine(bm *[mem.LinesPerBlock / 32]uint32, l int) int {
	for l < mem.LinesPerBlock {
		if w := bm[l>>5] >> uint(l&31); w != 0 {
			return l + bits.TrailingZeros32(w)
		}
		l = (l &^ 31) + 32
	}
	return mem.LinesPerBlock
}

// nextUsedLine returns the index of the first used line >= l, or
// LinesPerBlock, by scanning the inverted bitmap the same way.
func nextUsedLine(bm *[mem.LinesPerBlock / 32]uint32, l int) int {
	for l < mem.LinesPerBlock {
		if w := (^bm[l>>5]) >> uint(l&31); w != 0 {
			n := l + bits.TrailingZeros32(w)
			if n > mem.LinesPerBlock {
				n = mem.LinesPerBlock
			}
			return n
		}
		l = (l &^ 31) + 32
	}
	return mem.LinesPerBlock
}

// nextSpan finds the next bumpable span of free lines at or after scan
// in a block's free-line bitmap, applying the conservative straddle
// rule. It is the pure core of nextSpanInBlock, shared with ScanSpans
// and property-tested against the per-line reference scan.
func nextSpan(bm *[mem.LinesPerBlock / 32]uint32, scan int) (start, end int, ok bool) {
	l := scan
	for l < mem.LinesPerBlock {
		l = nextFreeLine(bm, l)
		if l >= mem.LinesPerBlock {
			break
		}
		if l > 0 {
			// Conservative straddle rule: skip the first free line
			// following a used line (or a previously returned span).
			l++
			if l >= mem.LinesPerBlock || !lineBitSet(bm, l) {
				continue
			}
		}
		start = l
		l = nextUsedLine(bm, l)
		return start, l, true
	}
	return 0, 0, false
}

func (al *Allocator) acquireBlock() bool {
	al.retireCurrent()
	if al.UseRecycled {
		// Iterative on purpose: the recycled list can hold a long run of
		// blocks whose only free lines are consumed by the conservative
		// straddle rule, and the allocation slow path must not deepen
		// the stack once per such block.
		for {
			idx, ok := al.BT.AcquireRecycled()
			if !ok {
				break
			}
			al.BT.SetKind(idx, al.Kind)
			al.BT.NoteDirty(idx)
			al.BlocksRecycled++
			al.block = idx
			al.scan = 0
			if al.Lines != nil {
				LoadLineBits(al.Lines, idx*mem.LinesPerBlock, &al.lineBits)
			}
			if al.nextSpanInBlock() {
				return true
			}
			// No bumpable span survived the conservative rule; retire
			// the block and take the next recycled one.
			al.retireCurrent()
		}
	}
	idx, ok := al.acquireClean()
	if !ok {
		return false
	}
	al.prepareClean(idx)
	al.BT.SetFlag(idx, FlagYoung)
	al.block = idx
	al.scan = mem.LinesPerBlock // clean block: single whole-block span
	al.setSpan(mem.BlockStart(idx), mem.BlockStart(idx)+mem.BlockSize, false)
	return true
}

// spareHeadroomBlocks gates spare prefetching: near budget exhaustion,
// privately cached blocks would only hasten allocation failure and
// distort the occupancy the collector triggers on, so spares are taken
// only while the budget has comfortable slack.
const spareHeadroomBlocks = 64

func (al *Allocator) acquireClean() (int, bool) {
	if idx := al.spare; idx != 0 {
		al.spare = 0
		return idx, true
	}
	idx, ok := al.btAcquireClean()
	if !ok {
		return 0, false
	}
	if !al.NoBudget && al.BT.BudgetRemaining() > spareHeadroomBlocks {
		if s, ok := al.btAcquireClean(); ok {
			al.spare = s
		}
	}
	return idx, true
}

func (al *Allocator) btAcquireClean() (int, bool) {
	if al.NoBudget {
		return al.BT.AcquireCleanNoBudget()
	}
	return al.BT.AcquireClean()
}

func (al *Allocator) prepareClean(idx int) {
	al.BT.SetKind(idx, al.Kind)
	al.BT.NoteDirty(idx)
	al.BlocksClean++
}

func (al *Allocator) setSpan(start, end mem.Address, recycled bool) {
	al.cursor = start
	al.limit = end
	// Zero immediately before allocating into the span (§3.1). A clean
	// block is allocator-private until its first object is published, so
	// it takes the bulk memclr path; recycled line spans sit inside
	// published blocks and must keep the word-atomic path (stale-ref
	// forwarding probes can land inside them — see Arena.Zero).
	if recycled {
		al.BT.Arena.ZeroRange(start, end)
	} else {
		al.BT.Arena.ZeroPrivate(start, end)
	}
	if al.OnSpan != nil {
		al.OnSpan(start, end, recycled)
	}
}

func (al *Allocator) retireCurrent() {
	if al.block != 0 {
		al.BT.Retire(al.block)
		al.block = 0
	}
	al.cursor, al.limit = 0, 0
}

func (al *Allocator) retireOverflow() {
	if al.oBlock != 0 {
		al.BT.Retire(al.oBlock)
		al.oBlock = 0
	}
	al.oCursor, al.oLimit = 0, 0
}

// Flush retires the allocator's blocks and returns any cached spare to
// the clean pool. Plans call it at collection pauses, because the lines
// backing the bump span may be reclaimed or the block's flags
// rewritten — and because sweeps must see exact block accounting, with
// no clean blocks parked in private caches.
func (al *Allocator) Flush() {
	al.retireCurrent()
	al.retireOverflow()
	if al.spare != 0 {
		al.BT.ReleaseFree(al.spare)
		al.spare = 0
	}
	al.scan = 0
}

// HarvestSinceEpoch returns and clears the bytes-allocated-since-last-
// harvest counter used by collection triggers.
func (al *Allocator) HarvestSinceEpoch() int64 {
	v := al.SinceEpoch
	al.SinceEpoch = 0
	return v
}
