package policy_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lxr/internal/policy"
)

// TestStressPacerConcurrency interleaves everything that touches a
// pacer in a real run — safepoint-path decisions from many mutators,
// controller-goroutine cycle checks, pause-coordinator observations,
// window exports, and trace snapshots — under -race. The decision paths
// must be non-blocking and the archive internally consistent.
func TestStressPacerConcurrency(t *testing.T) {
	pacers := []policy.Pacer{
		policy.NewRCPacer(policy.RCPacerConfig{
			Mode: policy.Adaptive, HeapBytes: 1 << 28,
			SurvivalThresholdBytes: 1 << 20, HeapBlocks: 1000,
			CleanBlockThreshold: 16, WastageFraction: 0.05,
		}),
		policy.NewG1Pacer(policy.G1PacerConfig{
			Mode: policy.Adaptive, BudgetBlocks: 1000, YoungTargetBlocks: 100,
		}),
		policy.NewFreeFractionPacer(policy.FreeFractionPacerConfig{
			Mode: policy.Adaptive, BudgetBlocks: 1000,
		}),
		policy.NewHeapFullPacer("SemiSpace", policy.Adaptive, 500),
	}
	const dur = 100 * time.Millisecond
	for _, p := range pacers {
		p := p
		var stop atomic.Bool
		var wg sync.WaitGroup
		run := func(f func(i int)) {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; !stop.Load(); i++ {
					f(i)
				}
			}()
		}
		// Mutator safepoint paths.
		for m := 0; m < 4; m++ {
			run(func(i int) {
				p.ShouldCollect(policy.Signals{
					AllocBytes: int64(i % (1 << 24)), YoungBlocks: i % 200,
					HeapBlocks: i % 1000, BudgetRemaining: 1000 - i%1000,
				})
			})
		}
		// Controller-goroutine cycle trigger.
		run(func(i int) {
			p.ShouldStartCycle(policy.Signals{
				HeapBlocks: i % 1200, BudgetBlocks: 1000, CleanYielded: i % 64,
			})
		})
		// Pause coordinator: epoch feedback and cycle boundaries.
		run(func(i int) {
			p.ObserveEpoch(policy.EpochStats{
				AllocBytes: 1 << 20, SurvivedBytes: int64(i%10) << 16,
				AbsorbedDecPause: i%3 == 0, DecBacklog: int64(i % 4096),
				MutBusy: time.Duration(i) * time.Microsecond,
				GCWork:  time.Duration(i/2) * time.Microsecond,
			})
			p.ObserveCycleStart(policy.Signals{HeapBlocks: i % 800, BudgetBlocks: 1000})
			p.ObserveCycleEnd(policy.Signals{HeapBlocks: (i + 100) % 1100, BudgetBlocks: 1000})
		})
		// Governor window export (optional extension; only the pacers
		// that consume windows implement it).
		if wo, ok := p.(policy.WindowObserver); ok {
			run(func(i int) {
				wo.ObserveWindow(float64(i%100)/100, float64((i*7)%100)/100)
			})
		}
		// Trace snapshots while everything churns.
		run(func(int) {
			tr := p.Trace()
			var repeats int64
			for _, d := range tr.Decisions {
				repeats += d.Repeats
			}
			if archived := int64(len(tr.Decisions)) + repeats + tr.Dropped; archived > tr.Fired {
				// More archived than fired can never happen; fewer can
				// (fires land between the counter read and the archive).
				stop.Store(true)
				t.Errorf("%s: archived %d > fired %d", tr.Collector, archived, tr.Fired)
			}
			time.Sleep(time.Millisecond)
		})
		time.Sleep(dur)
		stop.Store(true)
		wg.Wait()
	}
}
