package policy

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// RCPacerConfig parameterises LXR's pacer. Zero values select the
// paper's defaults where one exists.
type RCPacerConfig struct {
	Mode Mode
	// Collector names the trace (default "LXR"; the ablation plans pass
	// their variant names).
	Collector string
	// HeapBytes bounds the epoch allocation budget (never more than
	// half the heap between pauses).
	HeapBytes int
	// SurvivalThresholdBytes bounds predicted survivor volume per epoch
	// (§3.2.1; the paper's default is 128 MB on multi-GB heaps, the
	// harness scales it with heap size).
	SurvivalThresholdBytes int64
	// IncrementThreshold bounds logged fields per epoch; 0 disables
	// (the paper's default).
	IncrementThreshold int64
	// HeapBlocks is the heap budget in blocks (the SATB wastage
	// denominator).
	HeapBlocks int
	// CleanBlockThreshold is the minimum clean blocks an RC epoch must
	// yield to avoid triggering an SATB trace (§3.2.2).
	CleanBlockThreshold int
	// WastageFraction is the predicted-wastage trigger (default 5%).
	WastageFraction float64
	// Cores denominates the adaptive load fraction (default: the host's
	// real parallelism, for the same reason the conctrl governor uses
	// it — see conctrl.GovernorConfig.Cores).
	Cores int
}

// Adaptive epoch-length bounds: the load/backlog scaling never moves
// the allocation budget further than this from the survival-predicted
// base, so a bad estimate degrades pacing, never correctness.
const (
	rcStretchMax = 2.0  // fully idle machine: epochs up to 2× longer
	rcShrinkMin  = 0.25 // saturated + backlogged: epochs down to 1/4
	// rcBacklogWeight scales the backlog-absorption divisor so a fully
	// absorbed backlog (absorb prediction → 1) actually reaches the
	// rcShrinkMin floor: f = 1/(1 + weight·absorb) = 1/4 at absorb 1.
	rcBacklogWeight = 3.0
	// rcIdleLoad is the total-CPU-load fraction under which the machine
	// is considered idle enough to stretch epochs (mirrors the
	// governor's GrowBelow default).
	rcIdleLoad = 0.70
)

// RCPacer is LXR's pacer (§3.2.1, §3.2.2): the survival-rate RC pause
// trigger — folded into a single allocation-budget comparison so the
// safepoint fast path is one atomic load — and the SATB cycle votes
// (clean-block shortfall, predicted heap wastage).
//
// In Adaptive mode the allocation budget additionally scales with load:
// when the estimator sees idle cores, epochs stretch (fewer pauses for
// the same survivor risk); when the lazy-decrement backlog starts
// getting absorbed by pauses — the backlog is lengthening the very
// pauses RC epochs exist to keep short — epochs shorten so each
// concurrent drain is smaller.
type RCPacer struct {
	recorder
	cfg RCPacerConfig

	survival   *DecayPredictor // young survival rate in [0,1], bias high
	liveBlocks *DecayPredictor // post-SATB live blocks, bias low
	absorb     *DecayPredictor // pause-absorbed-decrements rate in [0,1], bias high

	allocLimit atomic.Int64
	// sinkLoad holds windows exported by the conctrl controller;
	// epochLoad holds the pacer's own per-epoch differencing fallback.
	// Whichever sampled most recently wins: the sink is finer-grained
	// while the concurrent driver runs, but it goes silent when the
	// driver parks idle, and a stale idle-time sample must not keep
	// scaling epochs after the workload turns saturated.
	sinkLoad  loadCell
	epochLoad loadCell

	// Epoch differencing state for the self-sampled load estimate
	// (coordinator only, but Trace may race a read: guarded).
	epochMu  sync.Mutex
	lastAt   time.Time
	lastBusy time.Duration
	lastGC   time.Duration
}

// NewRCPacer creates LXR's pacer.
func NewRCPacer(cfg RCPacerConfig) *RCPacer {
	if cfg.WastageFraction == 0 {
		cfg.WastageFraction = 0.05
	}
	if cfg.Cores <= 0 {
		cfg.Cores = runtime.NumCPU()
	}
	if cfg.Collector == "" {
		cfg.Collector = "LXR"
	}
	p := &RCPacer{
		cfg:        cfg,
		survival:   NewDecayPredictor(0.15, true),
		liveBlocks: NewDecayPredictor(0, false),
		absorb:     NewDecayPredictor(0, true),
	}
	p.init(cfg.Collector, cfg.Mode)
	p.lastAt = p.start
	p.recompute()
	return p
}

// AllocLimit returns the current epoch allocation budget in bytes (the
// value ShouldCollect compares AllocBytes against) — exposed for tests
// and telemetry.
func (p *RCPacer) AllocLimit() int64 { return p.allocLimit.Load() }

// ShouldCollect implements Pacer: an RC pause is due when the epoch's
// allocation volume reaches the survival-predicted budget, or when the
// logged-field count reaches the increment threshold (when configured).
func (p *RCPacer) ShouldCollect(s Signals) bool {
	if p.cfg.IncrementThreshold > 0 && s.LoggedFields >= p.cfg.IncrementThreshold {
		p.fire("rc-increments", float64(s.LoggedFields), float64(p.cfg.IncrementThreshold), s)
		return true
	}
	limit := p.allocLimit.Load()
	if s.AllocBytes >= limit {
		p.fire("rc-survival", float64(s.AllocBytes), float64(limit), s)
		return true
	}
	return false
}

// ShouldStartCycle implements Pacer: the pause that just swept should
// seed an SATB trace when the epoch yielded too few clean blocks, or
// when predicted wastage (occupancy minus predicted post-trace live
// blocks) exceeds the wastage fraction of the heap (§3.2.2).
func (p *RCPacer) ShouldStartCycle(s Signals) bool {
	if s.CleanYielded < p.cfg.CleanBlockThreshold {
		p.fire("satb-clean", float64(s.CleanYielded), float64(p.cfg.CleanBlockThreshold), s)
		return true
	}
	wastage := float64(s.HeapBlocks) - p.liveBlocks.Predict()
	if wastage < 0 {
		wastage = 0
	}
	if thr := p.cfg.WastageFraction * float64(p.cfg.HeapBlocks); wastage >= thr {
		p.fire("satb-wastage", wastage, thr, s)
		return true
	}
	return false
}

// ObserveCycleStart implements Pacer.
func (p *RCPacer) ObserveCycleStart(Signals) {}

// ObserveCycleEnd implements Pacer: feeds the post-trace live-block
// predictor behind the wastage vote.
func (p *RCPacer) ObserveCycleEnd(s Signals) {
	p.liveBlocks.Observe(float64(s.HeapBlocks))
}

// ObserveWindow implements WindowObserver: the conctrl controller's
// utilization window export. Only the load fraction participates in
// epoch scaling.
func (p *RCPacer) ObserveWindow(util, load float64) {
	if p.cfg.Mode != Adaptive {
		return
	}
	p.sinkLoad.store(load)
}

// loadEstimate returns the most recently sampled CPU-load estimate.
func (p *RCPacer) loadEstimate() (float64, bool) {
	sv, sat, sok := p.sinkLoad.load()
	ev, eat, eok := p.epochLoad.load()
	switch {
	case sok && (!eok || sat >= eat):
		return sv, true
	case eok:
		return ev, true
	}
	return 0, false
}

// ObserveEpoch implements Pacer: survival feedback, backlog-absorption
// feedback, a self-sampled load window from the cumulative runtime
// signals, and the allocation-budget recomputation.
func (p *RCPacer) ObserveEpoch(e EpochStats) {
	if e.AllocBytes > 0 {
		r := float64(e.SurvivedBytes) / float64(e.AllocBytes)
		if r > 1 {
			r = 1
		}
		p.survival.Observe(r)
	}
	if p.cfg.Mode == Adaptive {
		if e.AbsorbedDecPause {
			p.absorb.Observe(1)
		} else {
			p.absorb.Observe(0)
		}
		p.observeEpochLoad(e)
	}
	p.recompute()
}

// observeEpochLoad differences the cumulative busy/work signals since
// the previous epoch into a load sample, so adaptive pacing works even
// when no conctrl window export is wired (the concurrent driver may be
// idle for long stretches).
func (p *RCPacer) observeEpochLoad(e EpochStats) {
	now := time.Now()
	p.epochMu.Lock()
	wall := now.Sub(p.lastAt)
	if wall < time.Millisecond {
		// Too short a window to be a meaningful load sample; let it
		// accumulate into the next epoch.
		p.epochMu.Unlock()
		return
	}
	dBusy := e.MutBusy - p.lastBusy
	dGC := e.GCWork - p.lastGC
	p.lastAt, p.lastBusy, p.lastGC = now, e.MutBusy, e.GCWork
	p.epochMu.Unlock()
	if dBusy < 0 {
		dBusy = 0
	}
	if dGC < 0 {
		dGC = 0
	}
	load := float64(dBusy+dGC) / (float64(wall) * float64(p.cfg.Cores))
	p.epochLoad.store(load)
}

// recompute derives the allocation budget from the survival prediction
// — the predictor turns "bound expected survivors" into an allocation
// volume checked with one atomic load — then applies the adaptive
// load/backlog scaling.
func (p *RCPacer) recompute() {
	s := p.survival.Predict()
	if s < 0.005 {
		s = 0.005
	}
	base := float64(p.cfg.SurvivalThresholdBytes) / s
	limit := base
	if p.cfg.Mode == Adaptive {
		f := 1.0
		if load, ok := p.loadEstimate(); ok && load < rcIdleLoad {
			// Idle cores: stretch toward 2× as load approaches zero.
			f *= 1 + (rcIdleLoad-load)/rcIdleLoad
		}
		// Backlog pressure: pauses absorbing decrement catch-up mean
		// epochs are outrunning the concurrent drain; shorten them.
		f /= 1 + rcBacklogWeight*p.absorb.Predict()
		if f > rcStretchMax {
			f = rcStretchMax
		}
		if f < rcShrinkMin {
			f = rcShrinkMin
		}
		limit = base * f
	}
	// Never let the trigger exceed half the heap between pauses.
	if max := float64(p.cfg.HeapBytes) / 2; limit > max {
		limit = max
	}
	old := p.allocLimit.Swap(int64(limit))
	if old == 0 {
		p.setThreshold("rc-survival", limit)
		return
	}
	// Archive material moves only (>5%), so per-pause recomputation
	// noise does not flood the record.
	if diff := limit - float64(old); diff > float64(old)*0.05 || diff < -float64(old)*0.05 {
		cause := "survival"
		if p.cfg.Mode == Adaptive {
			cause = "survival+load"
		}
		p.adjust("rc-survival", float64(old), limit, cause)
	} else {
		p.setThreshold("rc-survival", limit)
	}
}
