package policy_test

import (
	"testing"
	"time"

	"lxr/internal/policy"
)

// --- decay predictor (absorbed from the old internal/trigger) ---------------

func TestDecayPredictorBiasHigh(t *testing.T) {
	p := policy.NewDecayPredictor(0.1, true)
	p.Observe(0.5) // above prediction: react fast (3/4 weight)
	if got := p.Predict(); got < 0.39 || got > 0.41 {
		t.Fatalf("fast-direction update got %v", got)
	}
	p.Observe(0.0) // below: forget slowly (1/4 weight)
	if got := p.Predict(); got < 0.29 || got > 0.31 {
		t.Fatalf("slow-direction update got %v", got)
	}
}

func TestDecayPredictorBiasLow(t *testing.T) {
	p := policy.NewDecayPredictor(1.0, false)
	p.Observe(0.0) // below prediction is the conservative direction
	if got := p.Predict(); got > 0.26 {
		t.Fatalf("low-bias should react fast downward, got %v", got)
	}
}

// --- LXR: RCPacer -----------------------------------------------------------

// staticLimit is the historical allocation budget: survival threshold
// over the (floored) survival prediction, capped at half the heap —
// exactly what core.recomputeAllocLimit used to compute.
func staticLimit(thresholdBytes int64, pred float64, heapBytes int) int64 {
	if pred < 0.005 {
		pred = 0.005
	}
	limit := int64(float64(thresholdBytes) / pred)
	if max := int64(heapBytes) / 2; limit > max {
		limit = max
	}
	return limit
}

func newRC(mode policy.Mode) *policy.RCPacer {
	return policy.NewRCPacer(policy.RCPacerConfig{
		Mode:                   mode,
		HeapBytes:              1 << 30, // roomy: the cap stays out of the way
		SurvivalThresholdBytes: 1 << 20,
		HeapBlocks:             1000,
		CleanBlockThreshold:    16,
		WastageFraction:        0.05,
	})
}

// TestRCPacerStaticReplay replays a synthetic allocation/survival trace
// and checks the trigger sequence matches the historical RC trigger
// step by step.
func TestRCPacerStaticReplay(t *testing.T) {
	p := newRC(policy.Static)
	pred := 0.15 // the historical predictor's initial value
	trace := []struct {
		alloc, survived int64
	}{
		{8 << 20, 8 << 20},  // survival 1.0: epochs must shorten
		{4 << 20, 1 << 20},  // survival 0.25
		{16 << 20, 0},       // survival 0: epochs stretch (slowly, bias high)
		{16 << 20, 1 << 18}, // light survival
	}
	for i, e := range trace {
		want := staticLimit(1<<20, pred, 1<<30)
		if got := p.AllocLimit(); got != want {
			t.Fatalf("epoch %d: limit %d, historical %d", i, got, want)
		}
		// The limit IS the due boundary.
		if p.ShouldCollect(policy.Signals{AllocBytes: want - 1}) {
			t.Fatalf("epoch %d: fired below the budget", i)
		}
		if !p.ShouldCollect(policy.Signals{AllocBytes: want}) {
			t.Fatalf("epoch %d: did not fire at the budget", i)
		}
		p.ObserveEpoch(policy.EpochStats{AllocBytes: e.alloc, SurvivedBytes: e.survived})
		// Historical predictor update (1:3/3:1, bias high).
		r := float64(e.survived) / float64(e.alloc)
		if r > pred {
			pred = 0.75*r + 0.25*pred
		} else {
			pred = 0.25*r + 0.75*pred
		}
	}
}

func TestRCPacerIncrementThreshold(t *testing.T) {
	p := policy.NewRCPacer(policy.RCPacerConfig{
		Mode: policy.Static, HeapBytes: 1 << 30,
		SurvivalThresholdBytes: 1 << 30, IncrementThreshold: 100,
	})
	if !p.ShouldCollect(policy.Signals{LoggedFields: 150}) {
		t.Fatal("increment threshold must trigger")
	}
	p2 := policy.NewRCPacer(policy.RCPacerConfig{
		Mode: policy.Static, HeapBytes: 1 << 50,
		SurvivalThresholdBytes: 1 << 20,
	})
	if p2.ShouldCollect(policy.Signals{LoggedFields: 1 << 40}) {
		t.Fatal("disabled increment threshold must not trigger")
	}
}

func TestRCPacerSurvivalClamps(t *testing.T) {
	p := newRC(policy.Static)
	p.ObserveEpoch(policy.EpochStats{AllocBytes: 100, SurvivedBytes: 500}) // >100% clamps to 1
	want := staticLimit(1<<20, 0.75*1+0.25*0.15, 1<<30)
	if got := p.AllocLimit(); got != want {
		t.Fatalf("clamped survival: limit %d, want %d", got, want)
	}
	before := p.AllocLimit()
	p.ObserveEpoch(policy.EpochStats{AllocBytes: 0, SurvivedBytes: 0}) // ignored
	if p.AllocLimit() != before {
		t.Fatal("zero-allocation epoch must not move the prediction")
	}
}

func TestRCPacerHeapCap(t *testing.T) {
	p := policy.NewRCPacer(policy.RCPacerConfig{
		Mode: policy.Static, HeapBytes: 1 << 20, SurvivalThresholdBytes: 1 << 20,
	})
	if got := p.AllocLimit(); got != 1<<19 {
		t.Fatalf("limit %d not capped at half the heap", got)
	}
}

// TestRCPacerAdaptiveStretchesWhenIdle: an idle machine (low load)
// stretches the epoch up to 2x the static budget.
func TestRCPacerAdaptiveStretchesWhenIdle(t *testing.T) {
	p := newRC(policy.Adaptive)
	base := p.AllocLimit() // no load sample yet: static value
	if want := staticLimit(1<<20, 0.15, 1<<30); base != want {
		t.Fatalf("unsampled adaptive limit %d, want static %d", base, want)
	}
	p.ObserveWindow(1.0, 0.0) // fully idle
	p.ObserveEpoch(policy.EpochStats{})
	if got := p.AllocLimit(); !approx(got, 2*base) {
		t.Fatalf("idle limit %d, want 2x base %d", got, 2*base)
	}
	// Saturated: no stretch. The epoch's cumulative busy time agrees
	// with the window sample, so whichever source the pacer deems
	// fresher reads the same regime.
	p.ObserveWindow(1.0, 0.95)
	p.ObserveEpoch(policy.EpochStats{MutBusy: 24 * time.Hour})
	if got := p.AllocLimit(); !approx(got, base) {
		t.Fatalf("saturated limit %d, want base %d", got, base)
	}
}

// approx absorbs the one-ulp truncation difference between scaling the
// float budget and scaling its int64 image.
func approx(got, want int64) bool {
	d := got - want
	return d >= -2 && d <= 2
}

// TestRCPacerAdaptiveShrinksOnBacklog: pauses repeatedly absorbing the
// decrement backlog shorten the epoch.
func TestRCPacerAdaptiveShrinksOnBacklog(t *testing.T) {
	p := newRC(policy.Adaptive)
	p.ObserveWindow(1.0, 0.8) // busy: no idle stretch in the way
	base := staticLimit(1<<20, 0.15, 1<<30)
	// Growing cumulative busy time keeps the pacer's own epoch-window
	// fallback reading "busy" too, whichever source it deems fresher.
	busy := time.Duration(0)
	for i := 0; i < 20; i++ {
		busy += time.Hour
		p.ObserveEpoch(policy.EpochStats{AbsorbedDecPause: true, DecBacklog: 1 << 20, MutBusy: busy})
	}
	got := p.AllocLimit()
	if got >= base*3/4 {
		t.Fatalf("backlogged limit %d did not shrink from %d", got, base)
	}
	if got < base/4 {
		t.Fatalf("limit %d shrank past the 1/4 bound of %d", got, base)
	}
	// Recovery: the backlog drains, epochs stretch back toward base.
	for i := 0; i < 40; i++ {
		busy += time.Hour
		p.ObserveEpoch(policy.EpochStats{AbsorbedDecPause: false, MutBusy: busy})
	}
	if rec := p.AllocLimit(); rec <= got {
		t.Fatalf("limit %d did not recover from %d after the backlog drained", rec, got)
	}
}

func TestRCPacerStaticIgnoresSignals(t *testing.T) {
	p := newRC(policy.Static)
	base := p.AllocLimit()
	p.ObserveWindow(1.0, 0.0)
	for i := 0; i < 10; i++ {
		p.ObserveEpoch(policy.EpochStats{AbsorbedDecPause: true})
	}
	if got := p.AllocLimit(); got != base {
		t.Fatalf("static limit moved %d -> %d on adaptive signals", base, got)
	}
}

// TestRCPacerSATBVotes replays the historical SATB triggers: clean-block
// shortfall and predicted wastage.
func TestRCPacerSATBVotes(t *testing.T) {
	p := newRC(policy.Static)
	if !p.ShouldStartCycle(policy.Signals{CleanYielded: 2, HeapBlocks: 500}) {
		t.Fatal("clean-block shortfall must trigger")
	}
	if p.ShouldStartCycle(policy.Signals{CleanYielded: 100, HeapBlocks: 10}) {
		t.Fatal("plenty of clean blocks, low wastage: no trigger")
	}
	// Wastage: live-block prediction 100, occupancy 400 -> wastage 300
	// >= 5% of 1000.
	p.ObserveCycleEnd(policy.Signals{HeapBlocks: 100})
	if !p.ShouldStartCycle(policy.Signals{CleanYielded: 100, HeapBlocks: 400}) {
		t.Fatal("wastage must trigger")
	}
	if p.ShouldStartCycle(policy.Signals{CleanYielded: 100, HeapBlocks: 5}) {
		t.Fatal("wastage must floor at zero")
	}
}

// --- G1 ---------------------------------------------------------------------

func newG1(mode policy.Mode) *policy.G1Pacer {
	return policy.NewG1Pacer(policy.G1PacerConfig{
		Mode: mode, BudgetBlocks: 1000, YoungTargetBlocks: 100,
	})
}

// TestG1PacerStaticReplay replays the historical young trigger and the
// fixed 45% IHOP.
func TestG1PacerStaticReplay(t *testing.T) {
	p := newG1(policy.Static)
	if p.ShouldCollect(policy.Signals{YoungBlocks: 99, BudgetRemaining: 1 << 20}) {
		t.Fatal("young below target must not trigger")
	}
	if !p.ShouldCollect(policy.Signals{YoungBlocks: 100, BudgetRemaining: 1 << 20}) {
		t.Fatal("young at target must trigger")
	}
	// Copy-reserve guard: yb=8 -> reserve 8+2+8=18.
	if !p.ShouldCollect(policy.Signals{YoungBlocks: 8, BudgetRemaining: 18}) {
		t.Fatal("reserve guard must trigger")
	}
	if p.ShouldCollect(policy.Signals{YoungBlocks: 8, BudgetRemaining: 19}) {
		t.Fatal("reserve guard fired with budget to spare")
	}
	if p.ShouldCollect(policy.Signals{YoungBlocks: 4, BudgetRemaining: 0}) {
		t.Fatal("reserve guard must not fire under the 4-block floor")
	}
	// IHOP at the historical 45% (integer math: 1000*45/100 = 450).
	if p.ShouldStartCycle(policy.Signals{HeapBlocks: 450}) {
		t.Fatal("IHOP fired at the threshold (historical check is strict >)")
	}
	if !p.ShouldStartCycle(policy.Signals{HeapBlocks: 451}) {
		t.Fatal("IHOP must fire above 45%")
	}
	// Static cycles never move the threshold.
	p.ObserveCycleStart(policy.Signals{HeapBlocks: 500})
	p.ObserveCycleEnd(policy.Signals{HeapBlocks: 900})
	if p.ShouldStartCycle(policy.Signals{HeapBlocks: 450}) {
		t.Fatal("static IHOP moved after a cycle")
	}
}

// TestG1PacerAdaptiveIHOP: a mark that consumed headroom pulls the IHOP
// down; the clamps bound it.
func TestG1PacerAdaptiveIHOP(t *testing.T) {
	p := newG1(policy.Adaptive)
	if !p.ShouldStartCycle(policy.Signals{HeapBlocks: 451}) {
		t.Fatal("adaptive IHOP must start at the historical 45%")
	}
	// Cycle grows occupancy by 400 blocks: predictor 0.75*400 = 300,
	// threshold 1000 - 1.5*300 = 550... above 450, clamped to 75% max?
	// 550 < 750, so the threshold RISES to 550 (idle heap drifts later).
	p.ObserveCycleStart(policy.Signals{HeapBlocks: 400})
	p.ObserveCycleEnd(policy.Signals{HeapBlocks: 800})
	if p.ShouldStartCycle(policy.Signals{HeapBlocks: 540}) {
		t.Fatal("threshold did not rise to the headroom-based value")
	}
	if !p.ShouldStartCycle(policy.Signals{HeapBlocks: 551}) {
		t.Fatal("threshold rose past the headroom-based value")
	}
	// Churn-heavy cycles drive growth up; the 30% clamp holds.
	for i := 0; i < 10; i++ {
		p.ObserveCycleStart(policy.Signals{HeapBlocks: 300})
		p.ObserveCycleEnd(policy.Signals{HeapBlocks: 900})
	}
	if p.ShouldStartCycle(policy.Signals{HeapBlocks: 299}) {
		t.Fatal("threshold fell under the 30% clamp")
	}
	if !p.ShouldStartCycle(policy.Signals{HeapBlocks: 301}) {
		t.Fatal("sustained churn must clamp the threshold at 30%")
	}
	tr := p.Trace()
	if len(tr.Adjustments) == 0 {
		t.Fatal("adaptive IHOP moves must be archived as adjustments")
	}
}

// --- Shenandoah / ZGC -------------------------------------------------------

func newFF(mode policy.Mode) *policy.FreeFractionPacer {
	return policy.NewFreeFractionPacer(policy.FreeFractionPacerConfig{
		Mode: mode, Collector: "Shenandoah", BudgetBlocks: 1000,
	})
}

// TestFreeFractionStaticReplay replays the historical 30%-free trigger.
func TestFreeFractionStaticReplay(t *testing.T) {
	p := newFF(policy.Static)
	if p.ShouldStartCycle(policy.Signals{HeapBlocks: 700}) {
		t.Fatal("fired at the threshold (historical check is strict >)")
	}
	if !p.ShouldStartCycle(policy.Signals{HeapBlocks: 701}) {
		t.Fatal("must fire above 70% occupancy")
	}
	p.ObserveCycleStart(policy.Signals{HeapBlocks: 800})
	p.ObserveCycleEnd(policy.Signals{HeapBlocks: 950})
	if p.ShouldStartCycle(policy.Signals{HeapBlocks: 700}) {
		t.Fatal("static threshold moved after a cycle")
	}
}

// TestFreeFractionAdaptiveBacksOffUnderChurn: cycles that finish with
// more memory in use than they started (allocation outran reclamation)
// pull the trigger earlier.
func TestFreeFractionAdaptiveBacksOffUnderChurn(t *testing.T) {
	p := newFF(policy.Adaptive)
	for i := 0; i < 10; i++ {
		p.ObserveCycleStart(policy.Signals{HeapBlocks: 500})
		p.ObserveCycleEnd(policy.Signals{HeapBlocks: 1000})
	}
	// Growth prediction -> 500; 1000 - 1.5*500 = 250, clamped at 50%.
	if !p.ShouldStartCycle(policy.Signals{HeapBlocks: 501}) {
		t.Fatal("churn must back the trigger off the heap-full edge")
	}
	if p.ShouldStartCycle(policy.Signals{HeapBlocks: 499}) {
		t.Fatal("threshold fell under the 50% clamp")
	}
	// Calm cycles (net reclamation) let the trigger drift later again.
	for i := 0; i < 20; i++ {
		p.ObserveCycleStart(policy.Signals{HeapBlocks: 700})
		p.ObserveCycleEnd(policy.Signals{HeapBlocks: 300})
	}
	if p.ShouldStartCycle(policy.Signals{HeapBlocks: 600}) {
		t.Fatal("calm cycles must relax the trigger")
	}
}

// --- SemiSpace / Immix ------------------------------------------------------

func TestHeapFullPacerHalfBudget(t *testing.T) {
	p := policy.NewHeapFullPacer("SemiSpace", policy.Static, 500)
	if p.ShouldCollect(policy.Signals{HeapBlocks: 499}) {
		t.Fatal("below the half budget must not trigger")
	}
	if !p.ShouldCollect(policy.Signals{HeapBlocks: 500}) {
		t.Fatal("at the half budget must trigger")
	}
}

func TestHeapFullPacerAllocFailure(t *testing.T) {
	p := policy.NewHeapFullPacer("Immix", policy.Static, 0)
	if !p.ShouldCollect(policy.Signals{HeapBlocks: 123, BudgetBlocks: 1000}) {
		t.Fatal("allocation failure is always due")
	}
	tr := p.Trace()
	if tr.Fired != 1 || len(tr.Decisions) != 1 || tr.Decisions[0].Kind != "heap-full" {
		t.Fatalf("heap-full fire not archived: %+v", tr)
	}
}

// --- the decision archive ---------------------------------------------------

func TestTraceArchivesDecisionsAndThresholds(t *testing.T) {
	p := newG1(policy.Static)
	p.ShouldCollect(policy.Signals{YoungBlocks: 100, BudgetRemaining: 1 << 20})
	p.ShouldStartCycle(policy.Signals{HeapBlocks: 451})
	tr := p.Trace()
	if tr.Collector != "G1" || tr.Mode != "static" {
		t.Fatalf("identity wrong: %+v", tr)
	}
	if tr.Fired != 2 || len(tr.Decisions) != 2 {
		t.Fatalf("want 2 archived fires, got fired=%d len=%d", tr.Fired, len(tr.Decisions))
	}
	if tr.Decisions[0].Kind != "young-target" || tr.Decisions[0].Signal != 100 {
		t.Fatalf("young decision mis-archived: %+v", tr.Decisions[0])
	}
	if tr.Thresholds["ihop"] != 450 || tr.Thresholds["young-target"] != 100 {
		t.Fatalf("thresholds not published: %v", tr.Thresholds)
	}
}

// TestTraceCollapsesRepeats: a burst of identical fires (mutators
// polling an already-due trigger) collapses into one decision's Repeats.
func TestTraceCollapsesRepeats(t *testing.T) {
	p := newG1(policy.Static)
	for i := 0; i < 100; i++ {
		p.ShouldCollect(policy.Signals{YoungBlocks: 100, BudgetRemaining: 1 << 20})
	}
	tr := p.Trace()
	if tr.Fired != 100 {
		t.Fatalf("fired %d, want 100", tr.Fired)
	}
	if len(tr.Decisions) != 1 {
		t.Fatalf("burst archived %d decisions, want 1", len(tr.Decisions))
	}
	if tr.Decisions[0].Repeats != 99 {
		t.Fatalf("repeats %d, want 99", tr.Decisions[0].Repeats)
	}
}

// TestTraceDropsPastCapWithCount: the archive is bounded but nothing is
// silently lost — dropped decisions are counted.
func TestTraceDropsPastCapWithCount(t *testing.T) {
	p := policy.NewHeapFullPacer("Immix", policy.Static, 0)
	const n = 6000 // past the 4096 archive cap
	for i := 0; i < n; i++ {
		// A distinct threshold per fire defeats repeat-collapsing, so
		// the cap itself is exercised.
		p.ShouldCollect(policy.Signals{HeapBlocks: i, BudgetBlocks: 10000 + i})
	}
	tr := p.Trace()
	if tr.Fired != n {
		t.Fatalf("fired %d, want %d", tr.Fired, n)
	}
	if len(tr.Decisions) != 4096 {
		t.Fatalf("archive holds %d decisions, want the 4096 cap", len(tr.Decisions))
	}
	if int64(len(tr.Decisions))+sumRepeats(tr)+tr.Dropped != n {
		t.Fatalf("decisions(%d) + repeats(%d) + dropped(%d) != %d",
			len(tr.Decisions), sumRepeats(tr), tr.Dropped, n)
	}
}

func sumRepeats(tr *policy.Trace) int64 {
	var s int64
	for _, d := range tr.Decisions {
		s += d.Repeats
	}
	return s
}

// TestModeString pins the archived mode names.
func TestModeString(t *testing.T) {
	if policy.Static.String() != "static" || policy.Adaptive.String() != "adaptive" {
		t.Fatal("mode names are part of the JSON contract")
	}
}

// TestRCPacerEpochLoadFallback: without a window sink, the pacer
// differences the cumulative signals itself.
func TestRCPacerEpochLoadFallback(t *testing.T) {
	p := policy.NewRCPacer(policy.RCPacerConfig{
		Mode: policy.Adaptive, HeapBytes: 1 << 30,
		SurvivalThresholdBytes: 1 << 20, Cores: 4,
	})
	base := staticLimit(1<<20, 0.15, 1<<30)
	time.Sleep(3 * time.Millisecond) // a real wall-clock window
	// Zero busy/GC deltas: the machine looks fully idle -> 2x stretch.
	p.ObserveEpoch(policy.EpochStats{})
	if got := p.AllocLimit(); !approx(got, 2*base) {
		t.Fatalf("idle fallback limit %d, want %d", got, 2*base)
	}
}
