package policy

import "sync"

// DecayPredictor is the paper's 1:3 / 3:1 conservatively biased
// exponential decay predictor (§3.2.1). When an observation exceeds the
// current prediction, the new prediction weights the observation
// 3/4 : 1/4 (reacting quickly in the conservative direction); otherwise
// the weights reverse (forgetting slowly).
type DecayPredictor struct {
	mu     sync.Mutex
	value  float64
	primed bool
	// BiasHigh selects the conservative direction: true biases toward
	// high observations (survival rates, cycle headroom consumption),
	// false toward low ones (post-trace live volume).
	BiasHigh bool
}

// NewDecayPredictor creates a predictor with an initial value.
func NewDecayPredictor(initial float64, biasHigh bool) *DecayPredictor {
	return &DecayPredictor{value: initial, primed: true, BiasHigh: biasHigh}
}

// Observe folds a new observation into the prediction.
func (p *DecayPredictor) Observe(x float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.primed {
		p.value = x
		p.primed = true
		return
	}
	conservative := x > p.value
	if !p.BiasHigh {
		conservative = x < p.value
	}
	if conservative {
		p.value = 0.75*x + 0.25*p.value
	} else {
		p.value = 0.25*x + 0.75*p.value
	}
}

// Predict returns the current prediction.
func (p *DecayPredictor) Predict() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.value
}
