// Package policy is the shared GC pacing subsystem: it owns the "when
// to take a pause / when to start a concurrent cycle" decision for
// every collector in the repository.
//
// Each collector used to hard-code its own disconnected heuristic —
// LXR's survival-budget RC trigger and SATB clean-block/wastage votes,
// G1's fixed 45% IHOP plus young-budget check, Shenandoah's 30%-free
// watch, the STW collectors' occupancy tests — none of which saw the
// windowed utilization estimator the conctrl governor already computes.
// This package puts one Pacer contract in front of all of them, fed by
// cheap cumulative signals (vm.VM.ConcSignals, allocation volume,
// survival observations, decrement-backlog depth, governor utilization
// windows), and makes the thresholds adaptive:
//
//   - LXR's RC epoch length scales with load: epochs stretch when the
//     machine is idle and shorten when the decrement backlog starts
//     lengthening the next pause (RCPacer).
//   - G1's IHOP becomes headroom-based: the mark-start threshold backs
//     away from the heap-full edge by the occupancy growth a concurrent
//     mark cycle is predicted to consume (G1Pacer).
//   - Shenandoah's free-fraction trigger backs off under churn: high
//     allocation pressure during recent cycles lowers the occupancy
//     threshold so the next cycle starts with more headroom
//     (FreeFractionPacer).
//
// In Static mode every pacer reproduces the historical per-collector
// heuristic exactly (guarded by the trace-replay tests), so adaptive
// pacing is a strict opt-in (-pacing adaptive).
//
// Every firing decision and every threshold adjustment is archived with
// its signal snapshot and the threshold in force; the harness publishes
// the record under the "pacing" key of the -json output.
package policy

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Mode selects between the historical fixed thresholds and the
// signal-driven adaptive ones.
type Mode int

const (
	// Static reproduces each collector's historical trigger behavior
	// exactly.
	Static Mode = iota
	// Adaptive drives the thresholds from the observed signals.
	Adaptive
)

func (m Mode) String() string {
	if m == Adaptive {
		return "adaptive"
	}
	return "static"
}

// Signals is the snapshot of cheap cumulative signals a pacing decision
// is made from. Collectors fill the fields that exist for them; the
// rest stay zero.
type Signals struct {
	// AllocBytes is the volume allocated since the last epoch/pause.
	AllocBytes int64 `json:"alloc_bytes,omitempty"`
	// LoggedFields is the barrier slow-path count since the last epoch.
	LoggedFields int64 `json:"logged_fields,omitempty"`
	// HeapBlocks is current occupancy in blocks (each collector feeds
	// the same population its historical heuristic read: LXR main-space
	// blocks, G1/Shenandoah main + large-object blocks, SemiSpace its
	// current half).
	HeapBlocks int `json:"heap_blocks,omitempty"`
	// BudgetBlocks is the heap budget in blocks.
	BudgetBlocks int `json:"budget_blocks,omitempty"`
	// BudgetRemaining is how many blocks the budget still allows.
	BudgetRemaining int `json:"budget_remaining,omitempty"`
	// YoungBlocks is the young-generation block count since the last
	// collection (G1).
	YoungBlocks int `json:"young_blocks,omitempty"`
	// CleanYielded is how many clean blocks the last young sweep
	// yielded (LXR's SATB clean-block vote).
	CleanYielded int `json:"clean_yielded,omitempty"`
	// DecBacklog is the lazy-decrement backlog depth in items (LXR).
	DecBacklog int64 `json:"dec_backlog,omitempty"`
}

// EpochStats is the post-pause feedback a collector folds into its
// pacer's predictors once per epoch.
type EpochStats struct {
	// AllocBytes and SurvivedBytes drive the survival-rate predictor.
	AllocBytes    int64
	SurvivedBytes int64
	// DecBacklog is the decrement batch handed to the concurrent drain
	// at this pause.
	DecBacklog int64
	// AbsorbedDecPause reports that the pause had to finish the previous
	// epoch's decrements before anything else — the backlog lengthened
	// this pause, the signal the adaptive epoch length shortens on.
	AbsorbedDecPause bool
	// MutBusy and GCWork are the cumulative runtime busy/work signals
	// (vm.VM.ConcSignals); the pacer differences successive epochs into
	// load windows. Collectors only need to fill them under adaptive
	// pacing — static pacers ignore them, so the caller can skip the
	// signal walk inside the stop-the-world window.
	MutBusy time.Duration
	GCWork  time.Duration
}

// Pacer is the pacing contract every collector's start decisions route
// through. Decision methods are safe to call concurrently with the
// observation methods; the observation methods themselves are called
// from pause/cycle coordinators (already serialised per collector).
type Pacer interface {
	// ShouldCollect reports whether a collection is due: an RC pause
	// (LXR), a young evacuation pause (G1), or a full STW collection
	// (SemiSpace/Immix). It runs on mutator safepoint paths and must
	// stay cheap when not due.
	ShouldCollect(s Signals) bool
	// ShouldStartCycle reports whether a concurrent cycle should begin:
	// an SATB trace (LXR), a concurrent mark (G1), a mark/evac/update
	// pipeline (Shenandoah/ZGC). It may run on a concurrent controller
	// goroutine with the controller lock held, so it must be
	// non-blocking: atomics and pacer-owned state only.
	ShouldStartCycle(s Signals) bool
	// ObserveCycleStart records that a concurrent cycle began.
	ObserveCycleStart(s Signals)
	// ObserveCycleEnd records that a concurrent cycle completed; the
	// headroom-based pacers difference occupancy across the cycle here.
	ObserveCycleEnd(s Signals)
	// ObserveEpoch folds one epoch's feedback into the predictors and
	// recomputes the adaptive thresholds.
	ObserveEpoch(e EpochStats)
	// Trace snapshots the archived pacing record.
	Trace() *Trace
}

// WindowObserver is an optional Pacer extension: pacers whose adaptive
// policy consumes the conctrl utilization-window export (windowed
// mutator utilization, total CPU load fraction) implement it, and the
// collectors wire it as the controller's WindowSink. Pacers that adapt
// on cycle boundaries only (G1, Shenandoah) deliberately do not — a
// wired sink would make the controller sample windows nobody reads.
type WindowObserver interface {
	ObserveWindow(util, load float64)
}

// Decision archives one fired pacing decision. Identical consecutive
// fires (same kind, same threshold, within repeatWindow) collapse into
// the Repeats count of the first, so a mutator burst polling an
// already-due trigger cannot flood the archive.
type Decision struct {
	AtMS      float64 `json:"at_ms"`
	Kind      string  `json:"kind"`
	Signal    float64 `json:"signal"`
	Threshold float64 `json:"threshold"`
	Repeats   int64   `json:"repeats,omitempty"`
	Signals   Signals `json:"signals"`
}

// Adjustment archives one adaptive threshold move.
type Adjustment struct {
	AtMS  float64 `json:"at_ms"`
	Kind  string  `json:"kind"`
	From  float64 `json:"from"`
	To    float64 `json:"to"`
	Cause string  `json:"cause"`
}

// Trace is the archived pacing record of one run — the harness emits it
// under the "pacing" key of the -json output.
type Trace struct {
	Collector string `json:"collector"`
	Mode      string `json:"mode"`
	// Fired counts every due decision, including the ones collapsed
	// into Repeats and the ones dropped past the archive cap.
	Fired int64 `json:"fired"`
	// Dropped and DroppedAdjustments count entries past the archive
	// caps, plus decisions skipped because the archive mutex was busy
	// (the fire path must never block under the conctrl controller
	// lock). The caps bound memory, not the counters — nothing is
	// silently lost: decisions + repeats + dropped always equals fired.
	Dropped            int64 `json:"dropped,omitempty"`
	DroppedAdjustments int64 `json:"dropped_adjustments,omitempty"`
	// Thresholds is each trigger kind's threshold currently in force.
	Thresholds  map[string]float64 `json:"thresholds,omitempty"`
	Decisions   []Decision         `json:"decisions"`
	Adjustments []Adjustment       `json:"adjustments,omitempty"`
}

const (
	maxDecisions   = 4096
	maxAdjustments = 1024
	// repeatWindow is how long an identical consecutive fire keeps
	// collapsing into the previous decision's Repeats count.
	repeatWindow = 5 * time.Millisecond
)

// recorder is the decision archive every concrete pacer embeds.
type recorder struct {
	collector string
	mode      Mode
	start     time.Time

	fired     atomic.Int64
	contended atomic.Int64 // decisions dropped because the archive was busy

	mu          sync.Mutex
	dropped     int64 // decisions past the archive cap
	droppedAdj  int64 // adjustments past the archive cap
	decisions   []Decision
	adjustments []Adjustment
	thresholds  map[string]float64

	// hook, when non-nil, observes every fired trigger before the
	// archive's dedup/caps — the GC event tracer's instant feed. It is
	// called on trigger paths that must never block (see fire), so
	// implementations must be wait-free; set before concurrent use.
	hook func(kind string, signal, threshold float64)
}

// SetTriggerHook installs a wait-free observer of every fired trigger
// on a built-in pacer (all of them embed the decision recorder). The
// hook runs on trigger paths that may hold the conctrl controller lock,
// so it must not take locks anything else holds while waiting on the
// controller. Returns false if p is not hook-capable.
func SetTriggerHook(p Pacer, f func(kind string, signal, threshold float64)) bool {
	h, ok := p.(interface {
		setTriggerHook(func(kind string, signal, threshold float64))
	})
	if ok {
		h.setTriggerHook(f)
	}
	return ok
}

func (r *recorder) setTriggerHook(f func(kind string, signal, threshold float64)) { r.hook = f }

func (r *recorder) init(collector string, mode Mode) {
	r.collector = collector
	r.mode = mode
	r.start = time.Now()
	r.thresholds = map[string]float64{}
}

func (r *recorder) sinceMS() float64 {
	return float64(time.Since(r.start)) / float64(time.Millisecond)
}

// fire archives one due decision. It must never block: ShouldStartCycle
// runs on the conctrl controller goroutine with the controller lock
// held, and a pause's Quiesce waits on that lock — so if the archive
// mutex is busy (a Trace snapshot copying the record), the decision is
// counted as contention-dropped rather than waited for. The totals stay
// exact: decisions + repeats + dropped = fired.
func (r *recorder) fire(kind string, signal, threshold float64, s Signals) {
	r.fired.Add(1)
	if r.hook != nil {
		r.hook(kind, signal, threshold)
	}
	at := r.sinceMS()
	if !r.mu.TryLock() {
		r.contended.Add(1)
		return
	}
	defer r.mu.Unlock()
	if n := len(r.decisions); n > 0 {
		last := &r.decisions[n-1]
		if last.Kind == kind && last.Threshold == threshold &&
			at-last.AtMS < float64(repeatWindow)/float64(time.Millisecond) {
			last.Repeats++
			return
		}
	}
	if len(r.decisions) >= maxDecisions {
		r.dropped++
		return
	}
	r.decisions = append(r.decisions, Decision{
		AtMS: at, Kind: kind, Signal: signal, Threshold: threshold, Signals: s,
	})
}

// setThreshold publishes the threshold currently in force for a kind.
func (r *recorder) setThreshold(kind string, v float64) {
	r.mu.Lock()
	r.thresholds[kind] = v
	r.mu.Unlock()
}

// adjust archives one adaptive threshold move and publishes the new
// value.
func (r *recorder) adjust(kind string, from, to float64, cause string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.thresholds[kind] = to
	if len(r.adjustments) >= maxAdjustments {
		r.droppedAdj++
		return
	}
	r.adjustments = append(r.adjustments, Adjustment{
		AtMS: r.sinceMS(), Kind: kind, From: from, To: to, Cause: cause,
	})
}

// trace snapshots the archive.
func (r *recorder) trace() *Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := &Trace{
		Collector:          r.collector,
		Mode:               r.mode.String(),
		Fired:              r.fired.Load(),
		Dropped:            r.dropped + r.contended.Load(),
		DroppedAdjustments: r.droppedAdj,
		Thresholds:         make(map[string]float64, len(r.thresholds)),
		Decisions:          append([]Decision(nil), r.decisions...),
		Adjustments:        append([]Adjustment(nil), r.adjustments...),
	}
	for k, v := range r.thresholds {
		t.Thresholds[k] = v
	}
	return t
}

// Trace implements Pacer for every embedding pacer.
func (r *recorder) Trace() *Trace { return r.trace() }

// noCycle provides no-op cycle observation for pacers of collectors
// without a concurrent cycle (SemiSpace, STW Immix).
type noCycle struct{}

func (noCycle) ShouldStartCycle(Signals) bool { return false }
func (noCycle) ObserveCycleStart(Signals)     {}
func (noCycle) ObserveCycleEnd(Signals)       {}

// loadCell stores a CPU-load estimate lock-free, timestamped so a
// consumer fed by several sources (the conctrl window export, the
// pacer's own epoch differencing) can pick whichever sampled last.
type loadCell struct {
	bits atomic.Uint64
	at   atomic.Int64 // UnixNano of the last store; 0 = never stored
}

func (c *loadCell) store(v float64) {
	c.bits.Store(math.Float64bits(v))
	c.at.Store(time.Now().UnixNano())
}

func (c *loadCell) load() (v float64, at int64, ok bool) {
	at = c.at.Load()
	if at == 0 {
		return 0, 0, false
	}
	return math.Float64frombits(c.bits.Load()), at, true
}
