package policy

import "sync/atomic"

// cycleHeadroom is the shared core of the occupancy-triggered cycle
// pacers (G1's IHOP, Shenandoah's free-fraction trigger): a cycle
// starts when occupancy crosses a threshold, and in Adaptive mode the
// threshold backs away from the heap-full edge by the occupancy growth
// a cycle is predicted to consume — churn observed while recent cycles
// ran pushes the trigger earlier, idle heaps let it drift later.
type cycleHeadroom struct {
	budget   int
	adaptive bool
	kind     string
	// growth predicts how many blocks occupancy grows while a cycle
	// runs (bias high: under-predicting headroom risks allocation
	// stalls, the lusearch pathology).
	growth *DecayPredictor
	// safety scales the predicted growth into reserved headroom.
	safety float64
	// minThr/maxThr clamp the adaptive threshold (fractions of budget).
	minThr, maxThr float64

	thrBlocks atomic.Int64
	startOcc  atomic.Int64 // occupancy at cycle start; -1 = no cycle
}

func (h *cycleHeadroom) initThreshold(staticBlocks int) {
	h.thrBlocks.Store(int64(staticBlocks))
	h.startOcc.Store(-1)
}

// threshold returns the occupancy (blocks) above which a cycle starts.
func (h *cycleHeadroom) threshold() int64 { return h.thrBlocks.Load() }

func (h *cycleHeadroom) cycleStart(occ int) { h.startOcc.Store(int64(occ)) }

// cycleEnd folds the cycle's occupancy growth into the predictor and
// returns the recomputed threshold (from, to, changed).
func (h *cycleHeadroom) cycleEnd(occ int) (from, to int64, changed bool) {
	start := h.startOcc.Swap(-1)
	from = h.thrBlocks.Load()
	if !h.adaptive || start < 0 {
		return from, from, false
	}
	grew := float64(int64(occ) - start)
	if grew < 0 {
		grew = 0
	}
	h.growth.Observe(grew)
	thr := float64(h.budget) - h.safety*h.growth.Predict()
	if min := h.minThr * float64(h.budget); thr < min {
		thr = min
	}
	if max := h.maxThr * float64(h.budget); thr > max {
		thr = max
	}
	to = int64(thr)
	if to == from {
		return from, to, false
	}
	h.thrBlocks.Store(to)
	return from, to, true
}

// --- G1 ---------------------------------------------------------------------

// G1PacerConfig parameterises G1's pacer.
type G1PacerConfig struct {
	Mode Mode
	// BudgetBlocks is the heap budget in blocks.
	BudgetBlocks int
	// YoungTargetBlocks is the young-generation size that triggers an
	// evacuation pause.
	YoungTargetBlocks int
}

// G1Pacer owns G1's two start decisions: the young-collection trigger
// (young generation at target size, or the remaining budget no longer
// covering the evacuation copy reserve) and the concurrent-mark IHOP.
//
// Static mode reproduces the historical fixed 45%-of-budget IHOP. In
// Adaptive mode the IHOP is headroom-based: the threshold sits below
// the budget by a safety multiple of the occupancy growth the last
// marks consumed, the way HotSpot's adaptive IHOP reserves the
// allocation that will land while a mark runs.
type G1Pacer struct {
	recorder
	cfg G1PacerConfig
	hr  cycleHeadroom
}

// NewG1Pacer creates G1's pacer.
func NewG1Pacer(cfg G1PacerConfig) *G1Pacer {
	p := &G1Pacer{cfg: cfg}
	p.init("G1", cfg.Mode)
	p.hr = cycleHeadroom{
		budget:   cfg.BudgetBlocks,
		adaptive: cfg.Mode == Adaptive,
		kind:     "ihop",
		growth:   NewDecayPredictor(0, true),
		safety:   1.5,
		minThr:   0.30,
		maxThr:   0.75,
	}
	// The historical trigger: occupancy > budget*45/100 (integer math
	// preserved exactly for static replay).
	p.hr.initThreshold(cfg.BudgetBlocks * 45 / 100)
	p.setThreshold("ihop", float64(p.hr.threshold()))
	p.setThreshold("young-target", float64(cfg.YoungTargetBlocks))
	return p
}

// ShouldCollect implements Pacer: a young collection is due when the
// young generation reaches its target, or earlier when the remaining
// budget no longer guarantees the evacuation copy reserve (real G1
// reserves to-space the same way to avoid evacuation failure).
func (p *G1Pacer) ShouldCollect(s Signals) bool {
	yb := s.YoungBlocks
	if yb >= p.cfg.YoungTargetBlocks {
		p.fire("young-target", float64(yb), float64(p.cfg.YoungTargetBlocks), s)
		return true
	}
	if reserve := yb + yb/4 + 8; yb > 4 && s.BudgetRemaining <= reserve {
		p.fire("young-reserve", float64(s.BudgetRemaining), float64(reserve), s)
		return true
	}
	return false
}

// ShouldStartCycle implements Pacer: the IHOP check.
func (p *G1Pacer) ShouldStartCycle(s Signals) bool {
	thr := p.hr.threshold()
	if int64(s.HeapBlocks) > thr {
		p.fire("ihop", float64(s.HeapBlocks), float64(thr), s)
		return true
	}
	return false
}

// ObserveCycleStart implements Pacer.
func (p *G1Pacer) ObserveCycleStart(s Signals) { p.hr.cycleStart(s.HeapBlocks) }

// ObserveCycleEnd implements Pacer: recomputes the adaptive IHOP from
// the occupancy growth this mark consumed.
func (p *G1Pacer) ObserveCycleEnd(s Signals) {
	if from, to, changed := p.hr.cycleEnd(s.HeapBlocks); changed {
		p.adjust("ihop", float64(from), float64(to), "mark-headroom")
	}
}

// ObserveEpoch implements Pacer (no per-epoch predictors; the IHOP
// adapts on cycle boundaries, so G1Pacer is deliberately not a
// WindowObserver either).
func (p *G1Pacer) ObserveEpoch(EpochStats) {}

// --- Shenandoah / ZGC -------------------------------------------------------

// FreeFractionPacerConfig parameterises the concurrent-evacuating
// collectors' pacer.
type FreeFractionPacerConfig struct {
	Mode Mode
	// Collector names the trace ("Shenandoah", "ZGC").
	Collector string
	// BudgetBlocks is the heap budget in blocks.
	BudgetBlocks int
}

// FreeFractionPacer owns the Shenandoah/ZGC cycle trigger: a collection
// cycle starts when free memory falls under a fraction of the budget
// (historically 30%, i.e. occupancy above 70%).
//
// In Adaptive mode the trigger backs off from the heap-full edge under
// churn: the occupancy growth recent cycles absorbed is the headroom
// the next cycle must be started with, so a high allocation rate pulls
// the trigger earlier — the failure mode this guards is the paper's
// lusearch pathology, where a 9.5 GB/s allocation rate outruns the
// concurrent cycle and mutators stall on allocation.
type FreeFractionPacer struct {
	recorder
	cfg FreeFractionPacerConfig
	hr  cycleHeadroom
}

// NewFreeFractionPacer creates the pacer.
func NewFreeFractionPacer(cfg FreeFractionPacerConfig) *FreeFractionPacer {
	if cfg.Collector == "" {
		cfg.Collector = "Shenandoah"
	}
	p := &FreeFractionPacer{cfg: cfg}
	p.init(cfg.Collector, cfg.Mode)
	p.hr = cycleHeadroom{
		budget:   cfg.BudgetBlocks,
		adaptive: cfg.Mode == Adaptive,
		kind:     "free-fraction",
		growth:   NewDecayPredictor(0, true),
		safety:   1.5,
		minThr:   0.50,
		maxThr:   0.85,
	}
	// Historical trigger: used > budget*70/100 (integer math preserved).
	p.hr.initThreshold(cfg.BudgetBlocks * 70 / 100)
	p.setThreshold("free-fraction", float64(p.hr.threshold()))
	return p
}

// ShouldCollect implements Pacer: these collectors have no separate
// STW trigger — the cycle is the collection.
func (p *FreeFractionPacer) ShouldCollect(s Signals) bool { return p.ShouldStartCycle(s) }

// ShouldStartCycle implements Pacer. It runs on the conctrl
// controller's poll path with the controller lock held, so it is
// atomics-only: the signals must be snapshot lock-free by the caller.
func (p *FreeFractionPacer) ShouldStartCycle(s Signals) bool {
	thr := p.hr.threshold()
	if int64(s.HeapBlocks) > thr {
		p.fire("free-fraction", float64(s.HeapBlocks), float64(thr), s)
		return true
	}
	return false
}

// ObserveCycleStart implements Pacer.
func (p *FreeFractionPacer) ObserveCycleStart(s Signals) { p.hr.cycleStart(s.HeapBlocks) }

// ObserveCycleEnd implements Pacer: recomputes the adaptive trigger
// from the occupancy growth this cycle absorbed.
func (p *FreeFractionPacer) ObserveCycleEnd(s Signals) {
	if from, to, changed := p.hr.cycleEnd(s.HeapBlocks); changed {
		p.adjust("free-fraction", float64(from), float64(to), "cycle-churn")
	}
}

// ObserveEpoch implements Pacer (the trigger adapts on cycle
// boundaries, so FreeFractionPacer is deliberately not a
// WindowObserver).
func (p *FreeFractionPacer) ObserveEpoch(EpochStats) {}

// --- SemiSpace / STW Immix --------------------------------------------------

// HeapFullPacer owns the stop-the-world collectors' trigger. Two
// policies exist:
//
//   - LimitBlocks > 0 (SemiSpace): collect when occupancy reaches the
//     limit — the half-budget test that reserves the copy half.
//   - LimitBlocks == 0 (Immix): collection is driven purely by
//     allocation failure; ShouldCollect is consulted at the failure
//     point and always due, so the decision is archived with its
//     occupancy snapshot like every other trigger.
//
// There is nothing to adapt — the limits are structural — so Static
// and Adaptive behave identically (the mode is still recorded).
type HeapFullPacer struct {
	recorder
	noCycle
	limit int64
}

// NewHeapFullPacer creates the pacer; limitBlocks 0 selects the pure
// allocation-failure policy.
func NewHeapFullPacer(collector string, mode Mode, limitBlocks int) *HeapFullPacer {
	p := &HeapFullPacer{limit: int64(limitBlocks)}
	p.init(collector, mode)
	if limitBlocks > 0 {
		p.setThreshold("half-budget", float64(limitBlocks))
	}
	return p
}

// ShouldCollect implements Pacer.
func (p *HeapFullPacer) ShouldCollect(s Signals) bool {
	if p.limit > 0 {
		if int64(s.HeapBlocks) >= p.limit {
			p.fire("half-budget", float64(s.HeapBlocks), float64(p.limit), s)
			return true
		}
		return false
	}
	p.fire("heap-full", float64(s.HeapBlocks), float64(s.BudgetBlocks), s)
	return true
}

// ObserveEpoch implements Pacer.
func (p *HeapFullPacer) ObserveEpoch(EpochStats) {}
