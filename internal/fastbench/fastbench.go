// Package fastbench is the mutator fast-path microbenchmark family:
// ns/allocation (small, medium, large), ns/pointer-store on the barrier
// fast path, ns/pointer-store on the slow path (the first log of each
// field per epoch), and ns/line-scan for the Immix recycled-block span
// walk — measured for LXR and the barrier-bearing baselines.
//
// These are the paths the paper's design lives or dies on (§3, Table 7:
// bump allocation plus a barrier whose fast path is a single metadata
// load), so the family is tracked: cmd/lxr-bench -fastpath exports it
// as BENCH_fastpath.json and CI diffs each push against the previous
// artifact with lxr-bench -compare.
//
// Measurement protocol: every benchmark takes repeated timed samples of
// a fixed op-count loop on a fresh heap, with any collections forced
// between samples (never inside them) so each sample is a pure fast- or
// slow-path interval. The compare tool treats the min..max interval
// over samples as the measurement, which makes the family robust to
// scheduling noise without NTP-grade timing.
package fastbench

import (
	"fmt"
	"io"
	"time"

	"lxr/internal/baselines"
	"lxr/internal/core"
	"lxr/internal/immix"
	"lxr/internal/mem"
	"lxr/internal/meta"
	"lxr/internal/obj"
	"lxr/internal/trace"
	"lxr/internal/vm"
)

// Collectors is the default collector set: LXR plus the barrier-bearing
// baselines (Immix+WB carries the field-logging barrier with discarded
// captures — the Table 7 barrier-overhead substrate; G1 carries its
// card-table analogue plus SATB). Barrier-less Immix anchors the
// overhead comparison.
var Collectors = []string{"LXR", "Immix", "Immix+WB", "G1"}

// Benches is the family, in report order. store/slow is only measurable
// for collectors whose pauses re-arm logged fields (all three
// barrier-bearing ones here); linescan is collector-independent and
// reported once under the pseudo-collector "heap". The "+trace" rows
// re-measure LXR's allocation and pointer-store paths with the event
// tracer armed (full-capacity rings, no consumer): the delta against
// the matching untraced rows is the cost of live event recording, while
// the untraced rows themselves — which carry the tracer's dormant nil
// check — are what the CI compare gate holds at parity with the
// pre-tracing baseline.
var Benches = []string{"alloc/small", "alloc/medium", "alloc/large", "store/fast", "store/slow", "linescan",
	"alloc/small+trace", "store/fast+trace"}

// Options configures a family run.
type Options struct {
	// HeapBytes is the per-benchmark heap (default 64 MB — large enough
	// that no sample can cross an allocation trigger).
	HeapBytes int
	// Samples is the number of timed samples per benchmark (default 5,
	// plus one discarded warmup).
	Samples int
	// Collectors restricts the collector set (default Collectors).
	Collectors []string
	// Log, when set, receives one line per completed benchmark.
	Log io.Writer
}

func (o *Options) setDefaults() {
	if o.HeapBytes == 0 {
		o.HeapBytes = 64 << 20
	}
	if o.Samples == 0 {
		o.Samples = 5
	}
	if o.Collectors == nil {
		o.Collectors = Collectors
	}
}

// Result is one benchmark's repeated samples for one collector.
type Result struct {
	Collector string    `json:"collector"`
	Bench     string    `json:"bench"`
	Ops       int       `json:"ops_per_sample"`
	SamplesNS []float64 `json:"samples_ns_per_op"`
	MinNS     float64   `json:"min_ns_per_op"`
	MeanNS    float64   `json:"mean_ns_per_op"`
	MaxNS     float64   `json:"max_ns_per_op"`
}

// Report is the BENCH_fastpath.json payload. Kind tags the format so
// the compare tool can sniff it.
type Report struct {
	Kind    string   `json:"kind"` // "fastpath"
	Results []Result `json:"results"`
}

// Run executes the family and returns the report.
func Run(o Options) Report {
	o.setDefaults()
	rep := Report{Kind: "fastpath"}
	emit := func(r Result) {
		rep.Results = append(rep.Results, r)
		if o.Log != nil {
			fmt.Fprintf(o.Log, "%-10s %-12s %10.1f ns/op  (min %.1f, max %.1f, %d samples x %d ops)\n",
				r.Collector, r.Bench, r.MeanNS, r.MinNS, r.MaxNS, len(r.SamplesNS), r.Ops)
		}
	}
	hasLXR := false
	for _, c := range o.Collectors {
		if c == "LXR" {
			hasLXR = true
		}
		emit(runAlloc(o, c, "alloc/small", smallPayload, false))
		emit(runAlloc(o, c, "alloc/medium", mediumPayload, false))
		emit(runAlloc(o, c, "alloc/large", largePayload, false))
		emit(runStoreFast(o, c, false))
		emit(runStoreSlow(o, c))
	}
	if hasLXR {
		// Tracing-on variants use distinct bench names so the compare
		// tool never pairs them with the untraced rows: the parity gate
		// covers tracing-off, these rows track the armed cost.
		emit(runAlloc(o, "LXR", "alloc/small+trace", smallPayload, true))
		emit(runStoreFast(o, "LXR", true))
	}
	emit(runLineScan(o))
	return rep
}

// newPlan builds a fresh plan instance for one benchmark. traced arms
// the event tracer (LXR only — the tracing-on variants) with a
// full-capacity ring that is never drained, so recording proceeds at
// its steady-state overwrite cost.
func newPlan(name string, heapBytes int, traced bool) (vm.Plan, *trace.Tracer) {
	var tr *trace.Tracer
	if traced {
		tr = trace.New(trace.Config{})
	}
	switch name {
	case "LXR":
		return core.New(core.Config{HeapBytes: heapBytes, GCThreads: 2, Tracer: tr}), tr
	case "Immix":
		return baselines.NewImmix(heapBytes, 2, false), nil
	case "Immix+WB":
		return baselines.NewImmix(heapBytes, 2, true), nil
	case "G1":
		return baselines.NewG1(heapBytes, 2), nil
	}
	panic("fastbench: unknown collector " + name)
}

// Object sizes: small is a 32 B cell (2-word header + 1 ref + 8 B
// payload); medium is ~1 KB (above the 256 B line threshold, so it
// exercises the dynamic-overflow path); large is 20 KB (above the 16 KB
// half-block threshold, so it goes to the large object space).
const (
	smallPayload  = 8
	mediumPayload = 1008
	largePayload  = 20 << 10

	// sampleVolume bounds the bytes allocated per timed sample, well
	// under every collector's trigger budget on the default heap.
	sampleVolume = 2 << 20
)

func summarize(collector, bench string, ops int, samples []float64) Result {
	r := Result{Collector: collector, Bench: bench, Ops: ops, SamplesNS: samples}
	r.MinNS, r.MaxNS = samples[0], samples[0]
	sum := 0.0
	for _, s := range samples {
		if s < r.MinNS {
			r.MinNS = s
		}
		if s > r.MaxNS {
			r.MaxNS = s
		}
		sum += s
	}
	r.MeanNS = sum / float64(len(samples))
	return r
}

// sampleLoop times o.Samples runs of loop(ops) after one warmup run,
// calling between() (if non-nil) before every run — collections happen
// there, never inside the timed region.
func sampleLoop(o Options, collector, bench string, ops int, between func(), loop func(ops int)) Result {
	samples := make([]float64, 0, o.Samples)
	for i := 0; i <= o.Samples; i++ {
		if between != nil {
			between()
		}
		t0 := time.Now()
		loop(ops)
		d := time.Since(t0)
		if i == 0 {
			continue // warmup: pages in the arena span, primes caches
		}
		samples = append(samples, float64(d.Nanoseconds())/float64(ops))
	}
	return summarize(collector, bench, ops, samples)
}

func runAlloc(o Options, collector, bench string, payload int, traced bool) Result {
	p, tr := newPlan(collector, o.HeapBytes, traced)
	v := vm.New(p, 0)
	v.SetTracer(tr)
	defer v.Shutdown()
	m := v.RegisterMutator(1)
	defer m.Deregister()

	size := obj.SizeFor(1, payload)
	ops := sampleVolume / size
	if ops < 64 {
		ops = 64
	}
	return sampleLoop(o, collector, bench, ops,
		func() { m.RequestGC() }, // reset epoch budgets; reclaim the dead young garbage
		func(ops int) {
			for i := 0; i < ops; i++ {
				m.Alloc(0, 1, payload)
			}
		})
}

// runStoreFast measures the barrier fast path: repeated stores to the
// fields of a fresh object. New objects' fields are in the Logged state
// (implicitly dead, §3.4), and with no collection running the state
// never changes, so every store is the fast path — for LXR exactly one
// metadata load.
func runStoreFast(o Options, collector string, traced bool) Result {
	p, tr := newPlan(collector, o.HeapBytes, traced)
	v := vm.New(p, 0)
	v.SetTracer(tr)
	defer v.Shutdown()
	m := v.RegisterMutator(1)
	defer m.Deregister()

	bench := "store/fast"
	if traced {
		bench += "+trace"
	}
	const slots = 64
	src := m.Alloc(0, slots, 0)
	val := m.Alloc(0, 0, 16)
	ops := 1 << 16
	return sampleLoop(o, collector, bench, ops,
		nil, // no collections: the fields must stay Logged
		func(ops int) {
			for i := 0; i < ops; i++ {
				m.Store(src, i&(slots-1), val)
			}
		})
}

// runStoreSlow measures the barrier slow path: the first store to each
// field of an epoch. Rooted objects are promoted by a collection, which
// arms their fields (Unlogged); each subsequent pause re-arms exactly
// the fields the barrier logged, so "store once to every armed field,
// then force a pause" yields all-slow-path samples indefinitely.
func runStoreSlow(o Options, collector string) Result {
	p, _ := newPlan(collector, o.HeapBytes, false)
	v := vm.New(p, 0)
	defer v.Shutdown()

	const nObjs, slots = 64, 64
	m := v.RegisterMutator(nObjs + 1)
	defer m.Deregister()
	for i := 0; i < nObjs; i++ {
		m.Roots[i] = m.Alloc(0, slots, 0)
	}
	m.Roots[nObjs] = m.Alloc(0, 0, 16)

	objs := make([]obj.Ref, nObjs)
	var val obj.Ref
	rearm := func() {
		m.RequestGC() // promotes on the first call; re-arms logged fields after
		for i := 0; i < nObjs; i++ {
			objs[i] = m.Roots[i] // collections may move the objects
		}
		val = m.Roots[nObjs]
	}
	return sampleLoop(o, collector, "store/slow", nObjs*slots,
		rearm,
		func(int) {
			for i := 0; i < nObjs; i++ {
				src := objs[i]
				for s := 0; s < slots; s++ {
					m.Store(src, s, val)
				}
			}
		})
}

// runLineScan measures the recycled-block free-line span walk over a
// line map with a realistic fragmented occupancy (~50% of lines hold
// counted objects), through the same query path the Immix allocators
// use (the RC table as LineMap). Reported ns/op is per block scanned
// (128 lines). Collector-independent: reported once, under "heap".
func runLineScan(o Options) Result {
	bt := immix.NewBlockTable(immix.Config{HeapBytes: 8 << 20})
	rc := meta.NewRCTable(bt.Arena)
	nBlocks := bt.BudgetBlocks()
	// Deterministic xorshift occupancy so before/after runs scan the
	// same pattern.
	rng := uint64(0x9e3779b97f4a7c15)
	for b := 1; b < nBlocks; b++ {
		for l := 0; l < mem.LinesPerBlock; l++ {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			if rng&1 == 0 {
				rc.Set(mem.LineStart(b*mem.LinesPerBlock+l), 1)
			}
		}
	}
	ops := (nBlocks - 1) * 8
	return sampleLoop(o, "heap", "linescan", ops,
		nil,
		func(int) {
			for rep := 0; rep < 8; rep++ {
				for b := 1; b < nBlocks; b++ {
					immix.ScanSpans(rc, b*mem.LinesPerBlock)
				}
			}
		})
}
