package fastbench

import (
	"runtime"
	"testing"

	"lxr/internal/vm"
)

// countMallocs returns the number of Go heap allocations f performs
// (plus whatever the plan's parked background goroutines do, which is
// why callers allow a small slack rather than demanding exactly zero).
func countMallocs(f func()) uint64 {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	f()
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

// mallocSlack absorbs background-goroutine noise (timer wheels, the
// plans' parked controllers). The loops run 50k+ ops, so a per-op
// allocation would exceed it by orders of magnitude.
const mallocSlack = 200

// The allocation fast path must not allocate Go memory: it is a
// mutator-local bump (plus, past the 16 KB publish grain, two atomic
// adds), and any hidden allocation would both skew the microbenchmarks
// and throttle every workload.
func TestAllocFastPathIsGoAllocationFree(t *testing.T) {
	for _, c := range Collectors {
		t.Run(c, func(t *testing.T) {
			p, _ := newPlan(c, 256<<20, false)
			v := vm.New(p, 0)
			defer v.Shutdown()
			m := v.RegisterMutator(1)
			defer m.Deregister()

			const ops = 50_000 // 1.6 MB of 32 B objects: far below any trigger
			loop := func() {
				for i := 0; i < ops; i++ {
					m.Alloc(0, 1, smallPayload)
				}
			}
			loop()        // warmup: lazy buffer growth, arena paging
			m.RequestGC() // reset epoch budgets outside the measured window
			if n := countMallocs(loop); n > mallocSlack {
				t.Fatalf("%s: %d Go allocations over %d object allocations", c, n, ops)
			}
		})
	}
}

// The barrier fast path (one metadata load + the store) must not
// allocate Go memory either.
func TestStoreFastPathIsGoAllocationFree(t *testing.T) {
	for _, c := range Collectors {
		t.Run(c, func(t *testing.T) {
			p, _ := newPlan(c, 64<<20, false)
			v := vm.New(p, 0)
			defer v.Shutdown()
			m := v.RegisterMutator(1)
			defer m.Deregister()

			const slots = 64
			src := m.Alloc(0, slots, 0)
			val := m.Alloc(0, 0, 16)
			const ops = 200_000
			loop := func() {
				for i := 0; i < ops; i++ {
					m.Store(src, i&(slots-1), val)
				}
			}
			loop() // warmup
			if n := countMallocs(loop); n > mallocSlack {
				t.Fatalf("%s: %d Go allocations over %d stores", c, n, ops)
			}
		})
	}
}
