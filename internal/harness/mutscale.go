package harness

import (
	"fmt"
	"sort"
	"text/tabwriter"
	"time"

	"lxr/internal/telemetry"
	"lxr/internal/vm"
	"lxr/internal/workload"
)

// The mutscale experiment sweeps mutator count at fixed per-mutator
// pressure and reports how pause time, time-to-safepoint and throughput
// scale. A runtime whose safepoint rendezvous, root scan or pause
// bookkeeping is O(mutators) shows pause/TTSP curves that grow with the
// count; the sharded rendezvous and parallel root scan are meant to
// keep them flat (within noise) from 8 to 1024 mutators.

// MutScaleCounts is the swept mutator-count axis.
func MutScaleCounts() []int { return []int{8, 64, 256, 1024} }

// MutScaleCollectors is the collector set mutscale runs: the five
// collector families (ZGC shares Shenandoah's concurrent-cycle pause
// structure here, so Shenandoah covers that family's rendezvous
// behavior).
func MutScaleCollectors() []string {
	return []string{CLXR, CG1, CShen, CParallel, CImmix}
}

const (
	// The heap is sized once — for the 1024-point's structural floor
	// (1024 mutators × 32 KB block-in-hand is 32 MB of heap that is
	// simply *held*, doubled again for the semispace collectors' copy
	// reserve) — and then kept constant across the whole sweep. Every
	// collector here triggers on a fraction of the heap (G1's young
	// target is budget/4, Shenandoah fires at 70% used, the STW plans
	// at half budget, LXR's epoch budget is capped at heap/2), so a
	// heap that grew with mutator count would grow per-pause work
	// linearly with N for reasons that have nothing to do with the
	// rendezvous. Fixing the heap fixes the collector physics; the only
	// thing that varies between sweep points is the thread count — the
	// runtime's O(mutators) terms are the residual signal.
	msHeap = 160 << 20

	// Total request stream (scaled by Scale.RequestDiv) and total
	// arrival rate, both fixed across the sweep and divided evenly
	// among the mutators. Holding the totals fixed keeps every
	// configuration sleep-dominated: the instantaneous token-holder
	// population tracks the (constant) load, not the thread count, so
	// a pause request never queues behind a thousand busy threads —
	// which would measure CPU oversubscription, not the rendezvous.
	msRequestsRaw = 6400000
	msTotalRate   = 28000.0

	msObjsPerReq = 32
	// Total retained-object budget, divided per mutator. Dividing both
	// this and the arrival rate by the count makes each retained
	// object's wall-clock lifetime (chain length × request interval =
	// msTotalRetained / msTotalRate) independent of the mutator count,
	// so the promotion/decrement mix the collectors see is the same at
	// every sweep point — a per-mutator-fixed chain would let retained
	// objects at high counts outlive epochs, get promoted, and die as
	// mature objects needing decrement cascades the 8-mutator point
	// never pays.
	msTotalRetained = 16384
)

// mutScaleHeap returns the heap for a mutator count: constant by
// design (see msHeap).
func mutScaleHeap(n int) int { return msHeap }

// flooredRatio renders val/base with both clamped to the same 1 ms
// noise floor the -compare gate uses: TTSP at the 8-mutator point sits
// at the measurement floor (~µs), and a raw ratio against a µs-scale
// denominator reads scheduling jitter as a scaling trend. Quantities
// below the floor print as flat (1.00) — matching how the gate would
// judge them.
func flooredRatio(val, base float64) string {
	const floorMS = 1.0
	if val < floorMS {
		val = floorMS
	}
	if base < floorMS {
		base = floorMS
	}
	return fmt.Sprintf("%.2f", val/base)
}

// TTSPPercentileMS returns the p-th percentile time-to-safepoint in
// milliseconds, computed exactly from the recorded pauses.
func (r *RunResult) TTSPPercentileMS(p float64) float64 {
	if len(r.Pauses) == 0 {
		return 0
	}
	ts := make([]time.Duration, len(r.Pauses))
	for i, pa := range r.Pauses {
		ts[i] = pa.TTSP
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	idx := int(p / 100 * float64(len(ts)))
	if idx >= len(ts) {
		idx = len(ts) - 1
	}
	return float64(ts[idx]) / float64(time.Millisecond)
}

// RunMutScale runs the mutator-count sweep for every collector and
// prints the scaling table. Results are recorded (opts.Record) under
// Bench "muts<count>".
func RunMutScale(opts Options) []*RunResult {
	opts = opts.WithDefaults()
	totalReqs := msRequestsRaw / opts.Scale.RequestDiv
	var rows []*RunResult
	for _, n := range MutScaleCounts() {
		reqPerMut := totalReqs / n
		if reqPerMut < 20 {
			reqPerMut = 20
		}
		retain := msTotalRetained / n
		if retain < 1 {
			retain = 1
		}
		cfg := workload.MutScaleConfig{
			Mutators:       n,
			RequestsPerMut: reqPerMut,
			RatePerMut:     msTotalRate / float64(n),
			ObjsPerReq:     msObjsPerReq,
			RetainLen:      retain,
		}
		for _, c := range MutScaleCollectors() {
			rows = append(rows, runMutScaleOne(c, n, cfg, opts))
		}
	}

	w := tabwriter.NewWriter(opts.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "mutscale: pause/TTSP/throughput vs mutator count (fixed per-mutator pressure)")
	fmt.Fprintln(w, "Collector\tmutators\theapMB\tQPS\tpauses\tpause50ms\tpause99ms\tTTSP99ms\tp99x8\tttsp99x8")
	base := map[string]*RunResult{}
	for _, r := range rows {
		if !r.OK {
			fmt.Fprintf(w, "%s\t%s\t-\n", r.Collector, r.Bench)
			continue
		}
		var n int
		fmt.Sscanf(r.Bench, "muts%d", &n)
		if n == MutScaleCounts()[0] {
			base[r.Collector] = r
		}
		p99 := r.PausePercentile(99)
		t99 := r.TTSPPercentileMS(99)
		p99x, t99x := "-", "-"
		if b := base[r.Collector]; b != nil && b != r {
			p99x = flooredRatio(p99, b.PausePercentile(99))
			t99x = flooredRatio(t99, b.TTSPPercentileMS(99))
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%.0f\t%d\t%.3f\t%.3f\t%.3f\t%s\t%s\n",
			r.Collector, n, r.HeapBytes>>20, r.QPS, len(r.Pauses),
			r.PausePercentile(50), p99, t99, p99x, t99x)
	}
	w.Flush()
	return rows
}

// runMutScaleOne runs one (collector, mutator-count) cell.
func runMutScaleOne(collector string, nMut int, cfg workload.MutScaleConfig, opts Options) *RunResult {
	heap := mutScaleHeap(nMut)
	res := &RunResult{Bench: fmt.Sprintf("muts%d", nMut), Collector: collector, HeapBytes: heap}
	if opts.Record != nil {
		defer func() { opts.Record(res) }()
	}
	plan := NewPlanOpts(collector, heap, opts)
	if plan == nil {
		return res
	}
	v := vm.New(plan, 8)
	defer v.Shutdown() // idempotent; the explicit call below is first
	rr := workload.RunMutScale(v, cfg)
	res.Wall = rr.Wall
	res.QPS = rr.QPS
	res.Latency = rr.Latency
	res.OK = !rr.Failed
	v.Shutdown()
	res.Pauses = v.Stats.Pauses()
	res.PauseHist = v.Stats.PauseHistograms()
	res.Hists = v.Stats.Histograms()
	res.MMU = telemetry.MMU(pauseIntervals(res.Pauses, rr.Start), res.Wall, nil)
	res.Counters = v.Stats.Counters()
	res.GCWork = v.Stats.GCWork()
	res.ConcWork = v.Stats.ConcurrentWork()
	res.MutBusy = v.Stats.MutatorBusy()
	if t, ok := plan.(gcTelemetry); ok {
		res.ConcWorkers = t.ConcWorkers()
		res.WorkerStats = t.GCWorkerStats()
		res.Loans, res.LoanItems = t.GCLoanStats()
		res.Governor = t.GovernorTrace()
		res.Pacing = t.PacingTrace()
	}
	return res
}
