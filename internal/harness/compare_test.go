package harness

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"lxr/internal/fastbench"
	"lxr/internal/telemetry"
)

func mustJSON(t *testing.T, v interface{}) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func compareData(t *testing.T, oldData, newData []byte) (int, string) {
	t.Helper()
	var buf bytes.Buffer
	var c Compare
	n, err := c.Data(&buf, oldData, newData)
	if err != nil {
		t.Fatalf("compare: %v", err)
	}
	return n, buf.String()
}

func fpResult(collector, bench string, samples ...float64) fastbench.Result {
	r := fastbench.Result{Collector: collector, Bench: bench, Ops: 1000, SamplesNS: samples}
	r.MinNS, r.MaxNS = samples[0], samples[0]
	var sum float64
	for _, s := range samples {
		if s < r.MinNS {
			r.MinNS = s
		}
		if s > r.MaxNS {
			r.MaxNS = s
		}
		sum += s
	}
	r.MeanNS = sum / float64(len(samples))
	return r
}

func fpReport(scale float64) fastbench.Report {
	return fastbench.Report{Kind: "fastpath", Results: []fastbench.Result{
		fpResult("LXR", "alloc/small", 70*scale, 74*scale, 78*scale),
		fpResult("LXR", "store/fast", 12*scale, 13*scale, 13.5*scale),
		fpResult("Immix", "alloc/small", 30*scale, 31*scale, 33*scale),
	}}
}

// An A/A self-comparison of a fastpath report must be clean: the
// acceptance gate for the noise-aware differ.
func TestCompareFastpathSelfIsClean(t *testing.T) {
	data := mustJSON(t, fpReport(1))
	n, out := compareData(t, data, data)
	if n != 0 {
		t.Fatalf("A/A comparison found %d regressions:\n%s", n, out)
	}
	if !strings.Contains(out, "fastpath: 0 regression(s)") {
		t.Fatalf("missing summary line:\n%s", out)
	}
}

// A 2x slowdown on one benchmark must be flagged, and only that one.
func TestCompareFastpathFlagsInjectedSlowdown(t *testing.T) {
	oldRep := fpReport(1)
	newRep := fpReport(1)
	slow := fpResult("LXR", "store/fast", 24, 26, 27)
	newRep.Results[1] = slow
	n, out := compareData(t, mustJSON(t, oldRep), mustJSON(t, newRep))
	if n != 1 {
		t.Fatalf("want exactly 1 regression, got %d:\n%s", n, out)
	}
	if !strings.Contains(out, "LXR store/fast") || !strings.Contains(out, "REGRESSION") {
		t.Fatalf("regression not attributed to LXR store/fast:\n%s", out)
	}
}

// Overlapping intervals — noise, not signal — must not be flagged even
// when the means differ.
func TestCompareFastpathToleratesOverlap(t *testing.T) {
	oldRep := fastbench.Report{Kind: "fastpath", Results: []fastbench.Result{
		fpResult("LXR", "alloc/small", 70, 74, 90),
	}}
	newRep := fastbench.Report{Kind: "fastpath", Results: []fastbench.Result{
		fpResult("LXR", "alloc/small", 85, 95, 110), // min 85 < old max 90·1.1
	}}
	n, out := compareData(t, mustJSON(t, oldRep), mustJSON(t, newRep))
	if n != 0 {
		t.Fatalf("overlapping intervals flagged as regression:\n%s", out)
	}
}

func histDump(t *testing.T, scale int64) HistDump {
	t.Helper()
	h := telemetry.NewHistogram(telemetry.PauseConfig())
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		h.Record(scale * (100_000 + r.Int63n(4_000_000))) // 0.1–4.1 ms pauses
	}
	e := h.Export()
	return HistDump{Bench: "lusearch", Collector: "LXR",
		Pauses: map[string]telemetry.Export{"rc": e}, Latency: &e}
}

func TestCompareHistSelfAndSlowdown(t *testing.T) {
	oldData := mustJSON(t, []HistDump{histDump(t, 1)})
	if n, out := compareData(t, oldData, oldData); n != 0 {
		t.Fatalf("A/A hist comparison found %d regressions:\n%s", n, out)
	}
	// 4x slower pauses: well past the 2x ratio and the 1 ms floor at p99.
	newData := mustJSON(t, []HistDump{histDump(t, 4)})
	n, out := compareData(t, oldData, newData)
	if n == 0 {
		t.Fatalf("4x pause slowdown not flagged:\n%s", out)
	}
	if !strings.Contains(out, "REGRESSION") {
		t.Fatalf("missing REGRESSION line:\n%s", out)
	}
}

// exportQuantile must agree with the histogram's own Percentile — the
// compare tool recomputes quantiles from the sparse dump.
func TestExportQuantileMatchesHistogram(t *testing.T) {
	h := telemetry.NewHistogram(telemetry.PauseConfig())
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 20000; i++ {
		h.Record(50_000 + r.Int63n(20_000_000))
	}
	e := h.Export()
	for _, q := range quantiles {
		want := float64(h.Percentile(q.p))
		if got := exportQuantile(&e, q.p); got != want {
			t.Fatalf("%s: exportQuantile %.0f, Percentile %.0f", q.name, got, want)
		}
	}
}

func TestCompareSummaries(t *testing.T) {
	base := RunSummary{Bench: "lusearch", Collector: "LXR", OK: true,
		PauseMS:   map[string]float64{"p99": 2.0, "max": 3.5},
		LatencyMS: map[string]float64{"p99": 4.0, "p99.9": 9.0}}
	oldData := mustJSON(t, []RunSummary{base})
	if n, out := compareData(t, oldData, oldData); n != 0 {
		t.Fatalf("A/A summary comparison found %d regressions:\n%s", n, out)
	}
	slow := base
	slow.PauseMS = map[string]float64{"p99": 6.0, "max": 3.6}
	n, out := compareData(t, oldData, mustJSON(t, []RunSummary{slow}))
	if n != 1 {
		t.Fatalf("want 1 regression (pause p99 tripled), got %d:\n%s", n, out)
	}
	if !strings.Contains(out, "pause p99 REGRESSION") {
		t.Fatalf("missing pause p99 regression:\n%s", out)
	}
}

// Per-phase pause digests are gated individually: a doubled phase p99
// must flag even when the total pause distribution is unchanged, phases
// inside the 1 ms floor must not, and phases present on only one side
// (population shifts like rc vs rc+mark) compare trivially.
func TestCompareSummariesPausePhases(t *testing.T) {
	base := RunSummary{Bench: "lusearch", Collector: "LXR", OK: true,
		PauseMS: map[string]float64{"p99": 2.0, "max": 3.5},
		PausePhaseMS: map[string]PhaseDigest{
			"rc":      {Count: 40, P50: 1.0, P99: 2.0, Max: 2.2},
			"rc+mark": {Count: 4, P50: 2.0, P99: 3.5, Max: 3.5},
		}}
	oldData := mustJSON(t, []RunSummary{base})
	if n, out := compareData(t, oldData, oldData); n != 0 {
		t.Fatalf("A/A phase comparison found %d regressions:\n%s", n, out)
	}

	slow := base
	slow.PausePhaseMS = map[string]PhaseDigest{
		"rc":      {Count: 40, P50: 2.5, P99: 5.5, Max: 6.0}, // >2x and >1ms: flags
		"rc+mark": {Count: 4, P50: 2.0, P99: 3.6, Max: 3.6},  // within noise
	}
	n, out := compareData(t, oldData, mustJSON(t, []RunSummary{slow}))
	if n != 1 || !strings.Contains(out, "phase[rc] p99 REGRESSION") {
		t.Fatalf("doubled rc-phase p99 not flagged as exactly 1 regression (%d):\n%s", n, out)
	}

	// Sub-millisecond phases stay under the floor even at large ratios.
	tiny := base
	tiny.PausePhaseMS = map[string]PhaseDigest{"rc": {Count: 40, P99: 0.1}}
	tinySlow := base
	tinySlow.PausePhaseMS = map[string]PhaseDigest{"rc": {Count: 40, P99: 0.9}}
	if n, out := compareData(t, mustJSON(t, []RunSummary{tiny}), mustJSON(t, []RunSummary{tinySlow})); n != 0 {
		t.Fatalf("sub-floor phase movement flagged (%d):\n%s", n, out)
	}

	// A phase kind appearing only in the new run has no baseline: skip.
	shifted := base
	shifted.PausePhaseMS = map[string]PhaseDigest{
		"rc":     {Count: 40, P50: 1.0, P99: 2.0, Max: 2.2},
		"rc+dec": {Count: 6, P50: 4.0, P99: 9.0, Max: 9.0},
	}
	if n, out := compareData(t, oldData, mustJSON(t, []RunSummary{shifted})); n != 0 {
		t.Fatalf("phase population shift flagged as regression (%d):\n%s", n, out)
	}
}

// Mutscale cells record only a handful of pauses, so their gated tail
// quantiles carry a raised floor: an isolated scheduler stall inside
// the 25 ms floor must pass, a doubled p50 (systemic scaling
// regression) and a tail excursion past the floor must both flag.
func TestCompareSummariesMutScaleFloors(t *testing.T) {
	base := RunSummary{Experiment: "mutscale", Bench: "muts1024", Collector: "G1", OK: true,
		PauseMS: map[string]float64{"p50": 10.0, "p99": 12.5, "max": 12.5},
		TTSPMS:  map[string]float64{"p50": 0.1, "p99": 0.6, "max": 0.6}}
	oldData := mustJSON(t, []RunSummary{base})

	hiccup := base
	hiccup.PauseMS = map[string]float64{"p50": 10.5, "p99": 37.0, "max": 37.0}
	// Wakeup-lateness latency tails are scheduler jitter at mutscale's
	// thread counts and must not be gated there.
	hiccup.LatencyMS = map[string]float64{"p99": 170.0, "p99.9": 240.0}
	withLat := base
	withLat.LatencyMS = map[string]float64{"p99": 8.0, "p99.9": 19.0}
	if n, out := compareData(t, mustJSON(t, []RunSummary{withLat}), mustJSON(t, []RunSummary{hiccup})); n != 0 {
		t.Fatalf("isolated tail stall / latency jitter within the mutscale rules flagged (%d):\n%s", n, out)
	}

	systemic := base
	systemic.PauseMS = map[string]float64{"p50": 25.0, "p99": 30.0, "max": 30.0}
	n, out := compareData(t, oldData, mustJSON(t, []RunSummary{systemic}))
	if n != 1 || !strings.Contains(out, "pause p50 REGRESSION") {
		t.Fatalf("doubled mutscale p50 not flagged as exactly 1 regression (%d):\n%s", n, out)
	}

	gross := base
	gross.PauseMS = map[string]float64{"p50": 10.5, "p99": 60.0, "max": 60.0}
	if n, _ := compareData(t, oldData, mustJSON(t, []RunSummary{gross})); n != 2 {
		t.Fatalf("tail excursion past the mutscale floor: want p99+max flagged, got %d", n)
	}

	// Non-mutscale summaries keep the tight 1 ms floor on the tail.
	plain := base
	plain.Experiment = "table6"
	plainOld := mustJSON(t, []RunSummary{plain})
	plainSlow := plain
	plainSlow.PauseMS = map[string]float64{"p50": 10.5, "p99": 37.0, "max": 37.0}
	if n, _ := compareData(t, plainOld, mustJSON(t, []RunSummary{plainSlow})); n != 2 {
		t.Fatalf("non-mutscale tail regression: want p99+max flagged, got %d", n)
	}
}

func TestCompareRejectsMismatchedFormats(t *testing.T) {
	fp := mustJSON(t, fpReport(1))
	sum := mustJSON(t, []RunSummary{{Bench: "b", Collector: "c", OK: true,
		PauseMS: map[string]float64{"p99": 1}}})
	var c Compare
	if _, err := c.Data(&bytes.Buffer{}, fp, sum); err == nil {
		t.Fatal("mismatched artifact formats not rejected")
	}
}
