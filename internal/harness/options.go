package harness

import (
	"flag"
	"fmt"
	"strings"
	"time"

	"lxr/internal/workload"
)

// CommonDefaults parameterize RegisterCommonFlags per binary (the tools
// share flag names and semantics but differ in defaults: lxr-bench runs
// the full suite at default scale, lxr-trace one benchmark at quick
// scale).
type CommonDefaults struct {
	Scale string // default -scale value ("" = "default")
	Bench string // default -bench value ("" = all)
}

// CommonFlags holds the session flags shared by cmd/lxr-bench and
// cmd/lxr-trace, registered in one place so the two binaries cannot
// drift apart. Call Options after the flag set is parsed.
type CommonFlags struct {
	Scale       *string
	GCThreads   *int
	ConcWorkers *int
	Adaptive    *bool
	MMUFloor    *float64
	Pacing      *string
	Interval    *time.Duration
	Bench       *string
	JSON        *string
}

// RegisterCommonFlags registers the shared session flags on fs.
func RegisterCommonFlags(fs *flag.FlagSet, def CommonDefaults) *CommonFlags {
	if def.Scale == "" {
		def.Scale = "default"
	}
	return &CommonFlags{
		Scale:       fs.String("scale", def.Scale, "workload scaling: quick or default"),
		GCThreads:   fs.Int("gcthreads", 4, "parallel GC threads"),
		ConcWorkers: fs.Int("concworkers", 0, "GC workers borrowed by concurrent phases between pauses (0 = half of gcthreads)"),
		Adaptive:    fs.Bool("adaptive", false, "size the concurrent borrow width adaptively from observed mutator utilization (conctrl governor); -concworkers becomes the initial width"),
		MMUFloor:    fs.Float64("mmufloor", 0, "adaptive governor's minimum-mutator-utilization target in (0,1); 0 = pure utilization policy (implies -adaptive when set)"),
		Pacing:      fs.String("pacing", "static", "collection-trigger pacing: 'static' reproduces each collector's historical thresholds, 'adaptive' drives them from observed signals (load-scaled LXR epochs, headroom-based G1 IHOP, churn-aware free-fraction triggers)"),
		Interval:    fs.Duration("interval", 0, "periodic per-window report: snapshot merged histograms on this period and emit windowed latency/pause percentiles (e.g. 2s); windows whose p99 departs more than 2x from the trailing mean are marked drift:true and carry absolute timestamps"),
		Bench:       fs.String("bench", def.Bench, "comma-separated benchmark subset (default all)"),
		JSON:        fs.String("json", "", "write run summaries as JSON to this file ('-' = stdout)"),
	}
}

// Options validates the parsed flag values and converts them into a
// session Options. Errors are usage-style (print and exit 2).
func (f *CommonFlags) Options() (Options, error) {
	if *f.MMUFloor < 0 || *f.MMUFloor >= 1 {
		return Options{}, fmt.Errorf("-mmufloor %v outside [0,1)", *f.MMUFloor)
	}
	if *f.Pacing != "static" && *f.Pacing != "adaptive" {
		return Options{}, fmt.Errorf("unknown -pacing %q (want static or adaptive)", *f.Pacing)
	}
	o := Options{
		GCThreads:      *f.GCThreads,
		ConcWorkers:    *f.ConcWorkers,
		Adaptive:       *f.Adaptive || *f.MMUFloor > 0,
		MMUFloor:       *f.MMUFloor,
		PacingAdaptive: *f.Pacing == "adaptive",
		Interval:       *f.Interval,
	}
	switch *f.Scale {
	case "quick":
		o.Scale = workload.QuickScale()
	case "default":
		o.Scale = workload.DefaultScale()
	default:
		return Options{}, fmt.Errorf("unknown scale %q (want quick or default)", *f.Scale)
	}
	if *f.Bench != "" {
		o.Bench = strings.Split(*f.Bench, ",")
	}
	return o, nil
}
