package harness

import (
	"fmt"
	"io"
	"sync"
	"time"

	"lxr/internal/telemetry"
	"lxr/internal/vm"
)

// IntervalReport digests one reporting window of a run: the pause and
// request-latency distributions of just that window, obtained by
// differencing successive cumulative histogram snapshots
// (telemetry.Subtract). A sequence of windows exposes drift within a
// run — warmup vs steady state, heap-shape transitions — that the
// whole-run percentiles average away.
type IntervalReport struct {
	Index   int     `json:"index"`
	StartMS float64 `json:"start_ms"`
	EndMS   float64 `json:"end_ms"`

	// Pauses and PauseMS cover the stop-the-world pauses that ended in
	// this window (all phase kinds merged).
	Pauses  int64        `json:"pauses"`
	PauseMS *PhaseDigest `json:"pause_ms,omitempty"`

	// Requests and LatencyMS cover the requests completed in this
	// window (request workloads only).
	Requests  int64        `json:"requests,omitempty"`
	LatencyMS *PhaseDigest `json:"latency_ms,omitempty"`

	// Drift flags a window whose p99 (pause or latency) departs more
	// than 2x in either direction from the trailing mean of the
	// preceding windows — a cheap transition locator: warmup ending,
	// heap-shape changes, a collector falling behind — without the JSON
	// bloat of adaptively resized windows.
	Drift bool `json:"drift,omitempty"`

	// StartUnixNS/EndUnixNS are the window's absolute wall-clock bounds
	// (Unix nanoseconds), recorded only on drift windows so the window
	// can be cross-referenced against a flight-recorder dump's event
	// timestamps (the dump's otherData.epoch_unix_ns plus an event's ts
	// places it inside or outside this window).
	StartUnixNS int64 `json:"start_unix_ns,omitempty"`
	EndUnixNS   int64 `json:"end_unix_ns,omitempty"`
}

// driftWindows is how many preceding windows the trailing mean covers.
const driftWindows = 8

// driftTracker flags values departing more than 2x from the trailing
// mean of the previous observations (the current value never biases its
// own baseline).
type driftTracker struct {
	vals []float64
}

// observe reports whether v drifts from the trailing mean, then folds v
// into the baseline.
func (d *driftTracker) observe(v float64) bool {
	drift := false
	if len(d.vals) > 0 {
		sum := 0.0
		for _, x := range d.vals {
			sum += x
		}
		mean := sum / float64(len(d.vals))
		if mean > 0 && (v > 2*mean || v < mean/2) {
			drift = true
		}
	}
	d.vals = append(d.vals, v)
	if len(d.vals) > driftWindows {
		d.vals = d.vals[1:]
	}
	return drift
}

// DriftTrackerForTest exposes the interval reporter's drift detector to
// the package tests (the reporter itself is wall-clock driven).
type DriftTrackerForTest struct{ d driftTracker }

// Observe feeds one window's p99 and reports whether it drifts.
func (t *DriftTrackerForTest) Observe(v float64) bool { return t.d.observe(v) }

// intervalReporter periodically snapshots a run's merged histograms and
// subtracts the previous snapshot to produce per-window digests. It
// runs on its own goroutine beside the workload; Stats snapshots and
// Recorder snapshots are both safe against concurrent writers.
type intervalReporter struct {
	every time.Duration
	stats *vm.Stats
	lat   *telemetry.Recorder // nil for batch runs
	out   io.Writer
	label string
	start time.Time

	prevPause *telemetry.Histogram
	prevLat   *telemetry.Histogram
	prevEnd   time.Duration // previous window's end offset

	// onDrift, when non-nil, fires (on the reporter goroutine, outside
	// the lock) for every window flagged drift:true — the flight
	// recorder's dump trigger.
	onDrift func(IntervalReport)

	pauseDrift driftTracker
	latDrift   driftTracker

	mu      sync.Mutex
	reports []IntervalReport

	stop chan struct{}
	done chan struct{}
}

// startIntervalReporter launches the reporter; call stopAndCollect when
// the run ends to stop it and obtain the reports (a final partial
// window is emitted for whatever the last full tick missed).
func startIntervalReporter(every time.Duration, stats *vm.Stats, lat *telemetry.Recorder, out io.Writer, label string, onDrift func(IntervalReport)) *intervalReporter {
	r := &intervalReporter{
		every:   every,
		stats:   stats,
		lat:     lat,
		out:     out,
		label:   label,
		start:   time.Now(),
		onDrift: onDrift,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go r.run()
	return r
}

func (r *intervalReporter) run() {
	defer close(r.done)
	t := time.NewTicker(r.every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			r.observe()
		case <-r.stop:
			return
		}
	}
}

// observe closes one window: cumulative snapshots minus the previous
// cumulative snapshots.
func (r *intervalReporter) observe() {
	end := time.Since(r.start)

	cumPause := telemetry.NewHistogram(telemetry.PauseConfig())
	for _, h := range r.stats.PauseHistograms() {
		cumPause.Add(h)
	}
	winPause := cumPause.Clone()
	if r.prevPause != nil {
		winPause.Subtract(r.prevPause)
	}
	r.prevPause = cumPause

	var winLat *telemetry.Histogram
	if r.lat != nil {
		cumLat := r.lat.Snapshot()
		winLat = cumLat.Clone()
		if r.prevLat != nil {
			winLat.Subtract(r.prevLat)
		}
		r.prevLat = cumLat
	}

	r.mu.Lock()
	idx := len(r.reports)
	startMS := 0.0
	if idx > 0 {
		startMS = r.reports[idx-1].EndMS
	}
	rep := IntervalReport{
		Index:   idx,
		StartMS: startMS,
		EndMS:   float64(end) / float64(time.Millisecond),
		Pauses:  winPause.Count(),
	}
	if winPause.Count() > 0 {
		d := msDigest(winPause)
		rep.PauseMS = &d
		if r.pauseDrift.observe(d.P99) {
			rep.Drift = true
		}
	}
	if winLat != nil && winLat.Count() > 0 {
		d := msDigest(winLat)
		rep.LatencyMS = &d
		rep.Requests = winLat.Count()
		if r.latDrift.observe(d.P99) {
			rep.Drift = true
		}
	}
	if rep.Drift {
		// Absolute bounds let a flight dump be matched to this window.
		rep.StartUnixNS = r.start.Add(r.prevEnd).UnixNano()
		rep.EndUnixNS = r.start.Add(end).UnixNano()
	}
	r.prevEnd = end
	r.reports = append(r.reports, rep)
	r.mu.Unlock()
	if rep.Drift && r.onDrift != nil {
		r.onDrift(rep)
	}

	if r.out != nil {
		line := fmt.Sprintf("  [%s interval %d @%.0fms] pauses=%d", r.label, rep.Index, rep.EndMS, rep.Pauses)
		if rep.Drift {
			line += " DRIFT"
		}
		if rep.PauseMS != nil {
			line += fmt.Sprintf(" gc{p50=%.2f p99=%.2f max=%.2f}", rep.PauseMS.P50, rep.PauseMS.P99, rep.PauseMS.Max)
		}
		if rep.LatencyMS != nil {
			line += fmt.Sprintf(" req=%d lat{p50=%.2f p99=%.2f max=%.2f}", rep.Requests, rep.LatencyMS.P50, rep.LatencyMS.P99, rep.LatencyMS.Max)
		}
		fmt.Fprintln(r.out, line)
	}
}

// stopAndCollect stops the ticker, closes the final partial window and
// returns every report.
func (r *intervalReporter) stopAndCollect() []IntervalReport {
	close(r.stop)
	<-r.done
	r.observe()
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.reports
}
