package harness

import (
	"fmt"
	"text/tabwriter"

	"lxr/internal/workload"
)

// DefaultHeapFactors is the heap-factor grid RunHeapSensitivity sweeps.
// The 8× point exists to bracket ZGC's recovery: at default scale it is
// the first factor besides 10× whose heap clears ZGC's 40 MB minimum,
// so without it the sweep cannot distinguish "recovers at 10×" from
// "recovers as soon as the minimum heap admits it".
var DefaultHeapFactors = []float64{1.3, 1.7, 2, 3, 4, 6, 8, 10}

// RunHeapSensitivity sweeps the heap factor on lusearch for the four
// concurrent collectors under the metered request load. Shenandoah and
// ZGC cannot run lusearch at tight heaps on this substrate (the paper's
// Table 1 pathology: concurrent evacuation needs copy headroom a tight
// heap does not have); the sweep reports tail latency and worst pause
// at each factor, and a per-collector footer names the first factor
// that ran OK (the recovery point) when it is not the tightest one.
// Results flow through Options.Record, so `lxr-bench -experiment
// heapsens -json` archives the sweep.
func RunHeapSensitivity(opts Options, factors []float64) map[string]map[float64]*RunResult {
	opts = opts.WithDefaults()
	if len(factors) == 0 {
		factors = DefaultHeapFactors
	}
	spec, _ := workload.ByName("lusearch")
	rate := CalibrateRate(spec, opts)
	collectors := []string{CG1, CLXR, CShen, CZGC}
	out := map[string]map[float64]*RunResult{}

	w := tabwriter.NewWriter(opts.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Heap-factor sensitivity: lusearch, metered request load")
	fmt.Fprintln(w, "Collector\tHeap\tOK\tQPS\tq99ms\tq99.9ms\tgcMaxms\tMMU@10ms")
	for _, c := range collectors {
		recoveredAt := 0.0
		for _, f := range factors {
			r := RunOne(spec, c, f, rate, opts)
			if out[c] == nil {
				out[c] = map[float64]*RunResult{}
			}
			out[c][f] = r
			if !r.OK {
				fmt.Fprintf(w, "%s\t%.1fx\t-\t-\t-\t-\t-\t-\n", c, f)
				continue
			}
			if recoveredAt == 0 {
				recoveredAt = f
			}
			mmu10 := 0.0
			for _, pt := range r.MMU {
				if pt.WindowMS == 10 {
					mmu10 = pt.Utilization
				}
			}
			fmt.Fprintf(w, "%s\t%.1fx\tok\t%.0f\t%.1f\t%.1f\t%.2f\t%.3f\n",
				c, f, r.QPS, r.LatencyPercentileMS(99), r.LatencyPercentileMS(99.9),
				r.PausePercentile(100), mmu10)
		}
		switch {
		case recoveredAt == 0:
			fmt.Fprintf(w, "%s\t(never recovers on this grid)\n", c)
		case recoveredAt > factors[0]:
			fmt.Fprintf(w, "%s\t(recovers at %.1fx)\n", c, recoveredAt)
		}
	}
	w.Flush()
	return out
}
