// Package harness runs the paper's experiments: it instantiates
// collectors, sizes workloads, calibrates request rates, executes runs,
// and renders each of the paper's tables and figures from the measured
// data (see EXPERIMENTS.md for the index).
package harness

import (
	"fmt"
	"io"
	"sync"
	"time"

	"lxr/internal/baselines"
	"lxr/internal/conctrl"
	"lxr/internal/core"
	"lxr/internal/gcwork"
	"lxr/internal/policy"
	"lxr/internal/telemetry"
	"lxr/internal/trace"
	"lxr/internal/vm"
	"lxr/internal/workload"
)

// Collector identifiers accepted by NewPlan.
const (
	CG1        = "G1"
	CLXR       = "LXR"
	CShen      = "Shenandoah"
	CZGC       = "ZGC"
	CSerial    = "Serial"
	CParallel  = "Parallel"
	CSemiSpace = "SemiSpace"
	CImmix     = "Immix"
	CImmixWB   = "Immix+WB"
	CLXRNoSATB = "LXR-SATB" // -SATB ablation: trace in the pause
	CLXRNoLD   = "LXR-LD"   // -LD ablation: decrements in the pause
	CLXRSTW    = "LXR-STW"  // both ablations
)

// NewPlan constructs a collector by name with the default concurrent
// parallelism. Returns nil when the collector cannot run at this heap
// size (ZGC's minimum heap).
func NewPlan(id string, heapBytes, gcThreads int) vm.Plan {
	return NewPlanConc(id, heapBytes, gcThreads, 0)
}

// NewPlanConc is NewPlan with an explicit between-pause borrow width:
// concWorkers is how many gcwork workers the collector's concurrent
// phases (LXR's lazy decrements and SATB trace, G1's and Shenandoah's
// concurrent marking) lend from the pool between pauses. 0 selects each
// collector's default (half the GC threads).
func NewPlanConc(id string, heapBytes, gcThreads, concWorkers int) vm.Plan {
	return NewPlanOpts(id, heapBytes, Options{GCThreads: gcThreads, ConcWorkers: concWorkers})
}

// NewPlanOpts constructs a collector by name under the session options:
// GC threads, between-pause borrow width, and — for the collectors with
// a concurrent driver — the adaptive loan-width governor (Adaptive /
// MMUFloor). Returns nil when the collector cannot run at this heap
// size (ZGC's minimum heap).
func NewPlanOpts(id string, heapBytes int, opts Options) vm.Plan {
	gcThreads, concWorkers := opts.GCThreads, opts.ConcWorkers
	if gcThreads == 0 {
		gcThreads = 4
	}
	pacing := policy.Static
	if opts.PacingAdaptive {
		pacing = policy.Adaptive
	}
	lxrCfg := func(c core.Config) vm.Plan {
		c.HeapBytes, c.GCThreads, c.ConcWorkers = heapBytes, gcThreads, concWorkers
		c.AdaptiveConc, c.MMUFloor = opts.Adaptive, opts.MMUFloor
		c.AdaptivePacing = opts.PacingAdaptive
		c.Tracer = opts.tracer
		return core.New(c)
	}
	// setup applies the session options every baseline plan shares:
	// pacing mode, borrow width, adaptive loan governor, event tracer.
	setup := func(p interface {
		SetConcWorkers(int)
		SetAdaptive(float64)
		SetPacing(policy.Mode)
		SetTracer(*trace.Tracer)
	}) {
		p.SetPacing(pacing)
		if concWorkers > 0 {
			p.SetConcWorkers(concWorkers)
		}
		if opts.Adaptive {
			p.SetAdaptive(opts.MMUFloor)
		}
		if opts.tracer != nil {
			p.SetTracer(opts.tracer)
		}
	}
	switch id {
	case CG1:
		p := baselines.NewG1(heapBytes, gcThreads)
		setup(p)
		return p
	case CLXR:
		return lxrCfg(core.Config{})
	case CLXRNoSATB:
		return lxrCfg(core.Config{NoConcurrentSATB: true})
	case CLXRNoLD:
		return lxrCfg(core.Config{NoLazyDecrements: true})
	case CLXRSTW:
		return lxrCfg(core.Config{NoConcurrentSATB: true, NoLazyDecrements: true})
	case CShen:
		p := baselines.NewShenandoah(heapBytes, gcThreads)
		setup(p)
		return p
	case CZGC:
		if p := baselines.NewZGC(heapBytes, gcThreads); p != nil {
			setup(p)
			return p
		}
		return nil
	case CSerial:
		p := baselines.NewSerial(heapBytes)
		setup(p)
		return p
	case CParallel:
		p := baselines.NewParallel(heapBytes, gcThreads)
		setup(p)
		return p
	case CSemiSpace:
		p := baselines.NewSemiSpace("SemiSpace", heapBytes, gcThreads)
		setup(p)
		return p
	case CImmix:
		p := baselines.NewImmix(heapBytes, gcThreads, false)
		setup(p)
		return p
	case CImmixWB:
		p := baselines.NewImmix(heapBytes, gcThreads, true)
		setup(p)
		return p
	}
	panic("harness: unknown collector " + id)
}

// Options configure a harness session.
type Options struct {
	Scale     workload.Scale
	GCThreads int
	// ConcWorkers is how many gcwork workers the collectors' concurrent
	// phases borrow between pauses (0 = collector default: half the GC
	// threads). See core.Config.ConcWorkers.
	ConcWorkers int
	// Adaptive enables the conctrl loan-width governor on every
	// collector with a concurrent driver: the borrow width starts at
	// ConcWorkers (or the default) and is resized from observed
	// mutator utilization; runs record the width trace, resize events
	// and achieved MMU in RunResult.Governor.
	Adaptive bool
	// MMUFloor is the governor's optional minimum-mutator-utilization
	// target (0 = pure utilization policy). Implies nothing unless
	// Adaptive is set.
	MMUFloor float64
	// PacingAdaptive drives every collector's collection triggers
	// adaptively through the policy pacers (-pacing adaptive): LXR's
	// epoch length scales with load and decrement backlog, G1's IHOP
	// becomes headroom-based, Shenandoah's free-fraction trigger backs
	// off under churn. Off, the pacers reproduce the historical trigger
	// behavior exactly.
	PacingAdaptive bool
	// Interval, when non-zero, runs a periodic reporter beside every
	// execution: each window's pause and request-latency percentiles
	// are computed by differencing cumulative histogram snapshots
	// (telemetry.Subtract) and collected in RunResult.Intervals.
	Interval time.Duration
	Out      io.Writer
	// Bench filters experiments to a subset of benchmarks (nil = all).
	Bench []string
	// Record, when non-nil, observes every completed RunOne execution
	// (cmd/lxr-bench -json collects RunSummary digests through it).
	Record func(*RunResult)
	// Trace, when non-nil, attaches the structured GC event tracer
	// (internal/trace) to every RunOne execution.
	Trace *TraceOptions

	// tracer is the per-run tracer instance RunOne threads through
	// NewPlanOpts into the plan; never set by callers.
	tracer *trace.Tracer
}

// TraceOptions configure the GC event tracer for a run.
type TraceOptions struct {
	// Flight, when positive, selects flight-recorder mode: each shard
	// ring retains only the trailing Flight events (overwrite-oldest),
	// and Dump fires when an interval window flags drift or the run
	// fails — at most once per run. 0 selects full-run capture, where
	// Dump fires once at the end of every run.
	Flight int
	// Cap overrides the per-shard ring capacity for full-run capture
	// (0 = trace.DefaultShardCap; rounded up to a power of two).
	Cap int
	// Dump receives the run's tracer at the dump point. label is
	// "bench/collector"; reason is "end", "failed", or
	// "drift:window-N". Required: a nil Dump disables tracing.
	Dump func(label, reason string, tr *trace.Tracer)
}

// WithDefaults fills zero fields.
func (o Options) WithDefaults() Options {
	if o.Scale == (workload.Scale{}) {
		o.Scale = workload.DefaultScale()
	}
	if o.GCThreads == 0 {
		o.GCThreads = 4
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
	return o
}

func (o Options) selected(specs []workload.Spec) []workload.Spec {
	if len(o.Bench) == 0 {
		return specs
	}
	want := map[string]bool{}
	for _, b := range o.Bench {
		want[b] = true
	}
	out := []workload.Spec{}
	for _, s := range specs {
		if want[s.Name] {
			out = append(out, s)
		}
	}
	return out
}

// RunResult is one (benchmark, collector, heap) execution.
type RunResult struct {
	Bench     string
	Collector string
	HeapBytes int
	OK        bool // false: collector cannot run (missing data point)

	Wall time.Duration
	QPS  float64
	// Latency is the merged request-latency histogram in nanoseconds
	// (request workloads only; nil for batch runs).
	Latency *telemetry.Histogram
	Pauses  []vm.Pause
	// PauseHist holds the per-phase pause-duration histograms (ns),
	// keyed by pause kind ("young", "mixed", "rc+mark", ...).
	PauseHist map[string]*telemetry.Histogram
	// Hists holds the run's named distributions (per-pause per-worker
	// item counts under vm.HistWorkerPauseItems + phase kind).
	Hists map[string]*telemetry.Histogram
	// MMU is the minimum-mutator-utilization curve computed from the
	// pause timeline over telemetry.DefaultMMUWindows.
	MMU      []telemetry.MMUPoint
	Counters map[string]int64
	GCWork   time.Duration
	ConcWork time.Duration
	MutBusy  time.Duration

	mergedPause *telemetry.Histogram // lazy union of PauseHist

	// Scheduler utilization (collectors built on the gcwork pool).
	ConcWorkers int                 // configured between-pause borrow width
	WorkerStats []gcwork.WorkerStat // per-worker items, split pause/loan
	Loans       int64               // between-pause loans served
	LoanItems   int64               // items processed on loaned workers

	// Governor is the adaptive loan-width governor's run record (nil
	// when the borrow width was static).
	Governor *conctrl.Trace

	// Pacing is the pacer's archived decision record: every fired
	// trigger with its signal snapshot and the threshold in force, plus
	// every adaptive threshold adjustment.
	Pacing *policy.Trace

	// Intervals holds the periodic reporter's per-window digests
	// (Options.Interval; nil otherwise).
	Intervals []IntervalReport
}

// gcTelemetry is implemented by plans exposing gcwork pool utilization
// and pacing records.
type gcTelemetry interface {
	GCWorkerStats() []gcwork.WorkerStat
	GCLoanStats() (loans, items int64)
	ConcWorkers() int
	GovernorTrace() *conctrl.Trace
	PacingTrace() *policy.Trace
}

// PauseHistMerged returns the union of the per-phase pause histograms
// (all pauses regardless of phase), computed once.
func (r *RunResult) PauseHistMerged() *telemetry.Histogram {
	if r.mergedPause == nil {
		r.mergedPause = telemetry.NewHistogram(telemetry.PauseConfig())
		for _, h := range r.PauseHist {
			r.mergedPause.Add(h)
		}
	}
	return r.mergedPause
}

// PausePercentile returns the p-th percentile pause in milliseconds,
// from the merged pause histogram (bucket error documented on
// telemetry.Config; exact at p=100).
func (r *RunResult) PausePercentile(p float64) float64 {
	return float64(r.PauseHistMerged().Percentile(p)) / float64(time.Millisecond)
}

// LatencyPercentileMS returns the p-th percentile request latency in
// milliseconds (0 for batch runs).
func (r *RunResult) LatencyPercentileMS(p float64) float64 {
	if r.Latency == nil {
		return 0
	}
	return float64(r.Latency.Percentile(p)) / float64(time.Millisecond)
}

// TotalSTW sums stop-the-world time.
func (r *RunResult) TotalSTW() time.Duration {
	var t time.Duration
	for _, p := range r.Pauses {
		t += p.Dur
	}
	return t
}

// RunOne executes one benchmark under one collector at heapFactor times
// the scaled minimum heap. rate > 0 meters request arrivals (request
// workloads only).
func RunOne(spec workload.Spec, collector string, heapFactor float64, rate float64, opts Options) *RunResult {
	opts = opts.WithDefaults()
	sz := opts.Scale.Size(spec)
	heap := int(heapFactor * float64(sz.MinHeapBytes))
	res := &RunResult{Bench: spec.Name, Collector: collector, HeapBytes: heap}
	if opts.Record != nil {
		defer func() { opts.Record(res) }()
	}
	label := fmt.Sprintf("%s/%s", spec.Name, collector)
	var dump func(reason string)
	if opts.Trace != nil && opts.Trace.Dump != nil {
		cap := opts.Trace.Cap
		if opts.Trace.Flight > 0 {
			cap = opts.Trace.Flight
		}
		tr := trace.New(trace.Config{ShardCap: cap, Flight: opts.Trace.Flight > 0})
		opts.tracer = tr
		// At most one dump per run: a drift dump wins over the failure
		// dump, which wins over nothing (flight mode never dumps a
		// healthy run).
		var once sync.Once
		dump = func(reason string) {
			once.Do(func() { opts.Trace.Dump(label, reason, tr) })
		}
	}
	plan := NewPlanOpts(collector, heap, opts)
	if plan == nil {
		return res
	}
	v := vm.New(plan, 8)
	v.SetTracer(opts.tracer) // before the first mutator registers
	defer v.Shutdown()       // idempotent; the explicit call below is first
	onDrift := func(rep IntervalReport) {
		if dump != nil && opts.Trace.Flight > 0 {
			dump(fmt.Sprintf("drift:window-%d", rep.Index))
		}
	}
	failed := false
	// runStart must be the same epoch Wall is measured from, or the MMU
	// computation would mis-place pauses inside [0, Wall]; the workload
	// returns its own start for exactly this.
	var runStart time.Time
	if spec.Request != nil && rate > 0 {
		rec := workload.NewLatencyRecorder(sz)
		var rep *intervalReporter
		if opts.Interval > 0 {
			rep = startIntervalReporter(opts.Interval, v.Stats, rec, opts.Out, label, onDrift)
		}
		rr := workload.RunRequestsRec(v, sz, rate, rec)
		if rep != nil {
			res.Intervals = rep.stopAndCollect()
		}
		runStart = rr.Start
		res.Wall = rr.Wall
		res.QPS = rr.QPS
		res.Latency = rr.Latency
		failed = rr.Failed
	} else {
		var rep *intervalReporter
		if opts.Interval > 0 {
			rep = startIntervalReporter(opts.Interval, v.Stats, nil, opts.Out, label, onDrift)
		}
		br := workload.RunBatch(v, sz)
		if rep != nil {
			res.Intervals = rep.stopAndCollect()
		}
		runStart = br.Start
		res.Wall = br.Wall
		failed = br.Failed
	}
	res.OK = !failed
	// Shut down before reading stats so the concurrent thread's final
	// quanta (and loan telemetry) are fully accounted.
	v.Shutdown()
	res.Pauses = v.Stats.Pauses()
	res.PauseHist = v.Stats.PauseHistograms()
	res.Hists = v.Stats.Histograms()
	res.MMU = telemetry.MMU(pauseIntervals(res.Pauses, runStart), res.Wall, nil)
	res.Counters = v.Stats.Counters()
	res.GCWork = v.Stats.GCWork()
	res.ConcWork = v.Stats.ConcurrentWork()
	res.MutBusy = v.Stats.MutatorBusy()
	if t, ok := plan.(gcTelemetry); ok {
		res.ConcWorkers = t.ConcWorkers()
		res.WorkerStats = t.GCWorkerStats()
		res.Loans, res.LoanItems = t.GCLoanStats()
		res.Governor = t.GovernorTrace()
		res.Pacing = t.PacingTrace()
	}
	if dump != nil {
		// All collector goroutines are down: the drain is quiescent.
		if failed {
			dump("failed")
		} else if opts.Trace.Flight == 0 {
			dump("end")
		}
	}
	return res
}

// --- request-rate calibration --------------------------------------------------

var (
	calMu    sync.Mutex
	calCache = map[string]float64{}
)

// CalibrateRate measures the workload's closed-loop capacity on the
// Parallel collector in a roomy heap and returns 70% of it: the metered
// arrival rate every collector is then driven at, so all collectors face
// an identical load (as the paper's fixed request streams do).
func CalibrateRate(spec workload.Spec, opts Options) float64 {
	opts = opts.WithDefaults()
	key := fmt.Sprintf("%s/%d", spec.Name, opts.Scale.HeapDiv)
	calMu.Lock()
	if r, ok := calCache[key]; ok {
		calMu.Unlock()
		return r
	}
	calMu.Unlock()

	sz := opts.Scale.Size(spec)
	heap := 4 * sz.MinHeapBytes
	v := vm.New(baselines.NewParallel(heap, opts.GCThreads), 8)
	probe := sz.Requests / 5
	if probe < 100 {
		probe = 100
	}
	cap := workload.MeasureCapacity(v, sz, probe)
	v.Shutdown()
	rate := 0.70 * cap
	calMu.Lock()
	calCache[key] = rate
	calMu.Unlock()
	return rate
}

// latPercentiles extracts the standard percentile set in ms from a
// latency histogram (zeros when nil).
func latPercentiles(h *telemetry.Histogram) (p50, p90, p99, p999, p9999 float64) {
	if h == nil {
		return 0, 0, 0, 0, 0
	}
	q := func(p float64) float64 { return float64(h.Percentile(p)) / float64(time.Millisecond) }
	return q(50), q(90), q(99), q(99.9), q(99.99)
}

// pauseIntervals converts pause records to run-relative intervals for
// the MMU computation.
func pauseIntervals(pauses []vm.Pause, runStart time.Time) []telemetry.Interval {
	out := make([]telemetry.Interval, 0, len(pauses))
	for _, p := range pauses {
		out = append(out, telemetry.Interval{Start: p.Start.Sub(runStart), Dur: p.Dur})
	}
	return out
}
