package harness_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"lxr/internal/harness"
	"lxr/internal/workload"
)

func quickOpts(buf *bytes.Buffer) harness.Options {
	return harness.Options{
		Scale:     workload.QuickScale(),
		GCThreads: 2,
		Out:       buf,
	}
}

func TestRunOneBatch(t *testing.T) {
	spec, ok := workload.ByName("fop")
	if !ok {
		t.Fatal("missing spec")
	}
	for _, c := range []string{harness.CLXR, harness.CG1, harness.CSerial} {
		r := harness.RunOne(spec, c, 2, 0, quickOpts(&bytes.Buffer{}))
		if !r.OK {
			t.Fatalf("%s did not run", c)
		}
		if r.Wall <= 0 {
			t.Fatalf("%s: no wall time", c)
		}
	}
}

func TestRunOneRequests(t *testing.T) {
	spec, _ := workload.ByName("lusearch")
	opts := quickOpts(&bytes.Buffer{})
	rate := harness.CalibrateRate(spec, opts)
	if rate <= 0 {
		t.Fatal("calibration failed")
	}
	r := harness.RunOne(spec, harness.CLXR, 2, rate, opts)
	if !r.OK || len(r.Latencies) == 0 {
		t.Fatal("no latencies recorded")
	}
	if r.PausePercentile(50) < 0 {
		t.Fatal("bad pause percentile")
	}
}

func TestTable1Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	rows := harness.RunTable1(quickOpts(&buf))
	if len(rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(rows))
	}
	out := buf.String()
	for _, want := range []string{"G1", "Shenandoah", "LXR", "Table 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Shape check: LXR should not be drastically slower than G1.
	g1, lxr := rows[0], rows[2]
	if g1.OK && lxr.OK && lxr.Wall.Seconds() > 3*g1.Wall.Seconds() {
		t.Errorf("LXR %.2fs vs G1 %.2fs: unexpectedly slow", lxr.Wall.Seconds(), g1.Wall.Seconds())
	}
}

func TestNewPlanZGCUnavailableSmallHeap(t *testing.T) {
	if harness.NewPlan(harness.CZGC, 8<<20, 2) != nil {
		t.Fatal("ZGC should be unavailable at 8 MB")
	}
}

func TestRecordHookAndSummaryJSON(t *testing.T) {
	spec, _ := workload.ByName("fop")
	opts := quickOpts(&bytes.Buffer{})
	var recorded []*harness.RunResult
	opts.Record = func(r *harness.RunResult) { recorded = append(recorded, r) }
	r := harness.RunOne(spec, harness.CLXR, 2, 0, opts)
	if len(recorded) != 1 || recorded[0] != r {
		t.Fatalf("Record hook saw %d results", len(recorded))
	}
	s := r.Summary()
	if !s.OK || s.Bench != "fop" || s.Collector != harness.CLXR {
		t.Fatalf("bad summary: %+v", s)
	}
	if s.WallMS <= 0 || s.PauseCount == 0 || s.PauseMS["max"] <= 0 {
		t.Fatalf("summary missing metrics: %+v", s)
	}
	var buf bytes.Buffer
	if err := harness.WriteJSON(&buf, []harness.RunSummary{s}); err != nil {
		t.Fatal(err)
	}
	var back []harness.RunSummary
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(back) != 1 || back[0].Bench != "fop" {
		t.Fatalf("roundtrip mismatch: %+v", back)
	}
}
