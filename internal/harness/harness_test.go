package harness_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"lxr/internal/harness"
	"lxr/internal/workload"
)

func quickOpts(buf *bytes.Buffer) harness.Options {
	return harness.Options{
		Scale:     workload.QuickScale(),
		GCThreads: 2,
		Out:       buf,
	}
}

func TestRunOneBatch(t *testing.T) {
	spec, ok := workload.ByName("fop")
	if !ok {
		t.Fatal("missing spec")
	}
	for _, c := range []string{harness.CLXR, harness.CG1, harness.CSerial} {
		r := harness.RunOne(spec, c, 2, 0, quickOpts(&bytes.Buffer{}))
		if !r.OK {
			t.Fatalf("%s did not run", c)
		}
		if r.Wall <= 0 {
			t.Fatalf("%s: no wall time", c)
		}
	}
}

func TestRunOneRequests(t *testing.T) {
	spec, _ := workload.ByName("lusearch")
	opts := quickOpts(&bytes.Buffer{})
	rate := harness.CalibrateRate(spec, opts)
	if rate <= 0 {
		t.Fatal("calibration failed")
	}
	r := harness.RunOne(spec, harness.CLXR, 2, rate, opts)
	if !r.OK || r.Latency == nil || r.Latency.Count() == 0 {
		t.Fatal("no latencies recorded")
	}
	if r.Latency.Count() != int64(opts.Scale.Size(spec).Requests) {
		t.Fatalf("latency histogram holds %d samples, want %d requests",
			r.Latency.Count(), opts.Scale.Size(spec).Requests)
	}
	if r.PausePercentile(50) < 0 {
		t.Fatal("bad pause percentile")
	}
	if p50, p999 := r.LatencyPercentileMS(50), r.LatencyPercentileMS(99.9); p50 <= 0 || p999 < p50 {
		t.Fatalf("bad latency percentiles: p50 %v p99.9 %v", p50, p999)
	}
	// Pause attribution: every pause must land in a phase histogram,
	// and the merged histogram must agree with the pause records.
	var phaseTotal int64
	for _, h := range r.PauseHist {
		phaseTotal += h.Count()
	}
	if phaseTotal != int64(len(r.Pauses)) {
		t.Fatalf("phase histograms hold %d pauses, records hold %d", phaseTotal, len(r.Pauses))
	}
	// MMU: full curve with utilizations in [0,1].
	if len(r.MMU) == 0 {
		t.Fatal("no MMU curve")
	}
	for _, pt := range r.MMU {
		if pt.Utilization < 0 || pt.Utilization > 1 {
			t.Fatalf("MMU out of range: %+v", pt)
		}
	}
	// Per-pause worker utilization histograms (satellite of the pause
	// attribution): LXR drains on pool workers, so phase-tagged item
	// distributions must exist.
	found := false
	for name := range r.Hists {
		if strings.HasPrefix(name, "gcwork.pause_items.") {
			found = true
		}
	}
	if !found {
		t.Fatal("no per-pause worker item histograms recorded")
	}
}

func TestTable1Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	rows := harness.RunTable1(quickOpts(&buf))
	if len(rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(rows))
	}
	out := buf.String()
	for _, want := range []string{"G1", "Shenandoah", "LXR", "Table 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Shape check: LXR should not be drastically slower than G1.
	g1, lxr := rows[0], rows[2]
	if g1.OK && lxr.OK && lxr.Wall.Seconds() > 3*g1.Wall.Seconds() {
		t.Errorf("LXR %.2fs vs G1 %.2fs: unexpectedly slow", lxr.Wall.Seconds(), g1.Wall.Seconds())
	}
}

func TestNewPlanZGCUnavailableSmallHeap(t *testing.T) {
	if harness.NewPlan(harness.CZGC, 8<<20, 2) != nil {
		t.Fatal("ZGC should be unavailable at 8 MB")
	}
}

func TestRecordHookAndSummaryJSON(t *testing.T) {
	spec, _ := workload.ByName("fop")
	opts := quickOpts(&bytes.Buffer{})
	var recorded []*harness.RunResult
	opts.Record = func(r *harness.RunResult) { recorded = append(recorded, r) }
	r := harness.RunOne(spec, harness.CLXR, 2, 0, opts)
	if len(recorded) != 1 || recorded[0] != r {
		t.Fatalf("Record hook saw %d results", len(recorded))
	}
	s := r.Summary()
	if !s.OK || s.Bench != "fop" || s.Collector != harness.CLXR {
		t.Fatalf("bad summary: %+v", s)
	}
	if s.WallMS <= 0 || s.PauseCount == 0 || s.PauseMS["max"] <= 0 {
		t.Fatalf("summary missing metrics: %+v", s)
	}
	if len(s.PausePhaseMS) == 0 {
		t.Fatalf("summary missing per-phase pause digests: %+v", s)
	}
	var phases int64
	for _, d := range s.PausePhaseMS {
		phases += d.Count
	}
	if phases != int64(s.PauseCount) {
		t.Fatalf("phase digests cover %d pauses of %d", phases, s.PauseCount)
	}
	if len(s.MMU) == 0 {
		t.Fatalf("summary missing MMU curve")
	}
	if len(s.WorkerPauseItemsByPhase) == 0 {
		t.Fatalf("summary missing per-pause worker item digests")
	}
	d := r.HistDump("test")
	if len(d.Pauses) == 0 || d.Bench != "fop" {
		t.Fatalf("bad hist dump: %+v", d)
	}
	for kind, e := range d.Pauses {
		var n int64
		for _, b := range e.Buckets {
			n += b.Count
		}
		if n != e.Count {
			t.Fatalf("dump %q: bucket counts %d != count %d", kind, n, e.Count)
		}
	}
	var buf bytes.Buffer
	if err := harness.WriteJSON(&buf, []harness.RunSummary{s}); err != nil {
		t.Fatal(err)
	}
	var back []harness.RunSummary
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(back) != 1 || back[0].Bench != "fop" {
		t.Fatalf("roundtrip mismatch: %+v", back)
	}
}

// TestRunOneAdaptiveGovernorAndIntervals: with Adaptive and Interval
// set, a request run must archive a governor trace (width trace with
// the initial point, bounds honoured) and at least one interval report
// whose windows partition the run.
func TestRunOneAdaptiveGovernorAndIntervals(t *testing.T) {
	spec, _ := workload.ByName("lusearch")
	opts := quickOpts(&bytes.Buffer{})
	opts.Adaptive = true
	opts.MMUFloor = 0.3
	opts.Interval = 10 * time.Millisecond
	rate := harness.CalibrateRate(spec, opts)
	r := harness.RunOne(spec, harness.CLXR, 2, rate, opts)
	if !r.OK {
		t.Fatal("adaptive run failed")
	}
	g := r.Governor
	if g == nil {
		t.Fatal("adaptive run recorded no governor trace")
	}
	if g.MMUFloor != 0.3 {
		t.Fatalf("governor floor %v, want 0.3", g.MMUFloor)
	}
	if len(g.Widths) == 0 || g.FinalWidth < g.MinWidth || g.FinalWidth > g.MaxWidth {
		t.Fatalf("bad governor trace: %+v", g)
	}
	if len(r.Intervals) == 0 {
		t.Fatal("no interval reports")
	}
	var pauses, requests int64
	for i, w := range r.Intervals {
		if w.Index != i {
			t.Fatalf("interval %d has index %d", i, w.Index)
		}
		if i > 0 && w.StartMS != r.Intervals[i-1].EndMS {
			t.Fatalf("interval %d does not start where %d ended", i, i-1)
		}
		pauses += w.Pauses
		requests += w.Requests
	}
	// The windows partition the run: summed window counts can not
	// exceed the whole-run totals (the reporter stops after the
	// workload, so they match exactly for requests).
	if requests != r.Latency.Count() {
		t.Fatalf("interval requests sum %d, whole-run %d", requests, r.Latency.Count())
	}
	if pauses > int64(len(r.Pauses)) {
		t.Fatalf("interval pauses sum %d exceeds whole-run %d", pauses, len(r.Pauses))
	}
	// The governor rides into the JSON summary.
	s := r.Summary()
	if s.Governor == nil || len(s.Intervals) != len(r.Intervals) {
		t.Fatal("summary dropped governor or intervals")
	}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"width_trace", "achieved_mmu", "intervals"} {
		if !strings.Contains(string(b), want) {
			t.Fatalf("summary JSON missing %q", want)
		}
	}
}

// TestRunOnePacingTrace: every run — static or adaptive — archives a
// populated pacing record that rides into the JSON summary.
func TestRunOnePacingTrace(t *testing.T) {
	spec, _ := workload.ByName("fop")
	for _, c := range []string{harness.CLXR, harness.CG1, harness.CSerial} {
		r := harness.RunOne(spec, c, 2, 0, quickOpts(&bytes.Buffer{}))
		if !r.OK {
			t.Fatalf("%s did not run", c)
		}
		if r.Pacing == nil {
			t.Fatalf("%s: no pacing trace", c)
		}
		if r.Pacing.Mode != "static" {
			t.Fatalf("%s: default mode %q, want static", c, r.Pacing.Mode)
		}
		if r.Pacing.Fired == 0 || len(r.Pacing.Decisions) == 0 {
			t.Fatalf("%s: pacing trace empty: %+v", c, r.Pacing)
		}
		b, err := json.Marshal(r.Summary())
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(b), "\"pacing\"") {
			t.Fatalf("%s: summary JSON missing the pacing key", c)
		}
	}
	// Adaptive mode is recorded as such.
	opts := quickOpts(&bytes.Buffer{})
	opts.PacingAdaptive = true
	r := harness.RunOne(spec, harness.CLXR, 2, 0, opts)
	if !r.OK || r.Pacing == nil || r.Pacing.Mode != "adaptive" {
		t.Fatalf("adaptive pacing run: %+v", r.Pacing)
	}
}

// TestDriftTrackerFlagsDepartures: windows whose p99 departs more than
// 2x from the trailing mean are flagged, in either direction, and the
// first window never is.
func TestDriftTrackerFlagsDepartures(t *testing.T) {
	var d harness.DriftTrackerForTest
	seq := []struct {
		v    float64
		want bool
	}{
		{10, false}, // no baseline yet
		{11, false},
		{12, false}, // trailing mean ~10.5
		{30, true},  // > 2x mean
		{12, false}, // mean now dragged up by the spike, 12 is within 2x
		{4, true},   // < half the (spiked) mean
		{11, false},
	}
	for i, s := range seq {
		if got := d.Observe(s.v); got != s.want {
			t.Fatalf("window %d (p99=%v): drift=%v, want %v", i, s.v, got, s.want)
		}
	}
}
