package harness

import (
	"fmt"
	"text/tabwriter"
	"time"

	"lxr/internal/core"
	"lxr/internal/stats"
	"lxr/internal/vm"
	"lxr/internal/workload"
)

// RunTable1 regenerates Table 1: lusearch at a 1.3× heap under G1,
// Shenandoah and LXR, plus Shenandoah at a 10× heap — throughput (QPS,
// time), query latency percentiles and GC pause percentiles.
func RunTable1(opts Options) []*RunResult {
	opts = opts.WithDefaults()
	spec, _ := workload.ByName("lusearch")
	rate := CalibrateRate(spec, opts)
	rows := []*RunResult{
		RunOne(spec, CG1, 1.3, rate, opts),
		RunOne(spec, CShen, 1.3, rate, opts),
		RunOne(spec, CLXR, 1.3, rate, opts),
	}
	shen10 := RunOne(spec, CShen, 10, rate, opts)
	shen10.Collector = "Shenandoah10x"
	rows = append(rows, shen10)

	w := tabwriter.NewWriter(opts.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Table 1: lusearch @1.3x heap — throughput, query latency, GC pauses")
	fmt.Fprintln(w, "Algorithm\tQPS\tTime(s)\tq50ms\tq99\tq99.9\tq99.99\tgc50ms\tgc99\tgc99.9\tgc99.99")
	for _, r := range rows {
		if !r.OK {
			fmt.Fprintf(w, "%s\t-\n", r.Collector)
			continue
		}
		p50, _, p99, p999, p9999 := latPercentiles(r.Latency)
		g := func(p float64) float64 { return r.PausePercentile(p) }
		fmt.Fprintf(w, "%s\t%.0f\t%.2f\t%.1f\t%.1f\t%.1f\t%.1f\t%.2f\t%.2f\t%.2f\t%.2f\n",
			r.Collector, r.QPS, r.Wall.Seconds(), p50, p99, p999, p9999, g(50), g(99), g(99.9), g(99.99))
	}
	w.Flush()
	return rows
}

// RunTable3 regenerates Table 3: benchmark characteristics — the paper's
// demographics next to the values the synthetic workload realises on
// this substrate (measured under LXR at a 2× heap).
func RunTable3(opts Options) {
	opts = opts.WithDefaults()
	w := tabwriter.NewWriter(opts.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Table 3: benchmark characteristics (paper -> simulated)")
	fmt.Fprintln(w, "Benchmark\theapMB(sim)\tallocMB(sim)\talloc/heap\tMB/s(sim)\tobj\tlrg%\tsrv%(meas)")
	for _, spec := range opts.selected(workload.Suite()) {
		sz := opts.Scale.Size(spec)
		r := RunOne(spec, CLXR, 2, 0, opts)
		rate := float64(0)
		if r.OK && r.Wall > 0 {
			rate = float64(r.Counters[core.CtrAllocBytes]) / (1 << 20) / r.Wall.Seconds()
		}
		measSrv := float64(0)
		if a := r.Counters[core.CtrAllocBytes]; a > 0 {
			measSrv = 100 * float64(r.Counters[core.CtrSurvivedBytes]) / float64(a)
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.0f\t%d\t%d\t%d->%.1f\n",
			spec.Name, sz.MinHeapBytes>>20, sz.AllocBytes>>20,
			sz.AllocBytes/int64(sz.MinHeapBytes), rate, spec.ObjSize,
			spec.LargePct, spec.SurvivalPct, measSrv)
	}
	w.Flush()
}

// RunTable4 regenerates Table 4 (and provides the data for Figure 5):
// request latency percentiles for the four latency-sensitive workloads
// under G1, LXR, Shenandoah and ZGC at a 1.3× heap.
func RunTable4(opts Options) map[string]map[string]*RunResult {
	opts = opts.WithDefaults()
	out := map[string]map[string]*RunResult{}
	w := tabwriter.NewWriter(opts.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Table 4: request latency (ms) @1.3x heap")
	fmt.Fprintln(w, "Benchmark\tCollector\tp50\tp90\tp99\tp99.9\tp99.99")
	for _, spec := range opts.selected(workload.LatencySuite()) {
		rate := CalibrateRate(spec, opts)
		out[spec.Name] = map[string]*RunResult{}
		for _, c := range []string{CG1, CLXR, CShen, CZGC} {
			r := RunOne(spec, c, 1.3, rate, opts)
			out[spec.Name][c] = r
			if !r.OK {
				fmt.Fprintf(w, "%s\t%s\t-\t-\t-\t-\t-\n", spec.Name, c)
				continue
			}
			p50, p90, p99, p999, p9999 := latPercentiles(r.Latency)
			fmt.Fprintf(w, "%s\t%s\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\n",
				spec.Name, c, p50, p90, p99, p999, p9999)
		}
	}
	w.Flush()
	return out
}

// RunFigure5 renders latency response curves (CSV: one series per
// collector per benchmark — percentile, latency ms) from Table 4 runs.
func RunFigure5(opts Options) {
	opts = opts.WithDefaults()
	data := RunTable4(opts)
	fmt.Fprintln(opts.Out, "\nFigure 5: latency response curves (CSV)")
	fmt.Fprintln(opts.Out, "benchmark,collector,percentile,latency_ms")
	grid := []float64{0, 50, 90, 99, 99.9, 99.99, 99.999}
	for bench, byCol := range data {
		for col, r := range byCol {
			if !r.OK {
				continue
			}
			for _, p := range grid {
				fmt.Fprintf(opts.Out, "%s,%s,%v,%.2f\n", bench, col, p, r.LatencyPercentileMS(p))
			}
		}
	}
}

// RunTable5 regenerates Table 5: geometric-mean 99.99% latency (four
// latency benchmarks) and time (all selected benchmarks) relative to G1,
// at 1.3×, 2× and 6× heaps.
func RunTable5(opts Options) {
	opts = opts.WithDefaults()
	w := tabwriter.NewWriter(opts.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Table 5: geomean 99.99% latency and time, relative to G1")
	fmt.Fprintln(w, "Heap\tLXR lat\tShen lat\tZGC lat\tLXR time\tShen time\tZGC time")
	for _, factor := range []float64{1.3, 2, 6} {
		relLat := map[string][]float64{}
		for _, spec := range opts.selected(workload.LatencySuite()) {
			rate := CalibrateRate(spec, opts)
			g1 := RunOne(spec, CG1, factor, rate, opts)
			if !g1.OK {
				continue
			}
			_, _, _, _, g1p := latPercentiles(g1.Latency)
			for _, c := range []string{CLXR, CShen, CZGC} {
				r := RunOne(spec, c, factor, rate, opts)
				if r.OK && g1p > 0 {
					_, _, _, _, p := latPercentiles(r.Latency)
					relLat[c] = append(relLat[c], p/g1p)
				}
			}
		}
		relTime := map[string][]float64{}
		for _, spec := range opts.selected(workload.Suite()) {
			g1 := RunOne(spec, CG1, factor, 0, opts)
			if !g1.OK || g1.Wall == 0 {
				continue
			}
			for _, c := range []string{CLXR, CShen, CZGC} {
				r := RunOne(spec, c, factor, 0, opts)
				if r.OK {
					relTime[c] = append(relTime[c], r.Wall.Seconds()/g1.Wall.Seconds())
				}
			}
		}
		fmt.Fprintf(w, "%.1fx\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n", factor,
			stats.GeoMean(relLat[CLXR]), stats.GeoMean(relLat[CShen]), stats.GeoMean(relLat[CZGC]),
			stats.GeoMean(relTime[CLXR]), stats.GeoMean(relTime[CShen]), stats.GeoMean(relTime[CZGC]))
	}
	w.Flush()
}

// RunTable6 regenerates Table 6: throughput at a 2× heap for every
// benchmark — G1 time in ms and LXR/Shenandoah/ZGC relative to G1.
func RunTable6(opts Options) map[string]map[string]*RunResult {
	opts = opts.WithDefaults()
	out := map[string]map[string]*RunResult{}
	w := tabwriter.NewWriter(opts.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Table 6: throughput @2x heap (time relative to G1; lower is better)")
	fmt.Fprintln(w, "Benchmark\tG1 ms\tLXR\tShen.\tZGC")
	rel := map[string][]float64{}
	for _, spec := range opts.selected(workload.Suite()) {
		out[spec.Name] = map[string]*RunResult{}
		g1 := RunOne(spec, CG1, 2, 0, opts)
		out[spec.Name][CG1] = g1
		row := fmt.Sprintf("%s\t%d", spec.Name, g1.Wall.Milliseconds())
		for _, c := range []string{CLXR, CShen, CZGC} {
			r := RunOne(spec, c, 2, 0, opts)
			out[spec.Name][c] = r
			if !r.OK || !g1.OK || g1.Wall == 0 {
				row += "\t-"
				continue
			}
			ratio := r.Wall.Seconds() / g1.Wall.Seconds()
			rel[c] = append(rel[c], ratio)
			row += fmt.Sprintf("\t%.3f", ratio)
		}
		fmt.Fprintln(w, row)
	}
	fmt.Fprintf(w, "geomean\t\t%.3f\t%.3f\t%.3f\n",
		stats.GeoMean(rel[CLXR]), stats.GeoMean(rel[CShen]), stats.GeoMean(rel[CZGC]))
	w.Flush()
	return out
}

// RunTable7 regenerates Table 7: LXR's breakdown at a 2× heap —
// concurrency ablations, pause statistics, barrier statistics and
// reclamation shares.
func RunTable7(opts Options) {
	opts = opts.WithDefaults()
	w := tabwriter.NewWriter(opts.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Table 7: LXR breakdown @2x heap")
	fmt.Fprintln(w, "Benchmark\tms\t-SATB\t-LD\tSTW\tGC/s\tp50ms\tp95ms\tSATB%\t!Lazy%\tInc/ms\to/h\tYoung%\tOld%\tSATB%%\tStuck%\tYC%")
	for _, spec := range opts.selected(workload.Suite()) {
		r := RunOne(spec, CLXR, 2, 0, opts)
		if !r.OK || r.Wall == 0 {
			continue
		}
		ratio := func(c string) float64 {
			rr := RunOne(spec, c, 2, 0, opts)
			if !rr.OK {
				return 0
			}
			return rr.Wall.Seconds() / r.Wall.Seconds()
		}
		noSATB, noLD, stw := ratio(CLXRNoSATB), ratio(CLXRNoLD), ratio(CLXRSTW)

		// Barrier overhead: Immix with the (discarded) field-logging
		// barrier vs Immix without, same heap.
		imx := RunOne(spec, CImmix, 2, 0, opts)
		imxWB := RunOne(spec, CImmixWB, 2, 0, opts)
		oh := float64(0)
		if imx.OK && imxWB.OK && imx.Wall > 0 {
			oh = imxWB.Wall.Seconds() / imx.Wall.Seconds()
		}

		c := r.Counters
		pauses := float64(c[core.CtrPauses])
		persec := pauses / r.Wall.Seconds()
		satbPct := pct(c[core.CtrPausesSATB], c[core.CtrPauses])
		lazyPct := pct(c[core.CtrPausesLazy], c[core.CtrPauses])
		incPerMS := float64(c[core.CtrIncrements]) / (float64(r.Wall) / float64(time.Millisecond))

		allocObj := c[core.CtrAllocObjects]
		promoted := c[core.CtrPromoted]
		deadYoung := allocObj - promoted
		deadOld := c[core.CtrDeadOld]
		deadSATB := c[core.CtrDeadSATB]
		totalDead := deadYoung + deadOld + deadSATB
		yc := float64(0)
		if fb := c[core.CtrYoungFreeBlk]; fb > 0 {
			yc = 100 * float64(c[core.CtrYoungEvacBytes]) / float64(fb*32<<10)
		}
		stuck := pct(c[core.CtrStuck], promoted+1)

		fmt.Fprintf(w, "%s\t%d\t%.2f\t%.2f\t%.2f\t%.1f\t%.2f\t%.2f\t%.0f\t%.0f\t%.0f\t%.3f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\n",
			spec.Name, r.Wall.Milliseconds(), noSATB, noLD, stw,
			persec, r.PausePercentile(50), r.PausePercentile(95),
			satbPct, lazyPct, incPerMS, oh,
			pctf(deadYoung, totalDead), pctf(deadOld, totalDead), pctf(deadSATB, totalDead),
			stuck, yc)
	}
	w.Flush()
}

func pct(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

func pctf(a, b int64) float64 { return pct(a, b) }

// LBORow is one point of Figure 7.
type LBORow struct {
	Collector string
	Factor    float64
	TimeLBO   float64 // Fig 7a: wall-clock overhead vs ideal
	CyclesLBO float64 // Fig 7b: total-cycles overhead vs ideal
}

// RunFigure7 regenerates Figure 7: the lower-bound-overhead analysis.
// For each benchmark and heap factor, the baseline approximating the
// ideal collector is the minimum over all collectors of (metric − its
// easily-measured STW cost); each collector's LBO is metric/baseline
// (Cai et al. 2022). Cycles integrate work across all threads: mutator
// busy time plus collector work including concurrent threads.
func RunFigure7(opts Options, factors []float64) []LBORow {
	opts = opts.WithDefaults()
	if len(factors) == 0 {
		factors = []float64{2, 3, 4, 6}
	}
	collectors := []string{CSerial, CParallel, CSemiSpace, CImmix, CG1, CShen, CZGC, CLXR}
	var rows []LBORow
	w := tabwriter.NewWriter(opts.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Figure 7: lower bound overhead (LBO) vs heap size")
	fmt.Fprintln(w, "Collector\tHeap\tTime LBO\tCycles LBO")
	for _, factor := range factors {
		timeOver := map[string][]float64{}
		cycOver := map[string][]float64{}
		for _, spec := range opts.selected(workload.Suite()) {
			type metric struct{ t, cyc, stwT, stwC float64 }
			ms := map[string]metric{}
			baseT, baseC := 0.0, 0.0
			first := true
			for _, c := range collectors {
				r := RunOne(spec, c, factor, 0, opts)
				if !r.OK || r.Wall == 0 {
					continue
				}
				stw := r.TotalSTW().Seconds()
				cyc := (r.MutBusy + r.GCWork).Seconds()
				m := metric{t: r.Wall.Seconds(), cyc: cyc, stwT: stw, stwC: r.GCWork.Seconds()}
				ms[c] = m
				if bt := m.t - m.stwT; first || bt < baseT {
					baseT = bt
				}
				if bc := m.cyc - m.stwC; first || bc < baseC {
					baseC = bc
				}
				first = false
			}
			for c, m := range ms {
				if baseT > 0 {
					timeOver[c] = append(timeOver[c], m.t/baseT)
				}
				if baseC > 0 {
					cycOver[c] = append(cycOver[c], m.cyc/baseC)
				}
			}
		}
		for _, c := range collectors {
			if len(timeOver[c]) == 0 {
				continue
			}
			row := LBORow{Collector: c, Factor: factor,
				TimeLBO: stats.GeoMean(timeOver[c]), CyclesLBO: stats.GeoMean(cycOver[c])}
			rows = append(rows, row)
			fmt.Fprintf(w, "%s\t%.1fx\t%.3f\t%.3f\n", c, factor, row.TimeLBO, row.CyclesLBO)
		}
	}
	w.Flush()
	return rows
}

// RunSensitivity regenerates the §5.4 sensitivity studies that are
// runtime-configurable on this substrate: the lock-free clean-block
// buffer size (8/32/64/128 entries, on the fastest-allocating workload)
// and the survival-threshold trigger. Block size and RC width are
// compile-time geometry here (as in the paper's implementation, where
// each variant is a separate build); see EXPERIMENTS.md.
func RunSensitivity(opts Options) {
	opts = opts.WithDefaults()
	spec, _ := workload.ByName("lusearch")
	sz := opts.Scale.Size(spec)
	w := tabwriter.NewWriter(opts.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Sensitivity (5.4): clean-block buffer size, lusearch @2x")
	fmt.Fprintln(w, "BufferSlots\tTime(ms)")
	for _, slots := range []int{8, 32, 64, 128} {
		p := core.New(core.Config{HeapBytes: 2 * sz.MinHeapBytes, GCThreads: opts.GCThreads, CleanBufferSlots: slots})
		v := vm.New(p, 8)
		br := workload.RunBatch(v, sz)
		v.Shutdown()
		fmt.Fprintf(w, "%d\t%d\n", slots, br.Wall.Milliseconds())
	}
	fmt.Fprintln(w, "Survival threshold sweep, lusearch @2x")
	fmt.Fprintln(w, "Threshold\tTime(ms)\tPauses")
	for _, th := range []int64{1 << 20, 4 << 20, 16 << 20, 64 << 20} {
		p := core.New(core.Config{HeapBytes: 2 * sz.MinHeapBytes, GCThreads: opts.GCThreads, SurvivalThresholdBytes: th})
		v := vm.New(p, 8)
		br := workload.RunBatch(v, sz)
		pauses := v.Stats.PauseCount()
		v.Shutdown()
		fmt.Fprintf(w, "%dMB\t%d\t%d\n", th>>20, br.Wall.Milliseconds(), pauses)
	}
	w.Flush()
}
