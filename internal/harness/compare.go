package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"lxr/internal/fastbench"
	"lxr/internal/telemetry"
)

// Compare implements lxr-bench -compare OLD.json NEW.json: a noise-aware
// differ over the BENCH_*.json artifact formats, for CI regression
// gating against the previous push's artifacts.
//
// Three formats are recognised (both files must be the same one):
//
//   - fastbench reports (BENCH_fastpath.json, kind "fastpath"): each
//     benchmark carries repeated per-sample ns/op measurements, so the
//     test is interval overlap — a regression is claimed only when the
//     new run's *fastest* sample is slower than the old run's *slowest*
//     sample by more than the noise margin. Run-to-run scheduling noise
//     widens the intervals and makes the test conservative, never flaky.
//   - histogram dumps (BENCH_hist.json, []HistDump): pause and latency
//     quantiles (p50/p99/p99.9/max) are recomputed exactly from the
//     sparse bucket dumps and compared with a ratio threshold plus an
//     absolute floor (a quantile must both double and move by ≥ 1 ms to
//     count — sub-millisecond jitter on near-zero quantiles is noise).
//   - run summaries (BENCH_ci.json, []RunSummary): the pre-digested
//     pause/latency percentiles, same ratio + floor rule.
type Compare struct {
	// FastpathMargin is the interval-overlap noise margin (default 0.10:
	// the new minimum must exceed the old maximum by >10%).
	FastpathMargin float64
	// QuantileRatio and QuantileFloorNS gate histogram/summary quantile
	// regressions (defaults 2.0 and 1 ms).
	QuantileRatio   float64
	QuantileFloorNS float64
}

func (c *Compare) setDefaults() {
	if c.FastpathMargin == 0 {
		c.FastpathMargin = 0.10
	}
	if c.QuantileRatio == 0 {
		c.QuantileRatio = 2.0
	}
	if c.QuantileFloorNS == 0 {
		c.QuantileFloorNS = float64(time.Millisecond)
	}
}

// CompareFiles diffs two artifact files, writing a report to w, and
// returns the number of regressions found.
func CompareFiles(w io.Writer, oldPath, newPath string) (int, error) {
	oldData, err := os.ReadFile(oldPath)
	if err != nil {
		return 0, err
	}
	newData, err := os.ReadFile(newPath)
	if err != nil {
		return 0, err
	}
	var c Compare
	return c.Data(w, oldData, newData)
}

// Data diffs two artifacts given as raw JSON.
func (c *Compare) Data(w io.Writer, oldData, newData []byte) (int, error) {
	c.setDefaults()
	oldKind, err := sniff(oldData)
	if err != nil {
		return 0, fmt.Errorf("old artifact: %w", err)
	}
	newKind, err := sniff(newData)
	if err != nil {
		return 0, fmt.Errorf("new artifact: %w", err)
	}
	if oldKind != newKind {
		return 0, fmt.Errorf("artifact formats differ: old is %s, new is %s", oldKind, newKind)
	}
	switch oldKind {
	case "fastpath":
		return c.compareFastpath(w, oldData, newData)
	case "hist":
		return c.compareHist(w, oldData, newData)
	default:
		return c.compareSummaries(w, oldData, newData)
	}
}

// sniff identifies an artifact format: a {"kind":"fastpath"} object, a
// HistDump array (elements carry sparse bucket dumps), or a RunSummary
// array (elements carry pre-digested "pause_ms" percentiles).
func sniff(data []byte) (string, error) {
	var probe struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(data, &probe); err == nil && probe.Kind == "fastpath" {
		return "fastpath", nil
	}
	var arr []map[string]json.RawMessage
	if err := json.Unmarshal(data, &arr); err != nil {
		return "", fmt.Errorf("unrecognised artifact format: %v", err)
	}
	for _, el := range arr {
		if _, ok := el["pause_ms"]; ok {
			return "summary", nil
		}
		if _, ok := el["pauses"]; ok {
			return "hist", nil
		}
		if _, ok := el["latency"]; ok {
			return "hist", nil
		}
	}
	// An empty array (or one with neither key) compares trivially; treat
	// it as summaries.
	return "summary", nil
}

// --- fastpath reports --------------------------------------------------------

func (c *Compare) compareFastpath(w io.Writer, oldData, newData []byte) (int, error) {
	var oldRep, newRep fastbench.Report
	if err := json.Unmarshal(oldData, &oldRep); err != nil {
		return 0, err
	}
	if err := json.Unmarshal(newData, &newRep); err != nil {
		return 0, err
	}
	key := func(r fastbench.Result) string { return r.Collector + " " + r.Bench }
	olds := map[string]fastbench.Result{}
	for _, r := range oldRep.Results {
		olds[key(r)] = r
	}
	regressions := 0
	for _, nr := range newRep.Results {
		or, ok := olds[key(nr)]
		if !ok {
			fmt.Fprintf(w, "fastpath %-22s new benchmark (no baseline)\n", key(nr))
			continue
		}
		delete(olds, key(nr))
		interval := func(r fastbench.Result) string {
			return fmt.Sprintf("%.1f-%.1f ns/op", r.MinNS, r.MaxNS)
		}
		switch {
		case len(nr.SamplesNS) == 0 || len(or.SamplesNS) == 0:
			fmt.Fprintf(w, "fastpath %-22s skipped (no samples)\n", key(nr))
		case nr.MinNS > or.MaxNS*(1+c.FastpathMargin):
			regressions++
			fmt.Fprintf(w, "fastpath %-22s REGRESSION: old %s, new %s (%.2fx)\n",
				key(nr), interval(or), interval(nr), nr.MinNS/or.MaxNS)
		case nr.MaxNS < or.MinNS*(1-c.FastpathMargin):
			fmt.Fprintf(w, "fastpath %-22s improved: old %s, new %s (%.2fx)\n",
				key(nr), interval(or), interval(nr), or.MinNS/nr.MaxNS)
		default:
			fmt.Fprintf(w, "fastpath %-22s ok: old %s, new %s\n",
				key(nr), interval(or), interval(nr))
		}
	}
	for k := range olds {
		fmt.Fprintf(w, "fastpath %-22s missing from new run\n", k)
	}
	fmt.Fprintf(w, "fastpath: %d regression(s)\n", regressions)
	return regressions, nil
}

// --- histogram dumps ---------------------------------------------------------

// exportQuantile recomputes a nearest-rank quantile exactly from a
// sparse bucket dump, mirroring telemetry.Histogram.Percentile (bucket
// upper bound, clamped to the recorded min/max).
func exportQuantile(e *telemetry.Export, p float64) float64 {
	if e.Count == 0 {
		return 0
	}
	rank := int64(float64(e.Count)*p/100 + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > e.Count {
		rank = e.Count
	}
	var seen int64
	for _, b := range e.Buckets {
		seen += b.Count
		if seen >= rank {
			v := b.Hi
			if v > e.Max {
				v = e.Max
			}
			if v < e.Min {
				v = e.Min
			}
			return float64(v)
		}
	}
	return float64(e.Max)
}

var quantiles = []struct {
	name string
	p    float64
}{{"p50", 50}, {"p99", 99}, {"p99.9", 99.9}, {"max", 100}}

// checkQuantile applies the ratio+floor rule to one quantile pair (ns),
// reporting and counting a regression.
func (c *Compare) checkQuantile(w io.Writer, label, q string, oldNS, newNS float64, regressions *int) {
	c.checkQuantileFloor(w, label, q, oldNS, newNS, c.QuantileFloorNS, regressions)
}

func (c *Compare) checkQuantileFloor(w io.Writer, label, q string, oldNS, newNS, floorNS float64, regressions *int) {
	if newNS > oldNS*c.QuantileRatio && newNS-oldNS > floorNS {
		*regressions++
		fmt.Fprintf(w, "%s %s REGRESSION: %.2fms -> %.2fms (%.2fx)\n",
			label, q, oldNS/1e6, newNS/1e6, newNS/oldNS)
	}
}

// mutScaleTailFloorNS is the upper-quantile floor for mutscale cells:
// each (collector, count) cell records only a handful of pauses, so
// p99 ≈ max and a single multi-ms scheduler hiccup on a shared runner
// lands directly in the gated quantile. The p50 — the stable scaling
// signal — keeps the standard 1 ms floor; the tail quantiles only
// flag excursions beyond an isolated-stall magnitude. The O(mutators)
// regressions this suite exists to catch moved these quantiles by
// tens of ms (60× at 1024 mutators pre-sharding), far past the floor.
const mutScaleTailFloorNS = 25 * float64(time.Millisecond)

func (c *Compare) compareHist(w io.Writer, oldData, newData []byte) (int, error) {
	var oldDumps, newDumps []HistDump
	if err := json.Unmarshal(oldData, &oldDumps); err != nil {
		return 0, err
	}
	if err := json.Unmarshal(newData, &newDumps); err != nil {
		return 0, err
	}
	key := func(d HistDump) string {
		return d.Experiment + "/" + d.Bench + "/" + d.Collector
	}
	olds := map[string]HistDump{}
	for _, d := range oldDumps {
		olds[key(d)] = d
	}
	regressions, matched := 0, 0
	for _, nd := range newDumps {
		od, ok := olds[key(nd)]
		if !ok {
			continue
		}
		matched++
		for kind, ne := range nd.Pauses {
			oe, ok := od.Pauses[kind]
			if !ok {
				continue
			}
			for _, q := range quantiles {
				c.checkQuantile(w, fmt.Sprintf("hist %s pause[%s]", key(nd), kind), q.name,
					exportQuantile(&oe, q.p), exportQuantile(&ne, q.p), &regressions)
			}
		}
		if nd.Latency != nil && od.Latency != nil {
			for _, q := range quantiles {
				c.checkQuantile(w, fmt.Sprintf("hist %s latency", key(nd)), q.name,
					exportQuantile(od.Latency, q.p), exportQuantile(nd.Latency, q.p), &regressions)
			}
		}
	}
	fmt.Fprintf(w, "hist: %d run(s) compared, %d quantile regression(s)\n", matched, regressions)
	return regressions, nil
}

// --- run summaries -----------------------------------------------------------

func (c *Compare) compareSummaries(w io.Writer, oldData, newData []byte) (int, error) {
	var oldSums, newSums []RunSummary
	if err := json.Unmarshal(oldData, &oldSums); err != nil {
		return 0, err
	}
	if err := json.Unmarshal(newData, &newSums); err != nil {
		return 0, err
	}
	key := func(s RunSummary) string {
		return s.Experiment + "/" + s.Bench + "/" + s.Collector
	}
	olds := map[string]RunSummary{}
	for _, s := range oldSums {
		olds[key(s)] = s
	}
	regressions, matched := 0, 0
	for _, ns := range newSums {
		ps, ok := olds[key(ns)]
		if !ok || !ns.OK || !ps.OK {
			continue
		}
		matched++
		qs, tailFloor := []string{"p99", "max"}, c.QuantileFloorNS
		if ns.Experiment == "mutscale" {
			qs, tailFloor = []string{"p50", "p99", "max"}, mutScaleTailFloorNS
		}
		floor := func(q string) float64 {
			if q == "p50" {
				return c.QuantileFloorNS
			}
			return tailFloor
		}
		for _, q := range qs {
			if ov, nv := ps.PauseMS[q], ns.PauseMS[q]; ov > 0 || nv > 0 {
				c.checkQuantileFloor(w, fmt.Sprintf("summary %s pause", key(ns)), q,
					ov*1e6, nv*1e6, floor(q), &regressions)
			}
		}
		if ps.TTSPMS != nil && ns.TTSPMS != nil {
			for _, q := range qs {
				if ov, nv := ps.TTSPMS[q], ns.TTSPMS[q]; ov > 0 || nv > 0 {
					c.checkQuantileFloor(w, fmt.Sprintf("summary %s ttsp", key(ns)), q,
						ov*1e6, nv*1e6, floor(q), &regressions)
				}
			}
		}
		// Per-phase pause digests: a regression in one pipeline phase can
		// hide inside an unchanged total when another phase improved (or
		// shift between kinds), so each phase kind's p99 is gated
		// separately with the standard ratio + floor rule. Phases present
		// on only one side are population shifts, not regressions.
		if ps.PausePhaseMS != nil && ns.PausePhaseMS != nil {
			for phase, ne := range ns.PausePhaseMS {
				oe, ok := ps.PausePhaseMS[phase]
				if !ok || oe.Count == 0 || ne.Count == 0 {
					continue
				}
				if oe.P99 > 0 || ne.P99 > 0 {
					c.checkQuantileFloor(w, fmt.Sprintf("summary %s phase[%s]", key(ns), phase), "p99",
						oe.P99*1e6, ne.P99*1e6, c.QuantileFloorNS, &regressions)
				}
			}
		}
		// Request latency is not gated for mutscale cells: with far more
		// mutators than cores, open-loop arrival-to-completion latency is
		// dominated by goroutine wakeup lateness (timer/scheduler jitter,
		// 100+ ms tails in runs whose pauses stayed under 10 ms) — pause
		// and TTSP quantiles are that experiment's gated signals.
		if ps.LatencyMS != nil && ns.LatencyMS != nil && ns.Experiment != "mutscale" {
			for _, q := range []string{"p99", "p99.9"} {
				c.checkQuantile(w, fmt.Sprintf("summary %s latency", key(ns)), q,
					ps.LatencyMS[q]*1e6, ns.LatencyMS[q]*1e6, &regressions)
			}
		}
	}
	fmt.Fprintf(w, "summary: %d run(s) compared, %d regression(s)\n", matched, regressions)
	return regressions, nil
}
