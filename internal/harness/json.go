package harness

import (
	"encoding/json"
	"io"
	"time"
)

// RunSummary is the machine-readable digest of one RunResult, emitted
// by cmd/lxr-bench -json so the perf trajectory can be tracked across
// PRs without parsing rendered tables.
type RunSummary struct {
	Experiment string `json:"experiment,omitempty"`
	Bench      string `json:"bench"`
	Collector  string `json:"collector"`
	HeapBytes  int    `json:"heap_bytes"`
	OK         bool   `json:"ok"`

	WallMS float64 `json:"wall_ms"`
	QPS    float64 `json:"qps,omitempty"`

	// Request latency percentiles in ms (request workloads only).
	LatencyMS map[string]float64 `json:"latency_ms,omitempty"`

	// GC pause percentiles/max in ms, and pause count.
	PauseMS    map[string]float64 `json:"pause_ms"`
	PauseCount int                `json:"pause_count"`

	TotalSTWMS float64 `json:"total_stw_ms"`
	GCWorkMS   float64 `json:"gc_work_ms"`
	ConcWorkMS float64 `json:"conc_work_ms"`

	// Scheduler utilization: how the gcwork pool's workers were used,
	// split by phase kind. worker_pause_items[i] / worker_loan_items[i]
	// count work items worker i processed inside stop-the-world phases
	// and on loan to the concurrent phases respectively; conc_loans and
	// conc_loan_items aggregate the between-pause lending activity, and
	// conc_workers records the configured borrow width.
	ConcWorkers      int     `json:"conc_workers,omitempty"`
	ConcLoans        int64   `json:"conc_loans,omitempty"`
	ConcLoanItems    int64   `json:"conc_loan_items,omitempty"`
	WorkerPauseItems []int64 `json:"worker_pause_items,omitempty"`
	WorkerLoanItems  []int64 `json:"worker_loan_items,omitempty"`
}

// Summary digests a RunResult.
func (r *RunResult) Summary() RunSummary {
	s := RunSummary{
		Bench:     r.Bench,
		Collector: r.Collector,
		HeapBytes: r.HeapBytes,
		OK:        r.OK,
	}
	if !r.OK {
		return s
	}
	s.WallMS = float64(r.Wall) / float64(time.Millisecond)
	s.QPS = r.QPS
	if len(r.Latencies) > 0 {
		p50, p90, p99, p999, p9999 := latPercentiles(r.Latencies)
		s.LatencyMS = map[string]float64{
			"p50": p50, "p90": p90, "p99": p99, "p99.9": p999, "p99.99": p9999,
		}
	}
	s.PauseCount = len(r.Pauses)
	s.PauseMS = map[string]float64{
		"p50":    r.PausePercentile(50),
		"p95":    r.PausePercentile(95),
		"p99":    r.PausePercentile(99),
		"p99.9":  r.PausePercentile(99.9),
		"p99.99": r.PausePercentile(99.99),
		"max":    r.PausePercentile(100),
	}
	s.TotalSTWMS = float64(r.TotalSTW()) / float64(time.Millisecond)
	s.GCWorkMS = float64(r.GCWork) / float64(time.Millisecond)
	s.ConcWorkMS = float64(r.ConcWork) / float64(time.Millisecond)
	s.ConcWorkers = r.ConcWorkers
	s.ConcLoans = r.Loans
	s.ConcLoanItems = r.LoanItems
	if len(r.WorkerStats) > 0 {
		s.WorkerPauseItems = make([]int64, len(r.WorkerStats))
		s.WorkerLoanItems = make([]int64, len(r.WorkerStats))
		for i, ws := range r.WorkerStats {
			s.WorkerPauseItems[i] = ws.PauseItems
			s.WorkerLoanItems[i] = ws.LoanItems
		}
	}
	return s
}

// WriteJSON renders summaries as an indented JSON array.
func WriteJSON(w io.Writer, sums []RunSummary) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sums)
}
