package harness

import (
	"encoding/json"
	"io"
	"strings"
	"time"

	"lxr/internal/conctrl"
	"lxr/internal/policy"
	"lxr/internal/telemetry"
	"lxr/internal/vm"
)

// PhaseDigest summarises one phase-tagged distribution (pause durations
// of one pause kind, in ms).
type PhaseDigest struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p99.9"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
}

func msDigest(h *telemetry.Histogram) PhaseDigest {
	q := func(p float64) float64 { return float64(h.Percentile(p)) / float64(time.Millisecond) }
	return PhaseDigest{
		Count: h.Count(),
		P50:   q(50), P90: q(90), P99: q(99), P999: q(99.9),
		Max:  float64(h.Max()) / float64(time.Millisecond),
		Mean: h.Mean() / float64(time.Millisecond),
	}
}

// ItemsDigest summarises a per-pause per-worker work-item distribution:
// one sample per (pause, worker), so spread between P50 and Max is the
// phase's load-imbalance signal.
type ItemsDigest struct {
	Count int64   `json:"count"` // samples = pauses × workers
	P50   int64   `json:"p50"`
	P99   int64   `json:"p99"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
}

// RunSummary is the machine-readable digest of one RunResult, emitted
// by cmd/lxr-bench -json so the perf trajectory can be tracked across
// PRs without parsing rendered tables.
type RunSummary struct {
	Experiment string `json:"experiment,omitempty"`
	Bench      string `json:"bench"`
	Collector  string `json:"collector"`
	HeapBytes  int    `json:"heap_bytes"`
	OK         bool   `json:"ok"`

	WallMS float64 `json:"wall_ms"`
	QPS    float64 `json:"qps,omitempty"`

	// Request latency percentiles in ms (request workloads only), from
	// the merged latency histogram, plus the total metered requests.
	LatencyMS map[string]float64 `json:"latency_ms,omitempty"`
	Requests  int64              `json:"requests,omitempty"`

	// GC pause percentiles/max in ms over all phases, and pause count.
	PauseMS    map[string]float64 `json:"pause_ms"`
	PauseCount int                `json:"pause_count"`

	// TTSPMS is the time-to-safepoint distribution in ms (how long each
	// stop-the-world rendezvous took to bring every mutator to rest),
	// computed exactly from the recorded pauses. The mutscale experiment
	// gates on it; omitted when a run had no pauses.
	TTSPMS map[string]float64 `json:"ttsp_ms,omitempty"`

	// PausePhaseMS breaks the pause distribution down by phase kind
	// ("young", "mixed", "rc", "rc+mark", ...), the paper's per-phase
	// pause attribution.
	PausePhaseMS map[string]PhaseDigest `json:"pause_phase_ms,omitempty"`

	// MMU is the minimum-mutator-utilization curve over the standard
	// window grid, computed from the pause timeline.
	MMU []telemetry.MMUPoint `json:"mmu,omitempty"`

	TotalSTWMS float64 `json:"total_stw_ms"`
	GCWorkMS   float64 `json:"gc_work_ms"`
	ConcWorkMS float64 `json:"conc_work_ms"`

	// Scheduler utilization: how the gcwork pool's workers were used,
	// split by phase kind. worker_pause_items[i] / worker_loan_items[i]
	// count work items worker i processed inside stop-the-world phases
	// and on loan to the concurrent phases respectively; conc_loans and
	// conc_loan_items aggregate the between-pause lending activity, and
	// conc_workers records the configured borrow width.
	ConcWorkers      int     `json:"conc_workers,omitempty"`
	ConcLoans        int64   `json:"conc_loans,omitempty"`
	ConcLoanItems    int64   `json:"conc_loan_items,omitempty"`
	WorkerPauseItems []int64 `json:"worker_pause_items,omitempty"`
	WorkerLoanItems  []int64 `json:"worker_loan_items,omitempty"`

	// WorkerPauseItemsByPhase digests the per-pause per-worker item
	// distributions keyed by phase kind (the per-pause refinement of
	// worker_pause_items: localises imbalance to a phase).
	WorkerPauseItemsByPhase map[string]ItemsDigest `json:"worker_pause_items_by_phase,omitempty"`

	// Governor is the adaptive loan-width governor's run record — the
	// width trace, every resize event with its triggering window, and
	// the achieved (worst-window) mutator utilization. Absent when the
	// borrow width was static.
	Governor *conctrl.Trace `json:"governor,omitempty"`

	// Pacing is the policy pacer's archived decision record: every
	// fired trigger (kind, signal snapshot, threshold in force) and
	// every adaptive threshold adjustment, for both pacing modes.
	Pacing *policy.Trace `json:"pacing,omitempty"`

	// Intervals holds the periodic reporter's per-window pause/latency
	// digests (lxr-bench -interval). Absent otherwise.
	Intervals []IntervalReport `json:"intervals,omitempty"`
}

// Summary digests a RunResult.
func (r *RunResult) Summary() RunSummary {
	s := RunSummary{
		Bench:     r.Bench,
		Collector: r.Collector,
		HeapBytes: r.HeapBytes,
		OK:        r.OK,
	}
	if !r.OK {
		return s
	}
	s.WallMS = float64(r.Wall) / float64(time.Millisecond)
	s.QPS = r.QPS
	if r.Latency != nil && r.Latency.Count() > 0 {
		p50, p90, p99, p999, p9999 := latPercentiles(r.Latency)
		s.LatencyMS = map[string]float64{
			"p50": p50, "p90": p90, "p99": p99, "p99.9": p999, "p99.99": p9999,
		}
		s.Requests = r.Latency.Count()
	}
	s.PauseCount = len(r.Pauses)
	s.PauseMS = map[string]float64{
		"p50":    r.PausePercentile(50),
		"p95":    r.PausePercentile(95),
		"p99":    r.PausePercentile(99),
		"p99.9":  r.PausePercentile(99.9),
		"p99.99": r.PausePercentile(99.99),
		"max":    r.PausePercentile(100),
	}
	if len(r.Pauses) > 0 {
		s.TTSPMS = map[string]float64{
			"p50": r.TTSPPercentileMS(50),
			"p99": r.TTSPPercentileMS(99),
			"max": r.TTSPPercentileMS(100),
		}
	}
	if len(r.PauseHist) > 0 {
		s.PausePhaseMS = map[string]PhaseDigest{}
		for kind, h := range r.PauseHist {
			s.PausePhaseMS[kind] = msDigest(h)
		}
	}
	s.MMU = r.MMU
	s.TotalSTWMS = float64(r.TotalSTW()) / float64(time.Millisecond)
	s.GCWorkMS = float64(r.GCWork) / float64(time.Millisecond)
	s.ConcWorkMS = float64(r.ConcWork) / float64(time.Millisecond)
	s.ConcWorkers = r.ConcWorkers
	s.ConcLoans = r.Loans
	s.ConcLoanItems = r.LoanItems
	if len(r.WorkerStats) > 0 {
		s.WorkerPauseItems = make([]int64, len(r.WorkerStats))
		s.WorkerLoanItems = make([]int64, len(r.WorkerStats))
		for i, ws := range r.WorkerStats {
			s.WorkerPauseItems[i] = ws.PauseItems
			s.WorkerLoanItems[i] = ws.LoanItems
		}
	}
	for name, h := range r.Hists {
		kind, ok := strings.CutPrefix(name, vm.HistWorkerPauseItems)
		if !ok || h.Count() == 0 {
			continue
		}
		if s.WorkerPauseItemsByPhase == nil {
			s.WorkerPauseItemsByPhase = map[string]ItemsDigest{}
		}
		s.WorkerPauseItemsByPhase[kind] = ItemsDigest{
			Count: h.Count(),
			P50:   h.Percentile(50),
			P99:   h.Percentile(99),
			Max:   h.Max(),
			Mean:  h.Mean(),
		}
	}
	s.Governor = r.Governor
	s.Pacing = r.Pacing
	s.Intervals = r.Intervals
	return s
}

// WriteJSON renders summaries as an indented JSON array.
func WriteJSON(w io.Writer, sums []RunSummary) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sums)
}

// HistDump is one run's full distributions — sparse bucket dumps rather
// than summary percentiles — as archived by cmd/lxr-bench -hist. All
// values are nanoseconds except the worker-item distributions.
type HistDump struct {
	Experiment string `json:"experiment,omitempty"`
	Bench      string `json:"bench"`
	Collector  string `json:"collector"`
	HeapBytes  int    `json:"heap_bytes"`

	Latency *telemetry.Export           `json:"latency,omitempty"`
	Pauses  map[string]telemetry.Export `json:"pauses,omitempty"`
	// WorkerPauseItems holds the per-pause per-worker item-count
	// distributions keyed by phase kind.
	WorkerPauseItems map[string]telemetry.Export `json:"worker_pause_items,omitempty"`
}

// HistDump exports the run's histograms for archival.
func (r *RunResult) HistDump(experiment string) HistDump {
	d := HistDump{Experiment: experiment, Bench: r.Bench, Collector: r.Collector, HeapBytes: r.HeapBytes}
	if r.Latency != nil && r.Latency.Count() > 0 {
		e := r.Latency.Export()
		d.Latency = &e
	}
	if len(r.PauseHist) > 0 {
		d.Pauses = map[string]telemetry.Export{}
		for kind, h := range r.PauseHist {
			d.Pauses[kind] = h.Export()
		}
	}
	for name, h := range r.Hists {
		kind, ok := strings.CutPrefix(name, vm.HistWorkerPauseItems)
		if !ok || h.Count() == 0 {
			continue
		}
		if d.WorkerPauseItems == nil {
			d.WorkerPauseItems = map[string]telemetry.Export{}
		}
		d.WorkerPauseItems[kind] = h.Export()
	}
	return d
}

// WriteHistJSON renders histogram dumps as an indented JSON array.
func WriteHistJSON(w io.Writer, dumps []HistDump) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(dumps)
}
