package core_test

import (
	"testing"

	"lxr/internal/core"
	"lxr/internal/obj"
	"lxr/internal/vm"
)

// newVM builds a small-heap LXR VM for tests.
func newVM(t *testing.T, cfg core.Config) *vm.VM {
	t.Helper()
	if cfg.HeapBytes == 0 {
		cfg.HeapBytes = 8 << 20
	}
	if cfg.GCThreads == 0 {
		cfg.GCThreads = 2
	}
	v := vm.New(core.New(cfg), 16)
	t.Cleanup(v.Shutdown)
	return v
}

// buildList creates a singly linked list of n nodes; node payload word 0
// holds its position. Returns the head. Uses root slot 0 as scratch.
func buildList(m *vm.Mutator, n int) obj.Ref {
	m.Roots[0] = 0
	for i := n - 1; i >= 0; i-- {
		node := m.Alloc(1, 1, 8) // safepoint: may evacuate the current head
		m.WritePayload(node, 0, uint64(i))
		// Mutator discipline: reload the head from the root slot after
		// the allocation safepoint — a pause there may have moved it,
		// and only root slots are redirected. A raw local held across
		// the Alloc would store the stale pre-evacuation address.
		if head := m.Roots[0]; !head.IsNil() {
			m.Store(node, 0, head)
		}
		m.Roots[0] = node
	}
	return m.Roots[0]
}

// checkList verifies a list built by buildList.
func checkList(t *testing.T, m *vm.Mutator, head obj.Ref, n int) {
	t.Helper()
	cur := head
	for i := 0; i < n; i++ {
		if cur.IsNil() {
			t.Fatalf("list truncated at %d/%d", i, n)
		}
		if got := m.ReadPayload(cur, 0); got != uint64(i) {
			t.Fatalf("node %d: payload %d", i, got)
		}
		cur = m.Load(cur, 0)
	}
	if !cur.IsNil() {
		t.Fatalf("list longer than %d", n)
	}
}

func TestSurvivorsIntactAcrossEpochs(t *testing.T) {
	v := newVM(t, core.Config{})
	m := v.RegisterMutator(8)
	defer m.Deregister()

	head := buildList(m, 2000)
	m.Roots[1] = head
	// Churn garbage to force several RC epochs.
	for i := 0; i < 200000; i++ {
		g := m.Alloc(1, 1, 24)
		m.Roots[2] = g
	}
	m.Roots[2] = 0
	m.RequestGC()
	head = m.Roots[1] // may have been evacuated
	checkList(t, m, head, 2000)
	if got := v.Stats.Counter(core.CtrPauses); got < 2 {
		t.Fatalf("expected multiple RC pauses, got %d", got)
	}
}

func TestYoungBlocksReclaimedWithoutDecrements(t *testing.T) {
	v := newVM(t, core.Config{})
	m := v.RegisterMutator(4)
	defer m.Deregister()

	// Pure garbage: everything dies young.
	for i := 0; i < 300000; i++ {
		m.Roots[0] = m.Alloc(2, 2, 48)
	}
	m.Roots[0] = 0
	m.RequestGC()
	m.RequestGC()
	st := v.Stats
	if st.Counter(core.CtrYoungFreeBlk) == 0 {
		t.Fatal("young sweep yielded no clean blocks")
	}
	// Nearly everything should be reclaimed via the implicitly dead
	// path: survivors should be a tiny fraction of allocation.
	alloc := st.Counter(core.CtrAllocBytes)
	surv := st.Counter(core.CtrSurvivedBytes)
	if surv*10 > alloc {
		t.Fatalf("survival too high: %d of %d bytes", surv, alloc)
	}
}

func TestMatureReclamationViaDecrements(t *testing.T) {
	v := newVM(t, core.Config{})
	m := v.RegisterMutator(4)
	defer m.Deregister()

	// Build mature objects (survive one GC), then drop them and verify
	// RC mature reclamation kicks in. Keep the head's reference count
	// under the 2-bit stuck limit: at most two references at any pause.
	head := buildList(m, 5000)
	m.Roots[1] = head
	m.Roots[0] = 0
	m.RequestGC() // promotes the list
	// Hold the list in a heap object so dropping it generates logged
	// overwrites (root decrements alone would also work, but this
	// exercises the write barrier path).
	holder := m.Alloc(1, 1, 8)
	m.Store(holder, 0, m.Roots[1])
	m.Roots[2] = holder
	m.Roots[0], m.Roots[1] = 0, 0
	m.RequestGC()       // roots re-scanned; holder keeps list alive
	holder = m.Roots[2] // holder may have been evacuated: reload the "register"
	m.Store(holder, 0, 0)
	m.RequestGC() // dec enqueued for old head
	m.RequestGC() // lazy decs from previous epoch completed by now
	m.RequestGC()
	if got := v.Stats.Counter(core.CtrDeadOld); got < 4000 {
		t.Fatalf("mature RC reclaimed only %d objects", got)
	}
}

func TestCycleReclamationViaSATB(t *testing.T) {
	v := newVM(t, core.Config{CleanBlockThreshold: 1 << 30}) // force SATB every pause
	m := v.RegisterMutator(4)
	defer m.Deregister()

	// Build a cycle, promote it, drop it: RC cannot reclaim it.
	a := m.Alloc(1, 1, 8)
	m.Roots[0] = a
	b := m.Alloc(1, 1, 8)
	m.Roots[1] = b
	m.Store(a, 0, b)
	m.Store(b, 0, a)
	m.RequestGC() // promote
	a, b = m.Roots[0], m.Roots[1]
	m.Roots[0], m.Roots[1] = 0, 0
	deadBefore := v.Stats.Counter(core.CtrDeadSATB)
	for i := 0; i < 24 && v.Stats.Counter(core.CtrDeadSATB) == deadBefore; i++ {
		// Mutator work between pauses gives the concurrent thread time
		// to advance the trace, as in a real execution.
		for j := 0; j < 20000; j++ {
			m.Roots[3] = m.Alloc(1, 1, 16)
		}
		m.Roots[3] = 0
		m.RequestGC()
	}
	if v.Stats.Counter(core.CtrDeadSATB) == deadBefore {
		t.Fatal("SATB never reclaimed the dead cycle")
	}
}

func TestAblationsRun(t *testing.T) {
	for _, cfg := range []core.Config{
		{NoConcurrentSATB: true},
		{NoLazyDecrements: true},
		{NoConcurrentSATB: true, NoLazyDecrements: true},
		{NoYoungEvac: true},
		{NoMatureEvac: true},
	} {
		cfg := cfg
		v := newVM(t, cfg)
		m := v.RegisterMutator(4)
		head := buildList(m, 1000)
		m.Roots[1] = head
		for i := 0; i < 100000; i++ {
			m.Roots[2] = m.Alloc(1, 1, 16)
		}
		m.RequestGC()
		checkList(t, m, m.Roots[1], 1000)
		m.Deregister()
		v.Shutdown()
	}
}

func TestLargeObjects(t *testing.T) {
	v := newVM(t, core.Config{})
	m := v.RegisterMutator(4)
	defer m.Deregister()

	big := m.Alloc(1, 2, 40<<10) // > 16 KB: large object space
	m.WritePayload(big, 0, 0xdeadbeef)
	m.Roots[0] = big
	small := m.Alloc(0, 0, 8)
	m.Store(big, 0, small)
	m.Roots[1] = 0
	m.RequestGC()
	big = m.Roots[0]
	if m.ReadPayload(big, 0) != 0xdeadbeef {
		t.Fatal("large object payload corrupted")
	}
	if m.Load(big, 0).IsNil() {
		t.Fatal("large object's referent lost")
	}
	// Drop it; large young garbage and mature large objects must both
	// be reclaimed eventually.
	losBefore := core.New // placeholder to keep imports tidy
	_ = losBefore
	m.Roots[0] = 0
	for i := 0; i < 4; i++ {
		m.RequestGC()
	}
	for i := 0; i < 50; i++ { // large garbage allocated and dropped
		m.Roots[2] = m.Alloc(0, 0, 20<<10)
	}
	m.Roots[2] = 0
	m.RequestGC()
	m.RequestGC()
}

func TestMultiMutatorChurn(t *testing.T) {
	v := newVM(t, core.Config{HeapBytes: 16 << 20, GCThreads: 4})
	const workers = 4
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(id int) {
			m := v.RegisterMutator(8)
			defer m.Deregister()
			head := buildList(m, 500)
			m.Roots[1] = head
			for i := 0; i < 150000; i++ {
				g := m.Alloc(2, 2, 32)
				m.Store(g, 0, m.Roots[1]) // point into the list
				m.Roots[2] = g
			}
			cur := m.Roots[1]
			for i := 0; i < 500; i++ {
				if cur.IsNil() {
					done <- errTruncated
					return
				}
				if got := m.ReadPayload(cur, 0); got != uint64(i) {
					t.Logf("node %d payload=%d: %s", i, got, core.DiagnoseRefForTest(v.Plan, cur, v.Stats))
					done <- errCorrupt
					return
				}
				cur = m.Load(cur, 0)
			}
			done <- nil
		}(w)
	}
	for i := 0; i < workers; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

type strErr string

func (e strErr) Error() string { return string(e) }

const (
	errTruncated = strErr("list truncated")
	errCorrupt   = strErr("list corrupted")
)
