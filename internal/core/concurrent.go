package core

import (
	"sync"
	"time"

	"lxr/internal/gcwork"
	"lxr/internal/mem"
	"lxr/internal/obj"
)

// concurrent is LXR's concurrent collection driver (Fig. 2). It
// processes lazy decrements with priority, then sweeps blocks touched by
// decrements and releases quarantined evacuation sources, then advances
// the SATB trace. It quiesces at every stop-the-world pause so pause
// phases own all shared collector state.
//
// The driver itself is one goroutine, but its work quanta are parallel:
// when Config.ConcWorkers > 1 it borrows that many idle gcwork workers
// (Pool.Lend) for each decrement drain and trace advance, and hands
// them back (Loan.Reclaim) before parking. A pause that arrives while a
// loan is outstanding interrupts it via quiesce: the borrowed workers
// stop within one work item, the unprocessed remainder flows back into
// pendingDecs or the tracer inbox, and the quiescence handshake — plus
// the pool's own dispatch lock — guarantees the pause never overlaps a
// loan.
type concurrent struct {
	p *LXR

	mu    sync.Mutex
	cond  *sync.Cond
	yield bool // a pause wants the thread quiescent
	quiet bool // the thread acknowledges quiescence
	stopd bool
	wake  bool // work was submitted

	// loanRef publishes the outstanding worker loan so quiesce and stop
	// can interrupt it (and so an interrupt that races loan adoption is
	// not lost).
	loanRef gcwork.LoanRef

	// failure holds a panic recovered from a work quantum (typically a
	// *gcwork.WorkerPanic from a loaned worker), guarded by mu. It is
	// re-raised by the next quiesce — which runs on the pause path, a
	// mutator goroutine protected by workload.runGuard — so loan-path
	// panics become Failed data points exactly like in-pause ones. The
	// driver goroutine exits after recording a failure; the collector
	// degrades to in-pause decrement/trace processing.
	failure any

	// Mutator-overflow inboxes (also drained at pauses).
	decs gcwork.SharedAddrQueue
	mods gcwork.SharedAddrQueue

	// State owned by the thread (pauses may touch it only while the
	// thread is quiescent).
	pendingDecs []mem.Address
	recStack    []mem.Address
	touched     map[int]struct{}
	evacBlocks  []int // quarantined evacuation sources awaiting dec drain

	// reclaimable collects blocks whose decrement-freed lines become
	// available at the next pause. Releasing them concurrently would
	// let an allocator reuse lines while this epoch's young objects
	// (whose increments arrive only at the pause) still look free in
	// the RC table.
	reclaimable []int

	done chan struct{}
}

const (
	decChunk   = 4096 // decrements per single-threaded scheduling quantum
	traceChunk = 2048 // trace items per single-threaded scheduling quantum
)

func newConcurrent(p *LXR) *concurrent {
	c := &concurrent{p: p, touched: map[int]struct{}{}, done: make(chan struct{})}
	c.cond = sync.NewCond(&c.mu)
	return c
}

func (c *concurrent) start() { go c.run() }

func (c *concurrent) stop() {
	c.mu.Lock()
	c.stopd = true
	c.loanRef.Interrupt()
	c.cond.Broadcast()
	c.mu.Unlock()
	<-c.done
}

// quiesce blocks until the thread is parked between work quanta. Called
// with the world stopped, before pause phases touch collector state. An
// outstanding worker loan is interrupted so the handshake completes
// within one work item per borrowed worker. A panic the driver
// recovered since the last pause is re-raised here, on the pause's
// (guarded) goroutine.
func (c *concurrent) quiesce() {
	c.mu.Lock()
	c.yield = true
	c.loanRef.Interrupt()
	c.cond.Broadcast()
	for !c.quiet {
		c.cond.Wait()
	}
	f := c.failure
	c.failure = nil
	c.mu.Unlock()
	if f != nil {
		panic(f)
	}
}

// release lets the thread resume after a pause.
func (c *concurrent) release() {
	c.mu.Lock()
	c.yield = false
	c.wake = true
	c.loanRef.Disarm()
	c.cond.Broadcast()
	c.mu.Unlock()
}

// submitDecs hands a pause's decrement batch to the thread. Must be
// called while quiescent.
func (c *concurrent) submitDecs(decs []mem.Address) {
	c.pendingDecs = append(c.pendingDecs, decs...)
}

// submitEvacBlocks quarantines evacuation source blocks until the
// decrement queue drains.
func (c *concurrent) submitEvacBlocks(blocks []int) {
	c.evacBlocks = append(c.evacBlocks, blocks...)
}

// finishEvacBlocksNow releases quarantined blocks immediately (used by
// the -LD ablation, where decrements drained inside the pause).
func (c *concurrent) finishEvacBlocksNow() {
	for _, b := range c.evacBlocks {
		c.p.releaseEvacuatedBlock(b)
	}
	c.evacBlocks = c.evacBlocks[:0]
}

// releaseReclaimable releases everything queued by completed decrement
// batches: dec-touched blocks and quarantined evacuation sources. Runs
// inside a pause, while quiescent, before the young sweep.
func (c *concurrent) releaseReclaimable() {
	if !c.hasPendingDecs() {
		for _, b := range c.reclaimable {
			c.p.maybeReleaseAfterDecs(b)
		}
		c.reclaimable = c.reclaimable[:0]
		c.finishEvacBlocksNow()
	}
}

// hasPendingDecs reports whether the previous epoch's decrements are
// still unprocessed. Must be called while quiescent.
func (c *concurrent) hasPendingDecs() bool {
	return len(c.pendingDecs) > 0 || len(c.recStack) > 0
}

// takePendingDecs removes the unprocessed decrements so the pause can
// finish them. Must be called while quiescent.
func (c *concurrent) takePendingDecs() []mem.Address {
	out := append(c.pendingDecs, c.recStack...)
	c.pendingDecs, c.recStack = nil, nil
	for b := range c.touched {
		delete(c.touched, b)
	}
	return out
}

func (c *concurrent) run() {
	defer close(c.done)
	for {
		c.mu.Lock()
		for (c.yield || !c.hasWorkLocked()) && !c.stopd {
			c.quiet = true
			c.cond.Broadcast()
			c.cond.Wait()
		}
		if c.stopd {
			c.quiet = true
			c.cond.Broadcast()
			c.mu.Unlock()
			return
		}
		c.quiet = false
		c.wake = false
		c.mu.Unlock()

		t0 := time.Now()
		if !c.guardedQuantum() {
			return
		}
		c.p.vm.Stats.AddConcurrentWork(time.Since(t0))
	}
}

// guardedQuantum runs one quantum with panic containment: a recovered
// panic is parked in c.failure for the next quiesce to re-raise on the
// pause path, the driver acknowledges permanent quiescence, and false
// is returned to terminate the driver goroutine.
func (c *concurrent) guardedQuantum() (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			c.loanRef.Drop()
			c.mu.Lock()
			c.failure = r
			c.quiet = true
			c.cond.Broadcast()
			c.mu.Unlock()
			ok = false
		}
	}()
	c.quantum()
	return true
}

func (c *concurrent) hasWorkLocked() bool {
	if len(c.pendingDecs) > 0 || len(c.recStack) > 0 || len(c.touched) > 0 {
		return true
	}
	return c.p.satbActive.Load() && c.p.tracer.Pending()
}

// quantum performs one bounded slice of concurrent work, highest
// priority first: decrements, then deferred sweeping, then the trace.
// With ConcWorkers > 1 the decrement and trace slices run on borrowed
// pool workers; a slice then lasts until the work is exhausted or a
// pause interrupts the loan, whichever comes first.
func (c *concurrent) quantum() {
	p := c.p
	switch {
	case len(c.recStack) > 0 || len(c.pendingDecs) > 0:
		if k := p.cfg.ConcWorkers; k > 1 {
			c.drainDecsParallel(k)
		} else {
			c.drainDecsInline()
		}
	case len(c.touched) > 0:
		// Decrements drained: queue the touched blocks for release at
		// the next pause (lazy reclamation, §3.3.1 — the reclaim
		// decision is made here, the lines become allocatable at the
		// pause so they can never race with in-flight increments).
		for b := range c.touched {
			c.reclaimable = append(c.reclaimable, b)
			delete(c.touched, b)
		}
	default:
		if p.satbActive.Load() {
			if k := p.cfg.ConcWorkers; k > 1 {
				p.tracer.StepParallel(p.pool, k, c.loanRef.Adopt)
				c.loanRef.Drop()
			} else {
				p.tracer.Step(traceChunk)
			}
		}
	}
}

// drainDecsInline is the classic single-threaded decrement slice: up to
// decChunk decrements applied on the driver goroutine itself.
func (c *concurrent) drainDecsInline() {
	p := c.p
	for i := 0; i < decChunk; i++ {
		var ref obj.Ref
		if n := len(c.recStack); n > 0 {
			ref = obj.Ref(c.recStack[n-1])
			c.recStack = c.recStack[:n-1]
		} else if n := len(c.pendingDecs); n > 0 {
			ref = obj.Ref(c.pendingDecs[n-1])
			c.pendingDecs = c.pendingDecs[:n-1]
		} else {
			break
		}
		p.applyDec(0, ref,
			func(child obj.Ref) { c.recStack = append(c.recStack, child) },
			func(b int) { c.touched[b] = struct{}{} })
	}
}

// drainDecsParallel drains the whole pending decrement batch — and its
// recursive closure — on k borrowed pool workers. Each worker records
// touched blocks in its own slot of a per-worker array (worker IDs are
// stable), merged lock-free after the loan is reclaimed. If a pause
// interrupts the loan, the unprocessed remainder returns to
// pendingDecs, exactly as if the slice had been smaller.
func (c *concurrent) drainDecsParallel(k int) {
	p := c.p
	var segs [][]mem.Address
	if len(c.pendingDecs) > 0 {
		segs = append(segs, c.pendingDecs)
		c.pendingDecs = nil
	}
	if len(c.recStack) > 0 {
		segs = append(segs, c.recStack)
		c.recStack = nil
	}
	perWorker := make([]map[int]struct{}, p.pool.N)
	loan := p.pool.Lend(k, segs,
		func(w *gcwork.Worker) {
			m := map[int]struct{}{}
			perWorker[w.ID] = m
			w.Scratch = m
		},
		func(w *gcwork.Worker, a mem.Address) {
			local := w.Scratch.(map[int]struct{})
			p.applyDec(w.ID+1, obj.Ref(a),
				func(child obj.Ref) { w.Push(child) },
				func(b int) { local[b] = struct{}{} })
		},
		nil)
	c.loanRef.Adopt(loan)
	rem := loan.Reclaim()
	c.loanRef.Drop()
	for _, s := range rem {
		c.pendingDecs = append(c.pendingDecs, s...)
	}
	for _, m := range perWorker {
		for b := range m {
			c.touched[b] = struct{}{}
		}
	}
}
