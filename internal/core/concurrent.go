package core

import (
	"lxr/internal/conctrl"
	"lxr/internal/gcwork"
	"lxr/internal/mem"
	"lxr/internal/obj"
	"lxr/internal/policy"
)

// concurrent is LXR's concurrent collection driver (Fig. 2). It
// processes lazy decrements with priority, then sweeps blocks touched by
// decrements and releases quarantined evacuation sources, then advances
// the SATB trace.
//
// The goroutine, the quiesce/release handshake with pauses, loan
// interruption and panic parking all live in the shared
// conctrl.Controller; this type is its CycleDriver — it owns only LXR's
// work state and the quantum logic. Work quanta are parallel: when the
// borrow width is above 1 the driver borrows that many idle gcwork
// workers (Pool.Lend) for each decrement drain and trace advance. A
// pause that arrives while a loan is outstanding interrupts it through
// the controller: the borrowed workers stop within one work item and
// the unprocessed remainder stays on the interrupted loan, where the
// pause resumes it across all workers (Loan.ResumeInPause) or the next
// quantum folds it into a fresh loan.
type concurrent struct {
	p   *LXR
	ctl *conctrl.Controller

	// Mutator-overflow inboxes (also drained at pauses).
	decs gcwork.SharedAddrQueue
	mods gcwork.SharedAddrQueue

	// State owned by the driver (pauses may touch it only while the
	// driver is quiescent).
	pendingDecs []mem.Address
	recStack    []mem.Address
	touched     map[int]struct{}
	evacBlocks  []int // quarantined evacuation sources awaiting dec drain

	// intr retains an interrupted decrement loan: its unprocessed
	// remainder is either resumed across all pause workers
	// (processDecWork → Loan.ResumeInPause) or folded segment-granular
	// into the next quantum's loan — never flattened into a copy.
	intr *gcwork.Loan

	// reclaimable collects blocks whose decrement-freed lines become
	// available at the next pause. Releasing them concurrently would
	// let an allocator reuse lines while this epoch's young objects
	// (whose increments arrive only at the pause) still look free in
	// the RC table.
	reclaimable []int
}

const (
	decChunk   = 4096 // decrements per single-threaded scheduling quantum
	traceChunk = 2048 // trace items per single-threaded scheduling quantum
)

func newConcurrent(p *LXR) *concurrent {
	return &concurrent{p: p, touched: map[int]struct{}{}}
}

// start builds the shared controller (with the adaptive governor when
// configured) and launches the driver goroutine. Called from Boot, once
// the VM exists.
func (c *concurrent) start() {
	cfg := conctrl.Config{
		Stats:   c.p.vm.Stats,
		Width:   c.p.cfg.ConcWorkers,
		Signals: c.p.vm,
		Trace:   c.p.events,
	}
	if c.p.cfg.AdaptiveConc {
		cfg.Governor = conctrl.NewCollectorGovernor(c.p.pool.N, c.p.cfg.ConcWorkers, c.p.cfg.MMUFloor)
	}
	if c.p.cfg.AdaptivePacing {
		// Feed the controller's utilization windows to the pacer so the
		// RC epoch length adapts on the same estimator the loan-width
		// governor uses.
		if wo, ok := c.p.pacer.(policy.WindowObserver); ok {
			cfg.WindowSink = wo.ObserveWindow
		}
	}
	c.ctl = conctrl.NewController(c, cfg)
	c.ctl.Start()
}

// decUrgency is LXR's MMU-floor vote weight (conctrl.UrgencyWeighted):
// an unfinished decrement backlog is absorbed by the very next pause,
// so under-resourcing this driver lengthens pauses immediately — unlike
// marking drivers, whose backlog only delays a future mixed collection.
const decUrgency = 2

// Urgency implements conctrl.UrgencyWeighted.
func (c *concurrent) Urgency() float64 { return decUrgency }

func (c *concurrent) stop() { c.ctl.Stop() }

// quiesce blocks until the driver is parked between work quanta. Called
// with the world stopped, before pause phases touch collector state.
func (c *concurrent) quiesce() { c.ctl.Quiesce() }

// release lets the driver resume after a pause.
func (c *concurrent) release() { c.ctl.Release() }

// submitDecs hands a pause's decrement batch to the driver. Must be
// called while quiescent.
func (c *concurrent) submitDecs(decs []mem.Address) {
	c.pendingDecs = append(c.pendingDecs, decs...)
}

// submitEvacBlocks quarantines evacuation source blocks until the
// decrement queue drains.
func (c *concurrent) submitEvacBlocks(blocks []int) {
	c.evacBlocks = append(c.evacBlocks, blocks...)
}

// finishEvacBlocksNow releases quarantined blocks immediately (used by
// the -LD ablation, where decrements drained inside the pause).
func (c *concurrent) finishEvacBlocksNow() {
	for _, b := range c.evacBlocks {
		c.p.releaseEvacuatedBlock(b)
	}
	c.evacBlocks = c.evacBlocks[:0]
}

// releaseReclaimable releases everything queued by completed decrement
// batches: dec-touched blocks and quarantined evacuation sources. Runs
// inside a pause, while quiescent, before the young sweep.
func (c *concurrent) releaseReclaimable() {
	if !c.hasPendingDecs() {
		for _, b := range c.reclaimable {
			c.p.maybeReleaseAfterDecs(b)
		}
		c.reclaimable = c.reclaimable[:0]
		c.finishEvacBlocksNow()
	}
}

// hasPendingDecs reports whether the previous epoch's decrements are
// still unprocessed — as a flat batch, a recursion stack, or the
// remainder of an interrupted loan. Must be called while quiescent.
func (c *concurrent) hasPendingDecs() bool {
	if len(c.pendingDecs) > 0 || len(c.recStack) > 0 {
		return true
	}
	return c.intr != nil && c.intr.HasRemainder()
}

// takePending removes the unprocessed decrement work so the pause can
// finish it: the interrupted loan (whose remainder the pause resumes
// directly across all workers), any flat segments, and the blocks
// already touched by partially completed batches (released by the pause
// after it finishes the drain). Must be called while quiescent.
func (c *concurrent) takePending() (intr *gcwork.Loan, segs [][]mem.Address, touched []int) {
	intr, c.intr = c.intr, nil
	if len(c.pendingDecs) > 0 {
		segs = append(segs, c.pendingDecs)
		c.pendingDecs = nil
	}
	if len(c.recStack) > 0 {
		segs = append(segs, c.recStack)
		c.recStack = nil
	}
	for b := range c.touched {
		touched = append(touched, b)
		delete(c.touched, b)
	}
	return intr, segs, touched
}

// HasWork implements conctrl.CycleDriver. Called with the controller
// lock held; reads only driver-owned state and atomics.
func (c *concurrent) HasWork() bool {
	if len(c.pendingDecs) > 0 || len(c.recStack) > 0 || len(c.touched) > 0 {
		return true
	}
	if c.intr != nil && c.intr.HasRemainder() {
		return true
	}
	return c.p.satbActive.Load() && c.p.tracer.Pending()
}

// Quantum implements conctrl.CycleDriver: one bounded slice of
// concurrent work, highest priority first — decrements, then deferred
// sweeping, then the trace. With width > 1 the decrement and trace
// slices run on borrowed pool workers; a slice then lasts until the
// work is exhausted or a pause interrupts the loan, whichever comes
// first.
func (c *concurrent) Quantum(width int) {
	p := c.p
	switch {
	case len(c.recStack) > 0 || len(c.pendingDecs) > 0 ||
		(c.intr != nil && c.intr.HasRemainder()):
		if width > 1 {
			c.drainDecsParallel(width)
		} else {
			c.drainDecsInline()
		}
	case len(c.touched) > 0:
		// Decrements drained: queue the touched blocks for release at
		// the next pause (lazy reclamation, §3.3.1 — the reclaim
		// decision is made here, the lines become allocatable at the
		// pause so they can never race with in-flight increments).
		for b := range c.touched {
			c.reclaimable = append(c.reclaimable, b)
			delete(c.touched, b)
		}
	default:
		if p.satbActive.Load() {
			if width > 1 {
				p.tracer.StepParallel(p.pool, width, c.ctl.LoanRef().Adopt)
				c.ctl.LoanRef().Drop()
			} else {
				p.tracer.Step(traceChunk)
			}
		}
	}
}

// drainDecsInline is the classic single-threaded decrement slice: up to
// decChunk decrements applied on the driver goroutine itself. An
// interrupted loan's remainder (left over from a wider configuration)
// is folded back into the flat batch first.
func (c *concurrent) drainDecsInline() {
	p := c.p
	if c.intr != nil {
		for _, s := range c.intr.TakeRemainder() {
			c.pendingDecs = append(c.pendingDecs, s...)
		}
		c.intr = nil
	}
	for i := 0; i < decChunk; i++ {
		var ref obj.Ref
		if n := len(c.recStack); n > 0 {
			ref = obj.Ref(c.recStack[n-1])
			c.recStack = c.recStack[:n-1]
		} else if n := len(c.pendingDecs); n > 0 {
			ref = obj.Ref(c.pendingDecs[n-1])
			c.pendingDecs = c.pendingDecs[:n-1]
		} else {
			break
		}
		p.applyDec(0, ref,
			func(child obj.Ref) { c.recStack = append(c.recStack, child) },
			func(b int) { c.touched[b] = struct{}{} })
	}
}

// drainDecsParallel drains the whole pending decrement batch — and its
// recursive closure — on k borrowed pool workers. Seed segments pass to
// the scheduler as-is: the flat batch, the recursion stack, and any
// interrupted predecessor's remainder, none of them flattened together.
// Each worker records touched blocks in its own slot of a per-worker
// array (worker IDs are stable), merged lock-free after the loan is
// reclaimed. If a pause interrupts the loan, the remainder stays on the
// loan for the pause (or the next quantum) to resume.
func (c *concurrent) drainDecsParallel(k int) {
	p := c.p
	var segs [][]mem.Address
	if c.intr != nil {
		segs = append(segs, c.intr.TakeRemainder()...)
		c.intr = nil
	}
	if len(c.pendingDecs) > 0 {
		segs = append(segs, c.pendingDecs)
		c.pendingDecs = nil
	}
	if len(c.recStack) > 0 {
		segs = append(segs, c.recStack)
		c.recStack = nil
	}
	perWorker, setup, f := p.decDrainFuncs()
	loan := p.pool.Lend(k, segs, setup, f, nil)
	c.ctl.LoanRef().Adopt(loan)
	loan.Reclaim()
	c.ctl.LoanRef().Drop()
	if loan.HasRemainder() {
		c.intr = loan
	}
	for _, m := range perWorker {
		for b := range m {
			c.touched[b] = struct{}{}
		}
	}
}
