package core

import (
	"sync"
	"time"

	"lxr/internal/gcwork"
	"lxr/internal/mem"
	"lxr/internal/obj"
)

// concurrent is LXR's single concurrent collector thread (Fig. 2). It
// processes lazy decrements with priority, then sweeps blocks touched by
// decrements and releases quarantined evacuation sources, then advances
// the SATB trace. It quiesces at every stop-the-world pause so pause
// phases own all shared collector state.
type concurrent struct {
	p *LXR

	mu    sync.Mutex
	cond  *sync.Cond
	yield bool // a pause wants the thread quiescent
	quiet bool // the thread acknowledges quiescence
	stopd bool
	wake  bool // work was submitted

	// Mutator-overflow inboxes (also drained at pauses).
	decs gcwork.SharedAddrQueue
	mods gcwork.SharedAddrQueue

	// State owned by the thread (pauses may touch it only while the
	// thread is quiescent).
	pendingDecs []mem.Address
	recStack    []mem.Address
	touched     map[int]struct{}
	evacBlocks  []int // quarantined evacuation sources awaiting dec drain

	// reclaimable collects blocks whose decrement-freed lines become
	// available at the next pause. Releasing them concurrently would
	// let an allocator reuse lines while this epoch's young objects
	// (whose increments arrive only at the pause) still look free in
	// the RC table.
	reclaimable []int

	done chan struct{}
}

const (
	decChunk   = 4096 // decrements per scheduling quantum
	traceChunk = 2048 // trace items per scheduling quantum
)

func newConcurrent(p *LXR) *concurrent {
	c := &concurrent{p: p, touched: map[int]struct{}{}, done: make(chan struct{})}
	c.cond = sync.NewCond(&c.mu)
	return c
}

func (c *concurrent) start() { go c.run() }

func (c *concurrent) stop() {
	c.mu.Lock()
	c.stopd = true
	c.cond.Broadcast()
	c.mu.Unlock()
	<-c.done
}

// quiesce blocks until the thread is parked between work quanta. Called
// with the world stopped, before pause phases touch collector state.
func (c *concurrent) quiesce() {
	c.mu.Lock()
	c.yield = true
	c.cond.Broadcast()
	for !c.quiet {
		c.cond.Wait()
	}
	c.mu.Unlock()
}

// release lets the thread resume after a pause.
func (c *concurrent) release() {
	c.mu.Lock()
	c.yield = false
	c.wake = true
	c.cond.Broadcast()
	c.mu.Unlock()
}

// submitDecs hands a pause's decrement batch to the thread. Must be
// called while quiescent.
func (c *concurrent) submitDecs(decs []mem.Address) {
	c.pendingDecs = append(c.pendingDecs, decs...)
}

// submitEvacBlocks quarantines evacuation source blocks until the
// decrement queue drains.
func (c *concurrent) submitEvacBlocks(blocks []int) {
	c.evacBlocks = append(c.evacBlocks, blocks...)
}

// finishEvacBlocksNow releases quarantined blocks immediately (used by
// the -LD ablation, where decrements drained inside the pause).
func (c *concurrent) finishEvacBlocksNow() {
	for _, b := range c.evacBlocks {
		c.p.releaseEvacuatedBlock(b)
	}
	c.evacBlocks = c.evacBlocks[:0]
}

// releaseReclaimable releases everything queued by completed decrement
// batches: dec-touched blocks and quarantined evacuation sources. Runs
// inside a pause, while quiescent, before the young sweep.
func (c *concurrent) releaseReclaimable() {
	if !c.hasPendingDecs() {
		for _, b := range c.reclaimable {
			c.p.maybeReleaseAfterDecs(b)
		}
		c.reclaimable = c.reclaimable[:0]
		c.finishEvacBlocksNow()
	}
}

// hasPendingDecs reports whether the previous epoch's decrements are
// still unprocessed. Must be called while quiescent.
func (c *concurrent) hasPendingDecs() bool {
	return len(c.pendingDecs) > 0 || len(c.recStack) > 0
}

// takePendingDecs removes the unprocessed decrements so the pause can
// finish them. Must be called while quiescent.
func (c *concurrent) takePendingDecs() []mem.Address {
	out := append(c.pendingDecs, c.recStack...)
	c.pendingDecs, c.recStack = nil, nil
	for b := range c.touched {
		delete(c.touched, b)
	}
	return out
}

func (c *concurrent) run() {
	defer close(c.done)
	for {
		c.mu.Lock()
		for (c.yield || !c.hasWorkLocked()) && !c.stopd {
			c.quiet = true
			c.cond.Broadcast()
			c.cond.Wait()
		}
		if c.stopd {
			c.quiet = true
			c.cond.Broadcast()
			c.mu.Unlock()
			return
		}
		c.quiet = false
		c.wake = false
		c.mu.Unlock()

		t0 := time.Now()
		c.quantum()
		c.p.vm.Stats.AddConcurrentWork(time.Since(t0))
	}
}

func (c *concurrent) hasWorkLocked() bool {
	if len(c.pendingDecs) > 0 || len(c.recStack) > 0 || len(c.touched) > 0 {
		return true
	}
	return c.p.satbActive.Load() && c.p.tracer.Pending()
}

// quantum performs one bounded slice of concurrent work, highest
// priority first: decrements, then deferred sweeping, then the trace.
func (c *concurrent) quantum() {
	p := c.p
	switch {
	case len(c.recStack) > 0 || len(c.pendingDecs) > 0:
		for i := 0; i < decChunk; i++ {
			var ref obj.Ref
			if n := len(c.recStack); n > 0 {
				ref = obj.Ref(c.recStack[n-1])
				c.recStack = c.recStack[:n-1]
			} else if n := len(c.pendingDecs); n > 0 {
				ref = obj.Ref(c.pendingDecs[n-1])
				c.pendingDecs = c.pendingDecs[:n-1]
			} else {
				break
			}
			p.applyDec(ref,
				func(child obj.Ref) { c.recStack = append(c.recStack, child) },
				func(b int) { c.touched[b] = struct{}{} })
		}
	case len(c.touched) > 0:
		// Decrements drained: queue the touched blocks for release at
		// the next pause (lazy reclamation, §3.3.1 — the reclaim
		// decision is made here, the lines become allocatable at the
		// pause so they can never race with in-flight increments).
		for b := range c.touched {
			c.reclaimable = append(c.reclaimable, b)
			delete(c.touched, b)
		}
	default:
		if p.satbActive.Load() {
			p.tracer.Step(traceChunk)
		}
	}
}
