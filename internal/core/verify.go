package core

import (
	"fmt"
	"os"

	"lxr/internal/immix"
	"lxr/internal/mem"
	"lxr/internal/meta"
	"lxr/internal/obj"
)

// verifyHeap, enabled with LXR_VERIFY=1, walks the full reachable graph
// at the end of every pause (while the world is stopped) and asserts
// that every reachable object has a plausible header and a non-zero
// reference count. It exists for debugging and for the stress tools;
// the overhead is a full heap trace per pause.
var verifyEnabled = os.Getenv("LXR_VERIFY") != ""

// verifyFull additionally enables the end-of-pause full reachability
// walk (LXR_VERIFY=2); LXR_VERIFY=1 enables only the cheap in-line
// checks.
var verifyFull = os.Getenv("LXR_VERIFY") == "2"

func (p *LXR) verifyHeap(stage string) {
	if !verifyFull {
		return
	}
	seen := meta.NewBitTable(p.om.A, mem.GranuleLog)
	var stack []obj.Ref
	for _, s := range p.rootSlots {
		if !(*s).IsNil() {
			stack = append(stack, *s)
		}
	}
	count := 0
	for len(stack) > 0 {
		ref := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if ref.IsNil() || !seen.TrySet(ref) {
			continue
		}
		count++
		if !p.plausibleRef(ref) {
			panic(fmt.Sprintf("lxr verify[%s] epoch %d: implausible reachable ref %x", stage, p.epoch.Load(), uint64(ref)))
		}
		size := p.om.Size(ref)
		if size < obj.MinSize || size > obj.MaxSize/2 {
			panic(fmt.Sprintf("lxr verify[%s] epoch %d: ref %x bad size %d (block %d state %d flags %x rc %d mark %v)",
				stage, p.epoch.Load(), uint64(ref), size, ref.Block(), p.bt.State(ref.Block()), p.bt.Word(ref.Block()), p.rc.Get(ref), p.marks.Get(ref)))
		}
		if p.rc.Get(ref) == 0 {
			panic(fmt.Sprintf("lxr verify[%s] epoch %d: reachable ref %x has rc 0 (block %d state %d flags %x young=%v size=%d straddle=%v mark=%v)",
				stage, p.epoch.Load(), uint64(ref), ref.Block(), p.bt.State(ref.Block()), p.bt.Word(ref.Block()),
				p.bt.HasFlag(ref.Block(), immix.FlagYoung), size, p.straddle.Get(ref), p.marks.Get(ref)))
		}
		p.om.EachSlot(ref, func(_ int, _ mem.Address, v obj.Ref) {
			if !v.IsNil() {
				stack = append(stack, v)
			}
		})
	}
	_ = count
}

// Debug provenance: which mechanism last freed each block and at which
// epoch (enabled with LXR_VERIFY).
type blockProvenance struct {
	epoch uint64
	by    string
}

// noteFree records provenance when verification is on.
func (p *LXR) noteFree(idx int, by string) {
	if !verifyEnabled {
		return
	}
	p.provMu.Lock()
	if p.prov == nil {
		p.prov = map[int]blockProvenance{}
	}
	p.prov[idx] = blockProvenance{p.epoch.Load(), by}
	p.provMu.Unlock()
}

// blockEvent is one block lifecycle event (debug).
type blockEvent struct {
	epoch uint64
	ev    string
}

// installBlockTrace wires the block-table event log (debug builds).
func (p *LXR) installBlockTrace() {
	if !verifyEnabled {
		return
	}
	p.bt.Trace = func(idx int, ev string) {
		p.provMu.Lock()
		if p.blockLog == nil {
			p.blockLog = map[int][]blockEvent{}
		}
		l := append(p.blockLog[idx], blockEvent{p.epoch.Load(), ev})
		if len(l) > 10 {
			l = l[len(l)-10:]
		}
		p.blockLog[idx] = l
		p.provMu.Unlock()
	}
}

// noteSpan records span handouts per line (debug).
func (p *LXR) noteSpan(start, end mem.Address, recycled bool) {
	by := "span-clean"
	if recycled {
		by = "span-recycled"
	}
	p.provMu.Lock()
	if p.lineProv == nil {
		p.lineProv = map[int]blockProvenance{}
	}
	for l := start.Line(); l < int((end+mem.LineSize-1)>>mem.LineSizeLog); l++ {
		p.lineProv[l] = blockProvenance{p.epoch.Load(), by}
	}
	p.provMu.Unlock()
}

// diagnoseSlot panics with full context about a slot that delivered an
// implausible reference during increment processing (debug builds).
func (p *LXR) diagnoseSlot(slot mem.Address, v obj.Ref) {
	b := slot.Block()
	tb := v.Block()
	p.provMu.Lock()
	prov := p.prov[b]
	tprov := p.prov[tb]
	slotLine := p.lineProv[slot.Line()]
	valLine := p.lineProv[v.Line()]
	vlog := p.blockLog[tb]
	p.provMu.Unlock()
	panic(fmt.Sprintf("lxr diag epoch %d: slot %x (block %d w=%x freedBy=%q@%d span=%q@%d) -> val %x (block %d w=%x freedBy=%q@%d span=%q@%d rc=%d hdr=%x lineRC=%08x)",
		p.epoch.Load(), uint64(slot), b, p.bt.Word(b), prov.by, prov.epoch, slotLine.by, slotLine.epoch,
		uint64(v), tb, p.bt.Word(tb), tprov.by, tprov.epoch, valLine.by, valLine.epoch,
		p.rc.Get(v), p.om.A.Load(v), p.rc.LineWord(v.Line())) + fmt.Sprintf(" valBlockLog=%v", vlog))
}

// saneRef reports whether v plausibly denotes an object: aligned,
// in-arena, with a believable header.
func (p *LXR) saneRef(v obj.Ref) bool {
	if !p.plausibleRef(v) {
		return false
	}
	s := p.om.Size(v)
	if s < obj.MinSize {
		return false
	}
	if s > obj.LargeThreshold && !p.om.IsLarge(v) {
		return false
	}
	return true
}
