package core

import (
	"lxr/internal/gcwork"
	"lxr/internal/immix"
	"lxr/internal/mem"
	"lxr/internal/obj"
)

// decDeath handles an object whose count reached zero: it upholds the
// SATB interruption invariant (never delete an unmarked object while a
// trace is underway — mark and scan it first, §3.2.2), pushes recursive
// decrements for its referents, and reclaims its memory.
// shard is the caller's stats shard (worker ID + 1, or 0 off-worker);
// pushRec receives child references; record receives the touched block.
func (p *LXR) decDeath(shard int, ref obj.Ref, pushRec func(obj.Ref), record func(int)) {
	p.ctr.deadOld.AddAt(shard, 1)
	if p.satbActive.Load() && !p.marks.Get(ref) {
		p.marks.Set(ref)
		// Scan into the SATB trace before the memory can be reclaimed;
		// seeds go through the tracer's thread-safe inbox so both the
		// concurrent thread and in-pause parallel workers may use this.
		p.om.EachSlot(ref, func(_ int, _ mem.Address, v obj.Ref) {
			if !v.IsNil() {
				p.tracer.SeedOne(v)
			}
		})
	}
	p.om.EachSlot(ref, func(_ int, _ mem.Address, v obj.Ref) {
		if !v.IsNil() {
			pushRec(v)
		}
	})
	if p.om.IsLarge(ref) {
		p.rc.Set(ref, 0)
		p.bt.LOS().Free(ref)
		return
	}
	p.reclaimObjectMeta(ref)
	record(ref.Block())
}

// applyDec applies one decrement (following forwarding installed by
// evacuation) and performs death processing on a 1→0 transition. shard
// selects the caller's stats shard: pause workers and loaned workers
// pass their worker ID + 1 so per-decrement counter updates never
// contend across threads; single-threaded callers pass 0.
func (p *LXR) applyDec(shard int, ref obj.Ref, pushRec func(obj.Ref), record func(int)) {
	if !p.plausibleRef(ref) {
		p.ctr.skip.AddAt(shard, 1)
		return
	}
	ref = p.om.Resolve(ref)
	if !p.saneRef(ref) {
		p.ctr.skip.AddAt(shard, 1)
		return
	}
	p.ctr.decrements.AddAt(shard, 1)
	if old := p.rc.Dec(ref); old == 1 {
		p.decDeath(shard, ref, pushRec, record)
	}
}

// decDrainFuncs builds the worker callbacks every parallel decrement
// drain shares — the between-pause loans, the in-pause resumption of an
// interrupted loan, and the -LD ablation's full in-pause drain. Each
// worker records touched blocks in its own slot of a per-worker result
// array (worker IDs are stable across the pool's lifetime) so the merge
// needs no lock; setup is re-entrant so one perWorker array can span
// several dispatches of the same logical drain.
func (p *LXR) decDrainFuncs() (perWorker []map[int]struct{}, setup func(*gcwork.Worker), f func(*gcwork.Worker, mem.Address)) {
	perWorker = make([]map[int]struct{}, p.pool.N)
	setup = func(w *gcwork.Worker) {
		m := perWorker[w.ID]
		if m == nil {
			m = map[int]struct{}{}
			perWorker[w.ID] = m
		}
		w.Scratch = m
	}
	f = func(w *gcwork.Worker, a mem.Address) {
		local := w.Scratch.(map[int]struct{})
		p.applyDec(w.ID+1, obj.Ref(a),
			func(c obj.Ref) { w.Push(c) },
			func(b int) { local[b] = struct{}{} })
	}
	return perWorker, setup, f
}

// processDecsInPause drains a decrement batch with the parallel worker
// pool (used by the -LD ablation, where every pause drains its own
// batch).
func (p *LXR) processDecsInPause(decs []mem.Address) {
	if len(decs) == 0 {
		return
	}
	p.processDecWork(nil, [][]mem.Address{decs}, nil)
}

// processDecWork finishes decrement work inside a pause. An interrupted
// loan's remainder is resumed segment-granular across all N pause
// workers (Loan.ResumeInPause seeds DrainSegs directly — the loan-aware
// pause path, no re-chunking through a flat copy), then any remaining
// flat segments drain the same way. seedTouched carries blocks the
// concurrent driver's partially completed batches had already touched;
// they are released here together with the blocks this drain touches.
func (p *LXR) processDecWork(intr *gcwork.Loan, segs [][]mem.Address, seedTouched []int) {
	perWorker, setup, f := p.decDrainFuncs()
	if intr != nil {
		intr.ResumeInPause(setup, f, nil)
	}
	if len(segs) > 0 {
		p.pool.DrainSegs(segs, setup, f, nil)
	}
	touched := map[int]struct{}{}
	for _, b := range seedTouched {
		touched[b] = struct{}{}
	}
	for _, m := range perWorker {
		for b := range m {
			touched[b] = struct{}{}
		}
	}
	for b := range touched {
		p.maybeReleaseAfterDecs(b)
	}
}

// maybeReleaseAfterDecs re-examines a block in which decrements freed
// objects (lazy reclamation, §3.3.1). Only full, unlisted, unquarantined
// blocks change state.
func (p *LXR) maybeReleaseAfterDecs(idx int) {
	if p.bt.State(idx) != immix.StateFull {
		return
	}
	// Quarantined evacuation sources, blocks with fresh allocation, and
	// evacuation-set candidates (whose remembered sets assume a stable
	// population) are all excluded from lazy reclamation.
	if p.bt.HasFlag(idx, immix.FlagEvacuating) || p.bt.HasFlag(idx, immix.FlagDirty) || p.bt.HasFlag(idx, immix.FlagDefrag) {
		return
	}
	switch p.classifyBlock(idx) {
	case blockEmpty:
		p.noteFree(idx, "lazydecs")
		p.bt.ReleaseFree(idx)
	case blockPartial:
		p.bt.ReleaseRecycled(idx)
	}
}

// releaseEvacuatedBlock returns an evacuation-set source block to
// service once pending decrements (which may need its forwarding
// pointers) have drained.
func (p *LXR) releaseEvacuatedBlock(idx int) {
	p.bt.ClearFlag(idx, immix.FlagEvacuating|immix.FlagDefrag)
	if p.bt.State(idx) != immix.StateFull {
		return
	}
	switch p.classifyBlock(idx) {
	case blockEmpty:
		p.noteFree(idx, "evac")
		p.bt.ReleaseFree(idx)
	case blockPartial:
		p.bt.ReleaseRecycled(idx)
	}
}
