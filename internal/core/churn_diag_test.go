package core

// Diagnostic instrumentation for heap-integrity tests: pause-boundary
// list verification and double-allocation detection. Armed by the churn
// tests so an intermittent corruption report carries the collector
// state of the damaged node instead of a bare "list corrupted".

import (
	"fmt"

	"lxr/internal/immix"
	"lxr/internal/mem"
	"lxr/internal/obj"
	"lxr/internal/vm"
)

// DiagnoseRefForTest reports collector metadata for a reference
// (visible to the external test package).
func DiagnoseRefForTest(plan vm.Plan, cur obj.Ref, st *vm.Stats) string {
	p := plan.(*LXR)
	blk := cur.Block()
	return fmt.Sprintf(
		"ref=%#x rc=%d lineword=%#x blk=%d state=%v young=%v dirty=%v evac=%v defrag=%v marks=%v straddle=%v satbActive=%v epoch=%d hdr=%#x | deadSATB=%d deadOld=%d satbPauses=%d pauses=%d lazyPauses=%d decs=%d skips=%d",
		uint64(cur), p.rc.Get(cur), p.rc.LineWord(cur.Line()), blk, p.bt.State(blk),
		p.bt.HasFlag(blk, immix.FlagYoung), p.bt.HasFlag(blk, immix.FlagDirty),
		p.bt.HasFlag(blk, immix.FlagEvacuating), p.bt.HasFlag(blk, immix.FlagDefrag),
		p.marks.Get(cur), p.straddle.Get(cur),
		p.satbActive.Load(), p.epoch.Load(),
		p.om.A.Load(mem.Address(cur)),
		st.Counter(CtrDeadSATB), st.Counter(CtrDeadOld),
		st.Counter(CtrPausesSATB), st.Counter(CtrPauses), st.Counter(CtrPausesLazy),
		st.Counter(CtrDecrements), st.Counter(CtrDefensiveSkip))
}

// ArmListWatch registers a pause hook that verifies, inside every
// pause (world stopped), that each mutator's Roots[1] list is intact —
// localising a corruption to the pause boundary at which it appeared.
func ArmListWatch(v *vm.VM, n int, report func(string)) {
	testPauseHook = func(p *LXR) {
		v.EachMutator(func(m *vm.Mutator) {
			cur := m.Roots[1]
			if cur.IsNil() {
				return // list not built yet
			}
			for i := 0; i < n; i++ {
				if cur.IsNil() {
					report(fmt.Sprintf("pause %d epoch %d: truncated at %d", p.vm.Stats.Counter(CtrPauses), p.epoch.Load(), i))
					return
				}
				pay := p.om.A.Load(p.om.PayloadAddr(p.om.Resolve(cur)))
				if pay != uint64(i) {
					report(fmt.Sprintf("pause %d epoch %d: node %d bad payload=%d %s",
						p.vm.Stats.Counter(CtrPauses), p.epoch.Load(), i, pay,
						DiagnoseRefForTest(p, cur, p.vm.Stats)))
					return
				}
				cur = p.om.Resolve(cur)
				cur = p.om.A.LoadRef(p.om.SlotAddr(cur, 0))
			}
		})
	}
}

// DisarmListWatch removes the diagnostic hooks.
func DisarmListWatch() { testPauseHook = nil; testDoubleAllocHook = nil }

// ArmDoubleAllocWatch reports survivor copies landing on an already
// counted granule — the signature of an allocation span handed out
// twice.
func ArmDoubleAllocWatch(report func(string)) {
	testDoubleAllocHook = func(p *LXR, src, dst obj.Ref, oldRC uint32, al *immix.Allocator) {
		report(fmt.Sprintf("DOUBLE-ALLOC: copy of %#x landed on %#x oldrc=%d %s",
			uint64(src), uint64(dst), oldRC, DiagnoseRefForTest(p, dst, p.vm.Stats)))
	}
}
