package core

import (
	"testing"

	"lxr/internal/vm"
)

// TestConcurrentFailureDeliveredAtQuiesce: a panic recovered on the
// concurrent driver (as guardedQuantum does for loaned-worker panics)
// must be re-raised by the next quiesce — i.e. on the pause path,
// whose mutator goroutine the workload guard protects — not swallowed
// and not left to kill the driver's own goroutine.
func TestConcurrentFailureDeliveredAtQuiesce(t *testing.T) {
	p := New(Config{HeapBytes: 8 << 20, GCThreads: 2})
	v := vm.New(p, 4)
	defer v.Shutdown()

	c := p.conc
	c.mu.Lock()
	c.failure = "injected worker panic"
	c.mu.Unlock()

	defer func() {
		if r := recover(); r != "injected worker panic" {
			t.Fatalf("quiesce delivered %v, want the injected failure", r)
		}
		// The failure must be consumed: a second quiesce is clean.
		c.quiesce()
		c.release()
	}()
	c.quiesce()
	t.Fatal("quiesce did not re-raise the injected failure")
}
