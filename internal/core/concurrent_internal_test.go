package core

import (
	"testing"

	"lxr/internal/vm"
)

// TestConcurrentFailureDeliveredAtQuiesce: a panic parked on the
// concurrent driver's controller (as the shared controller does for
// loaned-worker panics) must be re-raised by the next quiesce — i.e. on
// the pause path, whose mutator goroutine the workload guard protects —
// not swallowed and not left to kill the driver's own goroutine.
func TestConcurrentFailureDeliveredAtQuiesce(t *testing.T) {
	p := New(Config{HeapBytes: 8 << 20, GCThreads: 2})
	v := vm.New(p, 4)
	defer v.Shutdown()

	c := p.conc
	c.ctl.InjectFailure("injected worker panic")

	defer func() {
		if r := recover(); r != "injected worker panic" {
			t.Fatalf("quiesce delivered %v, want the injected failure", r)
		}
		// The failure must be consumed: a second quiesce is clean.
		c.quiesce()
		c.release()
	}()
	c.quiesce()
	t.Fatal("quiesce did not re-raise the injected failure")
}

// TestAdaptiveGovernorSamples: with AdaptiveConc the plan must expose a
// governor trace, and a workload that keeps the concurrent driver busy
// must produce utilization samples (the width trace always carries at
// least the initial point).
func TestAdaptiveGovernorSamples(t *testing.T) {
	p := New(Config{HeapBytes: 16 << 20, GCThreads: 4, ConcWorkers: 2, AdaptiveConc: true})
	v := vm.New(p, 4)
	defer v.Shutdown()

	m := v.RegisterMutator(8)
	holder := m.Alloc(0, 64, 8)
	m.Roots[0] = holder
	m.RequestGC()
	holder = m.Roots[0]
	for round := 0; round < 50; round++ {
		for i := 0; i < 64; i++ {
			m.Store(holder, i, m.Alloc(0, 0, 64))
		}
		m.RequestGC()
		holder = m.Roots[0]
	}
	m.Deregister()

	tr := p.GovernorTrace()
	if tr == nil {
		t.Fatal("AdaptiveConc plan returned a nil governor trace")
	}
	if len(tr.Widths) == 0 || tr.Widths[0].Width != 2 {
		t.Fatalf("width trace %v, want initial width 2", tr.Widths)
	}
	if tr.MinWidth != 1 || tr.MaxWidth != 4 {
		t.Fatalf("width bounds [%d,%d], want [1,4]", tr.MinWidth, tr.MaxWidth)
	}
	if tr.FinalWidth < 1 || tr.FinalWidth > 4 {
		t.Fatalf("final width %d out of bounds", tr.FinalWidth)
	}
	t.Logf("governor: samples=%d resizes=%d final=%d achievedMMU=%.3f",
		tr.Samples, len(tr.Resizes), tr.FinalWidth, tr.AchievedMMU)
}
