package core

import (
	"fmt"
	"runtime"

	"lxr/internal/immix"
	"lxr/internal/obj"
	"lxr/internal/policy"
	"lxr/internal/trace"
	"lxr/internal/vm"
)

// allocPublishBytes is the grain at which a mutator's private
// allocation counters are published to the global trigger counters (and
// the trigger re-evaluated). Coarse enough that the allocation fast
// path almost never touches a shared cache line, fine enough that the
// trigger fires within numMutators x 16 KB of the configured budget —
// noise against allocation budgets that start in the megabytes.
const allocPublishBytes = 16 << 10

// logSpinBudget bounds the busy-wait on a field-log state held Busy by
// a racing logger before yielding the processor: a preempted winner
// must not stall the store indefinitely.
const logSpinBudget = 64

// barrierSampleMask samples every 64th barrier slow path per mutator
// into the event tracer — enough instants to see barrier storms on the
// timeline without recording every field's first store.
const barrierSampleMask = 63

// Alloc implements vm.Plan. The common case is a thread-local Immix
// bump allocation whose bookkeeping is entirely mutator-local: bump
// bytes accumulate in the allocator's SinceEpoch counter and the object
// count in mutState, harvested at safepoints and pauses, so the fast
// path performs no atomic operations. Objects above half a block go to
// the large object space. Layout validation is a verify-mode check
// (LXR_VERIFY), not a per-allocation branch chain.
func (p *LXR) Alloc(m *vm.Mutator, l obj.Layout) obj.Ref {
	ms := m.PlanState.(*mutState)
	p.pollTrigger(m, ms)
	m.PollPark()
	if verifyEnabled {
		if err := l.Validate(); err != nil {
			panic(err)
		}
	}
	for attempt := 0; ; attempt++ {
		var a obj.Ref
		var ok bool
		if l.Large {
			var addr = obj.Ref(0)
			addr, ok = p.bt.LOS().Alloc(l.Size)
			a = addr
			if ok {
				p.losNewMu.q.Push(a)
				ms.largeSince += int64(l.Size)
			}
		} else {
			var addr = obj.Ref(0)
			addr, ok = ms.alloc.Alloc(l.Size)
			a = addr
		}
		if ok {
			p.om.WriteHeader(a, l)
			ms.allocObjs++
			return a
		}
		// Heap full: collect and retry. The first retry is a regular RC
		// pause; subsequent retries force SATB completion in the pause
		// (a "degenerate" full collection) to reclaim cycles.
		e := p.vm.GCEpoch()
		switch attempt {
		case 0:
			p.vm.CollectIfEpoch(m, e, func() { p.collectRC(pauseCauseHeapFull) })
		case 1, 2, 3:
			p.vm.CollectIfEpoch(m, e, func() { p.collectRC(pauseCauseEmergency) })
		default:
			panic(fmt.Sprintf("lxr: out of memory allocating %d bytes: %s", l.Size, p.bt))
		}
	}
}

// WriteRef implements vm.Plan: LXR's field-logging write barrier
// (Fig. 3). The fast path is exactly one metadata load (the field-log
// state) plus the store: the slow path captures the to-be-overwritten
// referent (for coalescing decrements and the SATB snapshot) and the
// field address (for the coalescing increment at the next pause), once
// per field per epoch. Remembered-set maintenance for in-flight
// evacuation sets is guarded by the mutator's BarrierWatch flag — an
// epoch-cached predicate refreshed at each pause — so when no
// evacuation set is armed (the common state) the store does no SATB or
// block-flag checks, and no PlanState type assertion, at all.
func (p *LXR) WriteRef(m *vm.Mutator, src obj.Ref, i int, val obj.Ref) {
	if verifyEnabled && !val.IsNil() {
		if !p.plausibleRef(val) {
			panic("lxr verify: mutator stored implausible ref")
		}
		if s := p.om.Size(val); s < 16 || p.om.NumRefs(val) > 8000 {
			p.diagnoseSlot(p.om.SlotAddr(src, i), val)
		}
	}
	slot := p.om.SlotAddr(src, i)
	if p.logs.Get(slot) != 0 { // isUnlogged (or busy)
		p.logField(m.PlanState.(*mutState), slot)
	}
	p.om.A.StoreRef(slot, val)
	if m.BarrierWatch && !val.IsNil() && p.om.A.Contains(val) &&
		p.bt.HasFlag(val.Block(), immix.FlagDefrag) {
		p.rem.Record(slot, val.Block())
	}
}

func (p *LXR) logField(ms *mutState, slot obj.Ref) {
	spins := 0
	for {
		switch p.logs.Get(slot) {
		case 0: // logged by a racing thread; its capture is published
			return
		case 1: // unlogged
			if p.logs.TryBeginLog(slot) {
				old := p.om.A.LoadRef(slot)
				if !old.IsNil() {
					ms.decBuf.Push(old)
				}
				ms.modBuf.Push(slot)
				p.logs.FinishLog(slot)
				ms.slowOps++
				if tr := p.events; tr != nil && ms.slowOps&barrierSampleMask == 0 {
					tr.Instant(ms.shard, trace.NameBarrierSlow, uint64(ms.slowOps), 0)
				}
				return
			}
		default:
			// Busy: the winner is capturing the old value. Bounded spin,
			// then yield — a preempted winner must not stall this store.
			if spins++; spins >= logSpinBudget {
				spins = 0
				runtime.Gosched()
			}
		}
	}
}

// ReadRef implements vm.Plan. LXR requires no read barrier — one of its
// key advantages over the LVB-based concurrent copying collectors.
func (p *LXR) ReadRef(m *vm.Mutator, src obj.Ref, i int) obj.Ref {
	return p.om.LoadSlot(src, i)
}

// pollTrigger is the RC trigger poll shared by Alloc and PollSafepoint.
// The fast path is two mutator-local comparisons: until this mutator
// has accumulated allocPublishBytes of unpublished allocation (or, with
// an increment threshold configured, a comparable batch of unpublished
// barrier slow paths), nothing global is touched. Past the grain, the
// private counters are published and the pacer consulted.
//
// The GC epoch is captured BEFORE the pacer reads the signals: if
// another mutator's pause completes in between, the signals this poll
// judged were pre-pause state and the CollectIfEpoch guard discards the
// trigger instead of starting a back-to-back collection the pacer never
// asked for.
func (p *LXR) pollTrigger(m *vm.Mutator, ms *mutState) {
	pending := ms.alloc.SinceEpoch + ms.largeSince
	if pending < allocPublishBytes &&
		(p.cfg.IncrementThreshold <= 0 || ms.slowOps-ms.slowPub < allocPublishBytes/16) {
		return
	}
	p.publishCounters(ms)
	e := p.vm.GCEpoch()
	var logged int64
	if p.cfg.IncrementThreshold > 0 {
		logged = p.logsSince.Load()
	}
	due := p.pacer.ShouldCollect(policy.Signals{
		AllocBytes:   p.allocSince.Load(),
		LoggedFields: logged,
	})
	if due && p.gcScheduled.CompareAndSwap(false, true) {
		p.vm.CollectIfEpoch(m, e, func() { p.collectRC(pauseCauseTrigger) })
		p.gcScheduled.Store(false)
	}
}

// publishCounters folds the mutator's unpublished allocation volume and
// barrier slow paths into the global trigger counters.
func (p *LXR) publishCounters(ms *mutState) {
	v := ms.alloc.HarvestSinceEpoch() + ms.largeSince
	ms.largeSince = 0
	if v != 0 {
		p.allocSince.Add(v)
		if tr := p.events; tr != nil {
			// Already rate-limited to the 16 KB publish grain.
			tr.Instant(ms.shard, trace.NameAllocPublish, uint64(v), 0)
		}
	}
	if d := ms.slowOps - ms.slowPub; d != 0 {
		ms.slowPub = ms.slowOps
		p.logsSince.Add(d)
	}
}

// PollSafepoint implements vm.Plan: the RC trigger fast path (see
// pollTrigger). The pacer folds the survival-rate trigger into a single
// allocation-budget comparison (policy.RCPacer.AllocLimit); the
// increment threshold is checked when configured.
func (p *LXR) PollSafepoint(m *vm.Mutator) {
	if ms, ok := m.PlanState.(*mutState); ok {
		p.pollTrigger(m, ms)
	}
}

// CollectNow implements vm.Plan: an explicit synchronous collection,
// self-serialised against other collections.
func (p *LXR) CollectNow(cause string) {
	p.vm.RunCollection(nil, func() { p.collectRC(pauseCauseExplicit) })
}
