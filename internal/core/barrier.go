package core

import (
	"fmt"

	"lxr/internal/immix"
	"lxr/internal/obj"
	"lxr/internal/policy"
	"lxr/internal/vm"
)

// Alloc implements vm.Plan. The common case is a thread-local Immix bump
// allocation; objects above half a block go to the large object space.
func (p *LXR) Alloc(m *vm.Mutator, l obj.Layout) obj.Ref {
	m.Safepoint()
	ms := m.PlanState.(*mutState)
	if err := l.Validate(); err != nil {
		panic(err)
	}
	for attempt := 0; ; attempt++ {
		var a obj.Ref
		var ok bool
		if l.Large {
			var addr = obj.Ref(0)
			addr, ok = p.bt.LOS().Alloc(l.Size)
			a = addr
			if ok {
				p.losNewMu.q.Push(a)
			}
		} else {
			var addr = obj.Ref(0)
			addr, ok = ms.alloc.Alloc(l.Size)
			a = addr
		}
		if ok {
			p.om.WriteHeader(a, l)
			p.allocSince.Add(int64(l.Size))
			p.allocObjects.Add(1)
			return a
		}
		// Heap full: collect and retry. The first retry is a regular RC
		// pause; subsequent retries force SATB completion in the pause
		// (a "degenerate" full collection) to reclaim cycles.
		e := p.vm.GCEpoch()
		switch attempt {
		case 0:
			p.vm.CollectIfEpoch(m, e, func() { p.collectRC(pauseCauseHeapFull) })
		case 1, 2, 3:
			p.vm.CollectIfEpoch(m, e, func() { p.collectRC(pauseCauseEmergency) })
		default:
			panic(fmt.Sprintf("lxr: out of memory allocating %d bytes: %s", l.Size, p.bt))
		}
	}
}

// WriteRef implements vm.Plan: LXR's field-logging write barrier
// (Fig. 3). The fast path is one metadata load; the slow path captures
// the to-be-overwritten referent (for coalescing decrements and the SATB
// snapshot) and the field address (for the coalescing increment at the
// next pause), once per field per epoch. Remembered-set maintenance for
// in-flight evacuation sets piggybacks on the store.
func (p *LXR) WriteRef(m *vm.Mutator, src obj.Ref, i int, val obj.Ref) {
	ms := m.PlanState.(*mutState)
	if verifyEnabled && !val.IsNil() {
		if !p.plausibleRef(val) {
			panic("lxr verify: mutator stored implausible ref")
		}
		if s := p.om.Size(val); s < 16 || p.om.NumRefs(val) > 8000 {
			p.diagnoseSlot(p.om.SlotAddr(src, i), val)
		}
	}
	slot := p.om.SlotAddr(src, i)
	if p.logs.Get(slot) != 0 { // isUnlogged (or busy)
		p.logField(ms, slot)
	}
	p.om.A.StoreRef(slot, val)
	if !val.IsNil() && p.satbActive.Load() && p.om.A.Contains(val) &&
		p.bt.HasFlag(val.Block(), immix.FlagDefrag) {
		p.rem.Record(slot, val.Block())
	}
}

func (p *LXR) logField(ms *mutState, slot obj.Ref) {
	for {
		switch p.logs.Get(slot) {
		case 0: // logged by a racing thread; its capture is published
			return
		case 1: // unlogged
			if p.logs.TryBeginLog(slot) {
				old := p.om.A.LoadRef(slot)
				if !old.IsNil() {
					ms.decBuf.Push(old)
				}
				ms.modBuf.Push(slot)
				p.logs.FinishLog(slot)
				ms.slowOps++
				p.logsSince.Add(1)
				p.barrierSlow.Add(1)
				return
			}
		default: // busy: wait for the winner to capture the old value
		}
	}
}

// ReadRef implements vm.Plan. LXR requires no read barrier — one of its
// key advantages over the LVB-based concurrent copying collectors.
func (p *LXR) ReadRef(m *vm.Mutator, src obj.Ref, i int) obj.Ref {
	return p.om.LoadSlot(src, i)
}

// PollSafepoint implements vm.Plan: the RC trigger fast path. The
// pacer folds the survival-rate trigger into a single allocation-budget
// comparison (policy.RCPacer.AllocLimit); the increment threshold is
// checked when configured.
func (p *LXR) PollSafepoint(m *vm.Mutator) {
	ms, _ := m.PlanState.(*mutState)
	if ms != nil && ms.alloc.SinceEpoch > 0 {
		p.allocSince.Add(0) // keep counter hot; actual adds happen in Alloc
	}
	var logged int64
	if p.cfg.IncrementThreshold > 0 {
		logged = p.logsSince.Load()
	}
	due := p.pacer.ShouldCollect(policy.Signals{
		AllocBytes:   p.allocSince.Load(),
		LoggedFields: logged,
	})
	if due && p.gcScheduled.CompareAndSwap(false, true) {
		e := p.vm.GCEpoch()
		p.vm.CollectIfEpoch(m, e, func() { p.collectRC(pauseCauseTrigger) })
		p.gcScheduled.Store(false)
	}
}

// CollectNow implements vm.Plan: an explicit synchronous collection,
// self-serialised against other collections.
func (p *LXR) CollectNow(cause string) {
	p.vm.RunCollection(nil, func() { p.collectRC(pauseCauseExplicit) })
}
