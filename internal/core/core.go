// Package core implements LXR — Latency-critical Immix with Reference
// counting (Zhao, Blackburn & McKinley, PLDI 2022) — on the simulated
// runtime substrate.
//
// LXR identifies garbage primarily with coalescing deferred reference
// counting performed in regular, brief stop-the-world pauses; reclaims
// most memory without copying in an Immix heap; judiciously copies
// (young evacuation on first increment, mature evacuation of sparse
// blocks guided by RC remembered sets); detects cyclic and stuck-count
// garbage with an occasional concurrent SATB trace that may span
// multiple RC epochs; and processes decrements lazily on a concurrent
// thread.
package core

import (
	"sync"
	"sync/atomic"

	"lxr/internal/conctrl"
	"lxr/internal/gcwork"
	"lxr/internal/immix"
	"lxr/internal/mem"
	"lxr/internal/meta"
	"lxr/internal/obj"
	"lxr/internal/policy"
	"lxr/internal/remset"
	"lxr/internal/satb"
	"lxr/internal/trace"
	"lxr/internal/vm"
)

// Config controls an LXR instance. Zero values select the paper's
// default configuration (§4, "LXR Configuration").
type Config struct {
	// HeapBytes is the heap budget.
	HeapBytes int
	// GCThreads sizes the parallel STW worker pool.
	GCThreads int
	// ConcWorkers is how many of the pool's workers the concurrent
	// phases borrow between pauses (gcwork.Pool.Lend) to drain lazy
	// decrements and advance the SATB trace in parallel. 1 selects the
	// classic single-threaded concurrent quantum loop. Default: half
	// of GCThreads, minimum 1; clamped to GCThreads. With AdaptiveConc
	// it is only the governor's starting width.
	ConcWorkers int
	// AdaptiveConc drives the borrow width adaptively (conctrl
	// governor): loans shrink when mutators are CPU-starved and grow
	// when cores sit idle, sized from a windowed utilization estimator
	// over the VM's sharded statistics — the way HotSpot sizes its
	// concurrent GC threads. ConcWorkers becomes the initial width;
	// the width ranges over [1, GCThreads].
	AdaptiveConc bool
	// MMUFloor, with AdaptiveConc, is an optional minimum-mutator-
	// utilization target (0 < floor < 1): windows whose achieved
	// utilization falls under the floor vote the width up, on the
	// theory that pause-side catch-up work means the concurrent phases
	// are under-resourced. 0 disables the floor (pure utilization
	// policy).
	MMUFloor float64
	// AdaptivePacing drives the collection triggers adaptively
	// (policy.RCPacer): RC epochs stretch when the machine is idle and
	// shorten when the decrement backlog starts getting absorbed by
	// pauses. Off, the pacer reproduces the paper's fixed trigger
	// configuration exactly.
	AdaptivePacing bool
	// SurvivalThresholdBytes is the RC trigger's expected-survivor
	// bound per epoch (the paper uses 128 MB on multi-GB heaps; default
	// here scales with the heap: HeapBytes/8, capped at 128 MB).
	SurvivalThresholdBytes int64
	// IncrementThreshold bounds logged fields per epoch (0 = disabled,
	// the paper's default).
	IncrementThreshold int64
	// WastageThreshold is the SATB predicted-wastage trigger (default 5%).
	WastageThreshold float64
	// CleanBlockThreshold is the minimum clean blocks an RC epoch must
	// yield before the next pause starts an SATB (default: 1/16 of the
	// heap's blocks).
	CleanBlockThreshold int
	// DefragOccupancy is the block-occupancy ceiling for evacuation-set
	// candidacy (default 0.5, §3.3.2).
	DefragOccupancy float64
	// DefragMaxBlocks caps evacuation-set size (default: heap/16).
	DefragMaxBlocks int
	// RemsetRegionBlocks selects per-region remembered sets (4 MB
	// regions = 128 blocks); 0 selects the single whole-heap set, the
	// paper's default.
	RemsetRegionBlocks int
	// CleanBufferSlots sizes the lock-free clean-block buffer (default
	// 32, the §5.4 sensitivity knob).
	CleanBufferSlots int

	// Ablations (Table 7 "Concurrency" columns).

	// NoConcurrentSATB (-SATB) performs the whole trace inside the
	// triggering pause instead of concurrently.
	NoConcurrentSATB bool
	// NoLazyDecrements (-LD) processes decrements inside the pause.
	NoLazyDecrements bool
	// NoYoungEvac disables young-object evacuation (promote in place).
	NoYoungEvac bool
	// NoMatureEvac disables evacuation-set defragmentation.
	NoMatureEvac bool
	// EnableMatureEvac opts in to evacuation-set defragmentation
	// (§3.3.2). The mechanism is fully implemented (remembered sets,
	// reuse-counter validation, quarantined source blocks) but on this
	// substrate a rare interaction between concurrent tracing,
	// same-pause promotion and block recycling can still strand a stale
	// reference (run LXR_VERIFY=1 to observe); it therefore defaults to
	// off, and LXR relies on young evacuation plus line recycling for
	// defragmentation — the dominant effect in the paper's own
	// reclamation breakdown (Table 7: geomean YC 1.1%).
	EnableMatureEvac bool

	// MaxTraceEpochs bounds how many RC epochs a single SATB trace may
	// span before the next pause forces its completion (default 32).
	// This is a robustness bound: traces normally complete on the
	// concurrent thread well before it.
	MaxTraceEpochs int

	// Tracer, when non-nil, attaches the GC event tracer: pause-phase
	// spans, loan spans, pacing-trigger instants and sampled barrier
	// instants are recorded into its rings. nil (the default) leaves
	// every instrumentation site as a single predictable branch.
	Tracer *trace.Tracer
}

func (c *Config) setDefaults() {
	if c.HeapBytes == 0 {
		c.HeapBytes = 64 << 20
	}
	if c.GCThreads == 0 {
		c.GCThreads = 4
	}
	if c.ConcWorkers == 0 {
		c.ConcWorkers = c.GCThreads / 2
	}
	if c.ConcWorkers < 1 {
		c.ConcWorkers = 1
	}
	if c.ConcWorkers > c.GCThreads {
		c.ConcWorkers = c.GCThreads
	}
	if c.SurvivalThresholdBytes == 0 {
		c.SurvivalThresholdBytes = int64(c.HeapBytes) / 8
		if c.SurvivalThresholdBytes > 128<<20 {
			c.SurvivalThresholdBytes = 128 << 20
		}
	}
	if c.WastageThreshold == 0 {
		c.WastageThreshold = 0.05
	}
	heapBlocks := c.HeapBytes / mem.BlockSize
	if c.CleanBlockThreshold == 0 {
		c.CleanBlockThreshold = heapBlocks / 16
		if c.CleanBlockThreshold < 2 {
			c.CleanBlockThreshold = 2
		}
	}
	if c.DefragOccupancy == 0 {
		c.DefragOccupancy = 0.5
	}
	if c.DefragMaxBlocks == 0 {
		c.DefragMaxBlocks = heapBlocks / 16
		if c.DefragMaxBlocks < 4 {
			c.DefragMaxBlocks = 4
		}
	}
	if c.MaxTraceEpochs == 0 {
		c.MaxTraceEpochs = 32
	}
}

// LXR is the collector plan.
type LXR struct {
	cfg Config

	bt       *immix.BlockTable
	om       obj.Model
	rc       *meta.RCTable
	straddle *meta.BitTable // granule: straddle marker, not an object start
	logs     *meta.FieldLogTable
	marks    *meta.BitTable // granule: SATB mark bits
	visited  *meta.BitTable // granule: evacuation-trace visited bits
	reuse    *meta.LineCounters
	rem      *remset.Table
	tracer   *satb.Tracer
	pool     *gcwork.Pool
	vm       *vm.VM
	// events is the GC event tracer (nil = tracing off; every use is
	// one nil-check branch). The SATB tracer above is unrelated.
	events *trace.Tracer

	// pacer owns every start decision: the RC pause trigger polled at
	// safepoints and the SATB cycle votes evaluated at pause end
	// (policy.RCPacer behind the shared pacing contract).
	pacer policy.Pacer

	// Epoch counters polled by the trigger fast path. Mutators
	// accumulate in per-mutator counters (mutState) and publish here at
	// a coarse grain from the trigger poll; pauses and UnbindMutator
	// fold in the unpublished tails, so across a pause the totals are
	// exact.
	allocSince  atomic.Int64 // published bytes allocated since last pause
	logsSince   atomic.Int64 // published barrier slow paths since last pause
	gcScheduled atomic.Bool

	// satbActive is true from the pause that seeds a trace until the
	// pause that completes reclamation for it.
	satbActive atomic.Bool

	evacSet     []int // blocks flagged FlagDefrag for the current trace
	traceEpochs int   // RC epochs the current trace has spanned

	// pauseTrack differences the pool's per-worker item counters across
	// pauses so each pause's work distribution lands in the phase-tagged
	// telemetry histograms (vm.HistWorkerPauseItems).
	pauseTrack gcwork.PauseItemTracker

	// Flushed-at-pause queues.
	losNewMu struct{ q gcwork.SharedAddrQueue } // large objects allocated this epoch
	rootDecs []obj.Ref                          // deferred root decrements for next epoch

	conc *concurrent

	// Pre-resolved handles for the per-object-hot stats counters, so
	// decrement and promotion paths skip the counter-name lookup.
	// Initialised in Boot.
	ctr struct {
		decrements, deadOld, skip, promoted, evacYoung, stuck vm.CounterHandle
	}

	// Per-pause scratch (valid only during a pause).
	rootSlots []*obj.Ref
	survived  atomic.Int64 // young bytes surviving this epoch
	copiedY   atomic.Int64 // young bytes evacuated this epoch
	promoted  atomic.Int64 // young objects promoted this epoch

	epoch atomic.Uint64 // completed RC epochs

	// Residue accumulators for mutators that deregistered mid-epoch;
	// live mutators' counts stay in mutState until the pause harvest.
	allocObjects atomic.Int64 // objects allocated since last pause (telemetry)
	barrierSlow  atomic.Int64 // barrier slow paths since last pause (telemetry)

	// Debug provenance (LXR_VERIFY only).
	provMu   sync.Mutex
	prov     map[int]blockProvenance
	lineProv map[int]blockProvenance // per-line span handouts
	blockLog map[int][]blockEvent    // per-block lifecycle events
}

// New creates an LXR plan.
func New(cfg Config) *LXR {
	cfg.setDefaults()
	bt := immix.NewBlockTable(immix.Config{
		HeapBytes:        cfg.HeapBytes,
		CleanBufferSlots: cfg.CleanBufferSlots,
	})
	p := &LXR{
		cfg:      cfg,
		bt:       bt,
		om:       obj.Model{A: bt.Arena},
		rc:       meta.NewRCTable(bt.Arena),
		straddle: meta.NewBitTable(bt.Arena, mem.GranuleLog),
		logs:     meta.NewFieldLogTable(bt.Arena),
		marks:    meta.NewBitTable(bt.Arena, mem.GranuleLog),
		visited:  meta.NewBitTable(bt.Arena, mem.GranuleLog),
		reuse:    meta.NewLineCounters(bt.Arena),
		pool:     gcwork.NewPool(cfg.GCThreads),
	}
	// Fresh large objects must start with clean side metadata: stale
	// field-log states from a previous occupant would corrupt coalescing
	// (a stale Busy state would even hang the barrier).
	bt.LOS().OnAlloc = func(start, end mem.Address) {
		p.logs.ClearRange(start, end)
		p.straddle.ClearRange(start, end)
		p.marks.ClearRange(start, end)
	}
	p.rem = remset.NewTable(p.reuse, cfg.RemsetRegionBlocks)
	p.tracer = &satb.Tracer{
		OM:    p.om,
		Marks: p.marks,
		// Mature-only SATB: skip unpromoted objects (zero RC) and
		// straddle markers, which are not object starts (§3.2.2). The
		// plausibility check shields the tracer from stale queue
		// entries whose memory has been reclaimed and reused.
		Filter: func(r obj.Ref) bool {
			return p.plausibleRef(r) && p.rc.Get(r) != 0 && !p.straddle.Get(r) && p.saneRef(r)
		},
		// Concurrent tracing can scan slots whose values are torn or
		// stale (the memory may have been reclaimed mid-trace); the
		// plausibility check shields the block-table lookup, exactly as
		// the baselines' OnEdge hooks do.
		OnEdge: func(slot mem.Address, v obj.Ref) {
			if p.plausibleRef(v) && p.bt.HasFlag(v.Block(), immix.FlagDefrag) {
				p.rem.Record(slot, v.Block())
			}
		},
	}
	mode := policy.Static
	if cfg.AdaptivePacing {
		mode = policy.Adaptive
	}
	p.pacer = policy.NewRCPacer(policy.RCPacerConfig{
		Mode:                   mode,
		Collector:              p.Name(),
		HeapBytes:              cfg.HeapBytes,
		SurvivalThresholdBytes: cfg.SurvivalThresholdBytes,
		IncrementThreshold:     cfg.IncrementThreshold,
		HeapBlocks:             bt.BudgetBlocks(),
		CleanBlockThreshold:    cfg.CleanBlockThreshold,
		WastageFraction:        cfg.WastageThreshold,
	})
	if cfg.Tracer != nil {
		p.events = cfg.Tracer
		p.pool.SetTracer(cfg.Tracer)
		policy.SetTriggerHook(p.pacer, cfg.Tracer.TriggerHook())
	}
	p.installBlockTrace()
	p.conc = newConcurrent(p)
	return p
}

// matureEvacOn reports whether evacuation-set defragmentation is active.
func (c *Config) matureEvacOn() bool { return c.EnableMatureEvac && !c.NoMatureEvac }

// Name implements vm.Plan.
func (p *LXR) Name() string {
	switch {
	case p.cfg.NoConcurrentSATB && p.cfg.NoLazyDecrements:
		return "LXR-STW"
	case p.cfg.NoConcurrentSATB:
		return "LXR-SATB"
	case p.cfg.NoLazyDecrements:
		return "LXR-LD"
	}
	return "LXR"
}

// Arena implements vm.Plan.
func (p *LXR) Arena() *mem.Arena { return p.bt.Arena }

// Boot implements vm.Plan.
func (p *LXR) Boot(v *vm.VM) {
	p.vm = v
	p.ctr.decrements = v.Stats.Handle(CtrDecrements)
	p.ctr.deadOld = v.Stats.Handle(CtrDeadOld)
	p.ctr.skip = v.Stats.Handle(CtrDefensiveSkip)
	p.ctr.promoted = v.Stats.Handle(CtrPromoted)
	p.ctr.evacYoung = v.Stats.Handle(CtrYoungEvacBytes)
	p.ctr.stuck = v.Stats.Handle(CtrStuck)
	p.conc.start()
}

// Shutdown implements vm.Plan.
func (p *LXR) Shutdown() {
	p.conc.stop()
	p.pool.Stop()
}

// Epoch returns the number of completed RC epochs.
func (p *LXR) Epoch() uint64 { return p.epoch.Load() }

// BlockTable exposes the heap for tests and the harness.
func (p *LXR) BlockTable() *immix.BlockTable { return p.bt }

// RC exposes the reference-count table for tests.
func (p *LXR) RC() *meta.RCTable { return p.rc }

// GCWorkerStats exposes the pool's per-worker utilization, split into
// in-pause and on-loan work (harness telemetry).
func (p *LXR) GCWorkerStats() []gcwork.WorkerStat { return p.pool.WorkerStats() }

// GCLoanStats returns how many between-pause worker loans ran and how
// many work items they processed (harness telemetry).
func (p *LXR) GCLoanStats() (loans, items int64) { return p.pool.LoanStats() }

// ConcWorkers reports the configured between-pause borrow width (the
// governor's initial width when adaptive).
func (p *LXR) ConcWorkers() int { return p.cfg.ConcWorkers }

// GovernorTrace returns the adaptive-width governor's run record, or
// nil when the borrow width is static (harness telemetry).
func (p *LXR) GovernorTrace() *conctrl.Trace {
	if p.conc.ctl == nil {
		return nil
	}
	if g := p.conc.ctl.Governor(); g != nil {
		return g.Trace()
	}
	return nil
}

// PacingTrace returns the pacer's archived decision record (harness
// telemetry, emitted under "pacing" in the -json output).
func (p *LXR) PacingTrace() *policy.Trace { return p.pacer.Trace() }

// --- mutator state -----------------------------------------------------------

// mutState is the per-mutator plan state. The epoch counters (bump
// bytes in alloc.SinceEpoch, largeSince, allocObjs, slowOps) are plain
// fields written only by the owning mutator; the trigger poll publishes
// the allocation-volume tail into the global atomics at a coarse grain
// (allocPublishBytes) and pauses harvest everything exactly, so the
// allocation and barrier fast paths touch no shared cache lines.
type mutState struct {
	alloc      immix.Allocator
	decBuf     gcwork.AddrBuffer // overwritten referents (coalescing decs + SATB snapshot)
	modBuf     gcwork.AddrBuffer // logged field addresses (coalescing incs)
	lxr        *LXR
	largeSince int64 // LOS bytes since the last publish (bump bytes live in alloc.SinceEpoch)
	allocObjs  int64 // objects allocated since the last pause (telemetry)
	slowOps    int64 // barrier slow paths since the last pause
	slowPub    int64 // portion of slowOps already published to logsSince
	shard      int   // event-tracer instant lane (from the mutator ID)
}

// LXR caches "stores may need remembered-set recording" — satbActive
// with a non-empty evacuation set — in each mutator's BarrierWatch
// field. All inputs only change inside stop-the-world pauses, so the
// flag is refreshed at every pause end (and on bind) and the barrier
// replaces the satbActive.Load + Contains + HasFlag chain with one
// mutator-local bool test, without even a PlanState type assertion.

// lineMap adapts the RC table (plus straddle markers, which keep their
// lines' RC words non-zero) to the allocator's free-line query.
type lineMap struct{ rc *meta.RCTable }

func (l lineMap) LineFree(idx int) bool { return l.rc.LineFree(idx) }

// FreeLineBits implements immix.LineBitsSource: one call fills a
// block's whole free-line bitmap so the allocator's span scan is
// word-at-a-time.
func (l lineMap) FreeLineBits(firstLine int, bits *[mem.LinesPerBlock / 32]uint32) {
	l.rc.FreeLineBits(firstLine, bits)
}

// BindMutator implements vm.Plan.
func (p *LXR) BindMutator(m *vm.Mutator) {
	ms := &mutState{lxr: p, shard: trace.MutShard(uint64(m.ID))}
	ms.alloc = immix.Allocator{
		BT:          p.bt,
		Lines:       lineMap{p.rc},
		UseRecycled: true,
		OnSpan:      p.onSpan,
	}
	// The caller holds the running token, so no pause can be flipping
	// the SATB/evacuation state concurrently.
	m.BarrierWatch = p.satbActive.Load() && len(p.evacSet) > 0
	m.PlanState = ms
}

// UnbindMutator implements vm.Plan.
func (p *LXR) UnbindMutator(m *vm.Mutator) {
	ms := m.PlanState.(*mutState)
	ms.alloc.Flush()
	// Fold the per-mutator epoch counters into the global residue
	// accumulators the next pause will harvest (the caller still holds
	// the running token, so no pause races this).
	p.allocSince.Add(ms.alloc.HarvestSinceEpoch() + ms.largeSince)
	p.logsSince.Add(ms.slowOps - ms.slowPub)
	p.allocObjects.Add(ms.allocObjs)
	p.barrierSlow.Add(ms.slowOps)
	// Buffers are drained at the next pause via the shared queues,
	// segment-granular (no flattening copy).
	for _, s := range ms.decBuf.TakeSegs() {
		p.conc.decs.Append(s)
	}
	for _, s := range ms.modBuf.TakeSegs() {
		p.conc.mods.Append(s)
	}
	m.PlanState = nil
}

// onSpan prepares a span handed to a bump allocator: reused lines get
// their reuse counters bumped (remset staleness guard) and all metadata
// cleared so new objects start with Logged fields, no straddle markers
// and no stale marks.
func (p *LXR) onSpan(start, end mem.Address, recycled bool) {
	if recycled {
		p.reuse.BumpRange(start, end)
	}
	if verifyEnabled {
		p.noteSpan(start, end, recycled)
	}
	p.logs.ClearRange(start, end)
	p.straddle.ClearRange(start, end)
	p.marks.ClearRange(start, end)
}
