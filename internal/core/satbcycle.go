package core

import (
	"sort"
	"sync/atomic"

	"lxr/internal/gcwork"
	"lxr/internal/immix"
	"lxr/internal/mem"
	"lxr/internal/obj"
	"lxr/internal/policy"
)

// startSATB begins a concurrent trace epoch inside the current pause:
// it selects evacuation sets (blocks under the occupancy threshold,
// lowest occupancy first, §3.3.2), resets the line reuse counters that
// validate remembered-set entries, and seeds the tracer with the current
// root set.
func (p *LXR) startSATB() {
	if p.cfg.matureEvacOn() {
		p.selectEvacSets()
	}
	p.parFor(p.reuse.Len(), parClearThreshold, p.reuse.ResetRange)
	p.tracer.Begin()
	seeds := p.gatherRootDecs(make([]obj.Ref, 0, len(p.rootSlots)))
	p.tracer.Seed(seeds)
	p.traceEpochs = 0
	p.satbActive.Store(true)
	p.pacer.ObserveCycleStart(policy.Signals{
		HeapBlocks:   p.bt.InUseBlocks(),
		BudgetBlocks: p.bt.BudgetBlocks(),
	})
}

// selectEvacSets flags defragmentation targets: full blocks whose
// RC-table occupancy upper bound is below DefragOccupancy, sorted from
// the lowest occupancy, capped at DefragMaxBlocks. The occupancy scan
// reads 128 RC words per block, so candidates are gathered in parallel
// (per-worker partials, merged before the sort).
func (p *LXR) selectEvacSets() {
	type cand struct{ idx, live int }
	limit := int(p.cfg.DefragOccupancy * mem.GranulesPerBlock)
	var cands []cand
	outs := make([][]cand, p.pool.N)
	p.pool.ParallelFor(p.bt.Blocks(), func(w, start, end int) {
		out := outs[w]
		for i := start; i < end; i++ {
			idx := i + 1 // main blocks are 1-based
			if p.bt.State(idx) != immix.StateFull || p.bt.HasFlag(idx, immix.FlagEvacuating) {
				continue
			}
			if live := p.rc.BlockLiveGranules(idx); live < limit {
				out = append(out, cand{idx, live})
			}
		}
		outs[w] = out
	})
	for _, out := range outs {
		cands = append(cands, out...)
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].live < cands[j].live })
	if len(cands) > p.cfg.DefragMaxBlocks {
		cands = cands[:p.cfg.DefragMaxBlocks]
	}
	p.evacSet = p.evacSet[:0]
	for _, c := range cands {
		p.bt.SetFlag(c.idx, immix.FlagDefrag)
		p.evacSet = append(p.evacSet, c.idx)
	}
}

// finalizeSATB runs in the pause where the trace completed: it reclaims
// unmarked mature objects (cycles and stuck counts that reference
// counting cannot collect), evacuates the evacuation sets, clears mark
// bits, and feeds the live-block predictor.
func (p *LXR) finalizeSATB() {
	p.sweepUnmarked()
	if p.cfg.matureEvacOn() && len(p.evacSet) > 0 {
		p.evacuateSets()
	}
	p.parFor(p.marks.Words(), parClearThreshold, p.marks.ClearWords)
	p.tracer.Finish()
	p.satbActive.Store(false)
	p.pacer.ObserveCycleEnd(policy.Signals{
		HeapBlocks:   p.bt.InUseBlocks(),
		BudgetBlocks: p.bt.BudgetBlocks(),
	})
}

// sweepUnmarked reclaims every mature object the completed trace left
// unmarked. An unmarked object with a non-zero count was dead at the
// snapshot: clearing its counts frees its lines; no recursive
// decrements are needed because the entire unreachable subgraph is
// unmarked and swept in the same pass (§3.3.2, "SATB Reclamation").
func (p *LXR) sweepUnmarked() {
	var dead atomic.Int64
	n := p.bt.Blocks()
	p.pool.ParallelFor(n, func(_, start, end int) {
		for i := start; i < end; i++ {
			idx := i + 1 // main blocks are 1-based
			st := p.bt.State(idx)
			if st != immix.StateFull && st != immix.StateRecycled {
				continue
			}
			if p.bt.HasFlag(idx, immix.FlagEvacuating) {
				continue
			}
			d := p.sweepBlockUnmarked(idx)
			dead.Add(int64(d))
			// Only full, unlisted blocks may change state here; blocks
			// already on the recycled list stay put (their free lines
			// are found on reuse), and defrag targets are released
			// after evacuation.
			if d > 0 && st == immix.StateFull && !p.bt.HasFlag(idx, immix.FlagDefrag) {
				switch p.classifyBlock(idx) {
				case blockEmpty:
					p.noteFree(idx, "satbsweep")
					p.bt.ReleaseFree(idx)
				case blockPartial:
					p.bt.ReleaseRecycled(idx)
				}
			}
		}
	})
	// Large object space.
	p.bt.LOS().Each(func(a mem.Address) {
		if p.rc.Get(a) != 0 && !p.marks.Get(a) {
			p.rc.Set(a, 0)
			p.bt.LOS().Free(a)
			dead.Add(1)
		}
	})
	p.vm.Stats.Add(CtrDeadSATB, dead.Load())
}

// sweepBlockUnmarked clears the metadata of unmarked objects in one
// block, returning how many died.
func (p *LXR) sweepBlockUnmarked(idx int) int {
	dead := 0
	start := mem.BlockStart(idx)
	for g := 0; g < mem.GranulesPerBlock; g++ {
		a := start + mem.Address(g)<<mem.GranuleLog
		if p.rc.Get(a) == 0 || p.straddle.Get(a) || p.marks.Get(a) {
			continue
		}
		if !p.saneRef(a) {
			// A counted granule that does not decode to an object:
			// clear the stray count but leave neighbours alone.
			p.rc.Set(a, 0)
			p.vm.Stats.Add(CtrDefensiveSkip, 1)
			continue
		}
		p.reclaimObjectMeta(a)
		dead++
	}
	return dead
}

// reclaimObjectMeta clears the RC count and straddle markers of a dead
// object so its lines become reusable.
func (p *LXR) reclaimObjectMeta(ref obj.Ref) {
	size := p.om.Size(ref)
	p.rc.Set(ref, 0)
	if size > mem.LineSize {
		endLine := (ref + mem.Address(size) - 1).Line()
		// Objects never span blocks; clamping bounds the metadata walk
		// even if the header was clobbered, so one corrupt object can
		// never wipe another block's counts.
		if maxLine := (ref.Block()+1)*mem.LinesPerBlock - 1; endLine > maxLine {
			endLine = maxLine
		}
		for l := ref.Line() + 1; l < endLine; l++ {
			a := mem.LineStart(l)
			p.rc.Set(a, 0)
			p.straddle.Clear(a)
		}
	}
}

// --- mature evacuation ----------------------------------------------------------

// evacuateSets defragments the evacuation sets inside the pause, using
// the remembered sets (validated against line reuse counters) plus the
// current roots as the incoming-reference set. The bounded trace follows
// pointers only within the sets; each copied object's counts transfer to
// the new copy and the incoming slot is redirected (§3.3.2).
func (p *LXR) evacuateSets() {
	entries := p.rem.TakeAll()
	p.parFor(p.visited.Words(), parClearThreshold, p.visited.ClearWords)
	// Reused below as a per-block evacuation-failure count.
	p.parFor(p.bt.Arena.Blocks(), parClearThreshold, p.bt.ClearLiveRange)

	// Entries are validated against line reuse counters now and the
	// values re-checked at processing time: survivor allocators may
	// recycle a stale entry's line during this very pause.
	items := make([]mem.Address, 0, len(entries)+len(p.rootSlots))
	for _, e := range entries {
		if p.rem.Valid(e) {
			items = append(items, e.Slot)
		}
	}
	for i := range p.rootSlots {
		items = append(items, rootTag|mem.Address(i))
	}

	var copied atomic.Int64
	p.pool.Drain(items,
		func(w *gcwork.Worker) {
			w.Scratch = &immix.Allocator{
				BT:          p.bt,
				Lines:       lineMap{p.rc},
				UseRecycled: true,
				OnSpan:      p.onSpan,
			}
		},
		func(w *gcwork.Worker, item mem.Address) {
			if item&rootTag != 0 {
				slot := p.rootSlots[int(item&^rootTag)]
				p.evacSlot(w, &copied, func() obj.Ref { return *slot }, func(v obj.Ref) { *slot = v })
			} else {
				p.evacSlot(w, &copied,
					func() obj.Ref { return p.om.A.LoadRef(item) },
					func(v obj.Ref) { p.om.A.StoreRef(item, v) })
			}
		},
		func(w *gcwork.Worker) { w.Scratch.(*immix.Allocator).Flush() })
	p.vm.Stats.Add(CtrMatureEvacObjs, copied.Load())

	// Source blocks hold forwarding pointers that pending lazy
	// decrements may still need; they are quarantined until the
	// decrement queue drains, then line-scanned and released.
	for _, idx := range p.evacSet {
		p.bt.ClearFlag(idx, immix.FlagDefrag)
		p.bt.SetFlag(idx, immix.FlagEvacuating)
	}
	p.conc.submitEvacBlocks(p.evacSet)
	p.evacSet = p.evacSet[:0]
}

// evacSlot processes one incoming reference during evacuation.
func (p *LXR) evacSlot(w *gcwork.Worker, copied *atomic.Int64, get func() obj.Ref, set func(obj.Ref)) {
	val := get()
	if !p.plausibleRef(val) {
		return // nil, or garbage read through a stale remset entry
	}
	if !p.bt.HasFlag(val.Block(), immix.FlagDefrag) {
		return // outside the evacuation set: out of scope (§3.3.2)
	}
	if !p.saneRef(val) {
		return // stale entry decoding to a non-object
	}
	dst, moved, live := p.ensureEvacuated(w, copied, val)
	if !live {
		return // dead object or stale entry: nothing to redirect
	}
	if moved {
		set(dst)
	}
	// Scan the object once for pointers that stay within the sets.
	if p.visited.TrySet(val) {
		n := p.om.NumRefs(dst)
		for i := 0; i < n; i++ {
			slot := p.om.SlotAddr(dst, i)
			if child := p.om.A.LoadRef(slot); p.plausibleRef(child) &&
				p.bt.HasFlag(child.Block(), immix.FlagDefrag) {
				w.Push(slot)
			}
		}
	}
}

// ensureEvacuated copies val out of its block exactly once, transferring
// its reference count and clearing the source's metadata. When the copy
// reserve is exhausted the object stays in place (recorded as a
// per-block failure so the block is not treated as empty).
func (p *LXR) ensureEvacuated(w *gcwork.Worker, copied *atomic.Int64, val obj.Ref) (dst obj.Ref, moved, live bool) {
	for {
		fw := p.om.ForwardingWord(val)
		switch fw & 3 {
		case obj.FwdForwarded:
			return obj.Ref(fw >> 2), true, true
		case obj.FwdBusy:
			continue
		}
		if p.rc.Get(val) == 0 || p.straddle.Get(val) {
			return val, false, false // dead object or stale remset entry
		}
		if !p.om.TryClaimForwarding(val) {
			continue
		}
		size := p.om.Size(val)
		sa := w.Scratch.(*immix.Allocator)
		d, ok := sa.Alloc(size)
		if !ok {
			p.om.AbandonForwarding(val)
			p.bt.AddLive(val.Block(), 1) // evacuation failure: block stays live
			return val, false, true
		}
		p.om.CopyTo(val, d)
		p.rc.Set(d, p.rc.Get(val))
		p.markStraddleLines(d, size)
		n := p.om.NumRefs(d)
		for i := 0; i < n; i++ {
			p.logs.SetUnlogged(p.om.SlotAddr(d, i))
		}
		p.reclaimObjectMeta(val) // free the source lines (block quarantined)
		p.om.InstallForwarding(val, d)
		copied.Add(1)
		return d, true, true
	}
}

// plausibleRef reports whether v could be an object reference: non-nil,
// granule-aligned, and inside the arena. Values read through stale
// remembered-set entries can be arbitrary bit patterns; implausible ones
// are discarded (the reuse-counter check catches the rest, §3.3.2).
func (p *LXR) plausibleRef(v obj.Ref) bool {
	return !v.IsNil() && v&(mem.Granule-1) == 0 && p.om.A.Contains(v)
}
