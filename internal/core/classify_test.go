package core

import (
	"math/rand"
	"testing"

	"lxr/internal/mem"
	"lxr/internal/meta"
)

// classifyBlockRef is the per-line reference loop the word-at-a-time
// classification replaced: count free and used lines exhaustively.
func classifyBlockRef(rc *meta.RCTable, idx int) blockClass {
	base := idx * mem.LinesPerBlock
	free, used := 0, 0
	for l := base; l < base+mem.LinesPerBlock; l++ {
		if rc.LineFree(l) {
			free++
		} else {
			used++
		}
	}
	switch {
	case used == 0:
		return blockEmpty
	case free > 0:
		return blockPartial
	default:
		return blockFullLive
	}
}

// TestClassifyBlockMatchesPerLineReference drives random RC patterns —
// from all-dead through sparse to fully live, plus single-line edge
// cases at the block boundaries — through both classifications.
func TestClassifyBlockMatchesPerLineReference(t *testing.T) {
	a := mem.NewArena(16 * mem.BlockSize)
	rc := meta.NewRCTable(a)
	p := &LXR{rc: rc}
	rng := rand.New(rand.NewSource(7))
	densities := []float64{0, 0.02, 0.1, 0.5, 0.95, 1}
	for trial := 0; trial < 4000; trial++ {
		idx := 1 + rng.Intn(a.Blocks()-1)
		rc.ClearBlock(idx)
		switch trial % 8 {
		case 0: // exactly one counted line, at a random position
			l := rng.Intn(mem.LinesPerBlock)
			g := rng.Intn(mem.GranulesPerLine)
			rc.Set(mem.LineStart(idx*mem.LinesPerBlock+l)+mem.Address(g*mem.Granule), 1+uint32(rng.Intn(3)))
		case 1: // only the first and last lines counted
			rc.Set(mem.BlockStart(idx), 1)
			rc.Set(mem.LineStart((idx+1)*mem.LinesPerBlock-1), 2)
		default: // random density over all lines
			d := densities[rng.Intn(len(densities))]
			for l := 0; l < mem.LinesPerBlock; l++ {
				if rng.Float64() < d {
					g := rng.Intn(mem.GranulesPerLine)
					rc.Set(mem.LineStart(idx*mem.LinesPerBlock+l)+mem.Address(g*mem.Granule), 1+uint32(rng.Intn(3)))
				}
			}
		}
		if got, want := p.classifyBlock(idx), classifyBlockRef(rc, idx); got != want {
			t.Fatalf("trial %d block %d: classifyBlock=%v reference=%v", trial, idx, got, want)
		}
	}
}
