package core

import (
	"sync/atomic"
	"time"

	"lxr/internal/gcwork"
	"lxr/internal/immix"
	"lxr/internal/mem"
	"lxr/internal/obj"
	"lxr/internal/policy"
	"lxr/internal/trace"
	"lxr/internal/vm"
)

// Pause causes.
const (
	pauseCauseTrigger   = "trigger"   // survival/increment trigger
	pauseCauseHeapFull  = "heap-full" // allocation failure
	pauseCauseEmergency = "emergency" // allocation failure persisting: force full cycle
	pauseCauseExplicit  = "explicit"
)

// rootTag marks work items that index rootSlots rather than being heap
// slot addresses (bit 63 can never be a valid arena offset).
const rootTag mem.Address = 1 << 63

// Telemetry counter names (vm.Stats).
const (
	CtrPauses         = "lxr.pauses"
	CtrPausesSATB     = "lxr.pauses.satb"      // pauses that started an SATB trace
	CtrPausesLazy     = "lxr.pauses.lazy"      // pauses that had to finish lazy decrements
	CtrBarrierSlow    = "lxr.barrier.slow"     // field-logging slow paths
	CtrIncrements     = "lxr.increments"       // increments applied
	CtrDecrements     = "lxr.decrements"       // decrements applied
	CtrPromoted       = "lxr.promoted"         // young objects surviving
	CtrAllocObjects   = "lxr.alloc.objects"    // objects allocated
	CtrDeadOld        = "lxr.dead.old"         // mature objects reclaimed by RC
	CtrDeadSATB       = "lxr.dead.satb"        // mature objects reclaimed by SATB
	CtrStuck          = "lxr.stuck"            // counts that stuck at max
	CtrYoungEvacBytes = "lxr.evac.young.bytes" // young bytes copied
	CtrMatureEvacObjs = "lxr.evac.mature"      // mature objects copied
	CtrYoungFreeBlk   = "lxr.young.freeblocks" // clean blocks from young sweeps
	CtrSurvivedBytes  = "lxr.survived.bytes"
	CtrAllocBytes     = "lxr.alloc.bytes"
	CtrDefensiveSkip  = "lxr.defensive.skips" // implausible slot values filtered
)

// collectRC performs one RC epoch: a brief stop-the-world pause that
// applies increments (evacuating surviving young objects), sweeps young
// blocks, manages the SATB trace lifecycle, and hands decrements to the
// concurrent thread. The recorded pause kind is refined by what the
// pause actually absorbed — "rc" (young RC epoch), "+dec" when it had
// to finish decrements in the pause, "+mark" when it completed the SATB
// trace (final mark + mature reclamation + evacuation-set selection) —
// so the per-phase pause histograms separate those populations.
func (p *LXR) collectRC(cause string) {
	kind := "rc"
	dur := p.vm.StopTheWorldTagged(kind, func() string {
		p.conc.quiesce()
		defer p.conc.release()
		kind = p.pausePipeline(cause)
		return kind
	})
	// Approximate collector cycles: the pause occupies the GC worker
	// pool (LBO's "total cycles" metric, Fig. 7b).
	p.vm.Stats.AddGCWork(dur * time.Duration(p.pool.N))
	// Attribute this pause's per-worker work to its phase (the pool's
	// in-pause counters cannot advance again until the next pause).
	p.pauseTrack.Observe(p.pool, func(w int, items int64) {
		p.vm.Stats.RecordHistAt(w+1, vm.HistWorkerPauseItems+kind, items)
	})
}

// pausePipeline runs the pause phases and returns the refined pause
// kind for telemetry attribution.
func (p *LXR) pausePipeline(cause string) string {
	hadDec, hadMark := false, false
	st := p.vm.Stats
	ev := p.events // nil when tracing is off; Phase is a no-op then
	st.Add(CtrPauses, 1)
	ph := time.Now()

	// 1. Flush mutator state: thread-local allocators (their bump spans
	// may be reclaimed below), barrier buffers, and the per-mutator
	// epoch counters — the published residues in the global atomics plus
	// each mutator's unpublished tail add up to the exact epoch totals.
	// Modified-field captures stay segment-granular: the segments are
	// handed to the scheduler whole instead of being flattened into one
	// copy.
	var decSeeds []mem.Address
	var modSegs [][]mem.Address
	allocVol := p.allocSince.Swap(0)
	allocObjs := p.allocObjects.Swap(0)
	slowOps := p.barrierSlow.Swap(0)
	// Each rendezvous shard is walked by exactly one worker, so workers
	// accumulate into per-shard partials with no lock at all; the single
	// serial merge below replaces what used to be one mutex acquisition
	// per mutator inside the pause.
	var parts [vm.MutatorShards]flushPartial
	p.vm.EachMutatorShardParallel(p.pool, func(s int, m *vm.Mutator) {
		ms := m.PlanState.(*mutState)
		ms.alloc.Flush()
		pt := &parts[s]
		pt.vol += ms.alloc.HarvestSinceEpoch() + ms.largeSince
		pt.objs += ms.allocObjs
		pt.slow += ms.slowOps
		ms.largeSince, ms.allocObjs, ms.slowOps, ms.slowPub = 0, 0, 0, 0
		pt.decs = ms.decBuf.TakeInto(pt.decs)
		pt.segs = append(pt.segs, ms.modBuf.TakeSegs()...)
	})
	for i := range parts {
		allocVol += parts[i].vol
		allocObjs += parts[i].objs
		slowOps += parts[i].slow
		decSeeds = append(decSeeds, parts[i].decs...)
		modSegs = append(modSegs, parts[i].segs...)
	}
	decSeeds = append(decSeeds, p.conc.decs.Take()...)
	modSegs = append(modSegs, p.conc.mods.TakeSegs()...)
	p.logsSince.Store(0)
	st.Add(CtrAllocBytes, allocVol)
	st.Add(CtrAllocObjects, allocObjs)
	st.Add(CtrBarrierSlow, slowOps)
	ev.PhaseArg(trace.NameFlush, ph, uint64(len(decSeeds)))

	// 2. Finish unfinished lazy decrements first (§3.2.1): if the
	// previous epoch's decrements have not drained, the pause completes
	// them before anything else. An interrupted loan's remainder is
	// resumed directly across all pause workers (Loan.ResumeInPause) —
	// the concurrent drain continues at full width rather than being
	// re-chunked through a flat batch.
	if p.conc.hasPendingDecs() {
		st.Add(CtrPausesLazy, 1)
		hadDec = true
		ph = time.Now()
		intr, segs, touched := p.conc.takePending()
		p.processDecWork(intr, segs, touched)
		ev.Phase(trace.NameDecs, ph)
	}

	// 3. SATB seeding and (maybe) completion. decSeeds are the
	// overwritten referents: both RC decrements and SATB snapshot edges
	// (§3.2.2). The trace completes in the pause that finds the tracer
	// idle — by then every snapshot edge captured up to the previous
	// epoch has been traced, and this pause's captures drain in a short
	// parallel final mark.
	traceComplete := false
	if p.satbActive.Load() {
		ph = time.Now()
		p.traceEpochs++
		wasIdle := !p.tracer.Pending()
		p.tracer.Seed(decSeeds)
		if wasIdle || p.cfg.NoConcurrentSATB || cause == pauseCauseEmergency ||
			p.traceEpochs >= p.cfg.MaxTraceEpochs {
			p.tracer.DrainParallel(p.pool)
			traceComplete = true
		}
		ev.Phase(trace.NameSATBSeed, ph)
	}

	// 4. Increments: roots (deferral) and modified fields (coalescing),
	// with recursive increments into surviving young objects, which are
	// evacuated on their first increment (§3.3.2).
	p.survived.Store(0)
	p.copiedY.Store(0)
	p.promoted.Store(0)
	ph = time.Now()
	p.collectRootSlots()
	if n := len(p.rootSlots); n > 0 {
		rootItems := make([]mem.Address, n)
		p.parFor(n, parGatherThreshold, func(start, end int) {
			for i := start; i < end; i++ {
				rootItems[i] = rootTag | mem.Address(i)
			}
		})
		modSegs = append(modSegs, rootItems)
	}
	p.drainIncrements(modSegs)
	ev.PhaseArg(trace.NameIncrements, ph, uint64(len(modSegs)))

	// 4b. The SATB inbox may hold snapshot edges captured before this
	// pause's young evacuations (decSeeds seeded in step 3, plus
	// barrier captures from earlier epochs). Rewrite them through the
	// still-intact forwarding words before the moved-from blocks can be
	// released and reused: an unresolved entry would be filtered as
	// dead (the old address reads RC 0) and silently cut the snapshot
	// closure — the same hazard G1 fixes with ResolvePending after its
	// evacuation pauses.
	if p.satbActive.Load() {
		ph = time.Now()
		p.tracer.ResolvePending(func(r obj.Ref) obj.Ref {
			if !p.plausibleRef(r) {
				return r
			}
			return p.om.Resolve(r)
		})
		ev.Phase(trace.NameResolve, ph)
	}

	// 5. Deferred root decrements: last epoch's root referents receive
	// decrements now; this epoch's roots are buffered for the next.
	// decSeeds may be aliased by the tracer inbox (Seed is zero-copy),
	// so the combined batch goes into a fresh slice.
	ph = time.Now()
	decs := make([]mem.Address, 0, len(decSeeds)+len(p.rootDecs))
	decs = append(decs, decSeeds...)
	decs = append(decs, p.rootDecs...)
	p.rootDecs = p.gatherRootDecs(p.rootDecs[:0])

	// 5a. Resolve the batch through forwarding NOW, while the pointers
	// installed by this pause's young evacuations are still intact. The
	// sweep below releases the evacuated-from young blocks, and a
	// mutator may recycle and zero them before the concurrent thread
	// gets to these decrements — a stale address would then resolve
	// through clobbered memory and decrement whatever young object was
	// allocated over it (mature evacuation quarantines its source
	// blocks against exactly this; young evacuation relies on this
	// pre-release resolution instead). Items are independent, so the
	// batch partitions over the pause workers; this was the last
	// serial O(decrements) loop in the pause.
	p.parFor(len(decs), parResolveThreshold, func(start, end int) {
		for i, a := range decs[start:end] {
			if r := obj.Ref(a); p.plausibleRef(r) {
				decs[start+i] = mem.Address(p.om.Resolve(r))
			}
		}
	})
	ev.PhaseArg(trace.NameRootDecs, ph, uint64(len(decs)))

	// 5b. Release the blocks the concurrent thread's completed
	// decrement batches freed (and evacuation sources whose forwarding
	// pointers are no longer needed). Done here — not concurrently — so
	// freed lines can never be reused before this pause's increments
	// have protected every surviving young object.
	ph = time.Now()
	p.conc.releaseReclaimable()
	ev.Phase(trace.NameReclaim, ph)

	// 6. Young sweep: blocks allocated into this epoch. Blocks whose
	// lines carry no reference counts are entirely dead young objects
	// and are reclaimed immediately — before any decrement is processed
	// (the implicitly-dead optimisation, §3.3.1).
	ph = time.Now()
	cleanYielded := p.sweepYoung()
	p.sweepNewLarge()
	ev.PhaseArg(trace.NameSweep, ph, uint64(cleanYielded))

	// 7. SATB completion: reclaim unmarked matures, then defragment the
	// evacuation sets using the remembered sets bootstrapped by the
	// trace (§3.3.2).
	if traceComplete {
		hadMark = true
		ph = time.Now()
		p.finalizeSATB()
		ev.Phase(trace.NameSATBFinal, ph)
	}

	// 8. Triggers: feed the epoch's signals to the pacer (survival
	// observation, decrement-backlog absorption, cumulative runtime
	// signals for the adaptive load window) — which recomputes the next
	// epoch's allocation budget — then put the SATB cycle vote to it.
	survived := p.survived.Load()
	st.Add(CtrSurvivedBytes, survived)
	ph = time.Now()
	es := policy.EpochStats{
		AllocBytes:       allocVol,
		SurvivedBytes:    survived,
		DecBacklog:       int64(len(decs)),
		AbsorbedDecPause: hadDec,
	}
	if p.cfg.AdaptivePacing {
		// Only adaptive pacing consumes the load signals; static mode
		// skips the mutator walk inside the stop-the-world window.
		es.MutBusy, es.GCWork, _, _ = p.vm.ConcSignals()
	}
	p.pacer.ObserveEpoch(es)
	if !p.satbActive.Load() &&
		p.pacer.ShouldStartCycle(policy.Signals{
			CleanYielded: cleanYielded,
			HeapBlocks:   p.bt.InUseBlocks(),
			BudgetBlocks: p.bt.BudgetBlocks(),
			DecBacklog:   int64(len(decs)),
		}) {
		p.startSATB()
		st.Add(CtrPausesSATB, 1)
		if p.cfg.NoConcurrentSATB {
			// -SATB ablation: the whole trace (and its reclamation)
			// happens inside this pause — a mark pause for attribution.
			hadMark = true
			p.tracer.DrainParallel(p.pool)
			p.finalizeSATB()
		}
	}
	ev.Phase(trace.NamePacer, ph)

	// 9. Hand decrements over: lazily to the concurrent thread, or — for
	// the -LD ablation — processed right here (which makes every pause a
	// decrement pause for attribution purposes).
	ph = time.Now()
	if p.cfg.NoLazyDecrements {
		hadDec = true
		p.processDecsInPause(decs)
		p.conc.finishEvacBlocksNow()
	} else {
		p.conc.submitDecs(decs)
	}
	ev.Phase(trace.NameDecSubmit, ph)
	// Refresh the mutators' cached barrier predicate: satbActive and the
	// evacuation set only change inside pauses (startSATB/finalizeSATB
	// above), so the per-mutator flag recomputed here is valid for the
	// whole next epoch.
	remWatch := p.satbActive.Load() && len(p.evacSet) > 0
	p.vm.EachMutatorParallel(p.pool, func(m *vm.Mutator) {
		m.BarrierWatch = remWatch
	})
	p.verifyHeap("end")
	if testPauseHook != nil {
		testPauseHook(p)
	}
	p.epoch.Add(1)
	kind := "rc"
	if hadDec {
		kind += "+dec"
	}
	if hadMark {
		kind += "+mark"
	}
	return kind
}

// flushPartial is one rendezvous shard's share of the step-1 mutator
// flush: volume counters plus the harvested decrement and modified-field
// buffers, merged serially after the parallel walk.
type flushPartial struct {
	vol, objs, slow int64
	decs            []mem.Address
	segs            [][]mem.Address
}

// Serial-fallback thresholds for the pause's data-parallel loops. Waking
// the worker pool costs a few microseconds, so small batches stay serial
// (same reasoning as vm's parRootThreshold).
const (
	// parGatherThreshold gates the root-slot gathering loops.
	parGatherThreshold = 256
	// parResolveThreshold gates the decrement-batch resolve; resolve
	// does real per-item work (forwarding-word loads), so it pays off
	// at moderate batch sizes.
	parResolveThreshold = 512
	// parClearThreshold gates full-table clears (mark bits, live words,
	// reuse counters), measured in table words: small tables finish
	// serially in less time than a pool dispatch.
	parClearThreshold = 1 << 14
)

// parFor runs f over [0, n) partitioned across the pause workers, or
// serially when n is below the given threshold.
func (p *LXR) parFor(n, threshold int, f func(start, end int)) {
	if n == 0 {
		return
	}
	if n < threshold || p.pool == nil {
		f(0, n)
		return
	}
	p.pool.ParallelFor(n, func(_, start, end int) { f(start, end) })
}

// gatherRootDecs appends the referent of every non-nil root slot to dst:
// the deferred decrements owed when these roots are dropped at the next
// epoch. Workers filter disjoint ranges into per-worker partials merged
// once (order is immaterial — they are decrement targets).
func (p *LXR) gatherRootDecs(dst []obj.Ref) []obj.Ref {
	if len(p.rootSlots) < parGatherThreshold || p.pool == nil {
		for _, s := range p.rootSlots {
			if !(*s).IsNil() {
				dst = append(dst, *s)
			}
		}
		return dst
	}
	outs := make([][]obj.Ref, p.pool.N)
	p.pool.ParallelFor(len(p.rootSlots), func(w, start, end int) {
		out := outs[w]
		for _, s := range p.rootSlots[start:end] {
			if !(*s).IsNil() {
				out = append(out, *s)
			}
		}
		outs[w] = out
	})
	for _, out := range outs {
		dst = append(dst, out...)
	}
	return dst
}

// testPauseHook, when non-nil, runs at the end of every pause with the
// world still stopped (test instrumentation only).
var testPauseHook func(*LXR)

// testDoubleAllocHook, when non-nil, fires when a survivor copy lands
// on a granule that already carries a reference count — a span handed
// out twice (test instrumentation only).
var testDoubleAllocHook func(p *LXR, src, dst obj.Ref, oldRC uint32, al *immix.Allocator)

// collectRootSlots gathers pointers to every root slot (mutator shadow
// stacks and globals) so increment processing can redirect them when the
// referent is evacuated.
func (p *LXR) collectRootSlots() {
	p.rootSlots = p.vm.RootSlots(p.pool, p.rootSlots[:0])
}

// --- increment processing -----------------------------------------------------

// drainIncrements processes the increment closure in parallel. Seed
// work arrives segment-granular (modified-field buffer segments plus a
// segment of rootTag-tagged root indices); items are either heap slot
// addresses (from the buffers or from scanning newly promoted objects)
// or rootTag-tagged root indices. Each worker owns a survivor copy
// allocator so young evacuation needs no locking.
func (p *LXR) drainIncrements(segs [][]mem.Address) {
	seeded := int64(0)
	for _, s := range segs {
		seeded += int64(len(s))
	}
	p.pool.DrainSegs(segs,
		func(w *gcwork.Worker) {
			w.Scratch = &immix.Allocator{
				BT:          p.bt,
				Lines:       lineMap{p.rc},
				UseRecycled: true, // survivors compact into partially free blocks
				OnSpan:      p.onSpan,
			}
		},
		func(w *gcwork.Worker, item mem.Address) {
			if item&rootTag != 0 {
				slot := p.rootSlots[int(item&^rootTag)]
				if v := *slot; !v.IsNil() && !p.saneRef(v) {
					p.ctr.skip.AddAt(w.ID+1, 1)
					return
				}
				p.applyInc(w, func() obj.Ref { return *slot }, func(v obj.Ref) { *slot = v })
			} else {
				p.logs.SetUnlogged(item) // re-arm the barrier for this field
				if verifyEnabled {
					if v := p.om.A.LoadRef(item); !v.IsNil() {
						if !p.plausibleRef(v) {
							p.diagnoseSlot(item, v)
						} else if s := p.om.Size(v); s < 16 || (s > 16<<10 && !p.om.IsLarge(v)) || p.om.NumRefs(v) > 8000 {
							p.diagnoseSlot(item, v)
						}
					}
				}
				p.applyInc(w,
					func() obj.Ref { return p.om.A.LoadRef(item) },
					func(v obj.Ref) { p.om.A.StoreRef(item, v) })
			}
		},
		func(w *gcwork.Worker) {
			w.Scratch.(*immix.Allocator).Flush()
		})
	p.vm.Stats.Add(CtrIncrements, seeded)
}

// applyInc applies one coalesced increment to the referent of a slot,
// promoting (and opportunistically evacuating) young objects receiving
// their first increment. get/set abstract the slot so heap slots and
// root slots share the logic.
func (p *LXR) applyInc(w *gcwork.Worker, get func() obj.Ref, set func(obj.Ref)) {
	val := get()
	if val.IsNil() {
		return
	}
	for {
		fw := p.om.ForwardingWord(val)
		switch fw & 3 {
		case obj.FwdForwarded:
			nv := obj.Ref(fw >> 2)
			set(nv)
			p.incEstablished(w, nv)
			return
		case obj.FwdBusy:
			continue // another worker is copying; spin until published
		}
		if p.rc.Get(val) == 0 {
			if !p.saneRef(val) {
				p.ctr.skip.AddAt(w.ID+1, 1)
				return
			}
			// Young object receiving its 0→1 increment (§3.3.2): it is
			// promoted now, and — when it sits in an all-young block and
			// space permits — evacuated.
			if p.youngEvacCandidate(val) {
				if !p.om.TryClaimForwarding(val) {
					continue // racing promoter; spin
				}
				if p.rc.Get(val) != 0 { // raced with in-place promotion
					p.om.AbandonForwarding(val)
					continue
				}
				size := p.om.Size(val)
				sa := w.Scratch.(*immix.Allocator)
				if dst, ok := sa.Alloc(size); ok {
					p.om.CopyTo(val, dst)
					if old := p.rc.Inc(dst); old != 0 && testDoubleAllocHook != nil {
						testDoubleAllocHook(p, val, dst, old, sa)
					}
					p.finishPromotion(w, dst, true)
					p.om.InstallForwarding(val, dst)
					set(dst)
					return
				}
				// No space: increment in place before abandoning the
				// claim so racing claimants observe a non-zero count.
				p.rc.Inc(val)
				p.finishPromotion(w, val, false)
				p.om.AbandonForwarding(val)
				return
			}
			if old := p.rc.Inc(val); old == 0 {
				p.finishPromotion(w, val, false)
			} else {
				p.noteStuck(w, old)
			}
			return
		}
		p.noteStuck(w, p.rc.Inc(val))
		return
	}
}

func (p *LXR) incEstablished(w *gcwork.Worker, val obj.Ref) {
	p.noteStuck(w, p.rc.Inc(val))
}

func (p *LXR) noteStuck(w *gcwork.Worker, old uint32) {
	if old == 2 { // 2→3 transition pins the count
		p.ctr.stuck.AddAt(w.ID+1, 1)
	}
}

// youngEvacCandidate reports whether ref sits in a block containing only
// young objects (clean when handed to an allocator this epoch): the
// all-young evacuation heuristic (§3.3.2).
func (p *LXR) youngEvacCandidate(ref obj.Ref) bool {
	if p.cfg.NoYoungEvac || p.om.IsLarge(ref) {
		return false
	}
	return p.bt.HasFlag(ref.Block(), immix.FlagYoung)
}

// finishPromotion performs the duties owed to a young object surviving
// its first collection, at its final address: account survival, write
// straddle-line markers so the allocator will not reuse its interior
// lines (§3.1), arm the write barrier for its fields (ending its
// implicitly-dead status), keep it live for an in-flight SATB trace, and
// enqueue recursive increments for its referents.
func (p *LXR) finishPromotion(w *gcwork.Worker, ref obj.Ref, copied bool) {
	size := p.om.Size(ref)
	p.survived.Add(int64(size))
	p.promoted.Add(1)
	p.ctr.promoted.AddAt(w.ID+1, 1)
	if copied {
		p.copiedY.Add(int64(size))
		p.ctr.evacYoung.AddAt(w.ID+1, int64(size))
	}
	p.markStraddleLines(ref, size)
	satb := p.satbActive.Load()
	if satb {
		p.marks.Set(ref)
	}
	n := p.om.NumRefs(ref)
	for i := 0; i < n; i++ {
		slot := p.om.SlotAddr(ref, i)
		p.logs.SetUnlogged(slot)
		if child := p.om.A.LoadRef(slot); !child.IsNil() {
			if !p.plausibleRef(child) {
				p.ctr.skip.AddAt(w.ID+1, 1)
				continue
			}
			// The tracer will never scan this object (promotion marked
			// it), so the promotion scan must stand in for the trace's
			// remembered-set bootstrap: record edges into evacuation
			// sets here, or evacuation would miss these slots (§3.3.2).
			if satb && p.bt.HasFlag(child.Block(), immix.FlagDefrag) {
				p.rem.Record(slot, child.Block())
			}
			w.Push(slot)
		}
	}
}

// markStraddleLines writes a non-zero RC-table entry (and a straddle
// bit, excluding the granule from object-start enumeration) for each
// trailing line except the last, so the line allocator cannot reuse
// them (§3.1).
func (p *LXR) markStraddleLines(ref obj.Ref, size int) {
	if p.om.IsLarge(ref) || size <= mem.LineSize {
		return
	}
	endLine := (ref + mem.Address(size) - 1).Line()
	if maxLine := (ref.Block()+1)*mem.LinesPerBlock - 1; endLine > maxLine {
		endLine = maxLine // objects never span blocks (see reclaimObjectMeta)
	}
	for l := ref.Line() + 1; l < endLine; l++ {
		a := mem.LineStart(l)
		p.rc.Set(a, 1)
		p.straddle.Set(a)
	}
}

// --- young sweep ---------------------------------------------------------------

// sweepYoung examines every block allocated into this epoch. Lines whose
// RC-table words are zero hold only dead young objects; whole-zero
// blocks return to the clean pool (most memory is reclaimed here,
// without copying or decrement processing). Returns the number of clean
// blocks yielded.
func (p *LXR) sweepYoung() int {
	dirty := p.bt.TakeDirty()
	var freed atomic.Int64
	p.pool.ParallelFor(len(dirty), func(_, start, end int) {
		for _, idx := range dirty[start:end] {
			if p.bt.State(idx) != immix.StateFull || p.bt.HasFlag(idx, immix.FlagEvacuating) {
				p.bt.ClearFlag(idx, immix.FlagYoung|immix.FlagDirty)
				continue
			}
			switch p.classifyBlock(idx) {
			case blockEmpty:
				p.noteFree(idx, "youngsweep")
				p.bt.ReleaseFree(idx)
				freed.Add(1)
			case blockPartial:
				p.bt.ReleaseRecycled(idx)
			default:
				p.bt.ClearFlag(idx, immix.FlagYoung|immix.FlagDirty)
			}
		}
	})
	p.vm.Stats.Add(CtrYoungFreeBlk, freed.Load())
	return int(freed.Load())
}

type blockClass int

const (
	blockEmpty blockClass = iota
	blockPartial
	blockFullLive
)

// classifyBlock inspects a block's RC-table line words. Classification
// needs only "any line free / any line used", so the scan runs word-at-
// a-time over the RC table with early exit (meta.RCTable.LineSummary)
// instead of 128 per-line interface probes per block.
func (p *LXR) classifyBlock(idx int) blockClass {
	anyFree, anyUsed := p.rc.LineSummary(idx*mem.LinesPerBlock, mem.LinesPerBlock)
	switch {
	case !anyUsed:
		return blockEmpty
	case anyFree:
		return blockPartial
	default:
		return blockFullLive
	}
}

// sweepNewLarge frees large objects allocated this epoch that received
// no increment (implicitly dead young large objects).
func (p *LXR) sweepNewLarge() {
	for _, a := range p.losNewMu.q.Take() {
		if p.rc.Get(a) == 0 {
			p.bt.LOS().Free(a)
		}
	}
}
