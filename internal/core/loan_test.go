package core_test

import (
	"testing"
	"time"

	"lxr/internal/core"
)

// waitForLoans polls the plan's loan telemetry until the concurrent
// phases have demonstrably run work on borrowed pool workers, failing
// after a generous deadline. The assertion itself is counter-based.
func waitForLoans(t *testing.T, p *core.LXR) (loans, items int64) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		loans, items = p.GCLoanStats()
		if loans > 0 && items > 0 {
			return loans, items
		}
		if time.Now().After(deadline) {
			t.Fatalf("concurrent phases never borrowed workers: loans=%d items=%d", loans, items)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestConcurrentDecsRunOnBorrowedWorkers: with ConcWorkers > 1, lazy
// decrement draining between pauses must run on workers lent from the
// gcwork pool (not inline on the concurrent thread), and every loaned
// item must show up in the per-worker utilization split.
func TestConcurrentDecsRunOnBorrowedWorkers(t *testing.T) {
	v := newVM(t, core.Config{HeapBytes: 16 << 20, GCThreads: 4, ConcWorkers: 2})
	p := v.Plan.(*core.LXR)
	if p.ConcWorkers() != 2 {
		t.Fatalf("ConcWorkers = %d, want 2", p.ConcWorkers())
	}
	m := v.RegisterMutator(8)

	// Build a mature holder graph, promote it, then sever it so the
	// next epoch hands a decrement batch to the concurrent thread.
	holder := m.Alloc(0, 64, 8)
	m.Roots[0] = holder
	m.RequestGC() // promote holder
	holder = m.Roots[0]
	for i := 0; i < 64; i++ {
		child := m.Alloc(0, 0, 64)
		m.Store(holder, i, child)
	}
	m.RequestGC() // promote children (increments)
	holder = m.Roots[0]
	for i := 0; i < 64; i++ {
		m.Store(holder, i, 0) // overwrite: coalescing decrements captured
	}
	m.RequestGC() // decrements submitted to the concurrent thread
	loans, items := waitForLoans(t, p)
	if loans < 1 || items < 1 {
		t.Fatalf("loans=%d items=%d", loans, items)
	}
	var loaned int64
	for _, ws := range p.GCWorkerStats() {
		loaned += ws.LoanItems
	}
	if loaned != items {
		t.Fatalf("per-worker loan items %d != pool loan items %d", loaned, items)
	}
	m.Deregister()
}

// TestChurnWithParallelConcurrentPhases is the integration stress for
// the loan/pause interleaving: a multi-mutator churn workload on a
// tight heap with the maximum borrow width, so RC pauses constantly
// interrupt outstanding decrement/trace loans. Run under -race in CI;
// heap integrity is checked by walking the shared list afterwards.
func TestChurnWithParallelConcurrentPhases(t *testing.T) {
	v := newVM(t, core.Config{HeapBytes: 16 << 20, GCThreads: 4, ConcWorkers: 4})
	core.ArmListWatch(v, 400, func(s string) { t.Log("watch: " + s) })
	core.ArmDoubleAllocWatch(func(s string) { t.Log(s) })
	defer core.DisarmListWatch()
	const workers = 4
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(id int) {
			m := v.RegisterMutator(8)
			defer m.Deregister()
			head := buildList(m, 400)
			m.Roots[1] = head
			table := m.Alloc(0, 32, 8)
			m.Roots[4] = table
			for i := 0; i < 120000; i++ {
				g := m.Alloc(2, 2, 32)
				m.Store(g, 0, m.Roots[1])
				m.Roots[2] = g
				// Steady overwrite traffic so every epoch carries a
				// decrement batch for the concurrent thread to drain on
				// borrowed workers between pauses.
				m.Store(m.Roots[4], i&31, g)
			}
			cur := m.Roots[1]
			for i := 0; i < 400; i++ {
				if cur.IsNil() {
					done <- errTruncated
					return
				}
				if got := m.ReadPayload(cur, 0); got != uint64(i) {
					t.Logf("node %d payload=%d: %s", i, got, core.DiagnoseRefForTest(v.Plan, cur, v.Stats))
					done <- errCorrupt
					return
				}
				cur = m.Load(cur, 0)
			}
			done <- nil
		}(w)
	}
	for i := 0; i < workers; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	p := v.Plan.(*core.LXR)
	loans, items := p.GCLoanStats()
	t.Logf("churn served %d loans, %d loaned items", loans, items)
	if loans == 0 {
		t.Fatal("churn workload never exercised the lending path")
	}
}

// TestCountersSurviveConcurrentParallelism: the sharded Stats counters
// must balance exactly however the work was spread across borrowed and
// pause workers — every decrement the mutator generated is applied (or
// defensively skipped) exactly once, so decrements+skips seen by the
// counters equal the barrier's capture count plus root decrements.
// Rather than modelling that full invariant, this test checks the
// robust half: promoted counts match between the sharded counter and
// the plan's own per-pause accounting stream.
func TestCountersSurviveConcurrentParallelism(t *testing.T) {
	v := newVM(t, core.Config{HeapBytes: 16 << 20, GCThreads: 4, ConcWorkers: 4})
	m := v.RegisterMutator(8)
	holder := m.Alloc(0, 100, 8)
	m.Roots[0] = holder
	m.RequestGC()
	holder = m.Roots[0]
	for i := 0; i < 100; i++ {
		m.Store(holder, i, m.Alloc(0, 0, 48))
	}
	m.RequestGC()
	m.Deregister()
	st := v.Stats
	// 101 objects received their first increment and survived: the
	// holder and its 100 children. Churn-free workload, so the sharded
	// counter total must be exact regardless of which worker shard each
	// increment landed on.
	if got := st.Counter(core.CtrPromoted); got != 101 {
		t.Fatalf("promoted counter %d, want exactly 101", got)
	}
	if snap := st.Counters(); snap[core.CtrPromoted] != 101 {
		t.Fatalf("Counters() snapshot %d, want 101", snap[core.CtrPromoted])
	}
}
