// Package conctrl is the shared concurrent-collection control plane.
//
// Every concurrent collector in this repository used to carry its own
// copy of the same driver machinery: one goroutine running bounded work
// quanta, a quiesce/release handshake with stop-the-world pauses, a
// published worker loan that pauses interrupt (gcwork.LoanRef), and
// panic parking so a contained worker panic surfaces on the pause path
// instead of killing the driver goroutine. LXR's concurrent thread,
// G1's mark controller and Shenandoah's cycle controller each
// duplicated that loop; this package owns it once, parameterised by a
// per-collector CycleDriver that supplies only the collector-specific
// work.
//
// On top of the controller sits the Governor: an adaptive loan-width
// policy that sizes how many pool workers the concurrent phases borrow
// between pauses, driven by a cheap windowed utilization estimator —
// shrink the loans when mutators are CPU-starved, grow them when cores
// sit idle — with an optional MMU-floor target, the way HotSpot sizes
// its concurrent GC threads.
package conctrl

import (
	"runtime"
	"sync"
	"time"

	"lxr/internal/gcwork"
	"lxr/internal/trace"
	"lxr/internal/vm"
)

// CycleDriver supplies the collector-specific half of a concurrent
// driver. The controller calls it from its own goroutine; all driver
// state is therefore single-threaded except where pauses touch it, and
// pauses may only do so between Quiesce and Release.
type CycleDriver interface {
	// HasWork reports whether a quantum would find anything to do. It
	// is called with the controller's lock held and must be cheap and
	// non-blocking (atomics and driver-owned state only).
	HasWork() bool
	// Quantum performs one bounded slice of concurrent work with the
	// controller's lock released. width is the current borrow width
	// (≥ 1): how many pool workers a loan taken inside this quantum
	// should request. Loans must be published through the controller's
	// LoanRef so pauses can interrupt them.
	Quantum(width int)
}

// ReleaseNotifier is an optional CycleDriver extension: OnRelease runs
// during Release, with the controller lock held, so drivers can reset
// per-pause state (G1 clears its tracer-idle latch — pauses may have
// seeded new trace work). It must not block.
type ReleaseNotifier interface {
	OnRelease()
}

// UrgencyWeighted is an optional CycleDriver extension: Urgency returns
// the driver's MMU-floor vote weight (≥ 1) for the adaptive loan-width
// governor. A window violating the MMU floor contributes this many grow
// votes instead of one, so the grow step lands fastest on the driver
// whose backlog the pauses directly absorb — LXR's decrement drain
// lengthens the very next pause, while G1-style marking only delays a
// future mixed collection. NewController installs the weight on the
// configured governor.
type UrgencyWeighted interface {
	Urgency() float64
}

// StopNotifier is an optional CycleDriver extension: OnStop runs once
// when the controller goroutine exits — after Stop, or after a quantum
// panic was parked. failure is the parked panic (nil on a clean stop).
// Drivers use it to release collector-side waiters (Shenandoah wakes
// mutators stalled on the cycle rendezvous so they fail cleanly instead
// of hanging).
type StopNotifier interface {
	OnStop(failure any)
}

// Config parameterises a Controller.
type Config struct {
	// Stats, when non-nil, accrues each quantum's duration as
	// concurrent collector work. Drivers whose quanta contain pauses or
	// waiting (Shenandoah's full-cycle quantum) must pass nil and
	// account their concurrent slices themselves.
	Stats *vm.Stats
	// Width is the static borrow width handed to Quantum when no
	// Governor is installed (clamped to ≥ 1).
	Width int
	// Governor, when non-nil, drives the borrow width adaptively; Width
	// is ignored. The controller samples Signals between quanta.
	Governor *Governor
	// Signals supplies the governor's cumulative feedback inputs
	// (vm.VM implements it). Required when Governor or WindowSink is
	// set.
	Signals Signals
	// WindowSink, when non-nil, receives every utilization-estimator
	// window the controller samples — (windowed mutator utilization,
	// total CPU load fraction) — whether or not a Governor is
	// installed. Adaptive pacing policies subscribe here so trigger
	// thresholds and the loan width act on the same estimator.
	WindowSink func(util, load float64)
	// Poll, when non-zero, makes an idle controller re-check HasWork on
	// this period instead of sleeping until Kick — for drivers whose
	// work condition is a heap-occupancy threshold no event announces
	// (Shenandoah's cycle trigger).
	Poll time.Duration
	// Trace, when non-nil, receives one span per work quantum on the
	// concurrent timeline shard (quanta can contain pauses — Shenandoah
	// runs whole cycles per quantum — which live on the GC shard, so
	// the timelines stay independently well-nested).
	Trace *trace.Tracer
}

// Signals supplies the cumulative inputs the governor differences into
// windows: total mutator busy time, total collector work, total
// stop-the-world time, and the live mutator count. Implementations must
// be cheap and O(1)-ish in mutator count — the governor samples this
// every few milliseconds (vm.VM derives busy time from per-shard
// aggregates rather than walking mutators). Samples may run slightly
// ahead of or behind the per-mutator truth while parks or registration
// changes are in flight; the windowed consumers clamp the resulting
// small negative deltas.
type Signals interface {
	ConcSignals() (mutBusy, gcWork, pause time.Duration, mutators int)
}

// Controller runs a CycleDriver on a dedicated goroutine and owns the
// machinery every concurrent collector driver needs:
//
//   - the quiesce/release handshake: Quiesce blocks until the driver is
//     parked between quanta, so pause phases own all shared collector
//     state; Release lets it resume.
//   - the loan lifecycle: drivers publish outstanding worker loans in
//     LoanRef(); Quiesce and Stop interrupt them so the handshake
//     completes within one work item per borrowed worker.
//   - panic parking: a panic escaping a quantum (typically a
//     *gcwork.WorkerPanic re-raised by a loan's Reclaim) is parked and
//     re-raised by the next Quiesce — on the pause path, a mutator
//     goroutine protected by the workload guard — so driver failures
//     become Failed data points exactly like in-pause ones.
//   - the width plumbing: each quantum receives the current borrow
//     width, static or governed.
type Controller struct {
	d   CycleDriver
	cfg Config

	mu    sync.Mutex
	cond  *sync.Cond
	yield bool // a pause wants the driver quiescent
	quiet bool // the driver acknowledges quiescence
	stopd bool

	// loan publishes the outstanding worker loan so Quiesce/Stop can
	// interrupt it without racing loan adoption.
	loan gcwork.LoanRef

	// failure holds a panic recovered from a quantum, guarded by mu,
	// re-raised by the next Quiesce.
	failure any

	started bool
	done    chan struct{}

	// Governor sampling state (controller goroutine only).
	epoch      time.Time
	lastSample time.Time
	prevMut    time.Duration
	prevGC     time.Duration
	prevPause  time.Duration
}

// NewController creates a controller around a driver. Call Start to
// launch the goroutine.
func NewController(d CycleDriver, cfg Config) *Controller {
	if cfg.Width < 1 {
		cfg.Width = 1
	}
	if cfg.Governor != nil {
		if uw, ok := d.(UrgencyWeighted); ok {
			cfg.Governor.SetUrgency(uw.Urgency())
		}
	}
	c := &Controller{d: d, cfg: cfg, done: make(chan struct{})}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// LoanRef returns the controller's published-loan slot. Drivers Adopt
// loans into it (so pauses can interrupt them) and Drop after Reclaim.
func (c *Controller) LoanRef() *gcwork.LoanRef { return &c.loan }

// Width returns the borrow width quanta should use right now: the
// governor's current width, or the static configured width.
func (c *Controller) Width() int {
	if c.cfg.Governor != nil {
		return c.cfg.Governor.Width()
	}
	return c.cfg.Width
}

// Governor returns the installed governor (nil when the width is
// static).
func (c *Controller) Governor() *Governor { return c.cfg.Governor }

// Start launches the driver goroutine.
func (c *Controller) Start() {
	c.mu.Lock()
	c.started = true
	c.epoch = time.Now()
	c.lastSample = c.epoch
	c.mu.Unlock()
	go c.run()
}

// Stop terminates the driver goroutine and waits for it to exit. An
// outstanding loan is interrupted. Safe to call more than once, or on a
// controller that was never started.
func (c *Controller) Stop() {
	c.mu.Lock()
	if !c.started {
		c.mu.Unlock()
		return
	}
	if !c.stopd {
		c.stopd = true
		c.loan.Interrupt()
		c.cond.Broadcast()
	}
	c.mu.Unlock()
	<-c.done
}

// Quiesce blocks until the driver is parked between quanta. Called with
// the world stopped, before pause phases touch collector state. An
// outstanding worker loan is interrupted so the handshake completes
// within one work item per borrowed worker. A panic the driver parked
// since the last pause is re-raised here, on the caller's goroutine.
func (c *Controller) Quiesce() {
	c.mu.Lock()
	c.yield = true
	c.loan.Interrupt()
	c.cond.Broadcast()
	for !c.quiet {
		c.cond.Wait()
	}
	f := c.failure
	c.failure = nil
	c.mu.Unlock()
	if f != nil {
		panic(f)
	}
}

// Release lets the driver resume after a pause. The driver's OnRelease
// hook (if any) runs first, under the controller lock.
func (c *Controller) Release() {
	c.mu.Lock()
	c.yield = false
	c.loan.Disarm()
	if rn, ok := c.d.(ReleaseNotifier); ok {
		rn.OnRelease()
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

// Kick wakes an idle controller so it re-evaluates HasWork — called
// when work is submitted from outside a pause (Shenandoah's cycle
// requests). Pauses do not need it: Release already wakes the driver.
func (c *Controller) Kick() {
	c.mu.Lock()
	c.cond.Broadcast()
	c.mu.Unlock()
}

// InjectFailure parks r as if a quantum had panicked, for the next
// Quiesce to re-raise (test instrumentation for the panic-parking
// contract).
func (c *Controller) InjectFailure(r any) {
	c.mu.Lock()
	c.failure = r
	c.mu.Unlock()
}

func (c *Controller) run() {
	defer close(c.done)
	for {
		c.mu.Lock()
		for (c.yield || !c.d.HasWork()) && !c.stopd {
			c.quiet = true
			c.cond.Broadcast()
			if c.cfg.Poll > 0 && !c.yield {
				// Occupancy-polling driver: re-check HasWork on the
				// poll period. quiet stays true across the sleep, so a
				// (hypothetical) pause quiesces instantly.
				c.mu.Unlock()
				time.Sleep(c.cfg.Poll)
				c.mu.Lock()
				continue
			}
			c.cond.Wait()
		}
		if c.stopd {
			c.quiet = true
			c.cond.Broadcast()
			c.mu.Unlock()
			c.notifyStop(nil)
			return
		}
		c.quiet = false
		c.mu.Unlock()

		t0 := time.Now()
		w := c.Width()
		if !c.guardedQuantum() {
			return
		}
		if c.cfg.Stats != nil {
			c.cfg.Stats.AddConcurrentWork(time.Since(t0))
		}
		if tr := c.cfg.Trace; tr != nil {
			tr.Span(trace.ShardConc, trace.NameQuantum, t0, time.Since(t0), uint64(w), 0)
		}
		c.govern()
	}
}

// guardedQuantum runs one quantum with panic containment: a recovered
// panic is parked in c.failure for the next Quiesce to re-raise on the
// pause path, the driver acknowledges permanent quiescence, OnStop
// fires, and false terminates the controller goroutine. The collector
// degrades to its in-pause processing paths.
func (c *Controller) guardedQuantum() (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			c.loan.Drop()
			c.mu.Lock()
			c.failure = r
			c.quiet = true
			c.cond.Broadcast()
			c.mu.Unlock()
			c.notifyStop(r)
			ok = false
		}
	}()
	c.d.Quantum(c.Width())
	return true
}

func (c *Controller) notifyStop(failure any) {
	if sn, ok := c.d.(StopNotifier); ok {
		sn.OnStop(failure)
	}
}

// Govern lets a driver whose quantum is long-running sample the
// governor mid-quantum — Shenandoah's quantum is a whole collection
// cycle, so without this the width could only move between cycles. It
// must be called from inside the driver's own Quantum (the controller
// goroutine); it is a no-op until the governor's window has elapsed.
func (c *Controller) Govern() { c.govern() }

// govern feeds the governor and/or the window sink one window when
// enough wall time has accumulated since the last sample. Runs on the
// controller goroutine — between quanta, and wherever a long-running
// quantum calls Govern; while the driver is idle no loans run and the
// width does not matter.
func (c *Controller) govern() {
	g := c.cfg.Governor
	if (g == nil && c.cfg.WindowSink == nil) || c.cfg.Signals == nil {
		return
	}
	// The sink-only path uses the same defaults withDefaults gives a
	// governor, so both paths sample one estimator geometry.
	window := DefaultWindow
	cores := runtime.NumCPU()
	if g != nil {
		window = g.cfg.Window
		cores = g.cfg.Cores
	}
	now := time.Now()
	wall := now.Sub(c.lastSample)
	if wall < window {
		return
	}
	mut, gc, pause, muts := c.cfg.Signals.ConcSignals()
	s := Sample{
		Wall:        wall,
		MutatorBusy: clampDur(mut - c.prevMut),
		GCWork:      clampDur(gc - c.prevGC),
		Pause:       clampDur(pause - c.prevPause),
		Mutators:    muts,
	}
	c.lastSample = now
	c.prevMut, c.prevGC, c.prevPause = mut, gc, pause
	if g != nil {
		g.Observe(now.Sub(c.epoch), s)
	}
	if c.cfg.WindowSink != nil {
		util, load := s.UtilLoad(cores)
		c.cfg.WindowSink(util, load)
	}
}

// clampDur floors a windowed delta at zero: the busy estimator counts a
// currently parked mutator as busy until its park is recorded, so a
// window closing mid-park can observe a small negative delta.
func clampDur(d time.Duration) time.Duration {
	if d < 0 {
		return 0
	}
	return d
}
