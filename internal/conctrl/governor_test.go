package conctrl

import (
	"testing"
	"time"
)

// govCfg builds a deterministic governor: explicit cores so the host's
// CPU count cannot influence the policy, settle 2 so traces stay short.
func govCfg(mmuFloor float64) GovernorConfig {
	return GovernorConfig{
		Min: 1, Max: 8, Initial: 4,
		MMUFloor: mmuFloor,
		Settle:   2,
		Cores:    8,
		Window:   time.Millisecond,
	}
}

// sample builds one window: fractions of the window spent as mutator
// busy time, collector work and stop-the-world time.
func sample(mutFrac, gcFrac, pauseFrac float64, mutators int) Sample {
	const wall = 10 * time.Millisecond
	return Sample{
		Wall:        wall,
		MutatorBusy: time.Duration(mutFrac * float64(wall)),
		GCWork:      time.Duration(gcFrac * float64(wall)),
		Pause:       time.Duration(pauseFrac * float64(wall)),
		Mutators:    mutators,
	}
}

// feed pushes n identical windows through the governor, advancing the
// synthetic clock, and returns the final width.
func feed(g *Governor, n int, s Sample) int {
	w := g.Width()
	for i := 0; i < n; i++ {
		w, _ = g.Observe(time.Duration(i+1)*10*time.Millisecond, s)
	}
	return w
}

// TestGovernorGrowsWhenCoresIdle: low total load (cores idle) must grow
// the width, one step per settled vote streak, up to Max.
func TestGovernorGrowsWhenCoresIdle(t *testing.T) {
	g := NewGovernor(govCfg(0))
	// load = (0.5 + 0.5)/8 = 0.125 < 0.70 → grow every 2 windows.
	if w := feed(g, 4, sample(0.5, 0.5, 0, 4)); w != 6 {
		t.Fatalf("width %d after 4 idle windows, want 6", w)
	}
	if w := feed(g, 100, sample(0.5, 0.5, 0, 4)); w != 8 {
		t.Fatalf("width %d, want clamp at Max=8", w)
	}
	tr := g.Trace()
	if tr.FinalWidth != 8 || len(tr.Resizes) != 4 {
		t.Fatalf("trace final=%d resizes=%d, want 8 and 4 (4→8 one step at a time)", tr.FinalWidth, len(tr.Resizes))
	}
	for _, e := range tr.Resizes {
		if e.Reason != "cores-idle" {
			t.Fatalf("resize reason %q, want cores-idle", e.Reason)
		}
	}
	// Width trace = initial point + one point per resize.
	if len(tr.Widths) != 1+len(tr.Resizes) {
		t.Fatalf("width trace %d points, want %d", len(tr.Widths), 1+len(tr.Resizes))
	}
}

// TestGovernorShrinksWhenStarved: saturated cores with genuinely busy
// mutators must shrink the width down to Min.
func TestGovernorShrinksWhenStarved(t *testing.T) {
	g := NewGovernor(govCfg(0))
	// load = (6 + 2)/8 = 1.0 > 0.92, mutDemand = 6/6 = 1.0 ≥ 0.5.
	s := sample(6.0, 2.0, 0, 6)
	if w := feed(g, 100, s); w != 1 {
		t.Fatalf("width %d under sustained starvation, want Min=1", w)
	}
	for _, e := range g.Trace().Resizes {
		if e.Reason != "cpu-starved" {
			t.Fatalf("resize reason %q, want cpu-starved", e.Reason)
		}
	}
}

// TestGovernorHighLoadIdleMutatorsDoesNotShrink: a saturated machine
// whose mutators are mostly parked (open-loop pacing) is the
// collector's to use — no shrink. The load sits in the dead zone's
// upper side with mutDemand below the blame threshold, so the width
// must not move.
func TestGovernorHighLoadIdleMutatorsDoesNotShrink(t *testing.T) {
	g := NewGovernor(govCfg(0))
	// load = (0.4 + 7.6)/8 = 1.0 but mutDemand = 0.4/4 = 0.1 < 0.5.
	if w := feed(g, 100, sample(0.4, 7.6, 0, 4)); w != 4 {
		t.Fatalf("width %d, want unchanged 4 (high load blamed on GC itself)", w)
	}
	if n := len(g.Trace().Resizes); n != 0 {
		t.Fatalf("%d resizes, want none", n)
	}
}

// TestGovernorMMUFloorVotesGrow: a violated MMU floor votes grow even
// when the load alone would vote shrink.
func TestGovernorMMUFloorVotesGrow(t *testing.T) {
	g := NewGovernor(govCfg(0.9))
	// util = 1 − 0.2 = 0.8 < floor 0.9 although load = 1.0 and
	// mutDemand = 1.0 would otherwise shrink.
	s := sample(6.0, 2.0, 0.2, 6)
	if w := feed(g, 4, s); w != 6 {
		t.Fatalf("width %d, want 6 (two mmu-floor grow steps)", w)
	}
	for _, e := range g.Trace().Resizes {
		if e.Reason != "mmu-floor" {
			t.Fatalf("resize reason %q, want mmu-floor", e.Reason)
		}
	}
	// The same trace without the floor shrinks instead.
	g2 := NewGovernor(govCfg(0))
	if w := feed(g2, 4, s); w != 2 {
		t.Fatalf("width %d without floor, want 2", w)
	}
}

// TestGovernorHysteresis: alternating directions never settle, so the
// width must not move.
func TestGovernorHysteresis(t *testing.T) {
	g := NewGovernor(govCfg(0))
	idle := sample(0.5, 0.5, 0, 4)    // grow vote
	starved := sample(6.0, 2.0, 0, 6) // shrink vote
	for i := 0; i < 50; i++ {
		s := idle
		if i%2 == 1 {
			s = starved
		}
		g.Observe(time.Duration(i+1)*10*time.Millisecond, s)
	}
	if w := g.Width(); w != 4 {
		t.Fatalf("width %d under alternating votes, want unchanged 4", w)
	}
	// Neutral windows (dead zone) reset streaks too.
	neutral := sample(3.0, 3.4, 0, 4) // load = 0.8: between 0.70 and 0.92
	for i := 0; i < 3; i++ {
		g.Observe(time.Hour, idle)
		g.Observe(time.Hour, neutral)
	}
	if w := g.Width(); w != 4 {
		t.Fatalf("width %d with neutral resets, want unchanged 4", w)
	}
}

// TestGovernorAchievedMMU: the trace's achieved MMU is the worst
// windowed utilization observed.
func TestGovernorAchievedMMU(t *testing.T) {
	g := NewGovernor(govCfg(0))
	g.Observe(time.Millisecond, sample(1, 0, 0.05, 1))
	g.Observe(2*time.Millisecond, sample(1, 0, 0.40, 1))
	g.Observe(3*time.Millisecond, sample(1, 0, 0.10, 1))
	tr := g.Trace()
	if tr.Samples != 3 {
		t.Fatalf("samples %d, want 3", tr.Samples)
	}
	if got, want := tr.AchievedMMU, 0.60; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("achieved MMU %v, want %v", got, want)
	}
}

// TestGovernorNoSamples: an unsampled governor reports 0 achieved MMU
// (not a vacuous 1) and only the initial width point.
func TestGovernorNoSamples(t *testing.T) {
	tr := NewGovernor(govCfg(0)).Trace()
	if tr.AchievedMMU != 0 || tr.Samples != 0 {
		t.Fatalf("empty trace achievedMMU=%v samples=%d", tr.AchievedMMU, tr.Samples)
	}
	if len(tr.Widths) != 1 || tr.Widths[0].Width != 4 {
		t.Fatalf("empty width trace %v, want the initial point", tr.Widths)
	}
}

// TestGovernorUrgencyAcceleratesMMUFloor: an urgency-weighted driver
// reaches the MMU-floor grow step in ceil(Settle/Urgency) windows,
// while utilization-only votes keep the full hysteresis.
func TestGovernorUrgencyAcceleratesMMUFloor(t *testing.T) {
	cfg := govCfg(0.9)
	cfg.Settle = 4
	g := NewGovernor(cfg)
	g.SetUrgency(2)
	floor := sample(6.0, 2.0, 0.2, 6) // util 0.8 < floor 0.9
	// Two urgency-2 votes settle a 4-window hysteresis.
	if w := feed(g, 2, floor); w != 5 {
		t.Fatalf("width %d after 2 weighted mmu-floor windows, want 5", w)
	}
	// The same trace at the default weight needs all 4 windows.
	g2 := NewGovernor(cfg)
	if w := feed(g2, 3, floor); w != 4 {
		t.Fatalf("width %d after 3 unweighted windows, want unchanged 4", w)
	}
	if w := feed(g2, 1, floor); w != 5 {
		t.Fatalf("width %d after the 4th window, want 5", w)
	}
	// cores-idle grow votes are NOT weighted: settle stays 4.
	g3 := NewGovernor(cfg)
	g3.SetUrgency(3)
	idle := sample(0.5, 0.5, 0, 4)
	if w := feed(g3, 3, idle); w != 4 {
		t.Fatalf("width %d: urgency must not accelerate cores-idle votes", w)
	}
	// The urgency lands in the trace (omitted only at the default).
	if tr := g.Trace(); tr.Urgency != 2 {
		t.Fatalf("trace urgency %v, want 2", tr.Urgency)
	}
	if tr := g2.Trace(); tr.Urgency != 0 {
		t.Fatalf("default urgency must be omitted from the trace, got %v", tr.Urgency)
	}
}

// TestControllerInstallsDriverUrgency: NewController wires an
// UrgencyWeighted driver's weight into the configured governor.
func TestControllerInstallsDriverUrgency(t *testing.T) {
	g := NewGovernor(govCfg(0.9))
	d := &urgentDriver{}
	NewController(d, Config{Governor: g, Signals: fakeSignals{}})
	if tr := g.Trace(); tr.Urgency != 2.5 {
		t.Fatalf("governor urgency %v, want the driver's 2.5", tr.Urgency)
	}
}

type urgentDriver struct{}

func (d *urgentDriver) HasWork() bool    { return false }
func (d *urgentDriver) Quantum(int)      {}
func (d *urgentDriver) Urgency() float64 { return 2.5 }

type fakeSignals struct{}

func (fakeSignals) ConcSignals() (time.Duration, time.Duration, time.Duration, int) {
	return 0, 0, 0, 0
}

// TestControllerWindowSinkWithoutGovernor: the controller samples
// utilization windows for the sink even when no governor is installed
// (adaptive pacing without the adaptive loan width).
func TestControllerWindowSinkWithoutGovernor(t *testing.T) {
	var utils, loads []float64
	c := NewController(&urgentDriver{}, Config{
		Signals: fakeSignals{},
		WindowSink: func(util, load float64) {
			utils = append(utils, util)
			loads = append(loads, load)
		},
	})
	c.lastSample = time.Now().Add(-10 * time.Millisecond)
	c.govern()
	if len(utils) != 1 {
		t.Fatalf("sink saw %d windows, want 1", len(utils))
	}
	if utils[0] != 1 || loads[0] != 0 {
		t.Fatalf("idle zero-signal window reported util=%v load=%v, want 1 and 0", utils[0], loads[0])
	}
	// Below the 2ms default window: no sample.
	c.govern()
	if len(utils) != 1 {
		t.Fatalf("sub-window govern sampled anyway (%d windows)", len(utils))
	}
}
