package conctrl

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// GovernorConfig parameterises the adaptive loan-width policy. Zero
// values select defaults.
type GovernorConfig struct {
	// Min and Max bound the borrow width (defaults 1 and the GC thread
	// count the caller passes — Max must be set by the caller).
	Min, Max int
	// Initial is the starting width (default: the collector's static
	// ConcWorkers default, clamped into [Min, Max]).
	Initial int
	// MMUFloor, when non-zero, is the minimum windowed mutator
	// utilization the governor targets (0 < floor < 1). A window whose
	// achieved utilization falls under the floor votes grow: the pauses
	// are absorbing catch-up work (interrupted decrement remainders,
	// forced final marks) that better-resourced concurrent phases would
	// have kept off the pause path; starving them further only
	// lengthens the next pauses.
	MMUFloor float64
	// Window is the sampling period (default 2ms).
	Window time.Duration
	// GrowBelow is the total-CPU-load fraction under which cores are
	// considered idle and the width may grow (default 0.70).
	GrowBelow float64
	// ShrinkAbove is the total-CPU-load fraction above which mutators
	// are considered CPU-starved and the width shrinks (default 0.92).
	ShrinkAbove float64
	// MutDemand is the minimum per-mutator busy fraction required
	// before a high load is blamed on mutator starvation (default
	// 0.5): when the mutators themselves are mostly parked — an
	// open-loop workload pacing its arrivals — a saturated machine is
	// the collector's to use and no shrink is warranted.
	MutDemand float64
	// Settle is how many consecutive same-direction windows must agree
	// before the width moves one step (default 3) — hysteresis so a
	// single noisy window cannot flap the width.
	Settle int
	// Urgency weights the MMU-floor grow vote (default 1): a window
	// under the floor contributes Urgency votes instead of one, so a
	// driver whose backlog the pauses directly absorb — LXR's decrement
	// drain lengthens the very next pause — reaches the grow step in
	// ceil(Settle/Urgency) windows while utilization-only votes keep
	// the full Settle hysteresis. Drivers advertise their weight via
	// the UrgencyWeighted extension; the controller installs it.
	Urgency float64
	// Cores is the core count the load fraction is denominated in
	// (default runtime.NumCPU). The default is deliberately the host's
	// real parallelism, not the modelled machine's GOMAXPROCS: mutator
	// busy time includes runnable-but-descheduled time, so on a host
	// with fewer hardware threads than the modelled core count the
	// GOMAXPROCS denominator would report idle cores that do not exist
	// and grow loans straight into the mutators' only CPU.
	Cores int
}

func (c GovernorConfig) withDefaults() GovernorConfig {
	if c.Min < 1 {
		c.Min = 1
	}
	if c.Max < c.Min {
		c.Max = c.Min
	}
	if c.Initial < c.Min {
		c.Initial = c.Min
	}
	if c.Initial > c.Max {
		c.Initial = c.Max
	}
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.GrowBelow == 0 {
		c.GrowBelow = 0.70
	}
	if c.ShrinkAbove == 0 {
		c.ShrinkAbove = 0.92
	}
	if c.MutDemand == 0 {
		c.MutDemand = 0.5
	}
	if c.Settle <= 0 {
		c.Settle = 3
	}
	if c.Urgency <= 0 {
		c.Urgency = 1
	}
	if c.Cores <= 0 {
		c.Cores = runtime.NumCPU()
	}
	return c
}

// DefaultWindow is the estimator's default sampling period — shared by
// the governed path (GovernorConfig.Window's zero value) and the
// sink-only path (WindowSink without a Governor), so adaptive pacing
// with and without the adaptive loan width samples the same geometry.
const DefaultWindow = 2 * time.Millisecond

// Sample is one observation window of the feedback signals, already
// differenced from the cumulative counters.
type Sample struct {
	Wall        time.Duration // window length
	MutatorBusy time.Duration // mutator busy time inside the window
	GCWork      time.Duration // collector work (STW + concurrent) inside the window
	Pause       time.Duration // stop-the-world time inside the window
	Mutators    int           // live mutator threads
}

// UtilLoad derives the window's mutator utilization (1 − pause/wall,
// floored at 0) and total CPU demand fraction from the sample — the two
// quantities both the governor's resize policy and the pacing window
// export act on, so they are computed one way.
func (s Sample) UtilLoad(cores int) (util, load float64) {
	if s.Wall <= 0 {
		return 1, 0
	}
	util = 1 - float64(s.Pause)/float64(s.Wall)
	if util < 0 {
		util = 0
	}
	load = float64(s.MutatorBusy+s.GCWork) / (float64(s.Wall) * float64(cores))
	return util, load
}

// ResizeEvent records one width change.
type ResizeEvent struct {
	AtMS   float64 `json:"at_ms"`
	From   int     `json:"from"`
	To     int     `json:"to"`
	Reason string  `json:"reason"`
	// Utilization is the windowed mutator utilization (1 − pause/wall)
	// of the window that triggered the resize; Load is the total CPU
	// demand fraction of that window.
	Utilization float64 `json:"utilization"`
	Load        float64 `json:"load"`
}

// WidthPoint is one point of the width trace.
type WidthPoint struct {
	AtMS  float64 `json:"at_ms"`
	Width int     `json:"width"`
}

// Trace is a snapshot of everything the governor did during a run —
// the harness archives it per run ("governor" in the -json output).
type Trace struct {
	MMUFloor float64 `json:"mmu_floor,omitempty"`
	// Urgency is the driver's MMU-floor vote weight (omitted at the
	// default weight of 1).
	Urgency    float64 `json:"urgency,omitempty"`
	MinWidth   int     `json:"min_width"`
	MaxWidth   int     `json:"max_width"`
	FinalWidth int     `json:"final_width"`
	Samples    int64   `json:"samples"`
	// AchievedMMU is the worst windowed utilization the governor's own
	// estimator observed — over its actual sampling windows, which are
	// irregular (samples land between quanta, or at a long quantum's
	// Govern calls) and stretch across driver-idle stretches. It is the
	// quantity the MMUFloor vote acts on, so floor and achievement are
	// judged on identical windows; it is NOT comparable to the exact
	// pause-timeline MMU curve in the same run record, which evaluates
	// every fixed-size window and therefore bounds this value from
	// below.
	AchievedMMU float64       `json:"achieved_mmu"`
	Widths      []WidthPoint  `json:"width_trace"`
	Resizes     []ResizeEvent `json:"resize_events,omitempty"`
}

// NewCollectorGovernor builds the standard collector governor — width
// in [1, poolWorkers] starting at initial, with an optional MMU-floor
// target — so every plan derives its bounds the same way.
func NewCollectorGovernor(poolWorkers, initial int, mmuFloor float64) *Governor {
	return NewGovernor(GovernorConfig{
		Min:      1,
		Max:      poolWorkers,
		Initial:  initial,
		MMUFloor: mmuFloor,
	})
}

// Governor adaptively sizes the between-pause borrow width from
// observed mutator utilization. The policy per window:
//
//	util = 1 − pause/wall            (windowed mutator utilization)
//	load = (mutBusy + gcWork)/(wall × cores)
//	mutDemand = mutBusy/(wall × mutators)
//
//	util < MMUFloor (when set)                → vote grow  ("mmu-floor")
//	load > ShrinkAbove && mutDemand ≥ MutDemand → vote shrink ("cpu-starved")
//	load < GrowBelow                          → vote grow  ("cores-idle")
//	otherwise                                 → reset votes
//
// Settle consecutive same-direction votes move the width one step,
// clamped to [Min, Max]. Width reads are a single atomic load, so the
// controller's Quantum dispatch takes no lock; Observe is called only
// from the controller goroutine (and tests).
type Governor struct {
	cfg   GovernorConfig
	width atomic.Int32

	mu          sync.Mutex
	samples     int64
	growVotes   float64
	shrinkVotes float64
	minUtil     float64
	events      []ResizeEvent
	widths      []WidthPoint
}

// NewGovernor creates a governor; the width starts at cfg.Initial.
func NewGovernor(cfg GovernorConfig) *Governor {
	cfg = cfg.withDefaults()
	g := &Governor{cfg: cfg, minUtil: 1}
	g.width.Store(int32(cfg.Initial))
	g.widths = []WidthPoint{{AtMS: 0, Width: cfg.Initial}}
	return g
}

// Width returns the current borrow width (lock-free).
func (g *Governor) Width() int { return int(g.width.Load()) }

// SetUrgency installs the driver's MMU-floor vote weight (clamped to
// ≥ 1). The controller calls it at construction when the driver
// implements UrgencyWeighted; tests may call it directly. Must be set
// before windows are observed.
func (g *Governor) SetUrgency(u float64) {
	if u < 1 {
		u = 1
	}
	g.mu.Lock()
	g.cfg.Urgency = u
	g.mu.Unlock()
}

// Observe feeds one window through the resize policy and returns the
// (possibly new) width and whether it changed. at is the window's end
// on the run timeline (for the width trace).
func (g *Governor) Observe(at time.Duration, s Sample) (width int, changed bool) {
	if s.Wall <= 0 {
		return g.Width(), false
	}
	util, load := s.UtilLoad(g.cfg.Cores)
	mutDemand := 0.0
	if s.Mutators > 0 {
		mutDemand = float64(s.MutatorBusy) / (float64(s.Wall) * float64(s.Mutators))
	}

	g.mu.Lock()
	defer g.mu.Unlock()
	g.samples++
	if util < g.minUtil {
		g.minUtil = util
	}

	dir, reason := 0, ""
	switch {
	case g.cfg.MMUFloor > 0 && util < g.cfg.MMUFloor:
		dir, reason = +1, "mmu-floor"
	case load > g.cfg.ShrinkAbove && mutDemand >= g.cfg.MutDemand:
		dir, reason = -1, "cpu-starved"
	case load < g.cfg.GrowBelow:
		dir, reason = +1, "cores-idle"
	}

	switch dir {
	case +1:
		// MMU-floor violations carry the driver's urgency weight: the
		// grow vote lands fastest on the driver whose backlog the
		// pauses actually absorb.
		if reason == "mmu-floor" {
			g.growVotes += g.cfg.Urgency
		} else {
			g.growVotes++
		}
		g.shrinkVotes = 0
	case -1:
		g.shrinkVotes++
		g.growVotes = 0
	default:
		g.growVotes, g.shrinkVotes = 0, 0
	}

	from := int(g.width.Load())
	to := from
	switch {
	case g.growVotes >= float64(g.cfg.Settle):
		to = from + 1
		g.growVotes = 0
	case g.shrinkVotes >= float64(g.cfg.Settle):
		to = from - 1
		g.shrinkVotes = 0
	default:
		return from, false
	}
	if to < g.cfg.Min {
		to = g.cfg.Min
	}
	if to > g.cfg.Max {
		to = g.cfg.Max
	}
	if to == from {
		return from, false
	}
	g.width.Store(int32(to))
	atMS := float64(at) / float64(time.Millisecond)
	g.events = append(g.events, ResizeEvent{
		AtMS: atMS, From: from, To: to, Reason: reason,
		Utilization: util, Load: load,
	})
	g.widths = append(g.widths, WidthPoint{AtMS: atMS, Width: to})
	return to, true
}

// Trace snapshots the governor's run record.
func (g *Governor) Trace() *Trace {
	g.mu.Lock()
	defer g.mu.Unlock()
	urgency := g.cfg.Urgency
	if urgency == 1 {
		urgency = 0 // omit the default weight from the JSON record
	}
	t := &Trace{
		MMUFloor:    g.cfg.MMUFloor,
		Urgency:     urgency,
		MinWidth:    g.cfg.Min,
		MaxWidth:    g.cfg.Max,
		FinalWidth:  int(g.width.Load()),
		Samples:     g.samples,
		AchievedMMU: g.minUtil,
		Widths:      append([]WidthPoint(nil), g.widths...),
		Resizes:     append([]ResizeEvent(nil), g.events...),
	}
	if g.samples == 0 {
		t.AchievedMMU = 0 // never sampled: report 0, not a vacuous 1
	}
	return t
}
