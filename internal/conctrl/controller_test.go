package conctrl

import (
	"sync/atomic"
	"testing"
	"time"

	"lxr/internal/gcwork"
	"lxr/internal/mem"
)

// countDriver is a minimal CycleDriver: it has work until budget quanta
// have run.
type countDriver struct {
	budget   atomic.Int64
	quanta   atomic.Int64
	widths   chan int
	panicOn  atomic.Bool
	released atomic.Int64
	stopped  atomic.Int64
}

func (d *countDriver) HasWork() bool { return d.budget.Load() > 0 }

func (d *countDriver) Quantum(width int) {
	if d.panicOn.Load() {
		panic("driver quantum failure")
	}
	d.budget.Add(-1)
	d.quanta.Add(1)
	if d.widths != nil {
		select {
		case d.widths <- width:
		default:
		}
	}
}

func (d *countDriver) OnRelease() { d.released.Add(1) }

func (d *countDriver) OnStop(failure any) { d.stopped.Add(1) }

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestControllerRunsQuantaAndParks: the controller drains the driver's
// budget, parks, and resumes when kicked after new work appears.
func TestControllerRunsQuantaAndParks(t *testing.T) {
	d := &countDriver{}
	d.budget.Store(5)
	c := NewController(d, Config{Width: 3})
	c.Start()
	defer c.Stop()
	waitFor(t, "initial budget", func() bool { return d.quanta.Load() == 5 })

	d.budget.Store(2)
	c.Kick()
	waitFor(t, "kicked budget", func() bool { return d.quanta.Load() == 7 })
}

// TestControllerStaticWidth: without a governor every quantum receives
// the configured width.
func TestControllerStaticWidth(t *testing.T) {
	d := &countDriver{widths: make(chan int, 8)}
	d.budget.Store(3)
	c := NewController(d, Config{Width: 3})
	c.Start()
	defer c.Stop()
	for i := 0; i < 3; i++ {
		if w := <-d.widths; w != 3 {
			t.Fatalf("quantum width %d, want 3", w)
		}
	}
}

// TestControllerQuiesceRelease: Quiesce parks the driver even with work
// outstanding; Release (which must fire OnRelease) resumes it.
func TestControllerQuiesceRelease(t *testing.T) {
	d := &countDriver{}
	d.budget.Store(1 << 30)
	c := NewController(d, Config{Width: 1})
	c.Start()
	defer func() {
		d.budget.Store(0)
		c.Stop()
	}()

	c.Quiesce()
	before := d.quanta.Load()
	time.Sleep(20 * time.Millisecond)
	if got := d.quanta.Load(); got != before {
		t.Fatalf("driver ran %d quanta while quiescent", got-before)
	}
	c.Release()
	if d.released.Load() != 1 {
		t.Fatal("OnRelease did not fire")
	}
	waitFor(t, "resume after release", func() bool { return d.quanta.Load() > before })
}

// TestControllerPanicParkedAndDelivered: a quantum panic parks the
// failure, fires OnStop, and the next Quiesce re-raises it on the
// caller; a subsequent Quiesce is clean.
func TestControllerPanicParkedAndDelivered(t *testing.T) {
	d := &countDriver{}
	d.budget.Store(1 << 30)
	d.panicOn.Store(true)
	c := NewController(d, Config{Width: 1})
	c.Start()
	waitFor(t, "driver goroutine exit", func() bool { return d.stopped.Load() == 1 })

	func() {
		defer func() {
			if r := recover(); r != "driver quantum failure" {
				t.Fatalf("quiesce delivered %v, want the quantum failure", r)
			}
		}()
		c.Quiesce()
		t.Fatal("quiesce did not re-raise the parked failure")
	}()
	c.Quiesce() // consumed: clean
	c.Release()
	c.Stop() // goroutine already gone: must not hang
}

// TestControllerPollMode: with Poll set and no Kick, the controller
// notices newly appeared work by itself.
func TestControllerPollMode(t *testing.T) {
	d := &countDriver{}
	c := NewController(d, Config{Width: 1, Poll: time.Millisecond})
	c.Start()
	defer c.Stop()
	time.Sleep(5 * time.Millisecond) // idle: no work yet
	d.budget.Store(3)                // appears without any Kick
	waitFor(t, "poll pickup", func() bool { return d.quanta.Load() == 3 })
}

// TestControllerStopUnstarted: Stop on a never-started controller is a
// no-op, and double Stop does not hang.
func TestControllerStopUnstarted(t *testing.T) {
	d := &countDriver{}
	c := NewController(d, Config{Width: 1})
	c.Stop()
	c.Start()
	c.Stop()
	c.Stop()
}

// lendDriver lends real pool workers each quantum, so loan interruption
// through the controller's LoanRef can be exercised end to end.
type lendDriver struct {
	pool      *gcwork.Pool
	ctl       *Controller
	processed atomic.Int64
	pending   [][]mem.Address // driver-goroutine state, pause-touched only under quiesce
}

func (d *lendDriver) HasWork() bool { return len(d.pending) > 0 }

func (d *lendDriver) Quantum(width int) {
	segs := d.pending
	d.pending = nil
	loan := d.pool.Lend(width, segs, nil, func(w *gcwork.Worker, a mem.Address) {
		d.processed.Add(1)
	}, nil)
	d.ctl.LoanRef().Adopt(loan)
	loan.Reclaim()
	d.ctl.LoanRef().Drop()
	if loan.HasRemainder() {
		d.pending = loan.TakeRemainder()
	}
}

// TestControllerLoanInterruptConservation: pauses (Quiesce/Release)
// repeatedly interrupt the driver's loans; every seeded item must be
// processed exactly once, with the interrupted remainders resuming on
// later quanta.
func TestControllerLoanInterruptConservation(t *testing.T) {
	pool := gcwork.NewPool(4)
	defer pool.Stop()
	d := &lendDriver{pool: pool}
	const total = 200000
	seed := make([]mem.Address, total)
	for i := range seed {
		seed[i] = mem.Address(i)
	}
	d.pending = [][]mem.Address{seed}
	c := NewController(d, Config{Width: 2})
	d.ctl = c
	c.Start()
	defer c.Stop()

	for d.processed.Load() < total {
		c.Quiesce()
		// World "stopped": driver parked, loan reclaimed.
		c.Release()
	}
	if got := d.processed.Load(); got != total {
		t.Fatalf("processed %d items, want exactly %d", got, total)
	}
}
