package conctrl

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lxr/internal/gcwork"
	"lxr/internal/mem"
)

// TestStressGovernorResizesWithLoansAndPauses is the -race stress for
// the adaptive control plane: a driver lending real pool workers at the
// governor's current width, a governor resized concurrently by
// synthetic utilization windows, pauses interrupting loans through
// Quiesce/Release, and pause-side work (DrainSegs) interleaved between
// them — the full lifecycle the collectors exercise, compressed. The
// assertion is conservation: every item seeded to the driver or drained
// by a "pause" is processed exactly once.
func TestStressGovernorResizesWithLoansAndPauses(t *testing.T) {
	pool := gcwork.NewPool(4)
	defer pool.Stop()

	gov := NewGovernor(GovernorConfig{
		Min: 1, Max: 4, Initial: 2,
		Settle: 1, Cores: 4, Window: time.Microsecond,
	})
	d := &lendDriver{pool: pool}
	// The controller needs Signals for its own sampling; drive the
	// governor directly from a chaos goroutine instead, so resizes
	// land mid-loan deterministically often.
	c := NewController(d, Config{Width: 2, Governor: gov})
	d.ctl = c

	const (
		rounds  = 60
		perSeed = 3000
	)
	var next atomic.Int64
	seed := func(n int) []mem.Address {
		out := make([]mem.Address, n)
		for i := range out {
			out[i] = mem.Address(next.Add(1))
		}
		return out
	}

	// Seed the driver before it starts; later seeds arrive only while
	// quiescent (the ownership rule pauses obey).
	d.pending = [][]mem.Address{seed(perSeed)}
	c.Start()
	defer c.Stop()

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Chaos 1: governor resizes through synthetic windows — alternating
	// starved and idle traces so the width walks the whole range while
	// loans are in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			s := Sample{Wall: time.Millisecond, MutatorBusy: 4 * time.Millisecond,
				GCWork: time.Millisecond, Mutators: 4}
			if i%7 < 3 {
				s = Sample{Wall: time.Millisecond, MutatorBusy: time.Millisecond / 2,
					Mutators: 4}
			}
			gov.Observe(time.Duration(i)*time.Millisecond, s)
		}
	}()

	// Chaos 2: pause-side drains racing the loans for the pool's
	// dispatch lock.
	var pauseItems atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			items := seed(64)
			pool.Drain(items, nil, func(w *gcwork.Worker, a mem.Address) {
				pauseItems.Add(1)
			}, nil)
		}
	}()

	// Main thread: pauses that interrupt loans and refill the driver.
	driverTotal := int64(perSeed)
	for r := 0; r < rounds; r++ {
		c.Quiesce()
		if r < rounds-1 {
			d.pending = append(d.pending, seed(perSeed))
			driverTotal += perSeed
		}
		c.Release()
		time.Sleep(200 * time.Microsecond)
	}

	// Drain out: quiesce/release until the driver has processed all.
	deadline := time.Now().Add(20 * time.Second)
	for d.processed.Load() < driverTotal {
		if time.Now().After(deadline) {
			t.Fatalf("driver processed %d/%d items", d.processed.Load(), driverTotal)
		}
		c.Quiesce()
		c.Release()
		time.Sleep(100 * time.Microsecond)
	}
	close(stop)
	wg.Wait()

	if got := d.processed.Load(); got != driverTotal {
		t.Fatalf("driver processed %d items, want exactly %d (loan interrupt lost or duplicated work)", got, driverTotal)
	}
	if gov.Width() < 1 || gov.Width() > 4 {
		t.Fatalf("governor width %d escaped its bounds", gov.Width())
	}
	tr := gov.Trace()
	if len(tr.Resizes) == 0 {
		t.Fatal("stress never resized the width: the interleaving was not exercised")
	}
	t.Logf("stress: %d driver items, %d pause items, %d resizes, final width %d",
		d.processed.Load(), pauseItems.Load(), len(tr.Resizes), tr.FinalWidth)
}

// TestStressResumeInPause interleaves interrupted loans with in-pause
// resumption (Loan.ResumeInPause) — the loan-aware pause path — and
// asserts exact conservation across the loan/resume boundary.
func TestStressResumeInPause(t *testing.T) {
	pool := gcwork.NewPool(4)
	defer pool.Stop()

	var processed atomic.Int64
	const total = 300000
	seed := make([]mem.Address, total)
	for i := range seed {
		seed[i] = mem.Address(i + 1)
	}

	pending := [][]mem.Address{seed}
	for len(pending) > 0 {
		loan := pool.Lend(2, pending, nil, func(w *gcwork.Worker, a mem.Address) {
			processed.Add(1)
		}, nil)
		pending = nil
		// Interrupt quickly so a remainder usually survives.
		time.Sleep(50 * time.Microsecond)
		loan.Interrupt()
		loan.Reclaim()
		if loan.HasRemainder() {
			// Alternate the two consumption paths: resume across all
			// pool workers inside the "pause", or fold back into the
			// next loan.
			if processed.Load()%2 == 0 {
				loan.ResumeInPause(nil, func(w *gcwork.Worker, a mem.Address) {
					processed.Add(1)
				}, nil)
			} else {
				pending = loan.TakeRemainder()
			}
		}
	}
	if got := processed.Load(); got != total {
		t.Fatalf("processed %d items, want exactly %d", got, total)
	}
}
