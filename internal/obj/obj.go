// Package obj defines the object model of the simulated runtime.
//
// Every object occupies a 16-byte (two-word) header followed by its
// reference slots (8 bytes each) and then raw payload. Objects are
// 16-byte aligned, matching the allocation granule of the RC table.
//
// Header layout:
//
//	word 0: [0:32) size in bytes (including header)
//	        [32:48) number of reference slots
//	        [48:56) flags (large object, ...)
//	        [56:64) application type id
//	word 1: forwarding word — 0 when not forwarded; during copying it
//	        holds the new address tagged with a 2-bit state, allowing
//	        concurrent collectors to race on evacuation with CAS.
package obj

import (
	"fmt"

	"lxr/internal/mem"
)

// Ref is a reference to an object: the address of its header.
type Ref = mem.Address

// Header geometry.
const (
	// HeaderWords is the number of words in an object header.
	HeaderWords = 2
	// HeaderBytes is the header size in bytes.
	HeaderBytes = HeaderWords * mem.WordSize
	// MinSize is the minimum object size (a bare header).
	MinSize = mem.Granule
	// MaxRefs is the maximum number of reference slots.
	MaxRefs = 1<<16 - 1
	// MaxSize is the maximum encodable object size.
	MaxSize = 1<<32 - 1
	// LargeThreshold is the size above which objects go to the large
	// object space: half a block (16 KB), per Immix and LXR (§3.1).
	LargeThreshold = mem.BlockSize / 2
	// LineThreshold is the size above which an object cannot fit in a
	// line; such "medium" objects may trigger Immix dynamic overflow
	// allocation.
	LineThreshold = mem.LineSize
)

// Flags stored in header word 0.
const (
	FlagLarge uint64 = 1 << 48
)

// Forwarding word states (low 2 bits of header word 1).
const (
	fwdMask      uint64 = 3
	FwdNone      uint64 = 0 // not forwarded
	FwdBusy      uint64 = 1 // being copied by some thread
	FwdForwarded uint64 = 3 // copied; bits [2:] hold the new address << 2
)

// Layout describes an object's shape independent of any heap.
type Layout struct {
	NumRefs int // number of reference slots
	Size    int // total size in bytes, including header
	TypeID  uint8
	Large   bool
}

// SizeFor returns the aligned total size (bytes) of an object with the
// given reference slot count and payload bytes.
func SizeFor(numRefs, payloadBytes int) int {
	sz := HeaderBytes + numRefs*mem.WordSize + payloadBytes
	return int(mem.Address(sz).AlignUp(mem.Granule))
}

// Validate checks layout bounds.
func (l Layout) Validate() error {
	if l.NumRefs < 0 || l.NumRefs > MaxRefs {
		return fmt.Errorf("obj: invalid ref count %d", l.NumRefs)
	}
	if l.Size < MinSize || l.Size > MaxSize {
		return fmt.Errorf("obj: invalid size %d", l.Size)
	}
	if l.Size < HeaderBytes+l.NumRefs*mem.WordSize {
		return fmt.Errorf("obj: size %d too small for %d refs", l.Size, l.NumRefs)
	}
	return nil
}

// Model wraps an arena with object accessors. It is a value type wrapper
// so collectors and mutators share one way of decoding objects.
type Model struct {
	A *mem.Arena
}

// WriteHeader initialises the header of a new object at ref.
func (m Model) WriteHeader(ref Ref, l Layout) {
	w0 := uint64(uint32(l.Size)) | uint64(l.NumRefs)<<32 | uint64(l.TypeID)<<56
	if l.Large {
		w0 |= FlagLarge
	}
	m.A.Store(ref, w0)
	m.A.Store(ref+mem.WordSize, 0)
}

// Size returns the total size in bytes of the object at ref.
func (m Model) Size(ref Ref) int {
	return int(uint32(m.A.Load(ref)))
}

// NumRefs returns the number of reference slots of the object at ref.
func (m Model) NumRefs(ref Ref) int {
	return int(uint16(m.A.Load(ref) >> 32))
}

// TypeID returns the application type id of the object at ref.
func (m Model) TypeID(ref Ref) uint8 {
	return uint8(m.A.Load(ref) >> 56)
}

// IsLarge reports whether the object was allocated in the large object
// space.
func (m Model) IsLarge(ref Ref) bool {
	return m.A.Load(ref)&FlagLarge != 0
}

// SlotAddr returns the address of reference slot i of the object at ref.
func (m Model) SlotAddr(ref Ref, i int) mem.Address {
	return ref + HeaderBytes + mem.Address(i)*mem.WordSize
}

// LoadSlot reads reference slot i.
func (m Model) LoadSlot(ref Ref, i int) Ref {
	return m.A.LoadRef(m.SlotAddr(ref, i))
}

// StoreSlot writes reference slot i without any barrier. Collectors use
// it when fixing references; mutators must go through their plan.
func (m Model) StoreSlot(ref Ref, i int, v Ref) {
	m.A.StoreRef(m.SlotAddr(ref, i), v)
}

// PayloadAddr returns the address of the first payload byte.
func (m Model) PayloadAddr(ref Ref) mem.Address {
	return ref + HeaderBytes + mem.Address(m.NumRefs(ref))*mem.WordSize
}

// PayloadBytes returns the payload size in bytes.
func (m Model) PayloadBytes(ref Ref) int {
	return m.Size(ref) - HeaderBytes - m.NumRefs(ref)*mem.WordSize
}

// End returns the address one past the last byte of the object.
func (m Model) End(ref Ref) mem.Address {
	return ref + mem.Address(m.Size(ref))
}

// Straddles reports whether the object spans more than one line.
func (m Model) Straddles(ref Ref) bool {
	return (m.End(ref) - 1).Line() != ref.Line()
}

// EachSlot invokes f with (slotIndex, slotAddr, value) for every
// reference slot of the object at ref. It is the object-scanning
// primitive used by tracers, increment processing and recursive
// decrements.
func (m Model) EachSlot(ref Ref, f func(i int, slot mem.Address, v Ref)) {
	n := m.NumRefs(ref)
	slot := ref + HeaderBytes
	for i := 0; i < n; i++ {
		f(i, slot, m.A.LoadRef(slot))
		slot += mem.WordSize
	}
}

// --- Forwarding -----------------------------------------------------------

// ForwardingWord returns the raw forwarding word of ref.
func (m Model) ForwardingWord(ref Ref) uint64 {
	return m.A.Load(ref + mem.WordSize)
}

// IsForwarded reports whether ref has been evacuated.
func (m Model) IsForwarded(ref Ref) bool {
	return m.ForwardingWord(ref)&fwdMask == FwdForwarded
}

// ForwardingPointer returns the evacuated copy of ref. Only valid when
// IsForwarded(ref) is true.
func (m Model) ForwardingPointer(ref Ref) Ref {
	return Ref(m.ForwardingWord(ref) >> 2)
}

// TryClaimForwarding attempts to claim the right to copy ref, CASing the
// forwarding word from FwdNone to FwdBusy. It returns true when the
// caller won and must copy; on false the caller should call
// SpinForwarded to obtain the final address installed by the winner.
func (m Model) TryClaimForwarding(ref Ref) bool {
	return m.A.CAS(ref+mem.WordSize, FwdNone, FwdBusy)
}

// InstallForwarding publishes the new copy's address, completing a claim
// made with TryClaimForwarding.
func (m Model) InstallForwarding(ref, newRef Ref) {
	m.A.Store(ref+mem.WordSize, uint64(newRef)<<2|FwdForwarded)
}

// AbandonForwarding releases a claim without copying (e.g. copy-reserve
// exhausted); the object stays in place.
func (m Model) AbandonForwarding(ref Ref) {
	m.A.Store(ref+mem.WordSize, FwdNone)
}

// SpinForwarded waits until the forwarding word of ref leaves the busy
// state and returns the forwarding pointer, or ref itself if forwarding
// was abandoned.
func (m Model) SpinForwarded(ref Ref) Ref {
	for {
		w := m.ForwardingWord(ref)
		switch w & fwdMask {
		case FwdForwarded:
			return Ref(w >> 2)
		case FwdNone:
			return ref
		}
		// busy: another thread is copying; spin.
	}
}

// Resolve returns the current address of ref, following a forwarding
// pointer if one is installed.
func (m Model) Resolve(ref Ref) Ref {
	if ref.IsNil() {
		return ref
	}
	if w := m.ForwardingWord(ref); w&fwdMask == FwdForwarded {
		return Ref(w >> 2)
	}
	return ref
}

// CopyTo copies the object at ref to dst (which must have Size(ref)
// bytes available), clearing the copy's forwarding word.
func (m Model) CopyTo(ref, dst Ref) {
	m.A.Copy(dst, ref, m.Size(ref))
	m.A.Store(dst+mem.WordSize, 0)
}
