package obj_test

import (
	"testing"
	"testing/quick"

	"lxr/internal/mem"
	"lxr/internal/obj"
)

func model() obj.Model { return obj.Model{A: mem.NewArena(4 << 20)} }

func TestHeaderRoundTrip(t *testing.T) {
	m := model()
	ref := mem.BlockStart(1)
	l := obj.Layout{NumRefs: 3, Size: obj.SizeFor(3, 40), TypeID: 7}
	m.WriteHeader(ref, l)
	if m.Size(ref) != l.Size {
		t.Fatalf("size %d != %d", m.Size(ref), l.Size)
	}
	if m.NumRefs(ref) != 3 {
		t.Fatalf("refs %d", m.NumRefs(ref))
	}
	if m.TypeID(ref) != 7 {
		t.Fatalf("type %d", m.TypeID(ref))
	}
	if m.IsLarge(ref) {
		t.Fatal("not large")
	}
	if m.IsForwarded(ref) {
		t.Fatal("fresh object forwarded")
	}
}

func TestSizeForAlignsToGranule(t *testing.T) {
	f := func(refs uint8, payload uint16) bool {
		s := obj.SizeFor(int(refs), int(payload))
		return s%mem.Granule == 0 && s >= obj.HeaderBytes+int(refs)*8+int(payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSlotsAndPayloadDisjoint(t *testing.T) {
	m := model()
	ref := mem.BlockStart(1)
	m.WriteHeader(ref, obj.Layout{NumRefs: 2, Size: obj.SizeFor(2, 16)})
	m.StoreSlot(ref, 0, 0x100)
	m.StoreSlot(ref, 1, 0x200)
	if m.PayloadAddr(ref) != m.SlotAddr(ref, 2) {
		t.Fatal("payload must start after last slot")
	}
	if m.LoadSlot(ref, 0) != 0x100 || m.LoadSlot(ref, 1) != 0x200 {
		t.Fatal("slot round trip failed")
	}
	if m.PayloadBytes(ref) != 16 {
		t.Fatalf("payload bytes %d", m.PayloadBytes(ref))
	}
}

func TestEachSlot(t *testing.T) {
	m := model()
	ref := mem.BlockStart(1)
	m.WriteHeader(ref, obj.Layout{NumRefs: 4, Size: obj.SizeFor(4, 0)})
	for i := 0; i < 4; i++ {
		m.StoreSlot(ref, i, mem.Address(0x1000*(i+1)))
	}
	var got []obj.Ref
	m.EachSlot(ref, func(i int, slot mem.Address, v obj.Ref) {
		if slot != m.SlotAddr(ref, i) {
			t.Fatal("slot address mismatch")
		}
		got = append(got, v)
	})
	if len(got) != 4 || got[2] != 0x3000 {
		t.Fatalf("EachSlot got %v", got)
	}
}

func TestForwardingProtocol(t *testing.T) {
	m := model()
	ref := mem.BlockStart(1)
	dst := mem.BlockStart(2)
	m.WriteHeader(ref, obj.Layout{NumRefs: 0, Size: 32})
	if !m.TryClaimForwarding(ref) {
		t.Fatal("first claim must win")
	}
	if m.TryClaimForwarding(ref) {
		t.Fatal("second claim must lose")
	}
	m.InstallForwarding(ref, dst)
	if !m.IsForwarded(ref) {
		t.Fatal("not forwarded after install")
	}
	if m.ForwardingPointer(ref) != dst {
		t.Fatal("wrong forwarding pointer")
	}
	if m.Resolve(ref) != dst {
		t.Fatal("Resolve must follow forwarding")
	}
	if m.SpinForwarded(ref) != dst {
		t.Fatal("SpinForwarded must return the copy")
	}
}

func TestAbandonForwarding(t *testing.T) {
	m := model()
	ref := mem.BlockStart(1)
	m.WriteHeader(ref, obj.Layout{NumRefs: 0, Size: 32})
	if !m.TryClaimForwarding(ref) {
		t.Fatal("claim failed")
	}
	m.AbandonForwarding(ref)
	if m.IsForwarded(ref) {
		t.Fatal("abandoned object must not be forwarded")
	}
	if m.Resolve(ref) != ref {
		t.Fatal("Resolve of unforwarded must be identity")
	}
	if !m.TryClaimForwarding(ref) {
		t.Fatal("re-claim after abandon must succeed")
	}
}

func TestCopyToPreservesContentClearsForwarding(t *testing.T) {
	m := model()
	ref := mem.BlockStart(1)
	dst := mem.BlockStart(2)
	m.WriteHeader(ref, obj.Layout{NumRefs: 1, Size: obj.SizeFor(1, 8)})
	m.StoreSlot(ref, 0, 0xabc0)
	m.A.Store(m.PayloadAddr(ref), 99)
	m.TryClaimForwarding(ref) // busy state must not be copied
	m.CopyTo(ref, dst)
	if m.LoadSlot(dst, 0) != 0xabc0 {
		t.Fatal("slot not copied")
	}
	if m.A.Load(m.PayloadAddr(dst)) != 99 {
		t.Fatal("payload not copied")
	}
	if m.ForwardingWord(dst) != 0 {
		t.Fatal("copy must start unforwarded")
	}
}

func TestStraddles(t *testing.T) {
	m := model()
	base := mem.BlockStart(1)
	small := base.Plus(0)
	m.WriteHeader(small, obj.Layout{Size: 32})
	if m.Straddles(small) {
		t.Fatal("32B at line start must not straddle")
	}
	atEnd := base.Plus(mem.LineSize - 16)
	m.WriteHeader(atEnd, obj.Layout{Size: 32})
	if !m.Straddles(atEnd) {
		t.Fatal("object crossing a line boundary must straddle")
	}
}

func TestLayoutValidate(t *testing.T) {
	if (obj.Layout{NumRefs: -1, Size: 32}).Validate() == nil {
		t.Fatal("negative refs accepted")
	}
	if (obj.Layout{NumRefs: 0, Size: 8}).Validate() == nil {
		t.Fatal("sub-minimum size accepted")
	}
	if (obj.Layout{NumRefs: 4, Size: 16}).Validate() == nil {
		t.Fatal("size too small for refs accepted")
	}
	if (obj.Layout{NumRefs: 2, Size: obj.SizeFor(2, 0)}).Validate() != nil {
		t.Fatal("valid layout rejected")
	}
}
