package stats_test

import (
	"math"
	"testing"
	"testing/quick"

	"lxr/internal/stats"
)

func TestPercentiles(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := stats.Percentile(xs, 50); got != 3 {
		t.Fatalf("p50 = %v", got)
	}
	if got := stats.Percentile(xs, 100); got != 5 {
		t.Fatalf("p100 = %v", got)
	}
	if got := stats.Percentile(nil, 50); got != 0 {
		t.Fatalf("empty = %v", got)
	}
	ps := stats.Percentiles(xs, 0, 100)
	if ps[0] != 1 || ps[1] != 5 {
		t.Fatalf("ps = %v", ps)
	}
}

func TestPercentileMonotonic(t *testing.T) {
	f := func(xs []float64, a, b uint8) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) {
				return true
			}
		}
		lo, hi := float64(a%101), float64(b%101)
		if lo > hi {
			lo, hi = hi, lo
		}
		return stats.Percentile(xs, lo) <= stats.Percentile(xs, hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeoMean(t *testing.T) {
	if got := stats.GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-9 {
		t.Fatalf("geomean %v", got)
	}
	if got := stats.GeoMean([]float64{0, -1, 4}); got != 4 {
		t.Fatalf("geomean with non-positive %v", got)
	}
	if stats.GeoMean(nil) != 0 {
		t.Fatal("empty geomean")
	}
}

func TestMeanCI(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if stats.Mean(xs) != 3 {
		t.Fatal("mean")
	}
	if stats.CI95(xs) <= 0 {
		t.Fatal("CI must be positive for varied data")
	}
	if stats.CI95([]float64{7}) != 0 {
		t.Fatal("CI of single sample must be 0")
	}
}
