// Package stats provides the small statistical toolkit the evaluation
// harness uses: percentiles, means, geometric means and confidence
// intervals, matching the methodology of §4 (metered latency percentiles,
// geomeans over benchmarks, 95% confidence intervals).
package stats

import (
	"math"
	"sort"
)

// Percentile returns the p-th percentile (0-100) of xs using
// nearest-rank on a sorted copy. Returns 0 for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return PercentileSorted(s, p)
}

// PercentileSorted returns the p-th percentile of already-sorted xs.
func PercentileSorted(s []float64, p float64) float64 {
	if len(s) == 0 {
		return 0
	}
	idx := int(math.Ceil(p/100*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// Percentiles computes several percentiles with one sort.
func Percentiles(xs []float64, ps ...float64) []float64 {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = PercentileSorted(s, p)
	}
	return out
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of positive values; non-positive
// values are skipped (missing data points, as in Table 6's geomean rows).
func GeoMean(xs []float64) float64 {
	var sum float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// CI95 returns the half-width of the 95% confidence interval of the
// mean, using the normal approximation the paper's tables use.
func CI95(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	return 1.96 * sd / math.Sqrt(float64(n))
}
