package gcwork_test

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lxr/internal/gcwork"
	"lxr/internal/mem"
)

// TestLendDrainsTransitiveWork: a loan must drain the seeds and
// everything transitively pushed, exactly like Drain, and Reclaim must
// return no remainder when the loan ran to completion.
func TestLendDrainsTransitiveWork(t *testing.T) {
	p := gcwork.NewPool(4)
	defer p.Stop()
	var visits atomic.Int64
	seeds := []mem.Address{6, 6, 6}
	loan := p.Lend(2, [][]mem.Address{seeds}, nil, func(w *gcwork.Worker, a mem.Address) {
		visits.Add(1)
		if a > 1 {
			w.Push(a - 1)
		}
	}, nil)
	rem := loan.Reclaim()
	if len(rem) != 0 {
		t.Fatalf("uninterrupted loan returned remainder %v", rem)
	}
	if got := visits.Load(); got != 18 {
		t.Fatalf("visits %d, want 18", got)
	}
	loans, items := p.LoanStats()
	if loans != 1 || items != 18 {
		t.Fatalf("LoanStats = (%d, %d), want (1, 18)", loans, items)
	}
}

// TestLendRunsOnMultipleWorkers proves — with a rendezvous, not wall
// time — that a loan's work runs on at least two borrowed workers
// concurrently: two seed segments each block until a different worker
// has arrived at the other one. With fewer than two live workers the
// rendezvous could never complete.
func TestLendRunsOnMultipleWorkers(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		runtime.GOMAXPROCS(2)
		defer runtime.GOMAXPROCS(1)
	}
	p := gcwork.NewPool(4)
	defer p.Stop()

	arrived := make(chan int, 2)
	release := make(chan struct{})
	var ids sync.Map
	// Two single-item segments: the injector hands each to a different
	// waking worker (a worker blocks inside f, so it cannot take both).
	segs := [][]mem.Address{{1}, {2}}
	loan := p.Lend(2, segs, nil, func(w *gcwork.Worker, a mem.Address) {
		ids.Store(w.ID, true)
		arrived <- w.ID
		<-release
	}, nil)

	timeout := time.After(10 * time.Second)
	seen := map[int]bool{}
	for len(seen) < 2 {
		select {
		case id := <-arrived:
			seen[id] = true
		case <-timeout:
			t.Fatalf("rendezvous: only %d distinct workers arrived, want 2", len(seen))
		}
	}
	close(release)
	loan.Reclaim()
	if len(seen) < 2 {
		t.Fatalf("loan ran on %d workers, want >= 2", len(seen))
	}
}

// TestLendInterruptPreservesWork: an interrupted loan must stop
// promptly and hand every unprocessed address back through Reclaim —
// processed + remainder must account for every seed exactly once.
func TestLendInterruptPreservesWork(t *testing.T) {
	p := gcwork.NewPool(4)
	defer p.Stop()
	const n = 200000
	seeds := make([]mem.Address, n)
	for i := range seeds {
		seeds[i] = mem.Address(i + 1)
	}
	var processed atomic.Int64
	started := make(chan struct{})
	var once sync.Once
	loan := p.Lend(2, [][]mem.Address{seeds}, nil, func(w *gcwork.Worker, a mem.Address) {
		once.Do(func() { close(started) })
		processed.Add(1)
	}, nil)
	<-started
	loan.Interrupt()
	rem := loan.Reclaim()
	var left int64
	for _, s := range rem {
		left += int64(len(s))
	}
	if got := processed.Load() + left; got != n {
		t.Fatalf("processed %d + remainder %d = %d, want %d", processed.Load(), left, got, n)
	}
	if left == 0 {
		t.Log("interrupt raced completion (all work processed) — accounting still exact")
	}
	// The pool must be fully reusable afterwards, with no leaked work.
	var visits atomic.Int64
	p.Drain([]mem.Address{1, 2, 3}, nil, func(w *gcwork.Worker, a mem.Address) { visits.Add(1) }, nil)
	if visits.Load() != 3 {
		t.Fatalf("post-interrupt Drain visited %d items, want 3 (leaked loan work?)", visits.Load())
	}
}

// TestLendPhaseBarrier is the loan/pause exclusion stress test: one
// goroutine runs Lend/Interrupt/Reclaim cycles while another runs Drain
// phases (a pause stand-in). Both bodies assert the other side is never
// concurrently active — the guarantee the loan barrier provides — and
// -race checks the underlying synchronisation.
func TestLendPhaseBarrier(t *testing.T) {
	p := gcwork.NewPool(4)
	defer p.Stop()
	var loanBusy, phaseBusy atomic.Int32
	var errs atomic.Int64
	stop := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(2)
	// Concurrent driver: loans workers, sometimes interrupted mid-way.
	go func() {
		defer wg.Done()
		seeds := make([]mem.Address, 4096)
		for i := range seeds {
			seeds[i] = mem.Address(i + 1)
		}
		for round := 0; ; round++ {
			select {
			case <-stop:
				return
			default:
			}
			loan := p.Lend(2, [][]mem.Address{seeds}, nil, func(w *gcwork.Worker, a mem.Address) {
				loanBusy.Add(1)
				if phaseBusy.Load() != 0 {
					errs.Add(1)
				}
				loanBusy.Add(-1)
			}, nil)
			if round%3 == 0 {
				loan.Interrupt()
			}
			loan.Reclaim()
		}
	}()
	// Pause stand-in: dispatches phases that must never overlap a loan.
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			p.Drain([]mem.Address{1, 2, 3, 4, 5, 6, 7, 8}, nil, func(w *gcwork.Worker, a mem.Address) {
				phaseBusy.Add(1)
				if loanBusy.Load() != 0 {
					errs.Add(1)
				}
				phaseBusy.Add(-1)
			}, nil)
		}
	}()
	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()
	if e := errs.Load(); e != 0 {
		t.Fatalf("loan and pause phase observed each other active %d times", e)
	}
}

// TestWorkerPanicRoutedToDrainCaller: a panic in a drain body must not
// kill the process — it must surface, wrapped in *WorkerPanic, on the
// goroutine that dispatched the phase, and the pool must stay usable.
func TestWorkerPanicRoutedToDrainCaller(t *testing.T) {
	p := gcwork.NewPool(4)
	defer p.Stop()
	seeds := make([]mem.Address, 1000)
	for i := range seeds {
		seeds[i] = mem.Address(i + 1)
	}
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		p.Drain(seeds, nil, func(w *gcwork.Worker, a mem.Address) {
			if a == 500 {
				panic("boom at 500")
			}
			if a > 0 && a < 100 {
				w.Push(a + 10000) // keep transitive work flowing
			}
		}, nil)
	}()
	wp, ok := recovered.(*gcwork.WorkerPanic)
	if !ok {
		t.Fatalf("recovered %T %v, want *gcwork.WorkerPanic", recovered, recovered)
	}
	if wp.Value != "boom at 500" {
		t.Fatalf("panic value %v, want original", wp.Value)
	}
	if len(wp.Stack) == 0 {
		t.Fatal("worker stack not captured")
	}
	// Abandoned work from the aborted phase must not leak into the next.
	var visits atomic.Int64
	p.Drain([]mem.Address{1, 2}, nil, func(w *gcwork.Worker, a mem.Address) { visits.Add(1) }, nil)
	if visits.Load() != 2 {
		t.Fatalf("post-panic Drain visited %d, want 2", visits.Load())
	}
}

// TestWorkerPanicRoutedToParallelForCaller: same containment for the
// static-partition path.
func TestWorkerPanicRoutedToParallelForCaller(t *testing.T) {
	p := gcwork.NewPool(4)
	defer p.Stop()
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		p.ParallelFor(1000, func(_, s, e int) {
			for i := s; i < e; i++ {
				if i == 321 {
					panic(i)
				}
			}
		})
	}()
	wp, ok := recovered.(*gcwork.WorkerPanic)
	if !ok || wp.Value != 321 {
		t.Fatalf("recovered %v, want *WorkerPanic{321}", recovered)
	}
	covered := make([]atomic.Int32, 100)
	p.ParallelFor(100, func(_, s, e int) {
		for i := s; i < e; i++ {
			covered[i].Add(1)
		}
	})
	for i := range covered {
		if covered[i].Load() != 1 {
			t.Fatalf("post-panic ParallelFor: index %d covered %d times", i, covered[i].Load())
		}
	}
}

// TestWorkerPanicRoutedToReclaim: a panic on a loaned worker surfaces
// at Reclaim, the loan hand-back barrier still releases the pool.
func TestWorkerPanicRoutedToReclaim(t *testing.T) {
	p := gcwork.NewPool(4)
	defer p.Stop()
	seeds := make([]mem.Address, 100)
	for i := range seeds {
		seeds[i] = mem.Address(i + 1)
	}
	loan := p.Lend(2, [][]mem.Address{seeds}, nil, func(w *gcwork.Worker, a mem.Address) {
		if a == 50 {
			panic("loan boom")
		}
	}, nil)
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		loan.Reclaim()
	}()
	wp, ok := recovered.(*gcwork.WorkerPanic)
	if !ok || wp.Value != "loan boom" {
		t.Fatalf("recovered %v, want *WorkerPanic{loan boom}", recovered)
	}
	// Pool released and clean.
	var visits atomic.Int64
	p.Drain([]mem.Address{7}, nil, func(w *gcwork.Worker, a mem.Address) { visits.Add(1) }, nil)
	if visits.Load() != 1 {
		t.Fatalf("post-panic Drain visited %d, want 1", visits.Load())
	}
}

// TestLendOnStoppedPool: Lend after Stop must be inert, returning the
// seeds unprocessed instead of hanging or panicking.
func TestLendOnStoppedPool(t *testing.T) {
	p := gcwork.NewPool(2)
	p.Drain([]mem.Address{1}, nil, func(w *gcwork.Worker, a mem.Address) {}, nil)
	p.Stop()
	segs := [][]mem.Address{{1, 2, 3}}
	loan := p.Lend(2, segs, nil, func(w *gcwork.Worker, a mem.Address) {
		t.Error("work ran on a stopped pool")
	}, nil)
	loan.Interrupt() // must be a no-op, not a crash
	rem := loan.Reclaim()
	if len(rem) != 1 || len(rem[0]) != 3 {
		t.Fatalf("stopped-pool loan remainder %v, want the original seeds", rem)
	}
}

// TestWorkerStatsSplitPauseLoan: utilization telemetry must attribute
// items to the right phase kind.
func TestWorkerStatsSplitPauseLoan(t *testing.T) {
	p := gcwork.NewPool(2)
	defer p.Stop()
	seeds := []mem.Address{1, 2, 3, 4, 5}
	p.Drain(seeds, nil, func(w *gcwork.Worker, a mem.Address) {}, nil)
	loan := p.Lend(1, [][]mem.Address{seeds}, nil, func(w *gcwork.Worker, a mem.Address) {}, nil)
	loan.Reclaim()
	var pause, loaned int64
	for _, ws := range p.WorkerStats() {
		pause += ws.PauseItems
		loaned += ws.LoanItems
	}
	if pause != 5 || loaned != 5 {
		t.Fatalf("worker stats pause=%d loan=%d, want 5 and 5", pause, loaned)
	}
}

// TestSharedAddrQueuePopSeg: PopSeg must hand back one segment at a
// time, keep the length counter exact, and eventually drain everything.
func TestSharedAddrQueuePopSeg(t *testing.T) {
	var q gcwork.SharedAddrQueue
	total := 0
	for i := 0; i < 10; i++ {
		seg := make([]mem.Address, i+1)
		for j := range seg {
			seg[j] = mem.Address(100*i + j)
		}
		q.Append(seg)
		total += len(seg)
	}
	q.Push(999)
	total++
	got := 0
	for {
		s := q.PopSeg()
		if s == nil {
			break
		}
		if len(s) == 0 {
			t.Fatal("PopSeg returned an empty segment")
		}
		got += len(s)
		if q.Len() != total-got {
			t.Fatalf("Len %d after popping %d of %d", q.Len(), got, total)
		}
	}
	if got != total {
		t.Fatalf("PopSeg drained %d, want %d", got, total)
	}
	if q.Len() != 0 {
		t.Fatalf("queue not empty: %d", q.Len())
	}
}
