package gcwork_test

// legacyPool is a trimmed copy of the seed's gcwork implementation — a
// per-Drain goroutine spawn with one mutex+cond-guarded global chunk
// stack — kept test-side only, as the baseline for BenchmarkDrain's
// old-vs-new comparison.

import (
	"sync"

	"lxr/internal/mem"
)

const legacyChunk = 512

type legacyPool struct{ n int }

type legacyWorker struct {
	id    int
	local []mem.Address
	sh    *legacyShared
}

type legacyShared struct {
	mu      sync.Mutex
	cond    *sync.Cond
	chunks  [][]mem.Address
	waiting int
	n       int
	done    bool
}

func (w *legacyWorker) push(a mem.Address) {
	w.local = append(w.local, a)
	if len(w.local) >= 2*legacyChunk {
		c := make([]mem.Address, legacyChunk)
		copy(c, w.local[:legacyChunk])
		w.local = append(w.local[:0], w.local[legacyChunk:]...)
		w.sh.mu.Lock()
		w.sh.chunks = append(w.sh.chunks, c)
		w.sh.mu.Unlock()
		w.sh.cond.Signal()
	}
}

func (w *legacyWorker) steal() bool {
	sh := w.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for {
		if len(sh.chunks) > 0 {
			c := sh.chunks[len(sh.chunks)-1]
			sh.chunks = sh.chunks[:len(sh.chunks)-1]
			w.local = append(w.local, c...)
			return true
		}
		sh.waiting++
		if sh.waiting == sh.n {
			sh.done = true
			sh.cond.Broadcast()
			return false
		}
		for len(sh.chunks) == 0 && !sh.done {
			sh.cond.Wait()
		}
		sh.waiting--
		if sh.done {
			return false
		}
	}
}

func (p *legacyPool) drain(seed []mem.Address, f func(w *legacyWorker, a mem.Address)) {
	sh := &legacyShared{n: p.n}
	sh.cond = sync.NewCond(&sh.mu)
	for i := 0; i < len(seed); i += legacyChunk {
		end := min(i+legacyChunk, len(seed))
		c := make([]mem.Address, end-i)
		copy(c, seed[i:end])
		sh.chunks = append(sh.chunks, c)
	}
	var wg sync.WaitGroup
	for i := 0; i < p.n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := &legacyWorker{id: id, sh: sh}
			for {
				var a mem.Address
				if n := len(w.local); n > 0 {
					a = w.local[n-1]
					w.local = w.local[:n-1]
				} else {
					if !w.steal() {
						break
					}
					continue
				}
				f(w, a)
			}
		}(i)
	}
	wg.Wait()
}
