package gcwork_test

import (
	"sync/atomic"
	"testing"

	"lxr/internal/gcwork"
	"lxr/internal/mem"
)

// A long linear chain: item n pushes n-1. Exactly one item live at a
// time — mimics evacuating a linked list.
func TestDrainLinearChain(t *testing.T) {
	for round := 0; round < 200; round++ {
		p := gcwork.NewPool(2)
		var visits atomic.Int64
		p.Drain([]mem.Address{20000}, nil, func(w *gcwork.Worker, a mem.Address) {
			visits.Add(1)
			if a > 1 {
				w.Push(a - 1)
			}
		}, nil)
		if got := visits.Load(); got != 20000 {
			t.Fatalf("round %d: visits %d, want 20000", round, got)
		}
		p.Stop()
	}
}
