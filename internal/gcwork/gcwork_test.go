package gcwork_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lxr/internal/gcwork"
	"lxr/internal/mem"
)

func TestDrainProcessesTransitiveWork(t *testing.T) {
	p := gcwork.NewPool(4)
	// Each item n spawns items n-1 ... 1; total visits = sum over seeds.
	var visits atomic.Int64
	seeds := []mem.Address{5, 5, 5}
	p.Drain(seeds, nil, func(w *gcwork.Worker, a mem.Address) {
		visits.Add(1)
		if a > 1 {
			w.Push(a - 1)
		}
	}, nil)
	if got := visits.Load(); got != 15 {
		t.Fatalf("visits %d, want 15", got)
	}
}

func TestDrainLargeFanOut(t *testing.T) {
	p := gcwork.NewPool(4)
	var visits atomic.Int64
	seeds := make([]mem.Address, 10000)
	for i := range seeds {
		seeds[i] = mem.Address(i + 1)
	}
	p.Drain(seeds, nil, func(w *gcwork.Worker, a mem.Address) {
		visits.Add(1)
	}, nil)
	if visits.Load() != 10000 {
		t.Fatalf("visits %d", visits.Load())
	}
}

func TestDrainSetupTeardownPerWorker(t *testing.T) {
	p := gcwork.NewPool(3)
	var setups, teardowns atomic.Int64
	p.Drain([]mem.Address{1, 2, 3},
		func(w *gcwork.Worker) { setups.Add(1); w.Scratch = w.ID },
		func(w *gcwork.Worker, a mem.Address) {
			if w.Scratch.(int) != w.ID {
				t.Error("scratch lost")
			}
		},
		func(w *gcwork.Worker) { teardowns.Add(1) })
	if setups.Load() != 3 || teardowns.Load() != 3 {
		t.Fatalf("setups %d teardowns %d", setups.Load(), teardowns.Load())
	}
}

func TestParallelForCoversRange(t *testing.T) {
	p := gcwork.NewPool(4)
	covered := make([]atomic.Int32, 1000)
	p.ParallelFor(1000, func(_, s, e int) {
		for i := s; i < e; i++ {
			covered[i].Add(1)
		}
	})
	for i := range covered {
		if covered[i].Load() != 1 {
			t.Fatalf("index %d covered %d times", i, covered[i].Load())
		}
	}
	p.ParallelFor(0, func(_, s, e int) { t.Error("zero-length ran") })
}

// TestDrainZeroSeeds: termination must be detected promptly with no
// work at all (setup/teardown still run on every worker).
func TestDrainZeroSeeds(t *testing.T) {
	p := gcwork.NewPool(4)
	defer p.Stop()
	for round := 0; round < 50; round++ {
		var setups atomic.Int64
		p.Drain(nil,
			func(w *gcwork.Worker) { setups.Add(1) },
			func(w *gcwork.Worker, a mem.Address) { t.Error("work from nothing") },
			nil)
		if setups.Load() != 4 {
			t.Fatalf("round %d: setups %d", round, setups.Load())
		}
	}
}

// TestPoolWorkersPersistAcrossPhases: one pool must reuse its worker
// goroutines across many Drain/ParallelFor phases — the per-pause spawn
// cost the scheduler exists to eliminate. Spawned() counts goroutine
// creations over the pool's lifetime.
func TestPoolWorkersPersistAcrossPhases(t *testing.T) {
	p := gcwork.NewPool(4)
	defer p.Stop()
	var visits atomic.Int64
	for phase := 0; phase < 20; phase++ {
		p.Drain([]mem.Address{8, 8, 8}, nil, func(w *gcwork.Worker, a mem.Address) {
			visits.Add(1)
			if a > 1 {
				w.Push(a - 1)
			}
		}, nil)
		p.ParallelFor(100, func(_, s, e int) {})
	}
	if got := visits.Load(); got != 20*3*8 {
		t.Fatalf("visits %d, want %d", got, 20*3*8)
	}
	if sp := p.Spawned(); sp != 4 {
		t.Fatalf("spawned %d goroutines across 40 phases, want 4 (persistent workers)", sp)
	}
}

// TestDrainStressPushStorm exercises the lock-free publish/steal paths
// under -race: a deep, bushy work graph forces constant publication and
// stealing while every worker's local stack churns.
func TestDrainStressPushStorm(t *testing.T) {
	p := gcwork.NewPool(8)
	defer p.Stop()
	for round := 0; round < 4; round++ {
		var visits atomic.Int64
		// Work item encoding: depth in low bits; each item of depth d
		// spawns 2 items of depth d-1. Seeds at depth 12: total visits
		// per seed = 2^12 - 1.
		const depth = 12
		seeds := []mem.Address{depth, depth, depth, depth}
		p.Drain(seeds, nil, func(w *gcwork.Worker, a mem.Address) {
			visits.Add(1)
			if a > 1 {
				w.Push(a - 1)
				w.Push(a - 1)
			}
		}, nil)
		want := int64(len(seeds)) * (1<<depth - 1)
		if got := visits.Load(); got != want {
			t.Fatalf("round %d: visits %d, want %d", round, got, want)
		}
	}
}

// TestDrainSegsSegmentInjection drains segment-granular seeds (the path
// AddrBuffer.TakeSegs and the tracer inbox use).
func TestDrainSegsSegmentInjection(t *testing.T) {
	p := gcwork.NewPool(4)
	defer p.Stop()
	var b gcwork.AddrBuffer
	for i := 1; i <= 5000; i++ {
		b.Push(mem.Address(i))
	}
	var sum atomic.Int64
	p.DrainSegs(b.TakeSegs(), nil, func(w *gcwork.Worker, a mem.Address) {
		sum.Add(int64(a))
	}, nil)
	if want := int64(5000) * 5001 / 2; sum.Load() != want {
		t.Fatalf("sum %d, want %d", sum.Load(), want)
	}
	if b.Len() != 0 {
		t.Fatal("TakeSegs did not clear buffer")
	}
}

// TestSharedAddrQueueConcurrent hammers the sharded queue from many
// producers while a consumer drains, verifying nothing is lost.
func TestSharedAddrQueueConcurrent(t *testing.T) {
	var q gcwork.SharedAddrQueue
	const producers = 8
	const perProducer = 10000
	var wg sync.WaitGroup
	for pr := 0; pr < producers; pr++ {
		wg.Add(1)
		go func(pr int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if i%16 == 0 {
					q.Append([]mem.Address{mem.Address(pr*perProducer + i)})
				} else {
					q.Push(mem.Address(pr*perProducer + i))
				}
			}
		}(pr)
	}
	var got int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			for _, s := range q.TakeSegs() {
				got += int64(len(s))
			}
			if got == producers*perProducer {
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if got != producers*perProducer {
		t.Fatalf("drained %d, want %d", got, producers*perProducer)
	}
	if q.Len() != 0 {
		t.Fatalf("queue not empty: %d", q.Len())
	}
}

// benchDrainWork is the shared workload for BenchmarkDrain: a transitive
// closure of ~64k visits from 16 seeds.
const benchDepth = 11

func benchSeeds() []mem.Address {
	s := make([]mem.Address, 16)
	for i := range s {
		s[i] = benchDepth
	}
	return s
}

// BenchmarkDrain compares the persistent lock-free scheduler ("new")
// against the seed implementation ("legacy": per-Drain goroutine spawn,
// one mutex+cond-guarded global chunk stack) on an identical transitive
// workload.
func BenchmarkDrain(b *testing.B) {
	b.Run("new", func(b *testing.B) {
		p := gcwork.NewPool(4)
		defer p.Stop()
		var sink atomic.Int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Drain(benchSeeds(), nil, func(w *gcwork.Worker, a mem.Address) {
				sink.Add(1)
				if a > 1 {
					w.Push(a - 1)
					w.Push(a - 1)
				}
			}, nil)
		}
	})
	b.Run("legacy", func(b *testing.B) {
		p := &legacyPool{n: 4}
		var sink atomic.Int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.drain(benchSeeds(), func(w *legacyWorker, a mem.Address) {
				sink.Add(1)
				if a > 1 {
					w.push(a - 1)
					w.push(a - 1)
				}
			})
		}
	})
}

// BenchmarkDrainFanOut isolates work-distribution cost: a large flat
// seed with a trivial body, so chunk hand-off (seed splitting, publish,
// steal) dominates. The legacy implementation copies every seed chunk
// and serialises all hand-offs through one mutex+cond; the new
// scheduler injects zero-copy seed views and steals lock-free.
func BenchmarkDrainFanOut(b *testing.B) {
	seeds := make([]mem.Address, 1<<16)
	for i := range seeds {
		seeds[i] = mem.Address(i)
	}
	b.Run("new", func(b *testing.B) {
		p := gcwork.NewPool(4)
		defer p.Stop()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Drain(seeds, nil, func(w *gcwork.Worker, a mem.Address) {}, nil)
		}
	})
	b.Run("legacy", func(b *testing.B) {
		p := &legacyPool{n: 4}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.drain(seeds, func(w *legacyWorker, a mem.Address) {})
		}
	})
}

// BenchmarkDrainEmpty measures pure per-phase dispatch overhead — the
// cost a pause pays for every one of its parallel phases even when a
// phase has little work (dozens of these run inside each STW pause).
func BenchmarkDrainEmpty(b *testing.B) {
	b.Run("new", func(b *testing.B) {
		p := gcwork.NewPool(4)
		defer p.Stop()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Drain(nil, nil, func(w *gcwork.Worker, a mem.Address) {}, nil)
		}
	})
	b.Run("legacy", func(b *testing.B) {
		p := &legacyPool{n: 4}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.drain(nil, func(w *legacyWorker, a mem.Address) {})
		}
	})
}

func TestAddrBuffer(t *testing.T) {
	var b gcwork.AddrBuffer
	for i := 1; i <= 3000; i++ { // crosses segment boundaries
		b.Push(mem.Address(i))
	}
	if b.Len() != 3000 {
		t.Fatalf("len %d", b.Len())
	}
	out := b.Take()
	if len(out) != 3000 || out[0] != 1 || out[2999] != 3000 {
		t.Fatal("Take lost or reordered items")
	}
	if b.Len() != 0 {
		t.Fatal("Take did not clear")
	}
}

func TestSharedAddrQueue(t *testing.T) {
	var q gcwork.SharedAddrQueue
	q.Push(1)
	q.Append([]mem.Address{2, 3})
	q.Append(nil)
	if q.Len() != 3 {
		t.Fatalf("len %d", q.Len())
	}
	if got := q.Take(); len(got) != 3 {
		t.Fatalf("take %v", got)
	}
	if q.Len() != 0 {
		t.Fatal("not cleared")
	}
}
