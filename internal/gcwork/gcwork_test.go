package gcwork_test

import (
	"sync/atomic"
	"testing"

	"lxr/internal/gcwork"
	"lxr/internal/mem"
)

func TestDrainProcessesTransitiveWork(t *testing.T) {
	p := gcwork.NewPool(4)
	// Each item n spawns items n-1 ... 1; total visits = sum over seeds.
	var visits atomic.Int64
	seeds := []mem.Address{5, 5, 5}
	p.Drain(seeds, nil, func(w *gcwork.Worker, a mem.Address) {
		visits.Add(1)
		if a > 1 {
			w.Push(a - 1)
		}
	}, nil)
	if got := visits.Load(); got != 15 {
		t.Fatalf("visits %d, want 15", got)
	}
}

func TestDrainLargeFanOut(t *testing.T) {
	p := gcwork.NewPool(4)
	var visits atomic.Int64
	seeds := make([]mem.Address, 10000)
	for i := range seeds {
		seeds[i] = mem.Address(i + 1)
	}
	p.Drain(seeds, nil, func(w *gcwork.Worker, a mem.Address) {
		visits.Add(1)
	}, nil)
	if visits.Load() != 10000 {
		t.Fatalf("visits %d", visits.Load())
	}
}

func TestDrainSetupTeardownPerWorker(t *testing.T) {
	p := gcwork.NewPool(3)
	var setups, teardowns atomic.Int64
	p.Drain([]mem.Address{1, 2, 3},
		func(w *gcwork.Worker) { setups.Add(1); w.Scratch = w.ID },
		func(w *gcwork.Worker, a mem.Address) {
			if w.Scratch.(int) != w.ID {
				t.Error("scratch lost")
			}
		},
		func(w *gcwork.Worker) { teardowns.Add(1) })
	if setups.Load() != 3 || teardowns.Load() != 3 {
		t.Fatalf("setups %d teardowns %d", setups.Load(), teardowns.Load())
	}
}

func TestParallelForCoversRange(t *testing.T) {
	p := gcwork.NewPool(4)
	covered := make([]atomic.Int32, 1000)
	p.ParallelFor(1000, func(_, s, e int) {
		for i := s; i < e; i++ {
			covered[i].Add(1)
		}
	})
	for i := range covered {
		if covered[i].Load() != 1 {
			t.Fatalf("index %d covered %d times", i, covered[i].Load())
		}
	}
	p.ParallelFor(0, func(_, s, e int) { t.Error("zero-length ran") })
}

func TestAddrBuffer(t *testing.T) {
	var b gcwork.AddrBuffer
	for i := 1; i <= 3000; i++ { // crosses segment boundaries
		b.Push(mem.Address(i))
	}
	if b.Len() != 3000 {
		t.Fatalf("len %d", b.Len())
	}
	out := b.Take()
	if len(out) != 3000 || out[0] != 1 || out[2999] != 3000 {
		t.Fatal("Take lost or reordered items")
	}
	if b.Len() != 0 {
		t.Fatal("Take did not clear")
	}
}

func TestSharedAddrQueue(t *testing.T) {
	var q gcwork.SharedAddrQueue
	q.Push(1)
	q.Append([]mem.Address{2, 3})
	q.Append(nil)
	if q.Len() != 3 {
		t.Fatalf("len %d", q.Len())
	}
	if got := q.Take(); len(got) != 3 {
		t.Fatalf("take %v", got)
	}
	if q.Len() != 0 {
		t.Fatal("not cleared")
	}
}
