package gcwork_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"lxr/internal/gcwork"
	"lxr/internal/mem"
)

// Chain drains (pause stand-in) interleaved with interrupted loans
// (concurrent driver stand-in): every item of both streams must be
// processed exactly once by its own job's function.
func TestInterleavedLoanChainConservation(t *testing.T) {
	p := gcwork.NewPool(4)
	defer p.Stop()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	var loanProcessed atomic.Int64
	var loanFed atomic.Int64
	go func() { // driver: interrupted loans over flat batches
		defer wg.Done()
		for round := 0; ; round++ {
			select {
			case <-stop:
				return
			default:
			}
			seeds := make([]mem.Address, 3000)
			for i := range seeds {
				seeds[i] = mem.Address(0x1000000 + i)
			}
			loanFed.Add(int64(len(seeds)))
			loan := p.Lend(2, [][]mem.Address{seeds}, nil, func(w *gcwork.Worker, a mem.Address) {
				if a < 0x1000000 {
					t.Error("loan job got a phase item")
				}
				loanProcessed.Add(1)
			}, nil)
			if round%2 == 0 {
				loan.Interrupt()
			}
			for _, s := range loan.Reclaim() {
				loanFed.Add(-int64(len(s))) // returned unprocessed
			}
		}
	}()
	for round := 0; round < 400; round++ {
		var visits atomic.Int64
		const chain = 5000
		p.Drain([]mem.Address{chain}, nil, func(w *gcwork.Worker, a mem.Address) {
			if a > 0x100000 {
				t.Error("phase job got a loan item")
				return
			}
			visits.Add(1)
			if a > 1 {
				w.Push(a - 1)
			}
		}, nil)
		if got := visits.Load(); got != chain {
			t.Fatalf("round %d: chain visits %d, want %d (dropped %d)", round, got, chain, chain-got)
		}
	}
	close(stop)
	wg.Wait()
	if loanProcessed.Load() != loanFed.Load() {
		t.Fatalf("loan conservation: processed %d, fed-minus-returned %d", loanProcessed.Load(), loanFed.Load())
	}
}
