package gcwork

import (
	"sync"
	"sync/atomic"

	"lxr/internal/mem"
)

// segSize is the segment length of address buffers.
const segSize = 1024

// AddrBuffer is an append-only buffer of addresses stored in fixed-size
// segments. Mutators fill private buffers between collections; at a
// pause the plan takes all segments at once. The zero value is ready to
// use.
type AddrBuffer struct {
	segs [][]mem.Address
	cur  []mem.Address
	n    int
}

// Push appends an address.
func (b *AddrBuffer) Push(a mem.Address) {
	if len(b.cur) == cap(b.cur) {
		if b.cur != nil {
			b.segs = append(b.segs, b.cur)
		}
		b.cur = make([]mem.Address, 0, segSize)
	}
	b.cur = append(b.cur, a)
	b.n++
}

// Len returns the number of buffered addresses.
func (b *AddrBuffer) Len() int { return b.n }

// Take removes and returns all buffered addresses as a flat slice.
func (b *AddrBuffer) Take() []mem.Address {
	out := make([]mem.Address, 0, b.n)
	for _, s := range b.segs {
		out = append(out, s...)
	}
	out = append(out, b.cur...)
	b.segs, b.cur, b.n = nil, nil, 0
	return out
}

// TakeInto appends all buffered addresses to dst and clears the buffer.
func (b *AddrBuffer) TakeInto(dst []mem.Address) []mem.Address {
	for _, s := range b.segs {
		dst = append(dst, s...)
	}
	dst = append(dst, b.cur...)
	b.segs, b.cur, b.n = nil, nil, 0
	return dst
}

// TakeSegs removes and returns the buffered addresses as their
// underlying segments, without flattening: the segments can be handed
// straight to Pool.DrainSegs as seed work.
func (b *AddrBuffer) TakeSegs() [][]mem.Address {
	out := b.segs
	if len(b.cur) > 0 {
		out = append(out, b.cur)
	}
	b.segs, b.cur, b.n = nil, nil, 0
	return out
}

// qShards is the shard count of SharedAddrQueue. Shards are picked by
// address (Push) or round-robin (Append), so concurrent producers —
// barrier flushes, parallel pause workers seeding the tracer — rarely
// collide on the same shard lock.
const qShards = 8

// SharedAddrQueue is a sharded queue of address segments shared between
// mutator flushes and collector threads. Appended slices are taken over
// by the queue as whole segments (no copy); the caller must not append
// to a slice after handing it over. Ordering across producers is not
// preserved — all consumers (tracer inbox, RC queues) are order-
// insensitive.
type SharedAddrQueue struct {
	shards [qShards]qShard
	rr     atomic.Uint32 // round-robin cursor for Append
	n      atomic.Int64
}

type qShard struct {
	mu   sync.Mutex
	segs [][]mem.Address
	cur  []mem.Address
	_    [4]uint64 // pad against false sharing between shard locks
}

// Append hands a slice of addresses to the queue as one segment.
func (q *SharedAddrQueue) Append(as []mem.Address) {
	if len(as) == 0 {
		return
	}
	q.n.Add(int64(len(as)))
	sh := &q.shards[q.rr.Add(1)%qShards]
	sh.mu.Lock()
	sh.segs = append(sh.segs, as)
	sh.mu.Unlock()
}

// Push adds one address, sharded by its value.
func (q *SharedAddrQueue) Push(a mem.Address) {
	q.n.Add(1)
	sh := &q.shards[(uint64(a)>>mem.GranuleLog)%qShards]
	sh.mu.Lock()
	if len(sh.cur) == cap(sh.cur) {
		if sh.cur != nil {
			sh.segs = append(sh.segs, sh.cur)
		}
		sh.cur = make([]mem.Address, 0, segSize)
	}
	sh.cur = append(sh.cur, a)
	sh.mu.Unlock()
}

// Take removes and returns everything queued as one flat slice.
func (q *SharedAddrQueue) Take() []mem.Address {
	var out []mem.Address
	for _, s := range q.TakeSegs() {
		out = append(out, s...)
	}
	return out
}

// PopSeg removes and returns one queued segment (nil when the queue is
// empty). Consumers that process work in bounded steps — the SATB
// tracer's owner-thread Step — use it to pull one segment at a time
// instead of flattening the whole queue with Take.
func (q *SharedAddrQueue) PopSeg() []mem.Address {
	if q.n.Load() == 0 {
		return nil
	}
	// Rotate the starting shard so a lone consumer does not drain (and
	// lock) shard 0 preferentially while producers keep filling it.
	start := q.rr.Add(1)
	for i := 0; i < qShards; i++ {
		sh := &q.shards[(start+uint32(i))%qShards]
		sh.mu.Lock()
		if n := len(sh.segs); n > 0 {
			s := sh.segs[n-1]
			sh.segs[n-1] = nil
			sh.segs = sh.segs[:n-1]
			sh.mu.Unlock()
			q.n.Add(-int64(len(s)))
			return s
		}
		if len(sh.cur) > 0 {
			s := sh.cur
			sh.cur = nil
			sh.mu.Unlock()
			q.n.Add(-int64(len(s)))
			return s
		}
		sh.mu.Unlock()
	}
	return nil
}

// TakeSegs removes and returns everything queued, segment-granular.
func (q *SharedAddrQueue) TakeSegs() [][]mem.Address {
	var out [][]mem.Address
	for i := range q.shards {
		sh := &q.shards[i]
		sh.mu.Lock()
		segs, cur := sh.segs, sh.cur
		sh.segs, sh.cur = nil, nil
		sh.mu.Unlock()
		taken := 0
		for _, s := range segs {
			taken += len(s)
			out = append(out, s)
		}
		if len(cur) > 0 {
			taken += len(cur)
			out = append(out, cur)
		}
		if taken > 0 {
			q.n.Add(-int64(taken))
		}
	}
	return out
}

// Len returns the queued count with one atomic load.
func (q *SharedAddrQueue) Len() int { return int(q.n.Load()) }
