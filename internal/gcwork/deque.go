package gcwork

import (
	"sync/atomic"

	"lxr/internal/mem"
)

// chunk is the unit of work distribution: a batch of addresses published
// by one worker and stolen whole by another. Chunk granularity amortises
// the synchronisation cost of stealing (§3.5).
type chunk = []mem.Address

// deque is a Chase-Lev work-stealing deque of chunks (Chase & Lev 2005,
// with the sequentially consistent memory ordering of Lê et al. 2013,
// which Go's sync/atomic provides). The owning worker pushes and pops at
// the bottom without contention; thieves compete for the top entry with a
// single CAS. No path takes a lock.
type deque struct {
	bottom atomic.Int64 // owner end
	top    atomic.Int64 // thief end
	buf    atomic.Pointer[dqBuf]
}

// dqBuf is one ring buffer generation. Growth allocates a fresh buffer
// (never mutating the old one) so thieves holding a stale pointer still
// read the chunk that lived at their claimed index.
type dqBuf struct {
	mask int64
	slot []atomic.Pointer[chunk]
}

const dqInitialSize = 64

func newDqBuf(size int64) *dqBuf {
	return &dqBuf{mask: size - 1, slot: make([]atomic.Pointer[chunk], size)}
}

func (d *deque) init() {
	d.buf.Store(newDqBuf(dqInitialSize))
}

// push publishes a chunk at the bottom. Owner only.
func (d *deque) push(c *chunk) {
	b := d.bottom.Load()
	t := d.top.Load()
	buf := d.buf.Load()
	if b-t >= int64(len(buf.slot)) {
		buf = d.grow(buf, b, t)
	}
	buf.slot[b&buf.mask].Store(c)
	d.bottom.Store(b + 1)
}

func (d *deque) grow(old *dqBuf, b, t int64) *dqBuf {
	nb := newDqBuf(int64(len(old.slot)) * 2)
	for i := t; i < b; i++ {
		nb.slot[i&nb.mask].Store(old.slot[i&old.mask].Load())
	}
	d.buf.Store(nb)
	return nb
}

// pop takes the most recently pushed chunk. Owner only.
func (d *deque) pop() *chunk {
	b := d.bottom.Load() - 1
	buf := d.buf.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: restore.
		d.bottom.Store(b + 1)
		return nil
	}
	c := buf.slot[b&buf.mask].Load()
	if t == b {
		// Last entry: race thieves for it via the top CAS.
		if !d.top.CompareAndSwap(t, t+1) {
			c = nil // a thief won
		}
		d.bottom.Store(b + 1)
		return c
	}
	return c
}

// steal takes the oldest chunk. Safe from any goroutine. Returns nil
// with contended=true when a racing thief (or the owner's pop of the
// last entry) won the CAS — the deque may still hold work.
func (d *deque) steal() (c *chunk, contended bool) {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return nil, false
	}
	buf := d.buf.Load()
	c = buf.slot[t&buf.mask].Load()
	if !d.top.CompareAndSwap(t, t+1) {
		return nil, true
	}
	return c, false
}

// empty reports whether the deque currently appears empty.
func (d *deque) empty() bool { return d.top.Load() >= d.bottom.Load() }

// injector is a lock-free Treiber stack of work segments. Coordinators
// seed a drain phase by pushing whole segments (address-buffer segments,
// pre-split seed views); workers pop one segment at a time before
// resorting to stealing. Nodes are freshly allocated on every push and
// never reinserted, so the classic ABA hazard cannot arise under Go's
// garbage collector.
type injector struct {
	head atomic.Pointer[injNode]
}

type injNode struct {
	next *injNode
	seg  []mem.Address
}

func (q *injector) push(seg []mem.Address) {
	n := &injNode{seg: seg}
	for {
		h := q.head.Load()
		n.next = h
		if q.head.CompareAndSwap(h, n) {
			return
		}
	}
}

func (q *injector) pop() []mem.Address {
	for {
		h := q.head.Load()
		if h == nil {
			return nil
		}
		if q.head.CompareAndSwap(h, h.next) {
			return h.seg
		}
	}
}

func (q *injector) empty() bool { return q.head.Load() == nil }
