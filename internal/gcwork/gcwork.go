// Package gcwork provides the parallel collection machinery: a
// persistent, lock-free work-stealing scheduler that drains dynamically
// generated work (mark stacks, increment and decrement queues), a
// dynamically load-balanced ParallelFor for static partitioning, a
// between-pause worker lending API for concurrent collection phases,
// and segmented address buffers used by write barriers and RC queues.
//
// LXR uses parallelism in every collection phase (§3.5); the same pool
// drives the baseline collectors' parallel tracing and copying. The
// scheduler is built for sub-millisecond pauses: worker goroutines are
// created once per Pool and parked between phases (no goroutine spawn
// inside a pause), work distribution uses per-worker Chase-Lev deques
// (no mutex on any publish, pop or steal), and termination is detected
// with atomic idle/epoch counters (no condition-variable broadcast
// storm).
//
// # Worker lending
//
// Between pauses the pool's workers are parked and idle, while the
// concurrent phase drivers (LXR's lazy-decrement/SATB thread, the
// baselines' mark controllers) drain work single-threaded. Lend hands
// up to n parked workers to such a driver for one interruptible drain;
// Reclaim is the hand-back barrier. A loan holds the pool's dispatch
// lock from Lend to Reclaim, so no pause phase (Drain, DrainSegs,
// ParallelFor) can start while a loan is outstanding — and conversely a
// loan cannot start inside a pause. Pauses that must begin while a loan
// is draining call Loan.Interrupt, which makes the borrowed workers
// stop within one work item and preserve every unprocessed address for
// Reclaim to return.
//
// # Panic containment
//
// A panic on a worker goroutine does not kill the process: it is
// captured, the phase is aborted (abandoned work is discarded so the
// pool stays reusable), and the panic is re-raised on the goroutine
// that called Drain, DrainSegs, ParallelFor or Loan.Reclaim, wrapped in
// *WorkerPanic. Callers that convert collection failures into recorded
// data points (the workload harness) therefore observe worker failures
// exactly like coordinator failures.
package gcwork

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"lxr/internal/mem"
	"lxr/internal/trace"
)

// chunkSize is the work-stealing granularity: workers share work in
// chunks of addresses, which also naturally partitions very large
// reference arrays (the scalability fix noted in §3.5).
const chunkSize = 512

// Pool is a reusable parallel worker pool. Its N worker goroutines are
// created on first use and persist — parked on their wake channels —
// until Stop, so consecutive collection phases (and consecutive
// collections) reuse the same workers and their warmed-up local stacks.
type Pool struct {
	N int // number of workers

	workers []*Worker
	wsnap   atomic.Pointer[[]*Worker] // started workers, for lock-free telemetry reads
	wake    []chan *job
	alive   sync.WaitGroup
	once    sync.Once
	stopped bool

	// runMu serialises phase dispatch (Drain/ParallelFor callers) and
	// worker loans (Lend holds it until Reclaim — the hand-back
	// barrier). It is never touched by workers: the publish/pop/steal
	// hot paths inside a phase are mutex-free.
	runMu sync.Mutex

	inj injector // phase seed segments

	// Termination state for the drain in progress.
	idle     atomic.Int32  // workers currently searching for work
	pubEpoch atomic.Uint64 // bumped on every chunk publication
	done     atomic.Bool   // drain-complete flag
	active   atomic.Int32  // workers participating in the current phase

	spawned atomic.Int64 // worker goroutines ever created (telemetry)

	loans     atomic.Int64 // loans ever started (telemetry)
	loanItems atomic.Int64 // items processed on loaned workers (telemetry)

	// tracer, when non-nil, receives loan lend→reclaim spans and
	// interrupt instants on the concurrent timeline shard. Set before
	// the pool is first used.
	tracer *trace.Tracer
}

// NewPool creates a pool with n workers (minimum 1). Workers are started
// lazily on the first Drain, ParallelFor or Lend.
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	return &Pool{N: n}
}

// SetTracer attaches a GC event tracer to the pool (nil detaches).
// Call before the pool's first use — the field is read unsynchronised
// on loan paths.
func (p *Pool) SetTracer(t *trace.Tracer) { p.tracer = t }

// Spawned returns how many worker goroutines this pool has ever created.
// After any number of phases it stays at N — the persistence guarantee
// tests assert.
func (p *Pool) Spawned() int64 { return p.spawned.Load() }

// WorkerStat is one worker's lifetime utilization, split by phase kind.
type WorkerStat struct {
	// PauseItems counts work items (addresses or ParallelFor indices)
	// the worker processed inside phase dispatches — Drain, DrainSegs
	// and ParallelFor, which all run with the world stopped.
	PauseItems int64
	// LoanItems counts work items the worker processed while on loan to
	// a concurrent phase driver between pauses.
	LoanItems int64
}

// WorkerStats returns each worker's utilization counters. Safe to call
// at any time — it takes no locks, so it never blocks behind an
// outstanding loan; counters are updated once per phase, not per item,
// so a mid-phase sample lags by at most the phase in progress.
func (p *Pool) WorkerStats() []WorkerStat {
	out := make([]WorkerStat, p.N)
	ws := p.wsnap.Load()
	if ws == nil {
		return out // workers not started: all zeros
	}
	for i, w := range *ws {
		out[i] = WorkerStat{
			PauseItems: w.pauseItems.Load(),
			LoanItems:  w.loanItems.Load(),
		}
	}
	return out
}

// LoanStats returns how many loans the pool has served and how many
// work items were processed on loaned workers in total.
func (p *Pool) LoanStats() (loans, items int64) {
	return p.loans.Load(), p.loanItems.Load()
}

// PauseItems writes each worker's cumulative in-pause item count into
// dst (grown if needed) and returns it. Callers that difference
// successive snapshots get per-pause per-worker work — the phase-level
// imbalance signal — without allocating once dst has capacity N.
func (p *Pool) PauseItems(dst []int64) []int64 {
	if cap(dst) < p.N {
		dst = make([]int64, p.N)
	}
	dst = dst[:p.N]
	ws := p.wsnap.Load()
	if ws == nil {
		for i := range dst {
			dst[i] = 0
		}
		return dst
	}
	for i, w := range *ws {
		dst[i] = w.pauseItems.Load()
	}
	return dst
}

// PauseItemTracker differences successive PauseItems snapshots so a
// plan can attribute each pause's per-worker work to that pause's
// phase. Create one per pool; call Observe once after every pause (from
// the pause coordinator — it is not concurrency-safe against itself).
type PauseItemTracker struct {
	prev, cur []int64
}

// Observe calls record(workerID, items) with each worker's item count
// since the previous Observe. Reuses its internal buffers: no per-pause
// allocation after the first call.
func (t *PauseItemTracker) Observe(p *Pool, record func(worker int, items int64)) {
	t.cur = p.PauseItems(t.cur)
	if len(t.prev) < len(t.cur) {
		t.prev = append(t.prev, make([]int64, len(t.cur)-len(t.prev))...)
	}
	for i, c := range t.cur {
		record(i, c-t.prev[i])
		t.prev[i] = c
	}
}

// job is one parked-worker activation: either a drain (f set) or a
// parallel-for (pf set).
type job struct {
	// drain
	setup    func(w *Worker)
	f        func(w *Worker, a mem.Address)
	teardown func(w *Worker)

	// parallel-for
	pf    func(worker, start, end int)
	n     int
	next  *atomic.Int64
	chunk int

	loan *Loan       // non-nil when this activation is a between-pause loan
	intr atomic.Bool // loan-interrupt flag (set by Loan.Interrupt)

	// First worker panic of the job, re-raised on the dispatching
	// caller (panic containment).
	panicMu    sync.Mutex
	panicVal   any
	panicStack []byte

	wg *sync.WaitGroup
}

// recordPanic stores the first worker panic of the job.
func (jb *job) recordPanic(v any, stack []byte) {
	jb.panicMu.Lock()
	if jb.panicVal == nil {
		jb.panicVal, jb.panicStack = v, stack
	}
	jb.panicMu.Unlock()
}

// takePanic returns the recorded worker panic, if any.
func (jb *job) takePanic() (any, []byte) {
	jb.panicMu.Lock()
	defer jb.panicMu.Unlock()
	return jb.panicVal, jb.panicStack
}

// WorkerPanic wraps a panic that occurred on a pool worker goroutine.
// It is re-raised on the goroutine that dispatched the phase (Drain,
// DrainSegs, ParallelFor) or reclaimed the loan, carrying the original
// panic value and the worker goroutine's stack at the time of panic.
type WorkerPanic struct {
	Value any    // the worker's original panic value
	Stack []byte // the worker goroutine's stack trace
}

// Error implements error so recover sites can treat worker panics
// uniformly with error values.
func (e *WorkerPanic) Error() string {
	return fmt.Sprintf("gcwork: worker panic: %v", e.Value)
}

// String returns the panic value with the captured worker stack.
func (e *WorkerPanic) String() string {
	return fmt.Sprintf("gcwork: worker panic: %v\nworker stack:\n%s", e.Value, e.Stack)
}

// Worker is the per-goroutine context handed to processing functions.
// Processing functions may push new work items, which are drained before
// the Drain call returns. Workers are persistent: the same N Worker
// values serve every phase of the pool's lifetime.
type Worker struct {
	ID    int
	local []mem.Address
	dq    deque
	pool  *Pool
	rng   uint64
	// Scratch lets phases carry per-worker state (e.g. copy allocators).
	// It is cleared when the phase ends.
	Scratch any

	pauseItems atomic.Int64 // items processed in STW phases (telemetry)
	loanItems  atomic.Int64 // items processed on loan (telemetry)
}

// Push adds a work item for later processing. When the local stack grows
// past two chunks, one chunk is published on the worker's own deque for
// stealing.
func (w *Worker) Push(a mem.Address) {
	w.local = append(w.local, a)
	if len(w.local) >= 2*chunkSize {
		w.publish()
	}
}

// publish moves the oldest chunkSize local items onto the worker's deque
// and announces the publication to idle workers via the epoch counter.
func (w *Worker) publish() {
	c := make(chunk, chunkSize)
	copy(c, w.local[:chunkSize])
	w.local = append(w.local[:0], w.local[chunkSize:]...)
	w.dq.push(&c)
	w.pool.pubEpoch.Add(1)
}

// next returns the worker's next work item, acquiring more work from its
// deque, the injector or other workers as needed. ok=false means the
// whole drain has terminated (or the phase's loan was interrupted).
func (w *Worker) next(jb *job) (mem.Address, bool) {
	for {
		if n := len(w.local); n > 0 {
			a := w.local[n-1]
			w.local = w.local[:n-1]
			return a, true
		}
		if !w.acquire(jb) {
			return mem.Nil, false
		}
	}
}

// acquire refills the local stack: own deque first, then a seed segment
// from the injector, then stealing. When nothing is visible it enters
// the idle protocol, returning false on global termination.
func (w *Worker) acquire(jb *job) bool {
	p := w.pool
	for {
		if c := w.dq.pop(); c != nil {
			w.local = append(w.local, *c...)
			return true
		}
		if s := p.inj.pop(); s != nil {
			w.local = append(w.local, s...)
			return true
		}
		if w.stealOnce() {
			return true
		}
		if !p.awaitWork(jb) {
			return false
		}
	}
}

// stealOnce sweeps the other workers' deques once, starting from a
// random victim, and ingests the first chunk it wins.
func (w *Worker) stealOnce() bool {
	p := w.pool
	n := len(p.workers)
	if n < 2 {
		return false
	}
	off := int(w.nextRand() % uint64(n))
	for i := 0; i < n; i++ {
		v := p.workers[(off+i)%n]
		if v == w {
			continue
		}
		for {
			c, contended := v.dq.steal()
			if c != nil {
				w.local = append(w.local, *c...)
				return true
			}
			if !contended {
				break
			}
			// Lost the CAS to another thief: the victim may still hold
			// work, retry it before moving on.
		}
	}
	return false
}

// nextRand is a per-worker xorshift64 (steal-victim randomisation).
func (w *Worker) nextRand() uint64 {
	x := w.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	w.rng = x
	return x
}

// idleSpinLimit bounds busy-waiting: beyond it idle workers sleep in
// short quanta so an imbalanced phase does not burn a core per spinner.
const idleSpinLimit = 128

// awaitWork parks the calling worker in the idle protocol until either
// new work becomes visible (true) or the drain terminates (false).
//
// Termination detection is lock-free: a worker that observes all
// participating workers idle sweeps every deque and the injector; if
// the sweep finds nothing, the idle count still reads the participant
// count, and no chunk was published since the sweep began (the epoch
// counter is unchanged), there can be no work anywhere — workers only
// create work while non-idle — and the drain is declared complete. A
// pending loan interrupt also terminates the wait: interrupted workers
// leave their unprocessed work in place for Loan.Reclaim to harvest.
func (p *Pool) awaitWork(jb *job) bool {
	p.idle.Add(1)
	spins := 0
	for {
		if p.done.Load() || jb.intr.Load() {
			return false
		}
		if p.workVisible() {
			p.idle.Add(-1)
			return true
		}
		if n := p.active.Load(); p.idle.Load() == n {
			e0 := p.pubEpoch.Load()
			if !p.workVisible() && p.idle.Load() == n && p.pubEpoch.Load() == e0 {
				p.done.Store(true)
				return false
			}
		}
		spins++
		if spins < idleSpinLimit {
			runtime.Gosched()
		} else {
			time.Sleep(20 * time.Microsecond)
		}
	}
}

// workVisible reports whether any published work exists.
func (p *Pool) workVisible() bool {
	if !p.inj.empty() {
		return true
	}
	for _, w := range p.workers {
		if !w.dq.empty() {
			return true
		}
	}
	return false
}

// start lazily creates the persistent workers.
func (p *Pool) start() {
	p.once.Do(func() {
		workers := make([]*Worker, p.N)
		p.wake = make([]chan *job, p.N)
		for i := 0; i < p.N; i++ {
			w := &Worker{ID: i, pool: p, rng: uint64(i)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D}
			w.dq.init()
			workers[i] = w
			p.wake[i] = make(chan *job, 1)
		}
		p.workers = workers
		p.wsnap.Store(&workers)
		for i := 0; i < p.N; i++ {
			p.spawned.Add(1)
			p.alive.Add(1)
			go p.workerLoop(workers[i], p.wake[i])
		}
	})
}

// Stop terminates the pool's worker goroutines. The pool must not be
// used afterwards. Safe to call multiple times, or on a pool whose
// workers never started. An outstanding loan blocks Stop until it is
// reclaimed.
func (p *Pool) Stop() {
	p.runMu.Lock()
	defer p.runMu.Unlock()
	if p.stopped {
		return
	}
	p.stopped = true
	for _, ch := range p.wake {
		close(ch)
	}
	p.alive.Wait()
}

// workerLoop parks on the wake channel between phases.
func (p *Pool) workerLoop(w *Worker, wake chan *job) {
	defer p.alive.Done()
	for jb := range wake {
		p.runJob(w, jb)
	}
}

// runJob executes one activation with panic containment: a panic in the
// processing function is recorded on the job (for the dispatcher to
// re-raise), the phase's termination flag is raised so sibling workers
// stop promptly, and this worker's abandoned local work is dropped.
func (p *Pool) runJob(w *Worker, jb *job) {
	defer func() {
		if r := recover(); r != nil {
			jb.recordPanic(r, debug.Stack())
			p.done.Store(true)
			w.local = w.local[:0]
			w.Scratch = nil
		}
		jb.wg.Done()
	}()
	if jb.pf != nil {
		w.runFor(jb)
	} else {
		w.runDrain(jb)
	}
}

func (w *Worker) runDrain(jb *job) {
	if jb.setup != nil {
		jb.setup(w)
	}
	p := w.pool
	items := int64(0)
	for {
		// A loan interrupt stops processing within one item; the
		// worker's remaining local stack is left intact for Reclaim.
		// Phase drains (loan == nil) skip the flag load entirely.
		if jb.loan != nil && jb.intr.Load() {
			break
		}
		a, ok := w.next(jb)
		if !ok {
			break
		}
		jb.f(w, a)
		items++
	}
	if jb.teardown != nil {
		jb.teardown(w)
	}
	w.Scratch = nil
	if jb.loan != nil {
		w.loanItems.Add(items)
		p.loanItems.Add(items)
	} else {
		w.pauseItems.Add(items)
		w.local = w.local[:0] // empty on normal termination; defensive
	}
}

func (w *Worker) runFor(jb *job) {
	items := int64(0)
	for {
		start := int(jb.next.Add(int64(jb.chunk))) - jb.chunk
		if start >= jb.n {
			break
		}
		end := start + jb.chunk
		if end > jb.n {
			end = jb.n
		}
		jb.pf(w.ID, start, end)
		items += int64(end - start)
	}
	w.pauseItems.Add(items)
}

// scavenge collects every unprocessed address left in worker locals,
// worker deques and the injector. It must only run while all workers
// are parked (after the phase's WaitGroup has been waited on), when no
// concurrent deque operations are possible.
func (p *Pool) scavenge() [][]mem.Address {
	var out [][]mem.Address
	for _, w := range p.workers {
		if len(w.local) > 0 {
			out = append(out, w.local)
			w.local = nil
		}
		for {
			c := w.dq.pop()
			if c == nil {
				break
			}
			out = append(out, *c)
		}
	}
	for {
		s := p.inj.pop()
		if s == nil {
			break
		}
		out = append(out, s)
	}
	return out
}

// dispatch resets per-phase termination state, seeds the injector and
// wakes the first n workers with jb.
func (p *Pool) dispatch(jb *job, n int, segs [][]mem.Address) {
	p.done.Store(false)
	p.idle.Store(0)
	p.active.Store(int32(n))
	for _, s := range segs {
		for i := 0; i < len(s); i += chunkSize {
			end := min(i+chunkSize, len(s))
			p.inj.push(s[i:end:end])
		}
	}
	jb.wg.Add(n)
	for i := 0; i < n; i++ {
		p.wake[i] <- jb
	}
}

// rethrowWorkerPanic propagates a contained worker panic to the
// dispatching caller. Abandoned work is scavenged first so the pool's
// structures are empty when the next phase starts.
func (p *Pool) rethrowWorkerPanic(jb *job) {
	if v, stack := jb.takePanic(); v != nil {
		p.scavenge()
		panic(&WorkerPanic{Value: v, Stack: stack})
	}
}

// Drain processes the seed items and everything transitively pushed by
// f, in parallel across the pool's workers. It returns when all work is
// exhausted. setup, when non-nil, runs once per worker before processing
// (to install Scratch state); teardown runs after. The seed slice is
// only read during the call. A worker panic aborts the drain and is
// re-raised here wrapped in *WorkerPanic.
func (p *Pool) Drain(seed []mem.Address, setup func(w *Worker), f func(w *Worker, a mem.Address), teardown func(w *Worker)) {
	var segs [][]mem.Address
	if len(seed) > 0 {
		segs = [][]mem.Address{seed}
	}
	p.DrainSegs(segs, setup, f, teardown)
}

// DrainSegs is Drain with segment-granular seed injection: each segment
// is handed to the scheduler as-is (split into steal-granularity views —
// no flattening copy), so address buffers and shared queues can pass
// their internal segments straight through.
func (p *Pool) DrainSegs(segs [][]mem.Address, setup func(w *Worker), f func(w *Worker, a mem.Address), teardown func(w *Worker)) {
	p.start()
	p.runMu.Lock()
	defer p.runMu.Unlock()
	var wg sync.WaitGroup
	jb := &job{setup: setup, f: f, teardown: teardown, wg: &wg}
	p.dispatch(jb, p.N, segs)
	wg.Wait()
	p.rethrowWorkerPanic(jb)
}

// ParallelFor runs f over [0, n) split into contiguous ranges across the
// pool's workers. Ranges are claimed dynamically from an atomic cursor,
// so uneven per-index costs (block sweeping) self-balance. It is used
// for statically partitionable phases such as buffer processing and
// block sweeping. A worker panic aborts the phase and is re-raised here
// wrapped in *WorkerPanic.
func (p *Pool) ParallelFor(n int, f func(worker, start, end int)) {
	if n <= 0 {
		return
	}
	p.start()
	p.runMu.Lock()
	defer p.runMu.Unlock()
	chunk := n / (4 * p.N)
	if chunk < 1 {
		chunk = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	jb := &job{pf: f, n: n, next: &next, chunk: chunk, wg: &wg}
	wg.Add(p.N)
	for i := 0; i < p.N; i++ {
		p.wake[i] <- jb
	}
	wg.Wait()
	p.rethrowWorkerPanic(jb)
}

// --- worker lending ------------------------------------------------------------

// Loan is a between-pause borrow of pool workers, started by Pool.Lend
// and ended by Reclaim. While a loan is outstanding the pool's dispatch
// lock is held, so no pause phase can begin until the loan is reclaimed
// — the hand-back barrier the concurrent/pause ownership protocol
// relies on.
type Loan struct {
	p  *Pool
	jb *job

	// Workers borrowed (loans use worker IDs 0..Workers-1).
	Workers int

	reclaimed bool
	noop      bool

	// Tracing state: lend time and the pool's loan-item total at lend,
	// so Reclaim can attribute exactly this loan's items (loans are
	// serialised by runMu, so the delta is never mixed across loans).
	traceStart time.Time
	traceItem0 int64
	// rem is the unprocessed remainder: seeded at Lend for no-op loans
	// (stopped pool), harvested by Reclaim otherwise. It is retained on
	// the loan so an interrupted loan's work can be resumed — across
	// all pause workers via ResumeInPause, or folded into the driver's
	// next loan via TakeRemainder — without re-chunking through a flat
	// copy.
	rem [][]mem.Address
}

// Lend borrows up to n parked workers (clamped to the pool size) and
// starts draining segs — plus everything transitively pushed by f — on
// them. It returns immediately; the caller continues concurrently and
// must call Reclaim exactly once to wait for completion and release the
// pool. setup/teardown run once per borrowed worker, exactly as in
// Drain. Lend blocks while a pause phase is running and, once it
// returns, blocks pause phases until Reclaim — loans and phases never
// overlap.
//
// On a stopped pool Lend returns an inert loan whose Reclaim hands back
// the seed segments unprocessed.
func (p *Pool) Lend(n int, segs [][]mem.Address, setup func(w *Worker), f func(w *Worker, a mem.Address), teardown func(w *Worker)) *Loan {
	p.runMu.Lock()
	if p.stopped {
		// Checked before start(): lending against a stopped pool must
		// not spawn workers that could never be stopped again.
		p.runMu.Unlock()
		return &Loan{noop: true, rem: segs}
	}
	p.start()
	if n < 1 {
		n = 1
	}
	if n > p.N {
		n = p.N
	}
	var wg sync.WaitGroup
	jb := &job{setup: setup, f: f, teardown: teardown, wg: &wg}
	l := &Loan{p: p, jb: jb, Workers: n}
	jb.loan = l
	if p.tracer != nil {
		l.traceStart = time.Now()
		l.traceItem0 = p.loanItems.Load()
	}
	p.dispatch(jb, n, segs)
	p.loans.Add(1)
	return l
}

// Interrupt asks the loaned workers to stop promptly (within one work
// item each), preserving all unprocessed work for Reclaim to return.
// Safe to call from any goroutine, at any time, more than once — a
// pause that wants the pool calls it before waiting on the concurrent
// driver's quiescence.
func (l *Loan) Interrupt() {
	if l.noop {
		return
	}
	if l.jb.intr.CompareAndSwap(false, true) {
		if tr := l.p.tracer; tr != nil {
			tr.Instant(trace.ShardConc, trace.NameInterrupt, uint64(l.Workers), 0)
		}
	}
}

// LoanRef is a single-slot, thread-safe published reference to a
// driver's outstanding loan, shared with the pauses (or shutdown paths)
// that must be able to interrupt it. It closes the adopt race: an
// Interrupt arriving before the driver has adopted its freshly created
// loan is remembered (armed) and applied on adoption. The zero value
// is ready to use; all methods take only the ref's own lock, so they
// may be called while holding a driver's state mutex.
type LoanRef struct {
	mu    sync.Mutex
	loan  *Loan
	armed bool // interrupt requested; applies to the next adopted loan
}

// Adopt publishes l as the outstanding loan. If an interrupt is armed —
// a pause or shutdown requested it before adoption — l is interrupted
// immediately.
func (r *LoanRef) Adopt(l *Loan) {
	r.mu.Lock()
	r.loan = l
	if r.armed {
		l.Interrupt()
	}
	r.mu.Unlock()
}

// Drop clears the published loan after Reclaim. A stale Interrupt from
// a racing pause is harmless: interrupts are scoped to the loan's own
// job.
func (r *LoanRef) Drop() {
	r.mu.Lock()
	r.loan = nil
	r.mu.Unlock()
}

// Interrupt interrupts the published loan, if any, and stays armed so
// that a loan adopted later is interrupted at adoption. Callers Disarm
// when the condition that requested the interrupt (pause quiescence,
// shutdown) has passed.
func (r *LoanRef) Interrupt() {
	r.mu.Lock()
	r.armed = true
	if r.loan != nil {
		r.loan.Interrupt()
	}
	r.mu.Unlock()
}

// Disarm clears a previously armed interrupt; the driver may lend
// uninterrupted again.
func (r *LoanRef) Disarm() {
	r.mu.Lock()
	r.armed = false
	r.mu.Unlock()
}

// Reclaim waits for the borrowed workers to park, releases the pool for
// pause phases, and returns every unprocessed address (always empty
// unless the loan was interrupted). It must be called exactly once, on
// the goroutine that called Lend or one synchronised with it. A worker
// panic during the loan is re-raised here wrapped in *WorkerPanic.
//
// The remainder is also retained on the loan, for HasRemainder,
// TakeRemainder and ResumeInPause. A caller must either consume the
// returned segments or leave them for those accessors — not both, or
// the work would be processed twice.
func (l *Loan) Reclaim() [][]mem.Address {
	if l.noop {
		return l.rem
	}
	if l.reclaimed {
		panic("gcwork: Loan.Reclaim called twice")
	}
	l.reclaimed = true
	l.jb.wg.Wait()
	l.rem = l.p.scavenge()
	if tr := l.p.tracer; tr != nil {
		// Recorded before the pool is released so loan spans on the
		// concurrent timeline never overlap the next loan's span.
		tr.Span(trace.ShardConc, trace.NameLoan, l.traceStart, time.Since(l.traceStart),
			uint64(l.Workers), uint64(l.p.loanItems.Load()-l.traceItem0))
	}
	l.p.runMu.Unlock()
	if v, stack := l.jb.takePanic(); v != nil {
		panic(&WorkerPanic{Value: v, Stack: stack})
	}
	return l.rem
}

// HasRemainder reports whether the reclaimed loan retains unprocessed
// work.
func (l *Loan) HasRemainder() bool {
	for _, s := range l.rem {
		if len(s) > 0 {
			return true
		}
	}
	return false
}

// TakeRemainder removes and returns the retained remainder, so a driver
// can fold an interrupted loan's unfinished work — segment-granular —
// into its next loan.
func (l *Loan) TakeRemainder() [][]mem.Address {
	rem := l.rem
	l.rem = nil
	return rem
}

// ResumeInPause re-dispatches an interrupted loan's remainder across
// ALL of the pool's workers as a pause phase: the retained segments
// seed DrainSegs directly, so the pause finishes the loan's work at
// full parallel width without re-chunking it through an intermediate
// flat batch. Must be called after Reclaim, with the world stopped and
// the lending driver quiescent (the pool's dispatch lock is free —
// Reclaim released it). Returns whether any work was dispatched; a loan
// on a stopped pool resumes nothing (the remainder is dropped, as at
// shutdown).
func (l *Loan) ResumeInPause(setup func(w *Worker), f func(w *Worker, a mem.Address), teardown func(w *Worker)) bool {
	if l.noop || !l.HasRemainder() {
		return false
	}
	l.p.DrainSegs(l.TakeRemainder(), setup, f, teardown)
	return true
}
