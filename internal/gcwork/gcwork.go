// Package gcwork provides the parallel collection machinery: a worker
// pool that drains dynamically generated work (mark stacks, increment
// and decrement queues) with chunk-granularity work stealing and proper
// termination detection, a ParallelFor for static partitioning, and
// segmented address buffers used by write barriers and RC queues.
//
// LXR uses parallelism in every collection phase (§3.5); the same pool
// drives the baseline collectors' parallel tracing and copying.
package gcwork

import (
	"sync"

	"lxr/internal/mem"
)

// chunkSize is the work-stealing granularity: workers share work in
// chunks of addresses, which also naturally partitions very large
// reference arrays (the scalability fix noted in §3.5).
const chunkSize = 512

// Pool is a reusable parallel worker pool.
type Pool struct {
	N int // number of workers
}

// NewPool creates a pool with n workers (minimum 1).
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	return &Pool{N: n}
}

// Worker is the per-goroutine context handed to processing functions.
// Processing functions may push new work items, which are drained before
// the Drain call returns.
type Worker struct {
	ID    int
	local []mem.Address
	sh    *shared
	// Scratch lets phases carry per-worker state (e.g. copy allocators).
	Scratch any
}

type shared struct {
	mu      sync.Mutex
	cond    *sync.Cond
	chunks  [][]mem.Address
	waiting int
	n       int
	done    bool
}

// Push adds a work item for later processing. When the local stack grows
// past two chunks, one chunk is published for stealing.
func (w *Worker) Push(a mem.Address) {
	w.local = append(w.local, a)
	if len(w.local) >= 2*chunkSize {
		w.publish()
	}
}

func (w *Worker) publish() {
	c := make([]mem.Address, chunkSize)
	copy(c, w.local[:chunkSize])
	w.local = append(w.local[:0], w.local[chunkSize:]...)
	w.sh.mu.Lock()
	w.sh.chunks = append(w.sh.chunks, c)
	w.sh.mu.Unlock()
	w.sh.cond.Signal()
}

func (w *Worker) pop() (mem.Address, bool) {
	if n := len(w.local); n > 0 {
		a := w.local[n-1]
		w.local = w.local[:n-1]
		return a, true
	}
	return mem.Nil, false
}

// steal blocks until a chunk is available or global termination.
func (w *Worker) steal() bool {
	sh := w.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for {
		if len(sh.chunks) > 0 {
			c := sh.chunks[len(sh.chunks)-1]
			sh.chunks = sh.chunks[:len(sh.chunks)-1]
			w.local = append(w.local, c...)
			return true
		}
		sh.waiting++
		if sh.waiting == sh.n {
			sh.done = true
			sh.cond.Broadcast()
			return false
		}
		for len(sh.chunks) == 0 && !sh.done {
			sh.cond.Wait()
		}
		sh.waiting--
		if sh.done {
			return false
		}
	}
}

// Drain processes the seed items and everything transitively pushed by
// f, in parallel across the pool's workers. It returns when all work is
// exhausted. setup, when non-nil, runs once per worker before processing
// (to install Scratch state); teardown runs after.
func (p *Pool) Drain(seed []mem.Address, setup func(w *Worker), f func(w *Worker, a mem.Address), teardown func(w *Worker)) {
	sh := &shared{n: p.N}
	sh.cond = sync.NewCond(&sh.mu)
	// Pre-split the seed into chunks.
	for i := 0; i < len(seed); i += chunkSize {
		end := min(i+chunkSize, len(seed))
		c := make([]mem.Address, end-i)
		copy(c, seed[i:end])
		sh.chunks = append(sh.chunks, c)
	}
	var wg sync.WaitGroup
	for i := 0; i < p.N; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := &Worker{ID: id, sh: sh}
			if setup != nil {
				setup(w)
			}
			for {
				a, ok := w.pop()
				if !ok {
					if !w.steal() {
						break
					}
					continue
				}
				f(w, a)
			}
			if teardown != nil {
				teardown(w)
			}
		}(i)
	}
	wg.Wait()
}

// ParallelFor runs f over [0, n) split into contiguous ranges across the
// pool's workers. It is used for statically partitionable phases such as
// buffer processing and block sweeping.
func (p *Pool) ParallelFor(n int, f func(worker, start, end int)) {
	if n == 0 {
		return
	}
	workers := p.N
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	per := (n + workers - 1) / workers
	for i := 0; i < workers; i++ {
		start := i * per
		end := min(start+per, n)
		if start >= end {
			break
		}
		wg.Add(1)
		go func(id, s, e int) {
			defer wg.Done()
			f(id, s, e)
		}(i, start, end)
	}
	wg.Wait()
}

// --- segmented address buffers ----------------------------------------------

// segSize is the segment length of address buffers.
const segSize = 1024

// AddrBuffer is an append-only buffer of addresses stored in fixed-size
// segments. Mutators fill private buffers between collections; at a
// pause the plan takes all segments at once. The zero value is ready to
// use.
type AddrBuffer struct {
	segs [][]mem.Address
	cur  []mem.Address
	n    int
}

// Push appends an address.
func (b *AddrBuffer) Push(a mem.Address) {
	if len(b.cur) == cap(b.cur) {
		if b.cur != nil {
			b.segs = append(b.segs, b.cur)
		}
		b.cur = make([]mem.Address, 0, segSize)
	}
	b.cur = append(b.cur, a)
	b.n++
}

// Len returns the number of buffered addresses.
func (b *AddrBuffer) Len() int { return b.n }

// Take removes and returns all buffered addresses as a flat slice.
func (b *AddrBuffer) Take() []mem.Address {
	out := make([]mem.Address, 0, b.n)
	for _, s := range b.segs {
		out = append(out, s...)
	}
	out = append(out, b.cur...)
	b.segs, b.cur, b.n = nil, nil, 0
	return out
}

// TakeInto appends all buffered addresses to dst and clears the buffer.
func (b *AddrBuffer) TakeInto(dst []mem.Address) []mem.Address {
	for _, s := range b.segs {
		dst = append(dst, s...)
	}
	dst = append(dst, b.cur...)
	b.segs, b.cur, b.n = nil, nil, 0
	return dst
}

// SharedAddrQueue is a mutex-protected queue of address slices shared
// between mutator flushes and the concurrent collector thread.
type SharedAddrQueue struct {
	mu   sync.Mutex
	data []mem.Address
}

// Append adds addresses to the queue.
func (q *SharedAddrQueue) Append(as []mem.Address) {
	if len(as) == 0 {
		return
	}
	q.mu.Lock()
	q.data = append(q.data, as...)
	q.mu.Unlock()
}

// Push adds one address.
func (q *SharedAddrQueue) Push(a mem.Address) {
	q.mu.Lock()
	q.data = append(q.data, a)
	q.mu.Unlock()
}

// Take removes and returns everything queued.
func (q *SharedAddrQueue) Take() []mem.Address {
	q.mu.Lock()
	d := q.data
	q.data = nil
	q.mu.Unlock()
	return d
}

// Len returns the queued count.
func (q *SharedAddrQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.data)
}
