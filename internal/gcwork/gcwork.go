// Package gcwork provides the parallel collection machinery: a
// persistent, lock-free work-stealing scheduler that drains dynamically
// generated work (mark stacks, increment and decrement queues), a
// dynamically load-balanced ParallelFor for static partitioning, and
// segmented address buffers used by write barriers and RC queues.
//
// LXR uses parallelism in every collection phase (§3.5); the same pool
// drives the baseline collectors' parallel tracing and copying. The
// scheduler is built for sub-millisecond pauses: worker goroutines are
// created once per Pool and parked between phases (no goroutine spawn
// inside a pause), work distribution uses per-worker Chase-Lev deques
// (no mutex on any publish, pop or steal), and termination is detected
// with atomic idle/epoch counters (no condition-variable broadcast
// storm).
package gcwork

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lxr/internal/mem"
)

// chunkSize is the work-stealing granularity: workers share work in
// chunks of addresses, which also naturally partitions very large
// reference arrays (the scalability fix noted in §3.5).
const chunkSize = 512

// Pool is a reusable parallel worker pool. Its N worker goroutines are
// created on first use and persist — parked on their wake channels —
// until Stop, so consecutive collection phases (and consecutive
// collections) reuse the same workers and their warmed-up local stacks.
type Pool struct {
	N int // number of workers

	workers []*Worker
	wake    []chan *job
	alive   sync.WaitGroup
	once    sync.Once
	stopped bool

	// runMu serialises phase dispatch (Drain/ParallelFor callers). It is
	// never touched by workers: the publish/pop/steal hot paths inside a
	// phase are mutex-free.
	runMu sync.Mutex

	inj injector // phase seed segments

	// Termination state for the drain in progress.
	idle     atomic.Int32  // workers currently searching for work
	pubEpoch atomic.Uint64 // bumped on every chunk publication
	done     atomic.Bool   // drain-complete flag

	spawned atomic.Int64 // worker goroutines ever created (telemetry)
}

// NewPool creates a pool with n workers (minimum 1). Workers are started
// lazily on the first Drain or ParallelFor.
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	return &Pool{N: n}
}

// Spawned returns how many worker goroutines this pool has ever created.
// After any number of phases it stays at N — the persistence guarantee
// tests assert.
func (p *Pool) Spawned() int64 { return p.spawned.Load() }

// job is one parked-worker activation: either a drain (f set) or a
// parallel-for (pf set).
type job struct {
	// drain
	setup    func(w *Worker)
	f        func(w *Worker, a mem.Address)
	teardown func(w *Worker)

	// parallel-for
	pf    func(worker, start, end int)
	n     int
	next  *atomic.Int64
	chunk int

	wg *sync.WaitGroup
}

// Worker is the per-goroutine context handed to processing functions.
// Processing functions may push new work items, which are drained before
// the Drain call returns. Workers are persistent: the same N Worker
// values serve every phase of the pool's lifetime.
type Worker struct {
	ID    int
	local []mem.Address
	dq    deque
	pool  *Pool
	rng   uint64
	// Scratch lets phases carry per-worker state (e.g. copy allocators).
	// It is cleared when the phase ends.
	Scratch any
}

// Push adds a work item for later processing. When the local stack grows
// past two chunks, one chunk is published on the worker's own deque for
// stealing.
func (w *Worker) Push(a mem.Address) {
	w.local = append(w.local, a)
	if len(w.local) >= 2*chunkSize {
		w.publish()
	}
}

// publish moves the oldest chunkSize local items onto the worker's deque
// and announces the publication to idle workers via the epoch counter.
func (w *Worker) publish() {
	c := make(chunk, chunkSize)
	copy(c, w.local[:chunkSize])
	w.local = append(w.local[:0], w.local[chunkSize:]...)
	w.dq.push(&c)
	w.pool.pubEpoch.Add(1)
}

// next returns the worker's next work item, acquiring more work from its
// deque, the injector or other workers as needed. ok=false means the
// whole drain has terminated.
func (w *Worker) next() (mem.Address, bool) {
	for {
		if n := len(w.local); n > 0 {
			a := w.local[n-1]
			w.local = w.local[:n-1]
			return a, true
		}
		if !w.acquire() {
			return mem.Nil, false
		}
	}
}

// acquire refills the local stack: own deque first, then a seed segment
// from the injector, then stealing. When nothing is visible it enters
// the idle protocol, returning false on global termination.
func (w *Worker) acquire() bool {
	p := w.pool
	for {
		if c := w.dq.pop(); c != nil {
			w.local = append(w.local, *c...)
			return true
		}
		if s := p.inj.pop(); s != nil {
			w.local = append(w.local, s...)
			return true
		}
		if w.stealOnce() {
			return true
		}
		if !p.awaitWork() {
			return false
		}
	}
}

// stealOnce sweeps the other workers' deques once, starting from a
// random victim, and ingests the first chunk it wins.
func (w *Worker) stealOnce() bool {
	p := w.pool
	n := len(p.workers)
	if n < 2 {
		return false
	}
	off := int(w.nextRand() % uint64(n))
	for i := 0; i < n; i++ {
		v := p.workers[(off+i)%n]
		if v == w {
			continue
		}
		for {
			c, contended := v.dq.steal()
			if c != nil {
				w.local = append(w.local, *c...)
				return true
			}
			if !contended {
				break
			}
			// Lost the CAS to another thief: the victim may still hold
			// work, retry it before moving on.
		}
	}
	return false
}

// nextRand is a per-worker xorshift64 (steal-victim randomisation).
func (w *Worker) nextRand() uint64 {
	x := w.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	w.rng = x
	return x
}

// idleSpinLimit bounds busy-waiting: beyond it idle workers sleep in
// short quanta so an imbalanced phase does not burn a core per spinner.
const idleSpinLimit = 128

// awaitWork parks the calling worker in the idle protocol until either
// new work becomes visible (true) or the drain terminates (false).
//
// Termination detection is lock-free: a worker that observes all N
// workers idle sweeps every deque and the injector; if the sweep finds
// nothing, the idle count still reads N, and no chunk was published
// since the sweep began (the epoch counter is unchanged), there can be
// no work anywhere — workers only create work while non-idle — and the
// drain is declared complete.
func (p *Pool) awaitWork() bool {
	p.idle.Add(1)
	spins := 0
	for {
		if p.done.Load() {
			return false
		}
		if p.workVisible() {
			p.idle.Add(-1)
			return true
		}
		if p.idle.Load() == int32(p.N) {
			e0 := p.pubEpoch.Load()
			if !p.workVisible() && p.idle.Load() == int32(p.N) && p.pubEpoch.Load() == e0 {
				p.done.Store(true)
				return false
			}
		}
		spins++
		if spins < idleSpinLimit {
			runtime.Gosched()
		} else {
			time.Sleep(20 * time.Microsecond)
		}
	}
}

// workVisible reports whether any published work exists.
func (p *Pool) workVisible() bool {
	if !p.inj.empty() {
		return true
	}
	for _, w := range p.workers {
		if !w.dq.empty() {
			return true
		}
	}
	return false
}

// start lazily creates the persistent workers.
func (p *Pool) start() {
	p.once.Do(func() {
		p.workers = make([]*Worker, p.N)
		p.wake = make([]chan *job, p.N)
		for i := 0; i < p.N; i++ {
			w := &Worker{ID: i, pool: p, rng: uint64(i)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D}
			w.dq.init()
			p.workers[i] = w
			p.wake[i] = make(chan *job, 1)
			p.spawned.Add(1)
			p.alive.Add(1)
			go p.workerLoop(w, p.wake[i])
		}
	})
}

// Stop terminates the pool's worker goroutines. The pool must not be
// used afterwards. Safe to call multiple times, or on a pool whose
// workers never started.
func (p *Pool) Stop() {
	p.runMu.Lock()
	defer p.runMu.Unlock()
	if p.stopped {
		return
	}
	p.stopped = true
	for _, ch := range p.wake {
		close(ch)
	}
	p.alive.Wait()
}

// workerLoop parks on the wake channel between phases.
func (p *Pool) workerLoop(w *Worker, wake chan *job) {
	defer p.alive.Done()
	for jb := range wake {
		if jb.pf != nil {
			w.runFor(jb)
		} else {
			w.runDrain(jb)
		}
		jb.wg.Done()
	}
}

func (w *Worker) runDrain(jb *job) {
	if jb.setup != nil {
		jb.setup(w)
	}
	for {
		a, ok := w.next()
		if !ok {
			break
		}
		jb.f(w, a)
	}
	if jb.teardown != nil {
		jb.teardown(w)
	}
	w.Scratch = nil
}

func (w *Worker) runFor(jb *job) {
	for {
		start := int(jb.next.Add(int64(jb.chunk))) - jb.chunk
		if start >= jb.n {
			return
		}
		end := start + jb.chunk
		if end > jb.n {
			end = jb.n
		}
		jb.pf(w.ID, start, end)
	}
}

// Drain processes the seed items and everything transitively pushed by
// f, in parallel across the pool's workers. It returns when all work is
// exhausted. setup, when non-nil, runs once per worker before processing
// (to install Scratch state); teardown runs after. The seed slice is
// only read during the call.
func (p *Pool) Drain(seed []mem.Address, setup func(w *Worker), f func(w *Worker, a mem.Address), teardown func(w *Worker)) {
	var segs [][]mem.Address
	if len(seed) > 0 {
		segs = [][]mem.Address{seed}
	}
	p.DrainSegs(segs, setup, f, teardown)
}

// DrainSegs is Drain with segment-granular seed injection: each segment
// is handed to the scheduler as-is (split into steal-granularity views —
// no flattening copy), so address buffers and shared queues can pass
// their internal segments straight through.
func (p *Pool) DrainSegs(segs [][]mem.Address, setup func(w *Worker), f func(w *Worker, a mem.Address), teardown func(w *Worker)) {
	p.start()
	p.runMu.Lock()
	defer p.runMu.Unlock()
	p.done.Store(false)
	p.idle.Store(0)
	for _, s := range segs {
		for i := 0; i < len(s); i += chunkSize {
			end := min(i+chunkSize, len(s))
			p.inj.push(s[i:end:end])
		}
	}
	var wg sync.WaitGroup
	wg.Add(p.N)
	jb := &job{setup: setup, f: f, teardown: teardown, wg: &wg}
	for _, ch := range p.wake {
		ch <- jb
	}
	wg.Wait()
}

// ParallelFor runs f over [0, n) split into contiguous ranges across the
// pool's workers. Ranges are claimed dynamically from an atomic cursor,
// so uneven per-index costs (block sweeping) self-balance. It is used
// for statically partitionable phases such as buffer processing and
// block sweeping.
func (p *Pool) ParallelFor(n int, f func(worker, start, end int)) {
	if n <= 0 {
		return
	}
	p.start()
	p.runMu.Lock()
	defer p.runMu.Unlock()
	chunk := n / (4 * p.N)
	if chunk < 1 {
		chunk = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(p.N)
	jb := &job{pf: f, n: n, next: &next, chunk: chunk, wg: &wg}
	for _, ch := range p.wake {
		ch <- jb
	}
	wg.Wait()
}
