package baselines

import (
	"lxr/internal/gcwork"
	"lxr/internal/immix"
	"lxr/internal/meta"
)

// Parallel metadata clears. Every baseline pause starts by wiping mark
// bits, live words, or reuse counters over the whole heap; at realistic
// heap sizes those serial O(heap) walks are a measurable slice of the
// pause, so they partition over the GC pool like the sweeps already do.

// parClearThreshold gates full-table clears, in table entries: below it
// the serial clear finishes in less time than a pool dispatch.
const parClearThreshold = 1 << 14

// clearBitsParallel clears whole bit tables across the pool's workers.
func clearBitsParallel(pool *gcwork.Pool, tables ...*meta.BitTable) {
	for _, t := range tables {
		n := t.Words()
		if pool == nil || n < parClearThreshold {
			t.ClearAll()
			continue
		}
		pool.ParallelFor(n, func(_, lo, hi int) { t.ClearWords(lo, hi) })
	}
}

// clearLiveParallel zeroes every block's live word across the workers.
func clearLiveParallel(pool *gcwork.Pool, bt *immix.BlockTable) {
	n := bt.Arena.Blocks()
	if pool == nil || n < parClearThreshold {
		bt.ClearLiveAll()
		return
	}
	pool.ParallelFor(n, func(_, lo, hi int) { bt.ClearLiveRange(lo, hi) })
}

// resetCountersParallel zeroes per-line counters across the workers.
func resetCountersParallel(pool *gcwork.Pool, c *meta.LineCounters) {
	n := c.Len()
	if pool == nil || n < parClearThreshold {
		c.ResetAll()
		return
	}
	pool.ParallelFor(n, func(_, lo, hi int) { c.ResetRange(lo, hi) })
}
