package baselines

import (
	"time"

	"lxr/internal/gcwork"
	"lxr/internal/immix"
	"lxr/internal/mem"
	"lxr/internal/meta"
	"lxr/internal/obj"
	"lxr/internal/policy"
	"lxr/internal/trace"
	"lxr/internal/vm"
)

// SemiSpace is a classic two-space copying collector: mutators bump-
// allocate into the current half; on exhaustion a stop-the-world
// collection copies the transitive closure of the roots into the other
// half and frees the old one wholesale. It has no barriers and excellent
// allocation locality, which is why the LBO methodology so often selects
// it as the near-ideal baseline (§5.5).
//
// Serial and Parallel are this collector with 1 and N copying threads,
// standing in for OpenJDK's Serial and Parallel collectors (documented
// substitution: both are STW collectors whose cost is dominated by
// copying reachable objects).
type SemiSpace struct {
	base
	half  uint8 // current allocation half (0/1)
	count int64 // collections performed
}

// NewSemiSpace creates the collector. gcThreads=1 yields Serial
// behaviour.
func NewSemiSpace(name string, heapBytes, gcThreads int) *SemiSpace {
	return &SemiSpace{base: newBase(name, heapBytes, gcThreads)}
}

// NewSerial builds the 1-thread variant.
func NewSerial(heapBytes int) *SemiSpace { return NewSemiSpace("Serial", heapBytes, 1) }

// NewParallel builds the N-thread variant.
func NewParallel(heapBytes, gcThreads int) *SemiSpace {
	return NewSemiSpace("Parallel", heapBytes, gcThreads)
}

type ssMut struct{ alloc immix.Allocator }

// Boot implements vm.Plan.
func (p *SemiSpace) Boot(v *vm.VM) {
	p.vm = v
	p.pacer = policy.NewHeapFullPacer(p.name, p.pacing, p.halfBudget())
	p.armTracer()
}

// Shutdown implements vm.Plan: parks and releases the persistent GC
// worker pool.
func (p *SemiSpace) Shutdown() { p.pool.Stop() }

// BindMutator implements vm.Plan.
func (p *SemiSpace) BindMutator(m *vm.Mutator) {
	ms := &ssMut{}
	ms.alloc = immix.Allocator{BT: p.bt, Kind: p.half}
	m.PlanState = ms
}

// UnbindMutator implements vm.Plan.
func (p *SemiSpace) UnbindMutator(m *vm.Mutator) {
	m.PlanState.(*ssMut).alloc.Flush()
	m.PlanState = nil
}

// halfBudget bounds each semispace half to half the heap budget.
func (p *SemiSpace) halfBudget() int { return p.bt.BudgetBlocks() / 2 }

func (p *SemiSpace) tryAlloc(ms *ssMut, l obj.Layout) (obj.Ref, bool) {
	if l.Large {
		return p.allocLarge(l)
	}
	// The pacer enforces the half budget: the other half is the copy
	// reserve, so reaching it means a collection is due.
	if p.pacer.ShouldCollect(policy.Signals{
		HeapBlocks:   p.bt.InUseBlocks(),
		BudgetBlocks: p.bt.BudgetBlocks(),
	}) {
		return mem.Nil, false
	}
	return ms.alloc.Alloc(l.Size)
}

// Alloc implements vm.Plan.
func (p *SemiSpace) Alloc(m *vm.Mutator, l obj.Layout) obj.Ref {
	m.Safepoint()
	ms := m.PlanState.(*ssMut)
	r, ok := gcRetry(p.vm, m, 2,
		func() (obj.Ref, bool) { return p.tryAlloc(ms, l) },
		func() { p.collectLocked() })
	if !ok {
		p.oom(l)
	}
	if !l.Large {
		p.om.WriteHeader(r, l)
	}
	return r
}

// WriteRef implements vm.Plan: no write barrier.
func (p *SemiSpace) WriteRef(m *vm.Mutator, src obj.Ref, i int, val obj.Ref) {
	p.om.StoreSlot(src, i, val)
}

// ReadRef implements vm.Plan: no read barrier.
func (p *SemiSpace) ReadRef(m *vm.Mutator, src obj.Ref, i int) obj.Ref {
	return p.om.LoadSlot(src, i)
}

// PollSafepoint implements vm.Plan: collections are triggered by
// allocation failure only.
func (p *SemiSpace) PollSafepoint(m *vm.Mutator) {}

// CollectNow implements vm.Plan: a full stop-the-world copying
// collection, self-serialised.
func (p *SemiSpace) CollectNow(cause string) {
	p.vm.RunCollection(nil, func() { p.collectLocked() })
}

// collectLocked runs a collection; the caller must hold the VM's
// collection lock (vm.RunCollection / vm.CollectIfEpoch).
func (p *SemiSpace) collectLocked() {
	dur := p.vm.StopTheWorld("full", func() { p.collect() })
	p.recordPauseWorkerItems("full")
	p.vm.Stats.AddGCWork(dur * time.Duration(p.pool.N))
}

func (p *SemiSpace) collect() {
	p.count++
	from := p.half
	to := 1 - p.half
	p.half = to
	ev := p.events
	ph := time.Now()

	// Reset mutator allocators onto the to-space.
	p.vm.EachMutatorParallel(p.pool, func(m *vm.Mutator) {
		ms := m.PlanState.(*ssMut)
		ms.alloc.Flush()
		ms.alloc.Kind = to
	})

	marks := markBits(p.bt.Arena)
	ev.Phase(trace.NameFlip, ph)

	// Copy the transitive closure. Work items are tagged root indices
	// or heap slot addresses of already-copied objects.
	ph = time.Now()
	rootSlots := p.vm.RootSlots(p.pool, nil)
	items := make([]mem.Address, 0, len(rootSlots))
	for i := range rootSlots {
		items = append(items, mem.Address(i)|ssRootTag)
	}
	ev.PhaseArg(trace.NameRoots, ph, uint64(len(rootSlots)))

	ph = time.Now()
	p.pool.Drain(items,
		func(w *gcwork.Worker) {
			// NoBudget: copying must not fail while physical space
			// exists — the from-space frees wholesale right after.
			w.Scratch = &immix.Allocator{BT: p.bt, Kind: to, NoBudget: true}
		},
		func(w *gcwork.Worker, item mem.Address) {
			al := w.Scratch.(*immix.Allocator)
			if item&ssRootTag != 0 {
				slot := rootSlots[int(item&^ssRootTag)]
				*slot = p.forward(w, al, *slot, marks)
			} else {
				v := p.om.A.LoadRef(item)
				if !v.IsNil() {
					p.om.A.StoreRef(item, p.forward(w, al, v, marks))
				}
			}
		},
		func(w *gcwork.Worker) { w.Scratch.(*immix.Allocator).Flush() })
	ev.Phase(trace.NameCopy, ph)

	// Free the entire from-space.
	ph = time.Now()
	p.bt.AllBlocks(func(idx int) {
		if st := p.bt.State(idx); st == immix.StateFull || st == immix.StateReserved {
			if p.bt.Kind(idx) == from {
				p.bt.ReleaseFree(idx)
			}
		}
	})
	p.sweepLargeUnmarked(marks)
	ev.Phase(trace.NameFree, ph)
}

const ssRootTag mem.Address = 1 << 63

// forward copies ref to to-space (or marks a large object), pushing its
// slots for scanning, and returns its new address.
func (p *SemiSpace) forward(w *gcwork.Worker, al *immix.Allocator, ref obj.Ref, marks *meta.BitTable) obj.Ref {
	if p.om.IsLarge(ref) {
		if marks.TrySet(ref) {
			p.pushSlots(w, ref)
		}
		return ref
	}
	nv := p.copyInto(al, ref)
	if nv.IsNil() {
		p.oom(obj.Layout{Size: p.om.Size(ref), NumRefs: p.om.NumRefs(ref)})
	}
	if marks.TrySet(nv) { // first copier scans
		p.pushSlots(w, nv)
	}
	return nv
}

func (p *SemiSpace) pushSlots(w *gcwork.Worker, ref obj.Ref) {
	n := p.om.NumRefs(ref)
	for i := 0; i < n; i++ {
		slot := p.om.SlotAddr(ref, i)
		if !p.om.A.LoadRef(slot).IsNil() {
			w.Push(slot)
		}
	}
}

// Collections returns how many collections have run.
func (p *SemiSpace) Collections() int64 { return p.count }
