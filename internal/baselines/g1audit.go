package baselines

import (
	"fmt"
	"os"

	"lxr/internal/immix"
	"lxr/internal/mem"
	"lxr/internal/obj"
)

// g1AuditEnabled gates the mixed-collection evacuation audit: at every
// mixed pause — after the collection set has been evacuated, before its
// regions are freed — the heap's marked objects are walked and no slot
// may still hold an address inside a region about to be freed. The
// evacuation is remembered-set-driven, so an un-rewritten incoming edge
// means the remsets (plus dirty slots and promotion scans) failed to
// cover that slot: freeing the region would leave it dangling. Enabled
// by the same LXR_VERIFY switch as core's verifier, or per-test via
// SetG1AuditForTest. The cost is a full heap walk per mixed pause.
var g1AuditEnabled = os.Getenv("LXR_VERIFY") != ""

// SetG1AuditForTest toggles the mixed-collection audit independently of
// the environment (test instrumentation).
func SetG1AuditForTest(on bool) { g1AuditEnabled = on }

// MixedAudits reports how many mixed pauses ran the evacuation audit,
// so tests can assert the property was actually exercised.
func (p *G1) MixedAudits() int64 { return p.mixedAudits.Load() }

// auditMixedEvacuation runs inside a mixed pause, with the world
// stopped, after the evacuation drain and the tracer's ResolvePending
// and before the region-free loop. It asserts the remset-driven
// evacuation was sound in three passes:
//
//  1. no root slot still points into a to-be-freed region — cset or
//     young, both are released by the same loop (the drain rewrites
//     every root in place);
//  2. no marked live object — surviving old regions and the large
//     object space — holds a reference into a to-be-freed region: every
//     such edge must have been covered by a remset entry, a dirty slot,
//     or a promotion scan, all of which rewrite the slot to the copy's
//     address. (Objects promoted during this pause are unmarked when the
//     mark has already finished; their slots were scanned — and
//     rewritten — by the evacuation drain itself, so skipping them
//     cannot produce a false alarm.)
//  3. walking the freed regions directly: every forwarded object's copy
//     must land outside the freed set (fresh old regions are never cset
//     members), and no forwarding word may be left mid-claim.
func (p *G1) auditMixedEvacuation(rootSlots []*obj.Ref) {
	// Freed set: every region this pause's free loop will release —
	// the cset (FlagDefrag old regions) and all young regions, minus
	// regions that suffered an evacuation failure (those are promoted
	// in place and survive). Young regions matter: they are freed in
	// the same loop, so a live edge left pointing into one dangles just
	// as surely as a missed cset edge.
	freed := map[int]bool{}
	p.bt.AllBlocks(func(idx int) {
		st := p.bt.State(idx)
		if st != immix.StateFull && st != immix.StateReserved {
			return
		}
		if p.bt.HasFlag(idx, immix.FlagEvacuating) {
			return
		}
		if p.bt.Kind(idx) == g1KindYoung ||
			(p.bt.Kind(idx) == g1KindOld && p.bt.HasFlag(idx, immix.FlagDefrag)) {
			freed[idx] = true
		}
	})
	if len(freed) == 0 {
		return
	}
	intoFreed := func(v obj.Ref) bool {
		return !v.IsNil() && v&(mem.Granule-1) == 0 && p.om.A.Contains(v) && freed[v.Block()]
	}

	// 1. Roots.
	for _, s := range rootSlots {
		if v := *s; intoFreed(v) {
			panic(fmt.Sprintf("g1 audit: root still points into freed cset region %d (ref %x)",
				v.Block(), uint64(v)))
		}
	}

	// 2. Incoming edges from marked survivors.
	auditSlots := func(r obj.Ref, where string) {
		n := p.om.NumRefs(r)
		for i := 0; i < n; i++ {
			if v := p.om.A.LoadRef(p.om.SlotAddr(r, i)); intoFreed(v) {
				panic(fmt.Sprintf(
					"g1 audit: %s object %x slot %d still points into freed cset region %d (ref %x): edge not covered by any remset/dirty/promotion record",
					where, uint64(r), i, v.Block(), uint64(v)))
			}
		}
	}
	p.bt.AllBlocks(func(idx int) {
		st := p.bt.State(idx)
		if st != immix.StateFull && st != immix.StateReserved {
			return
		}
		if p.bt.Kind(idx) != g1KindOld || freed[idx] {
			return
		}
		p.eachBlockObject(idx, func(r obj.Ref) {
			if p.marks.Get(r) {
				auditSlots(r, "old")
			}
		})
	})
	p.bt.LOS().Each(func(a mem.Address) {
		if r := obj.Ref(a); p.marks.Get(r) {
			auditSlots(r, "large")
		}
	})

	// 3. The cset regions themselves.
	for idx := range freed {
		p.eachBlockObject(idx, func(r obj.Ref) {
			fw := p.om.ForwardingWord(r)
			switch fw & 3 {
			case obj.FwdForwarded:
				if nv := obj.Ref(fw >> 2); freed[nv.Block()] {
					panic(fmt.Sprintf("g1 audit: cset object %x forwarded into freed region %d (copy %x)",
						uint64(r), nv.Block(), uint64(nv)))
				}
			case obj.FwdBusy:
				panic(fmt.Sprintf("g1 audit: cset object %x left mid-claim (forwarding word %x)",
					uint64(r), fw))
			}
		})
	}
	p.mixedAudits.Add(1)
}

// eachBlockObject walks a bump-allocated region's contiguous objects by
// size header (G1 regions are never line-recycled, so objects are
// contiguous from the region start up to the unallocated tail). The
// size header (word 0) stays intact across forwarding, which lives in
// word 1.
func (p *G1) eachBlockObject(idx int, f func(obj.Ref)) {
	a := mem.BlockStart(idx)
	end := a + mem.BlockSize
	for a < end {
		size := int(uint32(p.om.A.Load(a)))
		if size < obj.MinSize || size > mem.BlockSize {
			return // unallocated tail
		}
		f(obj.Ref(a))
		a = (a + mem.Address(size)).AlignUp(mem.Granule)
	}
}
