package baselines

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lxr/internal/conctrl"
	"lxr/internal/gcwork"
	"lxr/internal/immix"
	"lxr/internal/mem"
	"lxr/internal/meta"
	"lxr/internal/obj"
	"lxr/internal/policy"
	"lxr/internal/satb"
	"lxr/internal/trace"
	"lxr/internal/vm"
)

// Cycle phases for the concurrent evacuating collectors.
const (
	phIdle int32 = iota
	phMark
	phEvac
	phUpdate
)

// ZGCMinHeapBytes models ZGC's minimum-heap requirement on this
// substrate (the JDK 11 ZGC the paper evaluates "requires a substantial
// minimum heap" and fails on many benchmarks at small sizes, §4).
const ZGCMinHeapBytes = 40 << 20

// Shen is a Shenandoah-style non-generational concurrent evacuating
// collector: concurrent SATB marking, concurrent evacuation of a
// low-liveness collection set with Brooks-style forwarding resolved by
// barriers on mutator accesses, and a concurrent update-references pass.
// Mutators that cannot allocate stall until the in-flight cycle frees
// memory — the behaviour behind the paper's lusearch pathology, where a
// 9.5 GB/s allocation rate outruns the concurrent cycle (Table 1).
//
// With lvb=true the plan models ZGC instead: the load-value barrier test
// runs on every reference load regardless of phase, the collector is
// also non-generational, and construction enforces ZGC's minimum heap.
type Shen struct {
	base
	marks  *meta.BitTable
	tracer *satb.Tracer
	phase  atomic.Int32
	lvb    bool

	cands []int // cycle candidates (full at mark start)
	cset  []int // selected collection set

	cycleMu   sync.Mutex
	cycleCond *sync.Cond
	cycles    uint64      // completed cycles (guarded by cycleMu)
	wanted    atomic.Bool // a cycle has been requested

	stop atomic.Bool

	// cycle driver: the shared conctrl controller owns the goroutine
	// and panic containment; shenCycles supplies the work condition
	// (occupancy or an explicit request) and runs one cycle per
	// quantum.
	ctl *conctrl.Controller

	satbIn gcwork.SharedAddrQueue
}

// NewShenandoah creates the Shenandoah-like plan.
func NewShenandoah(heapBytes, gcThreads int) *Shen {
	return newShen("Shenandoah", heapBytes, gcThreads, false)
}

// NewZGC creates the ZGC-like plan. It returns nil when the heap is
// below ZGC's minimum, mirroring the paper's missing data points.
func NewZGC(heapBytes, gcThreads int) *Shen {
	if heapBytes < ZGCMinHeapBytes {
		return nil
	}
	return newShen("ZGC", heapBytes, gcThreads, true)
}

func newShen(name string, heapBytes, gcThreads int, lvb bool) *Shen {
	p := &Shen{base: newBase(name, heapBytes, gcThreads), lvb: lvb}
	p.marks = markBits(p.bt.Arena)
	p.tracer = &satb.Tracer{
		OM:     p.om,
		Marks:  p.marks,
		Filter: p.saneRef,
		OnMark: func(r obj.Ref) {
			if !p.om.IsLarge(r) {
				p.bt.AddLive(r.Block(), int32(p.om.Size(r)))
			}
		},
	}
	p.cycleCond = sync.NewCond(&p.cycleMu)
	return p
}

type shenMut struct {
	alloc immix.Allocator // strictly copying: clean blocks only
	evac  immix.Allocator // copy allocator for barrier-driven evacuation
	satbB gcwork.AddrBuffer
}

// Boot implements vm.Plan. The cycle controller polls heap occupancy
// every 2ms while idle; Stats is nil because a cycle quantum contains
// pauses and waiting — the concurrent slices are accounted inside
// runCycle instead.
func (p *Shen) Boot(v *vm.VM) {
	p.vm = v
	p.pacer = policy.NewFreeFractionPacer(policy.FreeFractionPacerConfig{
		Mode:         p.pacing,
		Collector:    p.name,
		BudgetBlocks: p.bt.BudgetBlocks(),
	})
	p.armTracer()
	p.ctl = p.newController(&shenCycles{p: p}, v, nil, 2*time.Millisecond)
	p.ctl.Start()
}

// Shutdown implements vm.Plan.
func (p *Shen) Shutdown() {
	p.stop.Store(true)
	p.cycleMu.Lock()
	p.cycleCond.Broadcast()
	p.cycleMu.Unlock()
	p.ctl.Stop()
	p.pool.Stop()
}

// BindMutator implements vm.Plan.
func (p *Shen) BindMutator(m *vm.Mutator) {
	m.PlanState = &shenMut{
		alloc: immix.Allocator{BT: p.bt},
		evac:  immix.Allocator{BT: p.bt},
	}
}

// UnbindMutator implements vm.Plan.
func (p *Shen) UnbindMutator(m *vm.Mutator) {
	ms := m.PlanState.(*shenMut)
	ms.alloc.Flush()
	ms.evac.Flush()
	for _, s := range ms.satbB.TakeSegs() {
		p.satbIn.Append(s)
	}
	m.PlanState = nil
}

// Alloc implements vm.Plan. Allocation failure stalls the mutator until
// the concurrent cycle completes — there is no STW fallback that can
// reclaim memory without the full concurrent mark/evac/update pipeline.
func (p *Shen) Alloc(m *vm.Mutator, l obj.Layout) obj.Ref {
	m.Safepoint()
	ms := m.PlanState.(*shenMut)
	for attempt := 0; ; attempt++ {
		var r obj.Ref
		var ok bool
		if l.Large {
			r, ok = p.allocLarge(l)
		} else {
			r, ok = ms.alloc.Alloc(l.Size)
		}
		if ok {
			if !l.Large {
				p.om.WriteHeader(r, l)
			}
			if p.phase.Load() != phIdle {
				// Allocate black: objects born during the cycle stay
				// live and are never part of the cset.
				p.marks.Set(r)
			}
			return r
		}
		// Stall until a cycle frees memory — Shenandoah's behaviour in
		// tight heaps (the paper's lusearch pathology): mutators wait on
		// the concurrent pipeline rather than failing fast.
		if attempt >= 24 {
			p.oom(l)
		}
		p.waitForCycle(m)
	}
}

// waitForCycle requests a collection cycle and blocks (as a GC-visible
// blocked mutator) until one completes.
func (p *Shen) waitForCycle(m *vm.Mutator) {
	m.Blocked(func() {
		p.cycleMu.Lock()
		target := p.cycles + 1
		p.wanted.Store(true)
		p.ctl.Kick()
		for p.cycles < target && !p.stop.Load() {
			p.cycleCond.Wait()
		}
		p.cycleMu.Unlock()
	})
}

// WriteRef implements vm.Plan: the SATB barrier captures overwritten
// values during marking; during evacuation and update phases both the
// written-to object and the written value are resolved so no stale
// reference is ever stored.
func (p *Shen) WriteRef(m *vm.Mutator, src obj.Ref, i int, val obj.Ref) {
	ms := m.PlanState.(*shenMut)
	ph := p.phase.Load()
	if ph >= phEvac {
		src = p.resolveOrCopy(ms, src)
		if !val.IsNil() {
			val = p.resolveOrCopy(ms, val)
		}
	}
	slot := p.om.SlotAddr(src, i)
	if ph == phMark {
		if old := p.om.A.LoadRef(slot); !old.IsNil() {
			ms.satbB.Push(old)
			if ms.satbB.Len() >= 4096 {
				for _, s := range ms.satbB.TakeSegs() {
					p.satbIn.Append(s)
				}
			}
		}
	}
	p.om.A.StoreRef(slot, val)
}

// ReadRef implements vm.Plan: the read barrier. Shenandoah's barrier
// engages during evacuation and update phases; ZGC's load-value barrier
// performs its test on every load.
func (p *Shen) ReadRef(m *vm.Mutator, src obj.Ref, i int) obj.Ref {
	barrier := p.lvb || p.phase.Load() >= phEvac
	if barrier {
		// Brooks semantics: all accesses resolve through the forwarding
		// pointer so reads always see the up-to-date copy.
		src = p.resolveOrCopy(m.PlanState.(*shenMut), src)
	}
	v := p.om.LoadSlot(src, i)
	if v.IsNil() {
		return v
	}
	if barrier {
		ms := m.PlanState.(*shenMut)
		if nv := p.resolveOrCopy(ms, v); nv != v {
			// Heal the slot so later loads take the fast path.
			p.om.StoreSlot(src, i, nv)
			return nv
		}
	}
	return v
}

// resolveOrCopy returns the current address of ref, copying it out of
// the collection set if nobody has yet (mutators share evacuation work
// with the collector, as under an LVB). If the copy reserve is
// exhausted the mutator waits for the collector, which either copies
// the object or aborts the block's evacuation.
func (p *Shen) resolveOrCopy(ms *shenMut, ref obj.Ref) obj.Ref {
	for {
		fw := p.om.ForwardingWord(ref)
		switch fw & 3 {
		case obj.FwdForwarded:
			return obj.Ref(fw >> 2)
		case obj.FwdBusy:
			continue
		}
		if !p.bt.HasFlag(ref.Block(), immix.FlagEvacuating) {
			return ref
		}
		if !p.om.TryClaimForwarding(ref) {
			continue
		}
		size := p.om.Size(ref)
		dst, ok := ms.evac.Alloc(size)
		if !ok {
			p.om.AbandonForwarding(ref)
			runtime.Gosched() // wait for the collector to handle it
			continue
		}
		p.om.CopyTo(ref, dst)
		p.marks.Set(dst)
		p.om.InstallForwarding(ref, dst)
		return dst
	}
}

// PollSafepoint implements vm.Plan.
func (p *Shen) PollSafepoint(m *vm.Mutator) {}

// CollectNow implements vm.Plan: requests a cycle and waits for it.
func (p *Shen) CollectNow(cause string) {
	p.cycleMu.Lock()
	target := p.cycles + 1
	p.wanted.Store(true)
	p.ctl.Kick()
	for p.cycles < target && !p.stop.Load() {
		p.cycleCond.Wait()
	}
	p.cycleMu.Unlock()
}

// --- the concurrent cycle ------------------------------------------------------

// shenCycles is the collector's cycle driver for the shared conctrl
// controller: it watches heap occupancy (via the controller's idle
// poll) and runs mark → evacuate → update-references pipelines, pausing
// briefly for init-mark, final-mark and final-update. A panic escaping
// a cycle (e.g. a *gcwork.WorkerPanic re-raised by a loan's Reclaim) is
// parked by the controller and OnStop releases the cycle rendezvous, so
// stalled mutators fail their allocations and the workload records a
// Failed data point instead of the process dying.
type shenCycles struct{ p *Shen }

// HasWork implements conctrl.CycleDriver: a cycle runs when occupancy
// crosses the trigger or a stalled mutator (or CollectNow) requested
// one.
func (d *shenCycles) HasWork() bool {
	return !d.p.stop.Load() && (d.p.wanted.Load() || d.p.cycleDue())
}

// Quantum implements conctrl.CycleDriver: one full collection cycle.
// The width argument is ignored — cycles re-read the controller's width
// at every trace advance, so a governor resize applies mid-cycle.
func (d *shenCycles) Quantum(int) {
	p := d.p
	p.runCycle()
	p.cycleMu.Lock()
	p.cycles++
	p.wanted.Store(false)
	p.cycleCond.Broadcast()
	p.cycleMu.Unlock()
}

// OnStop implements conctrl.StopNotifier: stop serving cycles and
// release every mutator waiting on the cycle rendezvous.
func (d *shenCycles) OnStop(failure any) {
	p := d.p
	p.stop.Store(true)
	p.cycleMu.Lock()
	p.cycleCond.Broadcast()
	p.cycleMu.Unlock()
}

// cycleDue asks the pacer whether free memory has fallen under the
// trigger fraction (historically 30% of budget; adaptive pacing backs
// the threshold off under churn). It runs on the controller goroutine
// with the controller lock held, so every read here is lock-free:
// occupancy comes from the block table's atomic counters (including the
// large-object space's, made atomic for exactly this path) and the
// pacer's threshold is an atomic load.
func (p *Shen) cycleDue() bool {
	return p.pacer.ShouldStartCycle(policy.Signals{
		HeapBlocks:   p.bt.InUseBlocks() + p.bt.LOS().BlocksInUse(),
		BudgetBlocks: p.bt.BudgetBlocks(),
	})
}

func (p *Shen) runCycle() {
	if p.stop.Load() {
		return
	}
	ev := p.events
	// Init mark (pause): reset liveness, flag candidates, seed roots.
	p.vm.RunCollection(nil, func() {
		p.vm.StopTheWorld("init-mark", func() {
			pt := time.Now()
			clearBitsParallel(p.pool, p.marks)
			clearLiveParallel(p.pool, p.bt)
			p.cands = p.cands[:0]
			p.bt.AllBlocks(func(idx int) {
				if p.bt.State(idx) == immix.StateFull {
					p.bt.SetFlag(idx, immix.FlagDefrag)
					p.cands = append(p.cands, idx)
				}
			})
			p.tracer.Begin()
			ev.PhaseArg(trace.NameMarkStart, pt, uint64(len(p.cands)))
			// SATB drains are multi-producer safe; only the seed
			// snapshot needs gathering (parallel over shards).
			pt = time.Now()
			p.vm.EachMutatorParallel(p.pool, func(m *vm.Mutator) {
				ms := m.PlanState.(*shenMut)
				p.satbIn.Append(ms.satbB.Take())
			})
			p.tracer.Seed(p.vm.SnapshotRootsParallel(p.pool, nil))
			ev.Phase(trace.NameRoots, pt)
			p.phase.Store(phMark)
			p.pacer.ObserveCycleStart(policy.Signals{
				HeapBlocks:   p.bt.InUseBlocks() + p.bt.LOS().BlocksInUse(),
				BudgetBlocks: p.bt.BudgetBlocks(),
			})
		})
		p.recordPauseWorkerItems("init-mark")
	})

	// Concurrent mark. The cycle driver is the tracer's owner thread
	// and also the only thread that initiates pauses, so loans taken
	// here can never overlap a pause; no interrupt wiring is needed
	// (unlike G1, whose pauses originate on mutator threads). The
	// quantum spans the whole cycle, so the governor is sampled here
	// (Controller.Govern) and the width re-read at every advance —
	// resizes genuinely take effect mid-cycle.
	cm := time.Now()
	for {
		t0 := time.Now()
		for _, s := range p.satbIn.TakeSegs() {
			p.tracer.Seed(refsOf(s))
		}
		p.ctl.Govern()
		var idle bool
		if k := p.ctl.Width(); k > 1 {
			idle = p.tracer.StepParallel(p.pool, k, nil)
		} else {
			idle = p.tracer.Step(8192)
		}
		p.vm.Stats.AddConcurrentWork(time.Since(t0))
		if idle && p.satbIn.Len() == 0 {
			break
		}
		if p.stop.Load() {
			p.phase.Store(phIdle)
			return
		}
	}
	ev.Span(trace.ShardConc, trace.NameConcMark, cm, time.Since(cm), 0, 0)

	// Final mark (pause): seed the last captures, finish the closure,
	// select the collection set.
	p.vm.RunCollection(nil, func() {
		p.vm.StopTheWorld("final-mark", func() {
			pt := time.Now()
			p.vm.EachMutatorParallel(p.pool, func(m *vm.Mutator) {
				ms := m.PlanState.(*shenMut)
				p.satbIn.Append(ms.satbB.Take())
				// Evacuation copies into fresh blocks; flush bump spans
				// so partially used mutator blocks become walkable.
				ms.alloc.Flush()
				ms.evac.Flush()
			})
			for _, s := range p.satbIn.TakeSegs() {
				p.tracer.Seed(refsOf(s))
			}
			ev.Phase(trace.NameFlush, pt)
			pt = time.Now()
			p.tracer.DrainParallel(p.pool)
			p.tracer.Finish()
			ev.Phase(trace.NameFinalMark, pt)
			pt = time.Now()
			p.cset = p.cset[:0]
			limit := mem.BlockSize / 2
			if p.bt.FreeBlocks() < p.bt.BudgetBlocks()/10 {
				// Heap pressure: evacuate anything under 3/4 live.
				limit = mem.BlockSize * 3 / 4
			}
			for _, idx := range p.cands {
				p.bt.ClearFlag(idx, immix.FlagDefrag)
				if p.bt.State(idx) == immix.StateFull && int(p.bt.Live(idx)) < limit {
					p.bt.SetFlag(idx, immix.FlagEvacuating)
					p.cset = append(p.cset, idx)
				}
			}
			p.sweepLargeUnmarked(p.marks)
			ev.PhaseArg(trace.NameSweep, pt, uint64(len(p.cset)))
			p.phase.Store(phEvac)
		})
		p.recordPauseWorkerItems("final-mark")
	})

	// Concurrent evacuation: copy every marked object in the cset.
	et := time.Now()
	evacAl := &immix.Allocator{BT: p.bt}
	aborted := map[int]bool{}
	for _, idx := range p.cset {
		p.ctl.Govern()
		t0 := time.Now()
		start := mem.BlockStart(idx)
		for g := 0; g < mem.GranulesPerBlock; g++ {
			a := start + mem.Address(g)<<mem.GranuleLog
			if !p.marks.Get(a) {
				continue
			}
			if nv := p.copyInto(evacAl, a); nv.IsNil() {
				// Copy reserve exhausted: abort this block's
				// evacuation; it stays live this cycle.
				aborted[idx] = true
				p.bt.ClearFlag(idx, immix.FlagEvacuating)
				break
			}
		}
		p.vm.Stats.AddConcurrentWork(time.Since(t0))
		if p.stop.Load() {
			evacAl.Flush()
			p.phase.Store(phIdle)
			return
		}
	}
	evacAl.Flush()
	ev.Span(trace.ShardConc, trace.NameEvac, et, time.Since(et), uint64(len(p.cset)), 0)
	p.phase.Store(phUpdate)
	_ = aborted

	// Concurrent update-references: linear heap walk fixing stale
	// references (blocks are bump-allocated, so objects are contiguous).
	ut := time.Now()
	p.bt.AllBlocks(func(idx int) {
		st := p.bt.State(idx)
		if st != immix.StateFull && st != immix.StateReserved {
			return
		}
		if p.bt.HasFlag(idx, immix.FlagEvacuating) {
			return
		}
		p.ctl.Govern()
		t0 := time.Now()
		p.updateBlockRefs(idx)
		p.vm.Stats.AddConcurrentWork(time.Since(t0))
	})
	p.bt.LOS().Each(func(a mem.Address) { p.updateObjectRefs(a) })
	ev.Span(trace.ShardConc, trace.NameUpdateRefs, ut, time.Since(ut), 0, 0)

	// Final update (pause): fix roots, release the cset.
	p.vm.RunCollection(nil, func() {
		dur := p.vm.StopTheWorld("final-update", func() {
			pt := time.Now()
			p.vm.FixRootsParallel(p.pool, func(r obj.Ref) obj.Ref { return p.om.Resolve(r) })
			ev.Phase(trace.NameResolve, pt)
			pt = time.Now()
			// Mutator bump spans may hold stale refs written before the
			// update pass visited them; their blocks were flushed at
			// final-mark, and everything allocated since contains only
			// barrier-resolved values, so roots were the last source.
			for _, idx := range p.cset {
				if p.bt.HasFlag(idx, immix.FlagEvacuating) {
					p.bt.ClearFlag(idx, immix.FlagEvacuating)
					p.bt.ReleaseFree(idx)
				}
			}
			p.cset = p.cset[:0]
			ev.Phase(trace.NameFree, pt)
			p.phase.Store(phIdle)
			p.pacer.ObserveCycleEnd(policy.Signals{
				HeapBlocks:   p.bt.InUseBlocks() + p.bt.LOS().BlocksInUse(),
				BudgetBlocks: p.bt.BudgetBlocks(),
			})
		})
		p.vm.Stats.AddGCWork(dur)
		p.recordPauseWorkerItems("final-update")
	})
}

// updateBlockRefs walks a bump-allocated block's contiguous objects.
func (p *Shen) updateBlockRefs(idx int) {
	a := mem.BlockStart(idx)
	end := a + mem.BlockSize
	for a < end {
		w0 := p.om.A.Load(a)
		size := int(uint32(w0))
		if size < obj.MinSize || size > mem.BlockSize {
			return // unallocated tail (or mid-allocation header)
		}
		p.updateObjectRefs(a)
		a = (a + mem.Address(size)).AlignUp(mem.Granule)
	}
}

func (p *Shen) updateObjectRefs(ref obj.Ref) {
	n := p.om.NumRefs(ref)
	for i := 0; i < n; i++ {
		slot := p.om.SlotAddr(ref, i)
		v := p.om.A.LoadRef(slot)
		if v.IsNil() {
			continue
		}
		if nv := p.om.Resolve(v); nv != v {
			p.om.A.StoreRef(slot, nv)
		}
	}
}

func refsOf(as []mem.Address) []obj.Ref { return as }
