package baselines

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lxr/internal/conctrl"
	"lxr/internal/gcwork"
	"lxr/internal/immix"
	"lxr/internal/mem"
	"lxr/internal/meta"
	"lxr/internal/obj"
	"lxr/internal/policy"
	"lxr/internal/remset"
	"lxr/internal/satb"
	"lxr/internal/trace"
	"lxr/internal/vm"
)

// Region kinds for G1 blocks.
const (
	g1KindYoung uint8 = 1
	g1KindOld   uint8 = 2
)

// G1 is a Garbage-First-style region-based generational collector
// (Detlefs et al. 2004): bump allocation into young regions; frequent
// stop-the-world young evacuations driven by a cross-region write
// barrier and remembered sets; concurrent SATB marking cycles that
// measure per-region liveness; and mixed collections that additionally
// evacuate the lowest-liveness old regions selected by the marking.
//
// Regions are one Immix block (32 KB) — scaled to this substrate's heap
// sizes the way G1 scales its 1-32 MB regions to multi-GB heaps.
type G1 struct {
	base
	marks  *meta.BitTable
	logs   *meta.FieldLogTable
	reuse  *meta.LineCounters
	rem    *remset.Table
	tracer *satb.Tracer

	marking  atomic.Bool // concurrent mark in progress: SATB barrier armed
	markDone atomic.Bool // marking finished; mixed collection pending
	csetOld  []int

	youngBlocks atomic.Int32 // young blocks allocated since last young GC
	youngTarget int32

	// concurrent mark driver (shared conctrl controller + G1's cycle
	// driver, which owns the mutator-overflow queues)
	ctl  *conctrl.Controller
	mark *g1Marker

	gcScheduled  atomic.Bool
	pausesYoung  int64
	pausesMixed  int64
	evacFailures atomic.Int64   // objects promoted in place (copy space exhausted)
	mixedAudits  atomic.Int64   // mixed pauses that ran the evacuation audit
	evacMarks    *meta.BitTable // per-pause scan-once scratch
}

// NewG1 creates a G1-like plan.
func NewG1(heapBytes, gcThreads int) *G1 {
	p := &G1{base: newBase("G1", heapBytes, gcThreads)}
	p.marks = markBits(p.bt.Arena)
	p.logs = meta.NewFieldLogTable(p.bt.Arena)
	p.reuse = meta.NewLineCounters(p.bt.Arena)
	p.rem = remset.NewTable(p.reuse, 0)
	p.tracer = &satb.Tracer{
		OM:    p.om,
		Marks: p.marks,
		// Concurrent marking can pop stale queue entries whose memory
		// was reclaimed; the filter shields the trace from them.
		Filter: p.saneRef,
		OnMark: func(r obj.Ref) {
			if !p.om.IsLarge(r) {
				p.bt.AddLive(r.Block(), int32(p.om.Size(r)))
			}
		},
		OnEdge: func(slot mem.Address, v obj.Ref) {
			if v&(mem.Granule-1) == 0 && p.om.A.Contains(v) &&
				p.bt.HasFlag(v.Block(), immix.FlagDefrag) {
				p.rem.Record(slot, v.Block())
			}
		},
	}
	p.bt.LOS().OnAlloc = func(start, end mem.Address) {
		// Arm every word: stores into large objects must always be
		// captured (there is no promotion step to arm them later).
		for a := start; a < end; a += mem.WordSize {
			p.logs.SetUnlogged(a)
		}
		p.marks.ClearRange(start, end)
	}
	// Young generation sized at a quarter of the heap, floor 8 regions.
	p.youngTarget = int32(p.bt.BudgetBlocks() / 4)
	if p.youngTarget < 8 {
		p.youngTarget = 8
	}
	p.evacMarks = markBits(p.bt.Arena)
	p.mark = &g1Marker{g1: p}
	return p
}

type g1Mut struct {
	alloc immix.Allocator // young allocation
	dirty gcwork.AddrBuffer
	satbB gcwork.AddrBuffer // SATB old values during marking
}

// Boot implements vm.Plan.
func (p *G1) Boot(v *vm.VM) {
	p.vm = v
	p.pacer = policy.NewG1Pacer(policy.G1PacerConfig{
		Mode:              p.pacing,
		BudgetBlocks:      p.bt.BudgetBlocks(),
		YoungTargetBlocks: int(p.youngTarget),
	})
	p.armTracer()
	p.ctl = p.newController(p.mark, v, v.Stats, 0)
	p.ctl.Start()
}

// Shutdown implements vm.Plan.
func (p *G1) Shutdown() {
	p.ctl.Stop()
	p.pool.Stop()
}

// BindMutator implements vm.Plan.
func (p *G1) BindMutator(m *vm.Mutator) {
	ms := &g1Mut{}
	ms.alloc = immix.Allocator{
		BT:   p.bt,
		Kind: g1KindYoung,
		OnSpan: func(start, end mem.Address, recycled bool) {
			p.logs.ClearRange(start, end)
			p.youngBlocks.Add(1)
		},
	}
	m.PlanState = ms
}

// UnbindMutator implements vm.Plan.
func (p *G1) UnbindMutator(m *vm.Mutator) {
	ms := m.PlanState.(*g1Mut)
	ms.alloc.Flush()
	for _, s := range ms.dirty.TakeSegs() {
		p.mark.dirty.Append(s)
	}
	for _, s := range ms.satbB.TakeSegs() {
		p.mark.satbIn.Append(s)
	}
	m.PlanState = nil
}

// Alloc implements vm.Plan.
func (p *G1) Alloc(m *vm.Mutator, l obj.Layout) obj.Ref {
	m.Safepoint()
	ms := m.PlanState.(*g1Mut)
	// Repeated attempts give the concurrent mark time to reach its
	// final-mark pause so a mixed collection can reclaim old regions
	// (real G1's fallback is a full compaction; repeated young+mixed
	// pauses play that role here).
	r, ok := gcRetry(p.vm, m, 12,
		func() (obj.Ref, bool) {
			if l.Large {
				return p.allocLarge(l)
			}
			return ms.alloc.Alloc(l.Size)
		},
		func() { p.collectLocked() })
	if !ok {
		p.oom(l)
	}
	if !l.Large {
		p.om.WriteHeader(r, l)
	} else if p.marking.Load() {
		// Allocate black: SATB keeps objects allocated during the mark
		// alive; without this the large-object sweep at mark completion
		// could reclaim a live newborn.
		p.marks.Set(r)
	}
	return r
}

// WriteRef implements vm.Plan: G1's write barriers. The remembered-set
// barrier logs each mutated field once per epoch (card-table analogue);
// the SATB barrier additionally captures the overwritten value while a
// concurrent mark is running; stores into mixed-collection candidates
// feed their remembered sets.
func (p *G1) WriteRef(m *vm.Mutator, src obj.Ref, i int, val obj.Ref) {
	ms := m.PlanState.(*g1Mut)
	slot := p.om.SlotAddr(src, i)
	if p.logs.Get(slot) != 0 {
		p.logSlot(ms, slot)
	}
	p.om.A.StoreRef(slot, val)
	if !val.IsNil() && (p.marking.Load() || p.markDone.Load()) && p.bt.HasFlag(val.Block(), immix.FlagDefrag) {
		p.rem.Record(slot, val.Block())
	}
}

func (p *G1) logSlot(ms *g1Mut, slot mem.Address) {
	spins := 0
	for {
		switch p.logs.Get(slot) {
		case meta.LogLogged:
			return
		case meta.LogUnlogged:
			if p.logs.TryBeginLog(slot) {
				if p.marking.Load() {
					if old := p.om.A.LoadRef(slot); !old.IsNil() {
						ms.satbB.Push(old)
					}
				}
				ms.dirty.Push(slot)
				p.logs.FinishLog(slot)
				return
			}
		default:
			// Busy: bounded spin, then yield — a preempted logger must
			// not stall this store indefinitely.
			if spins++; spins >= logSpinBudget {
				spins = 0
				runtime.Gosched()
			}
		}
	}
}

// ReadRef implements vm.Plan: no read barrier (G1 evacuates in pauses).
func (p *G1) ReadRef(m *vm.Mutator, src obj.Ref, i int) obj.Ref {
	return p.om.LoadSlot(src, i)
}

// PollSafepoint implements vm.Plan: young collections trigger when the
// pacer judges the young generation due — at its target size, or
// earlier when the remaining budget no longer guarantees the evacuation
// copy reserve (real G1 reserves to-space the same way to avoid
// evacuation failure).
func (p *G1) PollSafepoint(m *vm.Mutator) {
	// Capture the epoch BEFORE consulting the pacer: if another
	// mutator's pause completes in between, the signals judged here
	// were pre-pause state and CollectIfEpoch discards the trigger
	// instead of running a back-to-back collection.
	e := p.vm.GCEpoch()
	due := p.pacer.ShouldCollect(policy.Signals{
		YoungBlocks:     int(p.youngBlocks.Load()),
		BudgetRemaining: p.bt.BudgetRemaining(),
	})
	if due && p.gcScheduled.CompareAndSwap(false, true) {
		p.vm.CollectIfEpoch(m, e, func() { p.collectLocked() })
		p.gcScheduled.Store(false)
	}
}

// CollectNow implements vm.Plan: a young (possibly mixed) evacuation
// pause, self-serialised.
func (p *G1) CollectNow(cause string) {
	p.vm.RunCollection(nil, func() { p.collectLocked() })
}

func (p *G1) collectLocked() {
	kind := "young"
	dur := p.vm.StopTheWorldTagged(kind, func() string {
		kind = p.collect()
		return kind
	})
	p.vm.Stats.AddGCWork(dur * time.Duration(p.pool.N))
	p.recordPauseWorkerItems(kind)
}

// collect performs the evacuation pause: copy all live young objects to
// old regions (promotion), optionally evacuating the marking-selected
// old collection set, then free every young region. Returns the pause
// kind for telemetry attribution: "young", or "mixed" when the pause
// additionally evacuated the old collection set.
func (p *G1) collect() string {
	p.ctl.Quiesce()
	defer p.ctl.Release()
	p.pausesYoung++
	ev := p.events
	ph := time.Now()

	var dirty []mem.Address
	var satbSegs [][]mem.Address
	var flushMu sync.Mutex
	p.vm.EachMutatorParallel(p.pool, func(m *vm.Mutator) {
		ms := m.PlanState.(*g1Mut)
		ms.alloc.Flush()
		segs := ms.satbB.TakeSegs()
		flushMu.Lock()
		dirty = ms.dirty.TakeInto(dirty)
		satbSegs = append(satbSegs, segs...)
		flushMu.Unlock()
	})
	dirty = append(dirty, p.mark.dirty.Take()...)
	satbSegs = append(satbSegs, p.mark.satbIn.TakeSegs()...)
	ev.PhaseArg(trace.NameFlush, ph, uint64(len(dirty)))
	if p.marking.Load() {
		ph = time.Now()
		// Final mark: when the concurrent tracer has drained everything
		// captured up to the previous epoch, this pause seeds the last
		// captures (segment-granular, no flattening), completes the
		// closure in parallel, selects the old collection set from the
		// measured liveness, and reclaims dead large objects.
		wasIdle := !p.tracer.Pending()
		for _, s := range satbSegs {
			p.tracer.Seed(s)
		}
		if wasIdle {
			p.tracer.DrainParallel(p.pool)
			p.finishMark()
			p.sweepLargeUnmarked(p.marks)
		}
		ev.Phase(trace.NameFinalMark, ph)
	}

	mixed := p.markDone.Load() && len(p.csetOld) > 0
	if mixed {
		p.pausesMixed++
	}

	// Root slots (parallel gather over rendezvous shards).
	ph = time.Now()
	rootSlots := p.vm.RootSlots(p.pool, nil)
	ev.PhaseArg(trace.NameRoots, ph, uint64(len(rootSlots)))

	// Work items: tagged roots, dirty slots (old regions only — young
	// slots die with their regions), and validated remset entries for
	// the old cset.
	items := make([]mem.Address, 0, len(dirty)+len(rootSlots))
	for i := range rootSlots {
		items = append(items, mem.Address(i)|ssRootTag)
	}
	for _, s := range dirty {
		p.logs.SetUnlogged(s) // re-arm the barrier
		if p.bt.Kind(s.Block()) == g1KindOld || p.bt.LOS().Contains(s) {
			items = append(items, s)
		}
	}
	if mixed {
		// Keep entries whose slot lives in the old generation or the
		// large object space; young slots die with their regions (their
		// survivors are rescanned during evacuation). LOS slots must be
		// kept: a stable large-object field written before the mark is
		// captured only by the mark's edge recording, never by a dirty
		// entry, so dropping it would leave the slot dangling after the
		// cset is freed.
		for _, e := range p.rem.TakeAll() {
			if p.rem.Valid(e) && (p.bt.Kind(e.Slot.Block()) == g1KindOld || p.bt.LOS().Contains(e.Slot)) {
				items = append(items, e.Slot)
			}
		}
	}

	evacMarks := p.evacMarks // scan-once guard for this pause
	clearBitsParallel(p.pool, evacMarks)
	ph = time.Now()
	p.pool.Drain(items,
		func(w *gcwork.Worker) {
			w.Scratch = &immix.Allocator{BT: p.bt, Kind: g1KindOld, NoBudget: true,
				OnSpan: func(start, end mem.Address, recycled bool) {
					p.logs.ClearRange(start, end)
				}}
		},
		func(w *gcwork.Worker, item mem.Address) {
			if item&ssRootTag != 0 {
				slot := rootSlots[int(item&^ssRootTag)]
				if nv, changed := p.evacuate(w, *slot, evacMarks); changed {
					*slot = nv
				}
			} else {
				v := p.om.A.LoadRef(item)
				// Slots arriving through remembered sets can be stale
				// (the containing object died); discard implausible
				// values, the reuse-counter tag catches the rest.
				if v.IsNil() || v&(mem.Granule-1) != 0 || !p.om.A.Contains(v) {
					return
				}
				if nv, changed := p.evacuate(w, v, evacMarks); changed {
					p.om.A.StoreRef(item, nv)
				}
			}
		},
		func(w *gcwork.Worker) { w.Scratch.(*immix.Allocator).Flush() })
	ev.PhaseArg(trace.NameEvac, ph, uint64(len(items)))

	// The concurrent mark's pending stack and inbox may hold addresses
	// of objects this pause just moved; resolve them through the (still
	// intact) forwarding words before the moved-from regions can be
	// reused, or the trace would silently under-mark and a later mixed
	// collection would free live regions.
	if p.marking.Load() {
		p.tracer.ResolvePending(func(r obj.Ref) obj.Ref {
			if r&(mem.Granule-1) != 0 || !p.om.A.Contains(r) {
				return r
			}
			return p.om.Resolve(r)
		})
	}

	// Mixed-collection fidelity audit (verify builds): before the cset
	// regions are freed, prove every incoming edge was covered — no
	// live object, root or large object may still reference a region
	// about to be released.
	if mixed && g1AuditEnabled {
		ph = time.Now()
		p.auditMixedEvacuation(rootSlots)
		ev.Phase(trace.NameAudit, ph)
	}

	// Free all young regions and — only at a mixed pause, when the cset
	// was evacuated above — the FlagDefrag old regions. Outside a mixed
	// pause the flag marks un-evacuated *candidates* of an in-flight
	// mark (set at startMark), which are full of live objects; freeing
	// them here destroyed live data. Regions that suffered an
	// evacuation failure are promoted in place instead: they keep their
	// objects and join the old generation.
	ph = time.Now()
	p.bt.AllBlocks(func(idx int) {
		st := p.bt.State(idx)
		if st != immix.StateFull && st != immix.StateReserved {
			return
		}
		if p.bt.Kind(idx) == g1KindYoung || (mixed && p.bt.HasFlag(idx, immix.FlagDefrag)) {
			if p.bt.HasFlag(idx, immix.FlagEvacuating) {
				p.clearSelfForwards(idx)
				p.bt.ClearFlag(idx, immix.FlagEvacuating|immix.FlagDefrag)
				p.bt.SetKind(idx, g1KindOld)
				return
			}
			p.reuse.BumpRange(mem.BlockStart(idx), mem.BlockStart(idx)+mem.BlockSize)
			p.bt.ReleaseFree(idx)
		}
	})
	if mixed {
		p.csetOld = nil
		p.markDone.Store(false)
	}
	p.youngBlocks.Store(0)
	ev.Phase(trace.NameFree, ph)

	// Trigger a concurrent mark when occupancy crosses the pacer's
	// IHOP threshold (fixed 45% of budget under static pacing;
	// headroom-based under adaptive pacing).
	if !p.marking.Load() && !p.markDone.Load() &&
		p.pacer.ShouldStartCycle(policy.Signals{
			HeapBlocks:   p.bt.InUseBlocks() + p.bt.LOS().BlocksInUse(),
			BudgetBlocks: p.bt.BudgetBlocks(),
		}) {
		ph = time.Now()
		p.startMark(rootSlots)
		ev.Phase(trace.NameMarkStart, ph)
	}
	if mixed {
		return "mixed"
	}
	return "young"
}

// evacuate copies a young (or mixed-cset) object, scanning it once for
// further in-scope references. Returns the possibly-new address.
func (p *G1) evacuate(w *gcwork.Worker, ref obj.Ref, evacMarks *meta.BitTable) (obj.Ref, bool) {
	inScope := p.bt.Kind(ref.Block()) == g1KindYoung || p.bt.HasFlag(ref.Block(), immix.FlagDefrag)
	if p.om.IsLarge(ref) {
		inScope = false
	}
	if !inScope {
		// Still scan large/old targets reachable from roots? No: old
		// objects' young refs are covered by dirty slots; large objects
		// behave as old. Only resolve prior forwarding.
		if p.om.IsForwarded(ref) {
			return p.om.ForwardingPointer(ref), true
		}
		return ref, false
	}
	if !p.saneRef(ref) {
		// A stale dirty/remset slot whose value happens to land in an
		// in-scope region but does not decode to an object: copying it
		// would trust a garbage header. Leave the slot alone.
		return ref, false
	}
	al := w.Scratch.(*immix.Allocator)
	nv := p.copyOrPin(al, ref)
	if evacMarks.TrySet(nv) {
		// Keep promoted objects live for an in-flight concurrent mark
		// (they are new since the snapshot).
		marking := p.marking.Load()
		if marking {
			p.marks.Set(nv)
			p.bt.AddLive(nv.Block(), int32(p.om.Size(nv)))
		}
		n := p.om.NumRefs(nv)
		for i := 0; i < n; i++ {
			slot := p.om.SlotAddr(nv, i)
			p.logs.SetUnlogged(slot)
			if v := p.om.A.LoadRef(slot); !v.IsNil() {
				// Promotion scan stands in for the marking trace on
				// this (now-marked) object: feed the mixed-collection
				// remembered sets, or evacuation would miss the slot.
				if (marking || p.markDone.Load()) && p.bt.HasFlag(v.Block(), immix.FlagDefrag) {
					p.rem.Record(slot, v.Block())
				}
				if marking {
					// The copy is marked without ever being scanned by
					// the tracer (its TrySet will fail), so its snapshot
					// edges must be handed to the trace here — otherwise
					// the closure is cut and everything reachable only
					// through this object stays unmarked, letting a
					// later mixed collection free live regions. Young
					// targets seeded here are resolved through their
					// forwarding words at the end of this pause
					// (ResolvePending).
					p.tracer.SeedOne(v)
				}
				w.Push(slot)
			}
		}
	}
	return nv, true
}

// copyOrPin is copyWith with real G1's evacuation-failure policy: when
// the copy space is physically exhausted the object is self-forwarded
// (so every racing and later reference resolves to the in-place copy —
// the object can never split) and its region is flagged for in-place
// promotion at the end of the pause.
func (p *G1) copyOrPin(al *immix.Allocator, ref obj.Ref) obj.Ref {
	return p.copyWith(al, ref, func(r obj.Ref) obj.Ref {
		p.om.InstallForwarding(r, r)
		p.bt.SetFlag(r.Block(), immix.FlagEvacuating)
		p.evacFailures.Add(1)
		return r
	})
}

// clearSelfForwards resets the self-forwarding pointers installed by
// evacuation failure (real G1's "remove self-forwards" pause phase),
// walking the promoted region's bump-allocated contiguous objects. The
// pointers must not survive the pause: a later mixed collection would
// read them as "already evacuated" and free the region under a live
// object.
func (p *G1) clearSelfForwards(idx int) {
	a := mem.BlockStart(idx)
	end := a + mem.BlockSize
	for a < end {
		size := int(uint32(p.om.A.Load(a)))
		if size < obj.MinSize || size > mem.BlockSize {
			return // unallocated tail
		}
		r := obj.Ref(a)
		if fw := p.om.ForwardingWord(r); fw&3 == obj.FwdForwarded && obj.Ref(fw>>2) == r {
			p.om.AbandonForwarding(r)
		}
		a = (a + mem.Address(size)).AlignUp(mem.Granule)
	}
}

// startMark begins a concurrent marking cycle: liveness accounting is
// reset, mixed-collection candidates are flagged so the trace and the
// barrier build their remembered sets, and the tracer is seeded with the
// roots.
func (p *G1) startMark(rootSlots []*obj.Ref) {
	clearBitsParallel(p.pool, p.marks)
	clearLiveParallel(p.pool, p.bt)
	resetCountersParallel(p.pool, p.reuse)
	// Candidates: old regions (full) — their liveness will be measured
	// by this mark; those under 50% at mark end form the cset.
	count := 0
	p.bt.AllBlocks(func(idx int) {
		if p.bt.State(idx) == immix.StateFull && p.bt.Kind(idx) == g1KindOld && count < p.bt.BudgetBlocks()/4 {
			p.bt.SetFlag(idx, immix.FlagDefrag)
			count++
		}
	})
	p.tracer.Begin()
	seeds := make([]obj.Ref, 0, len(rootSlots))
	for _, s := range rootSlots {
		seeds = append(seeds, *s)
	}
	p.tracer.Seed(seeds)
	p.marking.Store(true)
	p.pacer.ObserveCycleStart(policy.Signals{
		HeapBlocks:   p.bt.InUseBlocks() + p.bt.LOS().BlocksInUse(),
		BudgetBlocks: p.bt.BudgetBlocks(),
	})
}

// finishMark runs when the tracer drains: liveness figures select the
// old collection set; regions not selected drop their defrag flag.
func (p *G1) finishMark() {
	p.marking.Store(false)
	type cand struct{ idx, live int }
	var cands []cand
	p.bt.AllBlocks(func(idx int) {
		if !p.bt.HasFlag(idx, immix.FlagDefrag) {
			return
		}
		live := int(p.bt.Live(idx))
		if live*2 < mem.BlockSize && p.bt.State(idx) == immix.StateFull {
			cands = append(cands, cand{idx, live})
		} else {
			p.bt.ClearFlag(idx, immix.FlagDefrag)
		}
	})
	sort.Slice(cands, func(i, j int) bool { return cands[i].live < cands[j].live })
	p.csetOld = p.csetOld[:0]
	for _, c := range cands {
		p.csetOld = append(p.csetOld, c.idx)
	}
	p.tracer.Finish()
	p.markDone.Store(true)
	p.pacer.ObserveCycleEnd(policy.Signals{
		HeapBlocks:   p.bt.InUseBlocks() + p.bt.LOS().BlocksInUse(),
		BudgetBlocks: p.bt.BudgetBlocks(),
	})
}

// --- concurrent mark driver ---------------------------------------------------

// g1Marker is G1's concurrent-marking cycle driver for the shared
// conctrl controller, which owns the goroutine, the quiesce/release
// handshake, loan interruption and panic parking. The driver holds only
// G1's work state: the mutator-overflow queues and the tracer-idle
// latch. When the borrow width is above 1 each trace advance borrows
// that many parked pool workers (gcwork.Pool.Lend), so the closure
// drains in parallel between pauses; collect() never touches the pool
// or the tracer until the loan is reclaimed and the controller
// acknowledges quiescence. Completion is decided at the next pause (the
// final-mark), which seeds the last captured values.
type g1Marker struct {
	g1   *G1
	idle atomic.Bool // tracer drained; wait for a pause to seed more

	dirty  gcwork.SharedAddrQueue
	satbIn gcwork.SharedAddrQueue
}

// HasWork implements conctrl.CycleDriver.
func (d *g1Marker) HasWork() bool {
	return d.g1.marking.Load() && !d.idle.Load()
}

// Quantum implements conctrl.CycleDriver: one trace advance, on
// borrowed pool workers when the width allows, lasting until the
// closure drains or a pause interrupts the loan.
func (d *g1Marker) Quantum(width int) {
	g := d.g1
	var idle bool
	if width > 1 {
		idle = g.tracer.StepParallel(g.pool, width, g.ctl.LoanRef().Adopt)
		g.ctl.LoanRef().Drop()
	} else {
		idle = g.tracer.Step(traceQuantum)
	}
	if idle {
		d.idle.Store(true)
	}
}

// OnRelease implements conctrl.ReleaseNotifier: pauses may have seeded
// new trace work, so the idle latch resets.
func (d *g1Marker) OnRelease() { d.idle.Store(false) }

const traceQuantum = 4096

// PausesYoung returns young pause count (telemetry).
func (p *G1) PausesYoung() int64 { return p.pausesYoung }

// PausesMixed returns mixed pause count (telemetry).
func (p *G1) PausesMixed() int64 { return p.pausesMixed }

// EvacFailures returns how many objects were promoted in place because
// the evacuation copy space was exhausted (telemetry).
func (p *G1) EvacFailures() int64 { return p.evacFailures.Load() }
