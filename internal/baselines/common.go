// Package baselines implements the production collectors the paper
// compares against, reimplemented as algorithmic skeletons on the same
// substrate LXR uses:
//
//   - SemiSpace — classic copying collector (LBO baseline, Fig. 7)
//   - Serial / Parallel — OpenJDK's stop-the-world collectors,
//     modelled as 1-thread / N-thread copying collectors
//   - Immix — full-heap stop-the-world mark-region tracing, with an
//     optional field-logging write barrier used to measure barrier
//     overhead (Table 7 "o/h")
//   - G1 — region-based generational: STW young evacuation driven by a
//     cross-region write barrier, concurrent SATB marking, mixed
//     collections evacuating low-liveness old regions
//   - Shenandoah — non-generational concurrent mark + concurrent
//     evacuation with Brooks-style forwarding resolved on every access,
//     degenerating to STW on allocation failure
//   - ZGC — non-generational concurrent mark + relocation with a
//     load-value barrier on every reference load and a minimum heap
//     requirement
//
// The skeletons preserve the design decisions the paper critiques —
// tracing-only identification, strict evacuation, expensive barriers,
// concurrent copying — so the relative costs the evaluation reports can
// emerge from real work on the simulated heap.
package baselines

import (
	"fmt"
	"sync/atomic"
	"time"

	"lxr/internal/conctrl"
	"lxr/internal/gcwork"
	"lxr/internal/immix"
	"lxr/internal/mem"
	"lxr/internal/meta"
	"lxr/internal/obj"
	"lxr/internal/policy"
	"lxr/internal/trace"
	"lxr/internal/vm"
)

// base carries the plumbing shared by all baseline plans.
type base struct {
	bt   *immix.BlockTable
	om   obj.Model
	pool *gcwork.Pool
	vm   *vm.VM
	name string

	// pauseTrack differences the pool's per-worker item counters across
	// pauses; recordPauseWorkerItems feeds the phase-tagged per-pause
	// distributions (vm.HistWorkerPauseItems).
	pauseTrack gcwork.PauseItemTracker

	// concWorkers is the between-pause borrow width: how many pool
	// workers the plan's concurrent phase driver (G1's marking thread,
	// Shenandoah's cycle controller) lends for each trace advance.
	// With the adaptive governor it is only the initial width.
	concWorkers int
	// adaptive/mmuFloor select the conctrl governor (SetAdaptive).
	adaptive bool
	mmuFloor float64
	gov      *conctrl.Governor

	// pacing selects the policy mode; each plan constructs its pacer in
	// Boot and routes every start decision through it.
	pacing policy.Mode
	pacer  policy.Pacer

	// events is the optional event tracer (nil when tracing is off —
	// every recording site stays one predictable nil check). Named to
	// avoid shadowing the plans' SATB tracers.
	events *trace.Tracer
}

func newBase(name string, heapBytes, gcThreads int) base {
	if heapBytes == 0 {
		heapBytes = 64 << 20
	}
	if gcThreads == 0 {
		gcThreads = 4
	}
	conc := gcThreads / 2
	if conc < 1 {
		conc = 1
	}
	bt := immix.NewBlockTable(immix.Config{HeapBytes: heapBytes})
	return base{
		bt:          bt,
		om:          obj.Model{A: bt.Arena},
		pool:        gcwork.NewPool(gcThreads),
		name:        name,
		concWorkers: conc,
	}
}

// Name implements vm.Plan.
func (b *base) Name() string { return b.name }

// Arena implements vm.Plan.
func (b *base) Arena() *mem.Arena { return b.bt.Arena }

// BlockTable exposes the heap for tests and the harness.
func (b *base) BlockTable() *immix.BlockTable { return b.bt }

// SetConcWorkers overrides how many pool workers the plan's concurrent
// phases borrow between pauses (clamped to [1, gcThreads]). Must be
// called before Boot.
func (b *base) SetConcWorkers(n int) {
	if n < 1 {
		n = 1
	}
	if n > b.pool.N {
		n = b.pool.N
	}
	b.concWorkers = n
}

// ConcWorkers reports the configured between-pause borrow width.
func (b *base) ConcWorkers() int { return b.concWorkers }

// SetAdaptive enables the conctrl governor: the plan's concurrent
// driver sizes its worker loans adaptively from observed mutator
// utilization, starting at the configured borrow width, with mmuFloor
// as an optional MMU-floor target (0 disables the floor). Must be
// called before Boot.
func (b *base) SetAdaptive(mmuFloor float64) {
	b.adaptive = true
	b.mmuFloor = mmuFloor
}

// GovernorTrace returns the adaptive-width governor's run record, or
// nil when the borrow width is static (harness telemetry).
func (b *base) GovernorTrace() *conctrl.Trace {
	if b.gov == nil {
		return nil
	}
	return b.gov.Trace()
}

// SetTracer attaches the structured event tracer: the pool records loan
// spans, the concurrent controller records quantum spans, the pacer
// records trigger instants, and each plan's pause phases record spans on
// the GC timeline. Must be called before Boot (the controller and pacer
// are constructed there).
func (b *base) SetTracer(t *trace.Tracer) {
	b.events = t
	b.pool.SetTracer(t)
}

// SetPacing selects the pacing mode (policy.Static reproduces each
// collector's historical trigger behavior exactly; policy.Adaptive
// drives the thresholds from the observed signals). Must be called
// before Boot, which constructs the plan's pacer.
func (b *base) SetPacing(m policy.Mode) { b.pacing = m }

// PacingTrace returns the pacer's archived decision record (harness
// telemetry, emitted under "pacing" in the -json output).
func (b *base) PacingTrace() *policy.Trace {
	if b.pacer == nil {
		return nil
	}
	return b.pacer.Trace()
}

// armTracer connects the pacer's trigger hook to the event tracer.
// Call from each plan's Boot, after the pacer is constructed.
func (b *base) armTracer() {
	if b.events != nil && b.pacer != nil {
		policy.SetTriggerHook(b.pacer, b.events.TriggerHook())
	}
}

// newController builds the plan's shared concurrent controller around
// its cycle driver, attaching the adaptive governor when enabled.
// stats may be nil for drivers that account their concurrent slices
// themselves (Shenandoah's full-cycle quantum contains pauses); poll
// selects the idle re-check period for occupancy-triggered drivers.
// Call from Boot, once the VM exists.
func (b *base) newController(d conctrl.CycleDriver, v *vm.VM, stats *vm.Stats, poll time.Duration) *conctrl.Controller {
	cfg := conctrl.Config{Stats: stats, Width: b.concWorkers, Signals: v, Poll: poll, Trace: b.events}
	if b.adaptive {
		b.gov = conctrl.NewCollectorGovernor(b.pool.N, b.concWorkers, b.mmuFloor)
		cfg.Governor = b.gov
	}
	if b.pacing == policy.Adaptive {
		// An adaptive pacer that consumes utilization windows subscribes
		// to the controller's export, so trigger thresholds and the loan
		// width act on the same estimator. Pacers that adapt on cycle
		// boundaries only are not WindowObservers, and wiring them would
		// make the controller sample windows nobody reads.
		if wo, ok := b.pacer.(policy.WindowObserver); ok {
			cfg.WindowSink = wo.ObserveWindow
		}
	}
	return conctrl.NewController(d, cfg)
}

// GCWorkerStats exposes the pool's per-worker utilization, split into
// in-pause and on-loan work (harness telemetry).
func (b *base) GCWorkerStats() []gcwork.WorkerStat { return b.pool.WorkerStats() }

// GCLoanStats returns how many between-pause worker loans ran and how
// many work items they processed (harness telemetry).
func (b *base) GCLoanStats() (loans, items int64) { return b.pool.LoanStats() }

// recordPauseWorkerItems attributes each worker's items from the pause
// that just finished to the phase's per-pause distribution, so per-pause
// imbalance is visible per phase kind. Call once after every pause,
// from the pause coordinator.
func (b *base) recordPauseWorkerItems(kind string) {
	b.pauseTrack.Observe(b.pool, func(w int, items int64) {
		b.vm.Stats.RecordHistAt(w+1, vm.HistWorkerPauseItems+kind, items)
	})
}

// allocLarge is the shared large-object path.
func (b *base) allocLarge(l obj.Layout) (obj.Ref, bool) {
	a, ok := b.bt.LOS().Alloc(l.Size)
	if !ok {
		return mem.Nil, false
	}
	b.om.WriteHeader(a, l)
	return a, true
}

// oom panics with a diagnostic.
func (b *base) oom(l obj.Layout) {
	panic(fmt.Sprintf("%s: out of memory allocating %d bytes: %s", b.name, l.Size, b.bt))
}

// copyWith evacuates ref using the worker's allocator, racing with
// other workers via the forwarding word. On copy-space exhaustion the
// caller-supplied onExhausted policy runs while the claim (FwdBusy) is
// still held; it must leave the forwarding word in a terminal state
// (abandon or install) before returning the address racers should see.
func (b *base) copyWith(al *immix.Allocator, ref obj.Ref, onExhausted func(obj.Ref) obj.Ref) obj.Ref {
	for {
		fw := b.om.ForwardingWord(ref)
		switch fw & 3 {
		case obj.FwdForwarded:
			return obj.Ref(fw >> 2)
		case obj.FwdBusy:
			continue
		}
		if !b.om.TryClaimForwarding(ref) {
			continue
		}
		size := b.om.Size(ref)
		dst, ok := al.Alloc(size)
		if !ok {
			return onExhausted(ref)
		}
		b.om.CopyTo(ref, dst)
		b.om.InstallForwarding(ref, dst)
		return dst
	}
}

// copyInto is copyWith with the strict-copying policy: on exhaustion
// the claim is abandoned and Nil returned (the object stays in place).
func (b *base) copyInto(al *immix.Allocator, ref obj.Ref) obj.Ref {
	return b.copyWith(al, ref, func(r obj.Ref) obj.Ref {
		b.om.AbandonForwarding(r)
		return mem.Nil
	})
}

// saneRef reports whether v plausibly decodes to an object: granule-
// aligned, inside the arena, with a credible header size. Values read
// through stale dirty/remset slots or scanned mid-reuse by a concurrent
// trace can be arbitrary bit patterns; following them would walk wild
// slot counts or copy wild sizes (the same defensive check LXR's core
// applies everywhere).
func (b *base) saneRef(v obj.Ref) bool {
	if v.IsNil() || v&(mem.Granule-1) != 0 || !b.om.A.Contains(v) {
		return false
	}
	s := b.om.Size(v)
	if s < obj.MinSize {
		return false
	}
	if s > obj.LargeThreshold && !b.om.IsLarge(v) {
		return false
	}
	return true
}

// markBits is a helper constructing a fresh granule-grained mark table.
func markBits(a *mem.Arena) *meta.BitTable { return meta.NewBitTable(a, mem.GranuleLog) }

// liveLarge sweeps the large object space by mark bit.
func (b *base) sweepLargeUnmarked(marks *meta.BitTable) {
	b.bt.LOS().Each(func(a mem.Address) {
		if !marks.Get(a) {
			b.bt.LOS().Free(a)
		}
	})
}

// gcRetry wraps the common allocate-fail-collect-retry loop.
func gcRetry(v *vm.VM, m *vm.Mutator, attempts int, alloc func() (obj.Ref, bool), collect func()) (obj.Ref, bool) {
	for i := 0; ; i++ {
		if r, ok := alloc(); ok {
			return r, true
		}
		if i >= attempts {
			return mem.Nil, false
		}
		e := v.GCEpoch()
		v.CollectIfEpoch(m, e, collect)
	}
}

var _ atomic.Bool // keep sync/atomic linked for plans in this package
