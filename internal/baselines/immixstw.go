package baselines

import (
	"runtime"
	"time"

	"lxr/internal/gcwork"
	"lxr/internal/immix"
	"lxr/internal/mem"
	"lxr/internal/meta"
	"lxr/internal/obj"
	"lxr/internal/policy"
	"lxr/internal/satb"
	"lxr/internal/trace"
	"lxr/internal/vm"
)

// Immix is full-heap stop-the-world mark-region tracing Immix
// (Blackburn & McKinley 2008): bump allocation with line recycling,
// collection by parallel tracing that marks objects and their lines,
// then a line-granularity sweep. No copying (defragmentation omitted).
//
// Its role in the reproduction is twofold: an additional LBO baseline,
// and — with WithBarrier — the substrate for the barrier-overhead
// measurement of Table 7: the field-logging write barrier runs with all
// its real costs but its buffers are discarded, so the difference
// between Immix and Immix+barrier isolates barrier overhead.
type Immix struct {
	base
	marks     *meta.BitTable // object marks (granule)
	lineMarks *meta.BitTable // line marks
	logs      *meta.FieldLogTable
	barrier   bool
}

// NewImmix builds the collector. withBarrier enables the field-logging
// write barrier whose captures are discarded.
func NewImmix(heapBytes, gcThreads int, withBarrier bool) *Immix {
	name := "Immix"
	if withBarrier {
		name = "Immix+WB"
	}
	p := &Immix{base: newBase(name, heapBytes, gcThreads), barrier: withBarrier}
	p.marks = markBits(p.bt.Arena)
	p.lineMarks = meta.NewBitTable(p.bt.Arena, mem.LineSizeLog)
	p.logs = meta.NewFieldLogTable(p.bt.Arena)
	if withBarrier {
		p.bt.LOS().OnAlloc = func(start, end mem.Address) { p.logs.ClearRange(start, end) }
	}
	return p
}

// logSpinBudget bounds the busy-wait on a field-log state held Busy by
// a racing logger before yielding the processor.
const logSpinBudget = 64

type immixMut struct {
	alloc  immix.Allocator
	decBuf gcwork.AddrBuffer
	modBuf gcwork.AddrBuffer
}

type immixLines struct{ t *meta.BitTable }

func (l immixLines) LineFree(idx int) bool { return !l.t.Get(mem.LineStart(idx)) }

// FreeLineBits implements immix.LineBitsSource: for a line-granularity
// bit table the global line index is the bit index, so a block's 128
// free-line bits are four inverted word loads.
func (l immixLines) FreeLineBits(firstLine int, bm *[mem.LinesPerBlock / 32]uint32) {
	for i := range bm {
		bm[i] = ^l.t.Word(firstLine/32 + i)
	}
}

// Boot implements vm.Plan.
func (p *Immix) Boot(v *vm.VM) {
	p.vm = v
	// Limit 0: collections are driven purely by allocation failure; the
	// pacer archives each heap-full fire with its occupancy snapshot.
	p.pacer = policy.NewHeapFullPacer(p.name, p.pacing, 0)
	p.armTracer()
}

// Shutdown implements vm.Plan: parks and releases the persistent GC
// worker pool.
func (p *Immix) Shutdown() { p.pool.Stop() }

// BindMutator implements vm.Plan.
func (p *Immix) BindMutator(m *vm.Mutator) {
	ms := &immixMut{}
	ms.alloc = immix.Allocator{BT: p.bt, Lines: immixLines{p.lineMarks}, UseRecycled: true}
	if p.barrier {
		ms.alloc.OnSpan = func(start, end mem.Address, recycled bool) {
			p.logs.ClearRange(start, end)
		}
	}
	m.PlanState = ms
}

// UnbindMutator implements vm.Plan.
func (p *Immix) UnbindMutator(m *vm.Mutator) {
	m.PlanState.(*immixMut).alloc.Flush()
	m.PlanState = nil
}

// Alloc implements vm.Plan.
func (p *Immix) Alloc(m *vm.Mutator, l obj.Layout) obj.Ref {
	m.Safepoint()
	ms := m.PlanState.(*immixMut)
	r, ok := gcRetry(p.vm, m, 2,
		func() (obj.Ref, bool) {
			if l.Large {
				return p.allocLarge(l)
			}
			return ms.alloc.Alloc(l.Size)
		},
		func() {
			// Allocation failure is the only trigger; the pacer archives
			// the heap-full decision before the collection runs.
			if p.pacer.ShouldCollect(policy.Signals{
				HeapBlocks:   p.bt.InUseBlocks() + p.bt.LOS().BlocksInUse(),
				BudgetBlocks: p.bt.BudgetBlocks(),
			}) {
				p.collectLocked()
			}
		})
	if !ok {
		p.oom(l)
	}
	if !l.Large {
		p.om.WriteHeader(r, l)
	}
	return r
}

// WriteRef implements vm.Plan: optionally the field-logging barrier with
// discarded captures (barrier-overhead measurement), otherwise a plain
// store.
func (p *Immix) WriteRef(m *vm.Mutator, src obj.Ref, i int, val obj.Ref) {
	slot := p.om.SlotAddr(src, i)
	if p.barrier && p.logs.Get(slot) != 0 {
		spins := 0
		for {
			switch p.logs.Get(slot) {
			case meta.LogLogged:
			case meta.LogUnlogged:
				if !p.logs.TryBeginLog(slot) {
					continue
				}
				ms := m.PlanState.(*immixMut)
				if old := p.om.A.LoadRef(slot); !old.IsNil() {
					ms.decBuf.Push(old)
				}
				ms.modBuf.Push(slot)
				p.logs.FinishLog(slot)
			default:
				// Busy: bounded spin, then yield — a preempted logger
				// must not stall this store indefinitely.
				if spins++; spins >= logSpinBudget {
					spins = 0
					runtime.Gosched()
				}
				continue
			}
			break
		}
	}
	p.om.A.StoreRef(slot, val)
}

// ReadRef implements vm.Plan: no read barrier.
func (p *Immix) ReadRef(m *vm.Mutator, src obj.Ref, i int) obj.Ref {
	return p.om.LoadSlot(src, i)
}

// PollSafepoint implements vm.Plan.
func (p *Immix) PollSafepoint(m *vm.Mutator) {}

// CollectNow implements vm.Plan: full STW parallel trace and sweep,
// self-serialised.
func (p *Immix) CollectNow(cause string) {
	p.vm.RunCollection(nil, func() { p.collectLocked() })
}

func (p *Immix) collectLocked() {
	dur := p.vm.StopTheWorld("full", func() { p.collect() })
	p.recordPauseWorkerItems("full")
	p.vm.Stats.AddGCWork(dur * time.Duration(p.pool.N))
}

func (p *Immix) collect() {
	ev := p.events
	ph := time.Now()
	clearBitsParallel(p.pool, p.marks, p.lineMarks)
	p.vm.EachMutatorParallel(p.pool, func(m *vm.Mutator) {
		ms := m.PlanState.(*immixMut)
		ms.alloc.Flush()
		// Discard barrier captures (segment-granular, no flattening);
		// re-arming happens via marking below.
		ms.decBuf.TakeSegs()
		ms.modBuf.TakeSegs()
	})
	ev.Phase(trace.NameClear, ph)
	ph = time.Now()
	seeds := p.vm.SnapshotRootsParallel(p.pool, nil)
	t := &satb.Tracer{
		OM:    p.om,
		Marks: p.marks,
		OnMark: func(r obj.Ref) {
			p.markLines(r)
			if p.barrier {
				n := p.om.NumRefs(r)
				for i := 0; i < n; i++ {
					p.logs.SetUnlogged(p.om.SlotAddr(r, i))
				}
			}
		},
	}
	t.Seed(seeds)
	t.DrainParallel(p.pool)
	ev.PhaseArg(trace.NameMark, ph, uint64(len(seeds)))

	ph = time.Now()
	p.bt.RebuildFromSweep(func(idx int) immix.BlockClass {
		if st := p.bt.State(idx); st == immix.StateLargeHead || st == immix.StateLargeBody || st == immix.StateUntracked {
			return immix.ClassFull
		}
		// The line-mark table keeps one bit per line, so a block's 128
		// lines are exactly four words: accumulate them instead of 128
		// per-line probes.
		firstWord := idx * mem.LinesPerBlock / 32
		var anyUsed, allUsed uint32 = 0, ^uint32(0)
		for i := 0; i < mem.LinesPerBlock/32; i++ {
			w := p.lineMarks.Word(firstWord + i)
			anyUsed |= w
			allUsed &= w
		}
		switch {
		case anyUsed == 0:
			return immix.ClassFree
		case allUsed != ^uint32(0):
			return immix.ClassPartial
		default:
			return immix.ClassFull
		}
	})
	p.sweepLargeUnmarked(p.marks)
	clearBitsParallel(p.pool, p.marks)
	ev.Phase(trace.NameSweepRebuild, ph)
}

// markLines marks every line the object covers, plus the conservative
// trailing line.
func (p *Immix) markLines(ref obj.Ref) {
	if p.om.IsLarge(ref) {
		return
	}
	end := ref + mem.Address(p.om.Size(ref))
	for l := ref.Line(); l <= (end - 1).Line(); l++ {
		p.lineMarks.Set(mem.LineStart(l))
	}
}
