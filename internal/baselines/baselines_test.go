package baselines_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"lxr/internal/baselines"
	"lxr/internal/core"
	"lxr/internal/policy"
	"lxr/internal/vm"
)

// plans returns every collector under test at the given heap size.
func plans(heap int) map[string]func() vm.Plan {
	return map[string]func() vm.Plan{
		"LXR":        func() vm.Plan { return core.New(core.Config{HeapBytes: heap, GCThreads: 2}) },
		"SemiSpace":  func() vm.Plan { return baselines.NewSemiSpace("SS", heap, 2) },
		"Serial":     func() vm.Plan { return baselines.NewSerial(heap) },
		"Parallel":   func() vm.Plan { return baselines.NewParallel(heap, 2) },
		"Immix":      func() vm.Plan { return baselines.NewImmix(heap, 2, false) },
		"Immix+WB":   func() vm.Plan { return baselines.NewImmix(heap, 2, true) },
		"G1":         func() vm.Plan { return baselines.NewG1(heap, 2) },
		"Shenandoah": func() vm.Plan { return baselines.NewShenandoah(heap, 2) },
		"ZGC": func() vm.Plan {
			if p := baselines.NewZGC(heap, 2); p != nil {
				return p
			}
			return nil
		},
	}
}

// exercise churns a heap with a long-lived list, short-lived garbage,
// pointer mutations and large objects, verifying the survivors after.
func exercise(t *testing.T, v *vm.VM, iters int) {
	t.Helper()
	m := v.RegisterMutator(8)
	defer m.Deregister()

	// The list head lives in Roots[0] and every link store reads it back
	// from there: Alloc is a safepoint, and a collection there may move
	// the head — only root slots are updated by the collector (the
	// mutator discipline of lxr.go). A raw local held across the Alloc
	// would dangle once the collector reuses the evacuated-from space.
	const listLen = 800
	for i := listLen - 1; i >= 0; i-- {
		n := m.Alloc(1, 1, 16)
		m.WritePayload(n, 0, uint64(i))
		if !m.Roots[0].IsNil() {
			m.Store(n, 0, m.Roots[0])
		}
		m.Roots[0] = n
	}
	m.Roots[1] = m.Roots[0]
	m.Roots[0] = 0

	// Churn: garbage, mutations into a small live window, large objects.
	window := make([]int, 0)
	_ = window
	for i := 0; i < iters; i++ {
		g := m.Alloc(2, 2, 40)
		m.Store(g, 0, m.Roots[1]) // point into the list
		m.Roots[2] = g
		if i%97 == 0 {
			m.Roots[3] = m.Alloc(0, 1, 20<<10) // large object
		}
		if i%31 == 0 {
			// Mutate a heap pointer: relink g.1 to previous garbage.
			m.Store(g, 1, m.Roots[2])
		}
		if i%4096 == 0 {
			m.Safepoint()
		}
	}
	m.Roots[2], m.Roots[3] = 0, 0
	m.RequestGC()
	m.RequestGC()

	cur := m.Roots[1]
	for i := 0; i < listLen; i++ {
		if cur.IsNil() {
			t.Fatalf("list truncated at %d", i)
		}
		if got := m.ReadPayload(cur, 0); got != uint64(i) {
			t.Fatalf("node %d corrupted: %d", i, got)
		}
		cur = m.Load(cur, 0)
	}
	if !cur.IsNil() {
		t.Fatal("list tail not nil")
	}
}

func TestAllCollectorsPreserveLiveData(t *testing.T) {
	for name, mk := range plans(48 << 20) {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			p := mk()
			if p == nil {
				t.Skip("collector cannot run at this heap size")
			}
			v := vm.New(p, 8)
			defer v.Shutdown()
			exercise(t, v, 120000)
			if v.Stats.PauseCount() == 0 && name != "Shenandoah" && name != "ZGC" {
				t.Errorf("%s: no pauses recorded", name)
			}
		})
	}
}

func TestCollectorsMultiThreaded(t *testing.T) {
	for _, name := range []string{"LXR", "G1", "Shenandoah", "Parallel"} {
		mk := plans(64 << 20)[name]
		t.Run(name, func(t *testing.T) {
			p := mk()
			v := vm.New(p, 8)
			defer v.Shutdown()
			const workers = 3
			errs := make(chan error, workers)
			for w := 0; w < workers; w++ {
				go func(id int) {
					defer func() {
						if r := recover(); r != nil {
							errs <- fmt.Errorf("worker %d: %v", id, r)
						}
					}()
					m := v.RegisterMutator(8)
					defer m.Deregister()
					// Reload the head from the root slot after each
					// allocation safepoint: moving plans may evacuate
					// it there, and only root slots are redirected.
					m.Roots[0] = 0
					for i := 299; i >= 0; i-- {
						n := m.Alloc(1, 1, 16)
						m.WritePayload(n, 0, uint64(i))
						if head := m.Roots[0]; !head.IsNil() {
							m.Store(n, 0, head)
						}
						m.Roots[0] = n
					}
					for i := 0; i < 80000; i++ {
						g := m.Alloc(1, 1, 48)
						m.Store(g, 0, m.Roots[0])
						m.Roots[1] = g
					}
					cur := m.Roots[0]
					for i := 0; i < 300; i++ {
						if cur.IsNil() {
							errs <- fmt.Errorf("worker %d: truncated at %d", id, i)
							return
						}
						if got := m.ReadPayload(cur, 0); got != uint64(i) {
							errs <- fmt.Errorf("worker %d: node %d = %d", id, i, got)
							return
						}
						cur = m.Load(cur, 0)
					}
					errs <- nil
				}(w)
			}
			for i := 0; i < workers; i++ {
				if err := <-errs; err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

func TestZGCMinHeap(t *testing.T) {
	if baselines.NewZGC(16<<20, 2) != nil {
		t.Fatal("ZGC should refuse a 16 MB heap")
	}
	if baselines.NewZGC(64<<20, 2) == nil {
		t.Fatal("ZGC should accept a 64 MB heap")
	}
}

func TestG1RunsMixedCollections(t *testing.T) {
	// Run with the mixed-collection evacuation audit armed: every mixed
	// pause proves — by walking the heap and the cset regions directly —
	// that remset-driven evacuation covered all incoming edges before
	// any region is freed.
	baselines.SetG1AuditForTest(true)
	defer baselines.SetG1AuditForTest(false)
	p := baselines.NewG1(32<<20, 2)
	v := vm.New(p, 8)
	defer v.Shutdown()
	m := v.RegisterMutator(8)
	defer m.Deregister()
	// Long-lived data to push occupancy over the marking threshold,
	// then churn so marking and mixed collections happen. The chain
	// head lives in a root slot (reloaded after every allocation
	// safepoint — G1 evacuates at young pauses). A long-lived large
	// object holding a chain reference exercises the LOS remset path
	// (large-object slots are covered only by the mark's edge records).
	large := m.Alloc(3, 4, 64<<10)
	m.Roots[1] = large
	for i := 0; i < 120000; i++ {
		n := m.Alloc(1, 1, 64)
		if head := m.Roots[0]; !head.IsNil() {
			m.Store(n, 0, head)
		}
		if i%3 != 0 {
			m.Roots[0] = n // two-thirds become garbage over time
		}
		if i%1000 == 999 {
			m.Roots[0] = m.Alloc(1, 1, 64) // drop the chain periodically
		}
		if i%4096 == 0 {
			m.Store(m.Roots[1], int(uint(i/4096))%4, m.Roots[0])
		}
	}
	m.RequestGC()
	if p.PausesYoung() == 0 {
		t.Fatal("G1 never ran a young collection")
	}
	// Drive the mark/mixed pipeline to completion: keep churning (so
	// old regions go sparse) and pausing until a mixed pause reclaims
	// the cset. Each round gives the concurrent mark time to drain
	// before the next pause can run the final mark.
	for round := 0; round < 200 && p.PausesMixed() == 0; round++ {
		for i := 0; i < 2000; i++ {
			n := m.Alloc(1, 1, 64)
			if head := m.Roots[0]; !head.IsNil() {
				m.Store(n, 0, head)
			}
			if i%3 != 0 {
				m.Roots[0] = n
			}
		}
		if round%8 == 7 {
			m.Roots[0] = m.Alloc(1, 1, 64) // drop the chain: old regions go sparse
		}
		m.RequestGC()
	}
	if p.PausesMixed() == 0 {
		t.Fatal("G1 never ran a mixed collection: the audit was not exercised")
	}
	if p.MixedAudits() == 0 {
		t.Fatal("mixed collections ran but the evacuation audit never fired")
	}
	t.Logf("mixed pauses %d, audited %d", p.PausesMixed(), p.MixedAudits())
}

// TestG1TightHeapEvacuationFailure drives G1 at near-full occupancy so
// young evacuation pauses exhaust the physical copy space. The
// collector must promote the affected objects in place (self-forwarded,
// region retired to the old generation) instead of panicking inside the
// pause — the seed crashed with heap corruption here — and every live
// object must stay intact. A clean mutator-path OOM ("out of memory")
// is an acceptable outcome at the tightest settings.
func TestG1TightHeapEvacuationFailure(t *testing.T) {
	for _, liveNodes := range []int{20000, 30000, 40000} {
		p := baselines.NewG1(2<<20, 2)
		v := vm.New(p, 8)
		oom := func() (oom bool) {
			defer func() {
				if r := recover(); r != nil {
					if s, ok := r.(string); ok && strings.Contains(s, "out of memory") {
						oom = true
						return
					}
					panic(r)
				}
			}()
			m := v.RegisterMutator(8)
			defer m.Deregister()
			for i := 0; i < liveNodes; i++ {
				n := m.Alloc(1, 1, 8)
				m.WritePayload(n, 0, uint64(i))
				if !m.Roots[0].IsNil() {
					m.Store(n, 0, m.Roots[0])
				}
				m.Roots[0] = n
			}
			for i := 0; i < 20000; i++ {
				g := m.Alloc(2, 2, 40)
				m.Store(g, 0, m.Roots[0])
				m.Roots[2] = g
			}
			// Walk the whole live list: promote-in-place must not have
			// split or corrupted any object.
			cur := m.Roots[0]
			for i := liveNodes - 1; i >= 0; i-- {
				if cur.IsNil() {
					t.Fatalf("liveNodes=%d: list truncated at %d", liveNodes, i)
				}
				if got := m.ReadPayload(cur, 0); got != uint64(i) {
					t.Fatalf("liveNodes=%d: node %d corrupted: %d", liveNodes, i, got)
				}
				cur = m.Load(cur, 0)
			}
			return false
		}()
		failures := p.EvacFailures()
		v.Shutdown()
		t.Logf("liveNodes=%d: %d in-place promotions, oom=%v", liveNodes, failures, oom)
	}
}

// TestShenPacedTriggerUnderChurn is the race cover for the pacing
// snapshot path: Shenandoah's cycle trigger (pacer free-fraction check)
// runs on the conctrl controller goroutine with the controller lock
// held, reading occupancy — including the large-object space's, which
// used to take the LOS mutex — concurrently with mutators allocating
// large objects. Every read on that path must be lock-free and
// race-clean, and adaptive pacing must keep cycles firing.
func TestShenPacedTriggerUnderChurn(t *testing.T) {
	const heap = 12 << 20
	p := baselines.NewShenandoah(heap, 2)
	p.SetPacing(policy.Adaptive)
	v := vm.New(p, 8)
	defer v.Shutdown()

	// Phase 1 (the race cover): mutators churn small and large objects
	// while the controller goroutine polls the pacer's free-fraction
	// trigger — every read on that path must be lock-free.
	var wg sync.WaitGroup
	for mt := 0; mt < 3; mt++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := v.RegisterMutator(8)
			defer m.Deregister()
			for i := 0; i < 4000; i++ {
				m.Roots[0] = m.Alloc(0, 2, 256)
				if i%64 == 0 {
					m.Roots[1] = m.Alloc(0, 0, 20<<10) // LOS churn
				}
			}
		}()
	}
	wg.Wait()

	// Phase 2 (determinism): drive occupancy over the trigger and hold
	// it there across several of the controller's 2ms polls, so the
	// trigger provably fires regardless of scheduling. Garbage is only
	// reclaimed by cycles, so occupancy cannot fall back on its own.
	m := v.RegisterMutator(8)
	bt := p.BlockTable()
	for i := 0; i < 1<<18; i++ {
		if i%64 == 0 && p.PacingTrace().Fired > 0 {
			break
		}
		m.Roots[0] = m.Alloc(0, 2, 256)
		if bt.InUseBlocks()+bt.LOS().BlocksInUse() > bt.BudgetBlocks()*3/4 {
			m.BlockedSleep(3 * time.Millisecond) // let the poll observe it
		}
	}
	m.Deregister()

	tr := p.PacingTrace()
	if tr == nil {
		t.Fatal("no pacing trace")
	}
	if tr.Collector != "Shenandoah" || tr.Mode != "adaptive" {
		t.Fatalf("trace identity %s/%s", tr.Collector, tr.Mode)
	}
	if tr.Fired == 0 {
		t.Fatal("sustained occupancy above the threshold never fired the free-fraction trigger")
	}
}
