package workload

import (
	"sync"
	"sync/atomic"
	"time"

	"lxr/internal/telemetry"
	"lxr/internal/vm"
)

// RequestResult reports a metered request run (DaCapo Chopin
// methodology, §4): per-request latencies include computation,
// interruptions (GC), and queueing behind an open-loop arrival process.
//
// Latencies are recorded into a constant-memory bucketed histogram, not
// a per-request slice: the old []float64 grew with the request count
// and was sorted inside the measured process, perturbing the heap under
// test and capping run length; the histogram is O(buckets) however many
// requests arrive (telemetry.LatencyConfig documents the bucket error).
type RequestResult struct {
	Start   time.Time // arrival epoch the run (and Wall) is measured from
	Wall    time.Duration
	QPS     float64
	Latency *telemetry.Histogram // ns per request; nil for batch runs
	Failed  bool                 // collector could not sustain the workload (OOM)
}

// processRequest performs one request: allocate the request's working
// set with the spec demographics and touch payload (the computation).
func processRequest(c *mutCtx, prof *RequestProfile) {
	m := c.m
	var sum uint64
	for i := 0; i < prof.ObjsPerReq; i++ {
		c.allocOne()
	}
	// Compute over the most recent objects (cache traffic).
	cur := m.Roots[rootTransient]
	for i := 0; i < prof.WorkPerReq && !cur.IsNil(); i++ {
		sum += m.ReadPayload(cur, 0)
		if i%8 == 7 {
			cur = m.Load(cur, 0)
		}
	}
	m.WritePayload(m.Roots[rootTransient], 0, sum)
}

// MeasureCapacity runs a closed-loop probe (no arrival metering) and
// returns requests/second. The harness calibrates the open-loop arrival
// rate from a capacity probe on a reference collector so that every
// collector faces the identical load (the paper drives all collectors
// with the same request stream).
func MeasureCapacity(v *vm.VM, sz Sized, probeRequests int) float64 {
	start := time.Now()
	var next atomic.Int64
	var wg sync.WaitGroup
	var failed atomic.Bool
	for w := 0; w < sz.Mutators; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := v.RegisterMutator(numRoots)
			defer m.Deregister()
			defer runGuard(&failed)
			c := setupMature(m, sz, 1/float64(sz.Mutators))
			for !failed.Load() {
				i := next.Add(1) - 1
				if i >= int64(probeRequests) {
					return
				}
				processRequest(c, sz.Request.Request())
			}
		}()
	}
	wg.Wait()
	return float64(probeRequests) / time.Since(start).Seconds()
}

// Request returns the profile (helper for nil-safety symmetry).
func (p *RequestProfile) Request() *RequestProfile { return p }

// RunRequests executes the metered open-loop workload: requests arrive
// at ratePerSec into an unbounded queue; sz.Mutators workers serve them.
// Request i's latency is measured from its scheduled arrival to its
// completion, so GC interruptions delay both the active request and
// everything queued behind it — the paper's central measurement. This
// is the coordinated-omission correction: a pause that stalls a worker
// charges every request scheduled behind it for its queueing delay,
// instead of silently thinning the arrival stream.
//
// Each worker records into its own histogram shard, so the metering
// itself is lock-free and allocation-free per request: nothing on this
// path grows with the request count or disturbs the collector under
// measurement.
func RunRequests(v *vm.VM, sz Sized, ratePerSec float64) RequestResult {
	return RunRequestsRec(v, sz, ratePerSec, nil)
}

// NewLatencyRecorder builds the latency recorder RunRequestsRec expects
// for a workload of sz.Mutators workers.
func NewLatencyRecorder(sz Sized) *telemetry.Recorder {
	return telemetry.NewRecorder(telemetry.LatencyConfig(), sz.Mutators)
}

// RunRequestsRec is RunRequests with a caller-supplied latency recorder
// (as built by NewLatencyRecorder), so a periodic reporter can snapshot
// the latency distribution mid-run — Recorder.Snapshot is lock-free
// against the recording workers. rec == nil allocates one internally.
func RunRequestsRec(v *vm.VM, sz Sized, ratePerSec float64, rec *telemetry.Recorder) RequestResult {
	n := sz.Requests
	if rec == nil {
		rec = NewLatencyRecorder(sz)
	}
	interval := time.Duration(float64(time.Second) / ratePerSec)

	var next atomic.Int64
	var wg sync.WaitGroup
	var failed atomic.Bool
	start := time.Now().Add(10 * time.Millisecond) // arrival epoch
	for w := 0; w < sz.Mutators; w++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			m := v.RegisterMutator(numRoots)
			defer m.Deregister()
			defer runGuard(&failed)
			c := setupMature(m, sz, 1/float64(sz.Mutators))
			for !failed.Load() {
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				arrival := start.Add(time.Duration(i) * interval)
				if wait := time.Until(arrival); wait > 0 {
					m.BlockedSleep(wait)
				}
				processRequest(c, sz.Request)
				rec.Record(shard, int64(time.Since(arrival)))
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	return RequestResult{
		Start:   start,
		Wall:    wall,
		QPS:     float64(n) / wall.Seconds(),
		Latency: rec.Snapshot(),
		Failed:  failed.Load(),
	}
}
