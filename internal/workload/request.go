package workload

import (
	"sync"
	"sync/atomic"
	"time"

	"lxr/internal/vm"
)

// RequestResult reports a metered request run (DaCapo Chopin
// methodology, §4): per-request latencies include computation,
// interruptions (GC), and queueing behind an open-loop arrival process.
type RequestResult struct {
	Wall      time.Duration
	QPS       float64
	Latencies []float64 // milliseconds, one per request
	Failed    bool      // collector could not sustain the workload (OOM)
}

// processRequest performs one request: allocate the request's working
// set with the spec demographics and touch payload (the computation).
func processRequest(c *mutCtx, prof *RequestProfile) {
	m := c.m
	var sum uint64
	for i := 0; i < prof.ObjsPerReq; i++ {
		c.allocOne()
	}
	// Compute over the most recent objects (cache traffic).
	cur := m.Roots[rootTransient]
	for i := 0; i < prof.WorkPerReq && !cur.IsNil(); i++ {
		sum += m.ReadPayload(cur, 0)
		if i%8 == 7 {
			cur = m.Load(cur, 0)
		}
	}
	m.WritePayload(m.Roots[rootTransient], 0, sum)
}

// MeasureCapacity runs a closed-loop probe (no arrival metering) and
// returns requests/second. The harness calibrates the open-loop arrival
// rate from a capacity probe on a reference collector so that every
// collector faces the identical load (the paper drives all collectors
// with the same request stream).
func MeasureCapacity(v *vm.VM, sz Sized, probeRequests int) float64 {
	start := time.Now()
	var next atomic.Int64
	var wg sync.WaitGroup
	var failed atomic.Bool
	for w := 0; w < sz.Mutators; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := v.RegisterMutator(numRoots)
			defer m.Deregister()
			defer runGuard(&failed)
			c := setupMature(m, sz, 1/float64(sz.Mutators))
			for !failed.Load() {
				i := next.Add(1) - 1
				if i >= int64(probeRequests) {
					return
				}
				processRequest(c, sz.Request.Request())
			}
		}()
	}
	wg.Wait()
	return float64(probeRequests) / time.Since(start).Seconds()
}

// Request returns the profile (helper for nil-safety symmetry).
func (p *RequestProfile) Request() *RequestProfile { return p }

// RunRequests executes the metered open-loop workload: requests arrive
// at ratePerSec into an unbounded queue; sz.Mutators workers serve them.
// Request i's latency is measured from its scheduled arrival to its
// completion, so GC interruptions delay both the active request and
// everything queued behind it — the paper's central measurement.
func RunRequests(v *vm.VM, sz Sized, ratePerSec float64) RequestResult {
	n := sz.Requests
	lat := make([]float64, n)
	interval := time.Duration(float64(time.Second) / ratePerSec)

	var next atomic.Int64
	var wg sync.WaitGroup
	var failed atomic.Bool
	start := time.Now().Add(10 * time.Millisecond) // arrival epoch
	for w := 0; w < sz.Mutators; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := v.RegisterMutator(numRoots)
			defer m.Deregister()
			defer runGuard(&failed)
			c := setupMature(m, sz, 1/float64(sz.Mutators))
			for !failed.Load() {
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				arrival := start.Add(time.Duration(i) * interval)
				if wait := time.Until(arrival); wait > 0 {
					m.Blocked(func() { time.Sleep(wait) })
				}
				processRequest(c, sz.Request)
				lat[i] = float64(time.Since(arrival)) / float64(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	return RequestResult{
		Wall:      wall,
		QPS:       float64(n) / wall.Seconds(),
		Latencies: lat,
		Failed:    failed.Load(),
	}
}
