package workload

import (
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lxr/internal/gcwork"
	"lxr/internal/obj"
	"lxr/internal/vm"
)

// Root-slot layout used by workload mutators.
const (
	rootSpine     = 0 // mature-table spine
	rootTransient = 1 // most recently allocated (dies on overwrite)
	rootScratch   = 2
	rootList      = 3 // list head (ListHeavy)
	rootLarge     = 4
	numRoots      = 8
)

// tableSlots is the fan-out of one mature-table chunk. A chunk is a
// medium object (just under half a block, so it avoids the large object
// space) holding long-lived references; overwriting a slot kills the
// previous referent.
const tableSlots = 2040

// matureFraction is the share of the minimum heap occupied by the
// long-lived object table, approximating each benchmark's mature heap.
const matureFraction = 0.45

// BatchResult reports a batch run.
type BatchResult struct {
	Start     time.Time // when the run (and Wall) started
	Wall      time.Duration
	Allocated int64
	// Failed is set when the collector could not keep the workload
	// running (out of memory) — reported as a missing data point, the
	// way the paper's tables show collectors that cannot run a
	// configuration.
	Failed bool
}

// runGuard converts a collector OOM panic into a recorded failure. OOM
// panics raised on gcwork worker goroutines arrive re-wrapped in
// *gcwork.WorkerPanic (panic containment routes them to the phase
// dispatcher, which is a mutator here); both shapes are recognised.
func runGuard(failed *atomic.Bool) {
	if r := recover(); r != nil {
		if wp, ok := r.(*gcwork.WorkerPanic); ok {
			r = wp.Value
		}
		if s, ok := r.(string); ok && strings.Contains(s, "out of memory") {
			failed.Store(true)
			return
		}
		panic(r)
	}
}

// mutCtx is one workload mutator's state.
type mutCtx struct {
	m       *vm.Mutator
	sz      Sized
	spineN  int // table chunks
	slotsN  int // slots per chunk in use
	counter int
	allocd  int64
}

// setupMature builds the mutator's mature table: a spine large object
// whose slots reference table chunks.
func setupMature(m *vm.Mutator, sz Sized, share float64) *mutCtx {
	c := &mutCtx{m: m, sz: sz}
	matureBytes := int(matureFraction * float64(sz.MinHeapBytes) * share)
	objSize := sz.ObjSize
	if objSize < 24 {
		objSize = 24
	}
	// The table retains one object per slot, so slot count is sized by
	// the benchmark's mean object size to hit the mature-heap target.
	slots := matureBytes / objSize
	chunks := (slots + tableSlots - 1) / tableSlots
	if chunks < 1 {
		chunks = 1
	}
	if chunks > 250 {
		chunks = 250
	}
	c.spineN = chunks
	c.slotsN = tableSlots
	if slots < tableSlots {
		c.slotsN = slots
		if c.slotsN < 16 {
			c.slotsN = 16
		}
	}
	spine := m.Alloc(1, chunks, 0)
	m.Roots[rootSpine] = spine
	for i := 0; i < chunks; i++ {
		chunk := m.Alloc(2, tableSlots, 0)
		m.Store(m.Roots[rootSpine], i, chunk)
	}
	return c
}

// surviveStore places ref into a random mature-table slot, killing the
// previous occupant. The survivor's chain link is cut so it does not
// drag its transient allocation segment into the mature set (which
// would inflate the survival rate far beyond the spec's).
func (c *mutCtx) surviveStore(ref obj.Ref) {
	m := c.m
	if m.NumRefs(ref) > 0 {
		m.Store(ref, 0, 0)
	}
	r := m.Rand()
	chunk := m.Load(m.Roots[rootSpine], int(r>>33)%c.spineN)
	m.Store(chunk, int(r&0x7fffffff)%c.slotsN, ref)
}

// randomMature fetches a random long-lived object (may be nil early on).
func (c *mutCtx) randomMature() obj.Ref {
	m := c.m
	r := m.Rand()
	chunk := m.Load(m.Roots[rootSpine], int(r>>33)%c.spineN)
	return m.Load(chunk, int(r&0x7fffffff)%c.slotsN)
}

// allocOne allocates one object per the spec's demographics, performs
// its survival decision, pointer mutations and payload work, and
// returns the bytes allocated.
func (c *mutCtx) allocOne() int {
	m := c.m
	sz := &c.sz
	r := m.Rand()

	// Large object? LargePct is a byte fraction; large objects are
	// ~24 KB vs ObjSize for the rest, so the count fraction is scaled.
	if sz.LargePct > 0 {
		largeEvery := (24 << 10) * 100 / (sz.ObjSize * sz.LargePct)
		if largeEvery < 1 {
			largeEvery = 1
		}
		if c.counter%largeEvery == largeEvery-1 {
			size := 18<<10 + int(r%(16<<10))
			lo := m.Alloc(3, 2, size)
			m.WritePayload(lo, 0, r)
			if int(r>>40)%100 < sz.SurvivalPct {
				c.surviveStore(lo)
			} else {
				m.Roots[rootLarge] = lo
			}
			c.counter++
			return size + 32
		}
	}

	// Regular object: size jittered around the benchmark mean.
	mean := sz.ObjSize
	if mean < 24 {
		mean = 24
	}
	payload := mean/2 + int(r%uint64(mean)) - 16
	if payload < 8 {
		payload = 8
	}
	o := m.Alloc(1, 2, payload)
	m.WritePayload(o, 0, r) // touch the object (real memory traffic)

	// Link to the previous transient in short segments (so young
	// evacuation and tracing have pointers to chase) — the chain is cut
	// every 8 objects, otherwise the whole allocation history would
	// remain reachable from the newest object.
	if prev := m.Roots[rootTransient]; !prev.IsNil() && c.counter%8 != 0 {
		m.Store(o, 0, prev)
	}
	m.Roots[rootTransient] = o

	// Survival decision.
	if int(r>>40)%100 < sz.SurvivalPct {
		c.surviveStore(o)
	}

	// Heap pointer mutations: overwrite mature objects' fields,
	// exercising the write barrier, coalescing RC and remembered sets.
	if c.counter%64 < sz.PtrRate {
		if t := c.randomMature(); !t.IsNil() && m.NumRefs(t) > 1 {
			m.Store(t, 1, c.randomMature())
		}
	}
	c.counter++
	return mean + 24
}

// maintainList keeps a long singly-linked live list (avrora's pathology:
// a deep structure that defeats tracing parallelism) and periodically
// walks a section of it.
func (c *mutCtx) maintainList(targetLen int) {
	m := c.m
	if m.Roots[rootList].IsNil() {
		for i := 0; i < targetLen; i++ {
			n := m.Alloc(4, 1, 24)
			// Link to the head via its root slot, not a raw local: the
			// Alloc above is a safepoint, and a collection there may
			// have moved the head — only the root slot is updated by
			// the collector (the mutator discipline of lxr.go).
			if !m.Roots[rootList].IsNil() {
				m.Store(n, 0, m.Roots[rootList])
			}
			m.Roots[rootList] = n
		}
		return
	}
	// Walk a prefix (mutator work over the deep structure).
	cur := m.Roots[rootList]
	for i := 0; i < 128 && !cur.IsNil(); i++ {
		cur = m.Load(cur, 0)
	}
}

// RunBatch executes a batch benchmark: spec.Mutators threads allocate
// the scaled allocation volume with the spec's demographics. Returns
// wall time (the paper's throughput metric).
func RunBatch(v *vm.VM, sz Sized) BatchResult {
	start := time.Now()
	var wg sync.WaitGroup
	var total atomic.Int64
	nm := sz.Mutators
	if nm < 1 {
		nm = 1
	}
	per := sz.AllocBytes / int64(nm)
	var failed atomic.Bool
	for w := 0; w < nm; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			m := v.RegisterMutator(numRoots)
			defer m.Deregister()
			defer runGuard(&failed)
			c := setupMature(m, sz, 1/float64(nm))
			listLen := 0
			if sz.ListHeavy && id == 0 {
				listLen = sz.MinHeapBytes / 4 / 64
				c.maintainList(listLen)
			}
			var done int64
			for done < per && !failed.Load() {
				done += int64(c.allocOne())
				if sz.ListHeavy && id == 0 && c.counter%512 == 0 {
					c.maintainList(listLen)
				}
			}
			total.Add(done)
		}(w)
	}
	wg.Wait()
	return BatchResult{Start: start, Wall: time.Since(start), Allocated: total.Load(), Failed: failed.Load()}
}
