package workload_test

import (
	"testing"

	"lxr/internal/workload"
)

func TestSuiteHas17Benchmarks(t *testing.T) {
	if got := len(workload.Suite()); got != 17 {
		t.Fatalf("suite has %d benchmarks", got)
	}
}

func TestLatencySuite(t *testing.T) {
	ls := workload.LatencySuite()
	if len(ls) != 4 {
		t.Fatalf("latency suite has %d", len(ls))
	}
	want := map[string]bool{"cassandra": true, "h2": true, "lusearch": true, "tomcat": true}
	for _, s := range ls {
		if !want[s.Name] {
			t.Fatalf("unexpected latency benchmark %s", s.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := workload.ByName("lusearch"); !ok {
		t.Fatal("lusearch missing")
	}
	if _, ok := workload.ByName("nope"); ok {
		t.Fatal("bogus name found")
	}
}

func TestScaleBounds(t *testing.T) {
	sc := workload.DefaultScale()
	for _, s := range workload.Suite() {
		sz := sc.Size(s)
		if sz.MinHeapBytes < sc.MinHeapMB<<20 || sz.MinHeapBytes > sc.MaxHeapMB<<20 {
			t.Fatalf("%s heap %d out of bounds", s.Name, sz.MinHeapBytes)
		}
		if sz.AllocBytes < 2*int64(sz.MinHeapBytes) {
			t.Fatalf("%s alloc volume too small", s.Name)
		}
		if s.Request != nil && sz.Requests < 200 {
			t.Fatalf("%s requests %d", s.Name, sz.Requests)
		}
	}
}

func TestScalePreservesAllocOrdering(t *testing.T) {
	// lusearch has the most extreme alloc:heap ratio; it must remain the
	// highest after capping.
	sc := workload.DefaultScale()
	lu := sc.Size(mustSpec(t, "lusearch"))
	fop := sc.Size(mustSpec(t, "fop"))
	if lu.AllocBytes/int64(lu.MinHeapBytes) < fop.AllocBytes/int64(fop.MinHeapBytes) {
		t.Fatal("scaling inverted allocation intensity ordering")
	}
}

func mustSpec(t *testing.T, name string) workload.Spec {
	s, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("missing %s", name)
	}
	return s
}
