// Package workload implements the synthetic DaCapo Chopin suite: 17
// benchmark specifications parameterised by the demographics of Table 3
// (minimum heap, allocation volume, allocation rate, object size,
// large-object fraction, nursery survival), four of which are
// request-driven latency workloads measured with the DaCapo metered
// methodology (arrival queueing included, §4).
//
// The collector-relevant signal of each benchmark — allocation pressure
// relative to heap size, object size/lifetime distributions, pointer
// mutation rates, long-lived structure shape — is reproduced; the
// computation each benchmark performs is replaced by synthetic work on
// the simulated heap.
package workload

// Spec describes one benchmark in the paper's units; the harness scales
// it to simulator size with a Scale.
type Spec struct {
	Name string

	// Table 3 demographics (paper units).
	MinHeapMB    int     // minimum G1 heap
	AllocGB      float64 // total bytes allocated
	AllocHeap    int     // ratio of allocation to minimum heap
	AllocRateMBs int     // allocation rate, MB/s
	ObjSize      int     // mean object size, bytes
	LargePct     int     // % of allocated bytes in objects > 16 KB
	SurvivalPct  int     // % of bytes surviving a 32 MB nursery

	// Structure.
	Mutators  int  // worker threads
	ListHeavy bool // keeps a long live singly-linked list (avrora)
	PtrRate   int  // heap pointer stores per 64 objects allocated

	// Latency-sensitive request workloads (nil for batch benchmarks).
	Request *RequestProfile
}

// RequestProfile parameterises a metered request workload.
type RequestProfile struct {
	Requests   int // total requests at scale 1
	ObjsPerReq int // objects allocated per request
	WorkPerReq int // payload words touched per request (compute)
}

// Suite returns the 17 benchmarks of the DaCapo Chopin development
// suite as characterised in Table 3.
func Suite() []Spec {
	return []Spec{
		{Name: "cassandra", MinHeapMB: 263, AllocGB: 5.6, AllocHeap: 22, AllocRateMBs: 596, ObjSize: 50, LargePct: 0, SurvivalPct: 4, Mutators: 4, PtrRate: 10,
			Request: &RequestProfile{Requests: 12000, ObjsPerReq: 220, WorkPerReq: 1600}},
		{Name: "h2", MinHeapMB: 1191, AllocGB: 13.0, AllocHeap: 11, AllocRateMBs: 1534, ObjSize: 64, LargePct: 0, SurvivalPct: 17, Mutators: 4, PtrRate: 16,
			Request: &RequestProfile{Requests: 9000, ObjsPerReq: 420, WorkPerReq: 2400}},
		{Name: "lusearch", MinHeapMB: 53, AllocGB: 31.2, AllocHeap: 603, AllocRateMBs: 9520, ObjSize: 97, LargePct: 1, SurvivalPct: 1, Mutators: 8, PtrRate: 4,
			Request: &RequestProfile{Requests: 40000, ObjsPerReq: 260, WorkPerReq: 300}},
		{Name: "tomcat", MinHeapMB: 71, AllocGB: 6.9, AllocHeap: 100, AllocRateMBs: 1440, ObjSize: 95, LargePct: 21, SurvivalPct: 1, Mutators: 6, PtrRate: 8,
			Request: &RequestProfile{Requests: 16000, ObjsPerReq: 180, WorkPerReq: 900}},
		{Name: "avrora", MinHeapMB: 7, AllocGB: 0.2, AllocHeap: 28, AllocRateMBs: 46, ObjSize: 45, LargePct: 0, SurvivalPct: 5, Mutators: 2, ListHeavy: true, PtrRate: 20},
		{Name: "batik", MinHeapMB: 1076, AllocGB: 0.5, AllocHeap: 0, AllocRateMBs: 257, ObjSize: 71, LargePct: 10, SurvivalPct: 51, Mutators: 2, PtrRate: 8},
		{Name: "biojava", MinHeapMB: 191, AllocGB: 11.8, AllocHeap: 63, AllocRateMBs: 800, ObjSize: 37, LargePct: 3, SurvivalPct: 2, Mutators: 2, PtrRate: 4},
		{Name: "eclipse", MinHeapMB: 534, AllocGB: 8.3, AllocHeap: 16, AllocRateMBs: 595, ObjSize: 100, LargePct: 29, SurvivalPct: 17, Mutators: 4, PtrRate: 12},
		{Name: "fop", MinHeapMB: 73, AllocGB: 0.5, AllocHeap: 7, AllocRateMBs: 557, ObjSize: 58, LargePct: 3, SurvivalPct: 10, Mutators: 1, PtrRate: 12},
		{Name: "graphchi", MinHeapMB: 255, AllocGB: 11.9, AllocHeap: 48, AllocRateMBs: 1117, ObjSize: 134, LargePct: 3, SurvivalPct: 4, Mutators: 4, PtrRate: 6},
		{Name: "h2o", MinHeapMB: 3689, AllocGB: 11.8, AllocHeap: 3, AllocRateMBs: 3065, ObjSize: 168, LargePct: 23, SurvivalPct: 14, Mutators: 4, PtrRate: 2},
		{Name: "jython", MinHeapMB: 325, AllocGB: 5.2, AllocHeap: 16, AllocRateMBs: 1038, ObjSize: 60, LargePct: 4, SurvivalPct: 0, Mutators: 2, PtrRate: 10},
		{Name: "luindex", MinHeapMB: 41, AllocGB: 2.2, AllocHeap: 54, AllocRateMBs: 335, ObjSize: 288, LargePct: 75, SurvivalPct: 3, Mutators: 2, PtrRate: 4},
		{Name: "pmd", MinHeapMB: 637, AllocGB: 7.0, AllocHeap: 11, AllocRateMBs: 3952, ObjSize: 46, LargePct: 2, SurvivalPct: 14, Mutators: 4, PtrRate: 24},
		{Name: "sunflow", MinHeapMB: 87, AllocGB: 20.5, AllocHeap: 241, AllocRateMBs: 6267, ObjSize: 45, LargePct: 0, SurvivalPct: 3, Mutators: 8, PtrRate: 4},
		{Name: "xalan", MinHeapMB: 43, AllocGB: 3.9, AllocHeap: 92, AllocRateMBs: 4265, ObjSize: 122, LargePct: 41, SurvivalPct: 17, Mutators: 6, PtrRate: 20},
		{Name: "zxing", MinHeapMB: 153, AllocGB: 1.5, AllocHeap: 10, AllocRateMBs: 1750, ObjSize: 183, LargePct: 50, SurvivalPct: 23, Mutators: 4, PtrRate: 6},
	}
}

// ByName returns the named spec.
func ByName(name string) (Spec, bool) {
	for _, s := range Suite() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// LatencySuite returns the four request-based latency-sensitive
// workloads (§5.1).
func LatencySuite() []Spec {
	out := []Spec{}
	for _, s := range Suite() {
		if s.Request != nil {
			out = append(out, s)
		}
	}
	return out
}

// Scale maps paper-sized workloads onto the simulator. The defaults
// keep each run in the hundreds of milliseconds while preserving the
// ratios that drive collector behaviour.
type Scale struct {
	// HeapDiv divides the paper's minimum heap (default 24).
	HeapDiv int
	// MinHeapMB floors the scaled minimum heap (default 6).
	MinHeapMB int
	// MaxHeapMB caps the scaled minimum heap (default 160).
	MaxHeapMB int
	// AllocHeapCap caps the allocation:heap ratio (default 24) so the
	// most allocation-intensive benchmarks finish; relative ordering is
	// preserved by the cap being rarely hit.
	AllocHeapCap int
	// RequestDiv divides request counts (default 8).
	RequestDiv int
}

// DefaultScale returns the standard scaling.
func DefaultScale() Scale {
	return Scale{HeapDiv: 24, MinHeapMB: 6, MaxHeapMB: 160, AllocHeapCap: 24, RequestDiv: 8}
}

// QuickScale returns a faster scaling for tests and smoke runs.
func QuickScale() Scale {
	return Scale{HeapDiv: 48, MinHeapMB: 5, MaxHeapMB: 64, AllocHeapCap: 8, RequestDiv: 40}
}

// Sized holds the simulator-sized parameters of a spec.
type Sized struct {
	Spec
	MinHeapBytes int   // scaled minimum heap
	AllocBytes   int64 // scaled total allocation (batch)
	Requests     int   // scaled request count
}

// Size applies the scale to a spec.
func (sc Scale) Size(s Spec) Sized {
	heapMB := s.MinHeapMB / sc.HeapDiv
	if heapMB < sc.MinHeapMB {
		heapMB = sc.MinHeapMB
	}
	if heapMB > sc.MaxHeapMB {
		heapMB = sc.MaxHeapMB
	}
	ratio := s.AllocHeap
	if ratio < 2 {
		ratio = 2
	}
	if ratio > sc.AllocHeapCap {
		ratio = sc.AllocHeapCap
	}
	sized := Sized{
		Spec:         s,
		MinHeapBytes: heapMB << 20,
		AllocBytes:   int64(ratio) * int64(heapMB) << 20,
	}
	if s.Request != nil {
		sized.Requests = s.Request.Requests / sc.RequestDiv
		if sized.Requests < 200 {
			sized.Requests = 200
		}
	}
	return sized
}
