package workload

import (
	"sync"
	"sync/atomic"
	"time"

	"lxr/internal/telemetry"
	"lxr/internal/vm"
)

// The mutscale workload measures safepoint-rendezvous and root-scan
// scalability: does pause time and time-to-safepoint stay flat as the
// mutator count grows from 8 to 1024? To isolate the O(mutators) terms
// the runtime contributes (rendezvous, root scanning, per-mutator pause
// flushes) from collector physics that legitimately scale with heap or
// live set, the workload holds everything else small and fixed per
// mutator:
//
//   - sleep-dominated pacing: each mutator runs its own open-loop
//     arrival stream (BlockedSleep between requests releases the
//     running token), so the number of token-holders at any instant is
//     set by total request rate, not mutator count — a pause request
//     never waits behind a thousand busy threads;
//   - fixed *total* retained live set: each mutator keeps a bounded
//     retained chain, and the harness divides one total budget by the
//     mutator count, so full-heap collectors' copy/trace cost — and,
//     because the arrival rate is also divided, each retained object's
//     wall-clock lifetime — is identical at every sweep point;
//   - transient-dominated allocation: each request allocates a short
//     burst of chain-linked objects that die when the request
//     completes, so transient live at a pause tracks in-flight load,
//     not thread count.
//
// Arrival streams are phase-staggered per mutator so wakeups spread
// uniformly over the interval instead of thundering in lockstep.
type MutScaleConfig struct {
	Mutators       int     // worker thread count
	RequestsPerMut int     // requests each mutator serves
	RatePerMut     float64 // per-mutator arrival rate (requests/second)
	ObjsPerReq     int     // transient objects allocated per request
	RetainLen      int     // retained-chain length (per-mutator live set)
}

// MutScaleResult reports one mutscale run.
type MutScaleResult struct {
	Start   time.Time
	Wall    time.Duration
	QPS     float64
	Latency *telemetry.Histogram // ns per request, arrival-to-completion
	Failed  bool
}

// mutscale root slots.
const (
	msRootTransient = 0 // head of the current request's burst chain
	msRootRetained  = 1 // head of the retained chain (bounded live set)
	msNumRoots      = 2
)

// RunMutScale executes the scalability workload. Request i of mutator w
// is scheduled at start + (i + w/n)·interval; its latency is measured
// from that arrival (so GC stalls are charged, as in RunRequests).
func RunMutScale(v *vm.VM, cfg MutScaleConfig) MutScaleResult {
	n := cfg.Mutators
	if n < 1 {
		n = 1
	}
	rec := telemetry.NewRecorder(telemetry.LatencyConfig(), n)
	interval := time.Duration(float64(time.Second) / cfg.RatePerMut)

	var wg sync.WaitGroup
	var failed atomic.Bool
	start := time.Now().Add(10 * time.Millisecond)
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m := v.RegisterMutator(msNumRoots)
			defer m.Deregister()
			defer runGuard(&failed)
			// Stagger this mutator's arrival phase across the interval.
			phase := time.Duration(int64(interval) * int64(w) / int64(n))
			retained := 0
			for i := 0; i < cfg.RequestsPerMut && !failed.Load(); i++ {
				arrival := start.Add(phase + time.Duration(i)*interval)
				if wait := time.Until(arrival); wait > 0 {
					m.BlockedSleep(wait)
				}
				mutScaleRequest(m, cfg, &retained, uint64(i))
				rec.Record(w, int64(time.Since(arrival)))
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	return MutScaleResult{
		Start:   start,
		Wall:    wall,
		QPS:     float64(n*cfg.RequestsPerMut) / wall.Seconds(),
		Latency: rec.Snapshot(),
		Failed:  failed.Load(),
	}
}

// mutScaleRequest allocates one request's transient burst and advances
// the bounded retained chain.
func mutScaleRequest(m *vm.Mutator, cfg MutScaleConfig, retained *int, seq uint64) {
	var sum uint64
	for j := 0; j < cfg.ObjsPerReq; j++ {
		r := m.Rand()
		payload := 24 + int(r%64)
		o := m.Alloc(1, 2, payload)
		m.WritePayload(o, 0, r)
		// Chain within the burst so tracing has pointers to chase; the
		// whole chain dies when the root is overwritten next request.
		if prev := m.Roots[msRootTransient]; !prev.IsNil() && j%8 != 0 {
			m.Store(o, 0, prev)
		}
		m.Roots[msRootTransient] = o
		sum += r
	}
	// The request is done: drop the burst chain. Only requests actually
	// in flight keep transient objects live, so the live set a pause
	// sees tracks the instantaneous load, not the thread count.
	m.Roots[msRootTransient] = 0
	// Retain one object per request into a bounded chain: the chain
	// grows to RetainLen then restarts, keeping the retained live set
	// fixed (~RetainLen objects per mutator) however long the run.
	o := m.Alloc(2, 1, 32)
	m.WritePayload(o, 0, sum^seq)
	if *retained > 0 && *retained < cfg.RetainLen {
		m.Store(o, 0, m.Roots[msRootRetained])
		*retained++
	} else {
		*retained = 1
	}
	m.Roots[msRootRetained] = o
}
