package meta

import (
	"sync/atomic"

	"lxr/internal/mem"
)

// Field log states for the field-logging write barrier (Fig. 3 of the
// paper; Blackburn ISMM'19). Two bits per 8-byte field.
//
// Memory is zeroed before allocation, so new objects' fields start in
// the Logged state and the barrier ignores mutations to them — this is
// what implements the implicitly-dead optimisation in the barrier
// (§3.4). When a young object survives its first collection, the
// collector flips its fields to Unlogged; thereafter the first store to
// each field takes the slow path once per epoch.
const (
	LogLogged   uint32 = 0 // already captured this epoch (or object is new)
	LogUnlogged uint32 = 1 // first store must take the slow path
	LogBusy     uint32 = 2 // another thread is capturing the old value
)

// FieldLogTable holds the 2-bit log state for every 8-byte field in the
// arena.
type FieldLogTable struct {
	words []uint32
}

// NewFieldLogTable creates a field-log table covering the arena.
func NewFieldLogTable(a *mem.Arena) *FieldLogTable {
	nFields := a.Size() / mem.WordSize
	return &FieldLogTable{words: make([]uint32, nFields/16)}
}

func flIndex(slot mem.Address) (int, uint) {
	f := uint64(slot) >> mem.WordLog
	return int(f / 16), uint(f%16) * 2
}

// Get returns the log state of the field at slot.
func (t *FieldLogTable) Get(slot mem.Address) uint32 {
	w, s := flIndex(slot)
	return (atomic.LoadUint32(&t.words[w]) >> s) & 3
}

// TryBeginLog transitions slot from Unlogged to Busy, returning true if
// this thread won the race and must capture the old value. The paper's
// attemptToLog(): losers observing Busy must spin until the winner
// publishes Logged, guaranteeing the to-be-overwritten value was
// captured before any new value is stored.
func (t *FieldLogTable) TryBeginLog(slot mem.Address) bool {
	w, s := flIndex(slot)
	for {
		old := atomic.LoadUint32(&t.words[w])
		if (old>>s)&3 != LogUnlogged {
			return false
		}
		new := old&^(3<<s) | LogBusy<<s
		if atomic.CompareAndSwapUint32(&t.words[w], old, new) {
			return true
		}
	}
}

// FinishLog publishes the Logged state after the old value was captured.
func (t *FieldLogTable) FinishLog(slot mem.Address) { t.set(slot, LogLogged) }

// SetUnlogged re-arms the barrier for slot. The collector calls it when
// processing the modified-fields buffer at each pause, and for every
// field of an object surviving its first collection.
func (t *FieldLogTable) SetUnlogged(slot mem.Address) { t.set(slot, LogUnlogged) }

// SetLogged forces the Logged state (used when clearing reclaimed
// memory's metadata).
func (t *FieldLogTable) SetLogged(slot mem.Address) { t.set(slot, LogLogged) }

func (t *FieldLogTable) set(slot mem.Address, v uint32) {
	w, s := flIndex(slot)
	for {
		old := atomic.LoadUint32(&t.words[w])
		new := old&^(3<<s) | v<<s
		if old == new || atomic.CompareAndSwapUint32(&t.words[w], old, new) {
			return
		}
	}
}

// ClearRange forces Logged for every field in [start, end), used when an
// object's memory is reclaimed so reallocation starts from clean state.
// Logged is the all-zero encoding, so interior words (16 fields each)
// are plain atomic zero stores; only the partially covered boundary
// words need a masked CAS. This runs on every bump-span reset, which is
// why the per-field CAS loop it replaces was worth killing.
func (t *FieldLogTable) ClearRange(start, end mem.Address) {
	if start >= end {
		return
	}
	f0 := uint64(start) >> mem.WordLog
	f1 := uint64(start+((end-start-1)/mem.WordSize)*mem.WordSize)>>mem.WordLog + 1
	w0, s0 := int(f0/16), uint(f0%16)*2
	w1, s1 := int(f1/16), uint(f1%16)*2
	if w0 == w1 {
		clearBits32(&t.words[w0], (^uint32(0)<<s0)&^(^uint32(0)<<s1))
		return
	}
	if s0 != 0 {
		clearBits32(&t.words[w0], ^uint32(0)<<s0)
		w0++
	}
	for w := w0; w < w1; w++ {
		atomic.StoreUint32(&t.words[w], 0)
	}
	if s1 != 0 {
		clearBits32(&t.words[w1], ^(^uint32(0) << s1))
	}
}
