package meta_test

import (
	"math/rand"
	"testing"

	"lxr/internal/mem"
	"lxr/internal/meta"
)

// The word-at-a-time range operations must be bit-for-bit equivalent to
// the per-unit scalar loops they replaced, at every alignment. Each
// test drives the optimised operation and a scalar model side by side
// over randomised ranges and compares every unit in the test region.

const rangeTrials = 400

// testRegion returns a [start, end) window inside block 1 of a fresh
// arena, wide enough to cover several metadata words.
func testRegion() (mem.Address, mem.Address) {
	return mem.BlockStart(1), mem.BlockStart(3)
}

func randRange(r *rand.Rand, lo, hi mem.Address, align mem.Address) (mem.Address, mem.Address) {
	span := int64(hi - lo)
	a := lo + mem.Address(r.Int63n(span))
	b := lo + mem.Address(r.Int63n(span))
	if a > b {
		a, b = b, a
	}
	if r.Intn(2) == 0 { // half the trials unit-aligned, half arbitrary
		a = a &^ (align - 1)
		b = b &^ (align - 1)
	}
	return a, b
}

func TestRCClearRangeMatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	lo, hi := testRegion()
	for trial := 0; trial < rangeTrials; trial++ {
		fast := meta.NewRCTable(arena())
		slow := meta.NewRCTable(arena())
		for a := lo; a < hi; a += mem.Granule {
			v := uint32(r.Intn(4))
			fast.Set(a, v)
			slow.Set(a, v)
		}
		s, e := randRange(r, lo, hi, mem.Granule)
		fast.ClearRange(s, e)
		for a := s; a < e; a += mem.Granule {
			slow.Set(a, 0)
		}
		for a := lo; a < hi; a += mem.Granule {
			if f, w := fast.Get(a), slow.Get(a); f != w {
				t.Fatalf("trial %d range [%#x,%#x): granule %#x got %d want %d",
					trial, s, e, a, f, w)
			}
		}
	}
}

func TestBitTableRangesMatchScalar(t *testing.T) {
	for _, unitLog := range []uint{mem.WordLog, mem.LineSizeLog} {
		step := mem.Address(1) << unitLog
		r := rand.New(rand.NewSource(int64(unitLog)))
		lo, hi := testRegion()
		for trial := 0; trial < rangeTrials; trial++ {
			fast := meta.NewBitTable(arena(), unitLog)
			slow := meta.NewBitTable(arena(), unitLog)
			for a := lo; a < hi; a += step {
				if r.Intn(2) == 0 {
					fast.Set(a)
					slow.Set(a)
				}
			}
			s, e := randRange(r, lo, hi, step)
			if trial%2 == 0 {
				fast.SetRange(s, e)
				for a := s; a < e; a += step {
					slow.Set(a)
				}
			} else {
				fast.ClearRange(s, e)
				for a := s; a < e; a += step {
					slow.Clear(a)
				}
			}
			for a := lo; a < hi; a += step {
				if f, w := fast.Get(a), slow.Get(a); f != w {
					t.Fatalf("unitLog %d trial %d range [%#x,%#x): unit %#x got %v want %v",
						unitLog, trial, s, e, a, f, w)
				}
			}
		}
	}
}

func TestFieldLogClearRangeMatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	lo, hi := testRegion()
	for trial := 0; trial < rangeTrials; trial++ {
		fast := meta.NewFieldLogTable(arena())
		slow := meta.NewFieldLogTable(arena())
		for a := lo; a < hi; a += mem.WordSize {
			switch r.Intn(3) {
			case 0: // Logged (the zero state)
			case 1:
				fast.SetUnlogged(a)
				slow.SetUnlogged(a)
			case 2: // Busy, reachable only through the log protocol
				fast.SetUnlogged(a)
				fast.TryBeginLog(a)
				slow.SetUnlogged(a)
				slow.TryBeginLog(a)
			}
		}
		s, e := randRange(r, lo, hi, mem.WordSize)
		fast.ClearRange(s, e)
		for a := s; a < e; a += mem.WordSize {
			slow.SetLogged(a)
		}
		for a := lo; a < hi; a += mem.WordSize {
			if f, w := fast.Get(a), slow.Get(a); f != w {
				t.Fatalf("trial %d range [%#x,%#x): field %#x got %d want %d",
					trial, s, e, a, f, w)
			}
		}
	}
}

func TestRCFreeLineBitsMatchesLineFree(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	rc := meta.NewRCTable(arena())
	lo, _ := testRegion()
	firstLine := lo.Line()
	for trial := 0; trial < 50; trial++ {
		for l := 0; l < mem.LinesPerBlock; l++ {
			start := mem.LineStart(firstLine + l)
			rc.ClearRange(start, start+mem.LineSize)
			if r.Intn(2) == 0 {
				rc.Set(start+mem.Address(r.Intn(16))*mem.Granule, uint32(1+r.Intn(3)))
			}
		}
		var bm [mem.LinesPerBlock / 32]uint32
		rc.FreeLineBits(firstLine, &bm)
		for l := 0; l < mem.LinesPerBlock; l++ {
			got := bm[l/32]&(1<<uint(l%32)) != 0
			if want := rc.LineFree(firstLine + l); got != want {
				t.Fatalf("trial %d line %d: bitmap %v, LineFree %v", trial, l, got, want)
			}
		}
	}
}
