// Package meta implements the side metadata tables LXR keeps off to the
// side of the heap: the 2-bit reference-count table, the unlogged bits
// used by the field-logging write barrier, SATB mark bits, and per-line
// reuse counters used to validate remembered-set entries.
//
// All tables are addressed by arena geometry (granule, word, or line
// index) so that metadata for an object is reachable from its address
// with simple arithmetic, exactly as the paper requires (§3.2.1).
package meta

import (
	"sync/atomic"

	"lxr/internal/mem"
)

// RC count encoding: 2 bits per 16-byte granule.
const (
	// RCBits is the number of bits per reference count.
	RCBits = 2
	// RCMax is the "stuck" value: counts that reach RCMax stop moving
	// and the object is handed over to the SATB trace for reclamation.
	RCMax = (1 << RCBits) - 1 // 3

	countsPerWord = 32 / RCBits // 16 counts per uint32
)

// RCTable holds one 2-bit reference count per granule. A line's worth of
// counts (16 granules × 2 bits) is exactly one uint32, so "is this line
// free" is a single load — the property the Immix line allocator scans.
type RCTable struct {
	words []uint32
}

// NewRCTable creates an RC table covering the whole arena.
func NewRCTable(a *mem.Arena) *RCTable {
	nGranules := a.Size() / mem.Granule
	return &RCTable{words: make([]uint32, nGranules/countsPerWord)}
}

func rcIndex(addr mem.Address) (word int, shift uint) {
	g := addr.Granule()
	return g / countsPerWord, uint(g%countsPerWord) * RCBits
}

// Get returns the reference count recorded for the granule containing addr.
func (t *RCTable) Get(addr mem.Address) uint32 {
	w, s := rcIndex(addr)
	return (atomic.LoadUint32(&t.words[w]) >> s) & RCMax
}

// Inc atomically increments the count for addr, saturating at RCMax
// ("stuck"). It returns the value before the increment.
func (t *RCTable) Inc(addr mem.Address) uint32 {
	w, s := rcIndex(addr)
	for {
		old := atomic.LoadUint32(&t.words[w])
		c := (old >> s) & RCMax
		if c == RCMax {
			return c // stuck: no further increments
		}
		if atomic.CompareAndSwapUint32(&t.words[w], old, old+(1<<s)) {
			return c
		}
	}
}

// Dec atomically decrements the count for addr. Stuck counts (RCMax) and
// already-zero counts are left unchanged. It returns the value before the
// decrement.
func (t *RCTable) Dec(addr mem.Address) uint32 {
	w, s := rcIndex(addr)
	for {
		old := atomic.LoadUint32(&t.words[w])
		c := (old >> s) & RCMax
		if c == RCMax || c == 0 {
			return c // stuck or already dead
		}
		if atomic.CompareAndSwapUint32(&t.words[w], old, old-(1<<s)) {
			return c
		}
	}
}

// Set stores an exact count for addr (used for straddle-line markers and
// for clearing the counts of SATB-identified dead objects).
func (t *RCTable) Set(addr mem.Address, v uint32) {
	w, s := rcIndex(addr)
	for {
		old := atomic.LoadUint32(&t.words[w])
		new := (old &^ (RCMax << s)) | (v << s)
		if atomic.CompareAndSwapUint32(&t.words[w], old, new) {
			return
		}
	}
}

// IsStuck reports whether the count for addr is pinned at RCMax.
func (t *RCTable) IsStuck(addr mem.Address) bool { return t.Get(addr) == RCMax }

// LineWord returns the raw uint32 holding all counts for global line idx.
// A zero value means every granule on the line is free.
func (t *RCTable) LineWord(idx int) uint32 {
	return atomic.LoadUint32(&t.words[idx])
}

// LineFree reports whether global line idx holds no counted objects.
func (t *RCTable) LineFree(idx int) bool { return t.LineWord(idx) == 0 }

// ClearLine zeroes every count on global line idx.
func (t *RCTable) ClearLine(idx int) { atomic.StoreUint32(&t.words[idx], 0) }

// ClearBlock zeroes every count in block idx.
func (t *RCTable) ClearBlock(idx int) {
	first := idx * mem.LinesPerBlock
	for i := first; i < first+mem.LinesPerBlock; i++ {
		atomic.StoreUint32(&t.words[i], 0)
	}
}

// ClearRange zeroes the counts of every granule in [start, end),
// word-at-a-time: interior words (16 granules — one line — each) are
// plain atomic stores; only partially covered boundary words need a
// masked CAS. The per-granule equivalent would be up to 2048 CAS loops
// per block — this is the span-reset path of every bump allocation
// span, so it must be cheap.
func (t *RCTable) ClearRange(start, end mem.Address) {
	if start >= end {
		return
	}
	// Granules visited by the equivalent per-granule loop: stepping by
	// Granule from start (which need not be aligned), the last visited
	// address is start + ((end-start-1)/Granule)*Granule.
	g0 := start.Granule()
	g1 := (start + ((end-start-1)/mem.Granule)*mem.Granule).Granule() + 1
	w0, s0 := g0/countsPerWord, uint(g0%countsPerWord)*RCBits
	w1, s1 := g1/countsPerWord, uint(g1%countsPerWord)*RCBits
	if w0 == w1 {
		clearBits32(&t.words[w0], (^uint32(0)<<s0)&^(^uint32(0)<<s1))
		return
	}
	if s0 != 0 {
		clearBits32(&t.words[w0], ^uint32(0)<<s0)
		w0++
	}
	for w := w0; w < w1; w++ {
		atomic.StoreUint32(&t.words[w], 0)
	}
	if s1 != 0 {
		clearBits32(&t.words[w1], ^(^uint32(0) << s1))
	}
}

// FreeLineBits fills bits with one bit per line of the block whose
// first global line is firstLine (bit set = line free, i.e. its RC word
// is zero). One call prepares a whole block's free-line bitmap for the
// allocator's word-at-a-time span scan (immix.LineBitsSource).
func (t *RCTable) FreeLineBits(firstLine int, bits *[mem.LinesPerBlock / 32]uint32) {
	for i := range bits {
		ws := t.words[firstLine+i*32 : firstLine+i*32+32 : firstLine+i*32+32]
		var w uint32
		for b := range ws {
			if atomic.LoadUint32(&ws[b]) == 0 {
				w |= 1 << uint(b)
			}
		}
		bits[i] = w
	}
}

// LineSummary scans the n line words starting at global line firstLine
// and reports whether any line is free (RC word zero) and whether any
// line is used. Sweep classification needs only these two facts — empty
// (!anyUsed), partial (anyFree && anyUsed), or full (!anyFree) — so the
// scan stops as soon as both are known, which for the common partially
// occupied block is after a handful of loads instead of a fixed
// LinesPerBlock probes through per-line accessors.
// The loop structure matters: the young sweep's dominant case is the
// all-free block, so the scan measures the leading run of free words
// four at a time (one OR-reduced branch per four loads) and only
// switches to hunting for a free word — with immediate exit — if the
// run breaks before the end.
func (t *RCTable) LineSummary(firstLine, n int) (anyFree, anyUsed bool) {
	ws := t.words[firstLine : firstLine+n : firstLine+n]
	if len(ws) == 0 {
		return false, false
	}
	i := 0
	for ; i+4 <= len(ws); i += 4 {
		if atomic.LoadUint32(&ws[i])|atomic.LoadUint32(&ws[i+1])|
			atomic.LoadUint32(&ws[i+2])|atomic.LoadUint32(&ws[i+3]) != 0 {
			break
		}
	}
	for ; i < len(ws); i++ {
		if atomic.LoadUint32(&ws[i]) != 0 {
			break
		}
	}
	if i == len(ws) {
		return true, false
	}
	if i > 0 {
		return true, true
	}
	for i = 1; i < len(ws); i++ {
		if atomic.LoadUint32(&ws[i]) == 0 {
			return true, true
		}
	}
	return false, true
}

// clearBits32 atomically clears the masked bits of *w.
func clearBits32(w *uint32, mask uint32) {
	for {
		old := atomic.LoadUint32(w)
		if old&mask == 0 || atomic.CompareAndSwapUint32(w, old, old&^mask) {
			return
		}
	}
}

// setBits32 atomically sets the masked bits of *w.
func setBits32(w *uint32, mask uint32) {
	for {
		old := atomic.LoadUint32(w)
		if old&mask == mask || atomic.CompareAndSwapUint32(w, old, old|mask) {
			return
		}
	}
}

// BlockLiveGranules counts granules in block idx with a non-zero count.
// It is the occupancy upper bound the evacuation-set selector uses.
func (t *RCTable) BlockLiveGranules(idx int) int {
	first := idx * mem.LinesPerBlock
	live := 0
	for i := first; i < first+mem.LinesPerBlock; i++ {
		w := atomic.LoadUint32(&t.words[i])
		for w != 0 {
			if w&RCMax != 0 {
				live++
			}
			w >>= RCBits
		}
	}
	return live
}

// BitTable is a 1-bit-per-unit table with atomic set/clear/test, used for
// unlogged bits (one per 8-byte field) and SATB mark bits (one per
// granule).
type BitTable struct {
	words    []uint32
	unitLog  uint // log2 of bytes per unit
	unitMask uint64
}

// NewBitTable creates a bit table with one bit per 2^unitLog bytes of arena.
func NewBitTable(a *mem.Arena, unitLog uint) *BitTable {
	units := a.Size() >> unitLog
	return &BitTable{
		words:   make([]uint32, (units+31)/32),
		unitLog: unitLog,
	}
}

func (t *BitTable) index(addr mem.Address) (int, uint32) {
	u := uint64(addr) >> t.unitLog
	return int(u / 32), uint32(1) << (u % 32)
}

// Get reports whether the bit for addr is set.
func (t *BitTable) Get(addr mem.Address) bool {
	w, m := t.index(addr)
	return atomic.LoadUint32(&t.words[w])&m != 0
}

// Set sets the bit for addr.
func (t *BitTable) Set(addr mem.Address) {
	w, m := t.index(addr)
	for {
		old := atomic.LoadUint32(&t.words[w])
		if old&m != 0 || atomic.CompareAndSwapUint32(&t.words[w], old, old|m) {
			return
		}
	}
}

// Clear clears the bit for addr.
func (t *BitTable) Clear(addr mem.Address) {
	w, m := t.index(addr)
	for {
		old := atomic.LoadUint32(&t.words[w])
		if old&m == 0 || atomic.CompareAndSwapUint32(&t.words[w], old, old&^m) {
			return
		}
	}
}

// TrySet atomically sets the bit for addr and reports whether this call
// was the one that set it (false if it was already set). This is the
// "attempt to mark" operation of parallel tracers.
func (t *BitTable) TrySet(addr mem.Address) bool {
	w, m := t.index(addr)
	for {
		old := atomic.LoadUint32(&t.words[w])
		if old&m != 0 {
			return false
		}
		if atomic.CompareAndSwapUint32(&t.words[w], old, old|m) {
			return true
		}
	}
}

// TryClear atomically clears the bit for addr and reports whether this
// call cleared it (false if it was already clear). It implements the
// synchronized attemptToLog() of the field-logging barrier (Fig. 3):
// the winner captures the to-be-overwritten value.
func (t *BitTable) TryClear(addr mem.Address) bool {
	w, m := t.index(addr)
	for {
		old := atomic.LoadUint32(&t.words[w])
		if old&m == 0 {
			return false
		}
		if atomic.CompareAndSwapUint32(&t.words[w], old, old&^m) {
			return true
		}
	}
}

// ClearAll clears every bit in the table.
func (t *BitTable) ClearAll() {
	for i := range t.words {
		atomic.StoreUint32(&t.words[i], 0)
	}
}

// Words returns the number of 32-bit words backing the table, for
// callers that partition a full-table operation across workers.
func (t *BitTable) Words() int { return len(t.words) }

// ClearWords clears words [lo, hi) of the table. Combined with Words it
// lets pause code parallelize a full clear over gcwork.ParallelFor
// instead of walking the whole table on one thread.
func (t *BitTable) ClearWords(lo, hi int) {
	ws := t.words[lo:hi:hi]
	for i := range ws {
		atomic.StoreUint32(&ws[i], 0)
	}
}

// rangeWords maps [start, end) to the unit-index range the equivalent
// per-unit loop would visit (stepping by the unit size from start,
// which need not be aligned) and the word/shift coordinates of its
// endpoints.
func (t *BitTable) rangeWords(start, end mem.Address) (w0 int, s0 uint, w1 int, s1 uint, ok bool) {
	if start >= end {
		return 0, 0, 0, 0, false
	}
	step := mem.Address(1) << t.unitLog
	u0 := uint64(start) >> t.unitLog
	u1 := uint64(start+((end-start-1)/step)*step)>>t.unitLog + 1
	return int(u0 / 32), uint(u0 % 32), int(u1 / 32), uint(u1 % 32), true
}

// SetRange sets the bit for every unit the equivalent per-unit loop
// over [start, end) would touch, word-at-a-time: fully covered words
// are single atomic stores, the partially covered boundary words
// masked CASes.
func (t *BitTable) SetRange(start, end mem.Address) {
	w0, s0, w1, s1, ok := t.rangeWords(start, end)
	if !ok {
		return
	}
	if w0 == w1 {
		setBits32(&t.words[w0], (^uint32(0)<<s0)&^(^uint32(0)<<s1))
		return
	}
	if s0 != 0 {
		setBits32(&t.words[w0], ^uint32(0)<<s0)
		w0++
	}
	for w := w0; w < w1; w++ {
		atomic.StoreUint32(&t.words[w], ^uint32(0))
	}
	if s1 != 0 {
		setBits32(&t.words[w1], ^(^uint32(0) << s1))
	}
}

// ClearRange clears the bit for every unit overlapping [start, end),
// with the same word-at-a-time structure as SetRange.
func (t *BitTable) ClearRange(start, end mem.Address) {
	w0, s0, w1, s1, ok := t.rangeWords(start, end)
	if !ok {
		return
	}
	if w0 == w1 {
		clearBits32(&t.words[w0], (^uint32(0)<<s0)&^(^uint32(0)<<s1))
		return
	}
	if s0 != 0 {
		clearBits32(&t.words[w0], ^uint32(0)<<s0)
		w0++
	}
	for w := w0; w < w1; w++ {
		atomic.StoreUint32(&t.words[w], 0)
	}
	if s1 != 0 {
		clearBits32(&t.words[w1], ^(^uint32(0) << s1))
	}
}

// Word returns the raw uint32 holding bits [32*idx, 32*idx+32) of the
// table. For a table whose unit is the line (unitLog = LineSizeLog) it
// exposes 32 lines' worth of marks in one load, which is what the
// allocator's word-at-a-time span scan wants.
func (t *BitTable) Word(idx int) uint32 {
	return atomic.LoadUint32(&t.words[idx])
}

// LineCounters keeps one 32-bit counter per line. LXR uses it for the
// line reuse counters that guard against stale remembered-set entries
// (§3.3.2): counters are bumped when a line is handed out for reuse and
// reset at each SATB start; a remset entry tagged with an older count is
// discarded at evacuation time.
type LineCounters struct {
	counts []uint32
}

// NewLineCounters creates per-line counters for the whole arena.
func NewLineCounters(a *mem.Arena) *LineCounters {
	return &LineCounters{counts: make([]uint32, a.Size()/mem.LineSize)}
}

// Get returns the counter for global line idx.
func (c *LineCounters) Get(idx int) uint32 { return atomic.LoadUint32(&c.counts[idx]) }

// GetAddr returns the counter for the line containing addr.
func (c *LineCounters) GetAddr(addr mem.Address) uint32 { return c.Get(addr.Line()) }

// Bump increments the counter for global line idx.
func (c *LineCounters) Bump(idx int) { atomic.AddUint32(&c.counts[idx], 1) }

// BumpRange increments the counter of every line in [start, end).
func (c *LineCounters) BumpRange(start, end mem.Address) {
	for l := start.Line(); l < end.AlignUp(mem.LineSize).Line(); l++ {
		c.Bump(l)
	}
}

// Reset zeroes the counter for global line idx.
func (c *LineCounters) Reset(idx int) { atomic.StoreUint32(&c.counts[idx], 0) }

// ResetAll zeroes every counter. Called at each SATB start.
func (c *LineCounters) ResetAll() {
	c.ResetRange(0, len(c.counts))
}

// Len returns the number of per-line counters.
func (c *LineCounters) Len() int { return len(c.counts) }

// ResetRange zeroes counters [lo, hi), so the full reset can be
// partitioned across pause workers.
func (c *LineCounters) ResetRange(lo, hi int) {
	cs := c.counts[lo:hi:hi]
	for i := range cs {
		atomic.StoreUint32(&cs[i], 0)
	}
}
