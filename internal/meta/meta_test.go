package meta_test

import (
	"sync"
	"testing"
	"testing/quick"

	"lxr/internal/mem"
	"lxr/internal/meta"
)

func arena() *mem.Arena { return mem.NewArena(4 << 20) }

func TestRCSaturatingCounts(t *testing.T) {
	rc := meta.NewRCTable(arena())
	a := mem.BlockStart(1)
	if rc.Get(a) != 0 {
		t.Fatal("fresh count not zero")
	}
	if old := rc.Inc(a); old != 0 {
		t.Fatalf("inc returned %d", old)
	}
	rc.Inc(a)
	rc.Inc(a) // now 3 = stuck
	if !rc.IsStuck(a) {
		t.Fatal("should be stuck at 3")
	}
	if old := rc.Inc(a); old != meta.RCMax {
		t.Fatal("stuck counts must not move on inc")
	}
	if old := rc.Dec(a); old != meta.RCMax {
		t.Fatal("stuck counts must not move on dec")
	}
	if rc.Get(a) != meta.RCMax {
		t.Fatal("stuck count changed")
	}
}

func TestRCDecFloorsAtZero(t *testing.T) {
	rc := meta.NewRCTable(arena())
	a := mem.BlockStart(1).Plus(mem.Granule * 5)
	if old := rc.Dec(a); old != 0 {
		t.Fatal("dec of zero must be a no-op")
	}
	if rc.Get(a) != 0 {
		t.Fatal("count went negative")
	}
}

func TestRCNeighbouringGranulesIndependent(t *testing.T) {
	rc := meta.NewRCTable(arena())
	base := mem.BlockStart(1)
	for i := 0; i < 64; i++ {
		rc.Inc(base.Plus(i * mem.Granule))
	}
	for i := 0; i < 64; i++ {
		if got := rc.Get(base.Plus(i * mem.Granule)); got != 1 {
			t.Fatalf("granule %d count %d", i, got)
		}
	}
	rc.Set(base.Plus(3*mem.Granule), 0)
	if rc.Get(base.Plus(2*mem.Granule)) != 1 || rc.Get(base.Plus(4*mem.Granule)) != 1 {
		t.Fatal("Set disturbed neighbours")
	}
}

func TestRCLineWordIsLineFreeness(t *testing.T) {
	rc := meta.NewRCTable(arena())
	line := 100
	if !rc.LineFree(line) {
		t.Fatal("fresh line not free")
	}
	rc.Inc(mem.LineStart(line).Plus(mem.Granule * 7))
	if rc.LineFree(line) {
		t.Fatal("line with a count must not be free")
	}
	rc.ClearLine(line)
	if !rc.LineFree(line) {
		t.Fatal("cleared line must be free")
	}
}

func TestRCParallelIncsAreExact(t *testing.T) {
	rc := meta.NewRCTable(arena())
	// 16 granules share one word: hammer all of them concurrently and
	// check no update is lost (saturation at 3 makes exactly 3 visible).
	base := mem.LineStart(50)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				rc.Inc(base.Plus(i * mem.Granule))
			}
		}()
	}
	wg.Wait()
	for i := 0; i < 16; i++ {
		if got := rc.Get(base.Plus(i * mem.Granule)); got != meta.RCMax {
			t.Fatalf("granule %d = %d, want stuck", i, got)
		}
	}
}

func TestBlockLiveGranules(t *testing.T) {
	rc := meta.NewRCTable(arena())
	blk := 2
	if rc.BlockLiveGranules(blk) != 0 {
		t.Fatal("fresh block has live granules")
	}
	for i := 0; i < 10; i++ {
		rc.Inc(mem.BlockStart(blk).Plus(i * 3 * mem.Granule))
	}
	if got := rc.BlockLiveGranules(blk); got != 10 {
		t.Fatalf("live granules %d", got)
	}
	rc.ClearBlock(blk)
	if rc.BlockLiveGranules(blk) != 0 {
		t.Fatal("ClearBlock left counts")
	}
}

func TestBitTableTrySetTryClear(t *testing.T) {
	bt := meta.NewBitTable(arena(), mem.GranuleLog)
	a := mem.BlockStart(1)
	if bt.Get(a) {
		t.Fatal("fresh bit set")
	}
	if !bt.TrySet(a) {
		t.Fatal("first TrySet must win")
	}
	if bt.TrySet(a) {
		t.Fatal("second TrySet must lose")
	}
	if !bt.TryClear(a) {
		t.Fatal("first TryClear must win")
	}
	if bt.TryClear(a) {
		t.Fatal("second TryClear must lose")
	}
}

func TestBitTableRanges(t *testing.T) {
	bt := meta.NewBitTable(arena(), mem.GranuleLog)
	start := mem.BlockStart(1)
	end := start.Plus(mem.Granule * 40)
	bt.SetRange(start, end)
	for a := start; a < end; a += mem.Granule {
		if !bt.Get(a) {
			t.Fatal("SetRange missed a unit")
		}
	}
	if bt.Get(end) {
		t.Fatal("SetRange overshot")
	}
	bt.ClearRange(start, end)
	for a := start; a < end; a += mem.Granule {
		if bt.Get(a) {
			t.Fatal("ClearRange missed a unit")
		}
	}
}

func TestFieldLogTransitions(t *testing.T) {
	fl := meta.NewFieldLogTable(arena())
	slot := mem.BlockStart(1).Plus(24)
	if fl.Get(slot) != meta.LogLogged {
		t.Fatal("fresh state must be Logged (zeroed)")
	}
	fl.SetUnlogged(slot)
	if fl.Get(slot) != meta.LogUnlogged {
		t.Fatal("SetUnlogged failed")
	}
	if !fl.TryBeginLog(slot) {
		t.Fatal("TryBeginLog must win on Unlogged")
	}
	if fl.Get(slot) != meta.LogBusy {
		t.Fatal("state must be Busy during capture")
	}
	if fl.TryBeginLog(slot) {
		t.Fatal("TryBeginLog must lose on Busy")
	}
	fl.FinishLog(slot)
	if fl.Get(slot) != meta.LogLogged {
		t.Fatal("FinishLog failed")
	}
}

func TestFieldLogNeighbours(t *testing.T) {
	fl := meta.NewFieldLogTable(arena())
	base := mem.BlockStart(1)
	fl.SetUnlogged(base.Plus(8))
	if fl.Get(base) != meta.LogLogged || fl.Get(base.Plus(16)) != meta.LogLogged {
		t.Fatal("neighbouring fields disturbed")
	}
	fl.ClearRange(base, base.Plus(64))
	if fl.Get(base.Plus(8)) != meta.LogLogged {
		t.Fatal("ClearRange failed")
	}
}

func TestLineCounters(t *testing.T) {
	lc := meta.NewLineCounters(arena())
	if lc.Get(5) != 0 {
		t.Fatal("fresh counter non-zero")
	}
	lc.Bump(5)
	lc.Bump(5)
	if lc.Get(5) != 2 {
		t.Fatal("bump lost")
	}
	lc.BumpRange(mem.LineStart(10), mem.LineStart(12))
	if lc.Get(10) != 1 || lc.Get(11) != 1 || lc.Get(12) != 0 {
		t.Fatal("BumpRange wrong coverage")
	}
	lc.ResetAll()
	if lc.Get(5) != 0 || lc.Get(10) != 0 {
		t.Fatal("ResetAll failed")
	}
}

func TestRCQuickInvariants(t *testing.T) {
	rc := meta.NewRCTable(arena())
	// Property: after n incs and m decs (any interleaving is equivalent
	// for a single granule), count == min(3, clamp(n-m-ish)) — with
	// saturation the exact law is: count never exceeds 3, never drops
	// below 0, and sticks once it reaches 3.
	f := func(ops []bool, granule uint16) bool {
		a := mem.BlockStart(1).Plus(int(granule) * mem.Granule)
		rc.ClearRange(a, a+mem.Granule)
		model := 0
		stuck := false
		for _, inc := range ops {
			if inc {
				rc.Inc(a)
				if !stuck {
					model++
					if model == 3 {
						stuck = true
					}
				}
			} else {
				rc.Dec(a)
				if !stuck && model > 0 {
					model--
				}
			}
		}
		return int(rc.Get(a)) == model
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
