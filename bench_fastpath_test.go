// Mutator fast-path benchmarks: ns/alloc (small/medium/large),
// ns/ptr-store on the barrier fast and slow paths, and ns/line-scan,
// for LXR and the barrier-bearing baselines. These are `go test -bench`
// wrappers over the same operations internal/fastbench samples for
// BENCH_fastpath.json; here collections are left to each collector's
// own triggers (or forced between slow-path rounds), so ns/op includes
// the steady-state GC interleaving a real mutator would see.
package lxr_test

import (
	"testing"

	"lxr/internal/baselines"
	"lxr/internal/core"
	"lxr/internal/immix"
	"lxr/internal/mem"
	"lxr/internal/meta"
	"lxr/internal/obj"
	"lxr/internal/vm"
)

const fpHeap = 64 << 20

func fpPlan(b *testing.B, name string) vm.Plan {
	b.Helper()
	switch name {
	case "LXR":
		return core.New(core.Config{HeapBytes: fpHeap, GCThreads: 2})
	case "Immix":
		return baselines.NewImmix(fpHeap, 2, false)
	case "Immix+WB":
		return baselines.NewImmix(fpHeap, 2, true)
	case "G1":
		return baselines.NewG1(fpHeap, 2)
	}
	b.Fatalf("unknown collector %s", name)
	return nil
}

var fpCollectors = []string{"LXR", "Immix", "Immix+WB", "G1"}

func benchAlloc(b *testing.B, payload int) {
	for _, name := range fpCollectors {
		b.Run(name, func(b *testing.B) {
			v := vm.New(fpPlan(b, name), 0)
			defer v.Shutdown()
			m := v.RegisterMutator(1)
			defer m.Deregister()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Alloc(0, 1, payload)
			}
		})
	}
}

func BenchmarkFastpathAllocSmall(b *testing.B)  { benchAlloc(b, 8) }
func BenchmarkFastpathAllocMedium(b *testing.B) { benchAlloc(b, 1008) }
func BenchmarkFastpathAllocLarge(b *testing.B)  { benchAlloc(b, 20<<10) }

// BenchmarkFastpathStoreFast: repeated stores to a fresh object's
// fields. With no collection the fields stay Logged, so every store is
// the barrier fast path (for LXR: one field-log load plus the store).
func BenchmarkFastpathStoreFast(b *testing.B) {
	for _, name := range fpCollectors {
		b.Run(name, func(b *testing.B) {
			v := vm.New(fpPlan(b, name), 0)
			defer v.Shutdown()
			m := v.RegisterMutator(1)
			defer m.Deregister()
			src := m.Alloc(0, 64, 0)
			val := m.Alloc(0, 0, 16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Store(src, i&63, val)
			}
		})
	}
}

// BenchmarkFastpathStoreSlow: first store to each armed field of an
// epoch. Rooted, promoted objects have Unlogged fields; a forced pause
// every full round re-arms exactly the fields logged in that round
// (outside the timer).
func BenchmarkFastpathStoreSlow(b *testing.B) {
	for _, name := range fpCollectors {
		b.Run(name, func(b *testing.B) {
			v := vm.New(fpPlan(b, name), 0)
			defer v.Shutdown()
			const nObjs, slots = 64, 64
			m := v.RegisterMutator(nObjs + 1)
			defer m.Deregister()
			for i := 0; i < nObjs; i++ {
				m.Roots[i] = m.Alloc(0, slots, 0)
			}
			m.Roots[nObjs] = m.Alloc(0, 0, 16)
			objs := make([]obj.Ref, nObjs)
			var val obj.Ref
			rearm := func() {
				m.RequestGC()
				for i := range objs {
					objs[i] = m.Roots[i]
				}
				val = m.Roots[nObjs]
			}
			rearm()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := i % (nObjs * slots)
				if i > 0 && n == 0 {
					b.StopTimer()
					rearm() // re-arm the fields logged this round
					b.StartTimer()
				}
				m.Store(objs[n/slots], n%slots, val)
			}
		})
	}
}

// BenchmarkFastpathLineScan: the recycled-block free-line span walk
// over a ~50%-occupied RC table, per block scanned (128 lines).
func BenchmarkFastpathLineScan(b *testing.B) {
	bt := immix.NewBlockTable(immix.Config{HeapBytes: 8 << 20})
	rc := meta.NewRCTable(bt.Arena)
	nBlocks := bt.BudgetBlocks()
	rng := uint64(0x9e3779b97f4a7c15)
	for blk := 1; blk < nBlocks; blk++ {
		for l := 0; l < mem.LinesPerBlock; l++ {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			if rng&1 == 0 {
				rc.Set(mem.LineStart(blk*mem.LinesPerBlock+l), 1)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := 1 + i%(nBlocks-1)
		immix.ScanSpans(rc, blk*mem.LinesPerBlock)
	}
}
