// Command lxr-stress hammers a collector with randomized object-graph
// churn while holding a verifiable structure live, and checks it after
// every phase — a quick invariant smoke for collector changes. Set
// LXR_VERIFY=1 for LXR's internal checks too.
//
//	lxr-stress -collector LXR -heap 32 -seconds 10 -mutators 4
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"lxr"
)

func main() {
	var (
		collector = flag.String("collector", "LXR", "collector")
		heapMB    = flag.Int("heap", 32, "heap size MB")
		seconds   = flag.Int("seconds", 10, "stress duration")
		mutators  = flag.Int("mutators", 4, "mutator threads")
	)
	flag.Parse()

	rt, err := lxr.NewRuntimeChecked(lxr.RuntimeConfig{
		Collector: lxr.CollectorKind(*collector),
		HeapBytes: *heapMB << 20,
		GCThreads: 4,
	})
	if err != nil {
		fmt.Println(err)
		os.Exit(1)
	}
	defer rt.Shutdown()

	deadline := time.Now().Add(time.Duration(*seconds) * time.Second)
	var wg sync.WaitGroup
	failures := make(chan string, *mutators)
	for w := 0; w < *mutators; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			m := rt.RegisterMutator(8)
			defer m.Deregister()

			// Live structure: a ring of nodes, each with a checksum.
			const ringLen = 512
			var first lxr.Ref
			var prev lxr.Ref
			for i := 0; i < ringLen; i++ {
				n := m.Alloc(1, 1, 16)
				m.WritePayload(n, 0, uint64(id)<<32|uint64(i))
				if prev != 0 {
					m.Store(prev, 0, n)
				} else {
					m.Roots[0] = n
				}
				prev = n
				m.Roots[1] = n
			}
			first = m.Roots[0]
			m.Store(prev, 0, first) // close the ring
			m.Roots[1] = 0

			rounds := 0
			for time.Now().Before(deadline) {
				// Churn.
				for i := 0; i < 20000; i++ {
					g := m.Alloc(2, 2, int(m.Rand()%200)+8)
					if i%8 != 0 { // short chains only: cut so history dies
						m.Store(g, 0, m.Roots[2])
					}
					m.Roots[2] = g
				}
				m.Roots[2] = 0
				// Walk the full ring and verify payloads.
				cur := m.Roots[0]
				for i := 0; i < ringLen; i++ {
					want := uint64(id)<<32 | uint64(i)
					if got := m.ReadPayload(cur, 0); got != want {
						failures <- fmt.Sprintf("mutator %d: node %d payload %x want %x", id, i, got, want)
						return
					}
					cur = m.Load(cur, 0)
				}
				if cur != m.Roots[0] {
					failures <- fmt.Sprintf("mutator %d: ring no longer closed", id)
					return
				}
				rounds++
			}
			fmt.Printf("mutator %d: %d rounds verified\n", id, rounds)
		}(w)
	}
	wg.Wait()
	close(failures)
	bad := false
	for f := range failures {
		fmt.Println("FAIL:", f)
		bad = true
	}
	st := rt.Stats
	fmt.Printf("pauses=%d totalSTW=%s defensiveSkips=%d\n",
		st.PauseCount(), st.TotalPause().Round(time.Microsecond), st.Counter("lxr.defensive.skips"))
	if bad {
		os.Exit(1)
	}
	fmt.Println("OK")
}
