// Command lxr-trace runs one workload under one collector and renders
// its GC timeline: every pause with its duration and nested phases, the
// rendezvous (time-to-safepoint) spans, the concurrent controller's
// quanta and worker loans, and the pacer's trigger decisions.
//
// Without -trace it prints the classic text event log (pause log plus
// end-of-run summary statistics). With -trace it additionally exports
// the run's full event timeline as Chrome trace-event JSON, loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing. With -flight N the
// tracer keeps only the trailing N events per shard and dumps them only
// when an -interval window flags drift or the run fails — an always-on
// flight recorder for chasing intermittent tail-latency incidents.
//
// Usage:
//
//	lxr-trace -bench lusearch -collector LXR -heap 2.0 -trace out.json
//	          [-flight N] [-interval D] [-scale quick|default]
//	          [-gcthreads N] [-concworkers N] [-adaptive] [-mmufloor F]
//	          [-pacing static|adaptive] [-json file|-]
//	lxr-trace -validate out.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"lxr/internal/harness"
	"lxr/internal/trace"
	"lxr/internal/workload"
)

// ms converts nanoseconds to milliseconds for display.
func ms(ns int64) float64 { return float64(ns) / 1e6 }

func main() {
	cf := harness.RegisterCommonFlags(flag.CommandLine,
		harness.CommonDefaults{Scale: "quick", Bench: "lusearch"})
	var (
		collector = flag.String("collector", "LXR", "collector (LXR, G1, Shenandoah, ZGC, Serial, Parallel, SemiSpace, Immix)")
		heap      = flag.Float64("heap", 2.0, "heap factor relative to scaled minimum")
		traceOut  = flag.String("trace", "", "write the run's event timeline as Chrome trace-event JSON to this file ('-' = stdout); load in Perfetto or chrome://tracing")
		flightN   = flag.Int("flight", 0, "flight-recorder mode: keep only the trailing N events per shard and dump them to -trace when an -interval window flags drift or the run fails (0 = full-run capture)")
		validate  = flag.String("validate", "", "validate a -trace output file (span nesting, timestamp order) and exit; used by CI")
	)
	flag.Parse()

	if *validate != "" {
		f, err := os.Open(*validate)
		if err != nil {
			fmt.Fprintf(os.Stderr, "validate: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		if err := trace.ValidateChrome(f); err != nil {
			fmt.Fprintf(os.Stderr, "validate %s: %v\n", *validate, err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid Chrome trace\n", *validate)
		return
	}

	opts, err := cf.Options()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	opts.Out = os.Stdout
	if *flightN > 0 && *traceOut == "" {
		fmt.Fprintln(os.Stderr, "-flight needs -trace (the dump destination)")
		os.Exit(2)
	}
	if *flightN > 0 && opts.Interval == 0 {
		fmt.Fprintln(os.Stderr, "-flight needs -interval (drift windows are the dump trigger)")
		os.Exit(2)
	}

	benchName := "lusearch"
	if len(opts.Bench) > 0 {
		benchName = opts.Bench[0]
	}
	if len(opts.Bench) > 1 {
		fmt.Fprintln(os.Stderr, "lxr-trace runs one benchmark; give -bench a single name")
		os.Exit(2)
	}
	spec, ok := workload.ByName(benchName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q; available:", benchName)
		for _, s := range workload.Suite() {
			fmt.Fprintf(os.Stderr, " %s", s.Name)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}

	if *traceOut != "" {
		opts.Trace = &harness.TraceOptions{
			Flight: *flightN,
			Dump: func(label, reason string, tr *trace.Tracer) {
				writeTrace(*traceOut, label, reason, tr)
			},
		}
	}

	rate := float64(0)
	if spec.Request != nil {
		rate = harness.CalibrateRate(spec, opts)
		fmt.Printf("calibrated arrival rate: %.0f req/s\n", rate)
	}
	r := harness.RunOne(spec, *collector, *heap, rate, opts)
	if !r.OK {
		fmt.Printf("%s cannot run %s at %.1fx heap (%d MB)\n", *collector, benchName, *heap, r.HeapBytes>>20)
		if r.Wall == 0 {
			return // collector cannot exist at this heap; nothing ran
		}
	}

	printSummary(r, *collector, benchName, *heap)

	if *cf.JSON != "" {
		writeSummaryJSON(*cf.JSON, r)
	}
}

// writeTrace exports the tracer as Chrome trace-event JSON with the
// same temp-file+rename discipline as lxr-bench's outputs, so an
// aborted write never destroys a previous timeline.
func writeTrace(path, label, reason string, tr *trace.Tracer) {
	extra := map[string]any{"label": label, "reason": reason}
	if path == "-" {
		if err := tr.WriteChrome(os.Stdout, extra); err != nil {
			fmt.Fprintf(os.Stderr, "write trace: %v\n", err)
			os.Exit(1)
		}
		return
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "create %s: %v\n", tmp, err)
		os.Exit(1)
	}
	if err := tr.WriteChrome(f, extra); err != nil {
		fmt.Fprintf(os.Stderr, "write %s: %v\n", tmp, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "close %s: %v\n", tmp, err)
		os.Exit(1)
	}
	if err := os.Rename(tmp, path); err != nil {
		fmt.Fprintf(os.Stderr, "rename %s: %v\n", tmp, err)
		os.Exit(1)
	}
	fmt.Printf("trace (%s) written to %s\n", reason, path)
}

// writeSummaryJSON archives the run as a one-element summary array in
// the same format as lxr-bench -json.
func writeSummaryJSON(path string, r *harness.RunResult) {
	write := func(w io.Writer) error {
		return harness.WriteJSON(w, []harness.RunSummary{r.Summary()})
	}
	if path == "-" {
		if err := write(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "write json: %v\n", err)
			os.Exit(1)
		}
		return
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "create %s: %v\n", tmp, err)
		os.Exit(1)
	}
	if err := write(f); err != nil {
		fmt.Fprintf(os.Stderr, "write %s: %v\n", tmp, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "close %s: %v\n", tmp, err)
		os.Exit(1)
	}
	if err := os.Rename(tmp, path); err != nil {
		fmt.Fprintf(os.Stderr, "rename %s: %v\n", tmp, err)
		os.Exit(1)
	}
}

// printSummary renders the classic text event log.
func printSummary(r *harness.RunResult, collector, bench string, heap float64) {
	fmt.Printf("\n%s on %s, %.1fx heap (%d MB): %s wall\n", collector, bench, heap, r.HeapBytes>>20, r.Wall.Round(time.Microsecond))
	if r.Latency != nil && r.Latency.Count() > 0 {
		fmt.Printf("QPS %.0f over %d metered requests\n", r.QPS, r.Latency.Count())
		for _, p := range []float64{50, 99, 99.9, 99.99} {
			fmt.Printf("  latency p%g: %.3f ms\n", p, r.LatencyPercentileMS(p))
		}
	}
	fmt.Printf("pauses: %d, total STW %s\n", len(r.Pauses), r.TotalSTW().Round(time.Microsecond))
	for _, p := range []float64{50, 95, 99, 100} {
		fmt.Printf("  pause p%g: %.3f ms\n", p, r.PausePercentile(p))
	}
	kinds := make([]string, 0, len(r.PauseHist))
	for k := range r.PauseHist {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		h := r.PauseHist[k]
		fmt.Printf("  phase %-12s n=%-5d p50 %.3f ms  p99 %.3f ms  max %.3f ms\n",
			k, h.Count(), ms(h.Percentile(50)), ms(h.Percentile(99)), ms(h.Max()))
	}
	fmt.Println("MMU (window -> min mutator utilization):")
	for _, pt := range r.MMU {
		fmt.Printf("  %8s  %.3f\n", pt.Window, pt.Utilization)
	}
	fmt.Printf("collector work: %s (concurrent %s), mutator busy: %s\n",
		r.GCWork.Round(time.Microsecond), r.ConcWork.Round(time.Microsecond), r.MutBusy.Round(time.Microsecond))

	if len(r.Counters) > 0 {
		fmt.Println("counters:")
		keys := make([]string, 0, len(r.Counters))
		for k := range r.Counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %-26s %d\n", k, r.Counters[k])
		}
	}

	fmt.Println("\npause log (first 40):")
	for i, p := range r.Pauses {
		if i >= 40 {
			fmt.Printf("  ... %d more\n", len(r.Pauses)-40)
			break
		}
		fmt.Printf("  %-8s %8.3f ms (ttsp %6.3f ms)\n", p.Kind,
			float64(p.Dur)/float64(time.Millisecond), float64(p.TTSP)/float64(time.Millisecond))
	}
}
