// Command lxr-trace runs one workload under one collector and prints a
// GC event log: every pause with its duration, plus end-of-run summary
// statistics. It is the quickest way to see a collector's pause
// behaviour on a given workload.
//
// Usage:
//
//	lxr-trace -bench lusearch -collector LXR -heap 2.0 [-scale quick]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"lxr/internal/harness"
	"lxr/internal/workload"
)

// ms converts nanoseconds to milliseconds for display.
func ms(ns int64) float64 { return float64(ns) / 1e6 }

func main() {
	var (
		bench     = flag.String("bench", "lusearch", "benchmark name")
		collector = flag.String("collector", "LXR", "collector (LXR, G1, Shenandoah, ZGC, Serial, Parallel, SemiSpace, Immix)")
		heap      = flag.Float64("heap", 2.0, "heap factor relative to scaled minimum")
		scale     = flag.String("scale", "quick", "workload scaling: quick or default")
		gcThreads = flag.Int("gcthreads", 4, "parallel GC threads")
	)
	flag.Parse()

	spec, ok := workload.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q; available:", *bench)
		for _, s := range workload.Suite() {
			fmt.Fprintf(os.Stderr, " %s", s.Name)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}
	opts := harness.Options{GCThreads: *gcThreads, Out: os.Stdout}
	if *scale == "quick" {
		opts.Scale = workload.QuickScale()
	} else {
		opts.Scale = workload.DefaultScale()
	}

	rate := float64(0)
	if spec.Request != nil {
		rate = harness.CalibrateRate(spec, opts)
		fmt.Printf("calibrated arrival rate: %.0f req/s\n", rate)
	}
	r := harness.RunOne(spec, *collector, *heap, rate, opts)
	if !r.OK {
		fmt.Printf("%s cannot run %s at %.1fx heap (%d MB)\n", *collector, *bench, *heap, r.HeapBytes>>20)
		return
	}

	fmt.Printf("\n%s on %s, %.1fx heap (%d MB): %s wall\n", *collector, *bench, *heap, r.HeapBytes>>20, r.Wall.Round(time.Microsecond))
	if r.Latency != nil && r.Latency.Count() > 0 {
		fmt.Printf("QPS %.0f over %d metered requests\n", r.QPS, r.Latency.Count())
		for _, p := range []float64{50, 99, 99.9, 99.99} {
			fmt.Printf("  latency p%g: %.3f ms\n", p, r.LatencyPercentileMS(p))
		}
	}
	fmt.Printf("pauses: %d, total STW %s\n", len(r.Pauses), r.TotalSTW().Round(time.Microsecond))
	for _, p := range []float64{50, 95, 99, 100} {
		fmt.Printf("  pause p%g: %.3f ms\n", p, r.PausePercentile(p))
	}
	kinds := make([]string, 0, len(r.PauseHist))
	for k := range r.PauseHist {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		h := r.PauseHist[k]
		fmt.Printf("  phase %-12s n=%-5d p50 %.3f ms  p99 %.3f ms  max %.3f ms\n",
			k, h.Count(), ms(h.Percentile(50)), ms(h.Percentile(99)), ms(h.Max()))
	}
	fmt.Println("MMU (window -> min mutator utilization):")
	for _, pt := range r.MMU {
		fmt.Printf("  %8s  %.3f\n", pt.Window, pt.Utilization)
	}
	fmt.Printf("collector work: %s (concurrent %s), mutator busy: %s\n",
		r.GCWork.Round(time.Microsecond), r.ConcWork.Round(time.Microsecond), r.MutBusy.Round(time.Microsecond))

	if len(r.Counters) > 0 {
		fmt.Println("counters:")
		keys := make([]string, 0, len(r.Counters))
		for k := range r.Counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %-26s %d\n", k, r.Counters[k])
		}
	}

	fmt.Println("\npause log (first 40):")
	for i, p := range r.Pauses {
		if i >= 40 {
			fmt.Printf("  ... %d more\n", len(r.Pauses)-40)
			break
		}
		fmt.Printf("  %-8s %8.3f ms (ttsp %6.3f ms)\n", p.Kind,
			float64(p.Dur)/float64(time.Millisecond), float64(p.TTSP)/float64(time.Millisecond))
	}
}
