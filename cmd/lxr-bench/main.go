// Command lxr-bench regenerates the paper's tables and figures on the
// simulated runtime.
//
// Usage:
//
//	lxr-bench -experiment table1|table3|table4|table5|table6|table7|figure5|figure7|sensitivity|all
//	          [-scale quick|default] [-gcthreads N] [-concworkers N]
//	          [-bench name,name,...] [-json file|-]
//
// -json additionally emits every executed run as a machine-readable
// JSON array of summaries (pause percentiles, throughput, STW totals)
// to the given file, or to stdout with "-". See EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"lxr/internal/harness"
	"lxr/internal/workload"
)

func main() {
	var (
		experiment = flag.String("experiment", "table6", "experiment id (table1, table3, table4, table5, table6, table7, figure5, figure7, sensitivity, all)")
		scale      = flag.String("scale", "default", "workload scaling: quick or default")
		gcThreads  = flag.Int("gcthreads", 4, "parallel GC threads")
		concW      = flag.Int("concworkers", 0, "GC workers borrowed by concurrent phases between pauses (0 = half of gcthreads)")
		bench      = flag.String("bench", "", "comma-separated benchmark subset (default all)")
		jsonOut    = flag.String("json", "", "write run summaries as JSON to this file ('-' = stdout)")
	)
	flag.Parse()

	known := map[string]bool{}
	for _, id := range experimentOrder {
		known[id] = true
	}
	if *experiment != "all" && !known[*experiment] {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		os.Exit(2)
	}

	opts := harness.Options{GCThreads: *gcThreads, ConcWorkers: *concW, Out: os.Stdout}
	var summaries []harness.RunSummary
	var jsonFile *os.File
	jsonTmp := ""
	curExperiment := ""
	if *jsonOut != "" {
		// Probe the output path before running anything — a typo'd path
		// must fail fast, not after hours of experiments — but write to
		// a temporary file renamed into place at the end, so an aborted
		// run never destroys the previous results file.
		if *jsonOut != "-" {
			jsonTmp = *jsonOut + ".tmp"
			f, err := os.Create(jsonTmp)
			if err != nil {
				fmt.Fprintf(os.Stderr, "create %s: %v\n", jsonTmp, err)
				os.Exit(1)
			}
			jsonFile = f
		}
		opts.Record = func(r *harness.RunResult) {
			s := r.Summary()
			s.Experiment = curExperiment
			summaries = append(summaries, s)
		}
	}
	switch *scale {
	case "quick":
		opts.Scale = workload.QuickScale()
	case "default":
		opts.Scale = workload.DefaultScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *bench != "" {
		opts.Bench = strings.Split(*bench, ",")
	}

	run := func(id string) {
		start := time.Now()
		curExperiment = id
		fmt.Printf("== %s ==\n", id)
		switch id {
		case "table1":
			harness.RunTable1(opts)
		case "table3":
			harness.RunTable3(opts)
		case "table4":
			harness.RunTable4(opts)
		case "table5":
			harness.RunTable5(opts)
		case "table6":
			harness.RunTable6(opts)
		case "table7":
			harness.RunTable7(opts)
		case "figure5":
			harness.RunFigure5(opts)
		case "figure7":
			harness.RunFigure7(opts, nil)
		case "sensitivity":
			harness.RunSensitivity(opts)
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
			os.Exit(2)
		}
		fmt.Printf("(%s took %s)\n\n", id, time.Since(start).Round(time.Millisecond))
	}

	if *experiment == "all" {
		for _, id := range experimentOrder {
			run(id)
		}
	} else {
		run(*experiment)
	}

	if *jsonOut != "" {
		w := io.Writer(os.Stdout)
		if jsonFile != nil {
			w = jsonFile
		}
		if err := harness.WriteJSON(w, summaries); err != nil {
			fmt.Fprintf(os.Stderr, "write json: %v\n", err)
			os.Exit(1)
		}
		if jsonFile != nil {
			if err := jsonFile.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "close %s: %v\n", jsonTmp, err)
				os.Exit(1)
			}
			if err := os.Rename(jsonTmp, *jsonOut); err != nil {
				fmt.Fprintf(os.Stderr, "rename %s: %v\n", jsonTmp, err)
				os.Exit(1)
			}
		}
	}
}

// experimentOrder is the canonical experiment list ("-experiment all").
var experimentOrder = []string{"table1", "table3", "table4", "table5", "table6", "table7", "figure5", "figure7", "sensitivity"}
