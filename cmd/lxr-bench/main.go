// Command lxr-bench regenerates the paper's tables and figures on the
// simulated runtime.
//
// Usage:
//
//	lxr-bench -experiment table1|table3|table4|table5|table6|table7|figure5|figure7|sensitivity|heapsens|mutscale|all
//	          [-scale quick|default] [-gcthreads N] [-concworkers N]
//	          [-adaptive] [-mmufloor F] [-pacing static|adaptive] [-interval D]
//	          [-bench name,name,...] [-json file|-] [-hist file]
//
// -json additionally emits every executed run as a machine-readable
// JSON array of summaries (pause percentiles — overall and per phase —
// MMU curves, throughput, STW totals) to the given file, or to stdout
// with "-". -hist archives every run's full latency/pause/worker-item
// histograms as sparse bucket dumps. -adaptive sizes the concurrent
// borrow width from observed mutator utilization (optionally targeting
// an MMU floor with -mmufloor) and records the governor's width trace
// in the JSON output. -pacing adaptive drives every collector's
// collection triggers through the adaptive policy pacers (load-scaled
// LXR epoch lengths, headroom-based G1 IHOP, churn-aware free-fraction
// triggers); the pacing decision archive lands under "pacing" in the
// JSON output in both modes. -interval emits periodic per-window
// latency and pause percentiles during each run; windows whose p99
// departs more than 2x from the trailing mean are marked drift:true.
// See EXPERIMENTS.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"lxr/internal/fastbench"
	"lxr/internal/harness"
)

func main() {
	cf := harness.RegisterCommonFlags(flag.CommandLine, harness.CommonDefaults{Scale: "default"})
	var (
		experiment = flag.String("experiment", "table6", "experiment id (table1, table3, table4, table5, table6, table7, figure5, figure7, sensitivity, heapsens, mutscale, all)")
		histOut    = flag.String("hist", "", "write full latency/pause histogram dumps as JSON to this file ('-' = stdout)")
		fastpath   = flag.String("fastpath", "", "run the mutator fast-path microbench family (ns/alloc, ns/ptr-store fast+slow, ns/line-scan for LXR and the barrier-bearing baselines) and write the report to this file ('-' = stdout); other experiment flags are ignored")
		fpSamples  = flag.Int("fpsamples", 5, "timed samples per fast-path benchmark (with -fastpath)")
		compareTo  = flag.String("compare", "", "compare two BENCH_*.json artifacts: -compare OLD.json NEW.json (fastpath reports, histogram dumps, or run summaries); exits 1 if a noise-aware regression is found")
	)
	flag.Parse()
	jsonOut := cf.JSON

	if *compareTo != "" {
		if flag.NArg() != 1 {
			fmt.Fprintf(os.Stderr, "usage: lxr-bench -compare OLD.json NEW.json\n")
			os.Exit(2)
		}
		regressions, err := harness.CompareFiles(os.Stdout, *compareTo, flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "compare: %v\n", err)
			os.Exit(2)
		}
		if regressions > 0 {
			os.Exit(1)
		}
		return
	}
	if *fastpath != "" {
		runFastpath(*fastpath, *fpSamples)
		return
	}

	known := map[string]bool{}
	for _, id := range experimentOrder {
		known[id] = true
	}
	if *experiment != "all" && !known[*experiment] {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		os.Exit(2)
	}

	opts, err := cf.Options()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	opts.Out = os.Stdout
	var summaries []harness.RunSummary
	var dumps []harness.HistDump
	var jsonFile, histFile *os.File
	jsonTmp, histTmp := "", ""
	curExperiment := ""
	// Probe output paths before running anything — a typo'd path must
	// fail fast, not after hours of experiments — but write to temporary
	// files renamed into place at the end, so an aborted run never
	// destroys the previous results files.
	openOut := func(path string) (*os.File, string) {
		tmp := path + ".tmp"
		f, err := os.Create(tmp)
		if err != nil {
			fmt.Fprintf(os.Stderr, "create %s: %v\n", tmp, err)
			os.Exit(1)
		}
		return f, tmp
	}
	if *jsonOut != "" && *jsonOut != "-" {
		jsonFile, jsonTmp = openOut(*jsonOut)
	}
	if *histOut != "" && *histOut != "-" {
		histFile, histTmp = openOut(*histOut)
	}
	if *jsonOut != "" || *histOut != "" {
		opts.Record = func(r *harness.RunResult) {
			if *jsonOut != "" {
				s := r.Summary()
				s.Experiment = curExperiment
				summaries = append(summaries, s)
			}
			if *histOut != "" {
				dumps = append(dumps, r.HistDump(curExperiment))
			}
		}
	}
	run := func(id string) {
		start := time.Now()
		curExperiment = id
		fmt.Printf("== %s ==\n", id)
		switch id {
		case "table1":
			harness.RunTable1(opts)
		case "table3":
			harness.RunTable3(opts)
		case "table4":
			harness.RunTable4(opts)
		case "table5":
			harness.RunTable5(opts)
		case "table6":
			harness.RunTable6(opts)
		case "table7":
			harness.RunTable7(opts)
		case "figure5":
			harness.RunFigure5(opts)
		case "figure7":
			harness.RunFigure7(opts, nil)
		case "sensitivity":
			harness.RunSensitivity(opts)
		case "heapsens":
			harness.RunHeapSensitivity(opts, nil)
		case "mutscale":
			harness.RunMutScale(opts)
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
			os.Exit(2)
		}
		fmt.Printf("(%s took %s)\n\n", id, time.Since(start).Round(time.Millisecond))
	}

	if *experiment == "all" {
		for _, id := range experimentOrder {
			run(id)
		}
	} else {
		run(*experiment)
	}

	finish := func(f *os.File, tmp, dst string, write func(w io.Writer) error) {
		w := io.Writer(os.Stdout)
		if f != nil {
			w = f
		}
		if err := write(w); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", dst, err)
			os.Exit(1)
		}
		if f == nil {
			return
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "close %s: %v\n", tmp, err)
			os.Exit(1)
		}
		if err := os.Rename(tmp, dst); err != nil {
			fmt.Fprintf(os.Stderr, "rename %s: %v\n", tmp, err)
			os.Exit(1)
		}
	}
	if *jsonOut != "" {
		finish(jsonFile, jsonTmp, *jsonOut, func(w io.Writer) error { return harness.WriteJSON(w, summaries) })
	}
	if *histOut != "" {
		finish(histFile, histTmp, *histOut, func(w io.Writer) error { return harness.WriteHistJSON(w, dumps) })
	}
}

// experimentOrder is the canonical experiment list ("-experiment all").
var experimentOrder = []string{"table1", "table3", "table4", "table5", "table6", "table7", "figure5", "figure7", "sensitivity", "heapsens", "mutscale"}

// runFastpath runs the fast-path microbench family and writes the
// report (BENCH_fastpath.json) with the same temp-file+rename
// discipline as the experiment outputs.
func runFastpath(out string, samples int) {
	rep := fastbench.Run(fastbench.Options{Samples: samples, Log: os.Stdout})
	write := func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	if out == "-" {
		if err := write(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "write: %v\n", err)
			os.Exit(1)
		}
		return
	}
	tmp := out + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "create %s: %v\n", tmp, err)
		os.Exit(1)
	}
	if err := write(f); err != nil {
		fmt.Fprintf(os.Stderr, "write %s: %v\n", tmp, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "close %s: %v\n", tmp, err)
		os.Exit(1)
	}
	if err := os.Rename(tmp, out); err != nil {
		fmt.Fprintf(os.Stderr, "rename %s: %v\n", tmp, err)
		os.Exit(1)
	}
}
