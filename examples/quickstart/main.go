// Quickstart: embed the simulated runtime, allocate a small object
// graph under LXR, mutate it through the barriers, trigger collections,
// and print GC statistics — including how the collector used its
// parallel workers inside pauses versus on loan to the concurrent
// phases between pauses.
package main

import (
	"fmt"
	"time"

	"lxr"
)

func main() {
	rt := lxr.NewRuntime(lxr.RuntimeConfig{
		Collector: lxr.CollectorLXR,
		HeapBytes: 32 << 20,
		GCThreads: 2,
		// Full LXR tuning (ablations, triggers, concurrent
		// parallelism) is available through LXR. ConcWorkers is how
		// many GC workers the concurrent phases borrow between pauses
		// to drain lazy decrements and advance the cycle trace.
		LXR: &lxr.LXRConfig{ConcWorkers: 2},
	})
	defer rt.Shutdown()

	m := rt.RegisterMutator(8) // 8 root slots
	defer m.Deregister()

	// Build a binary tree: each node has 2 reference slots and an
	// 8-byte payload holding its depth.
	var build func(depth int) lxr.Ref
	build = func(depth int) lxr.Ref {
		n := m.Alloc(1, 2, 8)
		m.WritePayload(n, 0, uint64(depth))
		m.Roots[1] = n // keep the subtree root visible across child allocs
		if depth > 0 {
			left := build(depth - 1)
			m.Roots[2] = left
			right := build(depth - 1)
			m.Store(n, 0, left)
			m.Store(n, 1, right)
		}
		return n
	}

	// NOTE on discipline: any reference held across an allocation must
	// be in m.Roots — the collector may move young objects, and roots
	// are how it finds (and fixes) your references. Reload after GCs.
	m.Roots[0] = build(10)

	// Churn garbage so collections happen.
	for i := 0; i < 2_000_000; i++ {
		m.Roots[3] = m.Alloc(0, 1, 24)
	}
	m.Roots[3] = 0
	m.RequestGC()

	// The tree survived; count its nodes via the public API.
	var count func(n lxr.Ref) int
	count = func(n lxr.Ref) int {
		if n == 0 {
			return 0
		}
		return 1 + count(m.Load(n, 0)) + count(m.Load(n, 1))
	}
	root := m.Roots[0] // reload: it may have been evacuated
	fmt.Printf("tree intact: %d nodes (expect %d)\n", count(root), 1<<11-1)

	st := rt.Stats
	fmt.Printf("collections: %d pauses, total STW %s\n",
		st.PauseCount(), st.TotalPause().Round(time.Microsecond))
	ps := st.PausePercentiles(50, 95, 99.9)
	fmt.Printf("pause p50=%s p95=%s p99.9=%s\n", ps[0], ps[1], ps[2])
	fmt.Printf("objects reclaimed young/old/satb: %d/%d/%d\n",
		st.Counter("lxr.alloc.objects")-st.Counter("lxr.promoted"),
		st.Counter("lxr.dead.old"), st.Counter("lxr.dead.satb"))
	fmt.Printf("concurrent work: %s (of %s total GC work)\n",
		st.ConcurrentWork().Round(time.Microsecond),
		st.GCWork().Round(time.Microsecond))
}
