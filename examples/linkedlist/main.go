// Linked-list worst case (avrora's pathology, §5.2): a long live
// singly-linked list defeats tracing parallelism — every full trace must
// walk it sequentially — while reference counting only pays when the
// list actually dies. This example keeps a deep list live while churning
// garbage and compares collector behaviour:
//
//	go run ./examples/linkedlist -collector LXR
//	go run ./examples/linkedlist -collector G1
//	go run ./examples/linkedlist -collector Shenandoah
package main

import (
	"flag"
	"fmt"
	"time"

	"lxr"
)

func main() {
	collector := flag.String("collector", "LXR", "collector")
	listLen := flag.Int("len", 100_000, "live list length")
	churn := flag.Int("churn", 1_500_000, "garbage objects to allocate")
	flag.Parse()

	rt, err := lxr.NewRuntimeChecked(lxr.RuntimeConfig{
		Collector: lxr.CollectorKind(*collector),
		HeapBytes: 48 << 20,
		GCThreads: 4,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer rt.Shutdown()
	m := rt.RegisterMutator(8)
	defer m.Deregister()

	// Build the deep list. The head is reloaded from the root slot
	// after every allocation safepoint: a pause there may evacuate it,
	// and only root slots are redirected (see the quickstart NOTE).
	m.Roots[0] = 0
	for i := 0; i < *listLen; i++ {
		n := m.Alloc(1, 1, 16)
		m.WritePayload(n, 0, uint64(i))
		if head := m.Roots[0]; head != 0 {
			m.Store(n, 0, head)
		}
		m.Roots[0] = n
	}

	// Churn while the list stays live.
	start := time.Now()
	for i := 0; i < *churn; i++ {
		m.Roots[1] = m.Alloc(1, 1, 32)
	}
	wall := time.Since(start)

	// Verify the full list, then drop it and collect twice: RC collects
	// it with concurrent recursive decrements; tracers must walk it.
	cur := m.Roots[0]
	n := 0
	for cur != 0 {
		n++
		cur = m.Load(cur, 0)
	}
	fmt.Printf("%s: list intact (%d nodes); churn of %d objs took %s\n",
		*collector, n, *churn, wall.Round(time.Millisecond))

	m.Roots[0] = 0
	drop := time.Now()
	m.RequestGC()
	m.RequestGC()
	fmt.Printf("list dropped; 2 collections took %s\n", time.Since(drop).Round(time.Millisecond))

	st := rt.Stats
	ps := st.PausePercentiles(50, 99, 100)
	fmt.Printf("pauses: %d (p50=%s p99=%s max=%s), concurrent GC work: %s\n",
		st.PauseCount(), ps[0], ps[1], ps[2], st.ConcurrentWork().Round(time.Millisecond))
}
