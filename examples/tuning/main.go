// Tuning: sweep LXR's trigger and evacuation knobs on one workload and
// report the throughput/pause trade-offs — the §3.2 heuristics in
// action. Demonstrates configuring the collector through the public API.
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"lxr"
	"lxr/internal/workload"
)

func main() {
	spec, _ := workload.ByName("sunflow") // high allocation rate, low survival
	sz := workload.QuickScale().Size(spec)
	heap := 2 * sz.MinHeapBytes

	type variant struct {
		name string
		cfg  lxr.LXRConfig
	}
	variants := []variant{
		{"default", lxr.LXRConfig{}},
		{"small survival threshold (1MB)", lxr.LXRConfig{SurvivalThresholdBytes: 1 << 20}},
		{"large survival threshold (32MB)", lxr.LXRConfig{SurvivalThresholdBytes: 32 << 20}},
		{"no young evacuation", lxr.LXRConfig{NoYoungEvac: true}},
		{"no mature evacuation", lxr.LXRConfig{NoMatureEvac: true}},
		{"stop-the-world (-SATB -LD)", lxr.LXRConfig{NoConcurrentSATB: true, NoLazyDecrements: true}},
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "sunflow-like workload, %d MB heap\n", heap>>20)
	fmt.Fprintln(w, "variant\ttime\tpauses\tp50\tp99")
	for _, v := range variants {
		cfg := v.cfg
		cfg.HeapBytes = heap
		cfg.GCThreads = 4
		rt := lxr.NewRuntime(lxr.RuntimeConfig{Collector: lxr.CollectorLXR, LXR: &cfg})
		res := workload.RunBatch(rt.VM, sz)
		ps := rt.Stats.PausePercentiles(50, 99)
		fmt.Fprintf(w, "%s\t%s\t%d\t%s\t%s\n",
			v.name, res.Wall.Round(time.Millisecond), rt.Stats.PauseCount(),
			ps[0].Round(10*time.Microsecond), ps[1].Round(10*time.Microsecond))
		rt.Shutdown()
	}
	w.Flush()
}
