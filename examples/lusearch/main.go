// Lusearch-like latency-critical service (the paper's headline
// workload, Table 1): a search service with a very high allocation rate
// and tiny survival, driven by an open-loop metered request stream.
// Run it under two collectors and compare tail latency:
//
//	go run ./examples/lusearch -collector LXR
//	go run ./examples/lusearch -collector Shenandoah
package main

import (
	"flag"
	"fmt"

	"lxr/internal/harness"
	"lxr/internal/workload"
)

func main() {
	collector := flag.String("collector", "LXR", "LXR, G1, Shenandoah or ZGC")
	heap := flag.Float64("heap", 1.3, "heap factor over the scaled minimum (the paper's tight heap is 1.3x)")
	flag.Parse()

	spec, _ := workload.ByName("lusearch")
	opts := harness.Options{Scale: workload.QuickScale(), GCThreads: 4}

	fmt.Printf("calibrating request rate (closed-loop probe on Parallel)...\n")
	rate := harness.CalibrateRate(spec, opts)
	fmt.Printf("arrival rate: %.0f req/s\n", rate)

	r := harness.RunOne(spec, *collector, *heap, rate, opts)
	if !r.OK {
		fmt.Printf("%s cannot run at %.1fx heap (%d MB)\n", *collector, *heap, r.HeapBytes>>20)
		return
	}
	fmt.Printf("\n%s @ %.1fx heap (%d MB)\n", *collector, *heap, r.HeapBytes>>20)
	fmt.Printf("throughput: %.0f QPS over %s\n", r.QPS, r.Wall.Round(1e6))
	for _, p := range []float64{50, 99, 99.9, 99.99} {
		fmt.Printf("query latency p%-6g %8.2f ms\n", p, r.LatencyPercentileMS(p))
	}
	for _, p := range []float64{50, 99, 99.9, 99.99} {
		fmt.Printf("GC pause     p%-6g %8.3f ms\n", p, r.PausePercentile(p))
	}
}
