// Benchmarks regenerating the paper's tables and figures. One bench per
// table/figure; each prints the rendered table once and reports paper-
// relevant metrics (latency percentiles, relative throughput) via
// b.ReportMetric. Workloads use the quick scale so `go test -bench=.`
// finishes in minutes; cmd/lxr-bench runs the full-scale versions.
package lxr_test

import (
	"io"
	"os"
	"testing"

	"lxr/internal/harness"
	"lxr/internal/stats"
	"lxr/internal/workload"
)

func benchOpts(out io.Writer) harness.Options {
	return harness.Options{
		Scale:     workload.QuickScale(),
		GCThreads: 4,
		Out:       out,
	}
}

// BenchmarkTable1 — lusearch at a tight 1.3× heap: LXR vs G1 vs
// Shenandoah throughput and tail latency (the paper's headline result).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := io.Discard
		if i == 0 {
			out = os.Stdout
		}
		rows := harness.RunTable1(benchOpts(out))
		if i == 0 {
			for _, r := range rows {
				if !r.OK {
					continue
				}
				b.ReportMetric(r.QPS, r.Collector+"_qps")
				b.ReportMetric(r.LatencyPercentileMS(99.99), r.Collector+"_p9999ms")
			}
		}
	}
}

// BenchmarkTable3 — benchmark characteristics (demographics realised by
// the synthetic workloads).
func BenchmarkTable3(b *testing.B) {
	opts := benchOpts(os.Stdout)
	opts.Bench = []string{"lusearch", "fop", "xalan", "batik"}
	for i := 0; i < b.N; i++ {
		if i > 0 {
			opts.Out = io.Discard
		}
		harness.RunTable3(opts)
	}
}

// BenchmarkTable4 — request latency percentiles for the latency suite
// at a 1.3× heap across G1/LXR/Shenandoah/ZGC.
func BenchmarkTable4(b *testing.B) {
	opts := benchOpts(os.Stdout)
	opts.Bench = []string{"lusearch", "cassandra"}
	for i := 0; i < b.N; i++ {
		if i > 0 {
			opts.Out = io.Discard
		}
		data := harness.RunTable4(opts)
		if i == 0 {
			for bench, byCol := range data {
				for col, r := range byCol {
					if r.OK {
						b.ReportMetric(r.LatencyPercentileMS(99.99), bench+"_"+col+"_p9999ms")
					}
				}
			}
		}
	}
}

// BenchmarkFigure5 — latency response curves (CSV series).
func BenchmarkFigure5(b *testing.B) {
	opts := benchOpts(os.Stdout)
	opts.Bench = []string{"lusearch"}
	for i := 0; i < b.N; i++ {
		if i > 0 {
			opts.Out = io.Discard
		}
		harness.RunFigure5(opts)
	}
}

// BenchmarkTable5 — heap-size sensitivity of latency and throughput
// relative to G1 (1.3×/2×/6×).
func BenchmarkTable5(b *testing.B) {
	opts := benchOpts(os.Stdout)
	opts.Bench = []string{"lusearch", "fop", "sunflow"}
	for i := 0; i < b.N; i++ {
		if i > 0 {
			opts.Out = io.Discard
		}
		harness.RunTable5(opts)
	}
}

// BenchmarkTable6 — throughput at a 2× heap for the full suite,
// relative to G1.
func BenchmarkTable6(b *testing.B) {
	opts := benchOpts(os.Stdout)
	for i := 0; i < b.N; i++ {
		if i > 0 {
			opts.Out = io.Discard
		}
		data := harness.RunTable6(opts)
		if i == 0 {
			var lxrRel []float64
			for _, byCol := range data {
				g1, lxr := byCol[harness.CG1], byCol[harness.CLXR]
				if g1 != nil && lxr != nil && g1.OK && lxr.OK && g1.Wall > 0 {
					lxrRel = append(lxrRel, lxr.Wall.Seconds()/g1.Wall.Seconds())
				}
			}
			b.ReportMetric(stats.GeoMean(lxrRel), "LXR_vs_G1_geomean")
		}
	}
}

// BenchmarkTable7 — LXR breakdown: ablations, pause stats, barrier
// overhead and reclamation shares.
func BenchmarkTable7(b *testing.B) {
	opts := benchOpts(os.Stdout)
	opts.Bench = []string{"lusearch", "fop", "xalan", "avrora"}
	for i := 0; i < b.N; i++ {
		if i > 0 {
			opts.Out = io.Discard
		}
		harness.RunTable7(opts)
	}
}

// BenchmarkFigure7 — lower-bound-overhead analysis across heap sizes
// (wall time and total cycles).
func BenchmarkFigure7(b *testing.B) {
	opts := benchOpts(os.Stdout)
	opts.Bench = []string{"fop", "sunflow", "zxing"}
	for i := 0; i < b.N; i++ {
		if i > 0 {
			opts.Out = io.Discard
		}
		rows := harness.RunFigure7(opts, []float64{2, 4})
		if i == 0 {
			for _, r := range rows {
				if r.Collector == harness.CLXR {
					b.ReportMetric(r.CyclesLBO, "LXR_cyclesLBO_"+fmtFactor(r.Factor))
				}
			}
		}
	}
}

// BenchmarkSensitivity — §5.4 runtime-configurable sensitivity knobs.
func BenchmarkSensitivity(b *testing.B) {
	opts := benchOpts(os.Stdout)
	for i := 0; i < b.N; i++ {
		if i > 0 {
			opts.Out = io.Discard
		}
		harness.RunSensitivity(opts)
	}
}

func fmtFactor(f float64) string {
	if f == float64(int(f)) {
		return string(rune('0'+int(f))) + "x"
	}
	return "x"
}
